module dlbooster

go 1.22
