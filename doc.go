// Package dlbooster is a from-scratch Go reproduction of "DLBooster:
// Boosting End-to-End Deep Learning Workflows with Offloading Data
// Preprocessing Pipelines" (Cheng et al., ICPP 2019).
//
// The library lives under internal/: the paper's contribution in
// internal/core (host bridger, FPGAReader, Dispatcher, hybrid cache),
// every substrate it depends on (simulated FPGA decoder, GPU devices,
// NVMe disk, 40 Gbps NIC, an LMDB-style store, and a baseline JPEG codec
// implemented from scratch), the three baseline backends, the compute
// engines, and the virtual-time experiment models that regenerate every
// figure of the paper's evaluation. See DESIGN.md for the system
// inventory and EXPERIMENTS.md for paper-vs-measured results.
//
// The root package holds the benchmark harness (bench_test.go): one
// benchmark per paper table/figure plus ablation and substrate
// microbenchmarks.
package dlbooster
