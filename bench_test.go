package dlbooster

// The benchmark harness: one benchmark per paper table/figure (the
// virtual-time experiment that regenerates it, with the headline series
// reported as custom metrics), one per design-choice ablation, and
// microbenchmarks of the functional substrates (real JPEG decode, the
// FPGA device pipeline, the end-to-end functional stack).
//
//	go test -bench=. -benchmem

import (
	"sync"
	"testing"

	"dlbooster/internal/audio"
	"dlbooster/internal/backends"
	"dlbooster/internal/core"
	"dlbooster/internal/dataset"
	"dlbooster/internal/engine"
	"dlbooster/internal/experiments"
	"dlbooster/internal/fpga"
	"dlbooster/internal/gpu"
	"dlbooster/internal/hugepage"
	"dlbooster/internal/imageproc"
	"dlbooster/internal/jpeg"
	"dlbooster/internal/lmdb"
	"dlbooster/internal/nvme"
	"dlbooster/internal/perf"
	"dlbooster/internal/queue"
)

// --- Figure benchmarks (virtual-time experiment per iteration) ---------

func benchTraining(b *testing.B, s experiments.TrainSetup, metric string) {
	b.Helper()
	var last experiments.TrainResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunTraining(s)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.Throughput, metric)
	b.ReportMetric(last.TotalCores, "cores")
}

func benchInference(b *testing.B, s experiments.InferSetup) {
	b.Helper()
	var last experiments.InferResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunInference(s)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.Throughput, "img/s")
	b.ReportMetric(last.MeanLatencyMs, "ms-latency")
	b.ReportMetric(last.TotalCores, "cores")
}

// BenchmarkFigure2 regenerates the motivation experiment (AlexNet,
// CPU-based vs LMDB vs ideal).
func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure2(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure5 regenerates training throughput per model/backend.
func BenchmarkFigure5(b *testing.B) {
	for _, m := range perf.TrainProfiles {
		for _, be := range []experiments.TrainBackend{experiments.CPUBased, experiments.LMDBStore, experiments.DLBooster} {
			b.Run(m.Name+"/"+string(be), func(b *testing.B) {
				benchTraining(b, experiments.TrainSetup{
					Model: m, Backend: be, GPUs: 2, Cached: m.DatasetFitsInMemory,
				}, "img/s")
			})
		}
	}
}

// BenchmarkFigure6 regenerates the training CPU-cost comparison.
func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure6(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure7And8 regenerates the inference throughput and latency
// sweeps; each sub-benchmark reports both Figure 7's img/s and Figure
// 8's ms-latency for its (model, backend, batch) point.
func BenchmarkFigure7And8(b *testing.B) {
	for _, m := range perf.InferProfiles {
		for _, be := range []experiments.InferBackend{experiments.InferCPU, experiments.InferNvJPEG, experiments.InferDLBooster} {
			for _, batch := range []int{1, 8, 32} {
				b.Run(m.Name+"/"+string(be)+"/b="+itoa(batch), func(b *testing.B) {
					benchInference(b, experiments.InferSetup{Model: m, Backend: be, Batch: batch})
				})
			}
		}
	}
}

// BenchmarkFigure9 regenerates the inference CPU-cost comparison.
func BenchmarkFigure9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure9(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHeadline regenerates the abstract's claims.
func BenchmarkHeadline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Headline(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation benchmarks ------------------------------------------------

// BenchmarkAblationCopyMode: batched vs per-datum copies (§5.2 reason 1).
func BenchmarkAblationCopyMode(b *testing.B) {
	b.Run("batched", func(b *testing.B) {
		benchTraining(b, experiments.TrainSetup{Model: perf.LeNet5, Backend: experiments.DLBooster, GPUs: 1, Cached: true}, "img/s")
	})
	b.Run("per-item", func(b *testing.B) {
		benchTraining(b, experiments.TrainSetup{Model: perf.LeNet5, Backend: experiments.DLBooster, GPUs: 1, Cached: true, PerItemCopy: true}, "img/s")
	})
}

// BenchmarkAblationSharedStore: shared vs per-GPU LMDB (§5.2 reason 2).
func BenchmarkAblationSharedStore(b *testing.B) {
	b.Run("shared", func(b *testing.B) {
		benchTraining(b, experiments.TrainSetup{Model: perf.AlexNet, Backend: experiments.LMDBStore, GPUs: 2}, "img/s")
	})
	b.Run("private", func(b *testing.B) {
		benchTraining(b, experiments.TrainSetup{Model: perf.AlexNet, Backend: experiments.LMDBStore, GPUs: 2, LMDBPrivate: true}, "img/s")
	})
}

// BenchmarkAblationAsyncReader: Algorithm 1's asynchrony on vs off.
func BenchmarkAblationAsyncReader(b *testing.B) {
	b.Run("async", func(b *testing.B) {
		benchTraining(b, experiments.TrainSetup{Model: perf.AlexNet, Backend: experiments.DLBooster, GPUs: 2}, "img/s")
	})
	b.Run("sync", func(b *testing.B) {
		benchTraining(b, experiments.TrainSetup{Model: perf.AlexNet, Backend: experiments.DLBooster, GPUs: 2, SyncReader: true}, "img/s")
	})
}

// BenchmarkAblationUnitWidths: FPGA stage-width sweep (§3.3).
func BenchmarkAblationUnitWidths(b *testing.B) {
	for _, hw := range []int{1, 2, 4} {
		b.Run("huffman="+itoa(hw), func(b *testing.B) {
			benchInference(b, experiments.InferSetup{
				Model: perf.GoogLeNet, Backend: experiments.InferDLBooster, Batch: 32,
				HuffmanWays: hw, ResizeWays: 2,
			})
		})
	}
}

// --- Functional substrate microbenchmarks --------------------------------

// BenchmarkJPEGDecodeReference measures the from-scratch codec on the
// paper's reference image — this host's analogue of "300 images per
// second per Xeon core".
func BenchmarkJPEGDecodeReference(b *testing.B) {
	spec := dataset.ILSVRCLike(1)
	data, err := spec.JPEG(0)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := jpeg.Decode(data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkJPEGDecodeMNIST measures decode on the small-image corpus.
func BenchmarkJPEGDecodeMNIST(b *testing.B) {
	spec := dataset.MNISTLike(1)
	data, err := spec.JPEG(0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := jpeg.Decode(data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkJPEGEncodeReference measures the encoder (dataset generation).
func BenchmarkJPEGEncodeReference(b *testing.B) {
	spec := dataset.ILSVRCLike(1)
	img := spec.Image(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := jpeg.Encode(img, jpeg.DefaultEncodeOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkResizeBilinear measures the resizer kernel (500×375 → 224²).
func BenchmarkResizeBilinear(b *testing.B) {
	spec := dataset.ILSVRCLike(1)
	img := spec.Image(0)
	dst, err := imageproc.Resize(img, 224, 224, imageproc.Bilinear)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := imageproc.ResizeInto(img, dst, imageproc.Bilinear); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFPGADeviceThroughput drives the functional FPGA device flat
// out and reports its host-side decode rate.
func BenchmarkFPGADeviceThroughput(b *testing.B) {
	pool, err := hugepage.NewPool(224*224*3, 8)
	if err != nil {
		b.Fatal(err)
	}
	mirror, err := fpga.LoadMirror("jpeg")
	if err != nil {
		b.Fatal(err)
	}
	dev, err := fpga.New(fpga.DefaultConfig(), pool.Arena(), nil, mirror)
	if err != nil {
		b.Fatal(err)
	}
	defer dev.Close()
	spec := dataset.ILSVRCLike(4)
	payloads := make([][]byte, spec.Count)
	for i := range payloads {
		payloads[i], err = spec.JPEG(i)
		if err != nil {
			b.Fatal(err)
		}
	}
	buf, err := pool.Get()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < b.N; i++ {
			if _, err := dev.WaitCompletion(); err != nil {
				return
			}
		}
	}()
	for i := 0; i < b.N; i++ {
		err := dev.Submit(fpga.Cmd{
			ID: uint64(i), Data: fpga.DataRef{Inline: payloads[i%len(payloads)]},
			DMAAddr: buf.PhysAddr(), OutW: 224, OutH: 224, Channels: 3,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	wg.Wait()
}

// BenchmarkFunctionalPipeline measures the whole functional stack:
// backend → dispatcher → training engine, end to end on real bytes.
func BenchmarkFunctionalPipeline(b *testing.B) {
	const (
		images = 256
		batch  = 32
		edge   = 28
	)
	spec := dataset.MNISTLike(images)
	disk := nvme.New(nvme.Config{})
	if _, err := spec.WriteToNVMe(disk); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		backend, err := backends.NewDLBooster(core.Config{
			BatchSize: batch, OutW: edge, OutH: edge, Channels: 1,
			PoolBatches: 4, Source: disk,
		})
		if err != nil {
			b.Fatal(err)
		}
		dev, err := gpu.NewDevice(0, 1<<26)
		if err != nil {
			b.Fatal(err)
		}
		solver, err := core.NewSolver(dev, 2, batch*edge*edge)
		if err != nil {
			b.Fatal(err)
		}
		disp, err := core.NewDispatcher(backend.Batches(), backend.RecycleBatch, []*core.Solver{solver}, core.DispatcherConfig{})
		if err != nil {
			b.Fatal(err)
		}
		trainer, err := engine.NewTrainer(engine.TrainerConfig{Profile: perf.LeNet5, Solvers: []*core.Solver{solver}})
		if err != nil {
			b.Fatal(err)
		}
		errc := make(chan error, 2)
		go func() { errc <- disp.Run() }()
		go func() {
			col, err := core.LoadFromDisk(disk, nil)
			if err != nil {
				errc <- err
				return
			}
			if err := backend.RunEpoch(col); err != nil {
				errc <- err
				return
			}
			backend.CloseBatches()
			errc <- nil
		}()
		st, err := trainer.Run()
		if err != nil {
			b.Fatal(err)
		}
		for j := 0; j < 2; j++ {
			if err := <-errc; err != nil {
				b.Fatal(err)
			}
		}
		if st.Images != images {
			b.Fatalf("trained %d images", st.Images)
		}
		backend.Close()
		dev.Close()
	}
	b.ReportMetric(float64(images), "img/op")
}

// BenchmarkQueueTransfer measures the pipeline's queue hot path.
func BenchmarkQueueTransfer(b *testing.B) {
	q := queue.New[int](64)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			if _, err := q.Pop(); err != nil {
				return
			}
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := q.Push(i); err != nil {
			b.Fatal(err)
		}
	}
	q.Close()
	<-done
}

// BenchmarkHugePagePool measures buffer get/recycle churn.
func BenchmarkHugePagePool(b *testing.B) {
	pool, err := hugepage.NewPool(1<<16, 8)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, err := pool.Get()
		if err != nil {
			b.Fatal(err)
		}
		if err := pool.Put(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLMDBGet measures the offline store's read path.
func BenchmarkLMDBGet(b *testing.B) {
	db := lmdb.New()
	spec := dataset.MNISTLike(64)
	if err := dataset.ConvertToLMDB(spec, db, 28, 28); err != nil {
		b.Fatal(err)
	}
	keys := make([][]byte, spec.Count)
	for i := range keys {
		keys[i] = []byte(spec.Key(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok, err := db.Get(keys[i%len(keys)]); err != nil || !ok {
			b.Fatal("missing record")
		}
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// BenchmarkJPEGProgressiveDecode measures the multi-scan software
// decoder on the reference image.
func BenchmarkJPEGProgressiveDecode(b *testing.B) {
	spec := dataset.ILSVRCLike(1)
	spec.Progressive = true
	data, err := spec.JPEG(0)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := jpeg.Decode(data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkJPEGProgressiveEncode measures the two-pass optimal-table
// progressive encoder.
func BenchmarkJPEGProgressiveEncode(b *testing.B) {
	spec := dataset.ILSVRCLike(1)
	img := spec.Image(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := jpeg.EncodeProgressive(img, jpeg.DefaultEncodeOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSpectrogram measures the speech mirror's heavy stage: 2 s of
// 16 kHz audio through windowed DCT-II feature extraction.
func BenchmarkSpectrogram(b *testing.B) {
	clip := audio.Synth(1, 16000, 32000)
	wav, err := audio.EncodeWAV(clip)
	if err != nil {
		b.Fatal(err)
	}
	p := audio.DefaultSpectrogramParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := audio.Spectrogram(wav, p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFloat16Normalize measures the half-precision tensor path.
func BenchmarkFloat16Normalize(b *testing.B) {
	img := dataset.ILSVRCLike(1).Image(0)
	mean := []float32{128, 128, 128}
	std := []float32{64, 64, 64}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := imageproc.NormalizeF16(img, mean, std); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFutureWork regenerates the §7 directions figure.
func BenchmarkFutureWork(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.FutureWork(); err != nil {
			b.Fatal(err)
		}
	}
}
