package dlbooster

// metrics_doc_test pins docs/METRICS.md to the code: every metric name
// an instrumented pipeline actually exports must appear (backticked) in
// the reference, so a new instrument cannot land undocumented. Indexed
// names are normalised to the documented placeholders (fpga0_… →
// fpga<i>_…, trans0_… → trans<i>_…).

import (
	"os"
	"regexp"
	"strings"
	"testing"
	"time"

	"dlbooster/internal/core"
	"dlbooster/internal/dataset"
	"dlbooster/internal/engine"
	"dlbooster/internal/faults"
	"dlbooster/internal/fpga"
	"dlbooster/internal/gpu"
	"dlbooster/internal/metrics"
	"dlbooster/internal/perf"
)

var (
	fpgaStageRe = regexp.MustCompile(`^fpga\d+_(parser|huffman|idct|resize)_(busy_seconds|jobs)$`)
	fpgaRe      = regexp.MustCompile(`^fpga\d+_`)
	transRe     = regexp.MustCompile(`^trans\d+_`)
)

// normalizeMetricName maps per-board / per-solver instrument names onto
// the placeholder forms docs/METRICS.md documents.
func normalizeMetricName(name string) string {
	if m := fpgaStageRe.FindStringSubmatch(name); m != nil {
		return "fpga<i>_<stage>_" + m[2]
	}
	name = fpgaRe.ReplaceAllString(name, "fpga<i>_")
	name = transRe.ReplaceAllString(name, "trans<i>_")
	return name
}

// tracedSnapshot runs one fully traced pipeline — collector → FPGAReader
// (with fault-injected retries and a cache-enabled epoch) → Dispatcher →
// trainer and inference engines — and returns its snapshot, so the test
// sees the widest real instrument surface.
func tracedSnapshot(t *testing.T) *metrics.PipelineSnapshot {
	t.Helper()
	const n, batch, edge = 16, 4, 28
	spec := dataset.MNISTLike(n)
	items := make([]core.Item, n)
	for i := range items {
		data, err := spec.JPEG(i)
		if err != nil {
			t.Fatal(err)
		}
		items[i] = core.Item{
			Ref:  fpga.DataRef{Inline: data},
			Meta: core.ItemMeta{Label: spec.Label(i), Seq: i, ReceivedAt: time.Now()},
		}
	}
	reg := metrics.NewRegistry()
	b, err := core.New(core.Config{
		BatchSize: batch, OutW: edge, OutH: edge, Channels: 1, PoolBatches: 3,
		CacheLimitBytes: 1 << 20,
		FPGA:            fpga.Config{Inject: faults.New(faults.Config{FailEvery: 5, Seed: 1})},
		Resilience:      core.Resilience{MaxRetries: 2, RetryBackoff: 10 * time.Microsecond, FallbackAfter: 100},
		Metrics:         reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	reg.SetBusy(metrics.NewBusyTracker())

	dev, err := gpu.NewDevice(0, 1<<28)
	if err != nil {
		t.Fatal(err)
	}
	defer dev.Close()
	batchBytes := batch * edge * edge
	trainSolver, err := core.NewSolver(dev, 2, batchBytes)
	if err != nil {
		t.Fatal(err)
	}
	inferSolver, err := core.NewSolver(dev, 2, batchBytes)
	if err != nil {
		t.Fatal(err)
	}
	disp, err := core.NewDispatcher(b.Batches(), b.RecycleBatch,
		[]*core.Solver{trainSolver, inferSolver}, core.DispatcherConfig{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	trainer, err := engine.NewTrainer(engine.TrainerConfig{
		Profile: perf.LeNet5, Solvers: []*core.Solver{trainSolver}, Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	inf, err := engine.NewInference(engine.InferenceConfig{
		Profile: perf.GoogLeNet, Solver: inferSolver, Classes: 10, Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}

	errc := make(chan error, 4)
	go func() {
		err := b.RunEpoch(core.CollectorFromItems(items))
		if err == nil {
			err = b.ReplayCache() // exercise the cache-replay counters
		}
		b.CloseBatches()
		errc <- err
	}()
	go func() { errc <- disp.Run() }()
	go func() { _, err := trainer.Run(); errc <- err }()
	go func() { _, err := inf.Run(); errc <- err }()
	for i := 0; i < 4; i++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
	return b.Snapshot()
}

func TestEveryMetricNameDocumented(t *testing.T) {
	docBytes, err := os.ReadFile("docs/METRICS.md")
	if err != nil {
		t.Fatal(err)
	}
	doc := string(docBytes)
	documented := func(name string) bool {
		return strings.Contains(doc, "`"+normalizeMetricName(name)+"`")
	}

	s := tracedSnapshot(t)
	var missing []string
	for name := range s.Counters {
		if !documented(name) {
			missing = append(missing, "counter "+name)
		}
	}
	for name := range s.Gauges {
		if !documented(name) {
			missing = append(missing, "gauge "+name)
		}
	}
	for name := range s.Stages {
		if !documented(name) {
			missing = append(missing, "stage "+name)
		}
	}
	for name := range s.Queues {
		if !documented(name) {
			missing = append(missing, "queue "+name)
		}
	}
	if len(missing) > 0 {
		t.Fatalf("docs/METRICS.md does not document:\n  %s", strings.Join(missing, "\n  "))
	}

	// The pipeline above exercised most of the surface; sanity-check the
	// run produced what the documentation narrates.
	if s.Counters["cache_replay_images_total"] == 0 {
		t.Fatal("cache replay never happened — widen the scenario")
	}
	if s.Counters["decode_retries_total"] == 0 {
		t.Fatal("fault injection produced no retries — widen the scenario")
	}
	if s.Counters["train_images_total"] == 0 || s.Counters["infer_images_total"] == 0 {
		t.Fatal("engines consumed nothing")
	}
}

// TestRuntimeGaugesDocumented pins the Go runtime health gauges: the
// traced scenario above never registers them (they are dlserve wiring),
// so they get their own registry and the same backtick check.
func TestRuntimeGaugesDocumented(t *testing.T) {
	docBytes, err := os.ReadFile("docs/METRICS.md")
	if err != nil {
		t.Fatal(err)
	}
	doc := string(docBytes)
	reg := metrics.NewRegistry()
	metrics.RegisterRuntimeGauges(reg)
	snap := reg.Snapshot()
	if len(snap.Gauges) == 0 {
		t.Fatal("RegisterRuntimeGauges registered nothing")
	}
	for name := range snap.Gauges {
		if !strings.Contains(doc, "`"+name+"`") {
			t.Errorf("runtime gauge %q not documented", name)
		}
	}
}

// TestEveryStageConstantDocumented covers stages the scenario above may
// not hit (degraded-mode decodes, timeouts): every stage constant and
// span JSON field must appear in the reference regardless.
func TestEveryStageConstantDocumented(t *testing.T) {
	docBytes, err := os.ReadFile("docs/METRICS.md")
	if err != nil {
		t.Fatal(err)
	}
	doc := string(docBytes)
	for _, name := range []string{
		metrics.StageFPGADecode, metrics.StageCPUFallback, metrics.StageGetItemWait,
		metrics.StageAssemble, metrics.StageFullQueueWait, metrics.StageCopySync,
		metrics.StageRecycle, metrics.StageBatchE2E, metrics.StageInferE2E,
		metrics.StageTrainIter, metrics.StageBatchFill,
	} {
		if !strings.Contains(doc, "`"+name+"`") {
			t.Errorf("stage %q not documented", name)
		}
	}
	for _, field := range []string{
		"batch", "collected", "buf_acquired", "sealed", "published",
		"dispatched", "synced", "recycled", "images", "fpga", "fallback", "failed",
	} {
		if !strings.Contains(doc, "`"+field+"`") {
			t.Errorf("span field %q not documented", field)
		}
	}
}
