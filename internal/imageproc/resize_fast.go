package imageproc

import "dlbooster/internal/pix"

// The fast bilinear kernel. The reference resizeBilinearScalar recomputes
// the horizontal source offsets and weights for every row even though
// they depend only on x; this kernel hoists them into stack tables built
// once per image and unrolls the channel loop for the two layouts the
// pipeline produces (RGB and grayscale). The per-sample arithmetic is
// exactly the reference's — same fixed-point weights, same rounding —
// so the output is byte-identical (pinned in imageproc_test.go and by
// the jpeg golden-corpus parity tests, since DecodeScaledInto fuses this
// resizer into its last stage).

// maxFastResizeWidth bounds the stack-allocated horizontal tables. Wider
// outputs fall back to the scalar kernel: preprocessing targets are
// small (224/299/96-class), so the bound is never hit in practice, and
// a heap-allocated table would break the decode path's zero-allocation
// pin.
const maxFastResizeWidth = 1024

// resizeBilinearFast resizes src into dst and reports true, or reports
// false (touching nothing) when the geometry or layout is out of scope.
func resizeBilinearFast(src, dst *pix.Image) bool {
	c := src.C
	if dst.W > maxFastResizeWidth || (c != 1 && c != 3) {
		return false
	}
	const fbits = 8
	const fone = 1 << fbits
	dw := dst.W
	// Horizontal tables: byte offsets of the two taps and the blend
	// weight, per destination column.
	var a0s, a1s, wxs [maxFastResizeWidth]int32
	for x := 0; x < dw; x++ {
		sxf := (2*x+1)*src.W*fone/(2*dw) - fone/2
		if sxf < 0 {
			sxf = 0
		}
		sx0 := sxf >> fbits
		wx1 := sxf & (fone - 1)
		sx1 := sx0 + 1
		if sx1 >= src.W {
			sx1 = src.W - 1
		}
		a0s[x] = int32(sx0 * c)
		a1s[x] = int32(sx1 * c)
		wxs[x] = int32(wx1)
	}
	for y := 0; y < dst.H; y++ {
		syf := (2*y+1)*src.H*fone/(2*dst.H) - fone/2
		if syf < 0 {
			syf = 0
		}
		sy0 := syf >> fbits
		wy1 := syf & (fone - 1)
		sy1 := sy0 + 1
		if sy1 >= src.H {
			sy1 = src.H - 1
		}
		wy0 := fone - wy1
		row0 := src.Pix[sy0*src.W*c:]
		row1 := src.Pix[sy1*src.W*c:]
		drow := dst.Pix[y*dw*c : (y+1)*dw*c]
		if c == 1 {
			for x := 0; x < dw; x++ {
				a0, a1 := a0s[x], a1s[x]
				wx1 := int(wxs[x])
				wx0 := fone - wx1
				top := int(row0[a0])*wx0 + int(row0[a1])*wx1
				bot := int(row1[a0])*wx0 + int(row1[a1])*wx1
				drow[x] = byte((top*wy0 + bot*wy1 + 1<<(2*fbits-1)) >> (2 * fbits))
			}
			continue
		}
		o := 0
		for x := 0; x < dw; x++ {
			a0, a1 := int(a0s[x]), int(a1s[x])
			wx1 := int(wxs[x])
			wx0 := fone - wx1
			top := int(row0[a0])*wx0 + int(row0[a1])*wx1
			bot := int(row1[a0])*wx0 + int(row1[a1])*wx1
			drow[o] = byte((top*wy0 + bot*wy1 + 1<<(2*fbits-1)) >> (2 * fbits))
			top = int(row0[a0+1])*wx0 + int(row0[a1+1])*wx1
			bot = int(row1[a0+1])*wx0 + int(row1[a1+1])*wx1
			drow[o+1] = byte((top*wy0 + bot*wy1 + 1<<(2*fbits-1)) >> (2 * fbits))
			top = int(row0[a0+2])*wx0 + int(row0[a1+2])*wx1
			bot = int(row1[a0+2])*wx0 + int(row1[a1+2])*wx1
			drow[o+2] = byte((top*wy0 + bot*wy1 + 1<<(2*fbits-1)) >> (2 * fbits))
			o += 3
		}
	}
	return true
}
