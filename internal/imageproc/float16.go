package imageproc

import (
	"fmt"
	"math"

	"dlbooster/internal/pix"
)

// IEEE 754 binary16 conversion. The paper's inference engine runs with
// "float16 to enable Tensor Core" (Figures 7–9 captions); the host-side
// transform stage therefore has to produce half-precision CHW tensors,
// which is what NormalizeF16 emits.

// Float16 is an IEEE 754 binary16 value in its bit representation.
type Float16 uint16

// F32ToF16 converts with round-to-nearest-even, handling subnormals,
// infinities and NaN.
func F32ToF16(f float32) Float16 {
	bits := math.Float32bits(f)
	sign := uint16(bits>>16) & 0x8000
	exp := int32(bits>>23&0xFF) - 127
	man := bits & 0x7FFFFF

	switch {
	case exp == 128: // Inf or NaN
		if man != 0 {
			return Float16(sign | 0x7E00) // quiet NaN
		}
		return Float16(sign | 0x7C00)
	case exp > 15: // overflow → Inf
		return Float16(sign | 0x7C00)
	case exp >= -14: // normal range
		// 10-bit mantissa with round-to-nearest-even on the dropped 13.
		m := man >> 13
		rem := man & 0x1FFF
		if rem > 0x1000 || (rem == 0x1000 && m&1 == 1) {
			m++
		}
		e := uint32(exp+15)<<10 + m // mantissa carry may bump the exponent — the bit layout makes that correct
		return Float16(uint32(sign) | e)
	case exp >= -24: // subnormal half: value = m·2⁻²⁴, m = full·2^(exp+1)/2²³
		shift := uint32(-exp - 1) // 14..23
		full := man | 0x800000    // implicit leading 1
		m := full >> shift
		rem := full & ((1 << shift) - 1)
		half := uint32(1) << (shift - 1)
		if rem > half || (rem == half && m&1 == 1) {
			m++ // may carry into the exponent: 0x400 is the smallest normal, which is correct
		}
		return Float16(uint32(sign) | m)
	default: // underflow → signed zero
		return Float16(sign)
	}
}

// F16ToF32 converts exactly (every half value is representable).
func F16ToF32(h Float16) float32 {
	sign := uint32(h&0x8000) << 16
	exp := uint32(h >> 10 & 0x1F)
	man := uint32(h & 0x3FF)
	switch exp {
	case 0:
		if man == 0 {
			return math.Float32frombits(sign)
		}
		// Subnormal: normalise.
		e := uint32(127 - 15 + 1)
		for man&0x400 == 0 {
			man <<= 1
			e--
		}
		man &= 0x3FF
		return math.Float32frombits(sign | e<<23 | man<<13)
	case 0x1F:
		if man == 0 {
			return math.Float32frombits(sign | 0x7F800000)
		}
		return math.Float32frombits(sign | 0x7FC00000 | man<<13)
	default:
		return math.Float32frombits(sign | (exp+127-15)<<23 | man<<13)
	}
}

// NormalizeF16 is Normalize with half-precision output: 8-bit HWC
// samples to float16 CHW with per-channel mean/std.
func NormalizeF16(m *pix.Image, mean, std []float32) ([]Float16, error) {
	f32, err := Normalize(m, mean, std)
	if err != nil {
		return nil, err
	}
	out := make([]Float16, len(f32))
	for i, v := range f32 {
		out[i] = F32ToF16(v)
	}
	return out, nil
}

// F16SliceToF32 converts a tensor back for verification.
func F16SliceToF32(in []Float16) []float32 {
	out := make([]float32, len(in))
	for i, h := range in {
		out[i] = F16ToF32(h)
	}
	return out
}

// F16Bytes serialises a half tensor little-endian, the layout a device
// copy would move.
func F16Bytes(in []Float16) []byte {
	out := make([]byte, 2*len(in))
	for i, h := range in {
		out[2*i] = byte(h)
		out[2*i+1] = byte(h >> 8)
	}
	return out
}

// F16FromBytes parses a little-endian half tensor.
func F16FromBytes(data []byte) ([]Float16, error) {
	if len(data)%2 != 0 {
		return nil, fmt.Errorf("imageproc: odd f16 byte length %d", len(data))
	}
	out := make([]Float16, len(data)/2)
	for i := range out {
		out[i] = Float16(data[2*i]) | Float16(data[2*i+1])<<8
	}
	return out, nil
}
