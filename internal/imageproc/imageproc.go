// Package imageproc implements the pixel-domain kernels of the
// preprocessing pipeline: resizing (the FPGA decoder's 2-way resizer
// unit), plus the augmentation operations the paper deliberately leaves
// on the GPU side (crop, flip, normalisation) and the layout conversion
// DL engines expect (HWC → planar CHW).
package imageproc

import (
	"fmt"
	"math/rand"

	"dlbooster/internal/cpukernel"
	"dlbooster/internal/pix"
)

// Interpolation selects the resize filter.
type Interpolation int

const (
	// Nearest replicates the closest source sample — what a minimal
	// hardware resizer does.
	Nearest Interpolation = iota
	// Bilinear blends the four closest samples; the decoder mirror used
	// for the paper experiments implements this filter.
	Bilinear
)

// String implements fmt.Stringer for benchmark labels.
func (ip Interpolation) String() string {
	switch ip {
	case Nearest:
		return "nearest"
	case Bilinear:
		return "bilinear"
	default:
		return fmt.Sprintf("Interpolation(%d)", int(ip))
	}
}

// Resize scales src to dw×dh. It allocates the destination; ResizeInto
// reuses one.
func Resize(src *pix.Image, dw, dh int, ip Interpolation) (*pix.Image, error) {
	dst := pix.New(dw, dh, src.C)
	if err := ResizeInto(src, dst, ip); err != nil {
		return nil, err
	}
	return dst, nil
}

// ResizeInto scales src into dst, which fixes the output geometry. dst
// must have the same channel count as src. This is the allocation-free
// form the pipeline uses when writing directly into HugePage batch
// buffers.
func ResizeInto(src, dst *pix.Image, ip Interpolation) error {
	if src.C != dst.C {
		return fmt.Errorf("imageproc: channel mismatch %d vs %d", src.C, dst.C)
	}
	if src.W == dst.W && src.H == dst.H {
		// Identity geometry: both filters degenerate to a copy (the
		// bilinear half-pixel-centre weights are exactly zero), so skip
		// the per-pixel arithmetic. The decode-to-scale path hits this
		// whenever the scaled reconstruction lands on the target size.
		copy(dst.Pix, src.Pix)
		return nil
	}
	switch ip {
	case Nearest:
		resizeNearest(src, dst)
	case Bilinear:
		resizeBilinear(src, dst)
	default:
		return fmt.Errorf("imageproc: unknown interpolation %d", ip)
	}
	return nil
}

func resizeNearest(src, dst *pix.Image) {
	c := src.C
	for y := 0; y < dst.H; y++ {
		sy := y * src.H / dst.H
		srow := src.Pix[sy*src.W*c:]
		drow := dst.Pix[y*dst.W*c:]
		for x := 0; x < dst.W; x++ {
			sx := x * src.W / dst.W
			copy(drow[x*c:x*c+c], srow[sx*c:sx*c+c])
		}
	}
}

// resizeBilinear uses 8-bit fixed-point weights with half-pixel centre
// alignment, the conventional definition. It dispatches to the fast
// kernel (resize_fast.go) when the cpukernel selection allows and the
// geometry fits; the scalar body below is the portable reference the
// fast kernel is byte-exact against.
func resizeBilinear(src, dst *pix.Image) {
	if cpukernel.Fast() && resizeBilinearFast(src, dst) {
		return
	}
	resizeBilinearScalar(src, dst)
}

func resizeBilinearScalar(src, dst *pix.Image) {
	c := src.C
	const fbits = 8
	const fone = 1 << fbits
	for y := 0; y < dst.H; y++ {
		// Source coordinate of the destination pixel centre.
		syf := (2*y+1)*src.H*fone/(2*dst.H) - fone/2
		if syf < 0 {
			syf = 0
		}
		sy0 := syf >> fbits
		wy1 := syf & (fone - 1)
		sy1 := sy0 + 1
		if sy1 >= src.H {
			sy1 = src.H - 1
		}
		row0 := src.Pix[sy0*src.W*c:]
		row1 := src.Pix[sy1*src.W*c:]
		drow := dst.Pix[y*dst.W*c:]
		for x := 0; x < dst.W; x++ {
			sxf := (2*x+1)*src.W*fone/(2*dst.W) - fone/2
			if sxf < 0 {
				sxf = 0
			}
			sx0 := sxf >> fbits
			wx1 := sxf & (fone - 1)
			sx1 := sx0 + 1
			if sx1 >= src.W {
				sx1 = src.W - 1
			}
			for ch := 0; ch < c; ch++ {
				p00 := int(row0[sx0*c+ch])
				p01 := int(row0[sx1*c+ch])
				p10 := int(row1[sx0*c+ch])
				p11 := int(row1[sx1*c+ch])
				top := p00*(fone-wx1) + p01*wx1
				bot := p10*(fone-wx1) + p11*wx1
				v := (top*(fone-wy1) + bot*wy1 + 1<<(2*fbits-1)) >> (2 * fbits)
				drow[x*c+ch] = byte(v)
			}
		}
	}
}

// Crop extracts the w×h window with top-left corner (x0, y0).
func Crop(src *pix.Image, x0, y0, w, h int) (*pix.Image, error) {
	if x0 < 0 || y0 < 0 || w <= 0 || h <= 0 || x0+w > src.W || y0+h > src.H {
		return nil, fmt.Errorf("imageproc: crop %d,%d %dx%d outside %dx%d", x0, y0, w, h, src.W, src.H)
	}
	dst := pix.New(w, h, src.C)
	c := src.C
	for y := 0; y < h; y++ {
		srow := src.Pix[((y0+y)*src.W+x0)*c:]
		copy(dst.Pix[y*w*c:(y+1)*w*c], srow[:w*c])
	}
	return dst, nil
}

// CenterCrop extracts a centred w×h window.
func CenterCrop(src *pix.Image, w, h int) (*pix.Image, error) {
	return Crop(src, (src.W-w)/2, (src.H-h)/2, w, h)
}

// RandomCrop extracts a uniformly random w×h window using rng.
func RandomCrop(src *pix.Image, w, h int, rng *rand.Rand) (*pix.Image, error) {
	if w > src.W || h > src.H {
		return nil, fmt.Errorf("imageproc: crop %dx%d larger than %dx%d", w, h, src.W, src.H)
	}
	x0, y0 := 0, 0
	if src.W > w {
		x0 = rng.Intn(src.W - w + 1)
	}
	if src.H > h {
		y0 = rng.Intn(src.H - h + 1)
	}
	return Crop(src, x0, y0, w, h)
}

// FlipHorizontal mirrors the image in place around the vertical axis.
func FlipHorizontal(m *pix.Image) {
	c := m.C
	for y := 0; y < m.H; y++ {
		row := m.Pix[y*m.W*c : (y+1)*m.W*c]
		for x := 0; x < m.W/2; x++ {
			xr := m.W - 1 - x
			for ch := 0; ch < c; ch++ {
				row[x*c+ch], row[xr*c+ch] = row[xr*c+ch], row[x*c+ch]
			}
		}
	}
}

// FlipVertical mirrors the image in place around the horizontal axis.
func FlipVertical(m *pix.Image) {
	c := m.C
	rowLen := m.W * c
	tmp := make([]byte, rowLen)
	for y := 0; y < m.H/2; y++ {
		top := m.Pix[y*rowLen : (y+1)*rowLen]
		bot := m.Pix[(m.H-1-y)*rowLen : (m.H-y)*rowLen]
		copy(tmp, top)
		copy(top, bot)
		copy(bot, tmp)
	}
}

// Normalize converts 8-bit HWC samples to float32 CHW with per-channel
// mean/std — the tensor layout and scaling DL engines consume. mean and
// std are in 0..255 sample units; std entries must be non-zero.
func Normalize(m *pix.Image, mean, std []float32) ([]float32, error) {
	if len(mean) != m.C || len(std) != m.C {
		return nil, fmt.Errorf("imageproc: mean/std length %d/%d, want %d", len(mean), len(std), m.C)
	}
	for _, s := range std {
		if s == 0 {
			return nil, fmt.Errorf("imageproc: zero std")
		}
	}
	out := make([]float32, m.C*m.H*m.W)
	plane := m.H * m.W
	for i := 0; i < plane; i++ {
		base := i * m.C
		for ch := 0; ch < m.C; ch++ {
			out[ch*plane+i] = (float32(m.Pix[base+ch]) - mean[ch]) / std[ch]
		}
	}
	return out, nil
}

// ToCHW converts interleaved HWC bytes to planar CHW bytes.
func ToCHW(m *pix.Image) []byte {
	out := make([]byte, len(m.Pix))
	plane := m.H * m.W
	for i := 0; i < plane; i++ {
		base := i * m.C
		for ch := 0; ch < m.C; ch++ {
			out[ch*plane+i] = m.Pix[base+ch]
		}
	}
	return out
}
