package imageproc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dlbooster/internal/pix"
)

func gradient(w, h, c int) *pix.Image {
	img := pix.New(w, h, c)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			for ch := 0; ch < c; ch++ {
				img.Set(x, y, ch, byte((x*255/maxInt(w-1, 1)+y*255/maxInt(h-1, 1))/2+ch))
			}
		}
	}
	return img
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func TestResizeIdentity(t *testing.T) {
	src := gradient(20, 30, 3)
	for _, ip := range []Interpolation{Nearest, Bilinear} {
		dst, err := Resize(src, 20, 30, ip)
		if err != nil {
			t.Fatal(err)
		}
		maxd, err := src.MaxAbsDiff(dst)
		if err != nil {
			t.Fatal(err)
		}
		if maxd > 0 {
			t.Errorf("%v identity resize differs by %d", ip, maxd)
		}
	}
}

func TestResizeGeometry(t *testing.T) {
	src := gradient(100, 80, 3)
	for _, tc := range []struct{ w, h int }{{50, 40}, {224, 224}, {1, 1}, {13, 99}} {
		for _, ip := range []Interpolation{Nearest, Bilinear} {
			dst, err := Resize(src, tc.w, tc.h, ip)
			if err != nil {
				t.Fatal(err)
			}
			if dst.W != tc.w || dst.H != tc.h || dst.C != 3 {
				t.Fatalf("%v: got %dx%dx%d", ip, dst.W, dst.H, dst.C)
			}
		}
	}
}

// TestResizeDownPreservesConstant: a flat image stays flat under both
// filters at any scale.
func TestResizeConstantProperty(t *testing.T) {
	f := func(v uint8, wSeed, hSeed, dwSeed, dhSeed uint8) bool {
		w, h := int(wSeed)%64+1, int(hSeed)%64+1
		dw, dh := int(dwSeed)%64+1, int(dhSeed)%64+1
		src := pix.New(w, h, 1)
		for i := range src.Pix {
			src.Pix[i] = v
		}
		for _, ip := range []Interpolation{Nearest, Bilinear} {
			dst, err := Resize(src, dw, dh, ip)
			if err != nil {
				return false
			}
			for _, s := range dst.Pix {
				if s != v {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestBilinearMonotoneGradient: bilinear downsampling of a horizontal
// gradient stays monotone along x.
func TestBilinearMonotoneGradient(t *testing.T) {
	src := pix.New(128, 16, 1)
	for y := 0; y < 16; y++ {
		for x := 0; x < 128; x++ {
			src.Set(x, y, 0, byte(x*2))
		}
	}
	dst, err := Resize(src, 32, 8, Bilinear)
	if err != nil {
		t.Fatal(err)
	}
	for y := 0; y < dst.H; y++ {
		for x := 1; x < dst.W; x++ {
			if dst.At(x, y, 0) < dst.At(x-1, y, 0) {
				t.Fatalf("non-monotone at (%d,%d): %d < %d", x, y, dst.At(x, y, 0), dst.At(x-1, y, 0))
			}
		}
	}
}

func TestResizeIntoChannelMismatch(t *testing.T) {
	src := gradient(8, 8, 3)
	dst := pix.New(4, 4, 1)
	if err := ResizeInto(src, dst, Nearest); err == nil {
		t.Fatal("channel mismatch accepted")
	}
	if err := ResizeInto(src, pix.New(4, 4, 3), Interpolation(99)); err == nil {
		t.Fatal("unknown interpolation accepted")
	}
}

func TestCrop(t *testing.T) {
	src := gradient(10, 10, 3)
	dst, err := Crop(src, 2, 3, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if dst.W != 4 || dst.H != 5 {
		t.Fatalf("crop geometry %dx%d", dst.W, dst.H)
	}
	for y := 0; y < 5; y++ {
		for x := 0; x < 4; x++ {
			for ch := 0; ch < 3; ch++ {
				if dst.At(x, y, ch) != src.At(x+2, y+3, ch) {
					t.Fatalf("crop content mismatch at (%d,%d,%d)", x, y, ch)
				}
			}
		}
	}
	for _, bad := range [][4]int{{-1, 0, 4, 4}, {0, -1, 4, 4}, {8, 0, 4, 4}, {0, 8, 4, 4}, {0, 0, 0, 4}, {0, 0, 4, 0}} {
		if _, err := Crop(src, bad[0], bad[1], bad[2], bad[3]); err == nil {
			t.Fatalf("bad crop %v accepted", bad)
		}
	}
}

func TestCenterCrop(t *testing.T) {
	src := gradient(10, 10, 1)
	dst, err := CenterCrop(src, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if dst.At(0, 0, 0) != src.At(3, 3, 0) {
		t.Fatal("center crop not centred")
	}
}

func TestRandomCropWithinBounds(t *testing.T) {
	src := gradient(10, 8, 3)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		dst, err := RandomCrop(src, 5, 5, rng)
		if err != nil {
			t.Fatal(err)
		}
		if dst.W != 5 || dst.H != 5 {
			t.Fatal("wrong geometry")
		}
	}
	// Exact-size crop must work even though Intn(0) would panic.
	if _, err := RandomCrop(src, 10, 8, rng); err != nil {
		t.Fatal(err)
	}
	if _, err := RandomCrop(src, 11, 8, rng); err == nil {
		t.Fatal("oversized crop accepted")
	}
}

func TestFlipHorizontalInvolution(t *testing.T) {
	src := gradient(9, 7, 3)
	clone := src.Clone()
	FlipHorizontal(src)
	if d, _ := src.MaxAbsDiff(clone); d == 0 {
		t.Fatal("flip was a no-op on asymmetric image")
	}
	FlipHorizontal(src)
	if d, _ := src.MaxAbsDiff(clone); d != 0 {
		t.Fatal("double horizontal flip is not identity")
	}
}

func TestFlipVerticalInvolution(t *testing.T) {
	src := gradient(8, 6, 1)
	clone := src.Clone()
	FlipVertical(src)
	FlipVertical(src)
	if d, _ := src.MaxAbsDiff(clone); d != 0 {
		t.Fatal("double vertical flip is not identity")
	}
}

func TestFlipHorizontalMirrors(t *testing.T) {
	src := pix.New(3, 1, 1)
	src.Pix = []byte{1, 2, 3}
	FlipHorizontal(src)
	want := []byte{3, 2, 1}
	for i := range want {
		if src.Pix[i] != want[i] {
			t.Fatalf("flip = %v, want %v", src.Pix, want)
		}
	}
}

func TestNormalize(t *testing.T) {
	m := pix.New(2, 1, 3)
	copy(m.Pix, []byte{10, 20, 30, 40, 50, 60})
	out, err := Normalize(m, []float32{10, 20, 30}, []float32{10, 10, 10})
	if err != nil {
		t.Fatal(err)
	}
	// CHW layout: channel 0 plane first.
	want := []float32{0, 3, 0, 3, 0, 3}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("out = %v, want %v", out, want)
		}
	}
	if _, err := Normalize(m, []float32{1}, []float32{1}); err == nil {
		t.Fatal("wrong mean length accepted")
	}
	if _, err := Normalize(m, []float32{0, 0, 0}, []float32{1, 0, 1}); err == nil {
		t.Fatal("zero std accepted")
	}
}

func TestToCHW(t *testing.T) {
	m := pix.New(2, 2, 3)
	copy(m.Pix, []byte{
		1, 2, 3, 4, 5, 6,
		7, 8, 9, 10, 11, 12,
	})
	got := ToCHW(m)
	want := []byte{1, 4, 7, 10, 2, 5, 8, 11, 3, 6, 9, 12}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("CHW = %v, want %v", got, want)
		}
	}
}

// TestToCHWRoundTripProperty: HWC→CHW is a bijection (every byte lands
// exactly once).
func TestToCHWRoundTripProperty(t *testing.T) {
	f := func(wSeed, hSeed uint8, data []byte) bool {
		w, h := int(wSeed)%16+1, int(hSeed)%16+1
		m := pix.New(w, h, 3)
		for i := range m.Pix {
			if i < len(data) {
				m.Pix[i] = data[i]
			}
		}
		chw := ToCHW(m)
		plane := w * h
		for i := 0; i < plane; i++ {
			for ch := 0; ch < 3; ch++ {
				if chw[ch*plane+i] != m.Pix[i*3+ch] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRotationGeometryAndInverses(t *testing.T) {
	src := gradient(5, 3, 3)
	r90 := Rotate90(src)
	if r90.W != 3 || r90.H != 5 {
		t.Fatalf("Rotate90 geometry %dx%d", r90.W, r90.H)
	}
	// Four quarter turns are the identity.
	back := Rotate90(Rotate90(Rotate90(r90)))
	if d, _ := back.MaxAbsDiff(src); d != 0 {
		t.Fatal("four Rotate90 != identity")
	}
	// 90 then 270 is the identity.
	if d, _ := Rotate270(r90).MaxAbsDiff(src); d != 0 {
		t.Fatal("Rotate270(Rotate90) != identity")
	}
	// 180 twice is the identity, and equals two quarter turns.
	r180 := Rotate180(src)
	if d, _ := Rotate180(r180).MaxAbsDiff(src); d != 0 {
		t.Fatal("Rotate180 twice != identity")
	}
	if d, _ := Rotate90(Rotate90(src)).MaxAbsDiff(r180); d != 0 {
		t.Fatal("two Rotate90 != Rotate180")
	}
	// Transpose and Transverse are involutions.
	if d, _ := Transpose(Transpose(src)).MaxAbsDiff(src); d != 0 {
		t.Fatal("Transpose twice != identity")
	}
	if d, _ := Transverse(Transverse(src)).MaxAbsDiff(src); d != 0 {
		t.Fatal("Transverse twice != identity")
	}
}

func TestRotate90PixelMapping(t *testing.T) {
	// 2x1 image [A B] rotated 90° CW becomes a 1x2 column [A; B].
	src := pix.New(2, 1, 1)
	src.Pix[0], src.Pix[1] = 10, 20
	dst := Rotate90(src)
	if dst.W != 1 || dst.H != 2 || dst.At(0, 0, 0) != 10 || dst.At(0, 1, 0) != 20 {
		t.Fatalf("Rotate90 mapping: %+v", dst.Pix)
	}
}

func TestApplyOrientationAllValues(t *testing.T) {
	src := gradient(4, 3, 1)
	for o := 0; o <= 8; o++ {
		got, err := ApplyOrientation(src, o)
		if err != nil {
			t.Fatalf("orientation %d: %v", o, err)
		}
		wantW, wantH := 4, 3
		if o >= 5 {
			wantW, wantH = 3, 4
		}
		if got.W != wantW || got.H != wantH {
			t.Fatalf("orientation %d geometry %dx%d", o, got.W, got.H)
		}
	}
	if _, err := ApplyOrientation(src, 9); err == nil {
		t.Fatal("orientation 9 accepted")
	}
	// Orientation 6 (rotate 90 CW to upright): the top-left of the
	// upright image is the bottom-left of the stored one.
	got, _ := ApplyOrientation(src, 6)
	if got.At(0, 0, 0) != src.At(0, src.H-1, 0) {
		t.Fatal("orientation 6 mapping wrong")
	}
}
