package imageproc

import (
	"fmt"

	"dlbooster/internal/pix"
)

// Rotations and transposes: phone and camera uploads — a large share of
// any online-inference service's traffic (Figure 1's client is a phone)
// — arrive with EXIF orientation set, and the preprocessing pipeline has
// to upright them before the model sees the pixels.

// Rotate90 returns the image rotated 90° clockwise.
func Rotate90(src *pix.Image) *pix.Image {
	dst := pix.New(src.H, src.W, src.C)
	for y := 0; y < src.H; y++ {
		for x := 0; x < src.W; x++ {
			for c := 0; c < src.C; c++ {
				dst.Set(src.H-1-y, x, c, src.At(x, y, c))
			}
		}
	}
	return dst
}

// Rotate180 returns the image rotated 180°.
func Rotate180(src *pix.Image) *pix.Image {
	dst := src.Clone()
	FlipHorizontal(dst)
	FlipVertical(dst)
	return dst
}

// Rotate270 returns the image rotated 270° clockwise (90° CCW).
func Rotate270(src *pix.Image) *pix.Image {
	dst := pix.New(src.H, src.W, src.C)
	for y := 0; y < src.H; y++ {
		for x := 0; x < src.W; x++ {
			for c := 0; c < src.C; c++ {
				dst.Set(y, src.W-1-x, c, src.At(x, y, c))
			}
		}
	}
	return dst
}

// Transpose mirrors along the main diagonal (x↔y).
func Transpose(src *pix.Image) *pix.Image {
	dst := pix.New(src.H, src.W, src.C)
	for y := 0; y < src.H; y++ {
		for x := 0; x < src.W; x++ {
			for c := 0; c < src.C; c++ {
				dst.Set(y, x, c, src.At(x, y, c))
			}
		}
	}
	return dst
}

// Transverse mirrors along the anti-diagonal.
func Transverse(src *pix.Image) *pix.Image {
	dst := pix.New(src.H, src.W, src.C)
	for y := 0; y < src.H; y++ {
		for x := 0; x < src.W; x++ {
			for c := 0; c < src.C; c++ {
				dst.Set(src.H-1-y, src.W-1-x, c, src.At(x, y, c))
			}
		}
	}
	return dst
}

// ApplyOrientation uprights an image according to its EXIF orientation
// tag (1–8; 0 is treated as 1). It returns the input unchanged for
// orientation ≤ 1 and errors on values > 8.
func ApplyOrientation(src *pix.Image, orientation int) (*pix.Image, error) {
	switch orientation {
	case 0, 1:
		return src, nil
	case 2:
		dst := src.Clone()
		FlipHorizontal(dst)
		return dst, nil
	case 3:
		return Rotate180(src), nil
	case 4:
		dst := src.Clone()
		FlipVertical(dst)
		return dst, nil
	case 5:
		return Transpose(src), nil
	case 6:
		return Rotate90(src), nil
	case 7:
		return Transverse(src), nil
	case 8:
		return Rotate270(src), nil
	default:
		return nil, fmt.Errorf("imageproc: EXIF orientation %d outside 1..8", orientation)
	}
}
