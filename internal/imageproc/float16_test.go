package imageproc

import (
	"math"
	"testing"
	"testing/quick"

	"dlbooster/internal/pix"
)

func TestF16KnownValues(t *testing.T) {
	cases := []struct {
		f float32
		h Float16
	}{
		{0, 0x0000},
		{1, 0x3C00},
		{-1, 0xBC00},
		{2, 0x4000},
		{0.5, 0x3800},
		{65504, 0x7BFF},                         // largest normal half
		{float32(math.Inf(1)), 0x7C00},          // +Inf
		{float32(math.Inf(-1)), 0xFC00},         // -Inf
		{5.960464477539063e-08, 0x0001},         // smallest subnormal
		{6.097555160522461e-05, 0x03FF},         // largest subnormal
		{6.103515625e-05, 0x0400},               // smallest normal
		{100000, 0x7C00},                        // overflow → Inf
		{1e-10, 0x0000},                         // underflow → zero
		{float32(math.Copysign(0, -1)), 0x8000}, // -0
	}
	for _, c := range cases {
		if got := F32ToF16(c.f); got != c.h {
			t.Errorf("F32ToF16(%g) = %#04x, want %#04x", c.f, got, c.h)
		}
	}
	if got := F32ToF16(float32(math.NaN())); got&0x7C00 != 0x7C00 || got&0x3FF == 0 {
		t.Errorf("NaN converted to %#04x, not a half NaN", got)
	}
}

func TestF16ToF32KnownValues(t *testing.T) {
	cases := []struct {
		h Float16
		f float32
	}{
		{0x3C00, 1},
		{0xC000, -2},
		{0x7BFF, 65504},
		{0x0001, 5.960464477539063e-08},
		{0x0400, 6.103515625e-05},
	}
	for _, c := range cases {
		if got := F16ToF32(c.h); got != c.f {
			t.Errorf("F16ToF32(%#04x) = %g, want %g", c.h, got, c.f)
		}
	}
	if !math.IsInf(float64(F16ToF32(0x7C00)), 1) || !math.IsInf(float64(F16ToF32(0xFC00)), -1) {
		t.Error("infinities corrupted")
	}
	if !math.IsNaN(float64(F16ToF32(0x7E00))) {
		t.Error("NaN corrupted")
	}
}

// TestF16RoundTripExact: every finite half value converts to float32 and
// back bit-exactly (half ⊂ single).
func TestF16RoundTripExact(t *testing.T) {
	for bits := 0; bits < 1<<16; bits++ {
		h := Float16(bits)
		if h&0x7C00 == 0x7C00 && h&0x3FF != 0 {
			// NaNs: payload need not round-trip exactly, but NaN must
			// stay NaN.
			if back := F32ToF16(F16ToF32(h)); back&0x7C00 != 0x7C00 || back&0x3FF == 0 {
				t.Fatalf("NaN %#04x became %#04x", h, back)
			}
			continue
		}
		if back := F32ToF16(F16ToF32(h)); back != h {
			t.Fatalf("half %#04x round-trips to %#04x", h, back)
		}
	}
}

// TestF32ToF16RoundingError: conversion error is within half a ULP for
// values in the normal half range.
func TestF32ToF16RoundingError(t *testing.T) {
	f := func(raw uint16) bool {
		// Build values across the half range from the seed.
		v := float32(raw)/65535*130000 - 65000
		h := F32ToF16(v)
		back := F16ToF32(h)
		diff := math.Abs(float64(back - v))
		// ULP at |v|: 2^(exp-10).
		av := math.Abs(float64(v))
		if av < 6.1e-5 {
			return diff <= 6e-8*0.51/0.5 // half the subnormal step
		}
		exp := math.Floor(math.Log2(av))
		ulp := math.Pow(2, exp-10)
		return diff <= ulp/2*1.0001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestNormalizeF16MatchesF32(t *testing.T) {
	m := pix.New(4, 3, 3)
	for i := range m.Pix {
		m.Pix[i] = byte(i * 7)
	}
	mean := []float32{128, 128, 128}
	std := []float32{64, 64, 64}
	f32, err := Normalize(m, mean, std)
	if err != nil {
		t.Fatal(err)
	}
	f16, err := NormalizeF16(m, mean, std)
	if err != nil {
		t.Fatal(err)
	}
	if len(f16) != len(f32) {
		t.Fatalf("lengths differ")
	}
	for i := range f32 {
		back := F16ToF32(f16[i])
		if math.Abs(float64(back-f32[i])) > 0.002 {
			t.Fatalf("index %d: f16 %g vs f32 %g", i, back, f32[i])
		}
	}
	if _, err := NormalizeF16(m, mean[:1], std); err == nil {
		t.Fatal("bad mean accepted")
	}
}

func TestF16BytesRoundTrip(t *testing.T) {
	in := []Float16{0x3C00, 0x0001, 0xFFFF, 0x0000}
	data := F16Bytes(in)
	if len(data) != 8 {
		t.Fatalf("bytes = %d", len(data))
	}
	back, err := F16FromBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	for i := range in {
		if back[i] != in[i] {
			t.Fatalf("index %d: %#04x != %#04x", i, back[i], in[i])
		}
	}
	if _, err := F16FromBytes(data[:3]); err == nil {
		t.Fatal("odd length accepted")
	}
}
