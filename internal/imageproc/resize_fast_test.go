package imageproc

import (
	"bytes"
	"math/rand"
	"testing"

	"dlbooster/internal/cpukernel"
	"dlbooster/internal/pix"
)

func noiseImage(rng *rand.Rand, w, h, c int) *pix.Image {
	img := pix.New(w, h, c)
	rng.Read(img.Pix)
	return img
}

// TestResizeFastScalarByteParity pins the fast bilinear kernel to the
// scalar reference byte-for-byte across layouts, up/downscales and odd
// geometries — the contract that lets DecodeScaledInto fuse it without
// changing output.
func TestResizeFastScalarByteParity(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	geoms := []struct{ sw, sh, dw, dh int }{
		{512, 384, 96, 96},   // classic downscale
		{64, 48, 224, 224},   // upscale
		{251, 187, 97, 33},   // odd everything
		{96, 96, 96, 96},     // identity geometry
		{1, 1, 16, 16},       // single-pixel source
		{33, 7, 1, 1},        // single-pixel destination
		{500, 3, 129, 250},   // extreme aspect ratios
		{128, 128, 1024, 64}, // widest in-scope destination
	}
	for _, c := range []int{1, 3} {
		for _, g := range geoms {
			src := noiseImage(rng, g.sw, g.sh, c)
			fast := pix.New(g.dw, g.dh, c)
			ref := pix.New(g.dw, g.dh, c)
			if !resizeBilinearFast(src, fast) {
				t.Fatalf("c=%d %dx%d->%dx%d: fast kernel declined in-scope geometry", c, g.sw, g.sh, g.dw, g.dh)
			}
			resizeBilinearScalar(src, ref)
			if !bytes.Equal(fast.Pix, ref.Pix) {
				t.Fatalf("c=%d %dx%d->%dx%d: fast kernel not byte-identical to scalar", c, g.sw, g.sh, g.dw, g.dh)
			}
		}
	}
}

// TestResizeFastScopeFallback checks the fast kernel refuses geometries
// outside its stack-table bound and layouts it has no unrolled loop for,
// and that the dispatching resizeBilinear still produces scalar output
// for them.
func TestResizeFastScopeFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(98))

	wide := noiseImage(rng, 64, 64, 3)
	dstWide := pix.New(maxFastResizeWidth+1, 32, 3)
	if resizeBilinearFast(wide, dstWide) {
		t.Fatalf("fast kernel accepted dst width %d beyond its %d-column tables", dstWide.W, maxFastResizeWidth)
	}
	for _, b := range dstWide.Pix {
		if b != 0 {
			t.Fatal("declined fast kernel wrote into dst")
		}
	}
	ref := pix.New(maxFastResizeWidth+1, 32, 3)
	resizeBilinearScalar(wide, ref)
	resizeBilinear(wide, dstWide)
	if !bytes.Equal(dstWide.Pix, ref.Pix) {
		t.Fatal("dispatcher output diverged from scalar on out-of-scope width")
	}

	// pix.New rejects c=2, so build the off-layout image directly.
	twoCh := &pix.Image{W: 40, H: 40, C: 2, Pix: make([]byte, 40*40*2)}
	rng.Read(twoCh.Pix)
	dst2 := &pix.Image{W: 20, H: 20, C: 2, Pix: make([]byte, 20*20*2)}
	if resizeBilinearFast(twoCh, dst2) {
		t.Fatal("fast kernel accepted a 2-channel layout")
	}
}

// TestResizeKillSwitchParity checks the cpukernel kill switch pins the
// dispatcher to the scalar kernel with unchanged output.
func TestResizeKillSwitchParity(t *testing.T) {
	prev := cpukernel.ScalarOnly()
	t.Cleanup(func() { cpukernel.SetScalarOnly(prev) })

	rng := rand.New(rand.NewSource(99))
	src := noiseImage(rng, 300, 200, 3)
	fast := pix.New(96, 96, 3)
	scalar := pix.New(96, 96, 3)

	cpukernel.SetScalarOnly(false)
	resizeBilinear(src, fast)
	cpukernel.SetScalarOnly(true)
	resizeBilinear(src, scalar)
	if !bytes.Equal(fast.Pix, scalar.Pix) {
		t.Fatal("kill-switch scalar output diverged from fast output")
	}
}

func BenchmarkResizeBilinear(b *testing.B) {
	rng := rand.New(rand.NewSource(100))
	src := noiseImage(rng, 512, 384, 3)
	dst := pix.New(224, 224, 3)
	b.Run("fast", func(b *testing.B) {
		b.SetBytes(int64(len(dst.Pix)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if !resizeBilinearFast(src, dst) {
				b.Fatal("fast kernel declined")
			}
		}
	})
	b.Run("scalar", func(b *testing.B) {
		b.SetBytes(int64(len(dst.Pix)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			resizeBilinearScalar(src, dst)
		}
	})
}
