package jpeg

import "encoding/binary"

// Minimal EXIF support: the Orientation tag (0x0112), which phone
// uploads routinely carry and an inference front end must honour. We
// parse APP1 far enough to find IFD0's Orientation entry and expose it;
// applying it is imageproc.ApplyOrientation's job (like libjpeg, the
// decoder itself never rotates pixels).

const orientationTag = 0x0112

// parseEXIFOrientation extracts the Orientation value (1–8) from an
// APP1 payload, returning 0 when absent or malformed — EXIF is
// best-effort metadata and must never fail a decode.
func parseEXIFOrientation(seg []byte) int {
	if len(seg) < 6+8 || string(seg[:6]) != "Exif\x00\x00" {
		return 0
	}
	tiff := seg[6:]
	var order binary.ByteOrder
	switch {
	case tiff[0] == 'I' && tiff[1] == 'I':
		order = binary.LittleEndian
	case tiff[0] == 'M' && tiff[1] == 'M':
		order = binary.BigEndian
	default:
		return 0
	}
	if order.Uint16(tiff[2:]) != 42 {
		return 0
	}
	ifd := int64(order.Uint32(tiff[4:]))
	if ifd < 8 || ifd+2 > int64(len(tiff)) {
		return 0
	}
	count := int(order.Uint16(tiff[ifd:]))
	pos := ifd + 2
	for i := 0; i < count; i++ {
		if pos+12 > int64(len(tiff)) {
			return 0
		}
		entry := tiff[pos : pos+12]
		pos += 12
		if order.Uint16(entry) != orientationTag {
			continue
		}
		// Orientation is a SHORT with count 1; the value sits in the
		// first two bytes of the inline value field.
		if order.Uint16(entry[2:]) != 3 || order.Uint32(entry[4:]) != 1 {
			return 0
		}
		v := int(order.Uint16(entry[8:]))
		if v < 1 || v > 8 {
			return 0
		}
		return v
	}
	return 0
}

// exifAPP1 builds a minimal APP1 payload carrying only the Orientation
// tag, for the encoder (and for tests to round-trip against).
func exifAPP1(orientation int) []byte {
	// Exif\0\0 + little-endian TIFF header + one-entry IFD0.
	seg := make([]byte, 6+8+2+12+4)
	copy(seg, "Exif\x00\x00")
	tiff := seg[6:]
	tiff[0], tiff[1] = 'I', 'I'
	binary.LittleEndian.PutUint16(tiff[2:], 42)
	binary.LittleEndian.PutUint32(tiff[4:], 8) // IFD0 right after header
	binary.LittleEndian.PutUint16(tiff[8:], 1) // one entry
	entry := tiff[10:]
	binary.LittleEndian.PutUint16(entry[0:], orientationTag)
	binary.LittleEndian.PutUint16(entry[2:], 3) // SHORT
	binary.LittleEndian.PutUint32(entry[4:], 1) // count
	binary.LittleEndian.PutUint16(entry[8:], uint16(orientation))
	// next-IFD offset = 0 (the trailing four zero bytes)
	return seg
}
