package jpeg

// The pluggable decode-kernel layer. The three hot loops of the decoder
// — iDCT (full and scaled), YCbCr→RGB, and (in internal/imageproc) the
// bilinear resizer — exist in two implementations: the portable scalar
// reference (dct.go, scaled.go, color.go: clarity-first, the code the
// paper's CPU baseline burns cores on) and the fast kernels in this
// file, selected at init through the internal/cpukernel capability
// registry — the same register-by-name pattern the FPGA mirror registry
// uses — with a kill switch (DLBOOSTER_NO_SIMD,
// core.Config.DisableSIMDKernels, dlbench -no-simd) that pins the
// scalar reference everywhere.
//
// The fast kernels are required to be numerically EXACT against the
// scalar reference — byte-for-byte on every input, not PSNR-close — so
// the capability switch can never change decoded pixels, only decode
// speed. That rules out approximating the float64 iDCT with fixed
// point; instead the fast iDCT wins by restructuring the same float
// arithmetic (hoisting the int32 dequantise-and-convert out of the
// basis loops, unrolling the s-point transforms, and skipping
// exactly-zero coefficient columns — adding ±0.0 to a float sum is an
// identity, so sparsity short-cuts are bit-exact), while the YCbCr and
// resize kernels are genuine fixed-point/SWAR restructurings of loops
// that were already integer: hoisted per-chroma-sample products shared
// by the 2×-subsampled pixel pair, branchless sign-mask clamps, and
// precomputed resize weight tables. Parity is CI-pinned with the kill
// switch both on and off (kernels_test.go).

import (
	"math"
	"sync/atomic"

	"dlbooster/internal/cpukernel"
)

// swarKernelName is the fast pure-Go implementation's registry name.
const swarKernelName = "swar"

func init() {
	// Pure-Go SWAR kernels run on every host; a future architecture-
	// specific assembly kernel would register at a higher priority with
	// a real capability probe.
	cpukernel.Register(cpukernel.Impl{Name: swarKernelName, Priority: 10})
}

// kernelTable binds one implementation of each in-package hot loop.
type kernelTable struct {
	name       string
	idct       func(coef *block, out *[64]byte)
	idctScaled func(blk *block, q *QuantTable, s int, out *[16]byte)
	ycbcrRow   func(out, yRow, cbRow, crRow []byte, w int, shx [3]uint)
}

var scalarKernelTable = kernelTable{
	name:       cpukernel.ScalarName,
	idct:       idct,
	idctScaled: idctScaled,
	ycbcrRow:   ycbcrRowScalar,
}

var swarKernelTable = kernelTable{
	name:       swarKernelName,
	idct:       idctFast,
	idctScaled: idctScaledFast,
	ycbcrRow:   ycbcrRowFast,
}

// activeKernels resolves the kernel table for this decode: one atomic
// load, so per-image dispatch is free and a kill-switch flip mid-run
// affects the next image, never a half-decoded one.
func activeKernels() *kernelTable {
	if cpukernel.Fast() {
		return &swarKernelTable
	}
	return &scalarKernelTable
}

// Process-global kernel accounting, surfaced by core.Booster as the
// decode_kernel_simd_total and decode_parallel_scans_total registry
// counters.
var (
	kernelSIMDDecodes atomic.Int64
	parallelScansRun  atomic.Int64
)

// KernelSIMDDecodes returns the number of images reconstructed with a
// non-scalar kernel table (process-global).
func KernelSIMDDecodes() int64 { return kernelSIMDDecodes.Load() }

// ParallelScans returns the number of scans whose entropy-coded restart
// segments were decoded in parallel (process-global).
func ParallelScans() int64 { return parallelScansRun.Load() }

// KernelName reports the active kernel implementation ("scalar" or
// "swar"), for dlbench banners and doctor output.
func KernelName() string { return cpukernel.Active() }

// --- fast iDCT kernels -------------------------------------------------

// idctFast is the sparsity-specialised full 8×8 inverse transform. It
// computes exactly the sums idct computes, in the same order, but (a)
// converts each nonzero coefficient to float64 once instead of once per
// output column, (b) skips coefficients that are exactly zero (a ±0.0
// addend never changes a float sum), and (c) short-circuits the two
// overwhelmingly common shapes — a DC-only column (the 8-point DC basis
// row is constant) and a DC-only block (all 64 samples equal).
func idctFast(coef *block, out *[64]byte) {
	var tmp [64]float64
	var cols [8]int8
	ncols := 0
	dcCol := false
	for v := 0; v < 8; v++ {
		// Compact the column's nonzero coefficients, ascending u, so the
		// accumulation order matches the reference loop.
		var fv [8]float64
		var iu [8]int8
		n := 0
		for u := 0; u < 8; u++ {
			if c := coef[u*8+v]; c != 0 {
				fv[n] = float64(c)
				iu[n] = int8(u)
				n++
			}
		}
		if n == 0 {
			continue // tmp column stays exactly zero
		}
		cols[ncols] = int8(v)
		ncols++
		if n == 1 && iu[0] == 0 {
			// DC-only column: cosBasis[0][x] is the same constant for
			// every x, so the whole column is one multiply.
			if v == 0 {
				dcCol = true
			}
			t := cosBasis[0][0] * fv[0]
			for x := 0; x < 8; x++ {
				tmp[x*8+v] = t
			}
			continue
		}
		for x := 0; x < 8; x++ {
			var s float64
			for k := 0; k < n; k++ {
				s += cosBasis[iu[k]][x] * fv[k]
			}
			tmp[x*8+v] = s
		}
	}
	switch {
	case ncols == 0:
		// Empty block: every sample is clamp8(round(0)+128).
		for i := range out {
			out[i] = 128
		}
		return
	case ncols == 1 && cols[0] == 0 && dcCol:
		// DC-only block: one value fills all 64 samples.
		val := clamp8(int32(math.Round(cosBasis[0][0]*tmp[0])) + 128)
		for i := range out {
			out[i] = val
		}
		return
	}
	for x := 0; x < 8; x++ {
		row := tmp[x*8 : x*8+8 : x*8+8]
		for y := 0; y < 8; y++ {
			var s float64
			for k := 0; k < ncols; k++ {
				v := cols[k]
				s += cosBasis[v][y] * row[v]
			}
			out[x*8+y] = clamp8(int32(math.Round(s)) + 128)
		}
	}
}

// idctScaledFast dispatches to the per-scale specialisations. Each is
// the reference idctScaled with the dequantise-and-convert hoisted out
// of the basis loops and the loops fully unrolled — the same float
// operations in the same order, so the output is bit-identical.
func idctScaledFast(blk *block, q *QuantTable, s int, out *[16]byte) {
	switch s {
	case 1:
		idctScaled1Fast(blk, q, out)
	case 2:
		idctScaled2Fast(blk, q, out)
	default:
		idctScaled4Fast(blk, q, out)
	}
}

// idctScaled1Fast: the 1-point transform touches only the DC
// coefficient; two multiplies reproduce the reference's two passes.
func idctScaled1Fast(blk *block, q *QuantTable, out *[16]byte) {
	b0 := scaledBasis[0][0][0]
	out[0] = clamp8(int32(math.Round(b0*(b0*float64(blk[0]*int32(q[0]))))) + 128)
}

// idctScaled2Fast: the 2-point transform over the 2×2 low-frequency
// corner, unrolled, with a DC-only short-cut for EOB-after-DC blocks.
func idctScaled2Fast(blk *block, q *QuantTable, out *[16]byte) {
	b := &scaledBasis[1]
	d00 := float64(blk[0] * int32(q[0])) // (u=0, v=0)
	if blk[1]|blk[8]|blk[9] == 0 {
		val := clamp8(int32(math.Round(b[0][0]*(b[0][0]*d00))) + 128)
		out[0], out[1], out[2], out[3] = val, val, val, val
		return
	}
	d01 := float64(blk[1] * int32(q[1])) // (u=0, v=1)
	d10 := float64(blk[8] * int32(q[8])) // (u=1, v=0)
	d11 := float64(blk[9] * int32(q[9])) // (u=1, v=1)
	// Columns: tmp[x*2+v] = Σ_u b[u][x]·d(u,v), ascending u.
	t00 := b[0][0]*d00 + b[1][0]*d10
	t01 := b[0][0]*d01 + b[1][0]*d11
	t10 := b[0][1]*d00 + b[1][1]*d10
	t11 := b[0][1]*d01 + b[1][1]*d11
	// Rows: out[x*2+y] = Σ_v b[v][y]·tmp[x*2+v], ascending v.
	out[0] = clamp8(int32(math.Round(b[0][0]*t00+b[1][0]*t01)) + 128)
	out[1] = clamp8(int32(math.Round(b[0][1]*t00+b[1][1]*t01)) + 128)
	out[2] = clamp8(int32(math.Round(b[0][0]*t10+b[1][0]*t11)) + 128)
	out[3] = clamp8(int32(math.Round(b[0][1]*t10+b[1][1]*t11)) + 128)
}

// idctScaled4Fast: the 4-point transform over the 4×4 low-frequency
// corner. Coefficients are dequantised and converted once (the
// reference redoes both per output column), all-zero columns are
// skipped exactly, and the basis products are unrolled.
func idctScaled4Fast(blk *block, q *QuantTable, out *[16]byte) {
	b := &scaledBasis[2]
	if blk[1]|blk[2]|blk[3]|blk[8]|blk[9]|blk[10]|blk[11]|
		blk[16]|blk[17]|blk[18]|blk[19]|blk[24]|blk[25]|blk[26]|blk[27] == 0 {
		// EOB after DC: sixteen identical samples.
		val := clamp8(int32(math.Round(b[0][0]*(b[0][0]*float64(blk[0]*int32(q[0]))))) + 128)
		for i := range out {
			out[i] = val
		}
		return
	}
	var tmp [16]float64
	var zero [4]bool
	for v := 0; v < 4; v++ {
		c0 := blk[v] * int32(q[v])
		c1 := blk[8+v] * int32(q[8+v])
		c2 := blk[16+v] * int32(q[16+v])
		c3 := blk[24+v] * int32(q[24+v])
		if c0|c1|c2|c3 == 0 {
			zero[v] = true // tmp column stays exactly zero
			continue
		}
		d0, d1, d2, d3 := float64(c0), float64(c1), float64(c2), float64(c3)
		tmp[v] = b[0][0]*d0 + b[1][0]*d1 + b[2][0]*d2 + b[3][0]*d3
		tmp[4+v] = b[0][1]*d0 + b[1][1]*d1 + b[2][1]*d2 + b[3][1]*d3
		tmp[8+v] = b[0][2]*d0 + b[1][2]*d1 + b[2][2]*d2 + b[3][2]*d3
		tmp[12+v] = b[0][3]*d0 + b[1][3]*d1 + b[2][3]*d2 + b[3][3]*d3
	}
	for x := 0; x < 4; x++ {
		t0, t1, t2, t3 := tmp[x*4], tmp[x*4+1], tmp[x*4+2], tmp[x*4+3]
		for y := 0; y < 4; y++ {
			var s float64
			if !zero[0] {
				s += b[0][y] * t0
			}
			if !zero[1] {
				s += b[1][y] * t1
			}
			if !zero[2] {
				s += b[2][y] * t2
			}
			if !zero[3] {
				s += b[3][y] * t3
			}
			out[x*4+y] = clamp8(int32(math.Round(s)) + 128)
		}
	}
}
