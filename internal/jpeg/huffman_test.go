package jpeg

import (
	"math/rand"
	"testing"
)

func TestHuffmanSpecValidate(t *testing.T) {
	for _, spec := range []*HuffmanSpec{&stdDCLumaSpec, &stdACLumaSpec, &stdDCChromaSpec, &stdACChromaSpec} {
		if err := spec.validate(); err != nil {
			t.Errorf("standard spec rejected: %v", err)
		}
	}
	bad := HuffmanSpec{}
	if err := bad.validate(); err == nil {
		t.Error("empty spec accepted")
	}
	over := HuffmanSpec{Counts: [16]byte{3}, Values: []byte{1, 2, 3}} // 3 codes of 1 bit
	if err := over.validate(); err == nil {
		t.Error("over-subscribed spec accepted")
	}
	mismatch := HuffmanSpec{Counts: [16]byte{0, 2}, Values: []byte{1}}
	if err := mismatch.validate(); err == nil {
		t.Error("counts/values mismatch accepted")
	}
}

// TestHuffmanEncodeDecodeRoundTrip encodes a pseudo-random symbol stream
// with each standard table and decodes it back.
func TestHuffmanEncodeDecodeRoundTrip(t *testing.T) {
	specs := map[string]*HuffmanSpec{
		"dcLuma":   &stdDCLumaSpec,
		"acLuma":   &stdACLumaSpec,
		"dcChroma": &stdDCChromaSpec,
		"acChroma": &stdACChromaSpec,
	}
	for name, spec := range specs {
		t.Run(name, func(t *testing.T) {
			enc, err := newHuffEncoder(spec)
			if err != nil {
				t.Fatal(err)
			}
			dec, err := newHuffDecoder(spec)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(1))
			symbols := make([]byte, 4096)
			for i := range symbols {
				symbols[i] = spec.Values[rng.Intn(len(spec.Values))]
			}
			w := &bitWriter{}
			for _, s := range symbols {
				if err := enc.emit(w, s); err != nil {
					t.Fatal(err)
				}
			}
			r := newBitReader(w.flush())
			for i, want := range symbols {
				got, err := dec.decode(r)
				if err != nil {
					t.Fatalf("symbol %d: %v", i, err)
				}
				if got != want {
					t.Fatalf("symbol %d = %#x, want %#x", i, got, want)
				}
			}
		})
	}
}

// TestHuffmanLongCodes exercises the slow path with a table whose codes
// all exceed the LUT width.
func TestHuffmanLongCodes(t *testing.T) {
	// 16 codes of length 10: legal and all beyond lutBits.
	spec := HuffmanSpec{}
	spec.Counts[9] = 16
	for i := 0; i < 16; i++ {
		spec.Values = append(spec.Values, byte(i*7))
	}
	enc, err := newHuffEncoder(&spec)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := newHuffDecoder(&spec)
	if err != nil {
		t.Fatal(err)
	}
	w := &bitWriter{}
	for _, v := range spec.Values {
		if err := enc.emit(w, v); err != nil {
			t.Fatal(err)
		}
	}
	r := newBitReader(w.flush())
	for _, want := range spec.Values {
		got, err := dec.decode(r)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("decode = %d, want %d", got, want)
		}
	}
}

func TestHuffmanInvalidCode(t *testing.T) {
	// A table with a single 1-bit code "0"; input starting with 1 never
	// matches any code.
	spec := HuffmanSpec{Counts: [16]byte{1}, Values: []byte{42}}
	dec, err := newHuffDecoder(&spec)
	if err != nil {
		t.Fatal(err)
	}
	r := newBitReader([]byte{0xFF, 0x00, 0xFF, 0x00, 0xFF, 0x00}) // all ones
	if _, err := dec.decode(r); err == nil {
		t.Fatal("invalid code accepted")
	}
}

func TestHuffmanEmitUnknownSymbol(t *testing.T) {
	spec := HuffmanSpec{Counts: [16]byte{1}, Values: []byte{42}}
	enc, err := newHuffEncoder(&spec)
	if err != nil {
		t.Fatal(err)
	}
	w := &bitWriter{}
	if err := enc.emit(w, 43); err == nil {
		t.Fatal("emit of absent symbol accepted")
	}
}

// TestHuffmanLUTAgreesWithSlowPath decodes the same stream twice — once
// through the fast path and once with a LUT-disabled decoder — and
// requires identical output.
func TestHuffmanLUTAgreesWithSlowPath(t *testing.T) {
	spec := &stdACLumaSpec
	fast, err := newHuffDecoder(spec)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := newHuffDecoder(spec)
	if err != nil {
		t.Fatal(err)
	}
	slow.lut = [1 << lutBits]uint16{} // force the canonical walk
	enc, err := newHuffEncoder(spec)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	w := &bitWriter{}
	var symbols []byte
	for i := 0; i < 2000; i++ {
		s := spec.Values[rng.Intn(len(spec.Values))]
		symbols = append(symbols, s)
		if err := enc.emit(w, s); err != nil {
			t.Fatal(err)
		}
	}
	data := w.flush()
	rf, rs := newBitReader(data), newBitReader(data)
	for i, want := range symbols {
		gf, err := fast.decode(rf)
		if err != nil {
			t.Fatal(err)
		}
		gs, err := slow.decode(rs)
		if err != nil {
			t.Fatal(err)
		}
		if gf != gs || gf != want {
			t.Fatalf("symbol %d: fast=%d slow=%d want=%d", i, gf, gs, want)
		}
	}
}
