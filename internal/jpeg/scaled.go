package jpeg

// Decode-to-scale fast path: the libjpeg scale_denom trick. A JPEG whose
// decoded pixels are only ever downsampled to a small training/serving
// resolution does not need a full 8×8 inverse transform per block — an
// s-point iDCT of the s² lowest-frequency coefficients (s ∈ {1, 2, 4})
// reconstructs each block directly at s×s, cutting iDCT and colour
// conversion work by up to 64× before the residual bilinear pass. The
// paper's decoder feeds a resizer for exactly this reason (§3.3): the
// target resolution is known before reconstruction starts, so work that
// cannot survive the resize is never done.

import (
	"math"
	"sync"

	"dlbooster/internal/imageproc"
	"dlbooster/internal/pix"
)

// scaledBasis[si][u][x] = alpha(u)/2 · cos((2x+1)uπ/(2s)) for s = 1<<si.
// Keeping the 8-point amplitude alpha(u)/2 (rather than the orthonormal
// s-point √(2/s)) makes the s×s output equal the full DCT interpolation
// point-sampled at the s×s tile centres, and keeps a DC-only block
// bit-identical to the full path (c00/8 + 128).
var scaledBasis = func() (b [3][4][4]float64) {
	for si, s := range [3]int{1, 2, 4} {
		for u := 0; u < s; u++ {
			alpha := 1.0
			if u == 0 {
				alpha = 1 / math.Sqrt2
			}
			for x := 0; x < s; x++ {
				b[si][u][x] = alpha / 2 * math.Cos(float64(2*x+1)*float64(u)*math.Pi/float64(2*s))
			}
		}
	}
	return b
}()

// idctScaled dequantises the s² low-frequency coefficients of blk and
// inverse-transforms them into an s×s tile (row-major in out), for
// s ∈ {1, 2, 4}. Higher-frequency coefficients are dropped — they cannot
// survive the downsample the caller is about to perform anyway.
func idctScaled(blk *block, q *QuantTable, s int, out *[16]byte) {
	si := 0
	switch s {
	case 2:
		si = 1
	case 4:
		si = 2
	}
	b := &scaledBasis[si]
	var tmp [16]float64
	// Columns: tmp[x*s+v] = Σ_u basis[u][x] · coef[u][v]
	for v := 0; v < s; v++ {
		for x := 0; x < s; x++ {
			var sum float64
			for u := 0; u < s; u++ {
				sum += b[u][x] * float64(blk[u*8+v]*int32(q[u*8+v]))
			}
			tmp[x*s+v] = sum
		}
	}
	// Rows: tile[x][y] = Σ_v basis[v][y] · tmp[x*s+v]
	for x := 0; x < s; x++ {
		for y := 0; y < s; y++ {
			var sum float64
			for v := 0; v < s; v++ {
				sum += b[v][y] * tmp[x*s+v]
			}
			out[x*s+y] = clamp8(int32(math.Round(sum)) + 128)
		}
	}
}

// ScaleFor returns the smallest supported iDCT scale s ∈ {1, 2, 4, 8}
// whose scaled output (see ScaledSize) still covers dstW×dstH, so the
// residual bilinear pass only ever downsamples. 8 means full decode:
// either the target is at least the source resolution, or no target is
// known (dstW/dstH ≤ 0).
func ScaleFor(w, h, dstW, dstH int) int {
	if dstW <= 0 || dstH <= 0 {
		return 8
	}
	for _, s := range [3]int{1, 2, 4} {
		if ceilDiv(w*s, 8) >= dstW && ceilDiv(h*s, 8) >= dstH {
			return s
		}
	}
	return 8
}

// ScaledSize returns the output geometry of a w×h image reconstructed at
// scale s.
func ScaledSize(w, h, s int) (int, int) {
	return ceilDiv(w*s, 8), ceilDiv(h*s, 8)
}

// Scratch holds every buffer a decode needs — parsed header (tables
// inline), coefficient grids, sample planes and the scaled-RGB
// intermediate — so a worker that reuses one performs zero steady-state
// heap allocations per image. A Scratch is not safe for concurrent use;
// give each worker its own, or pass nil to borrow one from an internal
// pool.
type Scratch struct {
	hdr Header
	co  Coefficients
	pl  Planes
	rgb pix.Image // scaled-dims intermediate when a residual resize is needed
}

var scratchPool = sync.Pool{New: func() any { return new(Scratch) }}

// image sizes the scratch RGB intermediate, reusing its buffer.
func (s *Scratch) image(w, h, c int) *pix.Image {
	n := w * h * c
	if cap(s.rgb.Pix) >= n {
		s.rgb.Pix = s.rgb.Pix[:n]
	} else {
		s.rgb.Pix = make([]byte, n)
	}
	s.rgb.W, s.rgb.H, s.rgb.C = w, h, c
	return &s.rgb
}

// ErrChannelMismatch reports a stream whose component count does not
// match the destination image's channel count.
var ErrChannelMismatch = UnsupportedError("decoded channels do not match destination")

// DecodeScaledInto decodes data at the smallest iDCT scale covering
// dst's geometry, runs the residual bilinear resize, and writes the
// result directly into dst (typically a batch-slot view) with no
// intermediate full-resolution image. It returns the scale used: 8 is
// the exact-parity full decode (byte-identical to Decode + ResizeInto),
// taken when the target is not strictly smaller than the source or the
// stream is progressive; 1, 2 or 4 is the fast path.
//
// sc may be nil (a pooled Scratch is borrowed) but a dedicated
// per-worker Scratch makes steady-state decoding allocation-free.
func DecodeScaledInto(data []byte, dst *pix.Image, sc *Scratch) (scale int, err error) {
	if dst == nil || len(dst.Pix) != dst.W*dst.H*dst.C {
		return 0, FormatError("destination image geometry does not match its buffer")
	}
	if sc == nil {
		sc = scratchPool.Get().(*Scratch)
		defer scratchPool.Put(sc)
	}
	h := &sc.hdr
	if err := h.parse(data); err != nil {
		if err == ErrProgressive {
			// Multi-scan streams cannot run the staged pipeline; decode
			// them fully in software and resize.
			img, perr := decodeProgressive(data)
			if perr != nil {
				return 0, perr
			}
			if img.C != dst.C {
				return 0, ErrChannelMismatch
			}
			return 8, imageproc.ResizeInto(img, dst, imageproc.Bilinear)
		}
		return 0, err
	}
	channels := 3
	if len(h.Components) == 1 {
		channels = 1
	}
	if channels != dst.C {
		return 0, ErrChannelMismatch
	}
	scale = ScaleFor(h.Width, h.Height, dst.W, dst.H)
	if err := h.entropyDecodeInto(&sc.co); err != nil {
		return 0, err
	}
	if err := sc.co.reconstructInto(&sc.pl, scale); err != nil {
		return 0, err
	}
	sw, sh := ScaledSize(h.Width, h.Height, scale)
	if sw == dst.W && sh == dst.H {
		// The scaled output already has the target geometry (a bilinear
		// pass at identical dims is an exact copy), so render straight
		// into the destination.
		sc.pl.renderInto(dst)
		return scale, nil
	}
	img := sc.image(sw, sh, channels)
	sc.pl.renderInto(img)
	return scale, imageproc.ResizeInto(img, dst, imageproc.Bilinear)
}

// DecodeScaled decodes data at the smallest iDCT scale covering
// dstW×dstH and returns the still-unresized scaled image plus the scale
// used; the caller runs the residual resize (the FPGA model's resizer
// stage does exactly that).
func DecodeScaled(data []byte, dstW, dstH int) (*pix.Image, int, error) {
	h, err := Parse(data)
	if err == ErrProgressive {
		img, perr := decodeProgressive(data)
		return img, 8, perr
	}
	if err != nil {
		return nil, 0, err
	}
	co, err := h.EntropyDecode()
	if err != nil {
		return nil, 0, err
	}
	return co.ReconstructScaled(dstW, dstH)
}

// ReconstructScaled runs the iDCT unit at the smallest scale covering
// dstW×dstH and renders the scaled image with fused upsample + colour
// conversion. At scale 8 the result is byte-identical to
// Reconstruct + ToImage.
func (co *Coefficients) ReconstructScaled(dstW, dstH int) (*pix.Image, int, error) {
	h := co.hdr
	s := ScaleFor(h.Width, h.Height, dstW, dstH)
	var p Planes
	if err := co.reconstructInto(&p, s); err != nil {
		return nil, 0, err
	}
	sw, sh := ScaledSize(h.Width, h.Height, s)
	c := 3
	if len(h.Components) == 1 {
		c = 1
	}
	img := pix.New(sw, sh, c)
	p.renderInto(img)
	return img, s, nil
}
