package jpeg

// Huffman coding per ITU-T T.81 Annex C/F. A table is specified exactly
// as it travels in a DHT segment: counts[i] codes of length i+1 bits, and
// the symbol values in code order. Decoder and encoder both derive their
// working form from that canonical spec, so a table can round-trip
// through a bitstream unchanged.

// HuffmanSpec is the canonical (DHT-segment) form of a Huffman table.
type HuffmanSpec struct {
	Counts [16]byte // Counts[i]: number of codes of length i+1 bits
	Values []byte   // symbols in increasing code order
}

// totalCodes returns the number of codes the spec defines.
func (s *HuffmanSpec) totalCodes() int {
	n := 0
	for _, c := range s.Counts {
		n += int(c)
	}
	return n
}

// validate checks the structural constraints of T.81 §C.2.
func (s *HuffmanSpec) validate() error {
	n := s.totalCodes()
	if n == 0 || n > 256 {
		return FormatError("huffman table with bad code count")
	}
	if n != len(s.Values) {
		return FormatError("huffman counts do not match value count")
	}
	// The code space must not be over-subscribed: assigning codes in
	// canonical order may never exceed 2^length.
	code := 0
	for i, c := range s.Counts {
		code += int(c)
		if code > 1<<(i+1) {
			return FormatError("huffman table over-subscribed")
		}
		code <<= 1
	}
	return nil
}

// lutBits is the width of the fast decoder lookup: codes at most this
// long decode in a single table index, mirroring the parallel lookup a
// hardware Huffman unit performs per cycle.
const lutBits = 8

// huffDecoder is the decoding form: a fast 8-bit lookahead table plus the
// canonical min/max-code arrays for longer codes. The struct holds its
// tables inline (no pointers) so a reused Header rebuilds them in place
// without allocating.
type huffDecoder struct {
	// lut[peek] = (symbol << 8) | codeLength, or 0 when the prefix is
	// longer than lutBits.
	lut [1 << lutBits]uint16
	// For code length l (1-based): minCode[l] and maxCode[l] bound the
	// canonical codes of that length; valPtr[l] indexes Values at the
	// first code of that length. maxCode[l] == -1 when no codes.
	minCode [17]int32
	maxCode [17]int32
	valPtr  [17]int32
	values  [256]byte // a spec never defines more than 256 symbols
}

// newHuffDecoder derives the decoding tables from a validated spec.
func newHuffDecoder(spec *HuffmanSpec) (*huffDecoder, error) {
	d := &huffDecoder{}
	if err := d.init(spec); err != nil {
		return nil, err
	}
	return d, nil
}

// init derives the decoding tables in place, overwriting any previous
// table so a pooled decoder can be rebuilt without allocation.
func (d *huffDecoder) init(spec *HuffmanSpec) error {
	if err := spec.validate(); err != nil {
		return err
	}
	d.lut = [1 << lutBits]uint16{}
	copy(d.values[:], spec.Values)
	code := int32(0)
	k := int32(0)
	for l := 1; l <= 16; l++ {
		n := int32(spec.Counts[l-1])
		if n == 0 {
			d.minCode[l] = 0
			d.maxCode[l] = -1
			d.valPtr[l] = 0
		} else {
			d.minCode[l] = code
			d.maxCode[l] = code + n - 1
			d.valPtr[l] = k
			if l <= lutBits {
				for c := int32(0); c < n; c++ {
					base := (code + c) << (lutBits - l)
					entry := uint16(spec.Values[k+c])<<8 | uint16(l)
					for p := int32(0); p < 1<<(lutBits-l); p++ {
						d.lut[base+p] = entry
					}
				}
			}
			k += n
			code += n
		}
		code <<= 1
	}
	return nil
}

// decode reads one Huffman-coded symbol from r.
func (d *huffDecoder) decode(r *bitReader) (byte, error) {
	if peek, avail := r.peekBits(lutBits); avail == lutBits {
		if entry := d.lut[peek]; entry != 0 {
			r.skipBits(int(entry & 0xFF))
			return byte(entry >> 8), nil
		}
	}
	// Slow path: extend the code bit by bit (also taken near the end of
	// the stream where fewer than lutBits bits remain).
	code := int32(0)
	for l := 1; l <= 16; l++ {
		bit, err := r.readBit()
		if err != nil {
			return 0, err
		}
		code = code<<1 | int32(bit)
		if d.maxCode[l] >= 0 && code <= d.maxCode[l] && code >= d.minCode[l] {
			return d.values[d.valPtr[l]+code-d.minCode[l]], nil
		}
	}
	return 0, FormatError("invalid huffman code")
}

// huffEncoder is the encoding form: code and length per symbol.
type huffEncoder struct {
	code [256]uint32
	size [256]uint8
}

// newHuffEncoder derives the encoding tables from a validated spec.
func newHuffEncoder(spec *HuffmanSpec) (*huffEncoder, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	e := &huffEncoder{}
	code := uint32(0)
	k := 0
	for l := 1; l <= 16; l++ {
		for i := 0; i < int(spec.Counts[l-1]); i++ {
			v := spec.Values[k]
			e.code[v] = code
			e.size[v] = uint8(l)
			code++
			k++
		}
		code <<= 1
	}
	return e, nil
}

// emit writes the code for symbol v.
func (e *huffEncoder) emit(w *bitWriter, v byte) error {
	if e.size[v] == 0 {
		return FormatError("symbol absent from huffman table")
	}
	w.writeBits(e.code[v], int(e.size[v]))
	return nil
}

// bitLength returns the number of magnitude bits (SSSS) needed for v.
func bitLength(v int32) int {
	if v < 0 {
		v = -v
	}
	n := 0
	for v > 0 {
		n++
		v >>= 1
	}
	return n
}
