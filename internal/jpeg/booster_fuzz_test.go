package jpeg_test

import (
	"testing"

	"dlbooster/internal/core"
	"dlbooster/internal/faults"
	"dlbooster/internal/fpga"
	"dlbooster/internal/jpeg"
	"dlbooster/internal/pix"
)

// FuzzBoosterCorruptJPEG feeds arbitrary (mostly corrupt) JPEG bytes
// through the whole pipeline — FPGAReader, decoder mirror, HugePage
// batches — and asserts the failure model end to end: the run never
// panics or hangs, the item settles exactly once (decoded or counted as
// an error), and the buffer ledger balances. The seed corpus covers a
// valid stream plus injector-corrupted and truncated variants of it,
// the exact shapes the corrupt-payload fault mode produces.
func FuzzBoosterCorruptJPEG(f *testing.F) {
	valid := encodeSeed(f)
	f.Add(valid)
	// Injector-corrupted variants: deterministic flips at several seeds.
	for _, s := range []int64{1, 7, 42} {
		inj := faults.New(faults.Config{Seed: s})
		f.Add(inj.CorruptBytes(append([]byte(nil), valid...)))
	}
	f.Add(valid[:len(valid)/2])
	f.Add([]byte{0xFF, 0xD8})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			t.Skip()
		}
		b, err := core.New(core.Config{
			BatchSize: 1, OutW: 16, OutH: 16, Channels: 1, PoolBatches: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer b.Close()
		items := []core.Item{{Ref: fpga.DataRef{Inline: data}}}
		done := make(chan error, 1)
		go func() { done <- b.RunEpoch(core.CollectorFromItems(items)) }()
		go func() {
			for {
				batch, err := b.Batches().Pop()
				if err != nil {
					return
				}
				_ = b.RecycleBatch(batch)
			}
		}()
		if err := <-done; err != nil {
			t.Fatalf("RunEpoch: %v", err)
		}
		b.CloseBatches()
		if got := b.Images() + b.DecodeErrors(); got != 1 {
			t.Fatalf("item settled %d times, want exactly once", got)
		}
	})
}

func encodeSeed(f *testing.F) []byte {
	f.Helper()
	img := pix.New(24, 16, 1)
	for y := 0; y < 16; y++ {
		for x := 0; x < 24; x++ {
			img.Pix[y*24+x] = byte(8*x + 4*y)
		}
	}
	data, err := jpeg.Encode(img, jpeg.EncodeOptions{Quality: 85})
	if err != nil {
		f.Fatal(err)
	}
	return data
}
