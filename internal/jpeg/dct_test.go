package jpeg

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIDCTConstantBlock(t *testing.T) {
	// A DC-only coefficient block reconstructs to a flat sample block:
	// DC = (v-128)*8 for sample value v.
	var coef block
	coef[0] = (200 - 128) * 8
	var out [64]byte
	idct(&coef, &out)
	for i, s := range out {
		if d := int(s) - 200; d < -1 || d > 1 {
			t.Fatalf("sample %d = %d, want ~200", i, s)
		}
	}
}

func TestFDCTConstantBlock(t *testing.T) {
	var samples [64]byte
	for i := range samples {
		samples[i] = 77
	}
	var coef block
	fdct(&samples, &coef)
	if d := coef[0] - (77-128)*8; d < -1 || d > 1 {
		t.Fatalf("DC = %d, want ~%d", coef[0], (77-128)*8)
	}
	for i := 1; i < 64; i++ {
		if coef[i] != 0 {
			t.Fatalf("AC[%d] = %d, want 0", i, coef[i])
		}
	}
}

// TestDCTRoundTrip: idct(fdct(x)) reproduces x within rounding error.
func TestDCTRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		var samples [64]byte
		for i := range samples {
			samples[i] = byte(rng.Intn(256))
		}
		var coef block
		fdct(&samples, &coef)
		var back [64]byte
		idct(&coef, &back)
		for i := range samples {
			d := int(samples[i]) - int(back[i])
			if d < -1 || d > 1 {
				t.Fatalf("trial %d sample %d: %d -> %d", trial, i, samples[i], back[i])
			}
		}
	}
}

// TestDCTRoundTripProperty is the quick-check form of the round trip on
// smooth blocks (random low-frequency content, the realistic case).
func TestDCTRoundTripProperty(t *testing.T) {
	f := func(dc uint8, gx, gy int8) bool {
		var samples [64]byte
		for y := 0; y < 8; y++ {
			for x := 0; x < 8; x++ {
				v := int(dc) + int(gx)*x/8 + int(gy)*y/8
				samples[y*8+x] = clamp8(int32(v))
			}
		}
		var coef block
		fdct(&samples, &coef)
		var back [64]byte
		idct(&coef, &back)
		for i := range samples {
			// fdct rounds each coefficient to an integer, so the
			// round-trip error bound is the accumulated coefficient
			// rounding, slightly above ±1 for adversarial clamped
			// gradients.
			d := int(samples[i]) - int(back[i])
			if d < -2 || d > 2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantizeDequantize(t *testing.T) {
	q := scaledQuant(&stdLumaQuant, 50)
	var coef block
	rng := rand.New(rand.NewSource(9))
	for i := range coef {
		coef[i] = int32(rng.Intn(2001) - 1000)
	}
	var levels, back block
	quantize(&coef, &q, &levels)
	dequantize(&levels, &q, &back)
	for i := range coef {
		// Quantisation error is at most half the quantiser step.
		d := coef[i] - back[i]
		if d < 0 {
			d = -d
		}
		if d > int32(q[i])/2+1 {
			t.Fatalf("coef %d: %d -> %d (q=%d)", i, coef[i], back[i], q[i])
		}
	}
}

func TestQuantizeRoundsToNearest(t *testing.T) {
	q := QuantTable{}
	for i := range q {
		q[i] = 10
	}
	var coef, levels block
	coef[0], coef[1], coef[2], coef[3] = 14, 15, -14, -15
	quantize(&coef, &q, &levels)
	want := []int32{1, 2, -1, -2}
	for i, w := range want {
		if levels[i] != w {
			t.Fatalf("level[%d] = %d, want %d", i, levels[i], w)
		}
	}
}

func TestScaledQuant(t *testing.T) {
	q50 := scaledQuant(&stdLumaQuant, 50)
	for i := range q50 {
		if q50[i] != stdLumaQuant[i] {
			t.Fatalf("quality 50 must be the standard table (index %d: %d vs %d)", i, q50[i], stdLumaQuant[i])
		}
	}
	q100 := scaledQuant(&stdLumaQuant, 100)
	for i := range q100 {
		if q100[i] != 1 {
			t.Fatalf("quality 100 entry %d = %d, want 1", i, q100[i])
		}
	}
	q10 := scaledQuant(&stdLumaQuant, 10)
	for i := range q10 {
		if q10[i] < q50[i] {
			t.Fatalf("quality 10 should quantise harder than 50 (index %d)", i)
		}
	}
	// Out-of-range quality clamps rather than failing.
	_ = scaledQuant(&stdLumaQuant, 0)
	_ = scaledQuant(&stdLumaQuant, 101)
}

func TestZigzagIsPermutation(t *testing.T) {
	var seen [64]bool
	for _, n := range zigzag {
		if n < 0 || n > 63 || seen[n] {
			t.Fatalf("zigzag is not a permutation (value %d)", n)
		}
		seen[n] = true
	}
	for z, n := range zigzag {
		if unzigzag[n] != z {
			t.Fatalf("unzigzag is not the inverse at %d", z)
		}
	}
	// Spot-check the canonical start of the scan.
	want := []int{0, 1, 8, 16, 9, 2}
	for i, w := range want {
		if zigzag[i] != w {
			t.Fatalf("zigzag[%d] = %d, want %d", i, zigzag[i], w)
		}
	}
}

func TestColorConversionRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 2000; trial++ {
		r0, g0, b0 := byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))
		y, cb, cr := rgbToYCbCr(r0, g0, b0)
		r1, g1, b1 := ycbcrToRGB(y, cb, cr)
		for _, d := range []int{int(r0) - int(r1), int(g0) - int(g1), int(b0) - int(b1)} {
			if d < -3 || d > 3 {
				t.Fatalf("rgb(%d,%d,%d) -> ycbcr(%d,%d,%d) -> rgb(%d,%d,%d)", r0, g0, b0, y, cb, cr, r1, g1, b1)
			}
		}
	}
}

func TestColorConversionKnownValues(t *testing.T) {
	cases := []struct{ r, g, b, y, cb, cr byte }{
		{0, 0, 0, 0, 128, 128},
		{255, 255, 255, 255, 128, 128},
		{255, 0, 0, 76, 85, 255},
		{0, 255, 0, 150, 44, 21},
		{0, 0, 255, 29, 255, 107},
	}
	for _, c := range cases {
		y, cb, cr := rgbToYCbCr(c.r, c.g, c.b)
		dy, dcb, dcr := int(y)-int(c.y), int(cb)-int(c.cb), int(cr)-int(c.cr)
		for _, d := range []int{dy, dcb, dcr} {
			if d < -1 || d > 1 {
				t.Fatalf("rgbToYCbCr(%d,%d,%d) = (%d,%d,%d), want (%d,%d,%d)", c.r, c.g, c.b, y, cb, cr, c.y, c.cb, c.cr)
			}
		}
	}
}
