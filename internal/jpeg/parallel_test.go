package jpeg

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"dlbooster/internal/pix"
)

// parallelismGuard pins the entropy fan-out width for a test and
// restores the previous width afterwards (the knob is process-global).
func parallelismGuard(t *testing.T, n int) {
	t.Helper()
	prev := EntropyParallelism()
	SetEntropyParallelism(n)
	t.Cleanup(func() { SetEntropyParallelism(prev) })
}

func encodeDRI(t *testing.T, w, h, c int, seed int64, opt EncodeOptions) []byte {
	t.Helper()
	data, err := Encode(smoothImage(w, h, c, seed), opt)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	return data
}

func TestEntropyParallelismClamp(t *testing.T) {
	prev := EntropyParallelism()
	t.Cleanup(func() { SetEntropyParallelism(prev) })
	SetEntropyParallelism(0)
	if got := EntropyParallelism(); got != 1 {
		t.Fatalf("SetEntropyParallelism(0) clamped to %d, want 1", got)
	}
	SetEntropyParallelism(-3)
	if got := EntropyParallelism(); got != 1 {
		t.Fatalf("SetEntropyParallelism(-3) clamped to %d, want 1", got)
	}
	SetEntropyParallelism(6)
	if got := EntropyParallelism(); got != 6 {
		t.Fatalf("SetEntropyParallelism(6) = %d", got)
	}
}

// TestRestartSegmentsStructure checks the segment scanner's geometry:
// one segment per restart interval, contiguous MCU coverage, ordered
// byte ranges inside the captured scan.
func TestRestartSegmentsStructure(t *testing.T) {
	parallelismGuard(t, 4)
	scalarOnlyGuard(t, false)
	const ri = 8
	data := encodeDRI(t, 512, 384, 3, 21, EncodeOptions{Quality: 88, Subsample420: true, RestartInterval: ri})
	h, err := Parse(data)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	segs, ok := h.restartSegments()
	if !ok {
		t.Fatal("restartSegments declined a clean DRI stream")
	}
	mcus := h.mcusX * h.mcusY
	if want := ceilDiv(mcus, ri); len(segs) != want {
		t.Fatalf("got %d segments, want ceil(%d/%d) = %d", len(segs), mcus, ri, want)
	}
	wantMCU := 0
	prevEnd := 0
	for i, sg := range segs {
		if sg.mcu0 != wantMCU {
			t.Fatalf("segment %d starts at MCU %d, want %d (coverage gap)", i, sg.mcu0, wantMCU)
		}
		if sg.mcu1 <= sg.mcu0 {
			t.Fatalf("segment %d has empty MCU range [%d,%d)", i, sg.mcu0, sg.mcu1)
		}
		if i < len(segs)-1 && sg.mcu1-sg.mcu0 != ri {
			t.Fatalf("segment %d covers %d MCUs, want %d", i, sg.mcu1-sg.mcu0, ri)
		}
		if sg.start < prevEnd || sg.end < sg.start || sg.end > len(h.scan) {
			t.Fatalf("segment %d byte range [%d,%d) out of order (prev end %d, scan %d)",
				i, sg.start, sg.end, prevEnd, len(h.scan))
		}
		prevEnd = sg.end
		wantMCU = sg.mcu1
	}
	if wantMCU != mcus {
		t.Fatalf("segments cover %d MCUs, want %d", wantMCU, mcus)
	}
}

// TestRestartSegmentsBailouts checks every gate that must force the
// sequential reference decoder.
func TestRestartSegmentsBailouts(t *testing.T) {
	parse := func(t *testing.T, data []byte) *Header {
		t.Helper()
		h, err := Parse(data)
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		return h
	}
	dri := encodeDRI(t, 512, 384, 3, 22, EncodeOptions{Quality: 85, Subsample420: true, RestartInterval: 8})

	t.Run("no-restart-interval", func(t *testing.T) {
		parallelismGuard(t, 4)
		scalarOnlyGuard(t, false)
		plain := encodeDRI(t, 512, 384, 3, 22, EncodeOptions{Quality: 85, Subsample420: true})
		if _, ok := parse(t, plain).restartSegments(); ok {
			t.Fatal("restartSegments accepted a stream without restart intervals")
		}
	})
	t.Run("parallelism-one", func(t *testing.T) {
		parallelismGuard(t, 1)
		scalarOnlyGuard(t, false)
		if _, ok := parse(t, dri).restartSegments(); ok {
			t.Fatal("restartSegments accepted with one worker")
		}
	})
	t.Run("kill-switch", func(t *testing.T) {
		parallelismGuard(t, 4)
		scalarOnlyGuard(t, true)
		if _, ok := parse(t, dri).restartSegments(); ok {
			t.Fatal("restartSegments accepted under the scalar-only kill switch")
		}
	})
	t.Run("too-few-mcus", func(t *testing.T) {
		parallelismGuard(t, 4)
		scalarOnlyGuard(t, false)
		small := encodeDRI(t, 96, 96, 3, 23, EncodeOptions{Quality: 85, Subsample420: true, RestartInterval: 2})
		if _, ok := parse(t, small).restartSegments(); ok {
			t.Fatal("restartSegments accepted a scan below the MCU floor")
		}
	})
	t.Run("interval-exceeds-scan", func(t *testing.T) {
		parallelismGuard(t, 4)
		scalarOnlyGuard(t, false)
		wide := encodeDRI(t, 512, 384, 3, 24, EncodeOptions{Quality: 85, Subsample420: true, RestartInterval: 4000})
		if _, ok := parse(t, wide).restartSegments(); ok {
			t.Fatal("restartSegments accepted a restart interval wider than the scan")
		}
	})
}

// TestRestartParallelByteParity is the tentpole guarantee: for every
// production layout, the restart-parallel decode produces bytes
// identical to the sequential reference — full decode and every
// DecodeScaledInto scale — and the parallel-scan counter moves only
// when the parallel path actually ran.
func TestRestartParallelByteParity(t *testing.T) {
	scalarOnlyGuard(t, false)
	fixture := func(name string) []byte {
		data, err := os.ReadFile(filepath.Join("testdata", "dri", name))
		if err != nil {
			t.Fatalf("fixture %s: %v (regenerate with go run ./tools/genjpegfixtures)", name, err)
		}
		return data
	}
	cases := []struct {
		name string
		data []byte
	}{
		{"420-fixture", fixture("dri-420.jpg")},
		{"422-fixture", fixture("dri-422.jpg")},
		{"gray-fixture", fixture("dri-gray.jpg")},
		{"444-encoded", encodeDRI(t, 512, 384, 3, 25, EncodeOptions{Quality: 92, RestartInterval: 5})},
	}
	targets := []struct{ w, h int }{{96, 96}, {64, 64}, {224, 160}}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			parallelismGuard(t, 1)
			seqImg, err := Decode(tc.data)
			if err != nil {
				t.Fatalf("sequential decode: %v", err)
			}

			parallelismGuard(t, 4)
			before := ParallelScans()
			parImg, err := Decode(tc.data)
			if err != nil {
				t.Fatalf("parallel decode: %v", err)
			}
			if ParallelScans() == before {
				t.Fatal("parallel path did not engage (decode_parallel_scans_total unchanged)")
			}
			if parImg.W != seqImg.W || parImg.H != seqImg.H || parImg.C != seqImg.C {
				t.Fatalf("geometry diverged: parallel %dx%dx%d, sequential %dx%dx%d",
					parImg.W, parImg.H, parImg.C, seqImg.W, seqImg.H, seqImg.C)
			}
			if !bytes.Equal(parImg.Pix, seqImg.Pix) {
				t.Fatal("parallel full decode is not byte-identical to sequential")
			}

			var sc Scratch
			for _, tg := range targets {
				seqOut := pix.New(tg.w, tg.h, seqImg.C)
				parOut := pix.New(tg.w, tg.h, seqImg.C)
				parallelismGuard(t, 1)
				seqScale, err := DecodeScaledInto(tc.data, seqOut, &sc)
				if err != nil {
					t.Fatalf("sequential DecodeScaledInto %dx%d: %v", tg.w, tg.h, err)
				}
				parallelismGuard(t, 4)
				parScale, err := DecodeScaledInto(tc.data, parOut, &sc)
				if err != nil {
					t.Fatalf("parallel DecodeScaledInto %dx%d: %v", tg.w, tg.h, err)
				}
				if seqScale != parScale {
					t.Fatalf("scale diverged at %dx%d: parallel %d, sequential %d", tg.w, tg.h, parScale, seqScale)
				}
				if !bytes.Equal(parOut.Pix, seqOut.Pix) {
					t.Fatalf("parallel DecodeScaledInto %dx%d is not byte-identical to sequential", tg.w, tg.h)
				}
			}
		})
	}
}

// TestRestartParallelCounterGates checks decode_parallel_scans_total
// stays flat when the parallel path is gated off.
func TestRestartParallelCounterGates(t *testing.T) {
	data := encodeDRI(t, 512, 384, 3, 26, EncodeOptions{Quality: 88, Subsample420: true, RestartInterval: 8})
	t.Run("parallelism-one", func(t *testing.T) {
		parallelismGuard(t, 1)
		scalarOnlyGuard(t, false)
		before := ParallelScans()
		if _, err := Decode(data); err != nil {
			t.Fatalf("decode: %v", err)
		}
		if got := ParallelScans(); got != before {
			t.Fatalf("counter moved %d with one worker", got-before)
		}
	})
	t.Run("kill-switch", func(t *testing.T) {
		parallelismGuard(t, 4)
		scalarOnlyGuard(t, true)
		before := ParallelScans()
		if _, err := Decode(data); err != nil {
			t.Fatalf("decode: %v", err)
		}
		if got := ParallelScans(); got != before {
			t.Fatalf("counter moved %d under the kill switch", got-before)
		}
	})
}

// decodeErrString decodes under the given fan-out width and returns the
// error string ("" on success) plus the decoded bytes.
func decodeErrString(t *testing.T, data []byte, workers int) (string, []byte) {
	t.Helper()
	parallelismGuard(t, workers)
	img, err := Decode(data)
	if err != nil {
		return err.Error(), nil
	}
	return "", img.Pix
}

// TestRestartCorruptSegmentAttribution checks satellite 1: a corrupt
// segment surfaces a FormatError naming the restart interval it broke
// in, and the parallel configuration surfaces the exact same error the
// sequential reference does.
func TestRestartCorruptSegmentAttribution(t *testing.T) {
	scalarOnlyGuard(t, false)
	base := encodeDRI(t, 512, 384, 3, 27, EncodeOptions{Quality: 88, Subsample420: true, RestartInterval: 8})

	t.Run("marker-out-of-sequence", func(t *testing.T) {
		// Replace the first RST3 with RST5: the scanner refuses the
		// stream, and the sequential decoder attributes the bad marker to
		// restart interval 3.
		idx := bytes.Index(base, []byte{0xFF, 0xD3})
		if idx < 0 {
			t.Fatal("no RST3 marker in test stream")
		}
		corrupt := append([]byte(nil), base...)
		corrupt[idx+1] = 0xD5
		seqErr, _ := decodeErrString(t, corrupt, 1)
		parErr, _ := decodeErrString(t, corrupt, 4)
		if seqErr == "" || parErr == "" {
			t.Fatalf("corrupt stream decoded: seq=%q par=%q", seqErr, parErr)
		}
		if seqErr != parErr {
			t.Fatalf("error diverged:\n  sequential: %s\n  parallel:   %s", seqErr, parErr)
		}
		if !bytes.Contains([]byte(seqErr), []byte("restart interval 3:")) {
			t.Fatalf("error does not attribute restart interval 3: %s", seqErr)
		}
	})

	t.Run("marker-inside-segment", func(t *testing.T) {
		// Plant a non-RST marker just after RST0, truncating segment 1's
		// entropy data: the scanner sees the scan end early and bails, and
		// the sequential decoder fails inside restart interval 1.
		idx := bytes.Index(base, []byte{0xFF, 0xD0})
		if idx < 0 {
			t.Fatal("no RST0 marker in test stream")
		}
		corrupt := append([]byte(nil), base...)
		corrupt[idx+4] = 0xFF
		corrupt[idx+5] = 0xC4
		seqErr, _ := decodeErrString(t, corrupt, 1)
		parErr, _ := decodeErrString(t, corrupt, 4)
		if seqErr == "" || parErr == "" {
			t.Fatalf("corrupt stream decoded: seq=%q par=%q", seqErr, parErr)
		}
		if seqErr != parErr {
			t.Fatalf("error diverged:\n  sequential: %s\n  parallel:   %s", seqErr, parErr)
		}
		if !bytes.Contains([]byte(seqErr), []byte("restart interval 1:")) {
			t.Fatalf("error does not attribute restart interval 1: %s", seqErr)
		}
	})

	t.Run("bit-flip-outcome-parity", func(t *testing.T) {
		// Corruptions the segment scanner cannot detect (marker layout
		// intact, entropy bytes damaged) must still end byte-identical:
		// the parallel attempt either matches sequential output or its
		// failure triggers the sequential re-run, reproducing the exact
		// sequential error. Flip a byte at several fixed scan offsets and
		// demand outcome parity for each.
		idx := bytes.Index(base, []byte{0xFF, 0xD1})
		if idx < 0 {
			t.Fatal("no RST1 marker in test stream")
		}
		for _, off := range []int{idx + 7, idx + 64, idx + 301} {
			corrupt := append([]byte(nil), base...)
			if corrupt[off] == 0xFF || corrupt[off-1] == 0xFF {
				off++ // don't manufacture or destroy marker prefixes
			}
			corrupt[off] ^= 0x5B
			seqErr, seqPix := decodeErrString(t, corrupt, 1)
			parErr, parPix := decodeErrString(t, corrupt, 4)
			if seqErr != parErr {
				t.Fatalf("offset %d: error diverged:\n  sequential: %s\n  parallel:   %s", off, seqErr, parErr)
			}
			if seqErr == "" && !bytes.Equal(seqPix, parPix) {
				t.Fatalf("offset %d: decode succeeded but bytes diverged", off)
			}
		}
	})

	t.Run("restart-interval-mismatch", func(t *testing.T) {
		// Lie in the DRI segment (8 → 7): the marker census no longer
		// matches, the scanner bails, and both configurations surface the
		// sequential decoder's out-of-sequence error identically.
		idx := bytes.Index(base, []byte{0xFF, 0xDD, 0x00, 0x04})
		if idx < 0 {
			t.Fatal("no DRI segment in test stream")
		}
		corrupt := append([]byte(nil), base...)
		corrupt[idx+4], corrupt[idx+5] = 0, 7
		seqErr, _ := decodeErrString(t, corrupt, 1)
		parErr, _ := decodeErrString(t, corrupt, 4)
		if seqErr == "" || parErr == "" {
			t.Fatalf("mismatched DRI decoded: seq=%q par=%q", seqErr, parErr)
		}
		if seqErr != parErr {
			t.Fatalf("error diverged:\n  sequential: %s\n  parallel:   %s", seqErr, parErr)
		}
		if !bytes.Contains([]byte(seqErr), []byte("restart interval")) {
			t.Fatalf("error lacks restart-interval attribution: %s", seqErr)
		}
	})
}

// TestRestartFixturesGeometry pins the checked-in DRI fixtures to the
// layouts they were generated with, so a stale regeneration is caught.
func TestRestartFixturesGeometry(t *testing.T) {
	cases := []struct {
		name       string
		w, h, c    int
		restartInt int
	}{
		{"dri-420.jpg", 512, 384, 3, 8},
		{"dri-422.jpg", 480, 320, 3, 12},
		{"dri-gray.jpg", 320, 320, 1, 16},
	}
	for _, tc := range cases {
		data, err := os.ReadFile(filepath.Join("testdata", "dri", tc.name))
		if err != nil {
			t.Fatalf("fixture %s: %v (regenerate with go run ./tools/genjpegfixtures)", tc.name, err)
		}
		h, err := Parse(data)
		if err != nil {
			t.Fatalf("%s: parse: %v", tc.name, err)
		}
		if h.Width != tc.w || h.Height != tc.h || len(h.Components) != tc.c {
			t.Fatalf("%s: got %dx%d c=%d, want %dx%d c=%d",
				tc.name, h.Width, h.Height, len(h.Components), tc.w, tc.h, tc.c)
		}
		if h.RestartInterval != tc.restartInt {
			t.Fatalf("%s: restart interval %d, want %d", tc.name, h.RestartInterval, tc.restartInt)
		}
	}
}
