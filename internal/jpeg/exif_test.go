package jpeg

import (
	"testing"

	"dlbooster/internal/imageproc"
)

func TestEXIFOrientationRoundTrip(t *testing.T) {
	img := smoothImage(24, 16, 3, 4)
	for o := 1; o <= 8; o++ {
		data, err := Encode(img, EncodeOptions{Quality: 90, Orientation: o})
		if err != nil {
			t.Fatalf("o=%d: %v", o, err)
		}
		cfg, err := DecodeConfig(data)
		if err != nil {
			t.Fatal(err)
		}
		if cfg.Orientation != o {
			t.Fatalf("orientation %d read back as %d", o, cfg.Orientation)
		}
		oriented, err := DecodeOriented(data)
		if err != nil {
			t.Fatal(err)
		}
		plain, err := Decode(data)
		if err != nil {
			t.Fatal(err)
		}
		want, err := imageproc.ApplyOrientation(plain, o)
		if err != nil {
			t.Fatal(err)
		}
		if d, _ := oriented.MaxAbsDiff(want); d != 0 {
			t.Fatalf("o=%d: DecodeOriented differs from manual orientation", o)
		}
		if o >= 5 && (oriented.W != 16 || oriented.H != 24) {
			t.Fatalf("o=%d: oriented geometry %dx%d", o, oriented.W, oriented.H)
		}
	}
}

func TestEXIFAbsentAndBigEndian(t *testing.T) {
	img := smoothImage(16, 16, 3, 5)
	data, err := Encode(img, EncodeOptions{Quality: 90})
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := DecodeConfig(data)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Orientation != 0 {
		t.Fatalf("orientation without EXIF = %d", cfg.Orientation)
	}
	// Big-endian TIFF header variant.
	seg := exifAPP1(6)
	tiff := seg[6:]
	// Rewrite as MM big-endian.
	tiff[0], tiff[1] = 'M', 'M'
	tiff[2], tiff[3] = 0, 42
	tiff[4], tiff[5], tiff[6], tiff[7] = 0, 0, 0, 8
	tiff[8], tiff[9] = 0, 1
	entry := tiff[10:]
	entry[0], entry[1] = 0x01, 0x12
	entry[2], entry[3] = 0, 3
	entry[4], entry[5], entry[6], entry[7] = 0, 0, 0, 1
	entry[8], entry[9] = 0, 6
	if o := parseEXIFOrientation(seg); o != 6 {
		t.Fatalf("big-endian EXIF orientation = %d", o)
	}
}

func TestEXIFMalformedIgnored(t *testing.T) {
	cases := map[string][]byte{
		"empty":       nil,
		"short":       []byte("Exif\x00\x00II"),
		"bad magic":   []byte("NotExifAtAllPadPadPad"),
		"bad order":   append([]byte("Exif\x00\x00XX"), make([]byte, 12)...),
		"bad 42":      append([]byte("Exif\x00\x00II\x00\x00"), make([]byte, 12)...),
		"ifd overrun": append([]byte("Exif\x00\x00II\x2a\x00\xff\xff\xff\x7f"), make([]byte, 4)...),
	}
	for name, seg := range cases {
		if o := parseEXIFOrientation(seg); o != 0 {
			t.Errorf("%s: orientation = %d, want 0", name, o)
		}
	}
	good := exifAPP1(3)
	// Out-of-range orientation value → ignored.
	good[6+10+8] = 9
	if o := parseEXIFOrientation(good); o != 0 {
		t.Errorf("orientation 9 accepted: %d", o)
	}
	// Wrong type → ignored.
	good = exifAPP1(3)
	good[6+10+2] = 4
	if o := parseEXIFOrientation(good); o != 0 {
		t.Errorf("wrong-type entry accepted: %d", o)
	}
}

func TestEXIFOnProgressiveStream(t *testing.T) {
	img := smoothImage(20, 14, 3, 6)
	// Progressive encoder does not write EXIF itself; splice the APP1
	// in after SOI and confirm both walkers surface it.
	prog, err := EncodeProgressive(img, EncodeOptions{Quality: 88})
	if err != nil {
		t.Fatal(err)
	}
	app1 := exifAPP1(8)
	seg := append([]byte{0xFF, mAPP1, byte((len(app1) + 2) >> 8), byte(len(app1) + 2)}, app1...)
	spliced := append([]byte{0xFF, 0xD8}, seg...)
	spliced = append(spliced, prog[2:]...)
	cfg, err := DecodeConfig(spliced)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Orientation != 8 {
		t.Fatalf("progressive orientation = %d", cfg.Orientation)
	}
	oriented, err := DecodeOriented(spliced)
	if err != nil {
		t.Fatal(err)
	}
	if oriented.W != 14 || oriented.H != 20 {
		t.Fatalf("oriented geometry %dx%d", oriented.W, oriented.H)
	}
}
