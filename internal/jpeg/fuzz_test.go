package jpeg

import (
	"testing"

	"dlbooster/internal/pix"
)

// Native fuzz targets: the decoder must never panic on arbitrary bytes.
// Seeds cover baseline and progressive streams in all supported modes;
// `go test -fuzz=FuzzDecode ./internal/jpeg` explores further.

func FuzzDecode(f *testing.F) {
	for _, seed := range fuzzSeeds(f) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		img, err := Decode(data)
		if err == nil && img != nil {
			if img.W <= 0 || img.H <= 0 || len(img.Pix) != img.W*img.H*img.C {
				t.Fatalf("decoded image with inconsistent geometry %dx%dx%d (%d bytes)", img.W, img.H, img.C, len(img.Pix))
			}
		}
	})
}

// FuzzDecodeScaledInto drives the decode-to-scale fast path on arbitrary
// bytes at several target geometries: it must never panic, and must
// never write outside the batch-slot view it was handed (the slot is
// embedded in a guarded buffer whose margins are checked after every
// call).
func FuzzDecodeScaledInto(f *testing.F) {
	for _, seed := range fuzzSeeds(f) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var sc Scratch
		for _, g := range [...]struct{ w, h, c int }{{8, 6, 3}, {16, 16, 1}, {1, 1, 3}} {
			const margin = 64
			n := g.w * g.h * g.c
			buf := make([]byte, n+2*margin)
			for i := range buf {
				buf[i] = 0xA5
			}
			dst, err := pix.FromBytes(g.w, g.h, g.c, buf[margin:margin+n])
			if err != nil {
				t.Fatal(err)
			}
			scale, err := DecodeScaledInto(data, dst, &sc)
			if err == nil {
				switch scale {
				case 1, 2, 4, 8:
				default:
					t.Fatalf("successful decode reported scale %d", scale)
				}
			}
			for i := 0; i < margin; i++ {
				if buf[i] != 0xA5 || buf[margin+n+i] != 0xA5 {
					t.Fatalf("decode wrote outside the destination slot (geometry %dx%dx%d)", g.w, g.h, g.c)
				}
			}
		}
	})
}

func FuzzDecodeConfig(f *testing.F) {
	for _, seed := range fuzzSeeds(f) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = DecodeConfig(data)
	})
}

func fuzzSeeds(f *testing.F) [][]byte {
	f.Helper()
	var seeds [][]byte
	img := smoothImage(24, 16, 3, 1)
	gray := smoothImage(24, 16, 1, 2)
	for _, opt := range []EncodeOptions{
		{Quality: 90},
		{Quality: 60, Subsample420: true},
		{Quality: 90, RestartInterval: 2},
	} {
		if b, err := Encode(img, opt); err == nil {
			seeds = append(seeds, b)
		}
		if b, err := EncodeProgressive(img, opt); err == nil {
			seeds = append(seeds, b)
		}
	}
	if b, err := Encode(gray, EncodeOptions{Quality: 85}); err == nil {
		seeds = append(seeds, b)
	}
	seeds = append(seeds, []byte{0xFF, 0xD8}, nil)
	return seeds
}
