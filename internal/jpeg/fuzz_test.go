package jpeg

import "testing"

// Native fuzz targets: the decoder must never panic on arbitrary bytes.
// Seeds cover baseline and progressive streams in all supported modes;
// `go test -fuzz=FuzzDecode ./internal/jpeg` explores further.

func FuzzDecode(f *testing.F) {
	for _, seed := range fuzzSeeds(f) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		img, err := Decode(data)
		if err == nil && img != nil {
			if img.W <= 0 || img.H <= 0 || len(img.Pix) != img.W*img.H*img.C {
				t.Fatalf("decoded image with inconsistent geometry %dx%dx%d (%d bytes)", img.W, img.H, img.C, len(img.Pix))
			}
		}
	})
}

func FuzzDecodeConfig(f *testing.F) {
	for _, seed := range fuzzSeeds(f) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = DecodeConfig(data)
	})
}

func fuzzSeeds(f *testing.F) [][]byte {
	f.Helper()
	var seeds [][]byte
	img := smoothImage(24, 16, 3, 1)
	gray := smoothImage(24, 16, 1, 2)
	for _, opt := range []EncodeOptions{
		{Quality: 90},
		{Quality: 60, Subsample420: true},
		{Quality: 90, RestartInterval: 2},
	} {
		if b, err := Encode(img, opt); err == nil {
			seeds = append(seeds, b)
		}
		if b, err := EncodeProgressive(img, opt); err == nil {
			seeds = append(seeds, b)
		}
	}
	if b, err := Encode(gray, EncodeOptions{Quality: 85}); err == nil {
		seeds = append(seeds, b)
	}
	seeds = append(seeds, []byte{0xFF, 0xD8}, nil)
	return seeds
}
