package jpeg

import (
	"bytes"
	"errors"
	"image"
	"image/color"
	stdjpeg "image/jpeg"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dlbooster/internal/pix"
)

// smoothImage synthesises a natural-image-like raster: low-frequency
// gradients plus mild texture, so lossy round trips stay tight.
func smoothImage(w, h, c int, seed int64) *pix.Image {
	rng := rand.New(rand.NewSource(seed))
	img := pix.New(w, h, c)
	fx := 1 + rng.Float64()*2
	fy := 1 + rng.Float64()*2
	phase := rng.Float64() * math.Pi
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			base := 128 + 90*math.Sin(fx*float64(x)/float64(w)*math.Pi+phase)*math.Cos(fy*float64(y)/float64(h)*math.Pi)
			for ch := 0; ch < c; ch++ {
				v := base + 15*float64(ch) + 4*rng.Float64()
				img.Set(x, y, ch, clamp8(int32(v)))
			}
		}
	}
	return img
}

func psnr(a, b *pix.Image, t *testing.T) float64 {
	mse, err := a.MeanSquaredError(b)
	if err != nil {
		t.Fatal(err)
	}
	if mse == 0 {
		return math.Inf(1)
	}
	return 10 * math.Log10(255*255/mse)
}

func stdToPix(m image.Image, t *testing.T) *pix.Image {
	b := m.Bounds()
	out := pix.New(b.Dx(), b.Dy(), 3)
	for y := 0; y < b.Dy(); y++ {
		for x := 0; x < b.Dx(); x++ {
			r, g, bb, _ := m.At(b.Min.X+x, b.Min.Y+y).RGBA()
			out.Set(x, y, 0, byte(r>>8))
			out.Set(x, y, 1, byte(g>>8))
			out.Set(x, y, 2, byte(bb>>8))
		}
	}
	return out
}

var geometries = []struct {
	name string
	w, h int
}{
	{"1x1", 1, 1},
	{"7x5", 7, 5},
	{"8x8", 8, 8},
	{"16x16", 16, 16},
	{"17x23", 17, 23},
	{"64x48", 64, 48},
	{"100x75", 100, 75},
	{"129x97", 129, 97},
}

func TestRoundTrip444(t *testing.T) {
	for _, g := range geometries {
		t.Run(g.name, func(t *testing.T) {
			img := smoothImage(g.w, g.h, 3, int64(g.w*1000+g.h))
			data, err := Encode(img, EncodeOptions{Quality: 92})
			if err != nil {
				t.Fatal(err)
			}
			got, err := Decode(data)
			if err != nil {
				t.Fatal(err)
			}
			if !got.EqualGeometry(img) {
				t.Fatalf("geometry %dx%dx%d, want %dx%dx%d", got.W, got.H, got.C, img.W, img.H, img.C)
			}
			if p := psnr(img, got, t); p < 32 {
				t.Fatalf("PSNR = %.1f dB, want >= 32", p)
			}
		})
	}
}

func TestRoundTrip420(t *testing.T) {
	for _, g := range geometries {
		t.Run(g.name, func(t *testing.T) {
			img := smoothImage(g.w, g.h, 3, int64(g.w*2000+g.h))
			data, err := Encode(img, EncodeOptions{Quality: 92, Subsample420: true})
			if err != nil {
				t.Fatal(err)
			}
			got, err := Decode(data)
			if err != nil {
				t.Fatal(err)
			}
			if p := psnr(img, got, t); p < 30 {
				t.Fatalf("PSNR = %.1f dB, want >= 30", p)
			}
		})
	}
}

func TestRoundTripGray(t *testing.T) {
	for _, g := range geometries {
		t.Run(g.name, func(t *testing.T) {
			img := smoothImage(g.w, g.h, 1, int64(g.w*3000+g.h))
			data, err := Encode(img, EncodeOptions{Quality: 92})
			if err != nil {
				t.Fatal(err)
			}
			got, err := Decode(data)
			if err != nil {
				t.Fatal(err)
			}
			if got.C != 1 {
				t.Fatalf("channels = %d, want 1", got.C)
			}
			if p := psnr(img, got, t); p < 34 {
				t.Fatalf("PSNR = %.1f dB, want >= 34", p)
			}
		})
	}
}

func TestRoundTripWithRestartIntervals(t *testing.T) {
	img := smoothImage(100, 75, 3, 42)
	for _, ri := range []int{1, 2, 5, 100} {
		data, err := Encode(img, EncodeOptions{Quality: 90, Subsample420: true, RestartInterval: ri})
		if err != nil {
			t.Fatalf("ri=%d: %v", ri, err)
		}
		got, err := Decode(data)
		if err != nil {
			t.Fatalf("ri=%d: %v", ri, err)
		}
		if p := psnr(img, got, t); p < 30 {
			t.Fatalf("ri=%d: PSNR = %.1f dB", ri, p)
		}
	}
}

func TestQualitySweep(t *testing.T) {
	img := smoothImage(64, 64, 3, 5)
	prevSize := 1 << 30
	var prevPSNR float64 = 1000
	for _, q := range []int{95, 75, 50, 25, 10} {
		data, err := Encode(img, EncodeOptions{Quality: q})
		if err != nil {
			t.Fatal(err)
		}
		got, err := Decode(data)
		if err != nil {
			t.Fatal(err)
		}
		p := psnr(img, got, t)
		// Lower quality must not produce larger files or better fidelity.
		if len(data) > prevSize {
			t.Fatalf("quality %d: size %d > previous %d", q, len(data), prevSize)
		}
		if p > prevPSNR+0.5 {
			t.Fatalf("quality %d: PSNR %.1f improved over higher quality %.1f", q, p, prevPSNR)
		}
		prevSize, prevPSNR = len(data), p
	}
}

// TestDecoderMatchesStdlib decodes our encoder's output with both our
// decoder and image/jpeg and requires near-identical pixels: the two
// implementations disagree only in iDCT/upsampling rounding.
func TestDecoderMatchesStdlib(t *testing.T) {
	for _, sub := range []bool{false, true} {
		for _, g := range geometries {
			img := smoothImage(g.w, g.h, 3, int64(g.w*7+g.h)+boolInt(sub))
			data, err := Encode(img, EncodeOptions{Quality: 90, Subsample420: sub})
			if err != nil {
				t.Fatal(err)
			}
			ours, err := Decode(data)
			if err != nil {
				t.Fatalf("%s sub=%v: %v", g.name, sub, err)
			}
			stdImg, err := stdjpeg.Decode(bytes.NewReader(data))
			if err != nil {
				t.Fatalf("%s sub=%v stdlib: %v", g.name, sub, err)
			}
			ref := stdToPix(stdImg, t)
			maxd, err := ours.MaxAbsDiff(ref)
			if err != nil {
				t.Fatal(err)
			}
			// 4:2:0 allows slack for different upsampling filters.
			limit := 4
			if sub {
				limit = 24
			}
			if maxd > limit {
				t.Fatalf("%s sub=%v: max diff vs stdlib = %d", g.name, sub, maxd)
			}
			if mse, _ := ours.MeanSquaredError(ref); mse > 4 {
				t.Fatalf("%s sub=%v: mse vs stdlib = %.2f", g.name, sub, mse)
			}
		}
	}
}

func boolInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// TestDecodeStdlibEncoded decodes image/jpeg output with our decoder.
func TestDecodeStdlibEncoded(t *testing.T) {
	img := smoothImage(90, 60, 3, 77)
	rgba := image.NewRGBA(image.Rect(0, 0, img.W, img.H))
	for y := 0; y < img.H; y++ {
		for x := 0; x < img.W; x++ {
			rgba.Set(x, y, color.RGBA{img.At(x, y, 0), img.At(x, y, 1), img.At(x, y, 2), 255})
		}
	}
	var buf bytes.Buffer
	if err := stdjpeg.Encode(&buf, rgba, &stdjpeg.Options{Quality: 90}); err != nil {
		t.Fatal(err)
	}
	ours, err := Decode(buf.Bytes())
	if err != nil {
		t.Fatalf("decoding stdlib-encoded stream: %v", err)
	}
	stdBack, err := stdjpeg.Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	ref := stdToPix(stdBack, t)
	maxd, err := ours.MaxAbsDiff(ref)
	if err != nil {
		t.Fatal(err)
	}
	if maxd > 24 {
		t.Fatalf("max diff vs stdlib decode = %d", maxd)
	}
	if mse, _ := ours.MeanSquaredError(ref); mse > 6 {
		t.Fatalf("mse vs stdlib decode = %.2f", mse)
	}
}

func TestDecodeConfig(t *testing.T) {
	img := smoothImage(123, 45, 3, 8)
	data, err := Encode(img, DefaultEncodeOptions())
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := DecodeConfig(data)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Width != 123 || cfg.Height != 45 || cfg.Components != 3 {
		t.Fatalf("config = %+v", cfg)
	}
}

func TestEncodeRejectsBadInput(t *testing.T) {
	if _, err := Encode(nil, DefaultEncodeOptions()); err == nil {
		t.Error("nil image accepted")
	}
	img := smoothImage(8, 8, 3, 1)
	if _, err := Encode(img, EncodeOptions{Quality: 0}); err == nil {
		t.Error("quality 0 accepted")
	}
	if _, err := Encode(img, EncodeOptions{Quality: 101}); err == nil {
		t.Error("quality 101 accepted")
	}
	bad := &pix.Image{W: 8, H: 8, C: 3, Pix: make([]byte, 10)}
	if _, err := Encode(bad, DefaultEncodeOptions()); err == nil {
		t.Error("short pixel buffer accepted")
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	img := smoothImage(32, 32, 3, 2)
	good, err := Encode(img, EncodeOptions{Quality: 80})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"no SOI", []byte{0x00, 0x01, 0x02}},
		{"SOI only", []byte{0xFF, 0xD8}},
		{"truncated header", good[:20]},
		{"truncated scan", good[:len(good)-len(good)/3]},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Decode(tc.data); err == nil {
				t.Fatalf("malformed input accepted")
			}
		})
	}
}

func TestBaselineStreamForgedAsProgressiveFails(t *testing.T) {
	// Rewriting a baseline stream's SOF0 to SOF2 routes it to the
	// multi-scan decoder, where the baseline scan header (a full-band
	// DC+AC scan) is invalid — it must fail cleanly, not mis-decode.
	img := smoothImage(32, 32, 3, 3)
	data, err := Encode(img, EncodeOptions{Quality: 80})
	if err != nil {
		t.Fatal(err)
	}
	mut := append([]byte(nil), data...)
	patched := false
	for i := 0; i+1 < len(mut); i++ {
		if mut[i] == 0xFF && mut[i+1] == mSOF0 {
			mut[i+1] = mSOF2
			patched = true
			break
		}
	}
	if !patched {
		t.Fatal("SOF0 not found")
	}
	var ferr FormatError
	if _, err := Decode(mut); !errors.As(err, &ferr) {
		t.Fatalf("forged stream accepted or wrong error class: %v", err)
	}
}

// TestDecodeCorruptScanNoPanic flips bits in the entropy-coded data and
// requires decode to fail cleanly or produce an image, never panic. This
// is the error path the FPGA decoder's FINISH arbiter reports upstream.
func TestDecodeCorruptScanNoPanic(t *testing.T) {
	img := smoothImage(48, 48, 3, 4)
	data, err := Encode(img, EncodeOptions{Quality: 80, Subsample420: true})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 300; trial++ {
		mut := append([]byte(nil), data...)
		for k := 0; k < 1+rng.Intn(6); k++ {
			pos := rng.Intn(len(mut)-2) + 2 // keep SOI intact
			mut[pos] ^= byte(1 << rng.Intn(8))
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on corrupt input (trial %d): %v", trial, r)
				}
			}()
			_, _ = Decode(mut)
		}()
	}
}

// TestDecodeRandomBytesNoPanic feeds arbitrary bytes to the decoder.
func TestDecodeRandomBytesNoPanic(t *testing.T) {
	f := func(data []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("panic on random input: %v", r)
			}
		}()
		_, _ = Decode(data)
		// Also with a forged SOI so parsing gets further.
		_, _ = Decode(append([]byte{0xFF, 0xD8}, data...))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestRoundTripProperty: random smooth images survive encode/decode with
// bounded error, across random geometry and quality.
func TestRoundTripProperty(t *testing.T) {
	f := func(wSeed, hSeed uint8, qSeed uint8, sub bool, seed int64) bool {
		w := int(wSeed)%120 + 1
		h := int(hSeed)%120 + 1
		q := int(qSeed)%41 + 60 // 60..100
		img := smoothImage(w, h, 3, seed)
		data, err := Encode(img, EncodeOptions{Quality: q, Subsample420: sub})
		if err != nil {
			return false
		}
		got, err := Decode(data)
		if err != nil {
			return false
		}
		if !got.EqualGeometry(img) {
			return false
		}
		mse, err := img.MeanSquaredError(got)
		if err != nil {
			return false
		}
		// Tiny images at low quality with 4:2:0 legitimately lose a
		// lot; the property is bounded error, not high fidelity.
		return mse < 900
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestStagedPipelineMatchesDecode(t *testing.T) {
	img := smoothImage(80, 60, 3, 12)
	data, err := Encode(img, EncodeOptions{Quality: 85, Subsample420: true})
	if err != nil {
		t.Fatal(err)
	}
	whole, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	h, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if h.Width != 80 || h.Height != 60 {
		t.Fatalf("parsed %dx%d", h.Width, h.Height)
	}
	co, err := h.EntropyDecode()
	if err != nil {
		t.Fatal(err)
	}
	planes, err := co.Reconstruct()
	if err != nil {
		t.Fatal(err)
	}
	staged := planes.ToImage()
	maxd, err := whole.MaxAbsDiff(staged)
	if err != nil {
		t.Fatal(err)
	}
	if maxd != 0 {
		t.Fatalf("staged pipeline differs from Decode by %d", maxd)
	}
}

func TestParseSkipsAppAndComment(t *testing.T) {
	img := smoothImage(16, 16, 3, 6)
	data, err := Encode(img, EncodeOptions{Quality: 80})
	if err != nil {
		t.Fatal(err)
	}
	// Splice a COM and an APP5 segment after SOI.
	com := []byte{0xFF, mCOM, 0x00, 0x07, 'h', 'e', 'l', 'l', 'o'}
	app := []byte{0xFF, 0xE5, 0x00, 0x04, 0xAA, 0xBB}
	spliced := append([]byte{0xFF, 0xD8}, com...)
	spliced = append(spliced, app...)
	spliced = append(spliced, data[2:]...)
	if _, err := Decode(spliced); err != nil {
		t.Fatalf("decode with COM/APP segments: %v", err)
	}
}

func TestLargePaperSizedImage(t *testing.T) {
	if testing.Short() {
		t.Skip("500x375 decode in -short mode")
	}
	// The paper's online-inference workload: 500×375 colour JPEG.
	img := smoothImage(500, 375, 3, 2019)
	data, err := Encode(img, DefaultEncodeOptions())
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if p := psnr(img, got, t); p < 30 {
		t.Fatalf("PSNR = %.1f dB", p)
	}
}

func TestRoundTrip422(t *testing.T) {
	for _, g := range geometries {
		t.Run(g.name, func(t *testing.T) {
			img := smoothImage(g.w, g.h, 3, int64(g.w*4000+g.h))
			data, err := Encode(img, EncodeOptions{Quality: 92, Subsample422: true})
			if err != nil {
				t.Fatal(err)
			}
			got, err := Decode(data)
			if err != nil {
				t.Fatal(err)
			}
			if p := psnr(img, got, t); p < 30 {
				t.Fatalf("PSNR = %.1f dB, want >= 30", p)
			}
			// Cross-validate against the stdlib decoder.
			stdImg, err := stdjpeg.Decode(bytes.NewReader(data))
			if err != nil {
				t.Fatalf("stdlib rejected 4:2:2 stream: %v", err)
			}
			ref := stdToPix(stdImg, t)
			if maxd, _ := got.MaxAbsDiff(ref); maxd > 24 {
				t.Fatalf("our 4:2:2 decode differs from stdlib by %d", maxd)
			}
		})
	}
	if _, err := Encode(smoothImage(8, 8, 3, 1), EncodeOptions{Quality: 80, Subsample420: true, Subsample422: true}); err == nil {
		t.Fatal("both subsampling modes accepted")
	}
}

func TestProgressive422MatchesBaseline(t *testing.T) {
	img := smoothImage(100, 75, 3, 99)
	opt := EncodeOptions{Quality: 88, Subsample422: true}
	base, err := Encode(img, opt)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := EncodeProgressive(img, opt)
	if err != nil {
		t.Fatal(err)
	}
	baseImg, err := Decode(base)
	if err != nil {
		t.Fatal(err)
	}
	progImg, err := Decode(prog)
	if err != nil {
		t.Fatalf("progressive 4:2:2 decode: %v", err)
	}
	if d, _ := baseImg.MaxAbsDiff(progImg); d != 0 {
		t.Fatalf("progressive 4:2:2 differs from baseline by %d", d)
	}
	if _, err := stdjpeg.Decode(bytes.NewReader(prog)); err != nil {
		t.Fatalf("stdlib rejected progressive 4:2:2: %v", err)
	}
}
