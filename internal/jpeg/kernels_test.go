package jpeg

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"dlbooster/internal/cpukernel"
	"dlbooster/internal/imageproc"
	"dlbooster/internal/pix"
)

// The kernel layer's contract is exact numeric parity: every fast kernel
// must produce byte-identical output to its scalar reference on every
// input, so the cpukernel selection (and the kill switch) can never
// change decoded pixels. These tests enforce that contract three ways —
// exhaustive/randomised unit parity per kernel, golden-corpus decode
// parity with the kill switch toggled, and structural checks on the
// kernel tables themselves.

// scalarOnlyGuard flips the kill switch for a test and restores the
// previous state on cleanup.
func scalarOnlyGuard(t *testing.T, disable bool) {
	t.Helper()
	prev := cpukernel.ScalarOnly()
	cpukernel.SetScalarOnly(disable)
	t.Cleanup(func() { cpukernel.SetScalarOnly(prev) })
}

func TestKernelRegistryState(t *testing.T) {
	names := cpukernel.Names()
	want := map[string]bool{cpukernel.ScalarName: false, swarKernelName: false}
	for _, n := range names {
		if _, ok := want[n]; ok {
			want[n] = true
		}
	}
	for n, seen := range want {
		if !seen {
			t.Errorf("registry missing kernel %q (have %v)", n, names)
		}
	}
	scalarOnlyGuard(t, false)
	if got := cpukernel.Active(); got != swarKernelName {
		t.Errorf("active kernel %q with kill switch released, want %q", got, swarKernelName)
	}
	if !cpukernel.Fast() {
		t.Error("Fast() false with swar active")
	}
	cpukernel.SetScalarOnly(true)
	if got := cpukernel.Active(); got != cpukernel.ScalarName {
		t.Errorf("active kernel %q under kill switch, want scalar", got)
	}
	if cpukernel.Fast() {
		t.Error("Fast() true under kill switch")
	}
	if KernelName() != cpukernel.ScalarName {
		t.Errorf("KernelName() = %q under kill switch", KernelName())
	}
}

func TestKernelTablesComplete(t *testing.T) {
	for _, tab := range []*kernelTable{&scalarKernelTable, &swarKernelTable} {
		if tab.name == "" || tab.idct == nil || tab.idctScaled == nil || tab.ycbcrRow == nil {
			t.Errorf("kernel table %+v has missing entries", tab.name)
		}
	}
	scalarOnlyGuard(t, true)
	if activeKernels() != &scalarKernelTable {
		t.Error("activeKernels() not scalar under kill switch")
	}
	cpukernel.SetScalarOnly(false)
	if activeKernels() != &swarKernelTable {
		t.Error("activeKernels() not swar with kill switch released")
	}
}

func TestKernelClamp8BranchlessMatchesClamp8(t *testing.T) {
	for v := int32(-1 << 20); v <= 1<<20; v++ {
		if got, want := clamp8Branchless(v), clamp8(v); got != want {
			t.Fatalf("clamp8Branchless(%d) = %d, want %d", v, got, want)
		}
	}
	for _, v := range []int32{math.MinInt32, math.MinInt32 + 1, math.MaxInt32 - 1, math.MaxInt32} {
		if got, want := clamp8Branchless(v), clamp8(v); got != want {
			t.Fatalf("clamp8Branchless(%d) = %d, want %d", v, got, want)
		}
	}
}

// randomSparseBlock fills a block with n nonzero coefficients at random
// natural-order positions, with realistic post-dequantise magnitudes.
func randomSparseBlock(rng *rand.Rand, n int) block {
	var blk block
	for k := 0; k < n; k++ {
		blk[rng.Intn(64)] = int32(rng.Intn(4001) - 2000)
	}
	return blk
}

func TestKernelIDCTExactParity(t *testing.T) {
	rng := rand.New(rand.NewSource(20260807))
	densities := []int{0, 1, 2, 3, 5, 8, 16, 32, 64}
	for _, n := range densities {
		for trial := 0; trial < 200; trial++ {
			blk := randomSparseBlock(rng, n)
			if trial%4 == 1 && n > 0 {
				blk = block{} // DC-only shape
				blk[0] = int32(rng.Intn(4001) - 2000)
			}
			if trial%4 == 2 && n > 0 {
				// Single-column shape: exercises the column short-cuts.
				col := rng.Intn(8)
				keep := blk
				blk = block{}
				for u := 0; u < 8; u++ {
					blk[u*8+col] = keep[u*8+col]
				}
			}
			var want, got [64]byte
			idct(&blk, &want)
			idctFast(&blk, &got)
			if want != got {
				t.Fatalf("idctFast diverges from idct (density %d, trial %d)\nblk:  %v\nwant: %v\ngot:  %v", n, trial, blk, want, got)
			}
		}
	}
}

func TestKernelIDCTScaledExactParity(t *testing.T) {
	rng := rand.New(rand.NewSource(8072026))
	var q QuantTable
	for s := range []int{1, 2, 4} {
		_ = s
	}
	for _, s := range []int{1, 2, 4} {
		for trial := 0; trial < 400; trial++ {
			for i := range q {
				q[i] = uint16(1 + rng.Intn(255))
			}
			var blk block
			switch trial % 4 {
			case 0: // dense
				blk = randomSparseBlock(rng, 64)
			case 1: // EOB after DC
				blk[0] = int32(rng.Intn(2001) - 1000)
			case 2: // sparse corner
				blk = randomSparseBlock(rng, 1+rng.Intn(4))
			default: // empty
			}
			var want, got [16]byte
			idctScaled(&blk, &q, s, &want)
			idctScaledFast(&blk, &q, s, &got)
			if want != got {
				t.Fatalf("idctScaledFast diverges at scale %d (trial %d)\nblk:  %v\nwant: %v\ngot:  %v", s, trial, blk, want, got)
			}
		}
	}
}

func TestKernelYCbCrRowExactParity(t *testing.T) {
	rng := rand.New(rand.NewSource(91881))
	shapes := [][3]uint{{0, 1, 1}, {0, 0, 0}, {0, 1, 0}, {0, 0, 1}}
	for _, shx := range shapes {
		for _, w := range []int{1, 2, 3, 31, 32, 97, 500} {
			yRow := make([]byte, w)
			cbRow := make([]byte, w)
			crRow := make([]byte, w)
			for i := 0; i < w; i++ {
				yRow[i] = byte(rng.Intn(256))
				cbRow[i] = byte(rng.Intn(256))
				crRow[i] = byte(rng.Intn(256))
			}
			want := make([]byte, w*3)
			got := make([]byte, w*3)
			ycbcrRowScalar(want, yRow, cbRow, crRow, w, shx)
			ycbcrRowFast(got, yRow, cbRow, crRow, w, shx)
			if !bytes.Equal(want, got) {
				t.Fatalf("ycbcrRowFast diverges (shx %v, w %d)", shx, w)
			}
		}
	}
}

// goldenCorpus encodes a spread of layouts, qualities and restart
// intervals — the decode shapes the pipeline sees in production.
func goldenCorpus(t *testing.T) map[string][]byte {
	t.Helper()
	corpus := map[string][]byte{}
	add := func(name string, img *pix.Image, opt EncodeOptions) {
		data, err := Encode(img, opt)
		if err != nil {
			t.Fatalf("encode %s: %v", name, err)
		}
		corpus[name] = data
	}
	add("420-q88", smoothImage(500, 375, 3, 1), DefaultEncodeOptions())
	add("422-q90", smoothImage(320, 240, 3, 2), EncodeOptions{Quality: 90, Subsample422: true})
	add("444-q95", smoothImage(160, 120, 3, 3), EncodeOptions{Quality: 95})
	add("gray-q85", smoothImage(256, 192, 1, 4), EncodeOptions{Quality: 85})
	add("420-q60-odd", smoothImage(251, 187, 3, 5), EncodeOptions{Quality: 60, Subsample420: true})
	add("420-dri", smoothImage(512, 384, 3, 6), EncodeOptions{Quality: 88, Subsample420: true, RestartInterval: 8})
	add("gray-dri", smoothImage(320, 320, 1, 7), EncodeOptions{Quality: 88, RestartInterval: 16})
	return corpus
}

// TestKernelGoldenCorpusByteParity is the tentpole acceptance test: every
// stream in the corpus must decode byte-identically with the fast
// kernels and with the kill switch engaged — full decode and the fused
// decode-to-scale path at several target geometries.
func TestKernelGoldenCorpusByteParity(t *testing.T) {
	corpus := goldenCorpus(t)
	targets := []struct{ w, h int }{{96, 96}, {64, 48}, {224, 224}, {33, 27}}
	for name, data := range corpus {
		scalarOnlyGuard(t, true)
		wantFull, err := Decode(data)
		if err != nil {
			t.Fatalf("%s: scalar decode: %v", name, err)
		}
		cpukernel.SetScalarOnly(false)
		gotFull, err := Decode(data)
		if err != nil {
			t.Fatalf("%s: fast decode: %v", name, err)
		}
		if !bytes.Equal(wantFull.Pix, gotFull.Pix) {
			t.Errorf("%s: full decode differs between scalar and fast kernels", name)
		}
		for _, tg := range targets {
			var scScalar, scFast Scratch
			want := pix.New(tg.w, tg.h, wantFull.C)
			got := pix.New(tg.w, tg.h, wantFull.C)
			cpukernel.SetScalarOnly(true)
			wantScale, err := DecodeScaledInto(data, want, &scScalar)
			if err != nil {
				t.Fatalf("%s→%dx%d: scalar scaled decode: %v", name, tg.w, tg.h, err)
			}
			cpukernel.SetScalarOnly(false)
			gotScale, err := DecodeScaledInto(data, got, &scFast)
			if err != nil {
				t.Fatalf("%s→%dx%d: fast scaled decode: %v", name, tg.w, tg.h, err)
			}
			if wantScale != gotScale {
				t.Errorf("%s→%dx%d: scale %d vs %d across kill switch", name, tg.w, tg.h, wantScale, gotScale)
			}
			if !bytes.Equal(want.Pix, got.Pix) {
				t.Errorf("%s→%dx%d: scaled decode differs between scalar and fast kernels", name, tg.w, tg.h)
			}
		}
	}
}

// TestKernelSIMDCounter: the simd counter moves exactly when a fast
// reconstruction runs.
func TestKernelSIMDCounter(t *testing.T) {
	img := smoothImage(64, 64, 3, 9)
	data, err := Encode(img, DefaultEncodeOptions())
	if err != nil {
		t.Fatal(err)
	}
	scalarOnlyGuard(t, true)
	before := KernelSIMDDecodes()
	if _, err := Decode(data); err != nil {
		t.Fatal(err)
	}
	if got := KernelSIMDDecodes(); got != before {
		t.Errorf("simd counter moved %d under kill switch", got-before)
	}
	cpukernel.SetScalarOnly(false)
	if _, err := Decode(data); err != nil {
		t.Fatal(err)
	}
	if got := KernelSIMDDecodes(); got != before+1 {
		t.Errorf("simd counter %d after fast decode, want %d", got, before+1)
	}
}

// TestDecodeScaledIntoPerScaleZeroAllocs extends the steady-state pin to
// every iDCT scale, so a kernel swap cannot silently reintroduce
// allocations on any of the per-scale code paths.
func TestDecodeScaledIntoPerScaleZeroAllocs(t *testing.T) {
	for _, cse := range perScaleBenchCases() {
		t.Run(cse.name, func(t *testing.T) {
			img := smoothImage(cse.srcW, cse.srcH, 3, 50)
			data, err := Encode(img, DefaultEncodeOptions())
			if err != nil {
				t.Fatal(err)
			}
			var sc Scratch
			dst := pix.New(cse.dstW, cse.dstH, 3)
			scale, err := DecodeScaledInto(data, dst, &sc)
			if err != nil {
				t.Fatal(err)
			}
			if scale != cse.scale {
				t.Fatalf("geometry %dx%d→%dx%d decoded at scale %d, want %d", cse.srcW, cse.srcH, cse.dstW, cse.dstH, scale, cse.scale)
			}
			allocs := testing.AllocsPerRun(20, func() {
				if _, err := DecodeScaledInto(data, dst, &sc); err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Errorf("scale %d: %.1f allocs per decode, want 0", cse.scale, allocs)
			}
		})
	}
}

type perScaleCase struct {
	name       string
	srcW, srcH int
	dstW, dstH int
	scale      int
}

// perScaleBenchCases pins one geometry per iDCT scale: a 512×512 source
// whose target lands each branch of ScaleFor.
func perScaleBenchCases() []perScaleCase {
	return []perScaleCase{
		{"1x1", 512, 512, 64, 64, 1},
		{"2x2", 512, 512, 128, 128, 2},
		{"4x4", 512, 512, 256, 256, 4},
		{"8x8", 512, 512, 384, 384, 8},
	}
}

// BenchmarkDecodeScaledInto measures the fused decode at each iDCT
// scale with a dedicated per-worker Scratch (the backends.CPU worker
// configuration). Run with -benchmem: allocs/op must be 0.
func BenchmarkDecodeScaledInto(b *testing.B) {
	for _, cse := range perScaleBenchCases() {
		b.Run(cse.name, func(b *testing.B) {
			img := smoothImage(cse.srcW, cse.srcH, 3, 51)
			data, err := Encode(img, DefaultEncodeOptions())
			if err != nil {
				b.Fatal(err)
			}
			var sc Scratch
			dst := pix.New(cse.dstW, cse.dstH, 3)
			if _, err := DecodeScaledInto(data, dst, &sc); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(data)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := DecodeScaledInto(data, dst, &sc); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDecodeScaledIntoScalar is the same hot loop with the kill
// switch engaged — the ablation pair for BenchmarkDecodeScaledInto.
func BenchmarkDecodeScaledIntoScalar(b *testing.B) {
	prev := cpukernel.ScalarOnly()
	cpukernel.SetScalarOnly(true)
	b.Cleanup(func() { cpukernel.SetScalarOnly(prev) })
	for _, cse := range perScaleBenchCases() {
		b.Run(cse.name, func(b *testing.B) {
			img := smoothImage(cse.srcW, cse.srcH, 3, 51)
			data, err := Encode(img, DefaultEncodeOptions())
			if err != nil {
				b.Fatal(err)
			}
			var sc Scratch
			dst := pix.New(cse.dstW, cse.dstH, 3)
			if _, err := DecodeScaledInto(data, dst, &sc); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(data)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := DecodeScaledInto(data, dst, &sc); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestKernelKillSwitchFullPipeline drives the legacy staged pipeline
// (Parse → EntropyDecode → Reconstruct → ToImage → ResizeInto) across
// the kill switch, covering the resize kernel dispatch in imageproc.
func TestKernelKillSwitchFullPipeline(t *testing.T) {
	img := smoothImage(333, 251, 3, 10)
	data, err := Encode(img, DefaultEncodeOptions())
	if err != nil {
		t.Fatal(err)
	}
	run := func() *pix.Image {
		full, err := Decode(data)
		if err != nil {
			t.Fatal(err)
		}
		dst := pix.New(96, 96, 3)
		if err := imageproc.ResizeInto(full, dst, imageproc.Bilinear); err != nil {
			t.Fatal(err)
		}
		return dst
	}
	scalarOnlyGuard(t, true)
	want := run()
	cpukernel.SetScalarOnly(false)
	got := run()
	if !bytes.Equal(want.Pix, got.Pix) {
		t.Error("full pipeline output differs across the kernel kill switch")
	}
}

func init() {
	// Kernel parity tests toggle the process-global kill switch; make any
	// accidental parallel use loud instead of flaky.
	if cpukernel.Active() == "" {
		panic(fmt.Sprintf("cpukernel registry empty: %v", cpukernel.Names()))
	}
}
