package jpeg

import (
	"bytes"
	stdjpeg "image/jpeg"
	"math/rand"
	"testing"
)

// TestProgressiveMatchesBaselinePixels: the progressive encoder writes
// the same quantised coefficients as the baseline encoder, so decoding
// both forms must give byte-identical pixels.
func TestProgressiveMatchesBaselinePixels(t *testing.T) {
	for _, g := range geometries {
		for _, mode := range []struct {
			name string
			c    int
			sub  bool
		}{
			{"gray", 1, false},
			{"444", 3, false},
			{"420", 3, true},
		} {
			t.Run(g.name+"/"+mode.name, func(t *testing.T) {
				img := smoothImage(g.w, g.h, mode.c, int64(g.w*31+g.h))
				opt := EncodeOptions{Quality: 88, Subsample420: mode.sub}
				base, err := Encode(img, opt)
				if err != nil {
					t.Fatal(err)
				}
				prog, err := EncodeProgressive(img, opt)
				if err != nil {
					t.Fatal(err)
				}
				baseImg, err := Decode(base)
				if err != nil {
					t.Fatal(err)
				}
				progImg, err := Decode(prog)
				if err != nil {
					t.Fatalf("progressive decode: %v", err)
				}
				if d, _ := baseImg.MaxAbsDiff(progImg); d != 0 {
					t.Fatalf("progressive differs from baseline by %d", d)
				}
			})
		}
	}
}

// TestProgressiveDecodedByStdlib: Go's image/jpeg decodes progressive
// streams, so it independently validates our encoder's bitstream.
func TestProgressiveDecodedByStdlib(t *testing.T) {
	for _, sub := range []bool{false, true} {
		img := smoothImage(97, 73, 3, 2024+boolInt(sub))
		prog, err := EncodeProgressive(img, EncodeOptions{Quality: 90, Subsample420: sub})
		if err != nil {
			t.Fatal(err)
		}
		stdImg, err := stdjpeg.Decode(bytes.NewReader(prog))
		if err != nil {
			t.Fatalf("stdlib rejected our progressive stream (sub=%v): %v", sub, err)
		}
		ref := stdToPix(stdImg, t)
		ours, err := Decode(prog)
		if err != nil {
			t.Fatal(err)
		}
		maxd, err := ours.MaxAbsDiff(ref)
		if err != nil {
			t.Fatal(err)
		}
		limit := 4
		if sub {
			limit = 24 // upsampling filters differ
		}
		if maxd > limit {
			t.Fatalf("sub=%v: our decode differs from stdlib by %d", sub, maxd)
		}
	}
}

func TestProgressiveGrayStdlib(t *testing.T) {
	img := smoothImage(64, 40, 1, 5)
	prog, err := EncodeProgressive(img, EncodeOptions{Quality: 92})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := stdjpeg.Decode(bytes.NewReader(prog)); err != nil {
		t.Fatalf("stdlib rejected grayscale progressive: %v", err)
	}
	got, err := Decode(prog)
	if err != nil {
		t.Fatal(err)
	}
	if p := psnr(img, got, t); p < 34 {
		t.Fatalf("PSNR = %.1f", p)
	}
}

func TestDecodeConfigProgressive(t *testing.T) {
	img := smoothImage(55, 44, 3, 6)
	prog, err := EncodeProgressive(img, EncodeOptions{Quality: 85})
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := DecodeConfig(prog)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Width != 55 || cfg.Height != 44 || cfg.Components != 3 {
		t.Fatalf("config = %+v", cfg)
	}
}

// TestParseReturnsErrProgressive: the staged pipeline (and so the FPGA
// mirror) must refuse progressive streams with the sentinel.
func TestParseReturnsErrProgressive(t *testing.T) {
	img := smoothImage(32, 32, 3, 7)
	prog, err := EncodeProgressive(img, EncodeOptions{Quality: 85})
	if err != nil {
		t.Fatal(err)
	}
	h, err := Parse(prog)
	if err != ErrProgressive {
		t.Fatalf("Parse = %v, want ErrProgressive", err)
	}
	if h == nil || !h.Progressive || h.Width != 32 {
		t.Fatalf("header = %+v", h)
	}
}

func TestProgressiveRejectsMalformed(t *testing.T) {
	img := smoothImage(32, 32, 3, 8)
	good, err := EncodeProgressive(img, EncodeOptions{Quality: 85})
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":          nil,
		"no SOI":         {1, 2, 3},
		"header only":    good[:30],
		"truncated scan": good[:len(good)/2],
	}
	for name, data := range cases {
		if _, err := Decode(data); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

// TestProgressiveCorruptNoPanic fuzzes bit flips across the stream.
func TestProgressiveCorruptNoPanic(t *testing.T) {
	img := smoothImage(48, 36, 3, 9)
	good, err := EncodeProgressive(img, EncodeOptions{Quality: 85, Subsample420: true})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 300; trial++ {
		mut := append([]byte(nil), good...)
		for k := 0; k < 1+rng.Intn(6); k++ {
			pos := rng.Intn(len(mut)-2) + 2
			mut[pos] ^= byte(1 << rng.Intn(8))
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on corrupt progressive input (trial %d): %v", trial, r)
				}
			}()
			_, _ = Decode(mut)
		}()
	}
}

func TestProgressiveEncodeValidation(t *testing.T) {
	if _, err := EncodeProgressive(nil, DefaultEncodeOptions()); err == nil {
		t.Fatal("nil image accepted")
	}
	img := smoothImage(8, 8, 3, 1)
	if _, err := EncodeProgressive(img, EncodeOptions{Quality: 0}); err == nil {
		t.Fatal("quality 0 accepted")
	}
}

// TestProgressiveSmallerAtLowInformation: sanity — the progressive form
// of the paper-sized workload decodes and is within a plausible size
// band of the baseline form.
func TestProgressiveSizeSanity(t *testing.T) {
	img := smoothImage(200, 150, 3, 11)
	opt := EncodeOptions{Quality: 88, Subsample420: true}
	base, err := Encode(img, opt)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := EncodeProgressive(img, opt)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(len(prog)) / float64(len(base))
	if ratio < 0.5 || ratio > 1.6 {
		t.Fatalf("progressive/baseline size ratio = %.2f (%d vs %d bytes)", ratio, len(prog), len(base))
	}
}

func TestProgressiveWithRestartIntervals(t *testing.T) {
	// Restart intervals in non-interleaved progressive scans count data
	// units (T.81 §G: the MCU of a non-interleaved scan is one block),
	// which is libjpeg's behaviour. Go's image/jpeg instead counts its
	// padded-grid MCU walk for subsampled components, so the stdlib
	// referee only applies where the two semantics coincide (grayscale
	// and 4:4:4, where every component's walk is the real block grid).
	for _, mode := range []struct {
		name string
		c    int
		sub  bool
		std  bool
	}{
		{"gray", 1, false, true},
		{"444", 3, false, true},
		{"420", 3, true, false},
	} {
		img := smoothImage(100, 75, mode.c, 42)
		for _, ri := range []int{1, 3, 7} {
			opt := EncodeOptions{Quality: 88, Subsample420: mode.sub, RestartInterval: ri}
			base, err := Encode(img, opt)
			if err != nil {
				t.Fatalf("%s ri=%d: %v", mode.name, ri, err)
			}
			prog, err := EncodeProgressive(img, opt)
			if err != nil {
				t.Fatalf("%s ri=%d: %v", mode.name, ri, err)
			}
			baseImg, err := Decode(base)
			if err != nil {
				t.Fatal(err)
			}
			progImg, err := Decode(prog)
			if err != nil {
				t.Fatalf("%s ri=%d: progressive decode: %v", mode.name, ri, err)
			}
			if d, _ := baseImg.MaxAbsDiff(progImg); d != 0 {
				t.Fatalf("%s ri=%d: differs from baseline by %d", mode.name, ri, d)
			}
			if mode.std {
				if _, err := stdjpeg.Decode(bytes.NewReader(prog)); err != nil {
					t.Fatalf("%s ri=%d: stdlib rejects restart-interval progressive: %v", mode.name, ri, err)
				}
			}
		}
	}
}
