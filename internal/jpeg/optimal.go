package jpeg

// Optimal Huffman table generation per ITU-T T.81 Annex K.2 (the
// algorithm libjpeg uses). Progressive scans emit EOBn symbols that the
// Annex K example tables do not contain, so the progressive encoder
// counts each scan's symbols and derives a custom table — which is also
// why real-world progressive files always carry optimised tables.

const maxCodeLen = 32 // longest code before the 16-bit limiting pass

// optimalSpec derives a Huffman table from symbol frequencies. A pseudo
// symbol (index 256) with frequency 1 guarantees that no real symbol is
// assigned the all-ones code, as T.81 requires.
func optimalSpec(freqIn *[256]int) (*HuffmanSpec, error) {
	var freq [257]int
	copy(freq[:], freqIn[:])
	freq[256] = 1

	var codesize [257]int
	var others [257]int
	for i := range others {
		others[i] = -1
	}

	// Pair the two least-frequent trees until one remains.
	for {
		c1, c2 := -1, -1
		v := int(^uint(0) >> 1)
		for i := 0; i <= 256; i++ {
			if freq[i] != 0 && freq[i] <= v {
				v = freq[i]
				c1 = i
			}
		}
		v = int(^uint(0) >> 1)
		for i := 0; i <= 256; i++ {
			if freq[i] != 0 && freq[i] <= v && i != c1 {
				v = freq[i]
				c2 = i
			}
		}
		if c2 < 0 {
			break
		}
		freq[c1] += freq[c2]
		freq[c2] = 0
		codesize[c1]++
		for others[c1] >= 0 {
			c1 = others[c1]
			codesize[c1]++
		}
		others[c1] = c2
		codesize[c2]++
		for others[c2] >= 0 {
			c2 = others[c2]
			codesize[c2]++
		}
	}

	var bits [maxCodeLen + 1]int
	for i := 0; i <= 256; i++ {
		if codesize[i] > 0 {
			if codesize[i] > maxCodeLen {
				return nil, FormatError("huffman code length overflow")
			}
			bits[codesize[i]]++
		}
	}

	// Limit code lengths to 16 (K.2's pairwise promotion).
	for i := maxCodeLen; i > 16; i-- {
		for bits[i] > 0 {
			j := i - 2
			for bits[j] == 0 {
				j--
			}
			bits[i] -= 2
			bits[i-1]++
			bits[j+1] += 2
			bits[j]--
		}
	}
	// Remove the pseudo symbol: it holds the longest (all-ones) code.
	i := 16
	for i > 0 && bits[i] == 0 {
		i--
	}
	if i == 0 {
		return nil, FormatError("empty huffman table")
	}
	bits[i]--

	spec := &HuffmanSpec{}
	for l := 1; l <= 16; l++ {
		spec.Counts[l-1] = byte(bits[l])
	}
	// Symbols sorted by code length then value.
	for l := 1; l <= maxCodeLen; l++ {
		for s := 0; s < 256; s++ {
			if codesize[s] == l {
				spec.Values = append(spec.Values, byte(s))
			}
		}
	}
	if err := spec.validate(); err != nil {
		return nil, err
	}
	return spec, nil
}
