// Package jpeg implements a baseline JPEG (ITU-T T.81) encoder and
// decoder from scratch, with the decoder additionally exposed as explicit
// pipeline stages (entropy decode → dequantise+iDCT → upsample+colour).
//
// DLBooster's FPGA decoder (paper §3.3) is exactly that staged pipeline:
// a parser feeds a 4-way Huffman decoding unit, which feeds an iDCT & RGB
// unit, which feeds a 2-way resizer. Building the codec ourselves — rather
// than calling image/jpeg — gives the FPGA model real stages to schedule
// and lets the CPU-based baseline burn cores on the same computation the
// paper's baseline burned them on. The stdlib codec is used only in tests,
// as an independent reference implementation.
//
// Supported: baseline sequential DCT and progressive (SOF2, spectral
// selection + successive approximation — decode in progressive.go,
// encode in progencode.go), 8-bit samples, 1 or 3 components, sampling
// factors 1–2 in each axis (4:4:4, 4:2:2, 4:4:0, 4:2:0, grayscale),
// restart intervals, 8- and 16-bit quantisation tables, optimal Huffman
// table generation. Progressive streams decode in software only: the
// staged pipeline the FPGA mirror drives is baseline, like hardware
// decoders. Not supported (rejected with a clear error): arithmetic
// coding, hierarchical, 12-bit precision, CMYK.
package jpeg

import (
	"fmt"
)

// FormatError reports malformed JPEG input.
type FormatError string

func (e FormatError) Error() string { return "jpeg: invalid format: " + string(e) }

// UnsupportedError reports valid-but-unsupported JPEG features.
type UnsupportedError string

func (e UnsupportedError) Error() string { return "jpeg: unsupported feature: " + string(e) }

// errShortData reports entropy-coded data ending before the scan was
// complete. It is declared as a pre-boxed error (not a FormatError) so
// the hot bit-reader paths that return it at end-of-stream do not
// allocate an interface value per return.
var errShortData error = FormatError("short entropy-coded data")

// bitReader consumes entropy-coded scan bytes MSB first, removing the
// 0x00 bytes stuffed after 0xFF and stopping cleanly at markers. The FPGA
// Huffman unit's input channel carries exactly this byte stream.
type bitReader struct {
	data []byte
	pos  int    // next byte to load into the accumulator
	acc  uint32 // bit accumulator, MSB-aligned
	n    int    // number of valid bits in acc

	// marker holds a marker byte (the 0xXX of 0xFF 0xXX) encountered
	// while filling the accumulator. Once set, the reader refuses to
	// produce further bits until the caller consumes it.
	marker byte
}

func newBitReader(data []byte) *bitReader {
	return &bitReader{data: data}
}

// fill loads bytes into the accumulator until it holds at least want bits
// or input is exhausted / a marker is hit.
func (r *bitReader) fill(want int) error {
	for r.n < want {
		if r.marker != 0 {
			return errShortData
		}
		if r.pos >= len(r.data) {
			return errShortData
		}
		b := r.data[r.pos]
		r.pos++
		if b == 0xFF {
			if r.pos >= len(r.data) {
				return errShortData
			}
			next := r.data[r.pos]
			r.pos++
			switch {
			case next == 0x00:
				// byte stuffing: a literal 0xFF data byte
			case next == 0xFF:
				// fill bytes before a marker: retry this position
				r.pos--
				continue
			default:
				r.marker = next
				return errShortData
			}
		}
		r.acc |= uint32(b) << (24 - r.n)
		r.n += 8
	}
	return nil
}

// readBit returns the next bit.
func (r *bitReader) readBit() (int, error) {
	if r.n < 1 {
		if err := r.fill(1); err != nil {
			return 0, err
		}
	}
	bit := int(r.acc >> 31)
	r.acc <<= 1
	r.n--
	return bit, nil
}

// readBits returns the next n bits (0 ≤ n ≤ 16) as an unsigned value.
func (r *bitReader) readBits(n int) (int32, error) {
	if n == 0 {
		return 0, nil
	}
	if r.n < n {
		if err := r.fill(n); err != nil {
			return 0, err
		}
	}
	v := int32(r.acc >> (32 - n))
	r.acc <<= n
	r.n -= n
	return v, nil
}

// peekBits returns up to n bits without consuming them, left-padded with
// zeros when fewer are available (used by the fast Huffman lookup).
func (r *bitReader) peekBits(n int) (v int32, avail int) {
	if r.n < n {
		_ = r.fill(n) // best effort; a marker/EOF just limits avail
	}
	avail = r.n
	if avail > n {
		avail = n
	}
	return int32(r.acc >> (32 - n)), avail
}

// skipBits discards n bits that were previously peeked (n ≤ r.n).
func (r *bitReader) skipBits(n int) {
	if n > r.n {
		panic("jpeg: skipBits beyond accumulator")
	}
	r.acc <<= n
	r.n -= n
}

// align discards bits to the next byte boundary (before restart markers).
func (r *bitReader) align() {
	rem := r.n % 8
	r.acc <<= rem
	r.n -= rem
}

// takeMarker returns and clears a pending marker byte (0 if none).
func (r *bitReader) takeMarker() byte {
	m := r.marker
	r.marker = 0
	return m
}

// nextMarker scans forward to the next marker byte, for restart-marker
// resynchronisation. It returns the marker code.
func (r *bitReader) nextMarker() (byte, error) {
	r.acc, r.n = 0, 0
	if m := r.takeMarker(); m != 0 {
		return m, nil
	}
	for r.pos+1 < len(r.data) {
		if r.data[r.pos] == 0xFF && r.data[r.pos+1] != 0x00 && r.data[r.pos+1] != 0xFF {
			m := r.data[r.pos+1]
			r.pos += 2
			return m, nil
		}
		r.pos++
	}
	return 0, errShortData
}

// extend implements the EXTEND procedure of T.81 §F.2.2.1: convert the
// magnitude-coded v of ssss bits into a signed coefficient.
func extend(v int32, ssss int) int32 {
	if ssss == 0 {
		return 0
	}
	if v < 1<<(ssss-1) {
		return v - (1 << ssss) + 1
	}
	return v
}

// bitWriter emits entropy-coded bytes MSB first with 0xFF stuffing.
type bitWriter struct {
	buf []byte
	acc uint32
	n   int
}

func (w *bitWriter) writeBits(v uint32, n int) {
	if n == 0 {
		return
	}
	v &= (1 << n) - 1
	w.acc |= v << (32 - w.n - n)
	w.n += n
	for w.n >= 8 {
		b := byte(w.acc >> 24)
		w.buf = append(w.buf, b)
		if b == 0xFF {
			w.buf = append(w.buf, 0x00)
		}
		w.acc <<= 8
		w.n -= 8
	}
}

// flush pads the final partial byte with 1-bits, as T.81 §F.1.2.3
// requires, and returns the accumulated stream.
func (w *bitWriter) flush() []byte {
	if w.n > 0 {
		pad := 8 - w.n
		w.writeBits((1<<pad)-1, pad)
	}
	return w.buf
}

// restartMarker pads to a byte boundary and appends RSTn directly —
// markers are not byte-stuffed.
func (w *bitWriter) restartMarker(m byte) {
	if w.n > 0 {
		pad := 8 - w.n
		w.writeBits((1<<pad)-1, pad)
	}
	w.buf = append(w.buf, 0xFF, m)
}

// sanity checks shared by decoder and encoder.
func checkComponents(n int) error {
	if n != 1 && n != 3 {
		return UnsupportedError(fmt.Sprintf("%d components (only grayscale and YCbCr supported)", n))
	}
	return nil
}
