package jpeg

import "dlbooster/internal/pix"

// Multi-scan (progressive, SOF2) decoding per ITU-T T.81 §G. Coefficient
// memory persists across scans; each scan delivers either a spectral
// band (Ss..Se) or one bit of precision (successive approximation,
// Ah/Al) for one band. This path exists for library completeness — the
// paper's FPGA decoder, like hardware JPEG decoders generally, runs
// baseline only, so the fpga mirror surfaces ErrProgressive and Decode
// falls back to this software path.

// progScanComp is one component's slice of a scan header.
type progScanComp struct {
	compIdx      int
	dcSel, acSel byte
}

// progScan is one parsed SOS for a progressive frame.
type progScan struct {
	comps          []progScanComp
	ss, se, ah, al int
}

// progDecoder accumulates coefficients across scans.
type progDecoder struct {
	h      *Header
	co     *Coefficients
	eobrun int
}

// decodeProgressive decodes an SOF2 stream end to end.
func decodeProgressive(data []byte) (*pix.Image, error) {
	if len(data) < 2 || data[0] != 0xFF || data[1] != mSOI {
		return nil, FormatError("missing SOI marker")
	}
	h := &Header{}
	d := &progDecoder{h: h}
	sawSOF := false
	sawScan := false
	pos := 2
	for {
		if pos >= len(data) {
			// Tolerate a missing EOI after at least one decoded scan,
			// like most decoders.
			if sawScan {
				break
			}
			return nil, FormatError("truncated progressive stream")
		}
		if data[pos] != 0xFF {
			return nil, FormatError("expected marker")
		}
		for pos < len(data) && data[pos] == 0xFF {
			pos++
		}
		if pos >= len(data) {
			return nil, FormatError("truncated marker")
		}
		marker := data[pos]
		pos++
		if marker == mEOI {
			break
		}
		if marker >= mRST0 && marker <= mRST7 {
			return nil, FormatError("restart marker outside scan")
		}
		if pos+2 > len(data) {
			return nil, FormatError("truncated segment length")
		}
		segLen := u16(data[pos:])
		if segLen < 2 || pos+segLen > len(data) {
			return nil, FormatError("bad segment length")
		}
		seg := data[pos+2 : pos+segLen]
		pos += segLen
		switch marker {
		case mSOF2:
			if sawSOF {
				return nil, FormatError("multiple SOF segments")
			}
			sawSOF = true
			h.Progressive = true
			if err := h.parseSOF(seg); err != nil {
				return nil, err
			}
			d.co = newCoefficients(h)
		case mSOF0, mSOF1:
			return nil, FormatError("baseline SOF in progressive decoder")
		case mDQT:
			if err := h.parseDQT(seg); err != nil {
				return nil, err
			}
		case mDHT:
			if err := h.parseDHT(seg); err != nil {
				return nil, err
			}
		case mDRI:
			if len(seg) < 2 {
				return nil, FormatError("short DRI")
			}
			h.RestartInterval = u16(seg)
		case mSOS:
			if !sawSOF {
				return nil, FormatError("SOS before SOF")
			}
			scan, err := d.parseProgSOS(seg)
			if err != nil {
				return nil, err
			}
			end := entropyEnd(data, pos)
			if err := d.decodeScan(scan, data[pos:end]); err != nil {
				return nil, err
			}
			sawScan = true
			pos = end
		case mAPP1:
			if o := parseEXIFOrientation(seg); o != 0 {
				h.Orientation = o
			}
		default:
			// APPn/COM skipped.
		}
	}
	if !sawSOF || !sawScan {
		return nil, FormatError("progressive stream without scans")
	}
	for _, c := range h.Components {
		if !h.quantOK[c.QuantID] {
			return nil, FormatError("missing quant table")
		}
	}
	planes, err := d.co.Reconstruct()
	if err != nil {
		return nil, err
	}
	return planes.ToImage(), nil
}

// entropyEnd finds the offset of the marker terminating an entropy-coded
// segment starting at pos (stuffed bytes and RSTn belong to the segment).
func entropyEnd(data []byte, pos int) int {
	for i := pos; i+1 < len(data); i++ {
		if data[i] != 0xFF {
			continue
		}
		m := data[i+1]
		if m == 0x00 || m == 0xFF || (m >= mRST0 && m <= mRST7) {
			continue
		}
		return i
	}
	return len(data)
}

// parseProgSOS validates a progressive scan header (T.81 §G.1.1.1).
func (d *progDecoder) parseProgSOS(seg []byte) (*progScan, error) {
	if len(seg) < 1 {
		return nil, FormatError("short SOS")
	}
	ns := int(seg[0])
	if ns < 1 || ns > len(d.h.Components) {
		return nil, FormatError("bad scan component count")
	}
	if len(seg) < 1+2*ns+3 {
		return nil, FormatError("short SOS parameters")
	}
	sc := &progScan{}
	for i := 0; i < ns; i++ {
		id := seg[1+2*i]
		sel := seg[2+2*i]
		idx := -1
		for j := range d.h.Components {
			if d.h.Components[j].ID == id {
				idx = j
				break
			}
		}
		if idx < 0 {
			return nil, FormatError("scan references unknown component")
		}
		sc.comps = append(sc.comps, progScanComp{compIdx: idx, dcSel: sel >> 4, acSel: sel & 0x0F})
		if sel>>4 > 3 || sel&0x0F > 3 {
			return nil, FormatError("huffman selector > 3")
		}
	}
	sc.ss = int(seg[1+2*ns])
	sc.se = int(seg[2+2*ns])
	sc.ah = int(seg[3+2*ns]) >> 4
	sc.al = int(seg[3+2*ns]) & 0x0F
	switch {
	case sc.ss > 63 || sc.se > 63 || sc.ss > sc.se:
		return nil, FormatError("bad spectral selection")
	case sc.ss == 0 && sc.se != 0:
		return nil, FormatError("DC scan with AC band")
	case sc.ss > 0 && len(sc.comps) != 1:
		return nil, FormatError("interleaved AC scan")
	case sc.ah > 13 || sc.al > 13:
		return nil, FormatError("bad successive approximation")
	case sc.ah != 0 && sc.ah != sc.al+1:
		return nil, FormatError("refinement must lower Al by one")
	}
	return sc, nil
}

// compBlocks returns the real (unpadded) block grid of component i for
// non-interleaved scans.
func (d *progDecoder) compBlocks(i int) (bw, bh int) {
	c := d.h.Components[i]
	compW := ceilDiv(d.h.Width*c.H, d.h.hMax)
	compH := ceilDiv(d.h.Height*c.V, d.h.vMax)
	return ceilDiv(compW, 8), ceilDiv(compH, 8)
}

// decodeScan runs one scan's entropy-coded data into the coefficient
// memory.
func (d *progDecoder) decodeScan(sc *progScan, raw []byte) error {
	r := newBitReader(raw)
	d.eobrun = 0
	dcPred := make([]int32, len(d.h.Components))
	nextRST := byte(mRST0)
	sinceRestart := 0

	restart := func() error {
		m, err := r.nextMarker()
		if err != nil {
			return errShortData
		}
		if m != nextRST {
			return FormatError("restart marker out of sequence")
		}
		nextRST = mRST0 + (nextRST-mRST0+1)%8
		for i := range dcPred {
			dcPred[i] = 0
		}
		d.eobrun = 0
		sinceRestart = 0
		return nil
	}

	// Resolve per-scan Huffman tables up front.
	dcTab := make([]*huffDecoder, len(sc.comps))
	acTab := make([]*huffDecoder, len(sc.comps))
	for i, c := range sc.comps {
		if sc.ss == 0 && sc.ah == 0 {
			if !d.h.dcOK[c.dcSel] {
				return FormatError("missing DC huffman table")
			}
			dcTab[i] = &d.h.dcHuff[c.dcSel]
		}
		if sc.ss > 0 {
			if !d.h.acOK[c.acSel] {
				return FormatError("missing AC huffman table")
			}
			acTab[i] = &d.h.acHuff[c.acSel]
		}
	}

	if sc.ss == 0 {
		// DC scan. Interleaved in MCU order when ns > 1, else over the
		// component's own grid.
		if len(sc.comps) > 1 || len(d.h.Components) == 1 {
			mcus := d.h.mcusX * d.h.mcusY
			for m := 0; m < mcus; m++ {
				if d.h.RestartInterval > 0 && sinceRestart == d.h.RestartInterval {
					if err := restart(); err != nil {
						return err
					}
				}
				my, mx := m/d.h.mcusX, m%d.h.mcusX
				for i, scomp := range sc.comps {
					c := &d.h.Components[scomp.compIdx]
					for v := 0; v < c.V; v++ {
						for hh := 0; hh < c.H; hh++ {
							bx := mx*c.H + hh
							by := my*c.V + v
							blk := d.blockAt(scomp.compIdx, bx, by)
							if err := d.decodeDC(r, sc, dcTab[i], blk, &dcPred[i]); err != nil {
								return err
							}
						}
					}
				}
				sinceRestart++
			}
			return nil
		}
		// Single-component DC scan, non-interleaved.
		scomp := sc.comps[0]
		bw, bh := d.compBlocks(scomp.compIdx)
		for by := 0; by < bh; by++ {
			for bx := 0; bx < bw; bx++ {
				if d.h.RestartInterval > 0 && sinceRestart == d.h.RestartInterval {
					if err := restart(); err != nil {
						return err
					}
				}
				blk := d.blockAt(scomp.compIdx, bx, by)
				if err := d.decodeDC(r, sc, dcTab[0], blk, &dcPred[0]); err != nil {
					return err
				}
				sinceRestart++
			}
		}
		return nil
	}

	// AC scan: single component, non-interleaved.
	scomp := sc.comps[0]
	bw, bh := d.compBlocks(scomp.compIdx)
	for by := 0; by < bh; by++ {
		for bx := 0; bx < bw; bx++ {
			if d.h.RestartInterval > 0 && sinceRestart == d.h.RestartInterval {
				if err := restart(); err != nil {
					return err
				}
			}
			blk := d.blockAt(scomp.compIdx, bx, by)
			var err error
			if sc.ah == 0 {
				err = d.decodeACFirst(r, sc, acTab[0], blk)
			} else {
				err = d.decodeACRefine(r, sc, acTab[0], blk)
			}
			if err != nil {
				return err
			}
			sinceRestart++
		}
	}
	return nil
}

func (d *progDecoder) blockAt(comp, bx, by int) *block {
	return &d.co.comp[comp][by*d.co.blocksX[comp]+bx]
}

// decodeDC handles both DC passes for one block.
func (d *progDecoder) decodeDC(r *bitReader, sc *progScan, tab *huffDecoder, blk *block, pred *int32) error {
	if sc.ah == 0 {
		t, err := tab.decode(r)
		if err != nil {
			return err
		}
		if t > 11 {
			return FormatError("DC category > 11")
		}
		bits, err := r.readBits(int(t))
		if err != nil {
			return err
		}
		*pred += extend(bits, int(t))
		blk[0] = *pred << sc.al
		return nil
	}
	// Refinement: one bit per block.
	bit, err := r.readBit()
	if err != nil {
		return err
	}
	if bit != 0 {
		blk[0] |= 1 << sc.al
	}
	return nil
}

// decodeACFirst is the first pass of an AC band (T.81 §G.1.2.2).
func (d *progDecoder) decodeACFirst(r *bitReader, sc *progScan, tab *huffDecoder, blk *block) error {
	if d.eobrun > 0 {
		d.eobrun--
		return nil
	}
	for k := sc.ss; k <= sc.se; {
		rs, err := tab.decode(r)
		if err != nil {
			return err
		}
		run, size := int(rs>>4), int(rs&0x0F)
		if size == 0 {
			if run < 15 {
				// EOBn: 2^run blocks (including this one) end here.
				d.eobrun = 1 << run
				if run > 0 {
					extra, err := r.readBits(run)
					if err != nil {
						return err
					}
					d.eobrun += int(extra)
				}
				d.eobrun--
				return nil
			}
			k += 16 // ZRL
			continue
		}
		k += run
		if k > sc.se {
			return FormatError("AC run beyond band")
		}
		bits, err := r.readBits(size)
		if err != nil {
			return err
		}
		blk[zigzag[k]] = extend(bits, size) << sc.al
		k++
	}
	return nil
}

// decodeACRefine is the refinement pass of an AC band (T.81 §G.1.2.3).
func (d *progDecoder) decodeACRefine(r *bitReader, sc *progScan, tab *huffDecoder, blk *block) error {
	p1 := int32(1) << sc.al  // new positive coefficient magnitude
	m1 := int32(-1) << sc.al // new negative coefficient magnitude

	// refineNonzero applies one correction bit to an existing coefficient.
	refineNonzero := func(ze int) error {
		bit, err := r.readBit()
		if err != nil {
			return err
		}
		if bit != 0 && blk[ze]&p1 == 0 {
			if blk[ze] >= 0 {
				blk[ze] += p1
			} else {
				blk[ze] += m1
			}
		}
		return nil
	}

	k := sc.ss
	if d.eobrun == 0 {
		for k <= sc.se {
			rs, err := tab.decode(r)
			if err != nil {
				return err
			}
			run, size := int(rs>>4), int(rs&0x0F)
			var newVal int32
			if size == 0 {
				if run < 15 {
					d.eobrun = 1 << run
					if run > 0 {
						extra, err := r.readBits(run)
						if err != nil {
							return err
						}
						d.eobrun += int(extra)
					}
					break // the EOB path below finishes this block
				}
				// ZRL: skip 16 zero-history coefficients (corrections
				// still consumed for nonzero ones along the way).
			} else {
				if size != 1 {
					return FormatError("AC refinement with size != 1")
				}
				bit, err := r.readBit()
				if err != nil {
					return err
				}
				if bit != 0 {
					newVal = p1
				} else {
					newVal = m1
				}
			}
			// Advance over `run` zero-history coefficients, refining
			// nonzero ones as they are passed.
			for k <= sc.se {
				ze := zigzag[k]
				if blk[ze] != 0 {
					if err := refineNonzero(ze); err != nil {
						return err
					}
				} else {
					if run == 0 {
						break
					}
					run--
				}
				k++
			}
			if size != 0 {
				if k > sc.se {
					return FormatError("AC refinement run beyond band")
				}
				blk[zigzag[k]] = newVal
			}
			k++
		}
	}
	if d.eobrun > 0 {
		// End-of-band: only corrections for already-nonzero coefficients
		// remain in this block.
		for ; k <= sc.se; k++ {
			ze := zigzag[k]
			if blk[ze] != 0 {
				if err := refineNonzero(ze); err != nil {
					return err
				}
			}
		}
		d.eobrun--
	}
	return nil
}
