package jpeg

import (
	"math"
	"testing"

	"dlbooster/internal/imageproc"
	"dlbooster/internal/pix"
)

// fullDecodeResize is the legacy reference path: full decode, then
// bilinear resize into a fresh target image.
func fullDecodeResize(t *testing.T, data []byte, dw, dh, c int) *pix.Image {
	t.Helper()
	img, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	dst := pix.New(dw, dh, c)
	if err := imageproc.ResizeInto(img, dst, imageproc.Bilinear); err != nil {
		t.Fatal(err)
	}
	return dst
}

func TestScaleFor(t *testing.T) {
	cases := []struct {
		w, h, dw, dh, want int
	}{
		{500, 375, 96, 96, 4},   // dlbench ILSVRC-like geometry
		{500, 375, 94, 94, 2},   // 2/8 of 375 covers 94 exactly
		{512, 512, 64, 64, 1},   // exact 1/8
		{512, 512, 65, 64, 2},   // one pixel over the 1/8 grid
		{448, 448, 224, 224, 4}, // the paper's training target
		{100, 80, 64, 64, 8},    // target taller than 4/8 of source
		{28, 28, 28, 28, 8},     // same-size: full decode
		{16, 16, 200, 200, 8},   // upscale: full decode
		{500, 375, 0, 0, 8},     // no target known
	}
	for _, c := range cases {
		if got := ScaleFor(c.w, c.h, c.dw, c.dh); got != c.want {
			t.Errorf("ScaleFor(%d,%d → %d,%d) = %d, want %d", c.w, c.h, c.dw, c.dh, got, c.want)
		}
		// The chosen scale must actually cover the target.
		if c.dw > 0 {
			sw, sh := ScaledSize(c.w, c.h, c.want)
			if c.want < 8 && (sw < c.dw || sh < c.dh) {
				t.Errorf("scale %d output %dx%d does not cover %dx%d", c.want, sw, sh, c.dw, c.dh)
			}
		}
	}
}

// TestScaledDCOnlyExact: a flat (DC-only) image must reconstruct
// bit-identically at every scale — the scaled basis keeps the 8-point DC
// normalisation.
func TestScaledDCOnlyExact(t *testing.T) {
	img := pix.New(64, 64, 3)
	for i := range img.Pix {
		img.Pix[i] = 180
	}
	data, err := Encode(img, EncodeOptions{Quality: 90})
	if err != nil {
		t.Fatal(err)
	}
	for _, target := range []int{8, 16, 32, 64} {
		want := fullDecodeResize(t, data, target, target, 3)
		got := pix.New(target, target, 3)
		if _, err := DecodeScaledInto(data, got, nil); err != nil {
			t.Fatal(err)
		}
		if d, _ := got.MaxAbsDiff(want); d != 0 {
			t.Errorf("target %d: DC-only image differs by %d", target, d)
		}
	}
}

// TestScaledParityPSNR: the scaled path must stay within a tight PSNR of
// the full-decode-then-resize reference across chroma layouts. The two
// paths drop different information (frequency truncation vs bilinear
// averaging), so they are not bit-equal — but on natural-image content
// they must agree closely.
func TestScaledParityPSNR(t *testing.T) {
	cases := []struct {
		name string
		c    int
		opt  EncodeOptions
	}{
		{"444", 3, EncodeOptions{Quality: 90}},
		{"422", 3, EncodeOptions{Quality: 90, Subsample422: true}},
		{"420", 3, EncodeOptions{Quality: 90, Subsample420: true}},
		{"gray", 1, EncodeOptions{Quality: 90}},
	}
	sizes := []struct {
		w, h, dw, dh int
	}{
		{448, 448, 224, 224}, // s=4, the paper's training shape
		{500, 375, 96, 96},   // s=4, the dlbench shape
		{512, 512, 100, 100}, // s=2
		{512, 512, 60, 60},   // s=1 (DC-only)
		{300, 200, 150, 100}, // s=4 with non-square aspect
	}
	for _, cse := range cases {
		t.Run(cse.name, func(t *testing.T) {
			for _, g := range sizes {
				img := smoothImage(g.w, g.h, cse.c, int64(g.w*7919+g.h))
				data, err := Encode(img, cse.opt)
				if err != nil {
					t.Fatal(err)
				}
				want := fullDecodeResize(t, data, g.dw, g.dh, cse.c)
				got := pix.New(g.dw, g.dh, cse.c)
				scale, err := DecodeScaledInto(data, got, nil)
				if err != nil {
					t.Fatal(err)
				}
				if scale >= 8 {
					t.Fatalf("%dx%d→%dx%d: expected a scaled decode, got scale %d", g.w, g.h, g.dw, g.dh, scale)
				}
				p, err := got.PSNR(want)
				if err != nil {
					t.Fatal(err)
				}
				// s=1 keeps only block means; anything finer must be
				// much closer to the reference.
				min := 36.0
				if scale == 1 {
					min = 30.0
				}
				if p < min {
					t.Errorf("%dx%d→%dx%d scale %d: PSNR %.1f dB vs full path, want >= %.0f", g.w, g.h, g.dw, g.dh, scale, p, min)
				}
			}
		})
	}
}

// TestScaledFallbackExactParity: whenever the fast path does not engage
// (same-size targets, upscales, progressive streams), DecodeScaledInto
// must be byte-identical to the legacy Decode + ResizeInto path.
func TestScaledFallbackExactParity(t *testing.T) {
	t.Run("same-size", func(t *testing.T) {
		img := smoothImage(100, 80, 3, 42)
		data, err := Encode(img, EncodeOptions{Quality: 88, Subsample420: true})
		if err != nil {
			t.Fatal(err)
		}
		want := fullDecodeResize(t, data, 100, 80, 3)
		got := pix.New(100, 80, 3)
		scale, err := DecodeScaledInto(data, got, nil)
		if err != nil {
			t.Fatal(err)
		}
		if scale != 8 {
			t.Fatalf("scale = %d, want 8", scale)
		}
		if d, _ := got.MaxAbsDiff(want); d != 0 {
			t.Errorf("same-size fallback differs by %d", d)
		}
	})
	t.Run("downscale-above-half", func(t *testing.T) {
		// 100×80 → 64×64 needs more than 4/8 of the source rows, so the
		// residual bilinear runs from the full-resolution image.
		img := smoothImage(100, 80, 3, 43)
		data, err := Encode(img, EncodeOptions{Quality: 88})
		if err != nil {
			t.Fatal(err)
		}
		want := fullDecodeResize(t, data, 64, 64, 3)
		got := pix.New(64, 64, 3)
		scale, err := DecodeScaledInto(data, got, nil)
		if err != nil {
			t.Fatal(err)
		}
		if scale != 8 {
			t.Fatalf("scale = %d, want 8", scale)
		}
		if d, _ := got.MaxAbsDiff(want); d != 0 {
			t.Errorf("full-scale fallback differs by %d", d)
		}
	})
	t.Run("progressive", func(t *testing.T) {
		img := smoothImage(128, 96, 3, 44)
		data, err := EncodeProgressive(img, EncodeOptions{Quality: 88, Subsample420: true})
		if err != nil {
			t.Fatal(err)
		}
		want := fullDecodeResize(t, data, 32, 32, 3)
		got := pix.New(32, 32, 3)
		scale, err := DecodeScaledInto(data, got, nil)
		if err != nil {
			t.Fatal(err)
		}
		if scale != 8 {
			t.Fatalf("scale = %d, want 8", scale)
		}
		if d, _ := got.MaxAbsDiff(want); d != 0 {
			t.Errorf("progressive fallback differs by %d", d)
		}
	})
	t.Run("channel-mismatch", func(t *testing.T) {
		img := smoothImage(64, 64, 1, 45)
		data, err := Encode(img, EncodeOptions{Quality: 88})
		if err != nil {
			t.Fatal(err)
		}
		dst := pix.New(16, 16, 3)
		if _, err := DecodeScaledInto(data, dst, nil); err != ErrChannelMismatch {
			t.Fatalf("err = %v, want ErrChannelMismatch", err)
		}
	})
}

// TestReconstructScaledMatchesDecodeScaledInto pins the staged form the
// FPGA mirror uses (EntropyDecode → ReconstructScaled → resize) to the
// fused single-call form, byte for byte.
func TestReconstructScaledMatchesDecodeScaledInto(t *testing.T) {
	img := smoothImage(500, 375, 3, 46)
	data, err := Encode(img, DefaultEncodeOptions())
	if err != nil {
		t.Fatal(err)
	}
	h, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	co, err := h.EntropyDecode()
	if err != nil {
		t.Fatal(err)
	}
	scaled, scale, err := co.ReconstructScaled(96, 96)
	if err != nil {
		t.Fatal(err)
	}
	if scale != 4 {
		t.Fatalf("scale = %d, want 4", scale)
	}
	staged := pix.New(96, 96, 3)
	if err := imageproc.ResizeInto(scaled, staged, imageproc.Bilinear); err != nil {
		t.Fatal(err)
	}
	fused := pix.New(96, 96, 3)
	if _, err := DecodeScaledInto(data, fused, nil); err != nil {
		t.Fatal(err)
	}
	if d, _ := fused.MaxAbsDiff(staged); d != 0 {
		t.Errorf("staged and fused paths differ by %d", d)
	}
}

// TestReconstructScaledFullScaleMatchesToImage pins the s=8 branch of
// ReconstructScaled to the legacy Reconstruct + ToImage output.
func TestReconstructScaledFullScaleMatchesToImage(t *testing.T) {
	img := smoothImage(100, 80, 3, 47)
	data, err := Encode(img, EncodeOptions{Quality: 88, Subsample420: true})
	if err != nil {
		t.Fatal(err)
	}
	h, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	co, err := h.EntropyDecode()
	if err != nil {
		t.Fatal(err)
	}
	scaled, scale, err := co.ReconstructScaled(100, 80)
	if err != nil {
		t.Fatal(err)
	}
	if scale != 8 {
		t.Fatalf("scale = %d, want 8", scale)
	}
	p, err := co.Reconstruct()
	if err != nil {
		t.Fatal(err)
	}
	want := p.ToImage()
	if d, _ := scaled.MaxAbsDiff(want); d != 0 {
		t.Errorf("full-scale ReconstructScaled differs from ToImage by %d", d)
	}
}

// TestScratchReuseAcrossGeometries: one Scratch must serve decodes of
// different geometries, layouts and scales back to back.
func TestScratchReuseAcrossGeometries(t *testing.T) {
	var sc Scratch
	cases := []struct {
		w, h, c, dw, dh int
		opt             EncodeOptions
	}{
		{500, 375, 3, 96, 96, DefaultEncodeOptions()},
		{64, 64, 1, 16, 16, EncodeOptions{Quality: 90}},
		{100, 80, 3, 100, 80, EncodeOptions{Quality: 90, Subsample422: true}},
		{512, 512, 3, 60, 60, EncodeOptions{Quality: 90}},
		{500, 375, 3, 96, 96, DefaultEncodeOptions()},
	}
	for i, cse := range cases {
		img := smoothImage(cse.w, cse.h, cse.c, int64(100+i))
		data, err := Encode(img, cse.opt)
		if err != nil {
			t.Fatal(err)
		}
		want := fullDecodeResize(t, data, cse.dw, cse.dh, cse.c)
		got := pix.New(cse.dw, cse.dh, cse.c)
		if _, err := DecodeScaledInto(data, got, &sc); err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		p, err := got.PSNR(want)
		if err != nil {
			t.Fatal(err)
		}
		if p < 30 {
			t.Errorf("case %d: PSNR %.1f dB after scratch reuse", i, p)
		}
	}
}

// TestDecodeScaledIntoZeroAllocs pins the steady-state allocation count
// of the scaled fast path at exactly zero per image, and bounds the
// legacy path — the GC-pressure half of the decode-to-scale change. It
// is wired into the CI flaky-guard under -race.
func TestDecodeScaledIntoZeroAllocs(t *testing.T) {
	img := smoothImage(500, 375, 3, 48)
	data, err := Encode(img, DefaultEncodeOptions())
	if err != nil {
		t.Fatal(err)
	}
	var sc Scratch
	dst := pix.New(96, 96, 3)
	// Warm the scratch buffers once.
	if _, err := DecodeScaledInto(data, dst, &sc); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := DecodeScaledInto(data, dst, &sc); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("scaled path: %.1f allocs per decode, want 0", allocs)
	}
	// The legacy path allocates per image (header, tables, grids, planes,
	// full-res image); pin a generous bound so a regression that starts
	// allocating per pixel or per block is still caught.
	legacy := testing.AllocsPerRun(5, func() {
		full, err := Decode(data)
		if err != nil {
			t.Fatal(err)
		}
		if err := imageproc.ResizeInto(full, dst, imageproc.Bilinear); err != nil {
			t.Fatal(err)
		}
	})
	if legacy > 64 {
		t.Errorf("legacy path: %.1f allocs per decode, want <= 64", legacy)
	}
}

// TestScaledBasisDCNormalisation pins the scaled basis maths: at every
// scale the DC basis product must be exactly 1/8, and each basis row
// must match the full 8-point basis sampled at tile centres.
func TestScaledBasisDCNormalisation(t *testing.T) {
	for si, s := range []int{1, 2, 4} {
		dc := scaledBasis[si][0][0] * scaledBasis[si][0][0]
		if math.Abs(dc-1.0/8.0) > 1e-12 {
			t.Errorf("scale %d: DC product %.15f, want 0.125", s, dc)
		}
		for u := 0; u < s; u++ {
			for x := 0; x < s; x++ {
				// Full basis at the tile-centre coordinate: 2X+1 = (2x+1)·8/s.
				alpha := 1.0
				if u == 0 {
					alpha = 1 / math.Sqrt2
				}
				want := alpha / 2 * math.Cos(float64(2*x+1)*8/float64(s)*float64(u)*math.Pi/16)
				if math.Abs(scaledBasis[si][u][x]-want) > 1e-12 {
					t.Errorf("scale %d basis[%d][%d] = %v, want %v", s, u, x, scaledBasis[si][u][x], want)
				}
			}
		}
	}
}
