package jpeg

import "math"

// 8×8 forward and inverse DCT (T.81 §A.3.3), implemented as two passes of
// a precomputed 1-D basis. Clarity over micro-optimisation: the cost model
// in internal/perf, not the host's DCT speed, sets simulated device
// timing, while the CPU-based baseline burns cores on this same code just
// as the paper's baseline burned them on libjpeg.

// cosBasis[u][x] = alpha(u)/2 * cos((2x+1)uπ/16), so that an 8-point
// transform is a plain matrix product.
var cosBasis = func() (c [8][8]float64) {
	for u := 0; u < 8; u++ {
		alpha := 1.0
		if u == 0 {
			alpha = 1 / math.Sqrt2
		}
		for x := 0; x < 8; x++ {
			c[u][x] = alpha / 2 * math.Cos(float64(2*x+1)*float64(u)*math.Pi/16)
		}
	}
	return c
}()

// block holds one 8×8 coefficient or sample block in natural (row-major)
// order.
type block [64]int32

// idct transforms dequantised coefficients into level-shifted 8-bit
// samples, clamping to [0, 255].
func idct(coef *block, out *[64]byte) {
	var tmp [64]float64
	// Columns: tmp[x][v] = Σ_u basis[u][x] · coef[u][v]
	for v := 0; v < 8; v++ {
		for x := 0; x < 8; x++ {
			var s float64
			for u := 0; u < 8; u++ {
				s += cosBasis[u][x] * float64(coef[u*8+v])
			}
			tmp[x*8+v] = s
		}
	}
	// Rows: sample[x][y] = Σ_v basis[v][y] · tmp[x][v]
	for x := 0; x < 8; x++ {
		row := tmp[x*8 : x*8+8 : x*8+8]
		for y := 0; y < 8; y++ {
			var s float64
			for v := 0; v < 8; v++ {
				s += cosBasis[v][y] * row[v]
			}
			out[x*8+y] = clamp8(int32(math.Round(s)) + 128)
		}
	}
}

// fdct transforms level-shifted samples into DCT coefficients.
func fdct(samples *[64]byte, out *block) {
	var shifted [64]float64
	for i, s := range samples {
		shifted[i] = float64(s) - 128
	}
	var tmp [64]float64
	// Columns: tmp[u][y] = Σ_x basis[u][x] · shifted[x][y]
	for y := 0; y < 8; y++ {
		for u := 0; u < 8; u++ {
			var s float64
			for x := 0; x < 8; x++ {
				s += cosBasis[u][x] * shifted[x*8+y]
			}
			tmp[u*8+y] = s
		}
	}
	// Rows: coef[u][v] = Σ_y basis[v][y] · tmp[u][y]
	for u := 0; u < 8; u++ {
		row := tmp[u*8 : u*8+8 : u*8+8]
		for v := 0; v < 8; v++ {
			var s float64
			for y := 0; y < 8; y++ {
				s += cosBasis[v][y] * row[y]
			}
			out[u*8+v] = int32(math.Round(s))
		}
	}
}

// quantize divides coefficients by the table with round-to-nearest,
// producing the levels the entropy coder transmits.
func quantize(coef *block, q *QuantTable, out *block) {
	for i := range coef {
		c := coef[i]
		d := int32(q[i])
		if c >= 0 {
			out[i] = (c + d/2) / d
		} else {
			out[i] = -((-c + d/2) / d)
		}
	}
}

// dequantize multiplies levels back into coefficient magnitudes.
func dequantize(levels *block, q *QuantTable, out *block) {
	for i := range levels {
		out[i] = levels[i] * int32(q[i])
	}
}

func clamp8(v int32) byte {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return byte(v)
}
