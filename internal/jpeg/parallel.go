package jpeg

// Restart-marker-parallel entropy decode. A baseline scan with a DRI
// restart interval is a concatenation of independent entropy-coded
// segments: each segment starts byte-aligned, resets the DC predictors,
// and covers a fixed run of MCUs, so segments can be Huffman-decoded
// concurrently into disjoint regions of the shared coefficient grids.
// That lets one large image fan out across cores instead of serialising
// a whole worker's Huffman stage.
//
// Finding the split points needs no decoding: inside entropy data a
// literal 0xFF byte is always followed by a stuffed 0x00, so a raw
// FF D0..D7 pair is necessarily a genuine RSTn marker. The scanner
// below walks the captured scan bytes once, validates that the marker
// count and RST0..RST7 cycle match what the restart interval implies,
// and bails out to the sequential decoder on any disagreement — so the
// parallel path only ever runs on streams where it is provably
// byte-identical to sequential decode. If a worker then hits a corrupt
// segment, entropyDecodeInto re-runs the sequential decoder so the
// error surfaced (restart-interval-attributed, see expectRestart) is
// exactly the sequential one; the only cost of that policy is wasted
// work on corrupt DRI streams, which are not a fast path worth keeping.

import (
	"runtime"
	"sync"
	"sync/atomic"

	"dlbooster/internal/cpukernel"
)

// minParallelMCUs is the smallest scan worth fanning out: below this the
// goroutine handoff costs more than the Huffman work it hides.
const minParallelMCUs = 128

// entropyWorkers is the fan-out width for one scan's segments. The
// default is modest — the pool around the decoder (backends.CPU, the
// fleet shards) already runs images in parallel, so intra-image workers
// multiply with inter-image ones.
var entropyWorkers atomic.Int32

func init() {
	w := runtime.GOMAXPROCS(0)
	if w > 4 {
		w = 4
	}
	entropyWorkers.Store(int32(w))
}

// SetEntropyParallelism sets how many goroutines one scan's restart
// segments may fan out across. n < 1 is clamped to 1, which disables
// the parallel path entirely.
func SetEntropyParallelism(n int) {
	if n < 1 {
		n = 1
	}
	entropyWorkers.Store(int32(n))
}

// EntropyParallelism reports the current fan-out width.
func EntropyParallelism() int { return int(entropyWorkers.Load()) }

// scanSegment is one restart interval's slice of the entropy-coded data
// and the MCU range it decodes to.
type scanSegment struct {
	start, end int // byte offsets into Header.scan, marker excluded
	mcu0, mcu1 int // MCU range [mcu0, mcu1)
}

// restartSegments splits the captured scan into its restart segments if
// the scan is parallel-decodable: restart intervals present, enough MCUs
// to pay for the fan-out, more than one worker configured, the kill
// switch released, and a marker layout that exactly matches the header's
// restart interval. Any mismatch returns false and the sequential
// decoder handles the stream (including surfacing its errors).
func (h *Header) restartSegments() ([]scanSegment, bool) {
	ri := h.RestartInterval
	mcus := h.mcusX * h.mcusY
	if ri <= 0 || mcus < minParallelMCUs || mcus <= ri ||
		entropyWorkers.Load() <= 1 || cpukernel.ScalarOnly() {
		return nil, false
	}
	nSeg := ceilDiv(mcus, ri)
	segs := h.segs[:0]
	data := h.scan
	end := len(data)
	segStart := 0
	found := 0
	i := 0
scan:
	for i < len(data)-1 {
		if data[i] != 0xFF {
			i++
			continue
		}
		switch b := data[i+1]; {
		case b == 0x00: // byte-stuffed literal 0xFF
			i += 2
		case b == 0xFF: // fill byte
			i++
		case b >= mRST0 && b <= mRST7:
			if found >= nSeg-1 || b != mRST0+byte(found%8) {
				// More markers than the restart interval implies, or an
				// out-of-sequence one: not a stream we can prove safe.
				return nil, false
			}
			segs = append(segs, scanSegment{start: segStart, end: i, mcu0: found * ri, mcu1: (found + 1) * ri})
			found++
			i += 2
			segStart = i
		default:
			// Any other marker terminates the entropy-coded data.
			end = i
			break scan
		}
	}
	if found != nSeg-1 {
		return nil, false
	}
	segs = append(segs, scanSegment{start: segStart, end: end, mcu0: found * ri, mcu1: mcus})
	h.segs = segs // keep the grown capacity across reuses
	return segs, true
}

// entropyDecodeSegments fans the segments out across the configured
// workers, each decoding a contiguous run of segments into the shared
// coefficient grids. Segments own disjoint MCU ranges — and therefore
// disjoint blocks — so workers never touch the same memory. The first
// error (earliest segment wins: chunks are contiguous and ordered) is
// returned; the caller re-runs the sequential decoder for exact error
// parity rather than trusting it.
func (h *Header) entropyDecodeSegments(co *Coefficients, segs []scanSegment) error {
	co.init(h)
	workers := int(entropyWorkers.Load())
	if workers > len(segs) {
		workers = len(segs)
	}
	chunk := ceilDiv(len(segs), workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(segs) {
			hi = len(segs)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w int, part []scanSegment) {
			defer wg.Done()
			for _, sg := range part {
				if err := h.decodeSegment(co, sg); err != nil {
					errs[w] = err
					return
				}
			}
		}(w, segs[lo:hi])
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// decodeSegment Huffman-decodes one restart segment: a fresh bit reader
// over the segment's bytes, fresh DC predictors (the restart contract),
// and the same MCU walk the sequential decoder performs.
func (h *Header) decodeSegment(co *Coefficients, seg scanSegment) error {
	rd := bitReader{data: h.scan[seg.start:seg.end]}
	r := &rd
	var dcPredArr [3]int32 // checkComponents caps components at 3
	dcPred := dcPredArr[:len(h.Components)]
	for m := seg.mcu0; m < seg.mcu1; m++ {
		my, mx := m/h.mcusX, m%h.mcusX
		for i := range h.Components {
			c := &h.Components[i]
			for v := 0; v < c.V; v++ {
				for hh := 0; hh < c.H; hh++ {
					bx := mx*c.H + hh
					by := my*c.V + v
					blk := &co.comp[i][by*co.blocksX[i]+bx]
					if err := h.decodeBlock(r, i, blk, &dcPred[i]); err != nil {
						return err
					}
				}
			}
		}
	}
	return nil
}
