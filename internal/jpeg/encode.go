package jpeg

import (
	"fmt"

	"dlbooster/internal/pix"
)

// EncodeOptions controls the encoder. The zero value is not valid;
// DefaultEncodeOptions supplies the common case.
type EncodeOptions struct {
	// Quality scales the Annex K quantisation tables, 1–100 (50 = the
	// unscaled standard tables).
	Quality int
	// Subsample420 encodes colour images with 2×2-subsampled chroma
	// (4:2:0), the layout of virtually all photographic JPEGs including
	// the paper's 500×375 inference workload.
	Subsample420 bool
	// Subsample422 encodes with horizontally subsampled chroma (4:2:2).
	// At most one of Subsample420/Subsample422 may be set; neither means
	// 4:4:4.
	Subsample422 bool
	// RestartInterval, when positive, inserts RSTn markers every that
	// many MCUs. Restart markers are what let a hardware decoder split
	// one image across parallel Huffman channels.
	RestartInterval int
	// Orientation, when 1–8, writes an EXIF APP1 segment with the
	// Orientation tag (the camera's "this image is rotated" note).
	Orientation int
}

// DefaultEncodeOptions matches common camera/tool output.
func DefaultEncodeOptions() EncodeOptions {
	return EncodeOptions{Quality: 88, Subsample420: true}
}

// Encode serialises img as a baseline JFIF stream.
func Encode(img *pix.Image, opt EncodeOptions) ([]byte, error) {
	if img == nil || len(img.Pix) != img.W*img.H*img.C {
		return nil, fmt.Errorf("jpeg: malformed image")
	}
	if err := checkComponents(img.C); err != nil {
		return nil, err
	}
	if img.W >= 1<<16 || img.H >= 1<<16 {
		return nil, fmt.Errorf("jpeg: image %dx%d exceeds 16-bit dimensions", img.W, img.H)
	}
	if opt.Quality < 1 || opt.Quality > 100 {
		return nil, fmt.Errorf("jpeg: quality %d outside 1..100", opt.Quality)
	}
	if opt.Subsample420 && opt.Subsample422 {
		return nil, fmt.Errorf("jpeg: choose at most one of 4:2:0 and 4:2:2")
	}
	e := &encoder{img: img, opt: opt}
	return e.encode()
}

type encoder struct {
	img *pix.Image
	opt EncodeOptions
	out []byte

	lumaQ   QuantTable
	chromaQ QuantTable

	dcLuma, acLuma, dcChroma, acChroma *huffEncoder
}

func (e *encoder) encode() ([]byte, error) {
	e.lumaQ = scaledQuant(&stdLumaQuant, e.opt.Quality)
	e.chromaQ = scaledQuant(&stdChromaQuant, e.opt.Quality)
	var err error
	if e.dcLuma, err = newHuffEncoder(&stdDCLumaSpec); err != nil {
		return nil, err
	}
	if e.acLuma, err = newHuffEncoder(&stdACLumaSpec); err != nil {
		return nil, err
	}
	if e.dcChroma, err = newHuffEncoder(&stdDCChromaSpec); err != nil {
		return nil, err
	}
	if e.acChroma, err = newHuffEncoder(&stdACChromaSpec); err != nil {
		return nil, err
	}

	e.marker(mSOI, nil)
	e.appJFIF()
	if e.opt.Orientation >= 1 && e.opt.Orientation <= 8 {
		e.marker(mAPP1, exifAPP1(e.opt.Orientation))
	}
	e.writeDQT()
	e.writeSOF()
	e.writeDHT()
	if e.opt.RestartInterval > 0 {
		e.marker(mDRI, []byte{byte(e.opt.RestartInterval >> 8), byte(e.opt.RestartInterval)})
	}
	if err := e.writeScan(); err != nil {
		return nil, err
	}
	e.marker(mEOI, nil)
	return e.out, nil
}

// marker appends marker m with an optional length-prefixed payload.
func (e *encoder) marker(m byte, payload []byte) {
	e.out = append(e.out, 0xFF, m)
	if payload != nil {
		n := len(payload) + 2
		e.out = append(e.out, byte(n>>8), byte(n))
		e.out = append(e.out, payload...)
	}
}

func (e *encoder) appJFIF() {
	e.marker(mAPP0, []byte{'J', 'F', 'I', 'F', 0, 1, 1, 0, 0, 1, 0, 1, 0, 0})
}

func (e *encoder) writeDQT() {
	seg := make([]byte, 0, 2*65)
	seg = append(seg, 0x00) // Pq=0, Tq=0
	for z := 0; z < 64; z++ {
		seg = append(seg, byte(e.lumaQ[zigzag[z]]))
	}
	if e.img.C == 3 {
		seg = append(seg, 0x01) // Pq=0, Tq=1
		for z := 0; z < 64; z++ {
			seg = append(seg, byte(e.chromaQ[zigzag[z]]))
		}
	}
	e.marker(mDQT, seg)
}

func (e *encoder) writeSOF() {
	n := e.img.C
	seg := []byte{8, byte(e.img.H >> 8), byte(e.img.H), byte(e.img.W >> 8), byte(e.img.W), byte(n)}
	if n == 1 {
		seg = append(seg, 1, 0x11, 0)
	} else {
		samp := byte(0x11)
		if e.opt.Subsample420 {
			samp = 0x22
		} else if e.opt.Subsample422 {
			samp = 0x21
		}
		seg = append(seg,
			1, samp, 0,
			2, 0x11, 1,
			3, 0x11, 1)
	}
	e.marker(mSOF0, seg)
}

func (e *encoder) writeDHT() {
	put := func(seg []byte, class, id byte, spec *HuffmanSpec) []byte {
		seg = append(seg, class<<4|id)
		seg = append(seg, spec.Counts[:]...)
		return append(seg, spec.Values...)
	}
	var seg []byte
	seg = put(seg, 0, 0, &stdDCLumaSpec)
	seg = put(seg, 1, 0, &stdACLumaSpec)
	if e.img.C == 3 {
		seg = put(seg, 0, 1, &stdDCChromaSpec)
		seg = put(seg, 1, 1, &stdACChromaSpec)
	}
	e.marker(mDHT, seg)
}

func (e *encoder) writeScan() error {
	n := e.img.C
	seg := []byte{byte(n)}
	seg = append(seg, 1, 0x00)
	if n == 3 {
		seg = append(seg, 2, 0x11, 3, 0x11)
	}
	seg = append(seg, 0, 63, 0)
	e.marker(mSOS, seg)
	var body []byte
	var err error
	switch {
	case n == 1:
		body, err = e.encodeGray()
	case e.opt.Subsample420:
		body, err = e.encode420()
	case e.opt.Subsample422:
		body, err = e.encode422()
	default:
		body, err = e.encode444()
	}
	if err != nil {
		return err
	}
	e.out = append(e.out, body...)
	return nil
}

// loadBlock copies an 8×8 window of plane samples starting at (px, py)
// into dst, replicating edge samples beyond the image boundary as T.81
// recommends.
func loadBlock(plane []byte, w, h, px, py int, dst *[64]byte) {
	for y := 0; y < 8; y++ {
		sy := py + y
		if sy >= h {
			sy = h - 1
		}
		row := plane[sy*w:]
		for x := 0; x < 8; x++ {
			sx := px + x
			if sx >= w {
				sx = w - 1
			}
			dst[y*8+x] = row[sx]
		}
	}
}

// encodeBlock transforms, quantises and entropy-codes one block.
func (e *encoder) encodeBlock(w *bitWriter, samples *[64]byte, q *QuantTable, dc, ac *huffEncoder, dcPred *int32) error {
	var coef, levels block
	fdct(samples, &coef)
	quantize(&coef, q, &levels)
	// DC difference.
	diff := levels[0] - *dcPred
	*dcPred = levels[0]
	ssss := bitLength(diff)
	if err := dc.emit(w, byte(ssss)); err != nil {
		return err
	}
	if ssss > 0 {
		v := diff
		if v < 0 {
			v += (1 << ssss) - 1
		}
		w.writeBits(uint32(v), ssss)
	}
	// AC run-lengths in zig-zag order.
	run := 0
	for z := 1; z < 64; z++ {
		v := levels[zigzag[z]]
		if v == 0 {
			run++
			continue
		}
		for run >= 16 {
			if err := ac.emit(w, 0xF0); err != nil {
				return err
			}
			run -= 16
		}
		size := bitLength(v)
		if err := ac.emit(w, byte(run<<4|size)); err != nil {
			return err
		}
		bits := v
		if bits < 0 {
			bits += (1 << size) - 1
		}
		w.writeBits(uint32(bits), size)
		run = 0
	}
	if run > 0 {
		if err := ac.emit(w, 0x00); err != nil { // EOB
			return err
		}
	}
	return nil
}

// restarter tracks restart-marker emission across MCUs.
type restarter struct {
	interval int
	since    int
	next     byte
}

// maybeRestart emits a restart marker if the interval has elapsed,
// returning true (so the caller resets DC predictors).
func (rs *restarter) maybeRestart(w *bitWriter, out *[]byte) bool {
	if rs.interval <= 0 || rs.since < rs.interval {
		return false
	}
	*out = append(*out, w.flush()...)
	*w = bitWriter{}
	*out = append(*out, 0xFF, mRST0+rs.next)
	rs.next = (rs.next + 1) % 8
	rs.since = 0
	return true
}

func (e *encoder) encodeGray() ([]byte, error) {
	w := &bitWriter{}
	var out []byte
	var dcPred int32
	rs := restarter{interval: e.opt.RestartInterval}
	var samples [64]byte
	for by := 0; by < ceilDiv(e.img.H, 8); by++ {
		for bx := 0; bx < ceilDiv(e.img.W, 8); bx++ {
			if rs.maybeRestart(w, &out) {
				dcPred = 0
			}
			loadBlock(e.img.Pix, e.img.W, e.img.H, bx*8, by*8, &samples)
			if err := e.encodeBlock(w, &samples, &e.lumaQ, e.dcLuma, e.acLuma, &dcPred); err != nil {
				return nil, err
			}
			rs.since++
		}
	}
	return append(out, w.flush()...), nil
}

// toYCbCrPlanes converts the RGB image into full-resolution Y, Cb, Cr
// planes.
func (e *encoder) toYCbCrPlanes() (yp, cb, cr []byte) {
	w, h := e.img.W, e.img.H
	yp = make([]byte, w*h)
	cb = make([]byte, w*h)
	cr = make([]byte, w*h)
	src := e.img.Pix
	for i := 0; i < w*h; i++ {
		y, b, r := rgbToYCbCr(src[3*i], src[3*i+1], src[3*i+2])
		yp[i], cb[i], cr[i] = y, b, r
	}
	return yp, cb, cr
}

func (e *encoder) encode444() ([]byte, error) {
	yp, cb, cr := e.toYCbCrPlanes()
	w := &bitWriter{}
	var out []byte
	var dcY, dcCb, dcCr int32
	rs := restarter{interval: e.opt.RestartInterval}
	var samples [64]byte
	for by := 0; by < ceilDiv(e.img.H, 8); by++ {
		for bx := 0; bx < ceilDiv(e.img.W, 8); bx++ {
			if rs.maybeRestart(w, &out) {
				dcY, dcCb, dcCr = 0, 0, 0
			}
			loadBlock(yp, e.img.W, e.img.H, bx*8, by*8, &samples)
			if err := e.encodeBlock(w, &samples, &e.lumaQ, e.dcLuma, e.acLuma, &dcY); err != nil {
				return nil, err
			}
			loadBlock(cb, e.img.W, e.img.H, bx*8, by*8, &samples)
			if err := e.encodeBlock(w, &samples, &e.chromaQ, e.dcChroma, e.acChroma, &dcCb); err != nil {
				return nil, err
			}
			loadBlock(cr, e.img.W, e.img.H, bx*8, by*8, &samples)
			if err := e.encodeBlock(w, &samples, &e.chromaQ, e.dcChroma, e.acChroma, &dcCr); err != nil {
				return nil, err
			}
			rs.since++
		}
	}
	return append(out, w.flush()...), nil
}

// subsample2x2 box-filters a full-resolution plane down by 2 in each axis.
func subsample2x2(src []byte, w, h int) (dst []byte, dw, dh int) {
	dw, dh = ceilDiv(w, 2), ceilDiv(h, 2)
	dst = make([]byte, dw*dh)
	for y := 0; y < dh; y++ {
		y0 := 2 * y
		y1 := y0 + 1
		if y1 >= h {
			y1 = h - 1
		}
		for x := 0; x < dw; x++ {
			x0 := 2 * x
			x1 := x0 + 1
			if x1 >= w {
				x1 = w - 1
			}
			s := int(src[y0*w+x0]) + int(src[y0*w+x1]) + int(src[y1*w+x0]) + int(src[y1*w+x1])
			dst[y*dw+x] = byte((s + 2) / 4)
		}
	}
	return dst, dw, dh
}

// subsample2x1 box-filters a plane down by 2 horizontally (4:2:2).
func subsample2x1(src []byte, w, h int) (dst []byte, dw, dh int) {
	dw, dh = ceilDiv(w, 2), h
	dst = make([]byte, dw*dh)
	for y := 0; y < h; y++ {
		for x := 0; x < dw; x++ {
			x0 := 2 * x
			x1 := x0 + 1
			if x1 >= w {
				x1 = w - 1
			}
			s := int(src[y*w+x0]) + int(src[y*w+x1])
			dst[y*dw+x] = byte((s + 1) / 2)
		}
	}
	return dst, dw, dh
}

func (e *encoder) encode422() ([]byte, error) {
	yp, cbFull, crFull := e.toYCbCrPlanes()
	cb, cw, ch := subsample2x1(cbFull, e.img.W, e.img.H)
	cr, _, _ := subsample2x1(crFull, e.img.W, e.img.H)
	w := &bitWriter{}
	var out []byte
	var dcY, dcCb, dcCr int32
	rs := restarter{interval: e.opt.RestartInterval}
	var samples [64]byte
	mcusX, mcusY := ceilDiv(e.img.W, 16), ceilDiv(e.img.H, 8)
	for my := 0; my < mcusY; my++ {
		for mx := 0; mx < mcusX; mx++ {
			if rs.maybeRestart(w, &out) {
				dcY, dcCb, dcCr = 0, 0, 0
			}
			// Two luma blocks per MCU (2×1), then one of each chroma.
			for hh := 0; hh < 2; hh++ {
				loadBlock(yp, e.img.W, e.img.H, mx*16+hh*8, my*8, &samples)
				if err := e.encodeBlock(w, &samples, &e.lumaQ, e.dcLuma, e.acLuma, &dcY); err != nil {
					return nil, err
				}
			}
			loadBlock(cb, cw, ch, mx*8, my*8, &samples)
			if err := e.encodeBlock(w, &samples, &e.chromaQ, e.dcChroma, e.acChroma, &dcCb); err != nil {
				return nil, err
			}
			loadBlock(cr, cw, ch, mx*8, my*8, &samples)
			if err := e.encodeBlock(w, &samples, &e.chromaQ, e.dcChroma, e.acChroma, &dcCr); err != nil {
				return nil, err
			}
			rs.since++
		}
	}
	return append(out, w.flush()...), nil
}

func (e *encoder) encode420() ([]byte, error) {
	yp, cbFull, crFull := e.toYCbCrPlanes()
	cb, cw, ch := subsample2x2(cbFull, e.img.W, e.img.H)
	cr, _, _ := subsample2x2(crFull, e.img.W, e.img.H)
	w := &bitWriter{}
	var out []byte
	var dcY, dcCb, dcCr int32
	rs := restarter{interval: e.opt.RestartInterval}
	var samples [64]byte
	mcusX, mcusY := ceilDiv(e.img.W, 16), ceilDiv(e.img.H, 16)
	for my := 0; my < mcusY; my++ {
		for mx := 0; mx < mcusX; mx++ {
			if rs.maybeRestart(w, &out) {
				dcY, dcCb, dcCr = 0, 0, 0
			}
			// Four luma blocks per MCU (2×2), then one of each chroma.
			for v := 0; v < 2; v++ {
				for hh := 0; hh < 2; hh++ {
					loadBlock(yp, e.img.W, e.img.H, mx*16+hh*8, my*16+v*8, &samples)
					if err := e.encodeBlock(w, &samples, &e.lumaQ, e.dcLuma, e.acLuma, &dcY); err != nil {
						return nil, err
					}
				}
			}
			loadBlock(cb, cw, ch, mx*8, my*8, &samples)
			if err := e.encodeBlock(w, &samples, &e.chromaQ, e.dcChroma, e.acChroma, &dcCb); err != nil {
				return nil, err
			}
			loadBlock(cr, cw, ch, mx*8, my*8, &samples)
			if err := e.encodeBlock(w, &samples, &e.chromaQ, e.dcChroma, e.acChroma, &dcCr); err != nil {
				return nil, err
			}
			rs.since++
		}
	}
	return append(out, w.flush()...), nil
}
