package jpeg

// JFIF YCbCr ↔ RGB conversion in 16.16 fixed point. This is the "RGB"
// half of the paper's iDCT & RGB pipeline unit.

// ycbcrToRGB converts one pixel.
func ycbcrToRGB(y, cb, cr byte) (r, g, b byte) {
	yy := int32(y) << 16
	cb1 := int32(cb) - 128
	cr1 := int32(cr) - 128
	r = clamp8((yy + 91881*cr1 + 1<<15) >> 16)
	g = clamp8((yy - 22554*cb1 - 46802*cr1 + 1<<15) >> 16)
	b = clamp8((yy + 116130*cb1 + 1<<15) >> 16)
	return r, g, b
}

// rgbToYCbCr converts one pixel.
func rgbToYCbCr(r, g, b byte) (y, cb, cr byte) {
	r1, g1, b1 := int32(r), int32(g), int32(b)
	y = clamp8((19595*r1 + 38470*g1 + 7471*b1 + 1<<15) >> 16)
	cb = clamp8(((-11056*r1 - 21712*g1 + 32768*b1 + 1<<15) >> 16) + 128)
	cr = clamp8(((32768*r1 - 27440*g1 - 5328*b1 + 1<<15) >> 16) + 128)
	return y, cb, cr
}

// --- row conversion kernels (see kernels.go for the selection layer) ---

// ycbcrRowScalar converts one output row through the reference per-pixel
// converter — the loop renderInto historically ran inline. shx holds the
// per-component x subsampling shifts.
func ycbcrRowScalar(out, yRow, cbRow, crRow []byte, w int, shx [3]uint) {
	o := 0
	for x := 0; x < w; x++ {
		r, g, b := ycbcrToRGB(yRow[x>>shx[0]], cbRow[x>>shx[1]], crRow[x>>shx[2]])
		out[o] = r
		out[o+1] = g
		out[o+2] = b
		o += 3
	}
}

// ycbcrRowFast dispatches to a fixed-point specialisation of the row
// shape. Integer addition is associative, so hoisting the per-chroma
// products out of the pixel loop yields bit-identical sums; the clamp is
// the branchless sign-mask form, equal to clamp8 on every reachable
// input (cross-checked exhaustively in kernels_test.go).
func ycbcrRowFast(out, yRow, cbRow, crRow []byte, w int, shx [3]uint) {
	switch shx {
	case [3]uint{0, 1, 1}:
		ycbcrRowPaired(out, yRow, cbRow, crRow, w)
	case [3]uint{0, 0, 0}:
		ycbcrRowDirect(out, yRow, cbRow, crRow, w)
	default:
		ycbcrRowScalar(out, yRow, cbRow, crRow, w, shx)
	}
}

// ycbcrRowPaired handles x-subsampled chroma (4:2:0 and 4:2:2 rows): the
// three chroma contributions are computed once per chroma sample and
// shared by the two luma pixels that reference it, halving the multiply
// count of the reference converter.
func ycbcrRowPaired(out, yRow, cbRow, crRow []byte, w int) {
	o := 0
	x := 0
	for ; x+2 <= w; x += 2 {
		cb1 := int32(cbRow[x>>1]) - 128
		cr1 := int32(crRow[x>>1]) - 128
		rc := 91881*cr1 + 1<<15
		gc := -22554*cb1 - 46802*cr1 + 1<<15
		bc := 116130*cb1 + 1<<15
		yy := int32(yRow[x]) << 16
		out[o] = clamp8Branchless((yy + rc) >> 16)
		out[o+1] = clamp8Branchless((yy + gc) >> 16)
		out[o+2] = clamp8Branchless((yy + bc) >> 16)
		yy = int32(yRow[x+1]) << 16
		out[o+3] = clamp8Branchless((yy + rc) >> 16)
		out[o+4] = clamp8Branchless((yy + gc) >> 16)
		out[o+5] = clamp8Branchless((yy + bc) >> 16)
		o += 6
	}
	if x < w { // odd final pixel
		cb1 := int32(cbRow[x>>1]) - 128
		cr1 := int32(crRow[x>>1]) - 128
		yy := int32(yRow[x]) << 16
		out[o] = clamp8Branchless((yy + 91881*cr1 + 1<<15) >> 16)
		out[o+1] = clamp8Branchless((yy - 22554*cb1 - 46802*cr1 + 1<<15) >> 16)
		out[o+2] = clamp8Branchless((yy + 116130*cb1 + 1<<15) >> 16)
	}
}

// ycbcrRowDirect handles unsubsampled rows (4:4:4, and the y-only
// subsampled rows of 4:4:0): no sharing to exploit, but the branchless
// clamp and slice re-bounding still pay.
func ycbcrRowDirect(out, yRow, cbRow, crRow []byte, w int) {
	yRow, cbRow, crRow = yRow[:w], cbRow[:w], crRow[:w]
	o := 0
	for x := 0; x < w; x++ {
		cb1 := int32(cbRow[x]) - 128
		cr1 := int32(crRow[x]) - 128
		yy := int32(yRow[x]) << 16
		out[o] = clamp8Branchless((yy + 91881*cr1 + 1<<15) >> 16)
		out[o+1] = clamp8Branchless((yy - 22554*cb1 - 46802*cr1 + 1<<15) >> 16)
		out[o+2] = clamp8Branchless((yy + 116130*cb1 + 1<<15) >> 16)
		o += 3
	}
}

// clamp8Branchless is clamp8 without branches: v>>31 is all-ones exactly
// when v is negative, so the first mask clears negatives; (255-v)>>31 is
// all-ones exactly when the (now non-negative) v exceeds 255, and OR-ing
// all-ones in makes byte(v) == 255. Equal to clamp8 for every int32
// (kernels_test.go cross-checks a wide range plus the extremes).
func clamp8Branchless(v int32) byte {
	v &^= v >> 31
	v |= (255 - v) >> 31
	return byte(v)
}
