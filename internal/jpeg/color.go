package jpeg

// JFIF YCbCr ↔ RGB conversion in 16.16 fixed point. This is the "RGB"
// half of the paper's iDCT & RGB pipeline unit.

// ycbcrToRGB converts one pixel.
func ycbcrToRGB(y, cb, cr byte) (r, g, b byte) {
	yy := int32(y) << 16
	cb1 := int32(cb) - 128
	cr1 := int32(cr) - 128
	r = clamp8((yy + 91881*cr1 + 1<<15) >> 16)
	g = clamp8((yy - 22554*cb1 - 46802*cr1 + 1<<15) >> 16)
	b = clamp8((yy + 116130*cb1 + 1<<15) >> 16)
	return r, g, b
}

// rgbToYCbCr converts one pixel.
func rgbToYCbCr(r, g, b byte) (y, cb, cr byte) {
	r1, g1, b1 := int32(r), int32(g), int32(b)
	y = clamp8((19595*r1 + 38470*g1 + 7471*b1 + 1<<15) >> 16)
	cb = clamp8(((-11056*r1 - 21712*g1 + 32768*b1 + 1<<15) >> 16) + 128)
	cr = clamp8(((32768*r1 - 27440*g1 - 5328*b1 + 1<<15) >> 16) + 128)
	return y, cb, cr
}
