package jpeg

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestBitReaderBasic(t *testing.T) {
	r := newBitReader([]byte{0b1011_0010, 0b0100_0001})
	for i, want := range []int{1, 0, 1, 1} {
		got, err := r.readBit()
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("bit %d = %d, want %d", i, got, want)
		}
	}
	v, err := r.readBits(6)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0b001001 {
		t.Fatalf("readBits(6) = %#b", v)
	}
	if v, _ := r.readBits(0); v != 0 {
		t.Fatalf("readBits(0) = %d", v)
	}
}

func TestBitReaderStuffing(t *testing.T) {
	// 0xFF 0x00 is a literal 0xFF data byte.
	r := newBitReader([]byte{0xFF, 0x00, 0x80})
	v, err := r.readBits(16)
	if err != nil {
		t.Fatal(err)
	}
	if uint16(v) != 0xFF80 {
		t.Fatalf("readBits(16) = %#x, want 0xFF80", v)
	}
}

func TestBitReaderStopsAtMarker(t *testing.T) {
	r := newBitReader([]byte{0xAB, 0xFF, mEOI, 0xCD})
	if v, err := r.readBits(8); err != nil || v != 0xAB {
		t.Fatalf("readBits = %#x, %v", v, err)
	}
	if _, err := r.readBits(8); !errors.Is(err, errShortData) {
		t.Fatalf("read past marker: %v", err)
	}
	if m := r.takeMarker(); m != mEOI {
		t.Fatalf("takeMarker = %#x", m)
	}
	if m := r.takeMarker(); m != 0 {
		t.Fatalf("second takeMarker = %#x, want 0", m)
	}
}

func TestBitReaderFillBytesBeforeMarker(t *testing.T) {
	// Multiple 0xFF fill bytes may precede a marker.
	r := newBitReader([]byte{0x12, 0xFF, 0xFF, 0xFF, mRST0})
	if v, err := r.readBits(8); err != nil || v != 0x12 {
		t.Fatalf("readBits = %#x, %v", v, err)
	}
	if _, err := r.readBit(); !errors.Is(err, errShortData) {
		t.Fatalf("expected marker stop, got %v", err)
	}
	if m := r.takeMarker(); m != mRST0 {
		t.Fatalf("marker = %#x, want RST0", m)
	}
}

func TestBitReaderAlign(t *testing.T) {
	r := newBitReader([]byte{0b1010_0000, 0xC3})
	if _, err := r.readBits(3); err != nil {
		t.Fatal(err)
	}
	r.align()
	v, err := r.readBits(8)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0xC3 {
		t.Fatalf("after align readBits(8) = %#x, want 0xC3", v)
	}
}

func TestBitReaderNextMarker(t *testing.T) {
	r := newBitReader([]byte{0x01, 0x02, 0xFF, 0x00, 0x03, 0xFF, mRST3, 0x04})
	m, err := r.nextMarker()
	if err != nil {
		t.Fatal(err)
	}
	if m != mRST3 {
		t.Fatalf("nextMarker = %#x, want RST3", m)
	}
	if v, err := r.readBits(8); err != nil || v != 0x04 {
		t.Fatalf("after nextMarker readBits = %#x, %v", v, err)
	}
}

const mRST3 = mRST0 + 3

func TestBitReaderEOF(t *testing.T) {
	r := newBitReader([]byte{0x80})
	if _, err := r.readBits(9); !errors.Is(err, errShortData) {
		t.Fatalf("readBits past EOF: %v", err)
	}
	// Trailing lone 0xFF is also short data.
	r = newBitReader([]byte{0xFF})
	if _, err := r.readBit(); !errors.Is(err, errShortData) {
		t.Fatalf("lone 0xFF: %v", err)
	}
}

func TestBitWriterStuffing(t *testing.T) {
	w := &bitWriter{}
	w.writeBits(0xFF, 8)
	w.writeBits(0x01, 8)
	out := w.flush()
	want := []byte{0xFF, 0x00, 0x01}
	if len(out) != len(want) {
		t.Fatalf("out = %x, want %x", out, want)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("out = %x, want %x", out, want)
		}
	}
}

func TestBitWriterFlushPadsWithOnes(t *testing.T) {
	w := &bitWriter{}
	w.writeBits(0b101, 3)
	out := w.flush()
	if len(out) != 1 || out[0] != 0b1011_1111 {
		t.Fatalf("out = %x, want b4 padded with ones", out)
	}
}

// TestBitRoundTripProperty: any bit sequence written through bitWriter is
// read back identically by bitReader (stuffing is transparent).
func TestBitRoundTripProperty(t *testing.T) {
	f := func(vals []uint16, widths []uint8) bool {
		n := len(vals)
		if len(widths) < n {
			n = len(widths)
		}
		type item struct {
			v uint32
			w int
		}
		var items []item
		w := &bitWriter{}
		for i := 0; i < n; i++ {
			width := int(widths[i]%16) + 1
			v := uint32(vals[i]) & ((1 << width) - 1)
			items = append(items, item{v, width})
			w.writeBits(v, width)
		}
		data := w.flush()
		r := newBitReader(data)
		for _, it := range items {
			got, err := r.readBits(it.w)
			if err != nil || uint32(got) != it.v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestExtend(t *testing.T) {
	cases := []struct {
		v    int32
		ssss int
		want int32
	}{
		{0, 0, 0},
		{0, 1, -1},
		{1, 1, 1},
		{0, 2, -3},
		{1, 2, -2},
		{2, 2, 2},
		{3, 2, 3},
		{0b0111, 4, -8},
		{0b1000, 4, 8},
	}
	for _, c := range cases {
		if got := extend(c.v, c.ssss); got != c.want {
			t.Errorf("extend(%d, %d) = %d, want %d", c.v, c.ssss, got, c.want)
		}
	}
}

func TestBitLength(t *testing.T) {
	cases := []struct {
		v    int32
		want int
	}{
		{0, 0}, {1, 1}, {-1, 1}, {2, 2}, {3, 2}, {-3, 2}, {4, 3}, {255, 8}, {-256, 9}, {1023, 10},
	}
	for _, c := range cases {
		if got := bitLength(c.v); got != c.want {
			t.Errorf("bitLength(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}
