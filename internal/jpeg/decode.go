package jpeg

import (
	"fmt"

	"dlbooster/internal/cpukernel"
	"dlbooster/internal/imageproc"
	"dlbooster/internal/pix"
)

// Marker codes (the 0xXX of 0xFF 0xXX).
const (
	mSOI  = 0xD8
	mEOI  = 0xD9
	mSOF0 = 0xC0 // baseline sequential
	mSOF1 = 0xC1 // extended sequential, Huffman
	mSOF2 = 0xC2 // progressive (multi-scan software decoder)
	mDHT  = 0xC4
	mDAC  = 0xCC // arithmetic conditioning (unsupported, rejected)
	mDQT  = 0xDB
	mDRI  = 0xDD
	mSOS  = 0xDA
	mCOM  = 0xFE
	mAPP0 = 0xE0
	mAPP1 = 0xE1
	mRST0 = 0xD0
	mRST7 = 0xD7
)

// Component describes one colour component from the frame header.
type Component struct {
	ID      byte
	H, V    int // sampling factors, 1..2 supported
	QuantID byte
	// Entropy-coding table selectors, filled in by the scan header.
	dcSel, acSel byte
}

// Header is the parsed stream state up to and including the scan header:
// everything DLBooster's FPGA parser extracts from a file before kicking
// off the Huffman unit.
type Header struct {
	Width, Height   int
	Components      []Component
	RestartInterval int

	// Progressive reports an SOF2 frame. The single-pass pipeline
	// (EntropyDecode and the FPGA mirror) handles only baseline;
	// Decode dispatches progressive streams to the multi-scan decoder.
	Progressive bool

	// Orientation is the EXIF orientation tag (1–8) when an APP1
	// segment carries one, else 0. The decoder does not rotate pixels;
	// use imageproc.ApplyOrientation.
	Orientation int

	// Tables are stored by value with presence flags so a reused Header
	// (see Scratch) rebuilds them in place without allocating.
	quant   [4]QuantTable
	quantOK [4]bool
	dcHuff  [4]huffDecoder
	acHuff  [4]huffDecoder
	dcOK    [4]bool
	acOK    [4]bool

	hMax, vMax   int
	mcusX, mcusY int
	scan         []byte        // entropy-coded data following the SOS header
	segs         []scanSegment // restart-segment scratch (parallel.go), reused across parses
}

// reset clears the header for reuse while keeping the Components and
// restart-segment allocations, so repeated parses into the same Header
// reach steady-state zero allocations.
func (h *Header) reset() {
	comps := h.Components[:0]
	segs := h.segs[:0]
	*h = Header{}
	h.Components = comps
	h.segs = segs
}

// Coefficients holds the entropy-decoded, still-quantised DCT levels —
// the output of the Huffman decoding unit.
type Coefficients struct {
	hdr *Header
	// comp[i] holds blocksX×blocksY blocks in raster order.
	comp     [][]block
	blocksX  []int
	blocksY  []int
	trailing []byte // unused; reserved for DNL handling
}

// Planes holds reconstructed component sample planes — the output of the
// iDCT unit, before upsampling and colour conversion.
type Planes struct {
	hdr    *Header
	data   [][]byte // per component, stride×rows samples
	stride []int
	rows   []int
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

func u16(b []byte) int { return int(b[0])<<8 | int(b[1]) }

// Parse reads all marker segments through SOS and captures the
// entropy-coded scan data. It validates against the supported feature set
// (see the package comment).
func Parse(data []byte) (*Header, error) {
	h := &Header{}
	err := h.parse(data)
	if err != nil && err != ErrProgressive {
		return nil, err
	}
	return h, err
}

// parse is the reusable form of Parse: it resets and refills h, keeping
// h's allocations. On ErrProgressive the header is still valid (geometry
// only); on any other error it must not be used.
func (h *Header) parse(data []byte) error {
	h.reset()
	if len(data) < 2 || data[0] != 0xFF || data[1] != mSOI {
		return FormatError("missing SOI marker")
	}
	var sawSOF bool
	pos := 2
	for {
		// Find the next marker, tolerating fill bytes.
		if pos >= len(data) {
			return FormatError("truncated stream before SOS")
		}
		if data[pos] != 0xFF {
			return FormatError("expected marker")
		}
		for pos < len(data) && data[pos] == 0xFF {
			pos++
		}
		if pos >= len(data) {
			return FormatError("truncated marker")
		}
		marker := data[pos]
		pos++
		switch {
		case marker == mEOI:
			return FormatError("EOI before SOS")
		case marker >= mRST0 && marker <= mRST7:
			return FormatError("restart marker outside scan")
		case marker == mDAC:
			return UnsupportedError("arithmetic coding")
		case marker >= 0xC3 && marker <= 0xCF && marker != mDHT && marker != mSOF2:
			return UnsupportedError("non-baseline SOF")
		}
		// All remaining segments carry a two-byte length.
		if pos+2 > len(data) {
			return FormatError("truncated segment length")
		}
		segLen := u16(data[pos:])
		if segLen < 2 || pos+segLen > len(data) {
			return FormatError("bad segment length")
		}
		seg := data[pos+2 : pos+segLen]
		pos += segLen
		switch marker {
		case mSOF0, mSOF1, mSOF2:
			if sawSOF {
				return FormatError("multiple SOF segments")
			}
			sawSOF = true
			h.Progressive = marker == mSOF2
			if err := h.parseSOF(seg); err != nil {
				return err
			}
		case mDQT:
			if err := h.parseDQT(seg); err != nil {
				return err
			}
		case mDHT:
			if err := h.parseDHT(seg); err != nil {
				return err
			}
		case mDRI:
			if len(seg) < 2 {
				return FormatError("short DRI")
			}
			h.RestartInterval = u16(seg)
		case mAPP1:
			if o := parseEXIFOrientation(seg); o != 0 {
				h.Orientation = o
			}
		case mSOS:
			if !sawSOF {
				return FormatError("SOS before SOF")
			}
			if h.Progressive {
				// The caller must use the multi-scan decoder; the
				// header is still returned for DecodeConfig.
				return ErrProgressive
			}
			if err := h.parseSOS(seg); err != nil {
				return err
			}
			h.scan = data[pos:]
			return nil
		default:
			// APPn, COM and other informational segments are skipped.
		}
	}
}

func (h *Header) parseSOF(seg []byte) error {
	if len(seg) < 6 {
		return FormatError("short SOF")
	}
	if seg[0] != 8 {
		return UnsupportedError("sample precision != 8")
	}
	h.Height = u16(seg[1:])
	h.Width = u16(seg[3:])
	if h.Height == 0 {
		return UnsupportedError("DNL-deferred height")
	}
	if h.Width == 0 {
		return FormatError("zero width")
	}
	n := int(seg[5])
	if err := checkComponents(n); err != nil {
		return err
	}
	if len(seg) < 6+3*n {
		return FormatError("short SOF component list")
	}
	if cap(h.Components) >= n {
		h.Components = h.Components[:n]
	} else {
		h.Components = make([]Component, n)
	}
	h.hMax, h.vMax = 1, 1
	for i := 0; i < n; i++ {
		c := seg[6+3*i : 9+3*i]
		comp := Component{ID: c[0], H: int(c[1] >> 4), V: int(c[1] & 0x0F), QuantID: c[2]}
		if comp.H < 1 || comp.H > 2 || comp.V < 1 || comp.V > 2 {
			return UnsupportedError("sampling factor outside 1..2")
		}
		if comp.QuantID > 3 {
			return FormatError("quant table selector > 3")
		}
		for j := 0; j < i; j++ {
			if h.Components[j].ID == comp.ID {
				return FormatError("duplicate component ID")
			}
		}
		if comp.H > h.hMax {
			h.hMax = comp.H
		}
		if comp.V > h.vMax {
			h.vMax = comp.V
		}
		h.Components[i] = comp
	}
	if n == 1 {
		// A single-component frame is decoded non-interleaved; sampling
		// factors are irrelevant and normalising them simplifies layout.
		h.Components[0].H, h.Components[0].V = 1, 1
		h.hMax, h.vMax = 1, 1
	}
	h.mcusX = ceilDiv(h.Width, 8*h.hMax)
	h.mcusY = ceilDiv(h.Height, 8*h.vMax)
	return nil
}

func (h *Header) parseDQT(seg []byte) error {
	for len(seg) > 0 {
		pq := seg[0] >> 4
		tq := seg[0] & 0x0F
		if tq > 3 {
			return FormatError("quant table id > 3")
		}
		var q QuantTable
		switch pq {
		case 0:
			if len(seg) < 1+64 {
				return FormatError("short 8-bit DQT")
			}
			for z := 0; z < 64; z++ {
				q[zigzag[z]] = uint16(seg[1+z])
			}
			seg = seg[65:]
		case 1:
			if len(seg) < 1+128 {
				return FormatError("short 16-bit DQT")
			}
			for z := 0; z < 64; z++ {
				q[zigzag[z]] = uint16(u16(seg[1+2*z:]))
			}
			seg = seg[129:]
		default:
			return FormatError("bad quant precision")
		}
		for _, v := range q {
			if v == 0 {
				return FormatError("zero quantiser")
			}
		}
		h.quant[tq] = q
		h.quantOK[tq] = true
	}
	return nil
}

func (h *Header) parseDHT(seg []byte) error {
	for len(seg) > 0 {
		if len(seg) < 17 {
			return FormatError("short DHT")
		}
		class := seg[0] >> 4
		id := seg[0] & 0x0F
		if class > 1 || id > 3 {
			return FormatError("bad DHT class/id")
		}
		spec := HuffmanSpec{}
		copy(spec.Counts[:], seg[1:17])
		n := spec.totalCodes()
		if len(seg) < 17+n {
			return FormatError("short DHT values")
		}
		// The decoder copies the values into its inline table, so the
		// spec can alias the segment bytes without a defensive copy.
		spec.Values = seg[17 : 17+n]
		var err error
		if class == 0 {
			err = h.dcHuff[id].init(&spec)
			h.dcOK[id] = err == nil
		} else {
			err = h.acHuff[id].init(&spec)
			h.acOK[id] = err == nil
		}
		if err != nil {
			return err
		}
		seg = seg[17+n:]
	}
	return nil
}

func (h *Header) parseSOS(seg []byte) error {
	if len(seg) < 1 {
		return FormatError("short SOS")
	}
	ns := int(seg[0])
	if ns != len(h.Components) {
		return UnsupportedError("scan does not cover all frame components in one pass")
	}
	if len(seg) < 1+2*ns+3 {
		return FormatError("short SOS parameters")
	}
	for i := 0; i < ns; i++ {
		id := seg[1+2*i]
		sel := seg[2+2*i]
		found := false
		for j := range h.Components {
			if h.Components[j].ID == id {
				h.Components[j].dcSel = sel >> 4
				h.Components[j].acSel = sel & 0x0F
				if h.Components[j].dcSel > 3 || h.Components[j].acSel > 3 {
					return FormatError("huffman selector > 3")
				}
				found = true
				break
			}
		}
		if !found {
			return FormatError("scan references unknown component")
		}
	}
	// Spectral selection / successive approximation must be the baseline
	// constants (0, 63, 0, 0).
	ss, se, ahAl := seg[1+2*ns], seg[2+2*ns], seg[3+2*ns]
	if ss != 0 || se != 63 || ahAl != 0 {
		return UnsupportedError("non-baseline spectral selection")
	}
	return nil
}

// EntropyDecode runs the Huffman decoding unit over the captured scan,
// producing quantised coefficient blocks per component. This is stage 1
// of the FPGA pipeline.
func (h *Header) EntropyDecode() (*Coefficients, error) {
	co := &Coefficients{}
	if err := h.entropyDecodeInto(co); err != nil {
		return nil, err
	}
	return co, nil
}

// entropyDecodeInto is the reusable form of EntropyDecode: co's grids are
// grown on demand and reused across calls, so steady-state decoding does
// not allocate. Scans whose restart intervals carve the entropy data into
// enough independent segments are decoded in parallel (parallel.go);
// everything else — and any scan whose parallel decode hits a corrupt
// segment — runs the sequential reference decoder, so the bytes produced
// and the errors surfaced are identical either way.
func (h *Header) entropyDecodeInto(co *Coefficients) error {
	for _, c := range h.Components {
		if !h.quantOK[c.QuantID] {
			return FormatError("missing quant table")
		}
		if !h.dcOK[c.dcSel] || !h.acOK[c.acSel] {
			return FormatError("missing huffman table")
		}
	}
	if segs, ok := h.restartSegments(); ok {
		if err := h.entropyDecodeSegments(co, segs); err == nil {
			parallelScansRun.Add(1)
			return nil
		}
		// Fall through: the sequential re-run below re-initialises co and
		// reproduces the exact error the sequential decoder surfaces.
	}
	return h.entropyDecodeSequential(co)
}

// entropyDecodeSequential is the reference single-goroutine scan decode.
func (h *Header) entropyDecodeSequential(co *Coefficients) error {
	co.init(h)
	rd := bitReader{data: h.scan}
	r := &rd
	var dcPredArr [3]int32 // checkComponents caps components at 3
	dcPred := dcPredArr[:len(h.Components)]
	mcus := h.mcusX * h.mcusY
	sinceRestart := 0
	interval := 0 // index of the restart interval being decoded
	nextRST := byte(mRST0)
	for m := 0; m < mcus; m++ {
		if h.RestartInterval > 0 && sinceRestart == h.RestartInterval {
			if err := h.expectRestart(r, nextRST, interval); err != nil {
				return err
			}
			interval++
			nextRST = mRST0 + (nextRST-mRST0+1)%8
			for i := range dcPred {
				dcPred[i] = 0
			}
			sinceRestart = 0
		}
		my, mx := m/h.mcusX, m%h.mcusX
		for i := range h.Components {
			c := &h.Components[i]
			for v := 0; v < c.V; v++ {
				for hh := 0; hh < c.H; hh++ {
					bx := mx*c.H + hh
					by := my*c.V + v
					blk := &co.comp[i][by*co.blocksX[i]+bx]
					if err := h.decodeBlock(r, i, blk, &dcPred[i]); err != nil {
						return restartIntervalError(h, interval, err)
					}
				}
			}
		}
		sinceRestart++
	}
	return nil
}

// newCoefficients allocates the padded per-component coefficient grids.
func newCoefficients(h *Header) *Coefficients {
	co := &Coefficients{}
	co.init(h)
	return co
}

// init sizes the padded per-component coefficient grids for h, reusing
// existing capacity and zeroing reused blocks (the progressive decoder
// accumulates into them across scans).
func (co *Coefficients) init(h *Header) {
	co.hdr = h
	nc := len(h.Components)
	if cap(co.comp) >= nc {
		co.comp = co.comp[:nc]
		co.blocksX = co.blocksX[:nc]
		co.blocksY = co.blocksY[:nc]
	} else {
		co.comp = make([][]block, nc)
		co.blocksX = make([]int, nc)
		co.blocksY = make([]int, nc)
	}
	for i, c := range h.Components {
		co.blocksX[i] = h.mcusX * c.H
		co.blocksY[i] = h.mcusY * c.V
		n := co.blocksX[i] * co.blocksY[i]
		if cap(co.comp[i]) >= n {
			co.comp[i] = co.comp[i][:n]
			for j := range co.comp[i] {
				co.comp[i][j] = block{}
			}
		} else {
			co.comp[i] = make([]block, n)
		}
	}
}

// expectRestart consumes the next restart marker, resynchronising the bit
// reader. interval is the index of the restart interval just decoded, so
// a corrupt or missing marker is attributed to the segment that broke —
// the attribution the parallel segment decoder needs and that a plain
// "marker out of sequence" loses.
func (h *Header) expectRestart(r *bitReader, want byte, interval int) error {
	m, err := r.nextMarker()
	if err != nil {
		return FormatError(fmt.Sprintf("restart interval %d: missing marker RST%d", interval, want-mRST0))
	}
	if m != want {
		return FormatError(fmt.Sprintf("restart interval %d: marker out of sequence (got 0x%02X, want RST%d)", interval, m, want-mRST0))
	}
	return nil
}

// restartIntervalError attributes an entropy-decode error inside a scan
// with restart intervals to the interval it occurred in. Scans without
// restart intervals pass errors through untouched, keeping the historic
// error surface for the common case.
func restartIntervalError(h *Header, interval int, err error) error {
	if h.RestartInterval <= 0 {
		return err
	}
	msg := err.Error()
	if fe, ok := err.(FormatError); ok {
		msg = string(fe)
	}
	return FormatError(fmt.Sprintf("restart interval %d: %s", interval, msg))
}

// decodeBlock decodes one 8×8 block of quantised levels into blk, in
// natural order.
func (h *Header) decodeBlock(r *bitReader, comp int, blk *block, dcPred *int32) error {
	c := &h.Components[comp]
	dcTab := &h.dcHuff[c.dcSel]
	acTab := &h.acHuff[c.acSel]
	*blk = block{}
	// DC coefficient: category then difference bits.
	t, err := dcTab.decode(r)
	if err != nil {
		return err
	}
	if t > 11 {
		return FormatError("DC category > 11")
	}
	diffBits, err := r.readBits(int(t))
	if err != nil {
		return err
	}
	*dcPred += extend(diffBits, int(t))
	blk[0] = *dcPred
	// AC coefficients: run-length / size pairs in zig-zag order.
	for z := 1; z < 64; {
		sym, err := acTab.decode(r)
		if err != nil {
			return err
		}
		run, size := int(sym>>4), int(sym&0x0F)
		switch {
		case size == 0 && run == 0: // EOB
			return nil
		case size == 0 && run == 15: // ZRL: sixteen zeros
			z += 16
		case size == 0:
			return FormatError("bad AC symbol")
		default:
			z += run
			if z > 63 {
				return FormatError("AC run beyond block")
			}
			bits, err := r.readBits(size)
			if err != nil {
				return err
			}
			blk[zigzag[z]] = extend(bits, size)
			z++
		}
	}
	return nil
}

// Reconstruct dequantises and inverse-transforms every block, producing
// padded sample planes. This is stage 2 of the FPGA pipeline (the iDCT
// unit).
func (co *Coefficients) Reconstruct() (*Planes, error) {
	p := &Planes{}
	if err := co.reconstructInto(p, 8); err != nil {
		return nil, err
	}
	return p, nil
}

// reconstructInto runs the iDCT unit at scale s ∈ {1, 2, 4, 8}: every 8×8
// coefficient block reconstructs to an s×s pixel tile (s == 8 is the
// full-resolution transform, identical to Reconstruct). p's buffers are
// grown on demand and reused across calls.
func (co *Coefficients) reconstructInto(p *Planes, s int) error {
	h := co.hdr
	p.init(h)
	// Branch once on the kernel selection and call the implementations
	// directly: calling through kernelTable's function pointers would make
	// the stack scratch below escape (three heap allocations per image).
	fast := cpukernel.Fast()
	if fast {
		kernelSIMDDecodes.Add(1)
	}
	for i := range h.Components {
		if !h.quantOK[h.Components[i].QuantID] {
			return FormatError("missing quant table")
		}
		q := &h.quant[h.Components[i].QuantID]
		stride := co.blocksX[i] * s
		rows := co.blocksY[i] * s
		plane := p.setPlane(i, stride, rows)
		if s == 8 {
			var deq block
			var samples [64]byte
			for by := 0; by < co.blocksY[i]; by++ {
				for bx := 0; bx < co.blocksX[i]; bx++ {
					blk := &co.comp[i][by*co.blocksX[i]+bx]
					dequantize(blk, q, &deq)
					if fast {
						idctFast(&deq, &samples)
					} else {
						idct(&deq, &samples)
					}
					for y := 0; y < 8; y++ {
						copy(plane[(by*8+y)*stride+bx*8:], samples[y*8:y*8+8])
					}
				}
			}
			continue
		}
		var samples [16]byte // s ≤ 4, so a tile is at most 4×4
		for by := 0; by < co.blocksY[i]; by++ {
			for bx := 0; bx < co.blocksX[i]; bx++ {
				blk := &co.comp[i][by*co.blocksX[i]+bx]
				if fast {
					idctScaledFast(blk, q, s, &samples)
				} else {
					idctScaled(blk, q, s, &samples)
				}
				for y := 0; y < s; y++ {
					copy(plane[(by*s+y)*stride+bx*s:], samples[y*s:y*s+s])
				}
			}
		}
	}
	return nil
}

// init sizes the per-component bookkeeping slices, reusing capacity.
func (p *Planes) init(h *Header) {
	p.hdr = h
	nc := len(h.Components)
	if cap(p.data) >= nc {
		p.data = p.data[:nc]
		p.stride = p.stride[:nc]
		p.rows = p.rows[:nc]
	} else {
		p.data = make([][]byte, nc)
		p.stride = make([]int, nc)
		p.rows = make([]int, nc)
	}
}

// setPlane sizes component i's sample plane, reusing capacity, and
// returns it. Every byte is overwritten by reconstruction, so reused
// memory needs no zeroing.
func (p *Planes) setPlane(i, stride, rows int) []byte {
	n := stride * rows
	if cap(p.data[i]) >= n {
		p.data[i] = p.data[i][:n]
	} else {
		p.data[i] = make([]byte, n)
	}
	p.stride[i] = stride
	p.rows[i] = rows
	return p.data[i]
}

// ToImage upsamples the component planes to full resolution and converts
// to interleaved RGB (or grayscale) — stage 3, feeding the resizer.
func (p *Planes) ToImage() *pix.Image {
	c := 3
	if len(p.hdr.Components) == 1 {
		c = 1
	}
	img := pix.New(p.hdr.Width, p.hdr.Height, c)
	p.renderInto(img)
	return img
}

// renderInto fuses upsampling and YCbCr→RGB conversion (or a grayscale
// row copy) directly into dst, with no intermediate image. dst fixes the
// output geometry: Width×Height for a full-scale reconstruction (where
// this is exactly ToImage), or the scaled geometry for a scaled one. dst
// must not exceed the reconstructed plane extent.
func (p *Planes) renderInto(dst *pix.Image) {
	h := p.hdr
	if len(h.Components) == 1 {
		for y := 0; y < dst.H; y++ {
			copy(dst.Pix[y*dst.W:(y+1)*dst.W], p.data[0][y*p.stride[0]:y*p.stride[0]+dst.W])
		}
		return
	}
	// Per-component subsampling shifts: components with H (V) of 1 under
	// hMax (vMax) of 2 halve the x (y) index. The relative factors are
	// scale-invariant, so the same shifts serve scaled planes.
	var shx, shy [3]uint
	for i, c := range h.Components {
		if h.hMax/c.H == 2 {
			shx[i] = 1
		}
		if h.vMax/c.V == 2 {
			shy[i] = 1
		}
	}
	out := dst.Pix
	rowFn := activeKernels().ycbcrRow
	for y := 0; y < dst.H; y++ {
		yRow := p.data[0][(y>>shy[0])*p.stride[0]:]
		cbRow := p.data[1][(y>>shy[1])*p.stride[1]:]
		crRow := p.data[2][(y>>shy[2])*p.stride[2]:]
		o := y * dst.W * 3
		rowFn(out[o:o+dst.W*3], yRow, cbRow, crRow, dst.W, shx)
	}
}

// ErrProgressive is returned by Parse for SOF2 streams: the staged
// single-scan pipeline (and the FPGA decoder mirroring it — hardware
// JPEG decoders are baseline-only, including the paper's) cannot run a
// multi-scan frame. Decode handles such streams in software via the
// multi-scan decoder in progressive.go.
var ErrProgressive = UnsupportedError("progressive JPEG requires the multi-scan decoder")

// DecodeOriented decodes and then uprights the image per its EXIF
// orientation, the behaviour an inference front end wants for phone
// uploads (Figure 1's clients).
func DecodeOriented(data []byte) (*pix.Image, error) {
	cfg, err := DecodeConfig(data)
	if err != nil {
		return nil, err
	}
	img, err := Decode(data)
	if err != nil {
		return nil, err
	}
	return imageproc.ApplyOrientation(img, cfg.Orientation)
}

// Decode runs the full three-stage pipeline on a JPEG stream, or the
// multi-scan software decoder for progressive streams.
func Decode(data []byte) (*pix.Image, error) {
	h, err := Parse(data)
	if err == ErrProgressive {
		return decodeProgressive(data)
	}
	if err != nil {
		return nil, err
	}
	co, err := h.EntropyDecode()
	if err != nil {
		return nil, err
	}
	p, err := co.Reconstruct()
	if err != nil {
		return nil, err
	}
	return p.ToImage(), nil
}

// Config reports image geometry without decoding pixel data.
type Config struct {
	Width, Height, Components int
	// Orientation is the EXIF orientation (1–8), 0 when absent.
	Orientation int
}

// DecodeConfig parses only as far as needed to learn the geometry
// (progressive streams included).
func DecodeConfig(data []byte) (Config, error) {
	h, err := Parse(data)
	if err != nil && err != ErrProgressive {
		return Config{}, err
	}
	return Config{Width: h.Width, Height: h.Height, Components: len(h.Components), Orientation: h.Orientation}, nil
}
