package jpeg

import (
	"fmt"

	"dlbooster/internal/pix"
)

// Progressive (SOF2) encoding with a fixed four-phase scan script:
//
//  1. DC, all components interleaved, successive approximation Al=1
//  2. per component: AC band 1..63 first pass, Al=1
//  3. DC refinement, Ah=1 → Al=0
//  4. per component: AC band 1..63 refinement, Ah=1 → Al=0
//
// One refinement level exercises every decoder path (DC/AC × first/
// refine, EOB runs, correction bits) while keeping the script compact.
// AC scans emit EOBn symbols, which the Annex K example tables do not
// contain, so every AC scan runs twice: a counting pass, then optimal
// Huffman table derivation (optimal.go) and the emission pass — the same
// forced-optimisation libjpeg applies to progressive output. Restart
// intervals are honoured per scan (MCU-counted in DC scans,
// block-counted in the non-interleaved AC scans).

// EncodeProgressive serialises img as a progressive JFIF stream.
func EncodeProgressive(img *pix.Image, opt EncodeOptions) ([]byte, error) {
	if img == nil || len(img.Pix) != img.W*img.H*img.C {
		return nil, fmt.Errorf("jpeg: malformed image")
	}
	if err := checkComponents(img.C); err != nil {
		return nil, err
	}
	if img.W >= 1<<16 || img.H >= 1<<16 {
		return nil, fmt.Errorf("jpeg: image %dx%d exceeds 16-bit dimensions", img.W, img.H)
	}
	if opt.Quality < 1 || opt.Quality > 100 {
		return nil, fmt.Errorf("jpeg: quality %d outside 1..100", opt.Quality)
	}
	e := &encoder{img: img, opt: opt}
	p := &progEncoder{e: e}
	return p.encode()
}

type progEncoder struct {
	e *encoder
	// Per component: padded block grid (gw×gh, MCU-aligned) of quantised
	// coefficients, plus the real (unpadded) grid dims AC scans cover.
	coefs        [][]block
	gw, gh       []int
	bw, bh       []int
	dcEnc, acEnc []*huffEncoder // per component
}

func (p *progEncoder) encode() ([]byte, error) {
	e := p.e
	e.lumaQ = scaledQuant(&stdLumaQuant, e.opt.Quality)
	e.chromaQ = scaledQuant(&stdChromaQuant, e.opt.Quality)
	var err error
	if e.dcLuma, err = newHuffEncoder(&stdDCLumaSpec); err != nil {
		return nil, err
	}
	if e.acLuma, err = newHuffEncoder(&stdACLumaSpec); err != nil {
		return nil, err
	}
	if e.dcChroma, err = newHuffEncoder(&stdDCChromaSpec); err != nil {
		return nil, err
	}
	if e.acChroma, err = newHuffEncoder(&stdACChromaSpec); err != nil {
		return nil, err
	}
	if err := p.computeCoefficients(); err != nil {
		return nil, err
	}

	e.marker(mSOI, nil)
	e.appJFIF()
	e.writeDQT()
	p.writeSOF2()
	e.writeDHT()
	if e.opt.RestartInterval > 0 {
		e.marker(mDRI, []byte{byte(e.opt.RestartInterval >> 8), byte(e.opt.RestartInterval)})
	}

	// Phase 1: interleaved DC first pass, Al=1.
	if err := p.dcScan(0, 1); err != nil {
		return nil, err
	}
	// Phase 2: AC first pass per component, Al=1.
	for c := range p.coefs {
		if err := p.acFirstScan(c, 1); err != nil {
			return nil, err
		}
	}
	// Phase 3: DC refinement, Ah=1, Al=0.
	if err := p.dcScan(1, 0); err != nil {
		return nil, err
	}
	// Phase 4: AC refinement per component, Ah=1, Al=0.
	for c := range p.coefs {
		if err := p.acRefineScan(c, 1, 0); err != nil {
			return nil, err
		}
	}
	e.marker(mEOI, nil)
	return e.out, nil
}

// computeCoefficients fills the per-component quantised grids, padded to
// MCU boundaries with edge replication (the same data the baseline
// encoder would produce).
func (p *progEncoder) computeCoefficients() error {
	e := p.e
	type plane struct {
		data []byte
		w, h int
	}
	var planes []plane
	var hs, vs []int
	if e.img.C == 1 {
		planes = []plane{{e.img.Pix, e.img.W, e.img.H}}
		hs, vs = []int{1}, []int{1}
	} else {
		yp, cb, cr := e.toYCbCrPlanes()
		switch {
		case e.opt.Subsample420:
			cbS, cw, ch := subsample2x2(cb, e.img.W, e.img.H)
			crS, _, _ := subsample2x2(cr, e.img.W, e.img.H)
			planes = []plane{{yp, e.img.W, e.img.H}, {cbS, cw, ch}, {crS, cw, ch}}
			hs, vs = []int{2, 1, 1}, []int{2, 1, 1}
		case e.opt.Subsample422:
			cbS, cw, ch := subsample2x1(cb, e.img.W, e.img.H)
			crS, _, _ := subsample2x1(cr, e.img.W, e.img.H)
			planes = []plane{{yp, e.img.W, e.img.H}, {cbS, cw, ch}, {crS, cw, ch}}
			hs, vs = []int{2, 1, 1}, []int{1, 1, 1}
		default:
			planes = []plane{{yp, e.img.W, e.img.H}, {cb, e.img.W, e.img.H}, {cr, e.img.W, e.img.H}}
			hs, vs = []int{1, 1, 1}, []int{1, 1, 1}
		}
	}
	hMax, vMax := 1, 1
	for i := range hs {
		if hs[i] > hMax {
			hMax = hs[i]
		}
		if vs[i] > vMax {
			vMax = vs[i]
		}
	}
	mcusX := ceilDiv(e.img.W, 8*hMax)
	mcusY := ceilDiv(e.img.H, 8*vMax)
	n := len(planes)
	p.coefs = make([][]block, n)
	p.gw = make([]int, n)
	p.gh = make([]int, n)
	p.bw = make([]int, n)
	p.bh = make([]int, n)
	p.dcEnc = make([]*huffEncoder, n)
	p.acEnc = make([]*huffEncoder, n)
	for c, pl := range planes {
		q := &e.lumaQ
		p.dcEnc[c], p.acEnc[c] = e.dcLuma, e.acLuma
		if c > 0 {
			q = &e.chromaQ
			p.dcEnc[c], p.acEnc[c] = e.dcChroma, e.acChroma
		}
		gw, gh := mcusX*hs[c], mcusY*vs[c]
		if n == 1 {
			gw, gh = mcusX, mcusY
		}
		p.gw[c], p.gh[c] = gw, gh
		p.bw[c], p.bh[c] = ceilDiv(pl.w, 8), ceilDiv(pl.h, 8)
		p.coefs[c] = make([]block, gw*gh)
		var samples [64]byte
		var coef block
		for by := 0; by < gh; by++ {
			for bx := 0; bx < gw; bx++ {
				loadBlock(pl.data, pl.w, pl.h, bx*8, by*8, &samples)
				fdct(&samples, &coef)
				quantize(&coef, q, &p.coefs[c][by*gw+bx])
			}
		}
	}
	return nil
}

// writeSOF2 emits the progressive frame header.
func (p *progEncoder) writeSOF2() {
	e := p.e
	n := e.img.C
	seg := []byte{8, byte(e.img.H >> 8), byte(e.img.H), byte(e.img.W >> 8), byte(e.img.W), byte(n)}
	if n == 1 {
		seg = append(seg, 1, 0x11, 0)
	} else {
		samp := byte(0x11)
		if e.opt.Subsample420 {
			samp = 0x22
		} else if e.opt.Subsample422 {
			samp = 0x21
		}
		seg = append(seg, 1, samp, 0, 2, 0x11, 1, 3, 0x11, 1)
	}
	e.marker(mSOF2, seg)
}

// writeProgSOS emits a scan header. comps lists component indices; for
// DC scans it is all of them.
func (p *progEncoder) writeProgSOS(comps []int, ss, se, ah, al int) {
	e := p.e
	seg := []byte{byte(len(comps))}
	for _, c := range comps {
		id := byte(c + 1)
		sel := byte(0)
		if c > 0 {
			sel = 0x11
		}
		if ss > 0 {
			sel &= 0x0F // AC-only scan: DC selector unused but keep canonical
		}
		seg = append(seg, id, sel)
	}
	seg = append(seg, byte(ss), byte(se), byte(ah<<4|al))
	e.marker(mSOS, seg)
}

// pointTransformDC is the DC successive-approximation transform: an
// arithmetic shift (T.81 §G.1.2.1), so refinement bits OR in correctly
// for negative values.
func pointTransformDC(v int32, al int) int32 { return v >> al }

// pointTransformAC shifts magnitude toward zero (T.81 §G.1.2.2).
func pointTransformAC(v int32, al int) int32 {
	if v >= 0 {
		return v >> al
	}
	return -((-v) >> al)
}

// dcScan emits one DC scan (first pass when ah == 0, else refinement).
func (p *progEncoder) dcScan(ah, al int) error {
	e := p.e
	comps := make([]int, len(p.coefs))
	for i := range comps {
		comps[i] = i
	}
	p.writeProgSOS(comps, 0, 0, ah, al)
	w := &bitWriter{}
	preds := make([]int32, len(p.coefs))
	nComp := len(p.coefs)
	// Reconstruct per-component sampling from grid dims.
	mcusX, mcusY := p.gw[0], p.gh[0]
	if nComp > 1 {
		mcusX, mcusY = p.gw[1], p.gh[1] // chroma grids are 1×1 per MCU
	}
	ri := e.opt.RestartInterval
	sinceRestart := 0
	nextRST := byte(0)
	for my := 0; my < mcusY; my++ {
		for mx := 0; mx < mcusX; mx++ {
			if ri > 0 && sinceRestart == ri {
				w.restartMarker(mRST0 + nextRST)
				nextRST = (nextRST + 1) % 8
				for i := range preds {
					preds[i] = 0
				}
				sinceRestart = 0
			}
			sinceRestart++
			for c := 0; c < nComp; c++ {
				ch, cv := p.gw[c]/mcusX, p.gh[c]/mcusY
				for v := 0; v < cv; v++ {
					for hh := 0; hh < ch; hh++ {
						bx, by := mx*ch+hh, my*cv+v
						dc := p.coefs[c][by*p.gw[c]+bx][0]
						if ah == 0 {
							val := pointTransformDC(dc, al)
							diff := val - preds[c]
							preds[c] = val
							ssss := bitLength(diff)
							if err := p.dcEnc[c].emit(w, byte(ssss)); err != nil {
								return err
							}
							if ssss > 0 {
								bits := diff
								if bits < 0 {
									bits += (1 << ssss) - 1
								}
								w.writeBits(uint32(bits), ssss)
							}
						} else {
							w.writeBits(uint32(dc>>al)&1, 1)
						}
					}
				}
			}
		}
	}
	e.out = append(e.out, w.flush()...)
	return nil
}

// symWriter emits Huffman symbols and raw bits, in either counting mode
// (gathering frequencies for optimal-table derivation) or writing mode.
type symWriter struct {
	counting bool
	freq     [256]int
	enc      *huffEncoder
	w        *bitWriter
}

func (sw *symWriter) sym(s byte) error {
	if sw.counting {
		sw.freq[s]++
		return nil
	}
	return sw.enc.emit(sw.w, s)
}

func (sw *symWriter) bits(v uint32, n int) {
	if !sw.counting {
		sw.w.writeBits(v, n)
	}
}

func (sw *symWriter) restart(m byte) {
	if !sw.counting {
		sw.w.restartMarker(m)
	}
}

// runACScan runs an AC scan body twice — count, derive, emit — and
// appends the DHT + SOS + entropy data to the output.
func (p *progEncoder) runACScan(c, ah, al int, body func(sw *symWriter) error) error {
	e := p.e
	count := &symWriter{counting: true}
	if err := body(count); err != nil {
		return err
	}
	spec, err := optimalSpec(&count.freq)
	if err != nil {
		return err
	}
	enc, err := newHuffEncoder(spec)
	if err != nil {
		return err
	}
	tableID := byte(0)
	if c > 0 {
		tableID = 1
	}
	dht := []byte{1<<4 | tableID}
	dht = append(dht, spec.Counts[:]...)
	dht = append(dht, spec.Values...)
	e.marker(mDHT, dht)
	p.writeProgSOS([]int{c}, 1, 63, ah, al)
	write := &symWriter{enc: enc, w: &bitWriter{}}
	if err := body(write); err != nil {
		return err
	}
	e.out = append(e.out, write.w.flush()...)
	return nil
}

// acFirstScan emits the first pass of component c's AC band.
func (p *progEncoder) acFirstScan(c, al int) error {
	ri := p.e.opt.RestartInterval
	return p.runACScan(c, 0, al, func(sw *symWriter) error {
		eobrun := 0
		sinceRestart := 0
		nextRST := byte(0)
		flushEOB := func() error {
			if eobrun == 0 {
				return nil
			}
			n := 0
			for 1<<(n+1) <= eobrun {
				n++
			}
			if err := sw.sym(byte(n << 4)); err != nil {
				return err
			}
			if n > 0 {
				sw.bits(uint32(eobrun-1<<n), n)
			}
			eobrun = 0
			return nil
		}
		for by := 0; by < p.bh[c]; by++ {
			for bx := 0; bx < p.bw[c]; bx++ {
				if ri > 0 && sinceRestart == ri {
					if err := flushEOB(); err != nil {
						return err
					}
					sw.restart(mRST0 + nextRST)
					nextRST = (nextRST + 1) % 8
					sinceRestart = 0
				}
				sinceRestart++
				blk := &p.coefs[c][by*p.gw[c]+bx]
				r := 0
				for k := 1; k <= 63; k++ {
					v := pointTransformAC(blk[zigzag[k]], al)
					if v == 0 {
						r++
						continue
					}
					if err := flushEOB(); err != nil {
						return err
					}
					for r > 15 {
						if err := sw.sym(0xF0); err != nil {
							return err
						}
						r -= 16
					}
					size := bitLength(v)
					if err := sw.sym(byte(r<<4 | size)); err != nil {
						return err
					}
					bits := v
					if bits < 0 {
						bits += (1 << size) - 1
					}
					sw.bits(uint32(bits), size)
					r = 0
				}
				if r > 0 {
					eobrun++
					if eobrun == 0x7FFF {
						if err := flushEOB(); err != nil {
							return err
						}
					}
				}
			}
		}
		return flushEOB()
	})
}

// acRefineScan emits the refinement pass of component c's AC band,
// following T.81 §G.1.2.3 (the correction-bit buffering of Figure G.7).
func (p *progEncoder) acRefineScan(c, ah, al int) error {
	ri := p.e.opt.RestartInterval
	return p.runACScan(c, ah, al, func(sw *symWriter) error {
		eobrun := 0
		sinceRestart := 0
		nextRST := byte(0)
		// Two correction-bit buffers, as in T.81 Figure G.7 (and
		// libjpeg's BE/BR split): runBits belong to the pending EOB run
		// (they are emitted right after the EOBn symbol, and the decoder
		// consumes them in the EOB path of the blocks the run covers);
		// blockBits are the current block's corrections since the last
		// emitted symbol (the decoder consumes them while advancing over
		// the next symbol's run).
		var runBits, blockBits []byte
		emitBlockBits := func() {
			for _, b := range blockBits {
				sw.bits(uint32(b), 1)
			}
			blockBits = blockBits[:0]
		}
		flushEOB := func() error {
			if eobrun == 0 {
				return nil
			}
			n := 0
			for 1<<(n+1) <= eobrun {
				n++
			}
			if err := sw.sym(byte(n << 4)); err != nil {
				return err
			}
			if n > 0 {
				sw.bits(uint32(eobrun-1<<n), n)
			}
			eobrun = 0
			for _, b := range runBits {
				sw.bits(uint32(b), 1)
			}
			runBits = runBits[:0]
			return nil
		}
		for by := 0; by < p.bh[c]; by++ {
			for bx := 0; bx < p.bw[c]; bx++ {
				if ri > 0 && sinceRestart == ri {
					if err := flushEOB(); err != nil {
						return err
					}
					sw.restart(mRST0 + nextRST)
					nextRST = (nextRST + 1) % 8
					sinceRestart = 0
				}
				sinceRestart++
				blk := &p.coefs[c][by*p.gw[c]+bx]
				var abs [64]int32
				// EOB position: the last newly-significant coefficient.
				eob := 0
				for k := 1; k <= 63; k++ {
					v := blk[zigzag[k]]
					if v < 0 {
						v = -v
					}
					abs[k] = v >> al
					if abs[k] == 1 {
						eob = k
					}
				}
				r := 0
				for k := 1; k <= 63; k++ {
					t := abs[k]
					if t == 0 {
						r++
						continue
					}
					// Emit pending ZRLs while more new-significant
					// coefficients remain in this block.
					for r > 15 && k <= eob {
						if err := flushEOB(); err != nil {
							return err
						}
						if err := sw.sym(0xF0); err != nil {
							return err
						}
						r -= 16
						emitBlockBits()
					}
					if t > 1 {
						// Already significant: just a correction bit.
						blockBits = append(blockBits, byte(t&1))
						continue
					}
					// Newly significant coefficient.
					if err := flushEOB(); err != nil {
						return err
					}
					if err := sw.sym(byte(r<<4 | 1)); err != nil {
						return err
					}
					if blk[zigzag[k]] < 0 {
						sw.bits(0, 1)
					} else {
						sw.bits(1, 1)
					}
					emitBlockBits()
					r = 0
				}
				if r > 0 || len(blockBits) > 0 {
					// This block ends in an EOB: its remaining correction
					// bits join the run-level buffer.
					eobrun++
					runBits = append(runBits, blockBits...)
					blockBits = blockBits[:0]
					if eobrun == 0x7FFF || len(runBits) > 900 {
						if err := flushEOB(); err != nil {
							return err
						}
					}
				}
			}
		}
		return flushEOB()
	})
}
