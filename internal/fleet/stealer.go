// The work stealer: when a shard's boards degrade to the CPU fallback
// path, its decode rate collapses while its ingest queue keeps
// receiving (hash placement rings it off for new keys, but queued work
// and in-flight affinity remain). The stealer sweeps degraded shards'
// queues and moves their backlog to the least-loaded healthy shard, so
// accepted items ride out a board failure at fleet speed instead of
// CPU speed.
//
// Zero loss is the contract: an item leaves its source queue only
// after a destination accepted it could exist, and a failed hand-off
// puts the item back. Drain stops the stealer before any ingest queue
// closes, so the stealer can never be holding an item when the only
// queues that could take it disappear.

package fleet

import (
	"fmt"
	"time"
)

// stealBatch bounds how many items one sweep moves per degraded
// shard, so a sweep cannot monopolise the queues' locks.
const stealBatch = 32

// stealLoop sweeps until Drain stops it.
func (f *Fleet) stealLoop() {
	defer close(f.stealDone)
	t := time.NewTicker(f.cfg.StealInterval)
	defer t.Stop()
	for {
		select {
		case <-f.stealStop:
			return
		case <-t.C:
			f.stealOnce()
		}
	}
}

// stealOnce moves queued work off every degraded shard into healthy
// shards with room, returning how many items moved.
func (f *Fleet) stealOnce() int {
	if len(f.shards) < 2 {
		return 0
	}
	moved := 0
	for _, src := range f.shards {
		if !src.b.Degraded() || src.items.Len() == 0 {
			continue
		}
		for i := 0; i < stealBatch; i++ {
			dst := f.healthyTarget(src)
			if dst == nil {
				break
			}
			item, ok, _ := src.items.TryPop()
			if !ok {
				break
			}
			if pushed, err := dst.items.TryPush(item); err != nil || !pushed {
				// The target filled (or closed) between the check and
				// the push: put the item back where it came from. The
				// source queue cannot be closed here — Drain stops the
				// stealer before closing queues — so the push-back
				// cannot lose the item.
				if perr := src.items.Push(item); perr != nil {
					f.noteErr(fmt.Errorf("fleet: steal push-back on shard %d: %w (item seq %d)",
						src.id, perr, item.Meta.Seq))
				}
				break
			}
			src.stolenOut.Add(1)
			dst.stolenIn.Add(1)
			f.steals.Add(1)
			moved++
		}
	}
	return moved
}

// healthyTarget picks the least-loaded non-degraded shard with queue
// room; nil when every other shard is degraded or full.
func (f *Fleet) healthyTarget(src *Shard) *Shard {
	var best *Shard
	bestLen := 0
	for _, s := range f.shards {
		if s == src || s.b.Degraded() || s.items.Closed() {
			continue
		}
		l := s.items.Len()
		if l >= s.items.Cap() {
			continue
		}
		if best == nil || l < bestLen {
			best, bestLen = s, l
		}
	}
	return best
}
