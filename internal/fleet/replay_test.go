package fleet

import (
	"errors"
	"testing"

	"dlbooster/internal/core"
	"dlbooster/internal/nvme"
)

// TestFleetSharedCacheConcurrentReplay is the cross-shard race test
// (CI runs it under -race -count=3): shards built over one shared
// tiered cache replay concurrently, each serving its congruence slice,
// and every item of the captured epoch is delivered exactly once.
func TestFleetSharedCacheConcurrentReplay(t *testing.T) {
	const n = 24
	// RAM holds 2 of the 6 batches, so the replay mixes RAM reads,
	// concurrent spill reads and promotions across the shards.
	shared, err := SharedCacheFor(core.CacheConfig{
		RAMBytes: 2 * 4 * 28 * 28,
		Spill:    nvme.New(nvme.Config{}),
		Compress: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	f := newFleet(t, Config{
		Shards: 3, QueueCap: 16,
		NewBooster: func(shard int) (*core.Booster, error) {
			cfg := shardConfig()
			cfg.SharedCache = shared
			return core.New(cfg)
		},
	})

	d, wg := consumeShards(t, f)

	// Epoch 1: shard 0 decodes and captures into the shared tiers.
	items := fleetItems(t, n)
	if err := f.Shards()[0].Booster().RunEpoch(core.CollectorFromItems(items)); err != nil {
		t.Fatal(err)
	}
	st := shared.Stats()
	if st.SpillResident == 0 {
		t.Fatalf("nothing spilled, the test would not exercise shared spill reads: %+v", st)
	}

	// Epochs 2 and 3: all shards replay the shared cache concurrently.
	for e := 0; e < 2; e++ {
		if err := f.ReplayShared(); err != nil {
			t.Fatal(err)
		}
	}
	for _, s := range f.Shards() {
		s.Booster().CloseBatches()
	}
	wg.Wait()

	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.count) != n {
		t.Fatalf("distinct items = %d, want %d", len(d.count), n)
	}
	shardsServing := map[int]bool{}
	for seq, c := range d.count {
		if c != 3 {
			t.Fatalf("item %d delivered %d times, want 3 (decode + 2 replays)", seq, c)
		}
		shardsServing[d.shard[seq]] = true
	}
	if len(shardsServing) < 2 {
		t.Fatalf("replay used %d shard(s), want the cache shared across several", len(shardsServing))
	}
}

// TestFleetReplayRejectsPrivateCaches: a fleet whose shards hold
// private caches must error out of ReplayShared instead of serving a
// skewed epoch (each shard replaying only a slice of its own cache).
func TestFleetReplayRejectsPrivateCaches(t *testing.T) {
	f := newFleet(t, Config{
		Shards: 2, QueueCap: 8,
		NewBooster: func(shard int) (*core.Booster, error) {
			cfg := shardConfig()
			cfg.Cache = core.CacheConfig{RAMBytes: 1 << 20}
			return core.New(cfg)
		},
	})
	if err := f.ReplayShared(); err == nil {
		t.Fatal("private per-shard caches accepted")
	}
}

// TestFleetReplayWithoutCache: no cache at all is the distinguishable
// ErrCacheDisabled, so callers can fall back to a decode epoch.
func TestFleetReplayWithoutCache(t *testing.T) {
	f := newFleet(t, Config{
		Shards: 2, QueueCap: 8,
		NewBooster: func(shard int) (*core.Booster, error) {
			return core.New(shardConfig())
		},
	})
	if err := f.ReplayShared(); !errors.Is(err, core.ErrCacheDisabled) {
		t.Fatalf("ReplayShared = %v, want ErrCacheDisabled", err)
	}
}
