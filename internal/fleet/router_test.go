package fleet

// Ring tests: placement is always a live shard, removal relocates only
// the departed shard's keys (the minimal-disruption property that
// makes consistent hashing worth its name), and the distribution over
// a fixed corpus stays within 2× of uniform.

import (
	"testing"
)

func TestRingDistributionWithinTwiceUniform(t *testing.T) {
	const shards, keys = 8, 16384
	r := NewRing(shards, 128)
	counts := make([]int, shards)
	for k := uint64(0); k < keys; k++ {
		id, ok := r.Lookup(k)
		if !ok {
			t.Fatal("lookup failed with all shards live")
		}
		counts[id]++
	}
	mean := float64(keys) / shards
	for id, c := range counts {
		if float64(c) > 2*mean || float64(c) < mean/2 {
			t.Fatalf("shard %d got %d of %d keys (uniform %0.f): beyond 2x of uniform (%v)",
				id, c, keys, mean, counts)
		}
	}
}

func TestRingRemoveRelocatesOnlyDepartedKeys(t *testing.T) {
	const shards, keys = 8, 4096
	r := NewRing(shards, 128)
	before := make([]int, keys)
	for k := range before {
		before[k], _ = r.Lookup(uint64(k))
	}
	const removed = 3
	r.Remove(removed)
	relocated := 0
	for k := range before {
		after, ok := r.Lookup(uint64(k))
		if !ok {
			t.Fatal("lookup failed with 7 shards live")
		}
		if before[k] == removed {
			relocated++
			if after == removed {
				t.Fatalf("key %d still placed on removed shard", k)
			}
		} else if after != before[k] {
			t.Fatalf("key %d relocated %d→%d though shard %d departed", k, before[k], after, removed)
		}
	}
	if relocated == 0 {
		t.Fatal("removed shard owned no keys — corpus too small to test relocation")
	}

	// Adding the shard back restores the original placement exactly.
	r.Add(removed)
	for k := range before {
		if after, _ := r.Lookup(uint64(k)); after != before[k] {
			t.Fatalf("key %d placed on %d after re-add, originally %d", k, after, before[k])
		}
	}
}

func TestRingExhaustion(t *testing.T) {
	r := NewRing(2, 16)
	r.Remove(0)
	r.Remove(1)
	if _, ok := r.Lookup(42); ok {
		t.Fatal("lookup succeeded on an empty ring")
	}
	if got := r.Live(); len(got) != 0 {
		t.Fatalf("live = %v", got)
	}
	r.Add(1)
	if id, ok := r.Lookup(42); !ok || id != 1 {
		t.Fatalf("lookup after re-add: %d %v", id, ok)
	}
}

// FuzzRingLookup fuzzes keys and live-shard mutations: placement must
// always land on a live shard, and removing one shard must relocate
// that shard's keys only.
func FuzzRingLookup(f *testing.F) {
	f.Add(uint64(0), uint8(2), uint8(0))
	f.Add(uint64(12345), uint8(8), uint8(3))
	f.Add(^uint64(0), uint8(5), uint8(4))
	f.Add(uint64(7), uint8(1), uint8(0))
	f.Fuzz(func(t *testing.T, key uint64, nshards, removed uint8) {
		shards := 1 + int(nshards%8)
		r := NewRing(shards, 32)
		before, ok := r.Lookup(key)
		if !ok || before < 0 || before >= shards {
			t.Fatalf("placement %d (ok=%v) not a live shard of %d", before, ok, shards)
		}
		rm := int(removed) % shards
		r.Remove(rm)
		after, ok := r.Lookup(key)
		if shards == 1 {
			if ok {
				t.Fatal("lookup succeeded with the only shard removed")
			}
			return
		}
		if !ok || after == rm {
			t.Fatalf("placement %d (ok=%v) after removing %d", after, ok, rm)
		}
		if before != rm && after != before {
			t.Fatalf("key relocated %d→%d though only shard %d departed", before, after, rm)
		}
	})
}
