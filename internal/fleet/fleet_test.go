package fleet

import (
	"sync"
	"testing"
	"time"

	"dlbooster/internal/core"
	"dlbooster/internal/dataset"
	"dlbooster/internal/fpga"
)

// shardConfig is the baseline per-shard pipeline every fleet test uses:
// MNIST geometry, a small pool, and deadline flushing so partial final
// batches publish instead of stalling the drain.
func shardConfig() core.Config {
	return core.Config{
		BatchSize: 4, OutW: 28, OutH: 28, Channels: 1, PoolBatches: 3,
		BatchTimeout: 2 * time.Millisecond,
	}
}

func newFleet(t *testing.T, cfg Config) *Fleet {
	t.Helper()
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Close)
	return f
}

func fleetItems(t *testing.T, n int) []core.Item {
	t.Helper()
	spec := dataset.MNISTLike(n)
	items := make([]core.Item, n)
	for i := range items {
		data, err := spec.JPEG(i)
		if err != nil {
			t.Fatal(err)
		}
		items[i] = core.Item{Ref: fpga.DataRef{Inline: data}, Meta: core.ItemMeta{Seq: i}}
	}
	return items
}

// delivery is what the per-shard consumers observed: how many times
// each seq was published, on which shard, and whether its slot was
// valid.
type delivery struct {
	mu     sync.Mutex
	count  map[int]int
	shard  map[int]int
	valid  map[int]bool
	images map[int]int // per-shard published image count
}

// consumeShards drains and recycles every shard's Batches queue until
// the epochs close them; wait the returned WaitGroup after Drain.
func consumeShards(t *testing.T, f *Fleet) (*delivery, *sync.WaitGroup) {
	t.Helper()
	d := &delivery{count: map[int]int{}, shard: map[int]int{}, valid: map[int]bool{}, images: map[int]int{}}
	var wg sync.WaitGroup
	for _, s := range f.Shards() {
		wg.Add(1)
		go func(s *Shard) {
			defer wg.Done()
			for {
				batch, err := s.Booster().Batches().Pop()
				if err != nil {
					return
				}
				d.mu.Lock()
				for i := 0; i < batch.Images; i++ {
					seq := batch.Metas[i].Seq
					d.count[seq]++
					d.shard[seq] = s.ID()
					d.valid[seq] = batch.Valid[i]
					d.images[s.ID()]++
				}
				d.mu.Unlock()
				if err := s.Booster().RecycleBatch(batch); err != nil {
					t.Errorf("shard %d recycle: %v", s.ID(), err)
				}
			}
		}(s)
	}
	return d, &wg
}

// drainWatchdog fails instead of hanging when a drain deadlocks.
func drainWatchdog(t *testing.T, f *Fleet) {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- f.Drain() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Drain: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("fleet drain deadlocked")
	}
}

func assertShardPoolsBalanced(t *testing.T, f *Fleet) {
	t.Helper()
	for _, s := range f.Shards() {
		b := s.Booster()
		if n := b.Pool().Outstanding(); n != 0 {
			t.Fatalf("shard %d leaked %d buffers", s.ID(), n)
		}
		if free := b.Pool().FreeLen(); free != b.Pool().Count() {
			t.Fatalf("shard %d free queue holds %d of %d buffers", s.ID(), free, b.Pool().Count())
		}
	}
}

func TestFleetLeastLoadedLifecycle(t *testing.T) {
	const n = 24
	f := newFleet(t, Config{
		Shards:   2,
		QueueCap: 64,
		NewBooster: func(int) (*core.Booster, error) {
			return core.New(shardConfig())
		},
	})
	d, wg := consumeShards(t, f)
	f.Start()
	for i, item := range fleetItems(t, n) {
		shard, adm := f.Submit(item, uint64(i))
		if adm != AdmitOK {
			t.Fatalf("item %d admission %v on shard %d with empty queues", i, adm, shard)
		}
	}
	drainWatchdog(t, f)
	wg.Wait()

	if len(d.count) != n {
		t.Fatalf("delivered %d distinct items, want %d", len(d.count), n)
	}
	for seq, c := range d.count {
		if c != 1 {
			t.Fatalf("item %d delivered %d times", seq, c)
		}
		if !d.valid[seq] {
			t.Fatalf("item %d published invalid", seq)
		}
	}
	for _, s := range f.Shards() {
		if s.Shed() != 0 {
			t.Fatalf("shard %d shed %d with capacity to spare", s.ID(), s.Shed())
		}
	}

	snap := f.Snapshot()
	if len(snap.Shards) != 2 {
		t.Fatalf("rollup carries %d shard snapshots", len(snap.Shards))
	}
	if got := snap.Total.Counters["images_decoded_total"]; got != n {
		t.Fatalf("fleet images_decoded_total = %d, want %d", got, n)
	}
	var want int64
	for _, s := range snap.Shards {
		want += s.Counters["images_decoded_total"]
	}
	if snap.Total.Counters["images_decoded_total"] != want {
		t.Fatalf("rollup %d != shard sum %d", snap.Total.Counters["images_decoded_total"], want)
	}
	if q, ok := snap.Total.Queues["ingest_items"]; !ok || q.Cap != 128 {
		t.Fatalf("ingest_items rollup = %+v (want cap 2*64)", q)
	}
	if _, ok := snap.Total.Counters["fleet_stolen_out_total"]; !ok {
		t.Fatal("rollup missing fleet_stolen_out_total")
	}

	diag := f.Diagnose(nil)
	if diag == nil || len(diag.Shards) != 2 || diag.Summary == "" {
		t.Fatalf("diagnosis: %+v", diag)
	}
	assertShardPoolsBalanced(t, f)
}

// TestFleetHashAffinity: with hash placement, one key always lands on
// one shard. The fleet is never started, so admitted items just sit in
// the ingest queues where the test can see them.
func TestFleetHashAffinity(t *testing.T) {
	f := newFleet(t, Config{
		Shards:    4,
		Placement: PlacementHash,
		QueueCap:  32,
		NewBooster: func(int) (*core.Booster, error) {
			return core.New(shardConfig())
		},
	})
	items := fleetItems(t, 8)
	first, adm := f.Submit(items[0], 12345)
	if adm != AdmitOK {
		t.Fatalf("admission %v", adm)
	}
	for _, item := range items[1:] {
		shard, adm := f.Submit(item, 12345)
		if adm != AdmitOK || shard != first {
			t.Fatalf("key 12345 placed on shard %d (%v), affinity shard is %d", shard, adm, first)
		}
	}
	if got := f.Shards()[first].Queue().Len(); got != len(items) {
		t.Fatalf("affinity shard queue holds %d of %d", got, len(items))
	}
}

func TestFleetSubmitAfterDrain(t *testing.T) {
	f := newFleet(t, Config{
		Shards: 2,
		NewBooster: func(int) (*core.Booster, error) {
			return core.New(shardConfig())
		},
	})
	if err := f.Drain(); err != nil {
		t.Fatal(err)
	}
	item := fleetItems(t, 1)[0]
	shard, adm := f.Submit(item, 0)
	if adm != AdmitClosed || shard != 0 {
		t.Fatalf("post-drain submit: shard %d, admission %v", shard, adm)
	}
	// The refusal is on the books: it counts as a shed, attributed to
	// the routed shard, with the closed subset distinguishable.
	s := f.Shards()[shard]
	if s.Shed() != 1 || s.ShedClosed() != 1 {
		t.Fatalf("post-drain refusal not booked: shed %d, closed %d, want 1/1", s.Shed(), s.ShedClosed())
	}
	snap := s.Booster().Snapshot()
	if snap.Counters["serve_shed_total"] != 1 || snap.Counters["serve_shed_closed_total"] != 1 {
		t.Fatalf("post-drain refusal missing from counters: %v", snap.Counters)
	}
}

func TestFleetConfigValidation(t *testing.T) {
	mk := func(int) (*core.Booster, error) { return core.New(shardConfig()) }
	if _, err := New(Config{Shards: 0, NewBooster: mk}); err == nil {
		t.Fatal("0 shards accepted")
	}
	if _, err := New(Config{Shards: 2}); err == nil {
		t.Fatal("missing NewBooster accepted")
	}
	if _, err := New(Config{Shards: 2, Placement: "round-robin", NewBooster: mk}); err == nil {
		t.Fatal("unknown placement accepted")
	}
	if _, err := New(Config{Shards: 2, QueueCap: -1, NewBooster: mk}); err == nil {
		t.Fatal("negative queue capacity accepted")
	}
}

// TestFleetAdmissionShedsWhenFull: with the fleet stopped and every
// tiny queue full, Submit must shed within the grace period and count
// it on the routed shard.
func TestFleetAdmissionShedsWhenFull(t *testing.T) {
	f := newFleet(t, Config{
		Shards:   2,
		QueueCap: 1,
		Grace:    200 * time.Microsecond,
		NewBooster: func(int) (*core.Booster, error) {
			return core.New(shardConfig())
		},
	})
	items := fleetItems(t, 3)
	for i := 0; i < 2; i++ {
		if _, adm := f.Submit(items[i], uint64(i)); adm != AdmitOK {
			t.Fatalf("fill submit %d: %v", i, adm)
		}
	}
	shard, adm := f.Submit(items[2], 2)
	if adm != AdmitShed {
		t.Fatalf("admission %v with both queues full", adm)
	}
	if got := f.Shards()[shard].Shed(); got != 1 {
		t.Fatalf("shard %d shed counter = %d", shard, got)
	}
	snap := f.Snapshot()
	if got := snap.Total.Counters["serve_shed_total"]; got != 1 {
		t.Fatalf("fleet serve_shed_total = %d", got)
	}
}

// TestFleetQueueCapKnob drives the admission knob end to end: an
// effective cap below the physical queue sheds at the cap without
// waiting out the grace period, the knob is visible in telemetry, and
// the shed ledger reconciles offered = queued + shed across a drain —
// including the frames refused after the queues closed.
func TestFleetQueueCapKnob(t *testing.T) {
	f := newFleet(t, Config{
		Shards: 1,
		NewBooster: func(int) (*core.Booster, error) {
			return core.New(shardConfig())
		},
	})
	s := f.Shards()[0]
	if got := s.QueueCap(); got != 256 {
		t.Fatalf("default QueueCap = %d, want the physical 256", got)
	}
	s.SetQueueCap(4)
	if got := s.QueueCap(); got != 4 {
		t.Fatalf("QueueCap after retune = %d, want 4", got)
	}

	// Epochs deliberately not started: the queue cannot drain, so the
	// 5th item onward must shed at the effective cap.
	items := fleetItems(t, 12)
	var admitted, shed int
	for i := 0; i < 10; i++ {
		if _, adm := f.Submit(items[i], uint64(i)); adm == AdmitOK {
			admitted++
		} else if adm == AdmitShed {
			shed++
		}
	}
	if admitted != 4 || shed != 6 {
		t.Fatalf("admitted %d / shed %d, want 4 / 6 at effective cap 4", admitted, shed)
	}
	snap := s.Booster().Snapshot()
	if g := snap.Gauges["knob_queue_cap"]; g != 4 {
		t.Fatalf("knob_queue_cap gauge = %v, want 4", g)
	}
	if q := snap.Queues["ingest_items"]; q.Cap != 4 || q.Len != 4 {
		t.Fatalf("ingest_items probe = %+v, want len 4 / effective cap 4", q)
	}

	if err := f.Drain(); err != nil {
		t.Fatal(err)
	}
	for i := 10; i < 12; i++ {
		if _, adm := f.Submit(items[i], uint64(i)); adm != AdmitClosed {
			t.Fatalf("post-drain admission = %v, want AdmitClosed", adm)
		}
	}
	// Conservation: 12 offered = 4 queued + 6 cap sheds + 2 closed
	// refusals; the closed subset is distinguishable.
	if s.Shed() != 8 || s.ShedClosed() != 2 {
		t.Fatalf("shed ledger = %d total / %d closed, want 8 / 2", s.Shed(), s.ShedClosed())
	}

	// Clamps: the knob floors at 1 and cannot exceed the physical queue.
	s.SetQueueCap(0)
	if got := s.QueueCap(); got != 1 {
		t.Fatalf("QueueCap after 0 = %d, want 1", got)
	}
	s.SetQueueCap(1 << 20)
	if got := s.QueueCap(); got != 256 {
		t.Fatalf("QueueCap after overshoot = %d, want the physical 256", got)
	}
}
