// Cross-shard epoch replay: a fleet whose shards were built with one
// shared core.TieredCache (core.Config.SharedCache) can serve epochs
// 2+ straight from the cache tiers, every shard reading the shared RAM
// and NVMe tiers concurrently — the spill tier bought once, multiplied
// across the fleet.

package fleet

import (
	"errors"
	"fmt"
	"sync"

	"dlbooster/internal/core"
)

// SharedCacheFor builds the tier pair a fleet's shards share: a plain
// core.NewTieredCache wrapper that exists so callers wiring a fleet
// read "one cache, N shards" at the construction site. Pass the result
// as core.Config.SharedCache to every NewBooster the fleet factory
// builds.
func SharedCacheFor(cfg core.CacheConfig) (*core.TieredCache, error) {
	return core.NewTieredCache(cfg)
}

// ReplayShared serves one epoch from the shards' shared tiered cache:
// shard i replays the cache entries congruent to i modulo the shard
// count, all shards reading the shared tiers concurrently (the cache is
// concurrency-safe for replay; a spill-tier hit may promote on any
// shard). Batches surface on each shard's own Batches() queue, which
// the caller must be draining — exactly as during Start/Submit serving.
//
// Every shard must have been built over the same SharedCache; a fleet
// of private caches gets an error, not a skewed epoch. Replay errors
// wrap core.ErrCacheUnavailable with the cause (see docs/API.md).
func (f *Fleet) ReplayShared() error {
	cache := f.shards[0].b.Cache()
	if cache == nil {
		return core.ErrCacheDisabled
	}
	for _, s := range f.shards[1:] {
		if s.b.Cache() != cache {
			return fmt.Errorf("fleet: shard %d does not share shard 0's cache (build every Booster with the same core.Config.SharedCache)", s.id)
		}
	}
	errs := make([]error, len(f.shards))
	var wg sync.WaitGroup
	for i, s := range f.shards {
		wg.Add(1)
		go func(i int, s *Shard) {
			defer wg.Done()
			if err := s.b.ReplayCacheShard(i, len(f.shards)); err != nil {
				errs[i] = fmt.Errorf("shard %d replay: %w", i, err)
			}
		}(i, s)
	}
	wg.Wait()
	return errors.Join(errs...)
}
