// Package fleet shards the serving front end into N independent
// Booster shards — each with its own FPGA boards, HugePage arena and
// admission-controlled ingest queue — behind a router that places work
// by consistent hash or least-loaded queue, with cross-shard work
// stealing when a shard's boards degrade to the CPU fallback path.
//
// The paper's scaling lever is "plugging more FPGA devices" (§5.3);
// a fleet is the serving-side form of that lever: preprocessing
// capacity scales with shard count, independent of any single
// pipeline's limits, and one shard's board failures degrade that shard
// alone while the stealer drains its backlog into healthy shards. The
// invariant everything here defends is zero loss: every admitted item
// is decoded by exactly one shard (or sheds with a status reply),
// through degradation, stealing and drain — the property the chaos
// tests assert.
package fleet

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dlbooster/internal/core"
	"dlbooster/internal/metrics"
	"dlbooster/internal/queue"
)

// Placement selects how Submit routes items to shards.
type Placement string

const (
	// PlacementLeastLoaded routes each item to the shard with the
	// shortest ingest queue — maximum utilisation, no affinity.
	PlacementLeastLoaded Placement = "least-loaded"
	// PlacementHash routes by consistent hash of the caller's key
	// (e.g. client id), so a client's frames stay on one shard while
	// the ring is stable. Degraded shards leave the ring — new keys
	// relocate, and only theirs — and Submit falls back to
	// least-loaded when no healthy shard remains.
	PlacementHash Placement = "hash"
)

// Admission is the outcome of Fleet.Submit, mirroring the serving
// front door's contract: every item is queued, shed, or refused
// because the fleet is draining.
type Admission int

const (
	// AdmitOK means the item entered a shard's ingest queue and will
	// be decoded by exactly one shard.
	AdmitOK Admission = iota
	// AdmitShed means admission control refused the item: the routed
	// shard's queue stayed full past the grace period.
	AdmitShed
	// AdmitClosed means the fleet is draining; no new work is taken.
	// The refusal is still booked in the routed shard's serve_shed_total
	// (and serve_shed_closed_total), so offered = decoded + shed holds
	// through shutdown.
	AdmitClosed
)

// Config sizes a fleet. NewBooster is the only required field beyond
// Shards: the fleet owns routing, queues and stealing, while the
// caller decides how each shard's Booster is built (registry, boards,
// fault injection, resilience policy).
type Config struct {
	// Shards is the number of independent Booster shards (≥ 1).
	Shards int
	// Placement is the routing policy (default PlacementLeastLoaded).
	Placement Placement
	// QueueCap bounds each shard's ingest queue (default 256).
	QueueCap int
	// Grace is the backpressure window Submit waits on a full queue
	// before shedding (default 1ms).
	Grace time.Duration
	// StealInterval is the stealer's sweep period (default 500µs).
	StealInterval time.Duration
	// Replicas is the consistent-hash ring's virtual nodes per shard
	// (default 128; only used with PlacementHash).
	Replicas int
	// NewBooster builds shard i's Booster. Required.
	NewBooster func(shard int) (*core.Booster, error)
}

func (c *Config) normalize() error {
	if c.Shards < 1 {
		return fmt.Errorf("fleet: %d shards", c.Shards)
	}
	if c.NewBooster == nil {
		return errors.New("fleet: NewBooster factory is required")
	}
	switch c.Placement {
	case "":
		c.Placement = PlacementLeastLoaded
	case PlacementLeastLoaded, PlacementHash:
	default:
		return fmt.Errorf("fleet: unknown placement %q", c.Placement)
	}
	if c.QueueCap == 0 {
		c.QueueCap = 256
	}
	if c.QueueCap < 1 {
		return fmt.Errorf("fleet: queue capacity %d", c.QueueCap)
	}
	if c.Grace <= 0 {
		c.Grace = time.Millisecond
	}
	if c.StealInterval <= 0 {
		c.StealInterval = 500 * time.Microsecond
	}
	if c.Replicas <= 0 {
		c.Replicas = 128
	}
	return nil
}

// Shard is one independent serving pipeline: a Booster plus its
// bounded ingest queue and admission accounting. The caller wires the
// downstream (dispatcher, engine) to Booster().Batches() exactly as it
// would for a single pipeline.
type Shard struct {
	id    int
	b     *core.Booster
	items *queue.Queue[core.Item]
	grace time.Duration

	// effCap is the admission knob: the effective ingest cap, at most
	// the physical queue capacity. Below the physical cap, admit sheds
	// as soon as the queue reaches it — no grace wait — which is how
	// the autotuner trades queueing delay away under overload.
	effCap atomic.Int64

	shed         metrics.Counter
	shedClosed   metrics.Counter
	stolenOut    metrics.Counter
	stolenIn     metrics.Counter
	overloadOnce sync.Once
	unrung       sync.Once // rings the shard off the hash ring once
}

// ID returns the shard's index in the fleet.
func (s *Shard) ID() int { return s.id }

// Booster returns the shard's pipeline backend.
func (s *Shard) Booster() *core.Booster { return s.b }

// Queue exposes the shard's ingest queue, for tests and probes.
func (s *Shard) Queue() *queue.Queue[core.Item] { return s.items }

// Shed returns how many items this shard's admission control refused —
// queue-full sheds plus refusals that arrived after the queue closed.
func (s *Shard) Shed() int64 { return s.shed.Value() }

// ShedClosed returns the subset of Shed that was refused because the
// shard was draining (closed ingest), not because the queue was full.
func (s *Shard) ShedClosed() int64 { return s.shedClosed.Value() }

// SetQueueCap retunes the shard's effective ingest cap — the admission
// knob. Values clamp to [1, physical capacity]; the physical queue is
// never reallocated, admission just refuses earlier. Re-read at every
// admission decision, so a retune applies to the next Submit. Safe
// from any goroutine.
func (s *Shard) SetQueueCap(n int) {
	if n < 1 {
		n = 1
	}
	if c := s.items.Cap(); n > c {
		n = c
	}
	s.effCap.Store(int64(n))
}

// QueueCap returns the effective ingest cap (the physical capacity
// until the first SetQueueCap).
func (s *Shard) QueueCap() int { return int(s.effCap.Load()) }

// StolenOut returns how many queued items the stealer moved off this
// shard after its boards degraded.
func (s *Shard) StolenOut() int64 { return s.stolenOut.Value() }

// StolenIn returns how many items this shard absorbed from degraded
// peers.
func (s *Shard) StolenIn() int64 { return s.stolenIn.Value() }

// admit pushes the item into this shard's queue with one grace period
// of backpressure — the same front-door contract dlserve's single
// pipeline had, now per shard.
func (s *Shard) admit(item core.Item) Admission {
	if s.items.Closed() {
		// Classify before the cap check: a drain-time refusal is a
		// closed refusal even when the backlog also sits at the cap.
		return s.refuseClosed()
	}
	if c := int(s.effCap.Load()); c < s.items.Cap() && s.items.Len() >= c {
		// The admission knob sits below the physical queue: shed
		// immediately at the effective cap instead of waiting out the
		// grace period against capacity that is deliberately off-limits.
		s.noteShed()
		return AdmitShed
	}
	if ok, err := s.items.TryPush(item); err != nil {
		return s.refuseClosed()
	} else if ok {
		return AdmitOK
	}
	ok, err := s.items.PushTimeout(item, s.grace)
	if err != nil {
		return s.refuseClosed()
	}
	if !ok {
		s.noteShed()
		return AdmitShed
	}
	return AdmitOK
}

// noteShed books one queue-full shed and rings the one-shot overload
// event.
func (s *Shard) noteShed() {
	s.shed.Add(1)
	s.overloadOnce.Do(func() {
		s.b.Registry().Event("ingest_overloaded",
			fmt.Sprintf("shard %d ingest queue full (%d items); shedding with status frames", s.id, s.QueueCap()))
	})
}

// refuseClosed books one draining-time refusal: the frame arrived after
// this shard's ingest closed. It counts in serve_shed_total — the
// client was refused either way — with serve_shed_closed_total keeping
// the subset distinguishable, so offered = decoded + shed reconciles
// across a shutdown instead of leaking the grace-window frames.
func (s *Shard) refuseClosed() Admission {
	s.shed.Add(1)
	s.shedClosed.Add(1)
	return AdmitClosed
}

// instrument hangs the shard's fleet-level probes off its Booster's
// registry, so per-shard snapshots (and the fleet rollup) carry them.
func (s *Shard) instrument() {
	r := s.b.Registry()
	// The queue probe reports the effective (knob) cap, so occupancy
	// ratios — what the ingest-overloaded verdict reads — track the
	// admission the clients actually experience.
	r.RegisterQueue("ingest_items", s.items.Len, s.QueueCap)
	r.RegisterCounterFunc("serve_shed_total", s.shed.Value)
	r.RegisterCounterFunc("serve_shed_closed_total", s.shedClosed.Value)
	r.RegisterCounterFunc("fleet_stolen_out_total", s.stolenOut.Value)
	r.RegisterCounterFunc("fleet_stolen_in_total", s.stolenIn.Value)
	r.RegisterGauge("knob_queue_cap", func() float64 { return float64(s.QueueCap()) })
}

// Fleet is N Booster shards behind one Submit front door, with the
// stealer rebalancing degraded shards' backlogs and Snapshot rolling
// per-shard telemetry into a metrics.FleetSnapshot.
type Fleet struct {
	cfg    Config
	shards []*Shard
	ring   *Ring

	steals metrics.Counter

	stealStop chan struct{}
	stealDone chan struct{}
	epochWG   sync.WaitGroup

	mu       sync.Mutex
	errs     []error
	started  bool
	samplers []*metrics.Sampler

	drainOnce sync.Once
	closeOnce sync.Once
}

// New builds the shards (via cfg.NewBooster) and the router. Call
// Start to launch the per-shard epochs and the stealer, then Submit;
// Drain stops intake and waits for every accepted item to settle;
// Close tears the Boosters down.
func New(cfg Config) (*Fleet, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	f := &Fleet{
		cfg:       cfg,
		ring:      NewRing(cfg.Shards, cfg.Replicas),
		stealStop: make(chan struct{}),
		stealDone: make(chan struct{}),
	}
	for i := 0; i < cfg.Shards; i++ {
		b, err := cfg.NewBooster(i)
		if err != nil {
			for _, s := range f.shards {
				s.b.Close()
			}
			return nil, fmt.Errorf("fleet: building shard %d: %w", i, err)
		}
		s := &Shard{id: i, b: b, items: queue.New[core.Item](cfg.QueueCap), grace: cfg.Grace}
		s.effCap.Store(int64(cfg.QueueCap))
		s.instrument()
		f.shards = append(f.shards, s)
	}
	return f, nil
}

// Shards returns the fleet's shards in id order.
func (f *Fleet) Shards() []*Shard { return f.shards }

// Steals returns the total items moved between shards by the stealer.
func (f *Fleet) Steals() int64 { return f.steals.Value() }

// Start launches one epoch goroutine per shard — each driving its
// Booster off its own ingest queue — and the stealer. The caller must
// already be draining every shard's Batches() queue, or pool
// backpressure will stall the epochs.
func (f *Fleet) Start() {
	f.mu.Lock()
	if f.started {
		f.mu.Unlock()
		return
	}
	f.started = true
	f.mu.Unlock()
	for _, s := range f.shards {
		f.epochWG.Add(1)
		go func(s *Shard) {
			defer f.epochWG.Done()
			if err := s.b.RunEpoch(core.CollectorFromQueue(s.items)); err != nil {
				f.noteErr(fmt.Errorf("shard %d epoch: %w", s.id, err))
			}
			s.b.CloseBatches()
		}(s)
	}
	go f.stealLoop()
}

func (f *Fleet) noteErr(err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.errs = append(f.errs, err)
}

// Submit routes one item to a shard and admits it — the fleet's front
// door. key feeds the consistent-hash placement (use a stable client
// identity for affinity); least-loaded placement ignores it. The
// returned shard index is where the item landed — or, for AdmitClosed,
// the shard the refusal was booked against, so the shed ledger stays
// per-shard even through a drain.
func (f *Fleet) Submit(item core.Item, key uint64) (int, Admission) {
	s := f.route(key)
	if s == nil {
		// Draining: every ingest queue is closed. The refusal still
		// lands on a shard's books — attributed by key — so
		// offered = decoded + shed reconciles across shutdown.
		if len(f.shards) == 0 {
			return -1, AdmitClosed
		}
		s = f.shards[int(key%uint64(len(f.shards)))]
		s.refuseClosed()
		return s.id, AdmitClosed
	}
	return s.id, s.admit(item)
}

// route picks the target shard for a key under the configured
// placement. Degraded shards are rung off the hash ring on first
// sight, so hash placement stops feeding them while the stealer
// drains what they already hold.
func (f *Fleet) route(key uint64) *Shard {
	if f.cfg.Placement == PlacementHash {
		for _, s := range f.shards {
			if s.b.Degraded() {
				s.unrung.Do(func() { f.ring.Remove(s.id) })
			}
		}
		if id, ok := f.ring.Lookup(key); ok {
			return f.shards[id]
		}
		// Every shard degraded: fall through to least-loaded so the
		// fleet keeps serving on CPU decode rather than refusing work.
	}
	return f.leastLoaded(nil)
}

// leastLoaded returns the shard with the shortest ingest queue,
// skipping `except` and closed queues; nil when none qualifies.
func (f *Fleet) leastLoaded(except *Shard) *Shard {
	var best *Shard
	bestLen := 0
	for _, s := range f.shards {
		if s == except || s.items.Closed() {
			continue
		}
		if l := s.items.Len(); best == nil || l < bestLen {
			best, bestLen = s, l
		}
	}
	return best
}

// Snapshot rolls every shard's telemetry into one FleetSnapshot:
// counter sums, merged stage histograms, summed queue depths, and the
// per-shard snapshots the fleet doctor and the per-shard trace tracks
// read. Booster registries always answer, so no entry is nil.
func (f *Fleet) Snapshot() *metrics.FleetSnapshot {
	snaps := make([]*metrics.PipelineSnapshot, len(f.shards))
	for i, s := range f.shards {
		snaps[i] = s.b.Snapshot()
	}
	return metrics.MergeSnapshots(snaps)
}

// Diagnose runs the fleet doctor over the current rollup (and an
// optional previous one for rate evidence): per-shard verdicts plus
// the spread sentence — "shard 3 is decoder-bound, the rest are
// healthy".
func (f *Fleet) Diagnose(prev *metrics.FleetSnapshot) *metrics.FleetDiagnosis {
	return metrics.DiagnoseFleet(f.Snapshot(), prev)
}

// StartSampler launches one windowed-telemetry sampler per shard, each
// recording that shard's registry into its own History ring — the same
// per-shard-then-merge shape Snapshot uses, so shard histories roll up
// without cross-shard lock contention. Idempotent; StopSampler joins
// every sampling goroutine.
func (f *Fleet) StartSampler(cfg metrics.SamplerConfig) {
	f.mu.Lock()
	if f.samplers == nil {
		for _, s := range f.shards {
			f.samplers = append(f.samplers, metrics.NewSampler(s.b.Registry(), cfg))
		}
	}
	samplers := f.samplers
	f.mu.Unlock()
	for _, sm := range samplers {
		sm.Start()
	}
}

// StopSampler stops and joins every shard sampler (no-op when
// StartSampler was never called). The histories stay readable.
func (f *Fleet) StopSampler() {
	f.mu.Lock()
	samplers := f.samplers
	f.mu.Unlock()
	for _, sm := range samplers {
		sm.Stop()
	}
}

// Histories returns the per-shard telemetry rings in shard order (nil
// entries when StartSampler was never called).
func (f *Fleet) Histories() []*metrics.History {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]*metrics.History, len(f.shards))
	for i, sm := range f.samplers {
		out[i] = sm.History()
	}
	return out
}

// History merges the per-shard rings into one fleet history —
// MergeHistories aligning samples from the newest end — the window the
// fleet scorecard and trend doctor read. Nil before StartSampler.
func (f *Fleet) History() *metrics.History {
	return metrics.MergeHistories(f.Histories())
}

// DiagnoseTrend runs the trend-aware doctor over the merged fleet
// history and every shard's own — "the fleet is decoder-bound
// sustained; only shard 2 flaps". Nil until the samplers have at least
// two samples.
func (f *Fleet) DiagnoseTrend() *metrics.FleetTrendDiagnosis {
	return metrics.DiagnoseFleetHistory(f.Histories())
}

// Drain shuts intake down in the order the zero-loss invariant needs:
// stop the stealer first (so no item is ever in the stealer's hands
// when a queue closes), then close every ingest queue (Submit starts
// returning AdmitClosed; epochs seal their final batches and close
// their Full queues), then wait for every epoch to settle every
// accepted item. It returns the joined per-shard epoch errors.
func (f *Fleet) Drain() error {
	f.drainOnce.Do(func() {
		// Join the telemetry samplers first: each records a final sample,
		// so the histories cover the run right up to the drain.
		f.StopSampler()
		f.mu.Lock()
		started := f.started
		f.mu.Unlock()
		if started {
			close(f.stealStop)
			<-f.stealDone
		}
		for _, s := range f.shards {
			s.items.Close()
		}
		if started {
			f.epochWG.Wait()
		}
	})
	f.mu.Lock()
	defer f.mu.Unlock()
	return errors.Join(f.errs...)
}

// Close drains (if not already drained) and tears every shard's
// Booster down.
func (f *Fleet) Close() {
	f.closeOnce.Do(func() {
		_ = f.Drain()
		for _, s := range f.shards {
			s.b.Close()
		}
	})
}
