package fleet

// Chaos tests for the fleet: seeded fault injection kills the boards on
// one shard mid-load, and the assertions are the zero-loss contract —
// every accepted frame is published by exactly one shard (no loss, no
// duplicates), sheds are counted, the degraded shard's backlog is
// stolen into healthy shards, and no buffer leaks survive the drain.

import (
	"testing"
	"time"

	"dlbooster/internal/core"
	"dlbooster/internal/faults"
	"dlbooster/internal/fpga"
)

// degradeShard runs a throwaway epoch against a booster whose injector
// fails every command, flipping it into degraded mode deterministically
// (FallbackAfter 1 → first final failure degrades; the rescue decode
// keeps the items).
func degradeShard(t *testing.T, s *Shard) {
	t.Helper()
	items := fleetItems(t, 4)
	done := make(chan error, 1)
	go func() { done <- s.Booster().RunEpoch(core.CollectorFromItems(items)) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("degrade epoch: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("degrade epoch deadlocked")
	}
	s.Booster().CloseBatches()
	for {
		batch, err := s.Booster().Batches().Pop()
		if err != nil {
			break
		}
		if err := s.Booster().RecycleBatch(batch); err != nil {
			t.Fatal(err)
		}
	}
	if !s.Booster().Degraded() {
		t.Fatal("shard did not degrade under a 100% failure injector")
	}
}

// TestStealerDrainsDegradedShard exercises the steal mechanism in
// isolation, with no epochs racing it: a deterministically degraded
// shard's queued backlog must move, in order and in full, to the
// healthy shard, and must stay put when the healthy shard has no room.
func TestStealerDrainsDegradedShard(t *testing.T) {
	f := newFleet(t, Config{
		Shards:   2,
		QueueCap: 32,
		NewBooster: func(shard int) (*core.Booster, error) {
			cfg := shardConfig()
			if shard == 0 {
				cfg.FPGA = fpga.Config{Inject: faults.New(faults.Config{FailEvery: 1, Seed: 7})}
				cfg.Resilience = core.Resilience{FallbackAfter: 1}
			}
			return core.New(cfg)
		},
	})
	src, dst := f.Shards()[0], f.Shards()[1]
	degradeShard(t, src)

	const backlog = 10
	for _, item := range fleetItems(t, backlog) {
		if err := src.Queue().Push(item); err != nil {
			t.Fatal(err)
		}
	}
	if moved := f.stealOnce(); moved != backlog {
		t.Fatalf("stole %d of %d queued items", moved, backlog)
	}
	if src.Queue().Len() != 0 || dst.Queue().Len() != backlog {
		t.Fatalf("queues after steal: src %d, dst %d", src.Queue().Len(), dst.Queue().Len())
	}
	// Order is preserved: stealing pops and pushes FIFO.
	for want := 0; want < backlog; want++ {
		item, ok, err := dst.Queue().TryPop()
		if err != nil || !ok || item.Meta.Seq != want {
			t.Fatalf("stolen item %d: seq %d ok=%v err=%v", want, item.Meta.Seq, ok, err)
		}
	}
	if src.StolenOut() != backlog || dst.StolenIn() != backlog || f.Steals() != backlog {
		t.Fatalf("steal counters: out=%d in=%d total=%d, want %d each",
			src.StolenOut(), dst.StolenIn(), f.Steals(), backlog)
	}

	// No healthy target with room → nothing moves, nothing is lost.
	for _, item := range fleetItems(t, dst.Queue().Cap()) {
		if ok, err := dst.Queue().TryPush(item); err != nil || !ok {
			t.Fatalf("filling dst: ok=%v err=%v", ok, err)
		}
	}
	for _, item := range fleetItems(t, 3) {
		if err := src.Queue().Push(item); err != nil {
			t.Fatal(err)
		}
	}
	if moved := f.stealOnce(); moved != 0 {
		t.Fatalf("stole %d items with no healthy target", moved)
	}
	if src.Queue().Len() != 3 {
		t.Fatalf("src backlog %d after refused steal, want 3 (zero loss)", src.Queue().Len())
	}
}

// TestFleetChaosZeroLossSteal is the acceptance scenario: a seeded
// injector wedges every board on shard 0 mid-load (commands stop
// finishing after 2 ops). The shard's command timeouts expire, it
// degrades to CPU decode, hash placement rings it off, and the stealer
// drains its backlog into shard 1 — and through all of it every
// accepted frame is published exactly once with a valid payload.
func TestFleetChaosZeroLossSteal(t *testing.T) {
	const n = 96
	f := newFleet(t, Config{
		Shards:        2,
		Placement:     PlacementHash,
		QueueCap:      32,
		Grace:         500 * time.Microsecond,
		StealInterval: 50 * time.Microsecond,
		NewBooster: func(shard int) (*core.Booster, error) {
			cfg := shardConfig()
			if shard == 0 {
				cfg.FPGA = fpga.Config{Inject: faults.New(faults.Config{StuckAfter: 2, Seed: 1})}
				cfg.Resilience = core.Resilience{
					CmdTimeout:    40 * time.Millisecond,
					FallbackAfter: 2,
				}
			}
			return core.New(cfg)
		},
	})
	d, wg := consumeShards(t, f)
	f.Start()

	items := fleetItems(t, n)
	admitted := map[int]bool{}
	shed := 0
	for i, item := range items {
		shard, adm := f.Submit(item, uint64(i))
		switch adm {
		case AdmitOK:
			admitted[item.Meta.Seq] = true
		case AdmitShed:
			shed++
			if got := f.Shards()[shard].Shed(); got < 1 {
				t.Fatalf("shard %d shed an item but counts %d", shard, got)
			}
		default:
			t.Fatalf("item %d: admission %v before drain", i, adm)
		}
	}
	if len(admitted)+shed != n {
		t.Fatalf("admission accounting: %d admitted + %d shed != %d", len(admitted), shed, n)
	}

	// The wedged shard must degrade once its command timeouts expire;
	// wait for the flip so the steal window provably opened before the
	// drain begins.
	deadline := time.Now().Add(10 * time.Second)
	for !f.Shards()[0].Booster().Degraded() {
		if time.Now().After(deadline) {
			t.Fatal("shard 0 never degraded under the stuck-board injector")
		}
		time.Sleep(time.Millisecond)
	}

	// Post-flip, shard 0's own CPU fallback races the stealer for the
	// leftover backlog and can empty the queue before the stealer's next
	// tick. A real wedged shard keeps receiving its affinity traffic, so
	// model that: top its queue back up with fresh frames (unique seqs,
	// same zero-loss accounting) until the stealer provably moved one.
	nextSeq := n
	stealDeadline := time.Now().Add(10 * time.Second)
	for f.Steals() == 0 {
		if time.Now().After(stealDeadline) {
			t.Fatal("no items were stolen off the degraded shard")
		}
		for _, item := range fleetItems(t, 8) {
			if f.Steals() > 0 {
				break
			}
			item.Meta.Seq = nextSeq
			pushed, err := f.Shards()[0].Queue().TryPush(item)
			if err != nil {
				t.Fatalf("top-up push: %v", err)
			}
			if pushed {
				admitted[item.Meta.Seq] = true
				nextSeq++
			}
		}
		time.Sleep(100 * time.Microsecond)
	}

	drainWatchdog(t, f)
	wg.Wait()

	// Zero loss, zero duplicates: every admitted frame published exactly
	// once, every published slot valid (failed commands are rescued by
	// the CPU fallback, not dropped).
	if len(d.count) != len(admitted) {
		t.Fatalf("published %d distinct frames, admitted %d", len(d.count), len(admitted))
	}
	for seq := range admitted {
		switch c := d.count[seq]; {
		case c == 0:
			t.Fatalf("admitted frame %d was lost", seq)
		case c > 1:
			t.Fatalf("admitted frame %d published %d times", seq, c)
		}
		if !d.valid[seq] {
			t.Fatalf("frame %d published with an invalid slot", seq)
		}
	}
	var totalShed int64
	for _, s := range f.Shards() {
		totalShed += s.Shed()
	}
	if totalShed != int64(shed) {
		t.Fatalf("shed counters %d, client saw %d", totalShed, shed)
	}

	// The steal path fired and drained the degraded shard.
	if f.Steals() == 0 {
		t.Fatal("no items were stolen off the degraded shard")
	}
	if out, in := f.Shards()[0].StolenOut(), f.Shards()[1].StolenIn(); out != in || out != f.Steals() {
		t.Fatalf("steal counters disagree: out=%d in=%d total=%d", out, in, f.Steals())
	}
	if l := f.Shards()[0].Queue().Len(); l != 0 {
		t.Fatalf("degraded shard still queues %d items after drain", l)
	}
	if !f.Shards()[0].Booster().Degraded() || f.Shards()[1].Booster().Degraded() {
		t.Fatal("degradation did not stay confined to shard 0")
	}

	// The rollup tells the story: steals visible fleet-wide, and the
	// degraded gauge counts exactly one shard.
	snap := f.Snapshot()
	if got := snap.Total.Counters["fleet_stolen_out_total"]; got != f.Steals() {
		t.Fatalf("rollup stolen_out %d, fleet counted %d", got, f.Steals())
	}
	if got := snap.Total.Gauges["degraded"]; got != 1 {
		t.Fatalf("rollup degraded gauge %v, want 1", got)
	}
	assertShardPoolsBalanced(t, f)
}
