// The consistent-hash ring behind PlacementHash. Each shard owns a
// fixed set of virtual nodes whose positions depend only on (shard,
// replica) — never on ring membership — so removing a shard relocates
// exactly the keys that shard owned and nothing else (the property the
// fuzz test asserts), and adding it back restores the original
// placement. Lookups binary-search the sorted point list; membership
// changes rebuild it, which at serving scale (shards × replicas
// points, changes only on degradation) costs nothing measurable.

package fleet

import (
	"sort"
	"sync"
)

// Ring is a consistent-hash ring over shard ids [0, shards).
// All methods are safe for concurrent use.
type Ring struct {
	mu       sync.RWMutex
	shards   int
	replicas int
	live     map[int]bool
	points   []ringPoint // sorted by hash
}

type ringPoint struct {
	hash  uint64
	shard int
}

// NewRing builds a ring with every shard live and `replicas` virtual
// nodes per shard.
func NewRing(shards, replicas int) *Ring {
	if shards < 1 {
		panic("fleet: ring needs at least one shard")
	}
	if replicas < 1 {
		replicas = 1
	}
	r := &Ring{shards: shards, replicas: replicas, live: make(map[int]bool, shards)}
	for i := 0; i < shards; i++ {
		r.live[i] = true
	}
	r.rebuild()
	return r
}

// splitmix64 is the point and key scrambler: cheap, stateless, and
// well-distributed even for sequential inputs (Steele et al., the
// generator behind Java's SplittableRandom).
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// pointHash positions one virtual node. It depends only on the shard
// and replica indices, which is what makes membership changes minimal:
// surviving shards' points never move.
func pointHash(shard, replica int) uint64 {
	return splitmix64(splitmix64(uint64(shard)+1)<<32 ^ uint64(replica))
}

func (r *Ring) rebuild() {
	pts := make([]ringPoint, 0, len(r.live)*r.replicas)
	for shard := range r.live {
		for rep := 0; rep < r.replicas; rep++ {
			pts = append(pts, ringPoint{hash: pointHash(shard, rep), shard: shard})
		}
	}
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].hash != pts[j].hash {
			return pts[i].hash < pts[j].hash
		}
		return pts[i].shard < pts[j].shard
	})
	r.points = pts
}

// Lookup places a key on its owning live shard. ok is false when no
// shard is live.
func (r *Ring) Lookup(key uint64) (shard int, ok bool) {
	h := splitmix64(key)
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return 0, false
	}
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap: the ring is circular
	}
	return r.points[i].shard, true
}

// Remove takes a shard out of the ring (idempotent). Only keys the
// departed shard owned relocate; everyone else's placement is
// untouched.
func (r *Ring) Remove(shard int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.live[shard] {
		return
	}
	delete(r.live, shard)
	r.rebuild()
}

// Add restores a shard to the ring (idempotent), reclaiming exactly
// the keys its virtual nodes own.
func (r *Ring) Add(shard int) {
	if shard < 0 || shard >= r.shards {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.live[shard] {
		return
	}
	r.live[shard] = true
	r.rebuild()
}

// Live returns the live shard ids in ascending order.
func (r *Ring) Live() []int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]int, 0, len(r.live))
	for id := range r.live {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}
