// Package control is the adaptive SLO autotuner: a feedback controller
// that reads the windowed telemetry history (internal/metrics.History),
// judges it against an SLO spec, and actuates the pipeline's three
// runtime-tunable knobs — the dynamic-batching deadline, the fractional
// FPGA/CPU decode split, and the admission (effective ingest cap) —
// to hold the SLO under shifting load instead of serving a static
// config tuned for yesterday's traffic.
//
// The control loop is deliberately conservative. Every decision passes
// three gates before a knob moves: the evaluation window must hold
// enough samples to mean anything, the trend doctor must not be
// reporting a FLAPPING verdict (load sitting at a capacity knee, where
// steering would amplify the oscillation), and a cooldown of full
// windows must have elapsed since the last retune (so each actuation
// is judged on settled evidence, not its own transient). Inside the
// gates a small deadband around attainment 1.0 keeps the controller
// from chasing noise.
//
// Every decision — hold or retune — is visible: counters for
// decisions/retunes/holds, a gauge for the remaining cooldown, and a
// registry trace event per retune carrying the knob deltas. docs/
// CONTROL.md is the operator's guide.
package control

import (
	"time"
)

// Knobs is one pipeline's runtime-tunable operating point: the three
// actuation targets of the controller, read and applied atomically as
// a block so a decision never interleaves with another writer's.
type Knobs struct {
	// CPUShare is the fractional FPGA/CPU decode split in [0,1]
	// (core.Booster.SetCPUShare).
	CPUShare float64
	// BatchTimeout is the dynamic-batching deadline
	// (core.Booster.SetBatchTimeout); 0 = strict batches, and the
	// controller leaves a strict-batching pipeline's deadline alone.
	BatchTimeout time.Duration
	// QueueCap is the effective admission cap (fleet.Shard.SetQueueCap
	// or dlserve's ingest); 0 = the plant has no admission knob.
	QueueCap int
}

// BoosterKnobs is the decode-side knob block — satisfied by
// *core.Booster (and anything embedding it, e.g. backends.DLBooster)
// without this package importing core.
type BoosterKnobs interface {
	BatchTimeout() time.Duration
	SetBatchTimeout(time.Duration)
	CPUShare() float64
	SetCPUShare(float64)
}

// AdmissionKnobs is the front-door knob — satisfied by *fleet.Shard
// and dlserve's ingest queue.
type AdmissionKnobs interface {
	QueueCap() int
	SetQueueCap(int)
}

// Plant is what a Controller actuates: the current knob block and the
// atomic application of a new one. Implementations must be safe to
// call concurrently with the pipeline serving.
type Plant interface {
	Knobs() Knobs
	Apply(Knobs)
}

// PipelinePlant adapts one pipeline's knob surfaces to the Plant
// interface: a Booster's decode knobs plus an optional admission knob
// (nil Admission = the controller never touches admission).
type PipelinePlant struct {
	Booster   BoosterKnobs
	Admission AdmissionKnobs
}

// Knobs reads the pipeline's current operating point.
func (p PipelinePlant) Knobs() Knobs {
	k := Knobs{
		CPUShare:     p.Booster.CPUShare(),
		BatchTimeout: p.Booster.BatchTimeout(),
	}
	if p.Admission != nil {
		k.QueueCap = p.Admission.QueueCap()
	}
	return k
}

// Apply actuates the knob block. Each setter is individually atomic
// and clamps its own range, so a concurrent reader sees either the old
// or the new value of each knob, never garbage.
func (p PipelinePlant) Apply(k Knobs) {
	p.Booster.SetCPUShare(k.CPUShare)
	p.Booster.SetBatchTimeout(k.BatchTimeout)
	if p.Admission != nil && k.QueueCap > 0 {
		p.Admission.SetQueueCap(k.QueueCap)
	}
}
