package control

import (
	"math"
	"strings"
	"testing"
	"time"

	"dlbooster/internal/metrics"
	"dlbooster/internal/simtime"
)

// fakePlant is a knob block with no pipeline behind it.
type fakePlant struct {
	k       Knobs
	applies []Knobs
}

func (p *fakePlant) Knobs() Knobs  { return p.k }
func (p *fakePlant) Apply(k Knobs) { p.k = k; p.applies = append(p.applies, k) }

// synth fabricates the cumulative telemetry a sampler would record, so
// controller tests exercise the real History → SLO scorecard → trend
// doctor stack with virtual timestamps instead of a live pipeline.
type synth struct {
	hist    *metrics.History
	t0      time.Time
	decoded int64
	shed    int64
	count   int
}

func newSynth(capacity int) *synth {
	return &synth{
		hist: metrics.NewHistory(capacity),
		t0:   time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC),
	}
}

// sample records one cumulative snapshot at virtual time at, after an
// interval that decoded decodedInc and shed shedInc frames with the
// given batch_e2e p99. The queue probes are shaped so the bottleneck
// doctor reads "ingest-overloaded" whenever the interval shed (or the
// ingest queue sits at capacity) and "healthy" otherwise.
func (s *synth) sample(at simtime.Time, decodedInc, shedInc int64, p99Ms float64, ingest metrics.QueueDepth) {
	s.decoded += decodedInc
	s.shed += shedInc
	s.count += int(decodedInc)
	snap := &metrics.PipelineSnapshot{
		TakenAt:       s.t0.Add(time.Duration(at)),
		UptimeSeconds: at.Seconds(),
		Counters: map[string]int64{
			"images_decoded_total": s.decoded,
			"serve_shed_total":     s.shed,
		},
		Gauges: map[string]float64{},
		Stages: map[string]metrics.Summary{
			metrics.StageBatchE2E: {
				Count: s.count, Mean: p99Ms / 2, P50: p99Ms / 2,
				P95: p99Ms * 0.9, P99: p99Ms, Min: p99Ms / 4, Max: p99Ms,
			},
		},
		Queues: map[string]metrics.QueueDepth{
			"full_batch":   {Len: 0, Cap: 4},
			"trans0_full":  {Len: 0, Cap: 8},
			"ingest_items": ingest,
		},
	}
	s.hist.Record(snap)
}

func mustSLO(t *testing.T, spec string) *metrics.SLO {
	t.Helper()
	slo, err := metrics.ParseSLO(spec)
	if err != nil {
		t.Fatalf("ParseSLO(%q): %v", spec, err)
	}
	return slo
}

func TestResolveLimitsDefaults(t *testing.T) {
	slo := mustSLO(t, "tput=900,p99ms=200")
	base := Knobs{BatchTimeout: 8 * time.Millisecond, QueueCap: 64}
	l := ResolveLimits(Limits{}, base, slo)
	if l.MinBatchTimeout != time.Millisecond {
		t.Fatalf("MinBatchTimeout = %v, want baseline/8 = 1ms", l.MinBatchTimeout)
	}
	if l.MaxBatchTimeout != 100*time.Millisecond {
		t.Fatalf("MaxBatchTimeout = %v, want half the p99 budget = 100ms", l.MaxBatchTimeout)
	}
	if l.MinQueueCap != 8 || l.MaxQueueCap != 64 {
		t.Fatalf("queue-cap limits = [%d, %d], want [8, 64]", l.MinQueueCap, l.MaxQueueCap)
	}
	if l.MaxCPUShare != 0.5 {
		t.Fatalf("MaxCPUShare = %v, want default 0.5", l.MaxCPUShare)
	}

	// Without a p99 objective the deadline ceiling is baseline×8; tiny
	// baselines floor the minimum at 100µs.
	l = ResolveLimits(Limits{}, Knobs{BatchTimeout: 200 * time.Microsecond}, mustSLO(t, "tput=900"))
	if l.MinBatchTimeout != 100*time.Microsecond {
		t.Fatalf("MinBatchTimeout = %v, want the 100µs floor", l.MinBatchTimeout)
	}
	if l.MaxBatchTimeout != 1600*time.Microsecond {
		t.Fatalf("MaxBatchTimeout = %v, want baseline×8", l.MaxBatchTimeout)
	}

	// Explicit limits pass through untouched.
	l = ResolveLimits(Limits{MinBatchTimeout: 5 * time.Millisecond, MaxQueueCap: 32}, base, slo)
	if l.MinBatchTimeout != 5*time.Millisecond || l.MaxQueueCap != 32 {
		t.Fatalf("explicit limits overridden: %+v", l)
	}
}

func TestControlGateWindowTooThin(t *testing.T) {
	s := newSynth(16)
	p := &fakePlant{k: Knobs{BatchTimeout: 2 * time.Millisecond, QueueCap: 256}}
	c, err := New(p, s.hist, Config{SLO: mustSLO(t, "tput=900,p99ms=250,shed=0.05,window=6s")})
	if err != nil {
		t.Fatalf("New: %v", err)
	}

	if d := c.Step(); d.Action != ActionHold || !strings.Contains(d.Reason, "window too thin") {
		t.Fatalf("empty history decision = %+v, want thin-window hold", d)
	}
	s.sample(1*simtime.Second, 500, 500, 25, metrics.QueueDepth{Len: 256, Cap: 256})
	s.sample(2*simtime.Second, 500, 500, 25, metrics.QueueDepth{Len: 256, Cap: 256})
	if d := c.Step(); d.Action != ActionHold || !strings.Contains(d.Reason, "window too thin") {
		t.Fatalf("2-sample decision = %+v, want thin-window hold", d)
	}
	if len(p.applies) != 0 || c.Retunes() != 0 || c.Holds() != 2 {
		t.Fatalf("thin window actuated: applies %d retunes %d holds %d", len(p.applies), c.Retunes(), c.Holds())
	}
}

func TestControlGateFlapping(t *testing.T) {
	// Alternating shed-burst / clean intervals make the trend doctor's
	// verdict flip every window — the capacity-knee signature. The SLO
	// is badly violated, but the actuation gate must hold anyway.
	s := newSynth(16)
	for i := int64(1); i <= 8; i++ {
		var shed int64
		if i%2 == 0 {
			shed = 400
		}
		s.sample(simtime.Time(i)*simtime.Second, 500, shed, 25, metrics.QueueDepth{Len: 0, Cap: 256})
	}
	if td := metrics.DiagnoseHistory(s.hist); td == nil || !td.Flapping {
		t.Fatalf("fixture does not flap: %+v", td)
	}
	p := &fakePlant{k: Knobs{BatchTimeout: 2 * time.Millisecond, QueueCap: 256}}
	c, err := New(p, s.hist, Config{SLO: mustSLO(t, "tput=900,shed=0.05,window=8s")})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	d := c.Step()
	if d.Action != ActionHold || !strings.Contains(d.Reason, "flapping") {
		t.Fatalf("decision = %+v, want flapping-gate hold", d)
	}
	if len(p.applies) != 0 {
		t.Fatalf("flapping gate actuated anyway: %+v", p.applies)
	}
}

func TestControlTightenLatencyAndCooldown(t *testing.T) {
	reg := metrics.NewRegistry()
	s := newSynth(16)
	for i := int64(1); i <= 4; i++ {
		s.sample(simtime.Time(i)*simtime.Second, 500, 0, 80, metrics.QueueDepth{Len: 0, Cap: 64})
	}
	p := &fakePlant{k: Knobs{BatchTimeout: 8 * time.Millisecond, QueueCap: 64}}
	c, err := New(p, s.hist, Config{SLO: mustSLO(t, "p99ms=50,window=6s"), Registry: reg})
	if err != nil {
		t.Fatalf("New: %v", err)
	}

	d := c.Step()
	if d.Action != ActionTightenLatency || d.Applied == nil {
		t.Fatalf("decision = %+v, want tighten-latency retune", d)
	}
	if d.Applied.BatchTimeout != 4*time.Millisecond {
		t.Fatalf("BatchTimeout = %v, want halved to 4ms", d.Applied.BatchTimeout)
	}
	if d.Applied.QueueCap != 48 {
		t.Fatalf("QueueCap = %d, want trimmed to 48", d.Applied.QueueCap)
	}
	if d.Applied.CPUShare != 0 {
		t.Fatalf("CPUShare moved to %v without a decode-constrained trend", d.Applied.CPUShare)
	}
	if p.k != *d.Applied {
		t.Fatalf("plant knobs %+v, want applied block %+v", p.k, *d.Applied)
	}

	// The retune starts a cooldown; the next decisions hold on it even
	// though the (unchanged) scorecard still misses.
	if d := c.Step(); d.Action != ActionHold || !strings.Contains(d.Reason, "cooldown") {
		t.Fatalf("post-retune decision = %+v, want cooldown hold", d)
	}
	if d := c.Step(); d.Action != ActionHold || !strings.Contains(d.Reason, "cooldown") {
		t.Fatalf("second post-retune decision = %+v, want cooldown hold", d)
	}
	if d := c.Step(); d.Action != ActionTightenLatency {
		t.Fatalf("post-cooldown decision = %+v, want a second tighten", d)
	}

	snap := reg.Snapshot()
	if snap.Counters["control_decisions_total"] != 4 ||
		snap.Counters["control_retunes_total"] != 2 ||
		snap.Counters["control_holds_total"] != 2 {
		t.Fatalf("decision counters = %v", snap.Counters)
	}
	var retuneEvents int
	for _, e := range snap.Events {
		if e.Name == "control_retune" {
			retuneEvents++
			if !strings.Contains(e.Detail, ActionTightenLatency) || !strings.Contains(e.Detail, "batch_timeout") {
				t.Fatalf("retune event detail = %q, want action + knob deltas", e.Detail)
			}
		}
	}
	if retuneEvents != 2 {
		t.Fatalf("control_retune events = %d, want one per retune", retuneEvents)
	}
}

func TestControlGrowThroughputWithOffloadAssist(t *testing.T) {
	// Sustained overload: every interval sheds, so the trend doctor
	// reports sustained ingest-overloaded — which licenses the CPU-share
	// knob, but only once the deadline knob is pinned at its ceiling
	// (the escalation order: batching policy first, offload second).
	s := newSynth(16)
	for i := int64(1); i <= 6; i++ {
		s.sample(simtime.Time(i)*simtime.Second, 500, 500, 27, metrics.QueueDepth{Len: 128, Cap: 128})
	}
	p := &fakePlant{k: Knobs{BatchTimeout: 2 * time.Millisecond, QueueCap: 128}}
	c, err := New(p, s.hist, Config{SLO: mustSLO(t, "tput=900,p99ms=250,shed=0.05,window=6s")})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	d := c.Step()
	if d.Action != ActionGrowThroughput || d.Applied == nil {
		t.Fatalf("decision = %+v, want grow-throughput retune", d)
	}
	if d.Applied.BatchTimeout != 3*time.Millisecond {
		t.Fatalf("BatchTimeout = %v, want 3ms (×3/2)", d.Applied.BatchTimeout)
	}
	if d.Applied.QueueCap != 128 {
		t.Fatalf("QueueCap = %d, want unchanged at its 128 ceiling", d.Applied.QueueCap)
	}
	if d.Applied.CPUShare != 0 {
		t.Fatalf("CPUShare = %v, want 0 while the deadline still has room to grow", d.Applied.CPUShare)
	}

	// With the deadline pinned at its ceiling, the same evidence
	// escalates to the offload knob.
	p2 := &fakePlant{k: Knobs{BatchTimeout: 2 * time.Millisecond, QueueCap: 128}}
	c2, err := New(p2, s.hist, Config{
		SLO:    mustSLO(t, "tput=900,p99ms=250,shed=0.05,window=6s"),
		Limits: Limits{MaxBatchTimeout: 2 * time.Millisecond},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	d = c2.Step()
	if d.Action != ActionGrowThroughput || d.Applied == nil {
		t.Fatalf("pinned-deadline decision = %+v, want grow-throughput retune", d)
	}
	if d.Applied.BatchTimeout != 2*time.Millisecond {
		t.Fatalf("BatchTimeout = %v, want pinned at its 2ms ceiling", d.Applied.BatchTimeout)
	}
	if d.Applied.CPUShare != shareStep {
		t.Fatalf("CPUShare = %v, want one offload step (%v)", d.Applied.CPUShare, shareStep)
	}
}

func TestControlAntiWindupAtLimits(t *testing.T) {
	// A p99 miss with every knob already pinned at its floor proposes a
	// no-op block: the controller must report a hold (not a retune) and
	// must not start a cooldown it would spend holding anyway.
	s := newSynth(16)
	for i := int64(1); i <= 4; i++ {
		s.sample(simtime.Time(i)*simtime.Second, 500, 0, 80, metrics.QueueDepth{Len: 0, Cap: 64})
	}
	p := &fakePlant{k: Knobs{BatchTimeout: 8 * time.Millisecond, QueueCap: 64}}
	c, err := New(p, s.hist, Config{
		SLO:    mustSLO(t, "p99ms=50,window=6s"),
		Limits: Limits{MinBatchTimeout: 8 * time.Millisecond, MinQueueCap: 64},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for i := 0; i < 3; i++ {
		d := c.Step()
		if d.Action != ActionHold || !strings.Contains(d.Reason, "limit") {
			t.Fatalf("step %d decision = %+v, want at-limit hold", i, d)
		}
		if c.Cooldown() != 0 {
			t.Fatalf("step %d started a cooldown (%d ticks)", i, c.Cooldown())
		}
	}
	if c.Retunes() != 0 || len(p.applies) != 0 {
		t.Fatalf("anti-windup actuated: retunes %d applies %d", c.Retunes(), len(p.applies))
	}
}

func TestControlRestoreBaselineNeedsHeadroom(t *testing.T) {
	s := newSynth(32)
	p := &fakePlant{k: Knobs{BatchTimeout: 40 * time.Millisecond, QueueCap: 64}}
	c, err := New(p, s.hist, Config{SLO: mustSLO(t, "p99ms=100,window=6s"), RelaxAfter: 2})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	// The controller previously tightened away from the 40ms baseline.
	p.k.BatchTimeout = 10 * time.Millisecond

	// Met with thin margin (attainment ≈ 1.09 < the 1.2 restore bar):
	// comfortable windows accumulate but never restore.
	var at simtime.Time
	sampleN := func(n int64, p99 float64) {
		for i := int64(0); i < n; i++ {
			at += simtime.Second
			s.sample(at, 500, 0, p99, metrics.QueueDepth{Len: 0, Cap: 64})
		}
	}
	sampleN(8, 92)
	for i := 0; i < 3; i++ {
		d := c.Step()
		if d.Action != ActionHold || !strings.Contains(d.Reason, "met with margin") {
			t.Fatalf("thin-margin step %d = %+v, want met-with-margin hold", i, d)
		}
	}

	// Real headroom (attainment 2.5): the accumulated comfortable
	// windows now release a restore that steps halfway back to baseline.
	sampleN(8, 40)
	d := c.Step()
	if d.Action != ActionRestoreBaseline || d.Applied == nil {
		t.Fatalf("headroom decision = %+v, want restore-baseline", d)
	}
	if d.Applied.BatchTimeout != 25*time.Millisecond {
		t.Fatalf("restored BatchTimeout = %v, want halfway (25ms)", d.Applied.BatchTimeout)
	}

	// Driving on, the relax path converges to the baseline exactly (the
	// snap band) and then stops moving.
	for i := 0; i < 12 && p.k != c.Base(); i++ {
		sampleN(1, 40)
		c.Step()
	}
	if p.k != c.Base() {
		t.Fatalf("knobs never converged back to baseline: %+v vs %+v", p.k, c.Base())
	}
	retunes := c.Retunes()
	for i := 0; i < 4; i++ {
		sampleN(1, 40)
		c.Step()
	}
	if c.Retunes() != retunes {
		t.Fatalf("controller kept retuning at baseline: %d → %d", retunes, c.Retunes())
	}
}

func TestControllerStartStop(t *testing.T) {
	s := newSynth(8)
	p := &fakePlant{k: Knobs{BatchTimeout: 2 * time.Millisecond}}
	c, err := New(p, s.hist, Config{SLO: mustSLO(t, "tput=900"), Interval: time.Millisecond})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	c.Start()
	c.Start() // idempotent
	deadline := time.Now().Add(5 * time.Second)
	for c.Decisions() < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("ticker loop made %d decisions, want ≥ 3", c.Decisions())
		}
		time.Sleep(time.Millisecond)
	}
	c.Stop()
	n := c.Decisions()
	time.Sleep(5 * time.Millisecond)
	if c.Decisions() != n {
		t.Fatalf("decisions kept flowing after Stop: %d → %d", n, c.Decisions())
	}

	// Stop without Start must not hang or panic.
	c2, err := New(p, s.hist, Config{SLO: mustSLO(t, "tput=900")})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	c2.Stop()
}

// TestControlConvergeUnderOverloadSim is the deterministic
// convergence/anti-flapping proof from the ISSUE: a 2× open-loop
// overload served through the real History → scorecard → trend-doctor
// stack on the simtime kernel's virtual clock. The plant is a queueing
// model where a longer batching deadline amortises per-batch overhead
// (capacity rises toward the asymptote) and fractional CPU offload adds
// decode bandwidth. The controller must grow the operating point until
// the SLO holds, then freeze — zero retunes over the tail of the run.
func TestControlConvergeUnderOverloadSim(t *testing.T) {
	const (
		offered = 1000.0 // img/s, ≈2× the capacity at the static operating point
		steps   = 60
		settle  = 30 // no retunes allowed after this step
	)
	reg := metrics.NewRegistry()
	s := newSynth(64)
	p := &fakePlant{k: Knobs{BatchTimeout: 2 * time.Millisecond, QueueCap: 256}}
	c, err := New(p, s.hist, Config{
		SLO:      mustSLO(t, "tput=900,p99ms=250,shed=0.05,window=6s"),
		Registry: reg,
		// A 6ms deadline ceiling caps the batching knob below what the
		// SLO needs, so the trajectory must escalate to the offload knob
		// after pinning the deadline.
		Limits: Limits{MaxBatchTimeout: 6 * time.Millisecond},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}

	// model maps the knob block to sustainable capacity (img/s) and
	// batch-e2e p99 (ms): fuller batches amortise a 4ms per-batch cost,
	// CPU offload adds up to 80% decode bandwidth, and latency rides the
	// deadline.
	model := func(k Knobs) (capacity, p99 float64) {
		btMs := float64(k.BatchTimeout) / float64(time.Millisecond)
		fill := btMs / (btMs + 4)
		return 1500 * fill * (1 + 0.8*k.CPUShare), btMs + 25
	}

	sim := simtime.New()
	step := 0
	retunesAtSettle := int64(-1)
	var tick func()
	tick = func() {
		step++
		capacity, p99 := model(p.k)
		dec := int64(math.Min(offered, capacity))
		shed := int64(offered) - dec
		ingest := metrics.QueueDepth{Len: 0, Cap: p.k.QueueCap}
		if shed > 0 {
			ingest.Len = ingest.Cap // overload backs the front door up
		}
		s.sample(sim.Now(), dec, shed, p99, ingest)
		c.Step()
		if step == settle {
			retunesAtSettle = c.Retunes()
		}
		if step < steps {
			sim.After(simtime.Second, tick)
		}
	}
	sim.After(simtime.Second, tick)
	sim.Run()

	if c.Decisions() != steps {
		t.Fatalf("decisions = %d, want one per virtual second (%d)", c.Decisions(), steps)
	}
	card := mustSLO(t, "tput=900,p99ms=250,shed=0.05,window=6s").Evaluate(s.hist)
	if card == nil || !card.Met {
		t.Fatalf("SLO not met at end of run: %+v (knobs %+v)", card, p.k)
	}
	if p.k.BatchTimeout <= 2*time.Millisecond {
		t.Fatalf("deadline knob never grew: %v", p.k.BatchTimeout)
	}
	if p.k.CPUShare <= 0 {
		t.Fatalf("offload knob never engaged under a sustained overload trend")
	}
	if c.Retunes() < 3 {
		t.Fatalf("retunes = %d, want a multi-step trajectory", c.Retunes())
	}
	// Anti-flapping: the operating point froze after convergence.
	if got := c.Retunes(); got != retunesAtSettle {
		t.Fatalf("controller kept hunting after settling: retunes %d at step %d → %d at step %d",
			retunesAtSettle, settle, got, steps)
	}
	if td := metrics.DiagnoseHistory(s.hist); td != nil && td.Flapping {
		t.Fatalf("closed-loop run flaps: %+v", td.Ranked)
	}
	snap := reg.Snapshot()
	if snap.Counters["control_retunes_total"] != c.Retunes() ||
		snap.Counters["control_decisions_total"] != int64(steps) {
		t.Fatalf("registry counters out of step: %v", snap.Counters)
	}
}
