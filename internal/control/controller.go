// The feedback controller: gates (window depth, flapping, cooldown),
// the rule table mapping scorecard misses to knob moves, and the
// ticker loop that drives Step against wall-clock serving.

package control

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"dlbooster/internal/metrics"
)

// Decision action codes, also the detail prefix of control_retune
// trace events.
const (
	// ActionHold means no knob moved this step (gate or deadband).
	ActionHold = "hold"
	// ActionTightenLatency halves the batching deadline (and trims
	// admission) because the p99 objective is missing its target.
	ActionTightenLatency = "tighten-latency"
	// ActionGrowThroughput lengthens the deadline toward the latency
	// budget and reopens admission because throughput or shed budget
	// is missing while p99 has headroom.
	ActionGrowThroughput = "grow-throughput"
	// ActionRestoreBaseline steps the knobs halfway back toward the
	// configured baseline after RelaxAfter consecutive comfortable
	// windows.
	ActionRestoreBaseline = "restore-baseline"
)

// shareStep is how much one decision may move the CPU-share knob.
const shareStep = 0.125

// minWindowSamples is the evidence gate: a scorecard over fewer
// history samples holds rather than actuates.
const minWindowSamples = 3

// Limits bounds every knob the controller may set. Zero values resolve
// to defaults derived from the plant's baseline knobs and the SLO at
// New (see ResolveLimits).
type Limits struct {
	// MinBatchTimeout / MaxBatchTimeout bound the deadline knob.
	// Defaults: baseline/8 (floored at 100µs) and the larger of the
	// baseline and half the p99 budget (baseline×8 without a p99
	// objective).
	MinBatchTimeout time.Duration
	MaxBatchTimeout time.Duration
	// MinQueueCap / MaxQueueCap bound the admission knob. Defaults:
	// baseline/8 (floored at 1) and the baseline itself — the
	// controller sheds earlier under pressure but never above the
	// operator's configured queue.
	MinQueueCap int
	MaxQueueCap int
	// MaxCPUShare caps the fractional offload (default 0.5: the CPU
	// assists the decoder, it never becomes the decoder).
	MaxCPUShare float64
}

// ResolveLimits fills zero fields from the baseline knob block and the
// SLO, per the defaults documented on Limits.
func ResolveLimits(l Limits, base Knobs, slo *metrics.SLO) Limits {
	if base.BatchTimeout > 0 {
		if l.MinBatchTimeout <= 0 {
			l.MinBatchTimeout = base.BatchTimeout / 8
			if l.MinBatchTimeout < 100*time.Microsecond {
				l.MinBatchTimeout = 100 * time.Microsecond
			}
		}
		if l.MaxBatchTimeout <= 0 {
			if slo != nil && slo.TargetP99Ms > 0 {
				l.MaxBatchTimeout = time.Duration(slo.TargetP99Ms / 2 * float64(time.Millisecond))
			} else {
				l.MaxBatchTimeout = base.BatchTimeout * 8
			}
			if l.MaxBatchTimeout < base.BatchTimeout {
				l.MaxBatchTimeout = base.BatchTimeout
			}
		}
	}
	if base.QueueCap > 0 {
		if l.MinQueueCap <= 0 {
			l.MinQueueCap = base.QueueCap / 8
			if l.MinQueueCap < 1 {
				l.MinQueueCap = 1
			}
		}
		if l.MaxQueueCap <= 0 {
			l.MaxQueueCap = base.QueueCap
		}
	}
	if l.MaxCPUShare <= 0 {
		l.MaxCPUShare = 0.5
	}
	return l
}

// Config parameterises one Controller.
type Config struct {
	// SLO is the objective the controller steers toward. Required.
	SLO *metrics.SLO
	// Interval is the Start ticker period (default 1s). Step may also
	// be driven directly (tests, dlbench).
	Interval time.Duration
	// Cooldown is how many decisions to hold after a retune so the
	// next move is judged on settled evidence (default 2).
	Cooldown int
	// Deadband is the attainment margin around 1.0 inside which the
	// controller does nothing (default 0.05).
	Deadband float64
	// RelaxAfter is how many consecutive comfortable windows —
	// everything met with margin — before knobs step back toward the
	// baseline (default 3).
	RelaxAfter int
	// Limits bounds the knobs; zero fields resolve at New.
	Limits Limits
	// Registry, when set, receives the decision counters, the cooldown
	// gauge and a trace event per retune.
	Registry *metrics.Registry
	// Name labels this controller's events (e.g. "shard 1").
	Name string
}

func (c *Config) normalize() error {
	if c.SLO == nil {
		return errors.New("control: an SLO spec is required")
	}
	if c.Interval <= 0 {
		c.Interval = time.Second
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 2
	}
	if c.Deadband <= 0 {
		c.Deadband = 0.05
	}
	if c.RelaxAfter <= 0 {
		c.RelaxAfter = 3
	}
	return nil
}

// Decision is one Step's outcome: what the controller did and why.
// Applied is nil on a hold; on a retune it is the knob block that went
// to the plant.
type Decision struct {
	// Action is one of the Action* codes.
	Action string
	// Reason is the operator-readable explanation.
	Reason string
	// Before is the knob block the decision was judged against.
	Before Knobs
	// Applied is the knob block actuated, nil when nothing moved.
	Applied *Knobs
}

// Controller is the feedback loop for one pipeline (or one fleet
// shard): it evaluates the SLO over the history's trailing window and
// actuates the plant's knob block through the gates described in the
// package comment. Step is single-threaded — drive it from the Start
// ticker or directly, not both.
type Controller struct {
	cfg   Config
	plant Plant
	hist  *metrics.History
	base  Knobs
	lim   Limits

	cooldown int
	comfy    int

	decisions metrics.Counter
	retunes   metrics.Counter
	holds     metrics.Counter

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	done      chan struct{}
}

// New builds a controller over a plant and the telemetry history its
// sampler records. The plant's knob block at New becomes the baseline
// the controller relaxes back toward.
func New(plant Plant, hist *metrics.History, cfg Config) (*Controller, error) {
	if plant == nil {
		return nil, errors.New("control: nil plant")
	}
	if hist == nil {
		return nil, errors.New("control: nil history — the controller needs a sampled telemetry window")
	}
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	base := plant.Knobs()
	c := &Controller{
		cfg:   cfg,
		plant: plant,
		hist:  hist,
		base:  base,
		lim:   ResolveLimits(cfg.Limits, base, cfg.SLO),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	if r := cfg.Registry; r != nil {
		r.RegisterCounterFunc("control_decisions_total", c.decisions.Value)
		r.RegisterCounterFunc("control_retunes_total", c.retunes.Value)
		r.RegisterCounterFunc("control_holds_total", c.holds.Value)
		r.RegisterGauge("control_cooldown_ticks", func() float64 { return float64(c.Cooldown()) })
	}
	return c, nil
}

// Base returns the baseline knob block captured at New.
func (c *Controller) Base() Knobs { return c.base }

// Current reads the plant's knob block right now.
func (c *Controller) Current() Knobs { return c.plant.Knobs() }

// Limits returns the resolved knob bounds.
func (c *Controller) Limits() Limits { return c.lim }

// Decisions, Retunes and Holds expose the decision counters.
func (c *Controller) Decisions() int64 { return c.decisions.Value() }

// Retunes returns how many decisions actuated the plant.
func (c *Controller) Retunes() int64 { return c.retunes.Value() }

// Holds returns how many decisions left the knobs alone.
func (c *Controller) Holds() int64 { return c.holds.Value() }

// Cooldown returns the remaining hold-after-retune ticks.
func (c *Controller) Cooldown() int { return c.cooldown }

// Start drives Step on the configured interval until Stop. Idempotent.
func (c *Controller) Start() {
	c.startOnce.Do(func() {
		go func() {
			defer close(c.done)
			t := time.NewTicker(c.cfg.Interval)
			defer t.Stop()
			for {
				select {
				case <-c.stop:
					return
				case <-t.C:
					c.Step()
				}
			}
		}()
	})
}

// Stop ends and joins the Start loop (no-op if never started).
func (c *Controller) Stop() {
	c.stopOnce.Do(func() { close(c.stop) })
	select {
	case <-c.done:
	default:
		c.startOnce.Do(func() { close(c.done) }) // never started: nothing to join
		<-c.done
	}
}

// Step runs one control decision: evaluate the SLO over the window,
// pass the gates, move the knobs if the rule table says so. Returns
// the decision for callers that want to log or assert it; the same
// information lands in the counters and (for retunes) a trace event.
func (c *Controller) Step() Decision {
	c.decisions.Add(1)
	d := c.decide()
	if d.Applied == nil {
		c.holds.Add(1)
		return d
	}
	c.plant.Apply(*d.Applied)
	c.retunes.Add(1)
	c.cooldown = c.cfg.Cooldown
	c.comfy = 0
	if r := c.cfg.Registry; r != nil {
		r.Event("control_retune", c.eventDetail(d))
	}
	return d
}

func (c *Controller) hold(reason string) Decision {
	return Decision{Action: ActionHold, Reason: reason, Before: c.plant.Knobs()}
}

// decide is the gate chain plus the rule table; it never actuates.
func (c *Controller) decide() Decision {
	card := c.cfg.SLO.Evaluate(c.hist)
	if card == nil || card.Samples < minWindowSamples {
		return c.hold(fmt.Sprintf("window too thin (%d samples, need %d)", cardSamples(card), minWindowSamples))
	}
	td := metrics.DiagnoseHistory(c.hist)
	if td != nil && td.Flapping {
		// The actuation gate: a flapping verdict means load is sitting
		// at a capacity knee, where any steering amplifies the
		// oscillation. Wait for the trend to commit.
		return c.hold("trend doctor reports flapping; holding at the capacity knee")
	}
	if c.cooldown > 0 {
		c.cooldown--
		return c.hold(fmt.Sprintf("cooldown (%d ticks left)", c.cooldown))
	}

	cur := c.plant.Knobs()
	dead := c.cfg.Deadband
	p99A, hasP99 := attainment(card, metrics.ObjectiveP99)
	tputA, hasTput := attainment(card, metrics.ObjectiveThroughput)
	shedA, hasShed := attainment(card, metrics.ObjectiveShed)

	latencyMiss := hasP99 && p99A < 1-dead
	supplyMiss := (hasTput && tputA < 1-dead) || (hasShed && shedA < 1-dead)
	latencyHeadroom := !hasP99 || p99A > 1+dead
	// A sustained decoder-bound (or ingest-overloaded, which decode
	// starvation causes) trend is the evidence that decode capacity —
	// not batching policy — is the constraint, so the offload knob may
	// move. Even then the share escalates only after the deadline knob
	// is pinned at its limit: offloaded decodes run inline on the
	// collector, so a share raised while the deadline is still short
	// turns every offloaded decode into a deadline-blown partial flush —
	// exhaust the cheap knob before paying for the expensive one.
	decodeConstrained := td != nil && td.Sustained &&
		(td.Verdict == metrics.VerdictDecoderBound || td.Verdict == metrics.VerdictIngestOverloaded)

	switch {
	case latencyMiss:
		k := cur
		if cur.BatchTimeout > 0 {
			k.BatchTimeout = c.clampBT(cur.BatchTimeout / 2)
		}
		if cur.QueueCap > 0 {
			k.QueueCap = c.clampQC(cur.QueueCap * 3 / 4)
		}
		if decodeConstrained && (cur.BatchTimeout <= 0 || cur.BatchTimeout <= c.lim.MinBatchTimeout) {
			k.CPUShare = c.clampShare(cur.CPUShare + shareStep)
		}
		return c.propose(ActionTightenLatency,
			fmt.Sprintf("p99 attainment %.3f below target", p99A), cur, k)
	case supplyMiss && latencyHeadroom:
		k := cur
		if cur.BatchTimeout > 0 {
			k.BatchTimeout = c.clampBT(cur.BatchTimeout * 3 / 2)
		}
		if cur.QueueCap > 0 && cur.QueueCap < c.lim.MaxQueueCap {
			k.QueueCap = c.clampQC(cur.QueueCap + maxInt(1, (c.lim.MaxQueueCap-cur.QueueCap)/2))
		}
		if decodeConstrained && (cur.BatchTimeout <= 0 || cur.BatchTimeout >= c.lim.MaxBatchTimeout) {
			k.CPUShare = c.clampShare(cur.CPUShare + shareStep)
		}
		return c.propose(ActionGrowThroughput,
			fmt.Sprintf("throughput/shed attainment %.3f/%.3f with p99 headroom", tputA, shedA), cur, k)
	case card.Met && minAttainment(card) > 1+dead:
		c.comfy++
		// Relaxing trades capacity away, so it needs real headroom, not
		// bare margin: stepping back toward baseline from a thin margin
		// re-breaks the SLO next window and the loop oscillates between
		// restore and grow. 4× the deadband is the "this would survive a
		// half-step back" bar.
		if c.comfy >= c.cfg.RelaxAfter && cur != c.base && minAttainment(card) > 1+4*dead {
			return c.propose(ActionRestoreBaseline,
				fmt.Sprintf("%d comfortable windows; stepping back toward baseline", c.comfy),
				cur, stepToward(cur, c.base))
		}
		return c.hold("every objective met with margin")
	default:
		return c.hold("attainment inside the deadband")
	}
}

// propose turns a candidate knob block into a retune decision — or a
// hold when clamping left nothing to change (anti-windup: a decision
// pinned at the limits is not a retune and starts no cooldown).
func (c *Controller) propose(action, reason string, cur, k Knobs) Decision {
	if k == cur {
		return c.hold(action + " wanted, but every knob is at its limit")
	}
	return Decision{Action: action, Reason: reason, Before: cur, Applied: &k}
}

func (c *Controller) eventDetail(d Decision) string {
	name := c.cfg.Name
	if name != "" {
		name += ": "
	}
	k := d.Applied
	return fmt.Sprintf("%s%s (%s): batch_timeout %v→%v, queue_cap %d→%d, cpu_share %.3f→%.3f",
		name, d.Action, d.Reason,
		d.Before.BatchTimeout, k.BatchTimeout,
		d.Before.QueueCap, k.QueueCap,
		d.Before.CPUShare, k.CPUShare)
}

func (c *Controller) clampBT(d time.Duration) time.Duration {
	if d < c.lim.MinBatchTimeout {
		d = c.lim.MinBatchTimeout
	}
	if c.lim.MaxBatchTimeout > 0 && d > c.lim.MaxBatchTimeout {
		d = c.lim.MaxBatchTimeout
	}
	return d
}

func (c *Controller) clampQC(n int) int {
	if n < c.lim.MinQueueCap {
		n = c.lim.MinQueueCap
	}
	if c.lim.MaxQueueCap > 0 && n > c.lim.MaxQueueCap {
		n = c.lim.MaxQueueCap
	}
	return n
}

func (c *Controller) clampShare(f float64) float64 {
	if f < 0 {
		f = 0
	}
	if f > c.lim.MaxCPUShare {
		f = c.lim.MaxCPUShare
	}
	return f
}

// stepToward moves each knob halfway from cur to base, snapping when
// the remaining gap is small — the relax path converges in a few
// comfortable windows instead of asymptoting forever.
func stepToward(cur, base Knobs) Knobs {
	k := cur
	// Deadline: halve the gap, snap inside 1/8 of the baseline.
	gap := base.BatchTimeout - cur.BatchTimeout
	k.BatchTimeout = cur.BatchTimeout + gap/2
	if snapBand := base.BatchTimeout / 8; absDur(base.BatchTimeout-k.BatchTimeout) <= snapBand {
		k.BatchTimeout = base.BatchTimeout
	}
	// Admission: halve the gap, snap inside one slot.
	qgap := base.QueueCap - cur.QueueCap
	k.QueueCap = cur.QueueCap + qgap/2
	if absInt(base.QueueCap-k.QueueCap) <= 1 {
		k.QueueCap = base.QueueCap
	}
	// Offload: halve the gap, snap inside half a step.
	sgap := base.CPUShare - cur.CPUShare
	k.CPUShare = cur.CPUShare + sgap/2
	if s := base.CPUShare - k.CPUShare; s < shareStep/2 && s > -shareStep/2 {
		k.CPUShare = base.CPUShare
	}
	return k
}

// minAttainment is the true minimum attainment across objectives. The
// scorecard's own Attainment rollup is capped at 1.0 (met is met in a
// report), but the controller needs the uncapped margin to judge
// whether a step back toward baseline would survive.
func minAttainment(card *metrics.Scorecard) float64 {
	min := math.Inf(1)
	for _, o := range card.Objectives {
		if o.Attainment < min {
			min = o.Attainment
		}
	}
	if math.IsInf(min, 1) {
		return 1
	}
	return min
}

// attainment pulls one objective's attainment off the scorecard.
func attainment(card *metrics.Scorecard, name string) (float64, bool) {
	for _, o := range card.Objectives {
		if o.Name == name {
			return o.Attainment, true
		}
	}
	return 0, false
}

func cardSamples(card *metrics.Scorecard) int {
	if card == nil {
		return 0
	}
	return card.Samples
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func absInt(a int) int {
	if a < 0 {
		return -a
	}
	return a
}

func absDur(d time.Duration) time.Duration {
	if d < 0 {
		return -d
	}
	return d
}
