// Package simtime is a deterministic discrete-event simulation kernel.
//
// The paper's evaluation ran on hardware a pure-Go reproduction cannot
// reach (P100 GPUs, an Arria 10 FPGA, a 40 Gbps fabric). The experiment
// harness therefore re-runs each evaluation as a queueing simulation: the
// same component graph as the functional pipeline, but with device service
// times taken from the calibrated models in internal/perf and time
// advanced by this kernel instead of the wall clock. Events at equal
// timestamps fire in scheduling order, so every run is exactly
// reproducible.
package simtime

import (
	"container/heap"
	"fmt"
)

// Time is virtual time in nanoseconds since simulation start.
type Time int64

// Common durations, mirroring time.Duration's constants.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// Seconds converts a virtual duration to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Milliseconds converts a virtual duration to floating-point ms.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// FromSeconds converts floating-point seconds to virtual time.
func FromSeconds(s float64) Time { return Time(s * float64(Second)) }

type event struct {
	at  Time
	seq uint64 // FIFO tie-break for simultaneous events
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() (popped any) {
	old := *h
	n := len(old)
	popped = old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return popped
}

// Sim is one simulation run. The zero value is ready to use.
type Sim struct {
	now    Time
	events eventHeap
	seq    uint64
}

// New returns a simulation at time zero.
func New() *Sim { return &Sim{} }

// Now returns the current virtual time.
func (s *Sim) Now() Time { return s.now }

// At schedules fn at absolute time t. Scheduling in the past panics —
// that is always a logic error in a process model.
func (s *Sim) At(t Time, fn func()) {
	if t < s.now {
		panic(fmt.Sprintf("simtime: scheduling at %d before now %d", t, s.now))
	}
	s.seq++
	heap.Push(&s.events, &event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn d after the current time. Negative d panics.
func (s *Sim) After(d Time, fn func()) { s.At(s.now+d, fn) }

// Step fires the next event, returning false when none remain.
func (s *Sim) Step() bool {
	if len(s.events) == 0 {
		return false
	}
	ev := heap.Pop(&s.events).(*event)
	s.now = ev.at
	ev.fn()
	return true
}

// Run fires events until none remain.
func (s *Sim) Run() {
	for s.Step() {
	}
}

// RunUntil fires events with timestamps ≤ deadline, then sets the clock
// to the deadline. Events scheduled after it remain pending.
func (s *Sim) RunUntil(deadline Time) {
	for len(s.events) > 0 && s.events[0].at <= deadline {
		s.Step()
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// Pending returns the number of scheduled events.
func (s *Sim) Pending() int { return len(s.events) }
