package simtime

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestEventOrdering(t *testing.T) {
	s := New()
	var order []int
	s.At(30, func() { order = append(order, 3) })
	s.At(10, func() { order = append(order, 1) })
	s.At(20, func() { order = append(order, 2) })
	s.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if s.Now() != 30 {
		t.Fatalf("Now = %d", s.Now())
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(5, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("simultaneous events out of scheduling order: %v", order)
		}
	}
}

func TestAfterAndNesting(t *testing.T) {
	s := New()
	var fired []Time
	s.After(10, func() {
		fired = append(fired, s.Now())
		s.After(5, func() {
			fired = append(fired, s.Now())
		})
	})
	s.Run()
	if len(fired) != 2 || fired[0] != 10 || fired[1] != 15 {
		t.Fatalf("fired = %v", fired)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	s := New()
	s.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("At in the past did not panic")
			}
		}()
		s.At(5, func() {})
	})
	s.Run()
}

func TestRunUntil(t *testing.T) {
	s := New()
	var count int
	for _, at := range []Time{5, 10, 15, 20} {
		s.At(at, func() { count++ })
	}
	s.RunUntil(12)
	if count != 2 {
		t.Fatalf("count = %d, want 2", count)
	}
	if s.Now() != 12 {
		t.Fatalf("Now = %d, want 12", s.Now())
	}
	if s.Pending() != 2 {
		t.Fatalf("Pending = %d", s.Pending())
	}
	s.Run()
	if count != 4 || s.Now() != 20 {
		t.Fatalf("after Run: count=%d now=%d", count, s.Now())
	}
}

func TestStepOnEmpty(t *testing.T) {
	s := New()
	if s.Step() {
		t.Fatal("Step on empty sim returned true")
	}
}

// TestEventOrderProperty: any set of scheduled times fires in sorted
// order with ties in submission order.
func TestEventOrderProperty(t *testing.T) {
	f := func(times []uint16) bool {
		s := New()
		type stamp struct {
			at  Time
			seq int
		}
		var fired []stamp
		for i, raw := range times {
			at := Time(raw % 64) // force collisions
			i := i
			s.At(at, func() { fired = append(fired, stamp{at, i}) })
		}
		s.Run()
		if len(fired) != len(times) {
			return false
		}
		sorted := sort.SliceIsSorted(fired, func(a, b int) bool {
			if fired[a].at != fired[b].at {
				return fired[a].at < fired[b].at
			}
			return fired[a].seq < fired[b].seq
		})
		return sorted
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeConversions(t *testing.T) {
	if Second.Seconds() != 1 {
		t.Fatal("Second != 1s")
	}
	if Millisecond.Milliseconds() != 1 {
		t.Fatal("Millisecond != 1ms")
	}
	if FromSeconds(2.5) != 2500*Millisecond {
		t.Fatalf("FromSeconds(2.5) = %d", FromSeconds(2.5))
	}
}

func TestServerSequentialService(t *testing.T) {
	s := New()
	sv := NewServer(s, 1)
	var doneAt []Time
	for i := 0; i < 3; i++ {
		sv.Visit(10, func() { doneAt = append(doneAt, s.Now()) })
	}
	s.Run()
	want := []Time{10, 20, 30}
	for i, w := range want {
		if doneAt[i] != w {
			t.Fatalf("doneAt = %v, want %v", doneAt, want)
		}
	}
	if sv.Served() != 3 {
		t.Fatalf("Served = %d", sv.Served())
	}
	if sv.BusyTime() != 30 {
		t.Fatalf("BusyTime = %d", sv.BusyTime())
	}
	if got := sv.BusyCores(30); got != 1 {
		t.Fatalf("BusyCores = %v", got)
	}
}

func TestServerParallelism(t *testing.T) {
	s := New()
	sv := NewServer(s, 2)
	var doneAt []Time
	for i := 0; i < 4; i++ {
		sv.Visit(10, func() { doneAt = append(doneAt, s.Now()) })
	}
	s.Run()
	// Two at a time: completions at 10, 10, 20, 20.
	want := []Time{10, 10, 20, 20}
	for i, w := range want {
		if doneAt[i] != w {
			t.Fatalf("doneAt = %v, want %v", doneAt, want)
		}
	}
	if sv.Utilization(20) != 1.0 {
		t.Fatalf("Utilization = %v", sv.Utilization(20))
	}
}

func TestServerQueueStats(t *testing.T) {
	s := New()
	sv := NewServer(s, 1)
	for i := 0; i < 5; i++ {
		sv.Visit(1, nil)
	}
	if sv.QueueLen() != 4 || sv.InUse() != 1 {
		t.Fatalf("queue=%d inUse=%d", sv.QueueLen(), sv.InUse())
	}
	if sv.MaxQueueLen() != 4 {
		t.Fatalf("MaxQueueLen = %d", sv.MaxQueueLen())
	}
	s.Run()
	if sv.QueueLen() != 0 || sv.InUse() != 0 {
		t.Fatalf("after run: queue=%d inUse=%d", sv.QueueLen(), sv.InUse())
	}
}

func TestServerPanics(t *testing.T) {
	s := New()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("capacity 0 accepted")
			}
		}()
		NewServer(s, 0)
	}()
	sv := NewServer(s, 1)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("negative service accepted")
			}
		}()
		sv.Visit(-1, nil)
	}()
}

// TestServerConservation: jobs in = jobs out, and with capacity c and
// equal service times the makespan is ceil(n/c)*service.
func TestServerConservationProperty(t *testing.T) {
	f := func(nSeed, cSeed uint8, svcSeed uint16) bool {
		n := int(nSeed)%50 + 1
		c := int(cSeed)%8 + 1
		svc := Time(svcSeed%1000) + 1
		s := New()
		sv := NewServer(s, c)
		done := 0
		for i := 0; i < n; i++ {
			sv.Visit(svc, func() { done++ })
		}
		s.Run()
		if done != n {
			return false
		}
		batches := (n + c - 1) / c
		return s.Now() == Time(batches)*svc
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestGate(t *testing.T) {
	fired := false
	g := NewGate(3, func() { fired = true })
	g.Arrive()
	g.Arrive()
	if fired {
		t.Fatal("gate fired early")
	}
	g.Arrive()
	if !fired {
		t.Fatal("gate did not fire")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("arrival after completion accepted")
			}
		}()
		g.Arrive()
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("zero gate accepted")
			}
		}()
		NewGate(0, nil)
	}()
}

// TestMM1Sanity: an M/D/1-ish queue where arrivals outpace service grows
// its queue; where service outpaces arrivals it stays bounded. This is
// the load/saturation behaviour every figure experiment relies on.
func TestQueueGrowthSanity(t *testing.T) {
	s := New()
	fast := NewServer(s, 1) // service 5, arrivals every 10 -> idle
	slow := NewServer(s, 1) // service 20, arrivals every 10 -> backlog
	for i := 0; i < 100; i++ {
		at := Time(i) * 10
		s.At(at, func() { fast.Visit(5, nil) })
		s.At(at, func() { slow.Visit(20, nil) })
	}
	s.RunUntil(1000)
	if fast.QueueLen() != 0 {
		t.Fatalf("underloaded server has queue %d", fast.QueueLen())
	}
	if slow.QueueLen() < 40 {
		t.Fatalf("overloaded server queue = %d, want >= 40", slow.QueueLen())
	}
	// Utilisations: fast ~50%, slow pegged at 100%.
	if u := fast.Utilization(1000); u < 0.45 || u > 0.55 {
		t.Fatalf("fast utilization = %v", u)
	}
	if u := slow.Utilization(1000); u < 0.99 {
		t.Fatalf("slow utilization = %v", u)
	}
}
