package simtime

// Server models a resource with fixed parallelism: an FPGA pipeline
// stage, a pool of decode worker cores, a GPU copy/compute engine, a disk
// or a link. Jobs queue FIFO, up to Capacity are in service at once, and
// busy time is accounted per slot so experiments can report utilisation
// and CPU-core cost exactly the way the paper does (busy time / wall
// time).
type Server struct {
	sim      *Sim
	capacity int
	inUse    int
	waiting  []*job

	busy      Time // accumulated service time across slots
	served    int64
	maxQueue  int
	lastStart Time
}

type job struct {
	service Time
	done    func()
}

// NewServer creates a server with the given parallelism (≥ 1).
func NewServer(sim *Sim, capacity int) *Server {
	if capacity < 1 {
		panic("simtime: server capacity must be >= 1")
	}
	return &Server{sim: sim, capacity: capacity}
}

// Visit enqueues a job needing the given service time; done (optional)
// runs on completion. Service times must be non-negative.
func (sv *Server) Visit(service Time, done func()) {
	if service < 0 {
		panic("simtime: negative service time")
	}
	j := &job{service: service, done: done}
	if sv.inUse < sv.capacity {
		sv.start(j)
		return
	}
	sv.waiting = append(sv.waiting, j)
	if len(sv.waiting) > sv.maxQueue {
		sv.maxQueue = len(sv.waiting)
	}
}

func (sv *Server) start(j *job) {
	sv.inUse++
	sv.busy += j.service
	sv.served++
	sv.sim.After(j.service, func() {
		sv.inUse--
		if len(sv.waiting) > 0 {
			next := sv.waiting[0]
			sv.waiting = sv.waiting[1:]
			sv.start(next)
		}
		if j.done != nil {
			j.done()
		}
	})
}

// Capacity returns the server's parallelism.
func (sv *Server) Capacity() int { return sv.capacity }

// InUse returns the number of slots currently serving.
func (sv *Server) InUse() int { return sv.inUse }

// QueueLen returns the number of jobs waiting.
func (sv *Server) QueueLen() int { return len(sv.waiting) }

// MaxQueueLen returns the high-water mark of the wait queue.
func (sv *Server) MaxQueueLen() int { return sv.maxQueue }

// Served returns the number of jobs that have entered service.
func (sv *Server) Served() int64 { return sv.served }

// BusyTime returns the total service time accumulated across slots.
func (sv *Server) BusyTime() Time { return sv.busy }

// Utilization returns busy time over capacity×elapsed — for a CPU worker
// pool this is exactly "cores consumed / cores provisioned".
func (sv *Server) Utilization(elapsed Time) float64 {
	if elapsed <= 0 {
		return 0
	}
	return sv.busy.Seconds() / (float64(sv.capacity) * elapsed.Seconds())
}

// BusyCores returns busy time over elapsed: the average number of slots
// in use, the paper's "CPU cost (# cores)" metric.
func (sv *Server) BusyCores(elapsed Time) float64 {
	if elapsed <= 0 {
		return 0
	}
	return sv.busy.Seconds() / elapsed.Seconds()
}

// Gate releases a fixed number of tokens and runs a callback when all
// have been returned — the join primitive used to detect batch or epoch
// completion in experiment models.
type Gate struct {
	remaining int
	fn        func()
}

// NewGate returns a gate expecting n arrivals. n must be positive.
func NewGate(n int, fn func()) *Gate {
	if n <= 0 {
		panic("simtime: gate count must be positive")
	}
	return &Gate{remaining: n, fn: fn}
}

// Arrive records one arrival; the last arrival fires the callback.
func (g *Gate) Arrive() {
	if g.remaining <= 0 {
		panic("simtime: gate arrival after completion")
	}
	g.remaining--
	if g.remaining == 0 && g.fn != nil {
		g.fn()
	}
}
