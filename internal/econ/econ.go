// Package econ reproduces the economic analysis of paper §5.4: what
// offloading preprocessing to an FPGA is worth, to the user renting the
// VM and to the cloud provider selling the freed cores.
package econ

import (
	"fmt"
	"strings"

	"dlbooster/internal/perf"
)

// Analysis is the §5.4 comparison for one deployment.
type Analysis struct {
	// CoresReplaced is how many decode cores one FPGA displaces.
	CoresReplaced int
	// HourlySavings is the market value of the freed cores, $/h.
	HourlySavings float64
	// AnnualRevenuePerFPGA is the provider's resale revenue of the
	// freed cores over a year, $.
	AnnualRevenuePerFPGA float64
	// PowerSavedWatts is the power delta of FPGA-decode vs CPU-decode
	// at equal throughput.
	PowerSavedWatts float64
	// OfflinePrepHours is the LMDB conversion time DLBooster's online
	// service avoids, for a dataset of the given size.
	OfflinePrepHours float64
}

// Analyze computes the §5.4 numbers for a dataset of datasetImages.
func Analyze(datasetImages int) Analysis {
	cores := perf.FPGAEquivalentCores
	// Power: the displaced cores' share of CPU package power vs one
	// FPGA. A 16-core package at perf.CPUWatts gives watts per core.
	wattsPerCore := perf.CPUWatts / 16.0
	a := Analysis{
		CoresReplaced:        cores,
		HourlySavings:        float64(cores) * perf.CorePricePerHour,
		AnnualRevenuePerFPGA: float64(cores) * perf.CoreAnnualRevenue,
		PowerSavedWatts:      float64(cores)*wattsPerCore - perf.FPGAWatts,
	}
	if datasetImages > 0 {
		a.OfflinePrepHours = float64(datasetImages) / perf.LMDBPrepareRate / 3600
	}
	return a
}

// Report renders the analysis in the shape of §5.4's prose.
func (a Analysis) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Economic analysis (paper §5.4)\n")
	fmt.Fprintf(&b, "  one FPGA decoder replaces:    %d CPU cores of JPEG decode\n", a.CoresReplaced)
	fmt.Fprintf(&b, "  freed-core resale value:      $%.2f/h (paper: >$1.5/h)\n", a.HourlySavings)
	fmt.Fprintf(&b, "  provider revenue per FPGA:    $%.0f/year (paper: ~$900/core-year)\n", a.AnnualRevenuePerFPGA)
	fmt.Fprintf(&b, "  power saved vs CPU decode:    %.0f W (FPGA %.0f W vs CPU %.0f W, GPU %.0f W)\n",
		a.PowerSavedWatts, perf.FPGAWatts, perf.CPUWatts, perf.GPUWatts)
	if a.OfflinePrepHours > 0 {
		fmt.Fprintf(&b, "  offline LMDB prep avoided:    %.1f h (paper: \"more than 2 hours\" for ILSVRC12)\n", a.OfflinePrepHours)
	}
	return b.String()
}
