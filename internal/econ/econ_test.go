package econ

import (
	"strings"
	"testing"

	"dlbooster/internal/perf"
)

func TestAnalyzeAnchors(t *testing.T) {
	a := Analyze(perf.AlexNet.EpochImages)
	if a.CoresReplaced != perf.FPGAEquivalentCores {
		t.Fatalf("CoresReplaced = %d", a.CoresReplaced)
	}
	// §5.4: the freed cores "can still be sold to other tenants for more
	// than $1.5/h".
	if a.HourlySavings < 1.5 {
		t.Fatalf("HourlySavings = %.2f, want >= 1.5", a.HourlySavings)
	}
	// §5.4: ~$900 of potential revenue per core-year.
	if a.AnnualRevenuePerFPGA < 20000 {
		t.Fatalf("AnnualRevenuePerFPGA = %.0f, want ≈ 30×900", a.AnnualRevenuePerFPGA)
	}
	// FPGAs at 25 W must beat the displaced cores' power.
	if a.PowerSavedWatts <= 0 {
		t.Fatalf("PowerSavedWatts = %.0f", a.PowerSavedWatts)
	}
	// §2.2: "more than 2 hours" for ILSVRC12 (our rate constant rounds
	// to almost exactly 2.0 h).
	if a.OfflinePrepHours < 1.9 {
		t.Fatalf("OfflinePrepHours = %.2f", a.OfflinePrepHours)
	}
}

func TestAnalyzeZeroDataset(t *testing.T) {
	a := Analyze(0)
	if a.OfflinePrepHours != 0 {
		t.Fatalf("OfflinePrepHours = %v", a.OfflinePrepHours)
	}
}

func TestReportMentionsKeyNumbers(t *testing.T) {
	r := Analyze(perf.AlexNet.EpochImages).Report()
	for _, want := range []string{"30 CPU cores", "$3.15/h", "year", "W "} {
		if !strings.Contains(r, want) {
			t.Fatalf("report missing %q:\n%s", want, r)
		}
	}
}
