// Package engine implements the compute-engine layer of the paper's
// stack: an NVCaffe-like data-parallel training engine and a
// TensorRT-like batch inference engine. Each GPU engine is fed through
// its own Trans Queue pair by the core Dispatcher (§3.4.3) and is
// deliberately ignorant of which preprocessing backend filled it — the
// interchangeability DLBooster's integration story depends on (§4.2).
//
// The engines run real reductions over the device-resident bytes (a
// deterministic forward-pass proxy), and can optionally pace themselves
// with the calibrated per-model GPU rates from internal/perf, so
// wall-clock examples exhibit the paper's throughput ordering while unit
// tests run unpaced and fast.
package engine

import (
	"errors"
	"time"

	"dlbooster/internal/core"
	"dlbooster/internal/metrics"
	"dlbooster/internal/perf"
)

// forwardProxy runs a deterministic reduction standing in for a forward
// pass on one image's device bytes, returning a pseudo-logit.
func forwardProxy(img []byte) uint64 {
	var acc uint64 = 1469598103934665603 // FNV offset basis
	for _, b := range img {
		acc ^= uint64(b)
		acc *= 1099511628211
	}
	return acc
}

// TrainerConfig configures a data-parallel training run.
type TrainerConfig struct {
	// Profile is the model cost profile (batch size, per-GPU rate).
	Profile perf.TrainProfile
	// Solvers is one entry per GPU, fed by the Dispatcher.
	Solvers []*core.Solver
	// PaceCompute sleeps each iteration for the modelled GPU time, so
	// end-to-end examples see realistic relative speeds. Off in tests.
	PaceCompute bool
	// Busy, when set, receives the engine-side CPU components of
	// Figure 6(d): "kernels", "update", "transform" — modelled as the
	// calibrated per-GPU core fractions over the run's duration.
	Busy *metrics.BusyTracker
	// Metrics, when non-nil, receives per-iteration train_iter latency
	// observations and the train_images_total / train_iterations_total /
	// train_skipped_total counters. Pass the Booster's Registry() so the
	// engine shares the pipeline snapshot. Nil costs the loop nothing.
	Metrics *metrics.Registry
}

// TrainStats summarises a training run.
type TrainStats struct {
	Iterations int
	Images     int64
	SkippedBad int64
	// LossProxy is a deterministic digest of everything the model
	// consumed; equal inputs ⇒ equal digest, which tests use to prove
	// backend interchangeability.
	LossProxy uint64
	Elapsed   time.Duration
}

// Trainer is the data-parallel training engine.
type Trainer struct {
	cfg TrainerConfig
}

// NewTrainer validates and builds a trainer.
func NewTrainer(cfg TrainerConfig) (*Trainer, error) {
	if len(cfg.Solvers) == 0 {
		return nil, errors.New("engine: no solvers")
	}
	if cfg.Profile.IdealRate <= 0 || cfg.Profile.BatchSize <= 0 {
		return nil, errors.New("engine: invalid training profile")
	}
	return &Trainer{cfg: cfg}, nil
}

// Run trains until every solver's Full queue closes. Each iteration pops
// one device batch per GPU (lockstep data parallelism), runs the forward
// proxy, "synchronises gradients" (the lockstep barrier), and recycles
// device buffers back to the Free Trans Queues.
func (t *Trainer) Run() (TrainStats, error) {
	var st TrainStats
	start := time.Now()
	syncEff := perf.MultiGPUSyncEfficiency(len(t.cfg.Solvers))
	reg := t.cfg.Metrics
	for {
		var iterStart time.Time
		if reg.On() {
			iterStart = time.Now()
		}
		imagesBefore, skippedBefore := st.Images, st.SkippedBad
		type popped struct {
			solver *core.Solver
			db     *core.DeviceBatch
		}
		var batches []popped
		closed := false
		for _, s := range t.cfg.Solvers {
			db, err := s.Full.Pop()
			if err != nil {
				closed = true
				break
			}
			batches = append(batches, popped{solver: s, db: db})
		}
		if len(batches) == 0 {
			break
		}
		// Even a short round (a solver closed mid-pop) trains on the
		// batches already taken: the tail of an epoch must not be lost.
		maxImages := 0
		for _, p := range batches {
			db := p.db
			stride := db.ImageBytes()
			data := db.Buf.Bytes()
			for i := 0; i < db.Images; i++ {
				if i < len(db.Valid) && !db.Valid[i] {
					st.SkippedBad++
					continue
				}
				st.LossProxy ^= forwardProxy(data[i*stride : (i+1)*stride])
				st.Images++
			}
			if db.Images > maxImages {
				maxImages = db.Images
			}
		}
		st.Iterations++
		if t.cfg.PaceCompute {
			// GPUs run their per-iteration batches concurrently: the
			// iteration takes the largest batch's time, inflated by
			// gradient-sync overhead.
			sleepSeconds(float64(maxImages) / (t.cfg.Profile.IdealRate * syncEff))
		}
		for _, p := range batches {
			if p.solver.Device != nil {
				p.solver.Device.RecordKernelBusy(kernelTime(t.cfg.Profile, p.db.Images))
			}
			if err := p.solver.Free.Push(p.db.Buf); err != nil {
				return st, err
			}
		}
		if reg.On() {
			reg.ObserveSince(metrics.StageTrainIter, iterStart)
			reg.Add("train_iterations_total", 1)
			reg.Add("train_images_total", st.Images-imagesBefore)
			reg.Add("train_skipped_total", st.SkippedBad-skippedBefore)
		}
		if closed {
			break
		}
	}
	st.Elapsed = time.Since(start)
	if t.cfg.Busy != nil {
		// Engine-side CPU components, per GPU, over the run duration
		// (Figure 6(d) anchors).
		sec := st.Elapsed.Seconds() * float64(len(t.cfg.Solvers))
		t.cfg.Busy.Record("kernels", perf.KernelLaunchCores*sec)
		t.cfg.Busy.Record("update", perf.ModelUpdateCores*sec)
		t.cfg.Busy.Record("transform", perf.TransformCores*sec)
	}
	return st, nil
}

// kernelTime is the modelled GPU compute time for n images.
func kernelTime(p perf.TrainProfile, n int) time.Duration {
	return time.Duration(float64(n) / p.IdealRate * float64(time.Second))
}

// sleepSeconds isolates pacing for testability.
var sleepSeconds = func(s float64) { time.Sleep(time.Duration(s * float64(time.Second))) }
