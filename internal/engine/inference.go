package engine

import (
	"errors"
	"time"

	"dlbooster/internal/core"
	"dlbooster/internal/metrics"
	"dlbooster/internal/perf"
)

// Prediction is the engine's answer for one image, returned to the
// client in the online-inference workflow (Figure 1, step 6).
type Prediction struct {
	ClientID int
	Seq      int
	Label    int
	// Latency is receipt-to-prediction, the paper's Figure 8 metric.
	Latency time.Duration
}

// InferenceConfig configures a TensorRT-like batch inference engine on
// one GPU.
type InferenceConfig struct {
	// Profile is the model cost profile.
	Profile perf.InferProfile
	// Solver is the engine's Trans Queue pair.
	Solver *core.Solver
	// Classes is the label space of the classifier head.
	Classes int
	// PaceCompute sleeps per batch for the modelled GPU time.
	PaceCompute bool
	// Latency, when set, receives per-image latencies in milliseconds.
	Latency *metrics.Histogram
	// Emit, when set, receives every prediction (the reply path).
	Emit func(Prediction)
	// Metrics, when non-nil, receives per-image infer_e2e latency
	// observations and the infer_images_total / infer_batches_total /
	// infer_skipped_total counters. Pass the Booster's Registry() so the
	// engine shares the pipeline snapshot. Nil costs the loop nothing.
	Metrics *metrics.Registry
}

// InferStats summarises an inference run.
type InferStats struct {
	Batches    int
	Images     int64
	SkippedBad int64
	Elapsed    time.Duration
}

// Inference is the batch inference engine.
type Inference struct {
	cfg InferenceConfig
}

// NewInference validates and builds an engine.
func NewInference(cfg InferenceConfig) (*Inference, error) {
	if cfg.Solver == nil {
		return nil, errors.New("engine: nil solver")
	}
	if cfg.Profile.MaxRate <= 0 {
		return nil, errors.New("engine: invalid inference profile")
	}
	if cfg.Classes <= 0 {
		cfg.Classes = 1000
	}
	return &Inference{cfg: cfg}, nil
}

// Run serves until the solver's Full queue closes.
func (e *Inference) Run() (InferStats, error) {
	var st InferStats
	start := time.Now()
	for {
		db, err := e.cfg.Solver.Full.Pop()
		if err != nil {
			break
		}
		imagesBefore, skippedBefore := st.Images, st.SkippedBad
		// Pace on the slots actually carrying images: a deadline-flushed
		// partial batch (core.Config.BatchTimeout) or one with failed
		// slots costs the modelled compute of its valid prefix, not of
		// the configured batch size.
		valid := db.ValidCount()
		if e.cfg.PaceCompute {
			sleepSeconds(e.cfg.Profile.BatchSeconds(valid))
		}
		stride := db.ImageBytes()
		data := db.Buf.Bytes()
		done := time.Now()
		for i := 0; i < db.Images; i++ {
			if i < len(db.Valid) && !db.Valid[i] {
				st.SkippedBad++
				continue
			}
			logit := forwardProxy(data[i*stride : (i+1)*stride])
			p := Prediction{Label: int(logit % uint64(e.cfg.Classes))}
			if i < len(db.Metas) {
				p.ClientID = db.Metas[i].ClientID
				p.Seq = db.Metas[i].Seq
				if !db.Metas[i].ReceivedAt.IsZero() {
					p.Latency = done.Sub(db.Metas[i].ReceivedAt)
					if e.cfg.Latency != nil {
						e.cfg.Latency.Add(float64(p.Latency) / float64(time.Millisecond))
					}
					e.cfg.Metrics.Observe(metrics.StageInferE2E, float64(p.Latency)/float64(time.Millisecond))
				}
			}
			if e.cfg.Emit != nil {
				e.cfg.Emit(p)
			}
			st.Images++
		}
		st.Batches++
		if reg := e.cfg.Metrics; reg.On() {
			reg.Add("infer_batches_total", 1)
			reg.Add("infer_images_total", st.Images-imagesBefore)
			reg.Add("infer_skipped_total", st.SkippedBad-skippedBefore)
		}
		if e.cfg.Solver.Device != nil {
			e.cfg.Solver.Device.RecordKernelBusy(time.Duration(e.cfg.Profile.BatchSeconds(valid) * float64(time.Second)))
		}
		if err := e.cfg.Solver.Free.Push(db.Buf); err != nil {
			return st, err
		}
	}
	st.Elapsed = time.Since(start)
	return st, nil
}
