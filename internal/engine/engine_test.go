package engine

import (
	"sync"
	"testing"
	"time"

	"dlbooster/internal/backends"
	"dlbooster/internal/core"
	"dlbooster/internal/dataset"
	"dlbooster/internal/fpga"
	"dlbooster/internal/gpu"
	"dlbooster/internal/metrics"
	"dlbooster/internal/nvme"
	"dlbooster/internal/perf"
)

// rig wires a backend, dispatcher, and n solvers — the full functional
// stack below the engine.
type rig struct {
	backend backends.Backend
	solvers []*core.Solver
	disk    *nvme.Device
	spec    dataset.Spec
	devices []*gpu.Device
}

func newRig(t *testing.T, images, batch, gpus int) *rig {
	t.Helper()
	spec := dataset.MNISTLike(images)
	disk := nvme.New(nvme.Config{})
	if _, err := spec.WriteToNVMe(disk); err != nil {
		t.Fatal(err)
	}
	b, err := backends.NewDLBooster(core.Config{
		BatchSize: batch, OutW: 28, OutH: 28, Channels: 1,
		PoolBatches: 4, Source: disk,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(b.Close)
	r := &rig{backend: b, disk: disk, spec: spec}
	for g := 0; g < gpus; g++ {
		dev, err := gpu.NewDevice(g, 1<<26)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(dev.Close)
		s, err := core.NewSolver(dev, 2, batch*28*28)
		if err != nil {
			t.Fatal(err)
		}
		r.solvers = append(r.solvers, s)
		r.devices = append(r.devices, dev)
	}
	return r
}

// pump runs one epoch through backend and dispatcher in the background.
func (r *rig) pump(t *testing.T) <-chan error {
	t.Helper()
	errc := make(chan error, 2)
	d, err := core.NewDispatcher(r.backend.Batches(), r.backend.RecycleBatch, r.solvers, core.DispatcherConfig{})
	if err != nil {
		t.Fatal(err)
	}
	go func() { errc <- d.Run() }()
	go func() {
		col, err := core.LoadFromDisk(r.disk, func(name string, i int) int { return r.spec.Label(i) })
		if err != nil {
			errc <- err
			return
		}
		if err := r.backend.RunEpoch(col); err != nil {
			errc <- err
			return
		}
		r.backend.CloseBatches()
		errc <- nil
	}()
	return errc
}

func TestTrainerSingleGPU(t *testing.T) {
	r := newRig(t, 32, 8, 1)
	tr, err := NewTrainer(TrainerConfig{Profile: perf.LeNet5, Solvers: r.solvers})
	if err != nil {
		t.Fatal(err)
	}
	errc := r.pump(t)
	st, err := tr.Run()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
	if st.Images != 32 || st.Iterations != 4 || st.SkippedBad != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.LossProxy == 0 {
		t.Fatal("loss proxy is zero: forward pass never ran")
	}
	if r.devices[0].KernelBusy() <= 0 {
		t.Fatal("no kernel busy time accounted")
	}
}

func TestTrainerDataParallelTwoGPUs(t *testing.T) {
	r := newRig(t, 48, 8, 2)
	tr, err := NewTrainer(TrainerConfig{Profile: perf.LeNet5, Solvers: r.solvers})
	if err != nil {
		t.Fatal(err)
	}
	errc := r.pump(t)
	st, err := tr.Run()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
	// 6 batches round-robined over 2 GPUs → 3 lockstep iterations.
	if st.Images != 48 || st.Iterations != 3 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestTrainerLossIndependentOfBackendOrGPUs: the digest is order
// independent (XOR) so any backend/GPU arrangement that delivers the same
// images yields the same proxy.
func TestTrainerLossIndependentOfArrangement(t *testing.T) {
	digest := func(gpus, batch int) uint64 {
		r := newRig(t, 24, batch, gpus)
		tr, err := NewTrainer(TrainerConfig{Profile: perf.LeNet5, Solvers: r.solvers})
		if err != nil {
			t.Fatal(err)
		}
		errc := r.pump(t)
		st, err := tr.Run()
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2; i++ {
			if err := <-errc; err != nil {
				t.Fatal(err)
			}
		}
		return st.LossProxy
	}
	a := digest(1, 8)
	b := digest(2, 8)
	c := digest(2, 4)
	if a != b || b != c {
		t.Fatalf("digests differ: %x %x %x", a, b, c)
	}
}

func TestTrainerBusyBreakdown(t *testing.T) {
	r := newRig(t, 16, 8, 1)
	busy := metrics.NewBusyTracker()
	tr, err := NewTrainer(TrainerConfig{Profile: perf.LeNet5, Solvers: r.solvers, Busy: busy})
	if err != nil {
		t.Fatal(err)
	}
	errc := r.pump(t)
	st, err := tr.Run()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
	el := st.Elapsed.Seconds()
	cores := busy.Cores(el)
	if diff := cores["kernels"] - perf.KernelLaunchCores; diff > 0.01 || diff < -0.01 {
		t.Fatalf("kernels cores = %v", cores["kernels"])
	}
	if cores["update"] <= 0 || cores["transform"] <= 0 {
		t.Fatalf("breakdown missing: %v", cores)
	}
}

func TestTrainerValidation(t *testing.T) {
	if _, err := NewTrainer(TrainerConfig{Profile: perf.LeNet5}); err == nil {
		t.Fatal("no solvers accepted")
	}
	r := newRig(t, 8, 8, 1)
	if _, err := NewTrainer(TrainerConfig{Profile: perf.TrainProfile{}, Solvers: r.solvers}); err == nil {
		t.Fatal("zero profile accepted")
	}
}

func TestTrainerPacing(t *testing.T) {
	// Pacing must call the sleeper with batch/(rate·syncEff).
	var slept []float64
	old := sleepSeconds
	sleepSeconds = func(s float64) { slept = append(slept, s) }
	defer func() { sleepSeconds = old }()
	r := newRig(t, 16, 8, 1)
	tr, err := NewTrainer(TrainerConfig{Profile: perf.LeNet5, Solvers: r.solvers, PaceCompute: true})
	if err != nil {
		t.Fatal(err)
	}
	errc := r.pump(t)
	if _, err := tr.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
	if len(slept) != 2 {
		t.Fatalf("paced %d iterations, want 2", len(slept))
	}
	want := 8.0 / perf.LeNet5.IdealRate
	if slept[0] < want*0.99 || slept[0] > want*1.01 {
		t.Fatalf("paced %v s, want %v", slept[0], want)
	}
}

func TestInferenceEngine(t *testing.T) {
	r := newRig(t, 24, 8, 1)
	lat := &metrics.Histogram{}
	var mu sync.Mutex
	var preds []Prediction
	inf, err := NewInference(InferenceConfig{
		Profile: perf.GoogLeNet,
		Solver:  r.solvers[0],
		Classes: 10,
		Latency: lat,
		Emit: func(p Prediction) {
			mu.Lock()
			preds = append(preds, p)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	errc := r.pump(t)
	st, err := inf.Run()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
	if st.Images != 24 || st.Batches != 3 {
		t.Fatalf("stats = %+v", st)
	}
	if lat.Count() != 24 {
		t.Fatalf("latency samples = %d", lat.Count())
	}
	if lat.Min() < 0 {
		t.Fatal("negative latency")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(preds) != 24 {
		t.Fatalf("predictions = %d", len(preds))
	}
	for _, p := range preds {
		if p.Label < 0 || p.Label >= 10 {
			t.Fatalf("label %d out of range", p.Label)
		}
	}
	// Determinism: the same image always gets the same label.
	seen := map[int]int{}
	for _, p := range preds {
		seen[p.Seq] = p.Label
	}
	if len(seen) != 24 {
		t.Fatalf("distinct items = %d", len(seen))
	}
}

func TestInferenceValidation(t *testing.T) {
	if _, err := NewInference(InferenceConfig{Profile: perf.GoogLeNet}); err == nil {
		t.Fatal("nil solver accepted")
	}
	r := newRig(t, 8, 8, 1)
	if _, err := NewInference(InferenceConfig{Solver: r.solvers[0]}); err == nil {
		t.Fatal("zero profile accepted")
	}
}

func TestInferencePaced(t *testing.T) {
	var slept []float64
	old := sleepSeconds
	sleepSeconds = func(s float64) { slept = append(slept, s) }
	defer func() { sleepSeconds = old }()
	r := newRig(t, 16, 8, 1)
	inf, err := NewInference(InferenceConfig{Profile: perf.VGG16, Solver: r.solvers[0], PaceCompute: true})
	if err != nil {
		t.Fatal(err)
	}
	errc := r.pump(t)
	if _, err := inf.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
	if len(slept) != 2 {
		t.Fatalf("paced %d batches", len(slept))
	}
	want := perf.VGG16.BatchSeconds(8)
	if slept[0] != want {
		t.Fatalf("paced %v, want %v", slept[0], want)
	}
}

func TestEndToEndLatencyIsMeasuredFromReceipt(t *testing.T) {
	// Items stamped in the past must show correspondingly large latency.
	r := newRig(t, 8, 8, 1)
	lat := &metrics.Histogram{}
	inf, err := NewInference(InferenceConfig{Profile: perf.GoogLeNet, Solver: r.solvers[0], Latency: lat})
	if err != nil {
		t.Fatal(err)
	}
	// Feed items with a back-dated timestamp through a custom collector.
	items := make([]core.Item, 8)
	for i := range items {
		data, err := r.spec.JPEG(i)
		if err != nil {
			t.Fatal(err)
		}
		items[i] = core.Item{
			Ref:  refInline(data),
			Meta: core.ItemMeta{Seq: i, ReceivedAt: time.Now().Add(-time.Second)},
		}
	}
	d, err := core.NewDispatcher(r.backend.Batches(), r.backend.RecycleBatch, r.solvers, core.DispatcherConfig{})
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 2)
	go func() { errc <- d.Run() }()
	go func() {
		if err := r.backend.RunEpoch(core.CollectorFromItems(items)); err != nil {
			errc <- err
			return
		}
		r.backend.CloseBatches()
		errc <- nil
	}()
	if _, err := inf.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
	if lat.Min() < 1000 {
		t.Fatalf("latency min = %v ms, want >= 1000 (back-dated receipt)", lat.Min())
	}
}

// refInline builds an inline DataRef without importing fpga everywhere.
func refInline(data []byte) fpga.DataRef { return fpga.DataRef{Inline: data} }
