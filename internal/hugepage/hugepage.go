// Package hugepage simulates the HugePage-backed memory management of
// DLBooster's host bridger (§3.4.2, Algorithm 2 of the paper).
//
// The real system allocates one very large (>1 GB) physically contiguous
// region through Linux HugePages, slices it into fixed-size batch buffers,
// and hands the FPGA decoder *physical* addresses to DMA into while the
// host works with the corresponding *virtual* addresses. A Go process has
// no physical addresses, so the Arena models the mapping explicitly: a
// single contiguous Go allocation stands in for the pinned region, a
// configurable base constant stands in for its physical base address, and
// phy2virt/virt2phy are exact inverses over that window — which is all the
// decoder and host bridger ever relied on.
package hugepage

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"dlbooster/internal/metrics"
	"dlbooster/internal/queue"
)

// PhysAddr is a simulated physical memory address handed to device DMA
// engines (the FPGA decoder writes processed batches to these).
type PhysAddr uint64

// DefaultPhysBase is the simulated physical base address of an arena. The
// value is arbitrary; it is non-zero so that address-arithmetic bugs
// (confusing offsets with addresses) fail loudly in tests.
const DefaultPhysBase PhysAddr = 0x1_0000_0000

// Arena is one contiguous "huge page" region with a physical-address
// window starting at Base.
type Arena struct {
	mem  []byte
	base PhysAddr
}

// NewArena allocates a contiguous region of the given size with the
// default physical base. Size must be positive.
func NewArena(size int) (*Arena, error) {
	return NewArenaAt(size, DefaultPhysBase)
}

// NewArenaAt allocates a contiguous region with an explicit physical base.
func NewArenaAt(size int, base PhysAddr) (*Arena, error) {
	if size <= 0 {
		return nil, fmt.Errorf("hugepage: arena size %d must be positive", size)
	}
	return &Arena{mem: make([]byte, size), base: base}, nil
}

// Size returns the arena size in bytes.
func (a *Arena) Size() int { return len(a.mem) }

// Base returns the simulated physical base address.
func (a *Arena) Base() PhysAddr { return a.base }

// errAddr reports an out-of-window translation attempt.
var errAddr = errors.New("hugepage: address out of range")

// Phy2Virt returns the length bytes of arena memory backing the physical
// range [addr, addr+length). It is the phy2virt API of Table 1.
func (a *Arena) Phy2Virt(addr PhysAddr, length int) ([]byte, error) {
	if length < 0 {
		return nil, fmt.Errorf("hugepage: negative length %d: %w", length, errAddr)
	}
	if addr < a.base {
		return nil, fmt.Errorf("hugepage: phys %#x below base %#x: %w", addr, a.base, errAddr)
	}
	off := uint64(addr - a.base)
	if off+uint64(length) > uint64(len(a.mem)) {
		return nil, fmt.Errorf("hugepage: phys %#x+%d beyond arena end: %w", addr, length, errAddr)
	}
	return a.mem[off : off+uint64(length) : off+uint64(length)], nil
}

// Virt2Phy returns the physical address of the byte at the given arena
// offset. Virtual addresses in the simulation are arena offsets; Buffer
// carries both views so pipeline code never computes them by hand.
func (a *Arena) Virt2Phy(offset int) (PhysAddr, error) {
	if offset < 0 || offset >= len(a.mem) {
		return 0, fmt.Errorf("hugepage: offset %d outside arena of %d bytes: %w", offset, len(a.mem), errAddr)
	}
	return a.base + PhysAddr(offset), nil
}

// Buffer is one fixed-size slice of the arena — a "memory piece" in the
// paper's terms, sized to carry one processed batch. It records its
// physical address, virtual view and identity exactly as Algorithm 2's
// items record phy_addr, virt_addr and size.
type Buffer struct {
	index int
	phys  PhysAddr
	data  []byte
	pool  *Pool
}

// Index returns the buffer's position in its pool (0..Count-1).
func (b *Buffer) Index() int { return b.index }

// PhysAddr returns the simulated physical address of the buffer start.
func (b *Buffer) PhysAddr() PhysAddr { return b.phys }

// Bytes returns the buffer's virtual view. The slice aliases arena memory;
// it must not be retained after the buffer is recycled to the pool.
func (b *Buffer) Bytes() []byte { return b.data }

// Size returns the buffer capacity in bytes.
func (b *Buffer) Size() int { return len(b.data) }

// Recycle returns the buffer to its pool's free queue (Table 1
// recycle_item). Recycling a buffer twice corrupts the free list, so the
// pool checks and reports it.
func (b *Buffer) Recycle() error { return b.pool.Put(b) }

// Pool is the MemManager of Algorithm 2: it pre-allocates Count buffers of
// Size bytes from a single arena and serves them through a blocking free
// queue. DLBooster's FPGAReader blocks on Get when the decoder has filled
// every buffer, which is the back-pressure mechanism that bounds decode
// ahead of the compute engines.
type Pool struct {
	arena *Arena
	size  int
	count int
	free  *queue.Queue[*Buffer]

	// gets/puts are always maintained (cheap atomics); reg is the
	// optional observability registry — nil keeps Get free of timestamp
	// work, the cheap-by-default contract of the telemetry layer.
	gets metrics.Counter
	puts metrics.Counter
	reg  *metrics.Registry

	mu  sync.Mutex
	out []bool // out[i] reports buffer i currently checked out
	// outCount mirrors the number of true entries in out, so the
	// Outstanding gauge reads an atomic instead of scanning the slice
	// under the lock on every snapshot.
	outCount metrics.Counter
}

// NewPool builds an arena of size*count bytes, slices it, and populates
// the free queue, mirroring the pre-allocation loop of Algorithm 2.
func NewPool(size, count int) (*Pool, error) {
	if size <= 0 || count <= 0 {
		return nil, fmt.Errorf("hugepage: pool size %d count %d must be positive", size, count)
	}
	arena, err := NewArena(size * count)
	if err != nil {
		return nil, err
	}
	p := &Pool{
		arena: arena,
		size:  size,
		count: count,
		free:  queue.New[*Buffer](count),
		out:   make([]bool, count),
	}
	for i := 0; i < count; i++ {
		phys, err := arena.Virt2Phy(i * size)
		if err != nil {
			return nil, err
		}
		data, err := arena.Phy2Virt(phys, size)
		if err != nil {
			return nil, err
		}
		b := &Buffer{index: i, phys: phys, data: data, pool: p}
		if err := p.free.Push(b); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// Arena exposes the backing arena for address translation.
func (p *Pool) Arena() *Arena { return p.arena }

// BufferSize returns the per-buffer capacity in bytes.
func (p *Pool) BufferSize() int { return p.size }

// Count returns the number of buffers in the pool.
func (p *Pool) Count() int { return p.count }

// FreeLen returns the number of buffers currently available.
func (p *Pool) FreeLen() int { return p.free.Len() }

// Available reports without blocking whether a free buffer exists — the
// free_batch_queue.peak() probe of Algorithm 1.
func (p *Pool) Available() bool {
	_, ok := p.free.Peek()
	return ok
}

// Get removes a buffer from the free queue, blocking until one is
// available (Table 1 get_item). It returns queue.ErrClosed after Close.
func (p *Pool) Get() (*Buffer, error) {
	var start time.Time
	if p.reg.On() {
		start = time.Now()
	}
	b, err := p.free.Pop()
	if err != nil {
		return nil, err
	}
	if p.reg.On() {
		p.reg.ObserveSince(metrics.StageGetItemWait, start)
	}
	p.gets.Add(1)
	p.setOut(b.index, true)
	return b, nil
}

// TryGet removes a buffer without blocking; ok is false when the pool is
// exhausted.
func (p *Pool) TryGet() (b *Buffer, ok bool, err error) {
	b, ok, err = p.free.TryPop()
	if ok {
		p.gets.Add(1)
		p.setOut(b.index, true)
	}
	return b, ok, err
}

// Put recycles a buffer to the free queue (Table 1 recycle_item). It
// rejects foreign buffers and double recycles.
func (p *Pool) Put(b *Buffer) error {
	if b == nil || b.pool != p {
		return errors.New("hugepage: buffer does not belong to this pool")
	}
	p.mu.Lock()
	if !p.out[b.index] {
		p.mu.Unlock()
		return fmt.Errorf("hugepage: double recycle of buffer %d", b.index)
	}
	p.out[b.index] = false
	p.mu.Unlock()
	p.outCount.Add(-1)
	p.puts.Add(1)
	return p.free.Push(b)
}

// Gets returns the number of successful buffer checkouts (get_item).
func (p *Pool) Gets() int64 { return p.gets.Value() }

// Puts returns the number of buffer recycles (recycle_item).
func (p *Pool) Puts() int64 { return p.puts.Value() }

// Instrument registers the pool's telemetry with a registry: the
// hugepage_gets_total / hugepage_puts_total counters, the
// hugepage_outstanding gauge and the hugepage_free queue depth — all
// pull-based, read only at snapshot time. traceWaits additionally
// enables the get_item_wait latency histogram on Get, which costs two
// timestamps per checkout — callers leave it off unless full tracing
// was requested. A nil registry is a no-op.
func (p *Pool) Instrument(r *metrics.Registry, traceWaits bool) {
	if !r.On() {
		return
	}
	if traceWaits {
		p.reg = r
	}
	r.RegisterCounterFunc("hugepage_gets_total", p.gets.Value)
	r.RegisterCounterFunc("hugepage_puts_total", p.puts.Value)
	r.RegisterGauge("hugepage_outstanding", func() float64 { return float64(p.Outstanding()) })
	r.RegisterQueue("hugepage_free", p.FreeLen, func() int { return p.count })
}

// Outstanding returns the number of buffers currently checked out — the
// leak/double-free balance the chaos tests assert over: after a clean
// drain it must be zero, and it can never exceed Count.
func (p *Pool) Outstanding() int { return int(p.outCount.Value()) }

// Close shuts the free queue down, waking any goroutine blocked in Get.
func (p *Pool) Close() { p.free.Close() }

func (p *Pool) setOut(i int, v bool) {
	p.mu.Lock()
	p.out[i] = v
	p.mu.Unlock()
	if v {
		p.outCount.Add(1)
	} else {
		p.outCount.Add(-1)
	}
}
