package hugepage

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"dlbooster/internal/queue"
)

func TestArenaBounds(t *testing.T) {
	a, err := NewArena(1024)
	if err != nil {
		t.Fatal(err)
	}
	if a.Size() != 1024 {
		t.Fatalf("Size = %d", a.Size())
	}
	if a.Base() != DefaultPhysBase {
		t.Fatalf("Base = %#x", a.Base())
	}
	if _, err := NewArena(0); err == nil {
		t.Fatal("NewArena(0) succeeded")
	}
	if _, err := NewArena(-5); err == nil {
		t.Fatal("NewArena(-5) succeeded")
	}
}

func TestPhy2VirtVirt2PhyRoundTrip(t *testing.T) {
	a, err := NewArenaAt(256, 0x4000)
	if err != nil {
		t.Fatal(err)
	}
	for _, off := range []int{0, 1, 100, 255} {
		phys, err := a.Virt2Phy(off)
		if err != nil {
			t.Fatalf("Virt2Phy(%d): %v", off, err)
		}
		if phys != 0x4000+PhysAddr(off) {
			t.Fatalf("Virt2Phy(%d) = %#x", off, phys)
		}
		view, err := a.Phy2Virt(phys, 1)
		if err != nil {
			t.Fatalf("Phy2Virt(%#x): %v", phys, err)
		}
		view[0] = byte(off)
		// The write must be visible through a fresh full-arena view.
		all, err := a.Phy2Virt(a.Base(), a.Size())
		if err != nil {
			t.Fatal(err)
		}
		if all[off] != byte(off) {
			t.Fatalf("write through Phy2Virt view not visible at offset %d", off)
		}
	}
}

func TestTranslationErrors(t *testing.T) {
	a, _ := NewArenaAt(64, 0x1000)
	cases := []struct {
		name string
		f    func() error
	}{
		{"below base", func() error { _, err := a.Phy2Virt(0xFFF, 1); return err }},
		{"beyond end", func() error { _, err := a.Phy2Virt(0x1000, 65); return err }},
		{"straddles end", func() error { _, err := a.Phy2Virt(0x103F, 2); return err }},
		{"negative length", func() error { _, err := a.Phy2Virt(0x1000, -1); return err }},
		{"negative offset", func() error { _, err := a.Virt2Phy(-1); return err }},
		{"offset at end", func() error { _, err := a.Virt2Phy(64); return err }},
	}
	for _, tc := range cases {
		if err := tc.f(); !errors.Is(err, errAddr) {
			t.Errorf("%s: err = %v, want errAddr", tc.name, err)
		}
	}
	// Zero-length view at base is legal (empty DMA window).
	if _, err := a.Phy2Virt(0x1000, 0); err != nil {
		t.Errorf("zero-length view: %v", err)
	}
}

// TestTranslationBijection: Virt2Phy followed by Phy2Virt lands on the
// same byte for every valid offset, for arbitrary arena geometry.
func TestTranslationBijection(t *testing.T) {
	f := func(sizeSeed uint16, baseSeed uint32, offSeed uint16) bool {
		size := int(sizeSeed%4096) + 1
		base := PhysAddr(baseSeed)
		off := int(offSeed) % size
		a, err := NewArenaAt(size, base)
		if err != nil {
			return false
		}
		phys, err := a.Virt2Phy(off)
		if err != nil {
			return false
		}
		view, err := a.Phy2Virt(phys, 1)
		if err != nil {
			return false
		}
		view[0] = 0xAB
		all, err := a.Phy2Virt(base, size)
		if err != nil {
			return false
		}
		return all[off] == 0xAB
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPoolGetPut(t *testing.T) {
	p, err := NewPool(128, 4)
	if err != nil {
		t.Fatal(err)
	}
	if p.BufferSize() != 128 || p.Count() != 4 || p.FreeLen() != 4 {
		t.Fatalf("pool geometry wrong: size=%d count=%d free=%d", p.BufferSize(), p.Count(), p.FreeLen())
	}
	b, err := p.Get()
	if err != nil {
		t.Fatal(err)
	}
	if b.Size() != 128 {
		t.Fatalf("buffer size = %d", b.Size())
	}
	if p.FreeLen() != 3 {
		t.Fatalf("FreeLen after Get = %d", p.FreeLen())
	}
	copy(b.Bytes(), []byte("hello"))
	// The write must be visible through the physical window.
	view, err := p.Arena().Phy2Virt(b.PhysAddr(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(view, []byte("hello")) {
		t.Fatalf("phys view = %q", view)
	}
	if err := b.Recycle(); err != nil {
		t.Fatal(err)
	}
	if p.FreeLen() != 4 {
		t.Fatalf("FreeLen after Recycle = %d", p.FreeLen())
	}
}

func TestPoolBuffersAreDisjoint(t *testing.T) {
	p, err := NewPool(16, 8)
	if err != nil {
		t.Fatal(err)
	}
	var bufs []*Buffer
	for i := 0; i < 8; i++ {
		b, err := p.Get()
		if err != nil {
			t.Fatal(err)
		}
		for j := range b.Bytes() {
			b.Bytes()[j] = byte(b.Index())
		}
		bufs = append(bufs, b)
	}
	for _, b := range bufs {
		for j, v := range b.Bytes() {
			if v != byte(b.Index()) {
				t.Fatalf("buffer %d byte %d = %d: buffers overlap", b.Index(), j, v)
			}
		}
	}
	// Physical addresses must tile the arena without gaps or overlap.
	seen := map[PhysAddr]bool{}
	for _, b := range bufs {
		if seen[b.PhysAddr()] {
			t.Fatalf("duplicate phys addr %#x", b.PhysAddr())
		}
		seen[b.PhysAddr()] = true
		if (b.PhysAddr()-p.Arena().Base())%PhysAddr(p.BufferSize()) != 0 {
			t.Fatalf("phys addr %#x not aligned to buffer size", b.PhysAddr())
		}
	}
}

func TestPoolExhaustionBlocksAndPeek(t *testing.T) {
	p, err := NewPool(8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Available() {
		t.Fatal("Available = false on fresh pool")
	}
	b, _ := p.Get()
	if p.Available() {
		t.Fatal("Available = true on exhausted pool")
	}
	if _, ok, _ := p.TryGet(); ok {
		t.Fatal("TryGet succeeded on exhausted pool")
	}
	got := make(chan *Buffer, 1)
	go func() {
		nb, err := p.Get()
		if err != nil {
			t.Errorf("Get: %v", err)
		}
		got <- nb
	}()
	select {
	case <-got:
		t.Fatal("Get returned while pool exhausted")
	case <-time.After(20 * time.Millisecond):
	}
	if err := p.Put(b); err != nil {
		t.Fatal(err)
	}
	select {
	case nb := <-got:
		if nb.Index() != b.Index() {
			t.Fatalf("got buffer %d, want recycled %d", nb.Index(), b.Index())
		}
	case <-time.After(time.Second):
		t.Fatal("Get did not unblock after Put")
	}
}

func TestPoolRejectsDoubleRecycleAndForeign(t *testing.T) {
	p1, _ := NewPool(8, 2)
	p2, _ := NewPool(8, 2)
	b, _ := p1.Get()
	if err := p1.Put(b); err != nil {
		t.Fatal(err)
	}
	if err := p1.Put(b); err == nil {
		t.Fatal("double recycle accepted")
	}
	b2, _ := p2.Get()
	if err := p1.Put(b2); err == nil {
		t.Fatal("foreign buffer accepted")
	}
	if err := p1.Put(nil); err == nil {
		t.Fatal("nil buffer accepted")
	}
}

func TestPoolClose(t *testing.T) {
	p, _ := NewPool(8, 1)
	b, _ := p.Get()
	_ = b
	errc := make(chan error, 1)
	go func() {
		_, err := p.Get()
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	p.Close()
	if err := <-errc; !errors.Is(err, queue.ErrClosed) {
		t.Fatalf("Get after Close = %v, want ErrClosed", err)
	}
}

func TestPoolConcurrentChurn(t *testing.T) {
	p, err := NewPool(32, 4)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				b, err := p.Get()
				if err != nil {
					t.Errorf("Get: %v", err)
					return
				}
				b.Bytes()[0] = byte(w)
				if b.Bytes()[0] != byte(w) {
					t.Errorf("buffer handed to two workers at once")
				}
				if err := b.Recycle(); err != nil {
					t.Errorf("Recycle: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if p.FreeLen() != 4 {
		t.Fatalf("FreeLen after churn = %d, want 4", p.FreeLen())
	}
}

func TestPoolBadGeometry(t *testing.T) {
	if _, err := NewPool(0, 4); err == nil {
		t.Fatal("NewPool(0,4) succeeded")
	}
	if _, err := NewPool(8, 0); err == nil {
		t.Fatal("NewPool(8,0) succeeded")
	}
}
