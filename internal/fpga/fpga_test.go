package fpga

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"dlbooster/internal/faults"
	"dlbooster/internal/hugepage"
	"dlbooster/internal/imageproc"
	"dlbooster/internal/jpeg"
	"dlbooster/internal/pix"
)

func testImage(w, h, c int, seed int64) *pix.Image {
	rng := rand.New(rand.NewSource(seed))
	img := pix.New(w, h, c)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			base := 40 + (x*160)/w + (y*50)/h
			for ch := 0; ch < c; ch++ {
				img.Set(x, y, ch, byte(base+ch*10+rng.Intn(5)))
			}
		}
	}
	return img
}

func newTestDevice(t *testing.T, cfg Config) (*Device, *hugepage.Pool) {
	t.Helper()
	pool, err := hugepage.NewPool(256*256*3, 16)
	if err != nil {
		t.Fatal(err)
	}
	m, err := LoadMirror("jpeg")
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(cfg, pool.Arena(), nil, m)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	return d, pool
}

func TestDecodeIntoDMAWindow(t *testing.T) {
	d, pool := newTestDevice(t, DefaultConfig())
	src := testImage(100, 80, 3, 1)
	data, err := jpeg.Encode(src, jpeg.EncodeOptions{Quality: 92})
	if err != nil {
		t.Fatal(err)
	}
	buf, err := pool.Get()
	if err != nil {
		t.Fatal(err)
	}
	cmd := Cmd{
		ID:       7,
		Data:     DataRef{Inline: data},
		DMAAddr:  buf.PhysAddr(),
		OutW:     64,
		OutH:     64,
		Channels: 3,
	}
	if err := d.Submit(cmd); err != nil {
		t.Fatal(err)
	}
	comp, err := d.WaitCompletion()
	if err != nil {
		t.Fatal(err)
	}
	if comp.ID != 7 || comp.Err != nil {
		t.Fatalf("completion = %+v", comp)
	}
	if comp.Bytes != 64*64*3 {
		t.Fatalf("bytes = %d", comp.Bytes)
	}
	// The DMA window must contain the bilinear-resized decode.
	decoded, err := jpeg.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	want, err := imageproc.Resize(decoded, 64, 64, imageproc.Bilinear)
	if err != nil {
		t.Fatal(err)
	}
	got, err := pix.FromBytes(64, 64, 3, buf.Bytes()[:64*64*3])
	if err != nil {
		t.Fatal(err)
	}
	if maxd, _ := got.MaxAbsDiff(want); maxd != 0 {
		t.Fatalf("DMA contents differ from reference by %d", maxd)
	}
}

func TestManyCommandsAllComplete(t *testing.T) {
	d, pool := newTestDevice(t, DefaultConfig())
	const n = 64
	// Pre-encode all inputs; the submitter goroutine then only reads.
	payloads := make([][]byte, n)
	for i := 0; i < n; i++ {
		img := testImage(60+i%30, 40+i%20, 3, int64(i))
		data, err := jpeg.Encode(img, jpeg.EncodeOptions{Quality: 85, Subsample420: i%2 == 0})
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		payloads[i] = data
	}
	bufs := make([]*hugepage.Buffer, n)
	for i := range bufs {
		// More commands than pool buffers: reuse in flight is exercised
		// by the recycle below, so hand out buffers round-robin from a
		// private set sized to the pool.
		if i < pool.Count() {
			b, err := pool.Get()
			if err != nil {
				t.Fatal(err)
			}
			bufs[i] = b
		}
	}
	go func() {
		for i := 0; i < n; i++ {
			buf := bufs[i%pool.Count()]
			if err := d.Submit(Cmd{ID: uint64(i), Data: DataRef{Inline: payloads[i]}, DMAAddr: buf.PhysAddr(), OutW: 32, OutH: 32, Channels: 3}); err != nil {
				t.Errorf("submit: %v", err)
				return
			}
		}
	}()
	seen := make(map[uint64]bool)
	for len(seen) < n {
		comp, err := d.WaitCompletion()
		if err != nil {
			t.Fatal(err)
		}
		if comp.Err != nil {
			t.Fatalf("cmd %d failed: %v", comp.ID, comp.Err)
		}
		if seen[comp.ID] {
			t.Fatalf("duplicate completion %d", comp.ID)
		}
		seen[comp.ID] = true
	}
	parser, huff, idct, resize := d.Stats()
	for name, st := range map[string]StageStats{"parser": parser, "huffman": huff, "idct": idct, "resize": resize} {
		if st.Jobs != n {
			t.Fatalf("%s processed %d jobs, want %d", name, st.Jobs, n)
		}
	}
}

func TestCorruptInputRaisesErrorCompletion(t *testing.T) {
	d, pool := newTestDevice(t, DefaultConfig())
	buf, _ := pool.Get()
	cases := []struct {
		name string
		cmd  Cmd
	}{
		{"garbage data", Cmd{ID: 1, Data: DataRef{Inline: []byte{1, 2, 3}}, DMAAddr: buf.PhysAddr(), OutW: 8, OutH: 8, Channels: 3}},
		{"no data source", Cmd{ID: 2, Data: DataRef{Path: "x"}, DMAAddr: buf.PhysAddr(), OutW: 8, OutH: 8, Channels: 3}},
		{"bad channels", Cmd{ID: 3, Data: DataRef{Inline: []byte{1}}, DMAAddr: buf.PhysAddr(), OutW: 8, OutH: 8, Channels: 2}},
		{"zero output", Cmd{ID: 4, Data: DataRef{Inline: []byte{1}}, DMAAddr: buf.PhysAddr(), OutW: 0, OutH: 8, Channels: 3}},
		{"bad DMA", Cmd{ID: 5, Data: DataRef{Inline: []byte{1}}, DMAAddr: 1, OutW: 8, OutH: 8, Channels: 3}},
	}
	for _, tc := range cases {
		if err := d.Submit(tc.cmd); err != nil {
			t.Fatalf("%s: submit: %v", tc.name, err)
		}
		comp, err := d.WaitCompletion()
		if err != nil {
			t.Fatal(err)
		}
		if comp.ID != tc.cmd.ID {
			t.Fatalf("%s: completion for %d, want %d", tc.name, comp.ID, tc.cmd.ID)
		}
		if comp.Err == nil {
			t.Fatalf("%s: no error reported", tc.name)
		}
	}
}

func TestTruncatedJPEGThroughPipeline(t *testing.T) {
	// A stream that parses but dies in the Huffman unit must surface as
	// an error completion from a later stage, not a hang.
	d, pool := newTestDevice(t, DefaultConfig())
	img := testImage(64, 64, 3, 3)
	data, err := jpeg.Encode(img, jpeg.EncodeOptions{Quality: 85})
	if err != nil {
		t.Fatal(err)
	}
	buf, _ := pool.Get()
	trunc := data[:len(data)-len(data)/3]
	if err := d.Submit(Cmd{ID: 9, Data: DataRef{Inline: trunc}, DMAAddr: buf.PhysAddr(), OutW: 16, OutH: 16, Channels: 3}); err != nil {
		t.Fatal(err)
	}
	comp, err := d.WaitCompletion()
	if err != nil {
		t.Fatal(err)
	}
	if comp.Err == nil {
		t.Fatal("truncated stream decoded successfully")
	}
}

func TestChannelMismatchCompletesWithError(t *testing.T) {
	// Grayscale JPEG, command asks for 3 channels: caught at the resize
	// stage boundary.
	d, pool := newTestDevice(t, DefaultConfig())
	img := testImage(32, 32, 1, 4)
	data, err := jpeg.Encode(img, jpeg.EncodeOptions{Quality: 85})
	if err != nil {
		t.Fatal(err)
	}
	buf, _ := pool.Get()
	if err := d.Submit(Cmd{ID: 11, Data: DataRef{Inline: data}, DMAAddr: buf.PhysAddr(), OutW: 16, OutH: 16, Channels: 3}); err != nil {
		t.Fatal(err)
	}
	comp, _ := d.WaitCompletion()
	if comp.Err == nil {
		t.Fatal("channel mismatch not reported")
	}
}

func TestCLBBudgetEnforced(t *testing.T) {
	pool, _ := hugepage.NewPool(1024, 2)
	m, _ := LoadMirror("jpeg")
	// 8-way Huffman exceeds the default fabric (8*5000+8000+2*3000 = 54k).
	_, err := New(Config{HuffmanWays: 8}, pool.Arena(), nil, m)
	if err == nil {
		t.Fatal("over-budget configuration accepted")
	}
	// It fits on a larger fabric.
	d, err := New(Config{HuffmanWays: 8, CLBBudget: 60000}, pool.Arena(), nil, m)
	if err != nil {
		t.Fatal(err)
	}
	d.Close()
	// Default config fits the default fabric (the paper's deployment).
	if DefaultConfig().CLBUsage() > DefaultCLBBudget {
		t.Fatal("paper configuration does not fit default fabric")
	}
}

func TestNewRejectsBadArguments(t *testing.T) {
	pool, _ := hugepage.NewPool(1024, 2)
	m, _ := LoadMirror("jpeg")
	if _, err := New(DefaultConfig(), nil, nil, m); err == nil {
		t.Fatal("nil arena accepted")
	}
	if _, err := New(DefaultConfig(), pool.Arena(), nil, nil); err == nil {
		t.Fatal("nil mirror accepted")
	}
	if _, err := New(Config{HuffmanWays: -1}, pool.Arena(), nil, m); err == nil {
		t.Fatal("negative ways accepted")
	}
}

func TestSubmitAfterCloseFails(t *testing.T) {
	d, pool := newTestDevice(t, DefaultConfig())
	d.Close()
	d.Close() // idempotent
	buf, _ := pool.Get()
	err := d.Submit(Cmd{ID: 1, Data: DataRef{Inline: []byte{1}}, DMAAddr: buf.PhysAddr(), OutW: 1, OutH: 1, Channels: 1})
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close: %v", err)
	}
	if _, err := d.WaitCompletion(); !errors.Is(err, ErrClosed) {
		t.Fatalf("WaitCompletion after Close: %v", err)
	}
}

func TestDrainNonBlocking(t *testing.T) {
	d, pool := newTestDevice(t, DefaultConfig())
	if got := d.Drain(); got != nil {
		t.Fatalf("Drain on idle device = %v", got)
	}
	img := testImage(16, 16, 3, 5)
	data, _ := jpeg.Encode(img, jpeg.EncodeOptions{Quality: 85})
	buf, _ := pool.Get()
	_ = d.Submit(Cmd{ID: 1, Data: DataRef{Inline: data}, DMAAddr: buf.PhysAddr(), OutW: 8, OutH: 8, Channels: 3})
	// Wait for the completion then drain it.
	comp, err := d.WaitCompletion()
	if err != nil || comp.Err != nil {
		t.Fatalf("completion: %v %v", err, comp.Err)
	}
	if got := d.Drain(); len(got) != 0 {
		t.Fatalf("Drain after Wait = %v", got)
	}
}

type fetchSource map[string][]byte

func (f fetchSource) Fetch(ref DataRef) ([]byte, error) {
	b, ok := f[ref.Path]
	if !ok {
		return nil, fmt.Errorf("no object %q", ref.Path)
	}
	if ref.Offset != 0 || (ref.Length != 0 && ref.Length != int64(len(b))) {
		return nil, fmt.Errorf("bad range")
	}
	return b, nil
}

func TestDiskPathViaDataSource(t *testing.T) {
	pool, _ := hugepage.NewPool(64*64*3, 4)
	m, _ := LoadMirror("jpeg")
	img := testImage(48, 48, 3, 6)
	data, _ := jpeg.Encode(img, jpeg.EncodeOptions{Quality: 85})
	src := fetchSource{"train/000.jpg": data}
	d, err := New(DefaultConfig(), pool.Arena(), src, m)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	buf, _ := pool.Get()
	_ = d.Submit(Cmd{ID: 1, Data: DataRef{Path: "train/000.jpg", Length: int64(len(data))}, DMAAddr: buf.PhysAddr(), OutW: 24, OutH: 24, Channels: 3})
	comp, err := d.WaitCompletion()
	if err != nil || comp.Err != nil {
		t.Fatalf("disk-path completion: %v %v", err, comp.Err)
	}
	_ = d.Submit(Cmd{ID: 2, Data: DataRef{Path: "missing"}, DMAAddr: buf.PhysAddr(), OutW: 24, OutH: 24, Channels: 3})
	comp, _ = d.WaitCompletion()
	if comp.Err == nil {
		t.Fatal("missing object decoded")
	}
}

func TestRawMirror(t *testing.T) {
	pool, _ := hugepage.NewPool(32*32*3, 4)
	m, err := LoadMirror("raw")
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(DefaultConfig(), pool.Arena(), nil, m)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if d.Mirror() != "raw" {
		t.Fatalf("Mirror = %q", d.Mirror())
	}
	img := testImage(20, 10, 3, 7)
	buf, _ := pool.Get()
	_ = d.Submit(Cmd{ID: 1, Data: DataRef{Inline: EncodeRaw(img)}, DMAAddr: buf.PhysAddr(), OutW: 20, OutH: 10, Channels: 3})
	comp, err := d.WaitCompletion()
	if err != nil || comp.Err != nil {
		t.Fatalf("raw completion: %v %v", err, comp.Err)
	}
	got, _ := pix.FromBytes(20, 10, 3, buf.Bytes()[:20*10*3])
	if maxd, _ := got.MaxAbsDiff(img); maxd != 0 {
		t.Fatalf("raw passthrough differs by %d", maxd)
	}
	// Malformed raw frames error out.
	for _, bad := range [][]byte{nil, {1, 2}, EncodeRaw(img)[:20]} {
		_ = d.Submit(Cmd{ID: 2, Data: DataRef{Inline: bad}, DMAAddr: buf.PhysAddr(), OutW: 20, OutH: 10, Channels: 3})
		comp, _ := d.WaitCompletion()
		if comp.Err == nil {
			t.Fatal("malformed raw frame accepted")
		}
	}
}

func TestMirrorRegistry(t *testing.T) {
	names := MirrorNames()
	foundJPEG, foundRaw := false, false
	for _, n := range names {
		if n == "jpeg" {
			foundJPEG = true
		}
		if n == "raw" {
			foundRaw = true
		}
	}
	if !foundJPEG || !foundRaw {
		t.Fatalf("registry = %v", names)
	}
	if _, err := LoadMirror("nope"); err == nil {
		t.Fatal("unknown mirror loaded")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("duplicate registration did not panic")
			}
		}()
		RegisterMirror(JPEGMirror{})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("nil registration did not panic")
			}
		}()
		RegisterMirror(nil)
	}()
}

func TestMirrorStageTypeSafety(t *testing.T) {
	var jm JPEGMirror
	if _, err := jm.EntropyDecode("wrong"); err == nil {
		t.Fatal("jpeg mirror accepted wrong job type")
	}
	if _, err := jm.Reconstruct(42); err == nil {
		t.Fatal("jpeg mirror accepted wrong job type")
	}
	var rm RawMirror
	if _, err := rm.Reconstruct("wrong"); err == nil {
		t.Fatal("raw mirror accepted wrong job type")
	}
}

// encodeTestJPEG returns a small encoded image for revocation tests.
func encodeTestJPEG(t *testing.T, seed int64) []byte {
	t.Helper()
	data, err := jpeg.Encode(testImage(64, 64, 1, seed), jpeg.EncodeOptions{Quality: 90})
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestCancelFencesDelayedDMA is the revocation guarantee: the host
// cancels a command while the board is still working on it (an injected
// latency spike parks the parser), and after Cancel returns true no
// byte of the command's DMA window may change and no FINISH may
// surface — the slot can be rescued and the buffer recycled safely.
func TestCancelFencesDelayedDMA(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Inject = faults.New(faults.Config{Delay: 150 * time.Millisecond, DelayEvery: 1, WindowStart: 1, WindowLen: 1})
	d, pool := newTestDevice(t, cfg)
	buf, err := pool.Get()
	if err != nil {
		t.Fatal(err)
	}
	window := buf.Bytes()[:28*28]
	for i := range window {
		window[i] = 0xAB
	}
	cmd := Cmd{
		ID:      1,
		Data:    DataRef{Inline: encodeTestJPEG(t, 3)},
		DMAAddr: buf.PhysAddr(),
		OutW:    28, OutH: 28, Channels: 1,
	}
	if err := d.Submit(cmd); err != nil {
		t.Fatal(err)
	}
	// Wait until the parser has consumed the injector decision (it is
	// now sleeping the delay), then revoke.
	for cfg.Inject.Ops() == 0 {
		time.Sleep(time.Millisecond)
	}
	if !d.Cancel(cmd.ID) {
		t.Fatal("Cancel lost against a board that cannot have finished")
	}
	if !d.Cancel(cmd.ID) {
		t.Fatal("Cancel is not idempotent while the command is in the board")
	}
	// Let the delayed pipeline run the revoked command to its end.
	time.Sleep(300 * time.Millisecond)
	for i, b := range window {
		if b != 0xAB {
			t.Fatalf("revoked command wrote DMA window at byte %d", i)
		}
	}
	if comps := d.Drain(); len(comps) != 0 {
		t.Fatalf("revoked command raised FINISH: %+v", comps)
	}
}

// TestCancelLosesAfterFinish: once a command's FINISH has been raised,
// Cancel must report the revocation lost so the host consumes the
// completion instead of discarding the slot's real result.
func TestCancelLosesAfterFinish(t *testing.T) {
	d, pool := newTestDevice(t, DefaultConfig())
	buf, err := pool.Get()
	if err != nil {
		t.Fatal(err)
	}
	cmd := Cmd{
		ID:      9,
		Data:    DataRef{Inline: encodeTestJPEG(t, 4)},
		DMAAddr: buf.PhysAddr(),
		OutW:    28, OutH: 28, Channels: 1,
	}
	if err := d.Submit(cmd); err != nil {
		t.Fatal(err)
	}
	comp, err := d.WaitCompletion()
	if err != nil || comp.Err != nil {
		t.Fatalf("completion = %+v, err %v", comp, err)
	}
	if d.Cancel(cmd.ID) {
		t.Fatal("Cancel won against an already-finished command")
	}
}

// TestCancelStuckSwallowedCommand: a wedged board swallows commands
// without ever finishing them; the host's revocation must win so the
// swallowed command's slot can be settled and its buffer reused.
func TestCancelStuckSwallowedCommand(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Inject = faults.New(faults.Config{StuckAfter: 1})
	d, pool := newTestDevice(t, cfg)
	buf, err := pool.Get()
	if err != nil {
		t.Fatal(err)
	}
	cmd := Cmd{
		ID:      5,
		Data:    DataRef{Inline: encodeTestJPEG(t, 5)},
		DMAAddr: buf.PhysAddr(),
		OutW:    28, OutH: 28, Channels: 1,
	}
	if err := d.Submit(cmd); err != nil {
		t.Fatal(err)
	}
	for !d.Wedged() {
		time.Sleep(time.Millisecond)
	}
	if !d.Cancel(cmd.ID) {
		t.Fatal("Cancel lost against a wedged board that swallowed the command")
	}
}
