package fpga

import (
	"fmt"
	"sort"
	"sync"

	"dlbooster/internal/jpeg"
	"dlbooster/internal/pix"
)

// The mirror registry models the paper's pluggable decoder images:
// "users [can] download relevant preprocessing mirrors to FPGA devices
// for different applications" (§3.1). Mirrors register by name; a device
// is created with one, and callers pick by workload.

var (
	mirrorMu  sync.RWMutex
	mirrorReg = make(map[string]Mirror)
)

// RegisterMirror adds a decoder image to the registry. Registering a
// duplicate name panics: mirror names are deployment identifiers.
func RegisterMirror(m Mirror) {
	if m == nil {
		panic("fpga: registering nil mirror")
	}
	mirrorMu.Lock()
	defer mirrorMu.Unlock()
	if _, dup := mirrorReg[m.Name()]; dup {
		panic(fmt.Sprintf("fpga: duplicate mirror %q", m.Name()))
	}
	mirrorReg[m.Name()] = m
}

// LoadMirror fetches a registered decoder image by name.
func LoadMirror(name string) (Mirror, error) {
	mirrorMu.RLock()
	defer mirrorMu.RUnlock()
	m, ok := mirrorReg[name]
	if !ok {
		return nil, fmt.Errorf("fpga: no mirror %q (have %v)", name, mirrorNamesLocked())
	}
	return m, nil
}

// MirrorNames lists registered decoder images.
func MirrorNames() []string {
	mirrorMu.RLock()
	defer mirrorMu.RUnlock()
	return mirrorNamesLocked()
}

func mirrorNamesLocked() []string {
	names := make([]string, 0, len(mirrorReg))
	for n := range mirrorReg {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// JPEGMirror is the image-workload decoder of the paper: baseline JPEG
// split across the hardware stages.
type JPEGMirror struct{}

// Name implements Mirror.
func (JPEGMirror) Name() string { return "jpeg" }

// Parse implements Mirror: marker parsing, quant/Huffman table setup.
func (JPEGMirror) Parse(data []byte) (any, error) {
	return jpeg.Parse(data)
}

// EntropyDecode implements Mirror: the Huffman decoding unit.
func (JPEGMirror) EntropyDecode(job any) (any, error) {
	h, ok := job.(*jpeg.Header)
	if !ok {
		return nil, fmt.Errorf("fpga: jpeg mirror got %T", job)
	}
	return h.EntropyDecode()
}

// Reconstruct implements Mirror: the iDCT & RGB unit.
func (JPEGMirror) Reconstruct(job any) (*pix.Image, error) {
	co, ok := job.(*jpeg.Coefficients)
	if !ok {
		return nil, fmt.Errorf("fpga: jpeg mirror got %T", job)
	}
	planes, err := co.Reconstruct()
	if err != nil {
		return nil, err
	}
	return planes.ToImage(), nil
}

// ReconstructScaled implements ScaledMirror: the iDCT & RGB unit sized
// to the resize target. At scale 8 the output is byte-identical to
// Reconstruct; below that, each 8×8 block reconstructs directly at the
// reduced scale and the device's resizer runs only the residual ratio.
func (JPEGMirror) ReconstructScaled(job any, outW, outH int) (*pix.Image, int, error) {
	co, ok := job.(*jpeg.Coefficients)
	if !ok {
		return nil, 0, fmt.Errorf("fpga: jpeg mirror got %T", job)
	}
	return co.ReconstructScaled(outW, outH)
}

// RawMirror decodes the trivial framing used by tests and non-JPEG
// workloads: a 9-byte header (width, height, channels as big-endian
// uint24) followed by raw HWC samples. It stands in for the "different
// DL workloads" mirrors (§3.3) whose decode step is not Huffman-based.
type RawMirror struct{}

// Name implements Mirror.
func (RawMirror) Name() string { return "raw" }

type rawJob struct {
	w, h, c int
	data    []byte
}

func be24(b []byte) int { return int(b[0])<<16 | int(b[1])<<8 | int(b[2]) }

// EncodeRaw frames an image in RawMirror's format.
func EncodeRaw(img *pix.Image) []byte {
	out := make([]byte, 9+len(img.Pix))
	put := func(off, v int) {
		out[off] = byte(v >> 16)
		out[off+1] = byte(v >> 8)
		out[off+2] = byte(v)
	}
	put(0, img.W)
	put(3, img.H)
	put(6, img.C)
	copy(out[9:], img.Pix)
	return out
}

// Parse implements Mirror.
func (RawMirror) Parse(data []byte) (any, error) {
	if len(data) < 9 {
		return nil, fmt.Errorf("fpga: raw frame too short (%d bytes)", len(data))
	}
	j := rawJob{w: be24(data), h: be24(data[3:]), c: be24(data[6:]), data: data[9:]}
	if j.w <= 0 || j.h <= 0 || (j.c != 1 && j.c != 3) {
		return nil, fmt.Errorf("fpga: raw frame geometry %dx%dx%d invalid", j.w, j.h, j.c)
	}
	if len(j.data) != j.w*j.h*j.c {
		return nil, fmt.Errorf("fpga: raw frame payload %d, want %d", len(j.data), j.w*j.h*j.c)
	}
	return j, nil
}

// EntropyDecode implements Mirror (raw frames have no entropy coding).
func (RawMirror) EntropyDecode(job any) (any, error) { return job, nil }

// Reconstruct implements Mirror.
func (RawMirror) Reconstruct(job any) (*pix.Image, error) {
	j, ok := job.(rawJob)
	if !ok {
		return nil, fmt.Errorf("fpga: raw mirror got %T", job)
	}
	return pix.FromBytes(j.w, j.h, j.c, j.data)
}

var _ ScaledMirror = JPEGMirror{}

func init() {
	RegisterMirror(JPEGMirror{})
	RegisterMirror(RawMirror{})
}
