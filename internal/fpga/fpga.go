// Package fpga simulates DLBooster's FPGA-based decoder (paper §3.3,
// Figure 4) as a functionally real device: a FIFO command queue feeds a
// parser, which feeds an N-way Huffman decoding unit, an iDCT & RGB unit
// and an M-way resizer, and finished batches are written by "DMA" into
// HugePage physical addresses before a FINISH completion is raised.
//
// Every stage performs the real computation (via internal/jpeg and
// internal/imageproc) on real bytes, with stage parallelism configured
// the way the paper configures CLBs (4-way Huffman, 2-way resize), so the
// pipelining, load-balance and error behaviour of the hardware design are
// exercised — only the clock is the host's, not an Arria 10's. The
// decoding logic itself is a pluggable Mirror, mirroring the paper's
// downloadable decoder images for different workloads.
package fpga

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dlbooster/internal/faults"
	"dlbooster/internal/hugepage"
	"dlbooster/internal/imageproc"
	"dlbooster/internal/metrics"
	"dlbooster/internal/pix"
	"dlbooster/internal/queue"
)

// Errors reported on completions or submissions.
var (
	ErrClosed      = errors.New("fpga: device closed")
	ErrNoData      = errors.New("fpga: command has no data source")
	ErrBadTarget   = errors.New("fpga: bad DMA target")
	ErrRevoked     = errors.New("fpga: command revoked by host")
	errNilMirror   = errors.New("fpga: nil mirror")
	errBadGeometry = errors.New("fpga: bad output geometry")
)

// DataRef tells the DataReader where a command's raw bytes live: inline
// in host memory (the NIC path — the NIC driver has already placed the
// packet payload), or at an offset of a named object (the NVMe path).
type DataRef struct {
	Inline []byte
	Path   string
	Offset int64
	Length int64
}

// DataSource resolves non-inline DataRefs; the NVMe substrate implements
// it for the disk path.
type DataSource interface {
	Fetch(ref DataRef) ([]byte, error)
}

// Cmd is one decode command, the unit travelling through the FPGA FIFO
// queue of Figure 4. The host bridger encodes the DMA target as a
// physical address plus offset exactly as Algorithm 1 does
// (mem_holder.phyaddr() + offset).
type Cmd struct {
	ID       uint64
	Data     DataRef
	DMAAddr  hugepage.PhysAddr // base physical address of the target buffer
	DMAOff   int               // offset within the buffer
	OutW     int               // resizer output width
	OutH     int               // resizer output height
	Channels int               // 1 or 3
}

// Completion is the FINISH signal for one command.
type Completion struct {
	ID    uint64
	Err   error
	Bytes int // bytes DMA-written on success
}

// Mirror is a pluggable decoder image. Stages correspond to the units of
// Figure 4: Parse runs in the parser, EntropyDecode in the Huffman unit,
// Reconstruct in the iDCT & RGB unit. The resizer stage is
// format-independent and owned by the device.
type Mirror interface {
	Name() string
	Parse(data []byte) (job any, err error)
	EntropyDecode(job any) (any, error)
	Reconstruct(job any) (*pix.Image, error)
}

// ScaledMirror is an optional capability of a Mirror: reconstruct the
// job directly at a reduced scale sized for the command's resize target
// (the libjpeg scale_denom trick applied inside the iDCT unit). The
// returned scale is 8 for a full-resolution reconstruction —
// byte-identical to Reconstruct — and 1, 2 or 4 when the fast path
// engaged, in which case the device's resizer only runs the residual
// ratio. Mirrors without natural scaling (raw passthrough, audio) simply
// do not implement this.
type ScaledMirror interface {
	Mirror
	ReconstructScaled(job any, outW, outH int) (img *pix.Image, scale int, err error)
}

// Config sets the device geometry. The CLB budget enforces the paper's
// resource constraint: stage widths must fit the fabric, which is why
// offloading is selective (§3.1) and the chosen widths are 4/2 (§4.1).
type Config struct {
	HuffmanWays int // parallel Huffman channels (default 4)
	ResizeWays  int // parallel resizers (default 2)
	IDCTWays    int // parallel iDCT lanes (default 1 wide unit)
	CmdQueueCap int // FIFO depth (default 64)

	// CLBBudget is the number of configurable logic blocks available;
	// 0 means DefaultCLBBudget.
	CLBBudget int

	// DisableScaledDecode turns off the decode-to-scale fast path: the
	// iDCT unit then always reconstructs at full resolution even when
	// the mirror implements ScaledMirror. The zero value keeps the fast
	// path on — a hardware decoder that knows the resizer target before
	// reconstruction never computes pixels the resizer will discard.
	DisableScaledDecode bool

	// Inject hooks a fault injector into the command path (nil = no
	// faults). Each command consumes one injector decision in the
	// parser: a latency spike stalls the front-end, Fail raises a
	// FINISH carrying ErrInjected, Corrupt flips payload bytes before
	// parsing (exercising the real decode-error path), and Stuck wedges
	// the board permanently — submitted commands are swallowed and
	// never finish, exactly like a hung device, until Close.
	Inject *faults.Injector
}

// CLB costs per stage instance, in arbitrary fabric units, and the
// default fabric size. With the defaults, 4-way Huffman + 1 iDCT + 2-way
// resize consumes 34k of 40k: the paper's configuration fits, an 8-way
// Huffman does not — "we can flexibly scale running logic to different
// numbers of configurable logic blocks ... according to its workloads and
// hardware constraints".
const (
	CLBPerHuffmanWay = 5000
	CLBPerIDCTWay    = 8000
	CLBPerResizeWay  = 3000
	DefaultCLBBudget = 40000
)

// DefaultConfig is the paper's deployed geometry.
func DefaultConfig() Config {
	return Config{HuffmanWays: 4, ResizeWays: 2, IDCTWays: 1, CmdQueueCap: 64}
}

// CLBUsage returns the fabric consumption of a configuration.
func (c Config) CLBUsage() int {
	return c.HuffmanWays*CLBPerHuffmanWay + c.IDCTWays*CLBPerIDCTWay + c.ResizeWays*CLBPerResizeWay
}

func (c *Config) normalize() error {
	if c.HuffmanWays == 0 {
		c.HuffmanWays = 4
	}
	if c.ResizeWays == 0 {
		c.ResizeWays = 2
	}
	if c.IDCTWays == 0 {
		c.IDCTWays = 1
	}
	if c.CmdQueueCap == 0 {
		c.CmdQueueCap = 64
	}
	if c.CLBBudget == 0 {
		c.CLBBudget = DefaultCLBBudget
	}
	if c.HuffmanWays < 0 || c.ResizeWays < 0 || c.IDCTWays < 0 || c.CmdQueueCap < 1 {
		return fmt.Errorf("fpga: invalid config %+v", c)
	}
	if use := c.CLBUsage(); use > c.CLBBudget {
		return fmt.Errorf("fpga: configuration needs %d CLBs, fabric has %d", use, c.CLBBudget)
	}
	return nil
}

// StageStats is the per-unit accounting used for the load-balance
// ablation (§3.3: none of the units should become the straggler).
type StageStats struct {
	Jobs int64
	Busy time.Duration
}

// cmdState tracks one in-flight command through the revocation fence:
// inflight from Submit until its FINISH is raised, dmaActive strictly
// while the resizer writes the DMA window, cancelled once the host has
// revoked it.
type cmdState uint8

const (
	cmdInflight cmdState = iota
	cmdDMAActive
	cmdCancelled
)

// Device is one simulated FPGA decoder board.
type Device struct {
	cfg    Config
	arena  *hugepage.Arena
	source DataSource

	mu     sync.Mutex
	mirror Mirror

	cmds        *queue.Queue[Cmd]
	completions *queue.Queue[Completion]

	// The revocation fence (Cancel): every submitted command is tracked
	// until its FINISH is raised, and the resizer's DMA write holds
	// dmaActive under regMu's happens-before so a host Cancel can
	// guarantee no write lands after it returns.
	regMu   sync.Mutex
	regCond *sync.Cond
	reg     map[uint64]cmdState

	// stuckc is closed by Close; a wedged parser parks on it so a
	// stuck device still tears down cleanly.
	stuckc chan struct{}
	wedged atomic.Bool

	// Inter-stage channels sized like small hardware FIFOs.
	toHuffman chan stageJob
	toIDCT    chan stageJob
	toResize  chan stageJob

	wg     sync.WaitGroup
	closed sync.Once

	statMu    sync.Mutex
	parserSt  StageStats
	huffmanSt StageStats
	idctSt    StageStats
	resizeSt  StageStats

	// Board-level command accounting: always maintained (cheap atomics),
	// surfaced per board by Instrument.
	submitted atomic.Int64
	finished  atomic.Int64
	cancelled atomic.Int64
	scaled    atomic.Int64 // commands reconstructed below full scale
}

type stageJob struct {
	cmd Cmd
	job any        // mirror-specific intermediate
	img *pix.Image // after Reconstruct
}

// New creates and starts a device. arena is the HugePage window the
// decoder may DMA into; source resolves disk-path DataRefs and may be nil
// if all commands carry inline data; mirror is the decoder image to load
// (JPEGMirror for the image workloads of the paper).
func New(cfg Config, arena *hugepage.Arena, source DataSource, mirror Mirror) (*Device, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	if mirror == nil {
		return nil, errNilMirror
	}
	if arena == nil {
		return nil, errors.New("fpga: nil DMA arena")
	}
	d := &Device{
		cfg:         cfg,
		arena:       arena,
		source:      source,
		mirror:      mirror,
		cmds:        queue.New[Cmd](cfg.CmdQueueCap),
		completions: queue.New[Completion](cfg.CmdQueueCap * 4),
		toHuffman:   make(chan stageJob, cfg.HuffmanWays*2),
		toIDCT:      make(chan stageJob, cfg.IDCTWays*2),
		toResize:    make(chan stageJob, cfg.ResizeWays*2),
		stuckc:      make(chan struct{}),
		reg:         make(map[uint64]cmdState),
	}
	d.regCond = sync.NewCond(&d.regMu)
	d.start()
	return d, nil
}

// Mirror returns the loaded decoder image name.
func (d *Device) Mirror() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.mirror.Name()
}

// Config returns the device geometry.
func (d *Device) Config() Config { return d.cfg }

// Submit pushes a command into the FIFO queue, blocking when it is full
// (the host bridger relies on this back-pressure).
func (d *Device) Submit(cmd Cmd) error {
	d.register(cmd.ID)
	if err := d.cmds.Push(cmd); err != nil {
		d.unregister(cmd.ID)
		return ErrClosed
	}
	d.submitted.Add(1)
	return nil
}

// SubmitTimeout pushes a command but gives up after t when the FIFO
// stays full — the case of a wedged board whose queue never drains. ok
// is false on timeout; the error is ErrClosed after Close.
func (d *Device) SubmitTimeout(cmd Cmd, t time.Duration) (bool, error) {
	d.register(cmd.ID)
	ok, err := d.cmds.PushTimeout(cmd, t)
	if err != nil {
		d.unregister(cmd.ID)
		return false, ErrClosed
	}
	if !ok {
		d.unregister(cmd.ID)
	} else {
		d.submitted.Add(1)
	}
	return ok, nil
}

// register tracks a command before it enters the FIFO, so a FINISH can
// never race an untracked command, and unregister rolls the entry back
// when the FIFO rejects the push.
func (d *Device) register(id uint64) {
	d.regMu.Lock()
	d.reg[id] = cmdInflight
	d.regMu.Unlock()
}

func (d *Device) unregister(id uint64) {
	d.regMu.Lock()
	delete(d.reg, id)
	d.regMu.Unlock()
}

// Cancel revokes a submitted command — the host-side abort doorbell a
// real DMA engine exposes. It returns true when the revocation won: the
// command is still inside the board (queued, parked in a wedged parser,
// or anywhere short of its DMA write) and is now fenced, so no write to
// its DMA window can land after Cancel returns and its FINISH, if the
// pipeline ever reaches one, is suppressed. It returns false when the
// command has already finished: its FINISH is in (or headed to) the
// completion stream and must be consumed normally. If the command's DMA
// write is in progress, Cancel waits the write out before deciding, so
// a true return is always a hard no-more-writes guarantee.
func (d *Device) Cancel(id uint64) bool {
	d.regMu.Lock()
	defer d.regMu.Unlock()
	for {
		st, ok := d.reg[id]
		if !ok {
			return false
		}
		switch st {
		case cmdDMAActive:
			d.regCond.Wait()
		case cmdInflight:
			d.reg[id] = cmdCancelled
			d.cancelled.Add(1)
			return true
		case cmdCancelled:
			return true
		}
	}
}

// dmaBegin gates the resizer's DMA write: false means the host revoked
// the command and the write must not happen. Holding the dmaActive
// state (not the mutex) across the write keeps concurrent resize ways
// independent while still letting Cancel wait out an in-progress write.
func (d *Device) dmaBegin(id uint64) bool {
	d.regMu.Lock()
	defer d.regMu.Unlock()
	st, ok := d.reg[id]
	if !ok || st == cmdCancelled {
		return false
	}
	d.reg[id] = cmdDMAActive
	return true
}

func (d *Device) dmaEnd(id uint64) {
	d.regMu.Lock()
	if d.reg[id] == cmdDMAActive {
		d.reg[id] = cmdInflight
	}
	d.regCond.Broadcast()
	d.regMu.Unlock()
}

// Wedged reports whether an injected stuck fault has hung the board.
// Submitted commands are swallowed until Close; only a host-side
// timeout can detect the condition, as with real hardware.
func (d *Device) Wedged() bool { return d.wedged.Load() }

// Drain returns all completions accumulated so far without blocking —
// the drain_out of Table 1.
func (d *Device) Drain() []Completion {
	return d.completions.Drain()
}

// WaitCompletion blocks for the next completion. It returns ErrClosed
// once the device is closed and drained.
func (d *Device) WaitCompletion() (Completion, error) {
	c, err := d.completions.Pop()
	if err != nil {
		return Completion{}, ErrClosed
	}
	return c, nil
}

// Stats snapshots per-stage accounting in pipeline order: parser,
// Huffman, iDCT, resize.
func (d *Device) Stats() (parser, huffman, idct, resize StageStats) {
	d.statMu.Lock()
	defer d.statMu.Unlock()
	return d.parserSt, d.huffmanSt, d.idctSt, d.resizeSt
}

// Close shuts the pipeline down. In-flight commands complete; pending
// completions remain readable until drained.
func (d *Device) Close() {
	d.closed.Do(func() {
		close(d.stuckc) // release a wedged parser
		d.cmds.Close()
		d.wg.Wait()
		d.completions.Close()
	})
}

func (d *Device) start() {
	// Parser: single front-end, like the hardware's.
	d.wg.Add(1)
	go func() {
		defer d.wg.Done()
		defer close(d.toHuffman)
		for {
			cmd, err := d.cmds.Pop()
			if err != nil {
				return
			}
			d.parse(cmd)
		}
	}()
	// Huffman unit: N ways.
	var huffWG sync.WaitGroup
	for i := 0; i < d.cfg.HuffmanWays; i++ {
		d.wg.Add(1)
		huffWG.Add(1)
		go func() {
			defer d.wg.Done()
			defer huffWG.Done()
			for j := range d.toHuffman {
				d.huffman(j)
			}
		}()
	}
	d.wg.Add(1)
	go func() { defer d.wg.Done(); huffWG.Wait(); close(d.toIDCT) }()
	// iDCT & RGB unit.
	var idctWG sync.WaitGroup
	for i := 0; i < d.cfg.IDCTWays; i++ {
		d.wg.Add(1)
		idctWG.Add(1)
		go func() {
			defer d.wg.Done()
			defer idctWG.Done()
			for j := range d.toIDCT {
				d.idct(j)
			}
		}()
	}
	d.wg.Add(1)
	go func() { defer d.wg.Done(); idctWG.Wait(); close(d.toResize) }()
	// Resizer: M ways, ending at the FINISH arbiter (completions queue).
	for i := 0; i < d.cfg.ResizeWays; i++ {
		d.wg.Add(1)
		go func() {
			defer d.wg.Done()
			for j := range d.toResize {
				d.resize(j)
			}
		}()
	}
}

// finish raises a completion; it is the FINISH arbiter of Figure 4. A
// command the host revoked has already been settled there, so its
// FINISH is swallowed instead of surfacing as an unknown signal. The
// registry entry is dropped before the push so Cancel never blocks
// behind a full completion queue.
func (d *Device) finish(c Completion) {
	d.regMu.Lock()
	st, tracked := d.reg[c.ID]
	delete(d.reg, c.ID)
	d.regMu.Unlock()
	if tracked && st == cmdCancelled {
		return
	}
	d.finished.Add(1)
	// The completion queue is sized generously; if the host stops
	// draining, the push blocks, which stalls the pipeline exactly as a
	// full hardware FIFO would.
	_ = d.completions.Push(c)
}

// Submitted returns the number of commands accepted into the FIFO.
func (d *Device) Submitted() int64 { return d.submitted.Load() }

// Finished returns the number of FINISH signals raised (suppressed
// completions of revoked commands are not counted).
func (d *Device) Finished() int64 { return d.finished.Load() }

// Cancelled returns the number of commands the host revoked in time.
func (d *Device) Cancelled() int64 { return d.cancelled.Load() }

// ScaledDecodes returns the number of commands the iDCT unit
// reconstructed below full scale (the decode-to-scale fast path).
func (d *Device) ScaledDecodes() int64 { return d.scaled.Load() }

// Instrument registers the board's telemetry under the given prefix
// (e.g. "fpga0"): command counters, per-stage busy seconds and job
// counts (the load-balance view of §3.3), and a wedged gauge. All
// series are pull-based — the decode pipeline pays nothing until a
// snapshot is taken. A nil registry is a no-op.
func (d *Device) Instrument(r *metrics.Registry, prefix string) {
	if !r.On() {
		return
	}
	r.RegisterCounterFunc(prefix+"_cmds_total", d.submitted.Load)
	r.RegisterCounterFunc(prefix+"_finishes_total", d.finished.Load)
	r.RegisterCounterFunc(prefix+"_cancels_total", d.cancelled.Load)
	r.RegisterCounterFunc(prefix+"_scaled_total", d.scaled.Load)
	r.RegisterGauge(prefix+"_wedged", func() float64 {
		if d.Wedged() {
			return 1
		}
		return 0
	})
	stage := func(name string, pick func(p, h, i, z StageStats) StageStats) {
		r.RegisterGauge(prefix+"_"+name+"_busy_seconds", func() float64 {
			return pick(d.Stats()).Busy.Seconds()
		})
		r.RegisterGauge(prefix+"_"+name+"_jobs", func() float64 {
			return float64(pick(d.Stats()).Jobs)
		})
	}
	stage("parser", func(p, _, _, _ StageStats) StageStats { return p })
	stage("huffman", func(_, h, _, _ StageStats) StageStats { return h })
	stage("idct", func(_, _, i, _ StageStats) StageStats { return i })
	stage("resize", func(_, _, _, z StageStats) StageStats { return z })
}

func (d *Device) parse(cmd Cmd) {
	// Fault hooks run before the stage accounting so an injected stall
	// does not pollute the load-balance stats.
	plan := d.cfg.Inject.Next()
	if d.wedged.Load() || plan.Stuck {
		// A hung board swallows the command — no FINISH is ever raised.
		// The parser parks until Close so teardown still works.
		d.wedged.Store(true)
		<-d.stuckc
		return
	}
	if plan.Delay > 0 {
		time.Sleep(plan.Delay)
	}
	if plan.Fail || plan.Drop {
		d.finish(Completion{ID: cmd.ID, Err: fmt.Errorf("fpga: decode cmd %d: %w", cmd.ID, faults.ErrInjected)})
		return
	}
	start := time.Now()
	defer func() {
		d.statMu.Lock()
		d.parserSt.Jobs++
		d.parserSt.Busy += time.Since(start)
		d.statMu.Unlock()
	}()
	if cmd.Channels != 1 && cmd.Channels != 3 {
		d.finish(Completion{ID: cmd.ID, Err: errBadGeometry})
		return
	}
	if cmd.OutW <= 0 || cmd.OutH <= 0 {
		d.finish(Completion{ID: cmd.ID, Err: errBadGeometry})
		return
	}
	// Validate the DMA window up front, like the MMU of Figure 4.
	need := cmd.OutW * cmd.OutH * cmd.Channels
	if _, err := d.arena.Phy2Virt(cmd.DMAAddr+hugepage.PhysAddr(cmd.DMAOff), need); err != nil {
		d.finish(Completion{ID: cmd.ID, Err: fmt.Errorf("%w: %v", ErrBadTarget, err)})
		return
	}
	data := cmd.Data.Inline
	if data == nil {
		if d.source == nil {
			d.finish(Completion{ID: cmd.ID, Err: ErrNoData})
			return
		}
		var err error
		data, err = d.source.Fetch(cmd.Data)
		if err != nil {
			d.finish(Completion{ID: cmd.ID, Err: err})
			return
		}
	}
	if plan.Corrupt {
		// Corrupt a copy (the caller's payload may be shared) so the
		// real decode-error path downstream is exercised end to end.
		data = d.cfg.Inject.CorruptBytes(append([]byte(nil), data...))
	}
	job, err := d.currentMirror().Parse(data)
	if err != nil {
		d.finish(Completion{ID: cmd.ID, Err: err})
		return
	}
	d.toHuffman <- stageJob{cmd: cmd, job: job}
}

func (d *Device) huffman(j stageJob) {
	start := time.Now()
	out, err := d.currentMirror().EntropyDecode(j.job)
	d.statMu.Lock()
	d.huffmanSt.Jobs++
	d.huffmanSt.Busy += time.Since(start)
	d.statMu.Unlock()
	if err != nil {
		d.finish(Completion{ID: j.cmd.ID, Err: err})
		return
	}
	j.job = out
	d.toIDCT <- j
}

func (d *Device) idct(j stageJob) {
	start := time.Now()
	var img *pix.Image
	var err error
	m := d.currentMirror()
	if sm, ok := m.(ScaledMirror); ok && !d.cfg.DisableScaledDecode {
		var scale int
		img, scale, err = sm.ReconstructScaled(j.job, j.cmd.OutW, j.cmd.OutH)
		if err == nil && scale < 8 {
			d.scaled.Add(1)
		}
	} else {
		img, err = m.Reconstruct(j.job)
	}
	d.statMu.Lock()
	d.idctSt.Jobs++
	d.idctSt.Busy += time.Since(start)
	d.statMu.Unlock()
	if err != nil {
		d.finish(Completion{ID: j.cmd.ID, Err: err})
		return
	}
	j.job = nil
	j.img = img
	d.toResize <- j
}

func (d *Device) resize(j stageJob) {
	start := time.Now()
	err := d.resizeAndDMA(j)
	d.statMu.Lock()
	d.resizeSt.Jobs++
	d.resizeSt.Busy += time.Since(start)
	d.statMu.Unlock()
	if err != nil {
		d.finish(Completion{ID: j.cmd.ID, Err: err})
		return
	}
	n := j.cmd.OutW * j.cmd.OutH * j.cmd.Channels
	d.finish(Completion{ID: j.cmd.ID, Bytes: n})
}

func (d *Device) resizeAndDMA(j stageJob) error {
	cmd := j.cmd
	if j.img.C != cmd.Channels {
		return fmt.Errorf("fpga: decoded %d channels, command wants %d: %w", j.img.C, cmd.Channels, errBadGeometry)
	}
	need := cmd.OutW * cmd.OutH * cmd.Channels
	window, err := d.arena.Phy2Virt(cmd.DMAAddr+hugepage.PhysAddr(cmd.DMAOff), need)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrBadTarget, err)
	}
	dst, err := pix.FromBytes(cmd.OutW, cmd.OutH, cmd.Channels, window)
	if err != nil {
		return err
	}
	// The resizer writes straight into the DMA window: no intermediate
	// buffer, matching the hardware data path. The write is fenced by
	// the revocation registry: once the host has cancelled the command
	// (it timed out and its slot was settled, possibly recycled), the
	// write must not land.
	if !d.dmaBegin(cmd.ID) {
		return ErrRevoked
	}
	defer d.dmaEnd(cmd.ID)
	return imageproc.ResizeInto(j.img, dst, imageproc.Bilinear)
}

func (d *Device) currentMirror() Mirror {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.mirror
}
