// Package backends defines the common data-preprocessing backend
// contract and implements the paper's three baselines next to DLBooster:
// the CPU-based online decoder (burning cores), the LMDB-style offline
// store reader, and the nvJPEG-style GPU decoder. All four produce the
// same host-side batches consumed by the core Dispatcher, which is what
// lets the evaluation swap backends under an unchanged engine — the
// pluggability claim of §3.1/§4.2.
package backends

import (
	"dlbooster/internal/core"
	"dlbooster/internal/queue"
)

// Backend is a data-preprocessing service: it turns a stream of raw
// items into decoded, batched buffers on a Full queue.
type Backend interface {
	// Name identifies the backend in experiment output.
	Name() string
	// Batches is the queue the Dispatcher drains.
	Batches() *queue.Queue[*core.Batch]
	// RecycleBatch returns a consumed batch's buffer.
	RecycleBatch(*core.Batch) error
	// RunEpoch processes one pass of the collector, blocking until all
	// items are batched. A consumer must drain Batches concurrently.
	RunEpoch(core.DataCollector) error
	// Cache exposes the tiered replay cache for stats and sharing (nil
	// when the backend was built without one).
	Cache() *core.TieredCache
	// CacheComplete reports whether the whole first epoch is resident
	// across the cache tiers (a replay would re-decode nothing).
	CacheComplete() bool
	// CacheReplayable reports whether ReplayCache can serve an epoch at
	// all, re-decoding evicted entries if it must.
	CacheReplayable() bool
	// ReplayCache serves one epoch from the tiered cache (hybrid mode,
	// §3.1); errors wrap core.ErrCacheUnavailable with the cause.
	ReplayCache() error
	// CloseBatches ends the batch stream.
	CloseBatches()
	// Close releases all resources.
	Close()
	// Images returns successfully decoded/loaded image count.
	Images() int64
	// DecodeErrors returns the failed-item count.
	DecodeErrors() int64
}

// DLBooster adapts core.Booster to the Backend interface.
type DLBooster struct {
	*core.Booster
}

// NewDLBooster wraps a configured Booster.
func NewDLBooster(cfg core.Config) (*DLBooster, error) {
	b, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	return &DLBooster{Booster: b}, nil
}

// Name implements Backend.
func (*DLBooster) Name() string { return "dlbooster" }

var _ Backend = (*DLBooster)(nil)
