package backends

import (
	"errors"
	"sort"
	"testing"

	"dlbooster/internal/core"
	"dlbooster/internal/dataset"
	"dlbooster/internal/fpga"
	"dlbooster/internal/gpu"
	"dlbooster/internal/lmdb"
	"dlbooster/internal/metrics"
	"dlbooster/internal/nvme"
)

// collected mirrors core's drained batches for backend-agnostic checks.
type collected struct {
	images int
	metas  []core.ItemMeta
	valid  []bool
	pixels [][]byte
}

func drain(t *testing.T, b Backend) <-chan []collected {
	t.Helper()
	out := make(chan []collected, 1)
	go func() {
		var all []collected
		for {
			batch, err := b.Batches().Pop()
			if err != nil {
				out <- all
				return
			}
			c := collected{images: batch.Images, metas: batch.Metas, valid: batch.Valid}
			for i := 0; i < batch.Images; i++ {
				c.pixels = append(c.pixels, append([]byte(nil), batch.Image(i)...))
			}
			all = append(all, c)
			if err := b.RecycleBatch(batch); err != nil {
				t.Errorf("recycle: %v", err)
			}
		}
	}()
	return out
}

// fixtures shared across backend tests.
const (
	fixCount = 18
	fixBatch = 4
	fixOut   = 28
)

func fixtureSpec() dataset.Spec { return dataset.MNISTLike(fixCount) }

func fixtureDisk(t *testing.T) *nvme.Device {
	t.Helper()
	d := nvme.New(nvme.Config{})
	if _, err := fixtureSpec().WriteToNVMe(d); err != nil {
		t.Fatal(err)
	}
	return d
}

func fixtureCollector(t *testing.T, d *nvme.Device) core.DataCollector {
	t.Helper()
	spec := fixtureSpec()
	col, err := core.LoadFromDisk(d, func(name string, i int) int { return spec.Label(i) })
	if err != nil {
		t.Fatal(err)
	}
	return col
}

// verifyEpoch checks an epoch's output regardless of batch order.
func verifyEpoch(t *testing.T, all []collected, wantImages int, batch int) {
	t.Helper()
	spec := fixtureSpec()
	seen := map[int]bool{}
	for _, c := range all {
		if c.images > batch {
			t.Fatalf("batch with %d images exceeds batch size %d", c.images, batch)
		}
		for s := 0; s < c.images; s++ {
			if !c.valid[s] {
				t.Fatalf("invalid slot for item %d", c.metas[s].Seq)
			}
			idx := c.metas[s].Seq
			if seen[idx] {
				t.Fatalf("item %d delivered twice", idx)
			}
			seen[idx] = true
			if c.metas[s].Label != spec.Label(idx) {
				t.Fatalf("item %d label %d, want %d", idx, c.metas[s].Label, spec.Label(idx))
			}
			allZero := true
			for _, v := range c.pixels[s] {
				if v != 0 {
					allZero = false
					break
				}
			}
			if allZero {
				t.Fatalf("item %d has empty pixels", idx)
			}
		}
	}
	if len(seen) != wantImages {
		t.Fatalf("delivered %d distinct images, want %d", len(seen), wantImages)
	}
}

func runBackendEpoch(t *testing.T, b Backend, col core.DataCollector) []collected {
	t.Helper()
	results := drain(t, b)
	if err := b.RunEpoch(col); err != nil {
		t.Fatal(err)
	}
	b.CloseBatches()
	return <-results
}

func TestDLBoosterBackend(t *testing.T) {
	disk := fixtureDisk(t)
	b, err := NewDLBooster(core.Config{
		BatchSize: fixBatch, OutW: fixOut, OutH: fixOut, Channels: 1,
		PoolBatches: 3, Source: disk,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if b.Name() != "dlbooster" {
		t.Fatalf("Name = %q", b.Name())
	}
	all := runBackendEpoch(t, b, fixtureCollector(t, disk))
	verifyEpoch(t, all, fixCount, fixBatch)
	if b.Images() != fixCount {
		t.Fatalf("Images = %d", b.Images())
	}
}

func TestCPUBackend(t *testing.T) {
	disk := fixtureDisk(t)
	busy := metrics.NewBusyTracker()
	b, err := NewCPU(CPUConfig{
		BatchSize: fixBatch, OutW: fixOut, OutH: fixOut, Channels: 1,
		PoolBatches: 3, Workers: 3, Source: disk, Busy: busy,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if b.Name() != "cpu" || b.Workers() != 3 {
		t.Fatalf("identity: %q/%d", b.Name(), b.Workers())
	}
	all := runBackendEpoch(t, b, fixtureCollector(t, disk))
	verifyEpoch(t, all, fixCount, fixBatch)
	if busy.Busy("preprocess") <= 0 {
		t.Fatal("no decode busy time recorded")
	}
}

func fixtureLMDB(t *testing.T) *lmdb.DB {
	t.Helper()
	db := lmdb.New()
	if err := dataset.ConvertToLMDB(fixtureSpec(), db, fixOut, fixOut); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestLMDBBackend(t *testing.T) {
	disk := fixtureDisk(t)
	db := fixtureLMDB(t)
	b, err := NewLMDB(LMDBConfig{
		BatchSize: fixBatch, OutW: fixOut, OutH: fixOut, Channels: 1,
		PoolBatches: 3, DB: db,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if b.Name() != "lmdb" {
		t.Fatalf("Name = %q", b.Name())
	}
	all := runBackendEpoch(t, b, fixtureCollector(t, disk))
	verifyEpoch(t, all, fixCount, fixBatch)
	gets, _, _, _ := db.Stats()
	if gets != fixCount {
		t.Fatalf("store gets = %d", gets)
	}
}

func TestLMDBBackendMissingAndMismatchedRecords(t *testing.T) {
	spec := fixtureSpec()
	db := lmdb.New()
	// Store records at the wrong geometry for half the items and skip
	// the others entirely.
	if err := dataset.ConvertToLMDB(dataset.Spec{
		Name: spec.Name, Count: fixCount / 2, W: spec.W, H: spec.H, C: spec.C,
		Classes: spec.Classes, Quality: spec.Quality, Seed: spec.Seed,
	}, db, 16, 16); err != nil {
		t.Fatal(err)
	}
	disk := fixtureDisk(t)
	b, err := NewLMDB(LMDBConfig{
		BatchSize: fixBatch, OutW: fixOut, OutH: fixOut, Channels: 1,
		PoolBatches: 3, DB: db,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	results := drain(t, b)
	if err := b.RunEpoch(fixtureCollector(t, disk)); err != nil {
		t.Fatal(err)
	}
	b.CloseBatches()
	<-results
	if b.Images() != 0 {
		t.Fatalf("Images = %d, want 0 (wrong geometry + missing)", b.Images())
	}
	if b.DecodeErrors() != fixCount {
		t.Fatalf("DecodeErrors = %d, want %d", b.DecodeErrors(), fixCount)
	}
}

func TestNvJPEGBackend(t *testing.T) {
	disk := fixtureDisk(t)
	dev, err := gpu.NewDevice(0, 1<<26)
	if err != nil {
		t.Fatal(err)
	}
	defer dev.Close()
	busy := metrics.NewBusyTracker()
	b, err := NewNvJPEG(NvJPEGConfig{
		BatchSize: fixBatch, OutW: fixOut, OutH: fixOut, Channels: 1,
		PoolBatches: 3, Device: dev, Lanes: 2, Source: disk, Busy: busy,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if b.Name() != "nvjpeg" {
		t.Fatalf("Name = %q", b.Name())
	}
	all := runBackendEpoch(t, b, fixtureCollector(t, disk))
	verifyEpoch(t, all, fixCount, fixBatch)
	// The decode cost must land on the GPU, not the host tracker.
	if dev.KernelBusy() <= 0 {
		t.Fatal("GPU kernel busy time is zero: decode did not run on device")
	}
}

// TestBackendsProduceIdenticalPixels: all four backends are
// interchangeable — same inputs, same output bytes (DLBooster, CPU and
// nvJPEG decode online with the same codec; LMDB serves the same decode
// done offline).
func TestBackendsProduceIdenticalPixels(t *testing.T) {
	disk := fixtureDisk(t)
	db := fixtureLMDB(t)
	dev, _ := gpu.NewDevice(0, 1<<26)
	defer dev.Close()

	build := map[string]func() (Backend, error){
		"dlbooster": func() (Backend, error) {
			return NewDLBooster(core.Config{BatchSize: fixBatch, OutW: fixOut, OutH: fixOut, Channels: 1, PoolBatches: 3, Source: disk})
		},
		"cpu": func() (Backend, error) {
			return NewCPU(CPUConfig{BatchSize: fixBatch, OutW: fixOut, OutH: fixOut, Channels: 1, PoolBatches: 3, Workers: 2, Source: disk})
		},
		"lmdb": func() (Backend, error) {
			return NewLMDB(LMDBConfig{BatchSize: fixBatch, OutW: fixOut, OutH: fixOut, Channels: 1, PoolBatches: 3, DB: db})
		},
		"nvjpeg": func() (Backend, error) {
			return NewNvJPEG(NvJPEGConfig{BatchSize: fixBatch, OutW: fixOut, OutH: fixOut, Channels: 1, PoolBatches: 3, Device: dev, Source: disk})
		},
	}
	outputs := map[string]map[int][]byte{}
	for name, mk := range build {
		b, err := mk()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		all := runBackendEpoch(t, b, fixtureCollector(t, disk))
		byItem := map[int][]byte{}
		for _, c := range all {
			for s := 0; s < c.images; s++ {
				byItem[c.metas[s].Seq] = c.pixels[s]
			}
		}
		outputs[name] = byItem
		b.Close()
	}
	ref := outputs["dlbooster"]
	var names []string
	for n := range outputs {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		got := outputs[name]
		if len(got) != len(ref) {
			t.Fatalf("%s delivered %d items, want %d", name, len(got), len(ref))
		}
		for idx, pix := range ref {
			other := got[idx]
			if len(other) != len(pix) {
				t.Fatalf("%s item %d length %d vs %d", name, idx, len(other), len(pix))
			}
			for j := range pix {
				if pix[j] != other[j] {
					t.Fatalf("%s item %d differs from dlbooster at byte %d", name, idx, j)
				}
			}
		}
	}
}

func TestBackendCacheParity(t *testing.T) {
	// CPU backend with cache behaves like DLBooster's hybrid mode.
	disk := fixtureDisk(t)
	b, err := NewCPU(CPUConfig{
		BatchSize: fixBatch, OutW: fixOut, OutH: fixOut, Channels: 1,
		PoolBatches: 3, Workers: 2, Source: disk, CacheLimitBytes: 1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	results := drain(t, b)
	if err := b.RunEpoch(fixtureCollector(t, disk)); err != nil {
		t.Fatal(err)
	}
	if !b.CacheComplete() {
		t.Fatal("cache incomplete after epoch")
	}
	if err := b.ReplayCache(); err != nil {
		t.Fatal(err)
	}
	b.CloseBatches()
	all := <-results
	verify := map[int]int{}
	for _, c := range all {
		for s := 0; s < c.images; s++ {
			verify[c.metas[s].Seq]++
		}
	}
	for idx, n := range verify {
		if n != 2 {
			t.Fatalf("item %d delivered %d times, want 2 (epoch + replay)", idx, n)
		}
	}
}

func TestBackendValidation(t *testing.T) {
	if _, err := NewCPU(CPUConfig{BatchSize: 1, OutW: 8, OutH: 8, Channels: 1, Workers: 0}); err == nil {
		t.Fatal("zero workers accepted")
	}
	if _, err := NewCPU(CPUConfig{BatchSize: 0, OutW: 8, OutH: 8, Channels: 1, Workers: 1}); err == nil {
		t.Fatal("zero batch accepted")
	}
	if _, err := NewLMDB(LMDBConfig{BatchSize: 1, OutW: 8, OutH: 8, Channels: 1}); err == nil {
		t.Fatal("nil DB accepted")
	}
	if _, err := NewNvJPEG(NvJPEGConfig{BatchSize: 1, OutW: 8, OutH: 8, Channels: 1}); err == nil {
		t.Fatal("nil device accepted")
	}
	dev, _ := gpu.NewDevice(0, 1<<20)
	defer dev.Close()
	if _, err := NewNvJPEG(NvJPEGConfig{BatchSize: 1, OutW: 8, OutH: 8, Channels: 1, Device: dev, Lanes: -1}); err == nil {
		t.Fatal("negative lanes accepted")
	}
	var cpu *CPU
	c, err := NewCPU(CPUConfig{BatchSize: 1, OutW: 8, OutH: 8, Channels: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	cpu = c
	if err := cpu.RunEpoch(nil); err == nil {
		t.Fatal("nil collector accepted")
	}
	if err := cpu.RecycleBatch(nil); err == nil {
		t.Fatal("nil batch accepted")
	}
	if err := cpu.ReplayCache(); !errors.Is(err, core.ErrCacheUnavailable) {
		t.Fatalf("ReplayCache = %v", err)
	}
	cpu.Close()
}

func TestCPUDecodeErrorsCounted(t *testing.T) {
	spec := fixtureSpec()
	items := make([]core.Item, 4)
	for i := range items {
		data, err := spec.JPEG(i)
		if err != nil {
			t.Fatal(err)
		}
		if i%2 == 1 {
			data = data[:10]
		}
		items[i] = core.Item{Ref: fpga.DataRef{Inline: data}, Meta: core.ItemMeta{Seq: i}}
	}
	b, err := NewCPU(CPUConfig{BatchSize: 2, OutW: fixOut, OutH: fixOut, Channels: 1, PoolBatches: 2, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	results := drain(t, b)
	if err := b.RunEpoch(core.CollectorFromItems(items)); err != nil {
		t.Fatal(err)
	}
	b.CloseBatches()
	<-results
	if b.Images() != 2 || b.DecodeErrors() != 2 {
		t.Fatalf("images=%d errors=%d", b.Images(), b.DecodeErrors())
	}
}

// TestProgressiveInputsDifferentiateBackends: the FPGA decoder (like
// real hardware JPEG decoders) is baseline-only, so a progressive corpus
// fails through DLBooster's error path while the CPU backend's software
// decoder handles it.
func TestProgressiveInputsDifferentiateBackends(t *testing.T) {
	spec := fixtureSpec()
	spec.Progressive = true
	disk := nvme.New(nvme.Config{})
	if _, err := spec.WriteToNVMe(disk); err != nil {
		t.Fatal(err)
	}
	col := func() core.DataCollector {
		c, err := core.LoadFromDisk(disk, func(name string, i int) int { return spec.Label(i) })
		if err != nil {
			t.Fatal(err)
		}
		return c
	}

	dlb, err := NewDLBooster(core.Config{BatchSize: fixBatch, OutW: fixOut, OutH: fixOut, Channels: 1, PoolBatches: 3, Source: disk})
	if err != nil {
		t.Fatal(err)
	}
	defer dlb.Close()
	runBackendEpoch(t, dlb, col())
	if dlb.Images() != 0 || dlb.DecodeErrors() != int64(fixCount) {
		t.Fatalf("FPGA backend on progressive: %d ok, %d errors (want all errors)", dlb.Images(), dlb.DecodeErrors())
	}

	cpu, err := NewCPU(CPUConfig{BatchSize: fixBatch, OutW: fixOut, OutH: fixOut, Channels: 1, PoolBatches: 3, Workers: 2, Source: disk})
	if err != nil {
		t.Fatal(err)
	}
	defer cpu.Close()
	all := runBackendEpoch(t, cpu, col())
	verifyEpoch(t, all, fixCount, fixBatch)
}

func TestCPUBackendSourcelessPathFails(t *testing.T) {
	// Disk refs without a DataSource must count as decode errors, not
	// hang or panic.
	b, err := NewCPU(CPUConfig{BatchSize: 2, OutW: 8, OutH: 8, Channels: 1, PoolBatches: 2, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	items := []core.Item{
		{Ref: fpga.DataRef{Path: "missing"}},
		{Ref: fpga.DataRef{Path: "also-missing"}},
	}
	results := drain(t, b)
	if err := b.RunEpoch(core.CollectorFromItems(items)); err != nil {
		t.Fatal(err)
	}
	b.CloseBatches()
	<-results
	if b.DecodeErrors() != 2 || b.Images() != 0 {
		t.Fatalf("errors=%d images=%d", b.DecodeErrors(), b.Images())
	}
}

func TestNvJPEGChannelMismatchCounted(t *testing.T) {
	dev, _ := gpu.NewDevice(0, 1<<24)
	defer dev.Close()
	b, err := NewNvJPEG(NvJPEGConfig{BatchSize: 2, OutW: 8, OutH: 8, Channels: 3, PoolBatches: 2, Device: dev})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	// Grayscale JPEGs into a 3-channel pipeline: every decode fails.
	spec := dataset.MNISTLike(2)
	items := make([]core.Item, 2)
	for i := range items {
		data, err := spec.JPEG(i)
		if err != nil {
			t.Fatal(err)
		}
		items[i] = core.Item{Ref: fpga.DataRef{Inline: data}}
	}
	results := drain(t, b)
	if err := b.RunEpoch(core.CollectorFromItems(items)); err != nil {
		t.Fatal(err)
	}
	b.CloseBatches()
	<-results
	if b.DecodeErrors() != 2 {
		t.Fatalf("DecodeErrors = %d", b.DecodeErrors())
	}
}
