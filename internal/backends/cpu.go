package backends

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dlbooster/internal/core"
	"dlbooster/internal/cpukernel"
	"dlbooster/internal/fpga"
	"dlbooster/internal/imageproc"
	"dlbooster/internal/jpeg"
	"dlbooster/internal/metrics"
	"dlbooster/internal/pix"
)

// CPU is the CPU-based online preprocessing baseline: a pool of worker
// threads decoding JPEGs at runtime — the backend that "achieves only
// ∼25% training performance in the default configuration or makes up the
// performance gaps by burning more than 12 CPU cores per GPU" (§1).
// Decode busy time per worker is accounted to a BusyTracker so
// experiments can report the paper's cores-consumed metric from the same
// run that produced throughput.
type CPU struct {
	*base
	workers       int
	source        fpga.DataSource
	busy          *metrics.BusyTracker
	batchTimeout  time.Duration
	partialFlush  metrics.Counter
	disableScaled bool
	scaled        metrics.Counter

	jobs     chan cpuJob
	workerWG sync.WaitGroup
	started  sync.Once
}

type cpuJob struct {
	ref   fpga.DataRef
	slot  []byte
	batch *cpuBatch
	index int
}

// cpuBatch tracks a batch buffer being filled by the workers. refs and
// startedAt feed the tiered cache's admission (re-decodability and
// measured cost); refs is only captured when caching is on.
type cpuBatch struct {
	batch     *core.Batch
	pending   atomic.Int32
	owner     *CPU
	done      *sync.WaitGroup // epoch-level join
	refs      []fpga.DataRef
	startedAt time.Time
}

// CPUConfig configures the CPU baseline.
type CPUConfig struct {
	BatchSize            int
	OutW, OutH, Channels int
	PoolBatches          int
	CacheLimitBytes      int64
	// Cache sizes the tiered epoch cache (RAM → NVMe spill); the legacy
	// CacheLimitBytes knob maps onto Cache.RAMBytes when Cache is zero.
	Cache core.CacheConfig
	// SharedCache, when non-nil, captures into and replays from an
	// externally-owned cache instead of building one from Cache.
	SharedCache *core.TieredCache
	// Workers is the number of decode threads; the paper's "default
	// configuration" is perf.DefaultCPUDecodeThreads, and its
	// max-performance sweeps raise it until the GPU is fed.
	Workers int
	// Source resolves disk DataRefs.
	Source fpga.DataSource
	// Busy receives per-worker decode busy time under the component
	// name "preprocess" (optional).
	Busy *metrics.BusyTracker
	// BatchTimeout, when positive and the collector is a
	// core.StreamingCollector, seals a partial batch once its oldest
	// item has waited this long — the same deadline-flushed dynamic
	// batching as core.Config.BatchTimeout, so the CPU serving baseline
	// honours the bounded-latency contract too. 0 keeps strict batches.
	BatchTimeout time.Duration
	// DisableScaledDecode turns off the decode-to-scale fast path and
	// per-worker scratch reuse: every image then takes the legacy
	// full-resolution decode + resize. The zero value keeps the fast
	// path on.
	DisableScaledDecode bool
	// DisableSIMDKernels engages the process-wide cpukernel kill switch
	// (scalar decode kernels, sequential entropy decode) — the CPU
	// baseline's mirror of core.Config.DisableSIMDKernels, with the same
	// one-way semantics.
	DisableSIMDKernels bool
}

// NewCPU builds the baseline and starts its workers.
func NewCPU(cfg CPUConfig) (*CPU, error) {
	if cfg.Workers <= 0 {
		return nil, errors.New("backends: cpu workers must be positive")
	}
	if cfg.BatchTimeout < 0 {
		return nil, fmt.Errorf("backends: negative batch timeout %v", cfg.BatchTimeout)
	}
	if cfg.DisableSIMDKernels {
		cpukernel.SetScalarOnly(true)
	}
	b, err := newBase(baseConfig{
		BatchSize: cfg.BatchSize, OutW: cfg.OutW, OutH: cfg.OutH,
		Channels: cfg.Channels, PoolBatches: cfg.PoolBatches,
		CacheLimitBytes: cfg.CacheLimitBytes,
		Cache:           cfg.Cache, SharedCache: cfg.SharedCache,
	})
	if err != nil {
		return nil, err
	}
	c := &CPU{
		base:          b,
		workers:       cfg.Workers,
		source:        cfg.Source,
		busy:          cfg.Busy,
		batchTimeout:  cfg.BatchTimeout,
		disableScaled: cfg.DisableScaledDecode,
		jobs:          make(chan cpuJob, cfg.Workers*2),
	}
	c.runEpoch = c.RunEpoch
	c.start()
	return c, nil
}

// Name implements Backend.
func (c *CPU) Name() string { return "cpu" }

// Workers returns the decode thread count.
func (c *CPU) Workers() int { return c.workers }

// PartialFlushes returns the count of batches sealed by the
// BatchTimeout deadline before filling.
func (c *CPU) PartialFlushes() int64 { return c.partialFlush.Value() }

// ScaledDecodes returns the count of images decoded below full scale by
// the decode-to-scale fast path.
func (c *CPU) ScaledDecodes() int64 { return c.scaled.Value() }

func (c *CPU) start() {
	c.started.Do(func() {
		for i := 0; i < c.workers; i++ {
			c.workerWG.Add(1)
			go func() {
				defer c.workerWG.Done()
				// Each worker owns one Scratch: steady-state decoding
				// then allocates nothing per image.
				var sc *jpeg.Scratch
				if !c.disableScaled {
					sc = &jpeg.Scratch{}
				}
				for j := range c.jobs {
					c.decodeOne(j, sc)
				}
			}()
		}
	})
}

// decodeOne is the per-image work a baseline burns a core on: fetch,
// entropy decode, iDCT, colour convert, resize — all on the CPU. With a
// scratch it runs the decode-to-scale fast path, reconstructing only the
// resolution the batch slot needs and writing straight into it.
func (c *CPU) decodeOne(j cpuJob, sc *jpeg.Scratch) {
	start := time.Now()
	ok := func() bool {
		data := j.ref.Inline
		if data == nil {
			if c.source == nil {
				return false
			}
			var err error
			data, err = c.source.Fetch(j.ref)
			if err != nil {
				return false
			}
		}
		if sc != nil {
			dst := pix.Image{W: c.outW, H: c.outH, C: c.channels, Pix: j.slot}
			scale, err := jpeg.DecodeScaledInto(data, &dst, sc)
			if err != nil {
				return false
			}
			if scale < 8 {
				c.scaled.Add(1)
			}
			return true
		}
		img, err := jpeg.Decode(data)
		if err != nil {
			return false
		}
		if img.C != c.channels {
			return false
		}
		dst, err := pix.FromBytes(c.outW, c.outH, c.channels, j.slot)
		if err != nil {
			return false
		}
		return imageproc.ResizeInto(img, dst, imageproc.Bilinear) == nil
	}()
	if c.busy != nil {
		c.busy.Record("preprocess", time.Since(start).Seconds())
	}
	if ok {
		c.images.Add(1)
		j.batch.batch.Valid[j.index] = true
	} else {
		c.errs.Add(1)
	}
	if j.batch.pending.Add(-1) == 0 {
		// Publish failure means shutdown mid-epoch; the epoch join must
		// still complete so RunEpoch can return.
		cost := float64(time.Since(j.batch.startedAt).Nanoseconds())
		_ = c.publish(j.batch.batch, j.batch.refs, cost)
		j.batch.done.Done()
	}
}

// RunEpoch implements Backend: assemble batches and fan decode jobs out
// to the worker pool, pipelined across batch buffers.
func (c *CPU) RunEpoch(col core.DataCollector) error {
	if col == nil {
		return errors.New("backends: nil collector")
	}
	var epochWG sync.WaitGroup
	var cur *cpuBatch
	var curJobs []cpuJob
	var flushAt time.Time
	flush := func() {
		if cur == nil {
			return
		}
		// Arm the pending count before releasing any job, so the last
		// decode (not this goroutine) publishes the batch.
		cur.pending.Store(int32(len(curJobs)))
		for _, j := range curJobs {
			c.jobs <- j
		}
		cur, curJobs = nil, nil
	}
	// Deadline-flushed dynamic batching only engages with a streaming
	// collector: a disk epoch never pauses, so the timeout is moot.
	stream, _ := col.(core.StreamingCollector)
	bt := c.batchTimeout
collect:
	for {
		var item core.Item
		var ok bool
		if cur != nil && bt > 0 && stream != nil {
			for {
				d := time.Until(flushAt)
				if d <= 0 {
					c.partialFlush.Add(1)
					flush()
					continue collect
				}
				var alive bool
				item, ok, alive = stream.NextTimeout(d)
				if ok || !alive {
					break
				}
			}
		} else {
			item, ok = col.Next()
		}
		if !ok {
			break
		}
		if cur == nil {
			buf, err := c.pool.Get()
			if err != nil {
				return fmt.Errorf("backends: pool closed: %w", err)
			}
			cur = &cpuBatch{
				batch: &core.Batch{
					Buf: buf,
					W:   c.outW, H: c.outH, C: c.channels,
					Seq: c.nextSeq(),
				},
				owner:     c,
				done:      &epochWG,
				startedAt: time.Now(),
			}
			epochWG.Add(1)
			if bt > 0 {
				flushAt = time.Now().Add(bt)
			}
		}
		slot := cur.batch.Images
		cur.batch.Images++
		cur.batch.Metas = append(cur.batch.Metas, item.Meta)
		cur.batch.Valid = append(cur.batch.Valid, false)
		if c.cache != nil {
			cur.refs = append(cur.refs, item.Ref)
		}
		stride := c.imageBytes()
		curJobs = append(curJobs, cpuJob{
			ref:   item.Ref,
			slot:  cur.batch.Buf.Bytes()[slot*stride : (slot+1)*stride],
			batch: cur,
			index: slot,
		})
		if cur.batch.Images == c.batchSize {
			flush()
		}
	}
	flush()
	epochWG.Wait()
	return nil
}

// Close stops the workers and releases resources.
func (c *CPU) Close() {
	c.closeOnce.Do(func() {
		close(c.jobs)
		c.workerWG.Wait()
		c.full.Close()
		c.pool.Close()
	})
}

var _ Backend = (*CPU)(nil)
