package backends

import (
	"errors"
	"fmt"
	"time"

	"dlbooster/internal/core"
	"dlbooster/internal/dataset"
	"dlbooster/internal/fpga"
	"dlbooster/internal/lmdb"
	"dlbooster/internal/metrics"
)

// LMDB is the offline baseline: training records were decoded and
// resized ahead of time (dataset.ConvertToLMDB — the "more than 2 hours"
// conversion of §2.2) and are served from a shared embedded store at
// train time. Each GPU worker runs its own LMDB backend instance against
// the same *lmdb.DB, which is exactly the shared-store arrangement whose
// reader competition costs ≈30 % at two GPUs in Figure 2.
type LMDB struct {
	*base
	db   *lmdb.DB
	busy *metrics.BusyTracker
}

// LMDBConfig configures the offline baseline.
type LMDBConfig struct {
	BatchSize            int
	OutW, OutH, Channels int
	PoolBatches          int
	CacheLimitBytes      int64
	// Cache sizes the tiered epoch cache (RAM → NVMe spill); the legacy
	// CacheLimitBytes knob maps onto Cache.RAMBytes when Cache is zero.
	Cache core.CacheConfig
	// SharedCache, when non-nil, captures into and replays from an
	// externally-owned cache instead of building one from Cache.
	SharedCache *core.TieredCache
	// DB is the shared record store; collector item paths are its keys.
	DB *lmdb.DB
	// Busy receives read/deserialise busy time as "preprocess".
	Busy *metrics.BusyTracker
}

// NewLMDB builds the baseline over an existing store.
func NewLMDB(cfg LMDBConfig) (*LMDB, error) {
	if cfg.DB == nil {
		return nil, errors.New("backends: nil lmdb store")
	}
	b, err := newBase(baseConfig{
		BatchSize: cfg.BatchSize, OutW: cfg.OutW, OutH: cfg.OutH,
		Channels: cfg.Channels, PoolBatches: cfg.PoolBatches,
		CacheLimitBytes: cfg.CacheLimitBytes,
		Cache:           cfg.Cache, SharedCache: cfg.SharedCache,
	})
	if err != nil {
		return nil, err
	}
	l := &LMDB{base: b, db: cfg.DB, busy: cfg.Busy}
	l.runEpoch = l.RunEpoch
	return l, nil
}

// Name implements Backend.
func (l *LMDB) Name() string { return "lmdb" }

// RunEpoch implements Backend: read each item's record from the shared
// store and copy it into the batch buffer. There is no decode — that was
// paid offline — but every record still crosses the store's reader lock
// and gets copied per datum.
func (l *LMDB) RunEpoch(col core.DataCollector) error {
	if col == nil {
		return errors.New("backends: nil collector")
	}
	stride := l.imageBytes()
	var cur *core.Batch
	var curRefs []fpga.DataRef
	var curStart time.Time
	for {
		item, ok := col.Next()
		if !ok {
			break
		}
		if cur == nil {
			buf, err := l.pool.Get()
			if err != nil {
				return fmt.Errorf("backends: pool closed: %w", err)
			}
			cur = &core.Batch{Buf: buf, W: l.outW, H: l.outH, C: l.channels, Seq: l.nextSeq()}
			curRefs, curStart = nil, time.Now()
		}
		slot := cur.Images
		cur.Images++
		cur.Metas = append(cur.Metas, item.Meta)
		if l.cache != nil {
			curRefs = append(curRefs, item.Ref)
		}
		start := time.Now()
		valid := l.loadRecord(item.Ref.Path, cur.Buf.Bytes()[slot*stride:(slot+1)*stride], &cur.Metas[len(cur.Metas)-1])
		if l.busy != nil {
			l.busy.Record("preprocess", time.Since(start).Seconds())
		}
		cur.Valid = append(cur.Valid, valid)
		if valid {
			l.images.Add(1)
		} else {
			l.errs.Add(1)
		}
		if cur.Images == l.batchSize {
			if err := l.publish(cur, curRefs, float64(time.Since(curStart).Nanoseconds())); err != nil {
				return err
			}
			cur = nil
		}
	}
	if cur != nil {
		if err := l.publish(cur, curRefs, float64(time.Since(curStart).Nanoseconds())); err != nil {
			return err
		}
	}
	return nil
}

// loadRecord fetches and deserialises one record into the slot; the
// record's label overrides the collector's (the store is authoritative
// for offline data).
func (l *LMDB) loadRecord(key string, slot []byte, meta *core.ItemMeta) bool {
	val, ok, err := l.db.Get([]byte(key))
	if err != nil || !ok {
		return false
	}
	rec, err := dataset.DecodeRecord(val)
	if err != nil {
		return false
	}
	if rec.W != l.outW || rec.H != l.outH || rec.C != l.channels {
		return false
	}
	copy(slot, rec.Pixels)
	meta.Label = rec.Label
	return true
}

var _ Backend = (*LMDB)(nil)
