package backends

import (
	"testing"
	"time"

	"dlbooster/internal/core"
	"dlbooster/internal/fpga"
	"dlbooster/internal/queue"
)

// TestCPUPartialFlushDeadline pins deadline-flushed dynamic batching on
// the CPU baseline: a partial batch fed from a still-open item queue
// must publish once the oldest item waits out CPUConfig.BatchTimeout.
func TestCPUPartialFlushDeadline(t *testing.T) {
	spec := fixtureSpec()
	b, err := NewCPU(CPUConfig{
		BatchSize: 4, OutW: fixOut, OutH: fixOut, Channels: 1,
		PoolBatches: 3, Workers: 2, BatchTimeout: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	q := queue.New[core.Item](8)
	epochDone := make(chan error, 1)
	go func() { epochDone <- b.RunEpoch(core.CollectorFromQueue(q)) }()
	for i := 0; i < 3; i++ {
		data, err := spec.JPEG(i)
		if err != nil {
			t.Fatal(err)
		}
		if err := q.Push(core.Item{Ref: fpga.DataRef{Inline: data}, Meta: core.ItemMeta{Seq: i, ReceivedAt: time.Now()}}); err != nil {
			t.Fatal(err)
		}
	}

	got := make(chan *core.Batch, 1)
	go func() { batch, _ := b.Batches().Pop(); got <- batch }()
	select {
	case batch := <-got:
		if batch == nil {
			t.Fatal("full queue closed before the partial batch arrived")
		}
		if batch.Images != 3 {
			t.Fatalf("batch images = %d, want 3", batch.Images)
		}
		if err := b.RecycleBatch(batch); err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("deadline flush never published — the CPU baseline still stalls on partial batches")
	}
	if got := b.PartialFlushes(); got != 1 {
		t.Fatalf("PartialFlushes = %d, want 1", got)
	}

	q.Close()
	if err := <-epochDone; err != nil {
		t.Fatal(err)
	}
	if b.Images() != 3 {
		t.Fatalf("Images = %d, want 3", b.Images())
	}
}

// TestCPUBatchTimeoutValidation rejects negative deadlines.
func TestCPUBatchTimeoutValidation(t *testing.T) {
	_, err := NewCPU(CPUConfig{BatchSize: 1, OutW: 8, OutH: 8, Channels: 1, Workers: 1, BatchTimeout: -time.Second})
	if err == nil {
		t.Fatal("negative batch timeout accepted")
	}
}
