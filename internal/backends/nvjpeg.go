package backends

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dlbooster/internal/core"
	"dlbooster/internal/fpga"
	"dlbooster/internal/gpu"
	"dlbooster/internal/imageproc"
	"dlbooster/internal/jpeg"
	"dlbooster/internal/metrics"
	"dlbooster/internal/pix"
)

// NvJPEG is the GPU-decode baseline: raw JPEG bytes are shipped to the
// GPU and decoded there, as NVIDIA's nvJPEG/DALI does. Decode work runs
// on the target device's streams and its busy time is charged to the
// device's kernel accounting — the mechanism behind the paper's finding
// that nvJPEG "can dominate 40% GPU utilization ... downgrading the GPU
// performance in model computation by more than 30%" (§2.2). A couple of
// host cores remain busy launching decode kernels (§5.3), which the
// BusyTracker records as "launch".
type NvJPEG struct {
	*base
	dev     *gpu.Device
	lanes   []*gpu.Stream
	source  fpga.DataSource
	busy    *metrics.BusyTracker
	rr      int
	laneMu  sync.Mutex
	closeMu sync.Mutex
}

// NvJPEGConfig configures the GPU-decode baseline.
type NvJPEGConfig struct {
	BatchSize            int
	OutW, OutH, Channels int
	PoolBatches          int
	CacheLimitBytes      int64
	// Cache sizes the tiered epoch cache (RAM → NVMe spill); the legacy
	// CacheLimitBytes knob maps onto Cache.RAMBytes when Cache is zero.
	Cache core.CacheConfig
	// SharedCache, when non-nil, captures into and replays from an
	// externally-owned cache instead of building one from Cache.
	SharedCache *core.TieredCache
	// Device is the GPU that both decodes and (elsewhere) runs the
	// model — sharing it is the point.
	Device *gpu.Device
	// Lanes is the number of parallel decode streams (default 2).
	Lanes int
	// Source resolves disk DataRefs.
	Source fpga.DataSource
	// Busy receives host-side kernel-launch busy time as "launch".
	Busy *metrics.BusyTracker
}

// NewNvJPEG builds the baseline on the given device.
func NewNvJPEG(cfg NvJPEGConfig) (*NvJPEG, error) {
	if cfg.Device == nil {
		return nil, errors.New("backends: nil gpu device")
	}
	if cfg.Lanes == 0 {
		cfg.Lanes = 2
	}
	if cfg.Lanes < 0 {
		return nil, errors.New("backends: negative decode lanes")
	}
	b, err := newBase(baseConfig{
		BatchSize: cfg.BatchSize, OutW: cfg.OutW, OutH: cfg.OutH,
		Channels: cfg.Channels, PoolBatches: cfg.PoolBatches,
		CacheLimitBytes: cfg.CacheLimitBytes,
		Cache:           cfg.Cache, SharedCache: cfg.SharedCache,
	})
	if err != nil {
		return nil, err
	}
	n := &NvJPEG{base: b, dev: cfg.Device, source: cfg.Source, busy: cfg.Busy}
	n.runEpoch = n.RunEpoch
	for i := 0; i < cfg.Lanes; i++ {
		s, err := cfg.Device.NewStream()
		if err != nil {
			return nil, err
		}
		n.lanes = append(n.lanes, s)
	}
	return n, nil
}

// Name implements Backend.
func (n *NvJPEG) Name() string { return "nvjpeg" }

// nextLane round-robins decode submissions across streams.
func (n *NvJPEG) nextLane() *gpu.Stream {
	n.laneMu.Lock()
	defer n.laneMu.Unlock()
	s := n.lanes[n.rr%len(n.lanes)]
	n.rr++
	return s
}

type nvBatch struct {
	batch   *core.Batch
	pending atomic.Int32
	done    *sync.WaitGroup
	// refs and startedAt feed the tiered cache's admission; refs is only
	// captured when caching is on.
	refs      []fpga.DataRef
	startedAt time.Time
}

// RunEpoch implements Backend: per image, enqueue a decode "kernel" on a
// device stream; the host thread only launches and moves on.
func (n *NvJPEG) RunEpoch(col core.DataCollector) error {
	if col == nil {
		return errors.New("backends: nil collector")
	}
	stride := n.imageBytes()
	var epochWG sync.WaitGroup
	var cur *nvBatch
	var slots [][]byte
	var refs []fpga.DataRef
	flush := func() error {
		if cur == nil {
			return nil
		}
		cur.pending.Store(int32(len(slots)))
		for i := range slots {
			i := i
			b := cur
			ref := refs[i]
			slot := slots[i]
			idx := i
			launchStart := time.Now()
			err := n.nextLane().CallbackAsync(func() {
				n.decodeOnDevice(ref, slot, b, idx)
			})
			if n.busy != nil {
				n.busy.Record("launch", time.Since(launchStart).Seconds())
			}
			if err != nil {
				return fmt.Errorf("backends: decode lane closed: %w", err)
			}
		}
		cur, slots, refs = nil, nil, nil
		return nil
	}
	for {
		item, ok := col.Next()
		if !ok {
			break
		}
		if cur == nil {
			buf, err := n.pool.Get()
			if err != nil {
				return fmt.Errorf("backends: pool closed: %w", err)
			}
			cur = &nvBatch{
				batch:     &core.Batch{Buf: buf, W: n.outW, H: n.outH, C: n.channels, Seq: n.nextSeq()},
				done:      &epochWG,
				startedAt: time.Now(),
			}
			epochWG.Add(1)
		}
		slot := cur.batch.Images
		cur.batch.Images++
		cur.batch.Metas = append(cur.batch.Metas, item.Meta)
		cur.batch.Valid = append(cur.batch.Valid, false)
		slots = append(slots, cur.batch.Buf.Bytes()[slot*stride:(slot+1)*stride])
		refs = append(refs, item.Ref)
		if n.cache != nil {
			cur.refs = append(cur.refs, item.Ref)
		}
		if cur.batch.Images == n.batchSize {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	if err := flush(); err != nil {
		return err
	}
	epochWG.Wait()
	return nil
}

// decodeOnDevice runs inside a device stream: the decode cost lands on
// the GPU's kernel accounting, not on a host core.
func (n *NvJPEG) decodeOnDevice(ref fpga.DataRef, slot []byte, b *nvBatch, idx int) {
	start := time.Now()
	ok := func() bool {
		data := ref.Inline
		if data == nil {
			if n.source == nil {
				return false
			}
			var err error
			data, err = n.source.Fetch(ref)
			if err != nil {
				return false
			}
		}
		img, err := jpeg.Decode(data)
		if err != nil || img.C != n.channels {
			return false
		}
		dst, err := pix.FromBytes(n.outW, n.outH, n.channels, slot)
		if err != nil {
			return false
		}
		return imageproc.ResizeInto(img, dst, imageproc.Bilinear) == nil
	}()
	n.dev.RecordKernelBusy(time.Since(start))
	if ok {
		n.images.Add(1)
		b.batch.Valid[idx] = true
	} else {
		n.errs.Add(1)
	}
	if b.pending.Add(-1) == 0 {
		cost := float64(time.Since(b.startedAt).Nanoseconds())
		_ = n.publish(b.batch, b.refs, cost)
		b.done.Done()
	}
}

// Close drains the decode lanes and releases resources.
func (n *NvJPEG) Close() {
	n.closeOnce.Do(func() {
		for _, s := range n.lanes {
			s.Close()
		}
		n.full.Close()
		n.pool.Close()
	})
}

var _ Backend = (*NvJPEG)(nil)
