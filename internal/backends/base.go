package backends

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dlbooster/internal/core"
	"dlbooster/internal/fpga"
	"dlbooster/internal/hugepage"
	"dlbooster/internal/metrics"
	"dlbooster/internal/queue"
)

// base carries the machinery every host-side backend shares: the batch
// buffer pool, the Full queue, decode counters and the optional tiered
// epoch cache — the same core.TieredCache the Booster uses, so the CPU
// baselines get RAM→NVMe spill and hybrid replay for free. Concrete
// backends embed it and supply their own RunEpoch.
type base struct {
	batchSize            int
	outW, outH, channels int
	pool                 *hugepage.Pool
	full                 *queue.Queue[*core.Batch]

	images metrics.Counter
	errs   metrics.Counter

	mu  sync.Mutex
	seq int

	// cache is the tiered epoch cache (nil = caching disabled), possibly
	// shared with other backends or Boosters. replaying suppresses
	// re-capture while ReplayCache re-decodes evicted entries; runEpoch
	// is the concrete backend's RunEpoch, wired by its constructor so
	// the shared replay path can re-decode through it.
	cache     *core.TieredCache
	replaying atomic.Bool
	runEpoch  func(core.DataCollector) error

	closeOnce sync.Once
}

// baseConfig is the geometry shared by all backend constructors.
type baseConfig struct {
	BatchSize            int
	OutW, OutH, Channels int
	PoolBatches          int
	// CacheLimitBytes is the legacy RAM-only knob; it becomes
	// Cache.RAMBytes when Cache.RAMBytes is zero.
	CacheLimitBytes int64
	// Cache sizes the tiered epoch cache (see core.CacheConfig).
	Cache core.CacheConfig
	// SharedCache overrides Cache with an externally-owned tier pair.
	SharedCache *core.TieredCache
}

func newBase(cfg baseConfig) (*base, error) {
	if cfg.BatchSize <= 0 {
		return nil, errors.New("backends: batch size must be positive")
	}
	if cfg.OutW <= 0 || cfg.OutH <= 0 || (cfg.Channels != 1 && cfg.Channels != 3) {
		return nil, fmt.Errorf("backends: bad geometry %dx%dx%d", cfg.OutW, cfg.OutH, cfg.Channels)
	}
	if cfg.PoolBatches == 0 {
		cfg.PoolBatches = 8
	}
	if cfg.PoolBatches < 2 {
		return nil, errors.New("backends: need at least 2 pool batches")
	}
	pool, err := hugepage.NewPool(cfg.BatchSize*cfg.OutW*cfg.OutH*cfg.Channels, cfg.PoolBatches)
	if err != nil {
		return nil, err
	}
	cache := cfg.SharedCache
	if cache == nil {
		if cfg.Cache.RAMBytes == 0 && cfg.CacheLimitBytes > 0 {
			cfg.Cache.RAMBytes = cfg.CacheLimitBytes
		}
		if cfg.Cache.RAMBytes > 0 {
			cache, err = core.NewTieredCache(cfg.Cache)
			if err != nil {
				pool.Close()
				return nil, err
			}
		}
	}
	return &base{
		batchSize: cfg.BatchSize,
		outW:      cfg.OutW, outH: cfg.OutH, channels: cfg.Channels,
		pool:  pool,
		full:  queue.New[*core.Batch](cfg.PoolBatches),
		cache: cache,
	}, nil
}

func (b *base) imageBytes() int { return b.outW * b.outH * b.channels }

// Batches implements Backend.
func (b *base) Batches() *queue.Queue[*core.Batch] { return b.full }

// RecycleBatch implements Backend.
func (b *base) RecycleBatch(batch *core.Batch) error {
	if batch == nil || batch.Buf == nil {
		return errors.New("backends: nil batch")
	}
	return b.pool.Put(batch.Buf)
}

// CloseBatches implements Backend.
func (b *base) CloseBatches() { b.full.Close() }

// Close implements Backend.
func (b *base) Close() {
	b.closeOnce.Do(func() {
		b.full.Close()
		b.pool.Close()
	})
}

// Images implements Backend.
func (b *base) Images() int64 { return b.images.Value() }

// DecodeErrors implements Backend.
func (b *base) DecodeErrors() int64 { return b.errs.Value() }

// nextSeq issues a batch sequence number.
func (b *base) nextSeq() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.seq++
	return b.seq
}

// publish caches (if enabled) and pushes a finished batch. refs are the
// items' DataRefs and costNanos the measured build cost, both feeding
// the cache's eviction policy; no-cache callers pass nil and 0.
func (b *base) publish(batch *core.Batch, refs []fpga.DataRef, costNanos float64) error {
	if batch.Images == 0 {
		return b.pool.Put(batch.Buf)
	}
	batch.AssembledAt = time.Now()
	if b.cache != nil && !b.replaying.Load() {
		b.cache.Add(batch, refs, costNanos)
	}
	return b.full.Push(batch)
}

// Cache exposes the tiered epoch cache (nil when caching is disabled),
// for sharing and tests.
func (b *base) Cache() *core.TieredCache { return b.cache }

// CacheComplete implements Backend: the whole first epoch is still
// resident across the cache tiers.
func (b *base) CacheComplete() bool {
	return b.cache != nil && b.cache.Complete()
}

// CacheReplayable implements Backend: ReplayCache can serve an epoch,
// re-decoding evicted entries if it must.
func (b *base) CacheReplayable() bool {
	return b.cache != nil && b.cache.Available() == nil
}

// ReplayCache implements Backend: serve one epoch from the tiered
// cache. Replayed batches share the cached Metas and Valid slices (same
// aliasing contract as core.Booster.ReplayCache): cache entries are
// immutable once written and consumers treat published batches as
// read-only. Evicted entries are re-decoded through the backend's own
// RunEpoch; errors wrap core.ErrCacheUnavailable with the cause.
func (b *base) ReplayCache() error {
	if b.cache == nil {
		return core.ErrCacheDisabled
	}
	sink := core.CacheReplaySink{
		GetBuffer: func() (*hugepage.Buffer, error) {
			buf, err := b.pool.Get()
			if err != nil {
				return nil, fmt.Errorf("backends: pool closed: %w", err)
			}
			return buf, nil
		},
		Publish: func(buf *hugepage.Buffer, images int, metas []core.ItemMeta, valid []bool, _ core.CacheTier) error {
			batch := &core.Batch{
				Buf:    buf,
				Images: images,
				W:      b.outW, H: b.outH, C: b.channels,
				Metas:       metas,
				Valid:       valid,
				Seq:         b.nextSeq(),
				AssembledAt: time.Now(),
			}
			b.images.Add(int64(images))
			return b.full.Push(batch)
		},
	}
	if b.runEpoch != nil {
		sink.Redecode = func(items []core.Item) error {
			b.replaying.Store(true)
			defer b.replaying.Store(false)
			return b.runEpoch(core.CollectorFromItems(items))
		}
	}
	return b.cache.Replay(0, 1, sink)
}
