package backends

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"dlbooster/internal/core"
	"dlbooster/internal/hugepage"
	"dlbooster/internal/metrics"
	"dlbooster/internal/queue"
)

// base carries the machinery every host-side backend shares: the batch
// buffer pool, the Full queue, decode counters and the optional epoch
// cache. Concrete backends embed it and supply their own RunEpoch.
type base struct {
	batchSize            int
	outW, outH, channels int
	pool                 *hugepage.Pool
	full                 *queue.Queue[*core.Batch]

	images metrics.Counter
	errs   metrics.Counter

	mu  sync.Mutex
	seq int

	cacheLimit    int64
	cacheMu       sync.Mutex
	cache         []cachedBatch
	cacheBytes    int64
	cacheOverflow bool

	closeOnce sync.Once
}

// cachedBatch is one immutable epoch-cache entry; replayed batches alias
// its metas and valid slices (see ReplayCache).
type cachedBatch struct {
	data   []byte
	metas  []core.ItemMeta
	valid  []bool
	images int
}

// baseConfig is the geometry shared by all backend constructors.
type baseConfig struct {
	BatchSize            int
	OutW, OutH, Channels int
	PoolBatches          int
	CacheLimitBytes      int64
}

func newBase(cfg baseConfig) (*base, error) {
	if cfg.BatchSize <= 0 {
		return nil, errors.New("backends: batch size must be positive")
	}
	if cfg.OutW <= 0 || cfg.OutH <= 0 || (cfg.Channels != 1 && cfg.Channels != 3) {
		return nil, fmt.Errorf("backends: bad geometry %dx%dx%d", cfg.OutW, cfg.OutH, cfg.Channels)
	}
	if cfg.PoolBatches == 0 {
		cfg.PoolBatches = 8
	}
	if cfg.PoolBatches < 2 {
		return nil, errors.New("backends: need at least 2 pool batches")
	}
	pool, err := hugepage.NewPool(cfg.BatchSize*cfg.OutW*cfg.OutH*cfg.Channels, cfg.PoolBatches)
	if err != nil {
		return nil, err
	}
	return &base{
		batchSize: cfg.BatchSize,
		outW:      cfg.OutW, outH: cfg.OutH, channels: cfg.Channels,
		pool:       pool,
		full:       queue.New[*core.Batch](cfg.PoolBatches),
		cacheLimit: cfg.CacheLimitBytes,
	}, nil
}

func (b *base) imageBytes() int { return b.outW * b.outH * b.channels }

// Batches implements Backend.
func (b *base) Batches() *queue.Queue[*core.Batch] { return b.full }

// RecycleBatch implements Backend.
func (b *base) RecycleBatch(batch *core.Batch) error {
	if batch == nil || batch.Buf == nil {
		return errors.New("backends: nil batch")
	}
	return b.pool.Put(batch.Buf)
}

// CloseBatches implements Backend.
func (b *base) CloseBatches() { b.full.Close() }

// Close implements Backend.
func (b *base) Close() {
	b.closeOnce.Do(func() {
		b.full.Close()
		b.pool.Close()
	})
}

// Images implements Backend.
func (b *base) Images() int64 { return b.images.Value() }

// DecodeErrors implements Backend.
func (b *base) DecodeErrors() int64 { return b.errs.Value() }

// nextSeq issues a batch sequence number.
func (b *base) nextSeq() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.seq++
	return b.seq
}

// publish caches (if enabled) and pushes a finished batch.
func (b *base) publish(batch *core.Batch) error {
	if batch.Images == 0 {
		return b.pool.Put(batch.Buf)
	}
	batch.AssembledAt = time.Now()
	if b.cacheLimit > 0 {
		b.cacheBatch(batch)
	}
	return b.full.Push(batch)
}

func (b *base) cacheBatch(batch *core.Batch) {
	b.cacheMu.Lock()
	defer b.cacheMu.Unlock()
	if b.cacheOverflow {
		return
	}
	n := int64(batch.Images * batch.ImageBytes())
	if b.cacheBytes+n > b.cacheLimit {
		b.cacheOverflow = true
		b.cache = nil
		b.cacheBytes = 0
		return
	}
	b.cache = append(b.cache, cachedBatch{
		data:   append([]byte(nil), batch.Bytes()...),
		metas:  append([]core.ItemMeta(nil), batch.Metas...),
		valid:  append([]bool(nil), batch.Valid...),
		images: batch.Images,
	})
	b.cacheBytes += n
}

// CacheComplete implements Backend.
func (b *base) CacheComplete() bool {
	b.cacheMu.Lock()
	defer b.cacheMu.Unlock()
	return b.cacheLimit > 0 && !b.cacheOverflow && len(b.cache) > 0
}

// ReplayCache implements Backend. Replayed batches share the cached
// Metas and Valid slices (same aliasing contract as
// core.Booster.ReplayCache): cache entries are immutable once written
// and consumers treat published batches as read-only.
func (b *base) ReplayCache() error {
	b.cacheMu.Lock()
	snapshot := b.cache
	ok := b.cacheLimit > 0 && !b.cacheOverflow && len(b.cache) > 0
	b.cacheMu.Unlock()
	if !ok {
		return core.ErrCacheUnavailable
	}
	for _, cb := range snapshot {
		buf, err := b.pool.Get()
		if err != nil {
			return fmt.Errorf("backends: pool closed: %w", err)
		}
		copy(buf.Bytes(), cb.data)
		batch := &core.Batch{
			Buf:    buf,
			Images: cb.images,
			W:      b.outW, H: b.outH, C: b.channels,
			Metas:       cb.metas,
			Valid:       cb.valid,
			Seq:         b.nextSeq(),
			AssembledAt: time.Now(),
		}
		b.images.Add(int64(cb.images))
		if err := b.full.Push(batch); err != nil {
			return err
		}
	}
	return nil
}
