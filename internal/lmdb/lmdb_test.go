package lmdb

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

func TestPutGetDelete(t *testing.T) {
	db := New()
	if err := db.Put([]byte("k1"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := db.Get([]byte("k1"))
	if err != nil || !ok || string(v) != "v1" {
		t.Fatalf("Get = %q %v %v", v, ok, err)
	}
	// Replace.
	if err := db.Put([]byte("k1"), []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if db.Len() != 1 {
		t.Fatalf("Len after replace = %d", db.Len())
	}
	v, _, _ = db.Get([]byte("k1"))
	if string(v) != "v2" {
		t.Fatalf("after replace = %q", v)
	}
	ok, err = db.Delete([]byte("k1"))
	if err != nil || !ok {
		t.Fatalf("Delete = %v %v", ok, err)
	}
	if _, ok, _ := db.Get([]byte("k1")); ok {
		t.Fatal("deleted key still present")
	}
	if ok, _ := db.Delete([]byte("k1")); ok {
		t.Fatal("double delete reported true")
	}
	if db.Len() != 0 {
		t.Fatalf("Len = %d", db.Len())
	}
}

func TestKeyValidation(t *testing.T) {
	db := New()
	if err := db.Put(nil, []byte("v")); err == nil {
		t.Fatal("empty key accepted")
	}
	if err := db.Put(make([]byte, MaxKeySize+1), []byte("v")); err == nil {
		t.Fatal("oversized key accepted")
	}
	if err := db.Put(make([]byte, MaxKeySize), nil); err != nil {
		t.Fatalf("max-size key rejected: %v", err)
	}
}

func TestValueIsCopied(t *testing.T) {
	db := New()
	val := []byte("mutable")
	_ = db.Put([]byte("k"), val)
	val[0] = 'X'
	got, _, _ := db.Get([]byte("k"))
	if string(got) != "mutable" {
		t.Fatalf("stored value aliases caller buffer: %q", got)
	}
	got[0] = 'Y'
	again, _, _ := db.Get([]byte("k"))
	if string(again) != "mutable" {
		t.Fatal("returned value aliases stored buffer")
	}
}

func TestManyKeysSplitNodes(t *testing.T) {
	db := New()
	const n = 10000
	perm := rand.New(rand.NewSource(1)).Perm(n)
	for _, i := range perm {
		key := []byte(fmt.Sprintf("key-%06d", i))
		if err := db.Put(key, []byte(fmt.Sprintf("val-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if db.Len() != n {
		t.Fatalf("Len = %d", db.Len())
	}
	for i := 0; i < n; i += 97 {
		key := []byte(fmt.Sprintf("key-%06d", i))
		v, ok, _ := db.Get(key)
		if !ok || string(v) != fmt.Sprintf("val-%d", i) {
			t.Fatalf("Get(%s) = %q %v", key, v, ok)
		}
	}
	if _, ok, _ := db.Get([]byte("absent")); ok {
		t.Fatal("absent key found")
	}
}

func TestCursorOrderedScan(t *testing.T) {
	db := New()
	keys := []string{"delta", "alpha", "echo", "bravo", "charlie"}
	for _, k := range keys {
		_ = db.Put([]byte(k), []byte("v-"+k))
	}
	c, err := db.Cursor()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var got []string
	for {
		k, v, ok := c.Next()
		if !ok {
			break
		}
		if string(v) != "v-"+string(k) {
			t.Fatalf("value mismatch at %s", k)
		}
		got = append(got, string(k))
	}
	want := append([]string(nil), keys...)
	sort.Strings(want)
	if len(got) != len(want) {
		t.Fatalf("scan = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("scan order = %v, want %v", got, want)
		}
	}
}

func TestCursorSeek(t *testing.T) {
	db := New()
	for i := 0; i < 100; i += 10 {
		_ = db.Put([]byte(fmt.Sprintf("%03d", i)), []byte{byte(i)})
	}
	c, _ := db.Cursor()
	defer c.Close()
	k, _, ok := c.Seek([]byte("035"))
	if !ok || string(k) != "040" {
		t.Fatalf("Seek(035) = %q %v", k, ok)
	}
	// Next continues from the seek position.
	k, _, ok = c.Next()
	if !ok || string(k) != "050" {
		t.Fatalf("Next after seek = %q %v", k, ok)
	}
	if _, _, ok := c.Seek([]byte("999")); ok {
		t.Fatal("Seek past end returned a record")
	}
}

func TestCursorOnEmptyAndAfterDeletes(t *testing.T) {
	db := New()
	c, _ := db.Cursor()
	if _, _, ok := c.Next(); ok {
		t.Fatal("record in empty store")
	}
	c.Close()
	// Delete an entire leaf's worth, cursor must skip empty leaves.
	for i := 0; i < 200; i++ {
		_ = db.Put([]byte(fmt.Sprintf("%04d", i)), []byte{1})
	}
	for i := 0; i < 100; i++ {
		_, _ = db.Delete([]byte(fmt.Sprintf("%04d", i)))
	}
	c2, _ := db.Cursor()
	defer c2.Close()
	k, _, ok := c2.Next()
	if !ok || string(k) != "0100" {
		t.Fatalf("first after deletes = %q %v", k, ok)
	}
	n := 1
	for {
		_, _, ok := c2.Next()
		if !ok {
			break
		}
		n++
	}
	if n != 100 {
		t.Fatalf("scanned %d records, want 100", n)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	db := New()
	rng := rand.New(rand.NewSource(2))
	want := map[string][]byte{}
	for i := 0; i < 3000; i++ {
		k := fmt.Sprintf("key-%05d", rng.Intn(100000))
		v := make([]byte, rng.Intn(300))
		rng.Read(v)
		want[k] = v
		_ = db.Put([]byte(k), v)
	}
	path := filepath.Join(t.TempDir(), "snap.lmdb")
	if err := db.SaveTo(path); err != nil {
		t.Fatal(err)
	}
	back, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != len(want) {
		t.Fatalf("Len = %d, want %d", back.Len(), len(want))
	}
	for k, v := range want {
		got, ok, _ := back.Get([]byte(k))
		if !ok || !bytes.Equal(got, v) {
			t.Fatalf("record %s corrupted", k)
		}
	}
}

func TestOpenRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad")
	if err := os.WriteFile(bad, []byte("not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(bad); err == nil {
		t.Fatal("garbage snapshot opened")
	}
	if _, err := Open(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("missing file opened")
	}
	// Truncated snapshot.
	db := New()
	_ = db.Put([]byte("k"), make([]byte, 1000))
	good := filepath.Join(dir, "good")
	if err := db.SaveTo(good); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(good)
	trunc := filepath.Join(dir, "trunc")
	if err := os.WriteFile(trunc, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(trunc); err == nil {
		t.Fatal("truncated snapshot opened")
	}
}

func TestClosedDB(t *testing.T) {
	db := New()
	_ = db.Put([]byte("k"), []byte("v"))
	db.Close()
	if err := db.Put([]byte("k2"), nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("Put on closed: %v", err)
	}
	if _, _, err := db.Get([]byte("k")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Get on closed: %v", err)
	}
	if _, err := db.Delete([]byte("k")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Delete on closed: %v", err)
	}
	if _, err := db.Cursor(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Cursor on closed: %v", err)
	}
	if err := db.SaveTo(filepath.Join(t.TempDir(), "x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("SaveTo on closed: %v", err)
	}
}

func TestConcurrentReadersSingleWriter(t *testing.T) {
	db := New()
	for i := 0; i < 1000; i++ {
		_ = db.Put([]byte(fmt.Sprintf("%04d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	var wg sync.WaitGroup
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(r)))
			for i := 0; i < 2000; i++ {
				k := fmt.Sprintf("%04d", rng.Intn(1000))
				if _, ok, err := db.Get([]byte(k)); err != nil || !ok {
					t.Errorf("Get(%s) = %v %v", k, ok, err)
					return
				}
			}
		}(r)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 1000; i < 1500; i++ {
			if err := db.Put([]byte(fmt.Sprintf("%04d", i)), []byte("new")); err != nil {
				t.Errorf("Put: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	if db.Len() != 1500 {
		t.Fatalf("Len = %d", db.Len())
	}
	gets, puts, _, _ := db.Stats()
	if gets != 16000 || puts != 1500 {
		t.Fatalf("stats = %d gets %d puts", gets, puts)
	}
}

// TestModelEquivalence drives the store and a map with random operations
// and checks full agreement including ordered iteration.
func TestModelEquivalence(t *testing.T) {
	f := func(ops []struct {
		Key byte
		Val uint16
		Del bool
	}) bool {
		db := New()
		model := map[string][]byte{}
		for _, op := range ops {
			key := []byte{'k', op.Key % 32}
			if op.Del {
				gotOK, _ := db.Delete(key)
				_, wantOK := model[string(key)]
				if gotOK != wantOK {
					return false
				}
				delete(model, string(key))
			} else {
				val := []byte{byte(op.Val), byte(op.Val >> 8)}
				if db.Put(key, val) != nil {
					return false
				}
				model[string(key)] = val
			}
		}
		if db.Len() != len(model) {
			return false
		}
		// Every model record must be present with the right value.
		for k, v := range model {
			got, ok, _ := db.Get([]byte(k))
			if !ok || !bytes.Equal(got, v) {
				return false
			}
		}
		// Ordered scan must visit exactly the sorted model keys.
		var wantKeys []string
		for k := range model {
			wantKeys = append(wantKeys, k)
		}
		sort.Strings(wantKeys)
		c, err := db.Cursor()
		if err != nil {
			return false
		}
		defer c.Close()
		for _, wk := range wantKeys {
			k, _, ok := c.Next()
			if !ok || string(k) != wk {
				return false
			}
		}
		_, _, ok := c.Next()
		return !ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
