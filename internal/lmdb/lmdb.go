// Package lmdb is a from-scratch embedded ordered key-value store
// standing in for the LMDB backend Caffe uses for offline-preprocessed
// datasets (paper §2.2, Figure 2).
//
// Like the original, it is a B+tree with single-writer / multi-reader
// concurrency and ordered cursors; unlike the original it keeps pages in
// memory and persists via an explicit snapshot file, because what the
// paper measures about LMDB is (a) the offline conversion cost of
// populating it, and (b) reader-side contention on the shared store when
// several GPU workers pull training batches — both of which this package
// reproduces and instruments (lock-wait accounting feeds the Figure 2/5
// contention model).
package lmdb

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// ErrClosed is returned by operations on a closed DB.
var ErrClosed = errors.New("lmdb: database closed")

// MaxKeySize bounds keys, matching the original's default.
const MaxKeySize = 511

// DB is an embedded ordered KV store.
type DB struct {
	mu     sync.RWMutex
	tree   *bptree
	closed bool

	statMu    sync.Mutex
	gets      int64
	puts      int64
	readWait  time.Duration
	writeWait time.Duration
}

// New creates an empty in-memory store.
func New() *DB {
	return &DB{tree: newBPTree()}
}

// Open loads a snapshot written by SaveTo.
func Open(path string) (*DB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	db := New()
	if err := db.load(bufio.NewReaderSize(f, 1<<20)); err != nil {
		return nil, fmt.Errorf("lmdb: loading %s: %w", path, err)
	}
	return db, nil
}

// Put inserts or replaces a record. Keys are copied; values are copied
// too, so callers may reuse their buffers (the conversion pipeline does).
func (db *DB) Put(key, val []byte) error {
	if len(key) == 0 || len(key) > MaxKeySize {
		return fmt.Errorf("lmdb: key length %d outside 1..%d", len(key), MaxKeySize)
	}
	start := time.Now()
	db.mu.Lock()
	wait := time.Since(start)
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	k := append([]byte(nil), key...)
	v := append([]byte(nil), val...)
	db.tree.put(k, v)
	db.statMu.Lock()
	db.puts++
	db.writeWait += wait
	db.statMu.Unlock()
	return nil
}

// Get returns a copy of the value for key.
func (db *DB) Get(key []byte) ([]byte, bool, error) {
	start := time.Now()
	db.mu.RLock()
	wait := time.Since(start)
	defer db.mu.RUnlock()
	if db.closed {
		return nil, false, ErrClosed
	}
	v, ok := db.tree.get(key)
	db.statMu.Lock()
	db.gets++
	db.readWait += wait
	db.statMu.Unlock()
	if !ok {
		return nil, false, nil
	}
	return append([]byte(nil), v...), true, nil
}

// Delete removes a record, reporting whether it existed.
func (db *DB) Delete(key []byte) (bool, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return false, ErrClosed
	}
	return db.tree.delete(key), nil
}

// Len returns the number of records.
func (db *DB) Len() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.tree.size
}

// Stats returns operation counts and accumulated lock-wait time; the
// read wait is the paper's "competition on the shared DB backend".
func (db *DB) Stats() (gets, puts int64, readWait, writeWait time.Duration) {
	db.statMu.Lock()
	defer db.statMu.Unlock()
	return db.gets, db.puts, db.readWait, db.writeWait
}

// Close marks the store closed.
func (db *DB) Close() {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.closed = true
}

// Cursor iterates records in key order. It holds the read lock for its
// lifetime (LMDB's read transactions pin a snapshot similarly); callers
// must Close it promptly.
type Cursor struct {
	db   *DB
	l    *leaf
	i    int
	done bool
}

// Cursor opens an ordered iterator positioned before the first record.
func (db *DB) Cursor() (*Cursor, error) {
	db.mu.RLock()
	if db.closed {
		db.mu.RUnlock()
		return nil, ErrClosed
	}
	return &Cursor{db: db}, nil
}

// Seek positions the cursor at the first key ≥ target and returns it.
func (c *Cursor) Seek(target []byte) (key, val []byte, ok bool) {
	if c.done {
		return nil, nil, false
	}
	l, i := c.db.tree.seek(target)
	if l == nil {
		return nil, nil, false
	}
	c.l, c.i = l, i
	return l.keys[i], l.vals[i], true
}

// Next advances and returns the next record in order. The first call
// returns the first record.
func (c *Cursor) Next() (key, val []byte, ok bool) {
	if c.done {
		return nil, nil, false
	}
	if c.l == nil {
		l, i := c.db.tree.firstEntry()
		if l == nil {
			return nil, nil, false
		}
		c.l, c.i = l, i
		return l.keys[i], l.vals[i], true
	}
	c.i++
	for c.l != nil && c.i >= len(c.l.keys) {
		c.l = c.l.next
		c.i = 0
	}
	if c.l == nil {
		return nil, nil, false
	}
	return c.l.keys[c.i], c.l.vals[c.i], true
}

// Close releases the cursor's read lock. It is safe to call twice.
func (c *Cursor) Close() {
	if !c.done {
		c.done = true
		c.db.mu.RUnlock()
	}
}

// Snapshot format: magic, record count, then length-prefixed key/value
// pairs in key order (a bulk-loadable stream, like an LMDB copy).
var snapshotMagic = [8]byte{'D', 'L', 'B', 'L', 'M', 'D', 'B', '1'}

// SaveTo writes a snapshot of the store.
func (db *DB) SaveTo(path string) error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.closed {
		return ErrClosed
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriterSize(f, 1<<20)
	if _, err := w.Write(snapshotMagic[:]); err != nil {
		f.Close()
		return err
	}
	var hdr [8]byte
	binary.BigEndian.PutUint64(hdr[:], uint64(db.tree.size))
	if _, err := w.Write(hdr[:]); err != nil {
		f.Close()
		return err
	}
	l, i := db.tree.firstEntry()
	var lenBuf [4]byte
	for l != nil {
		for ; i < len(l.keys); i++ {
			binary.BigEndian.PutUint32(lenBuf[:], uint32(len(l.keys[i])))
			if _, err := w.Write(lenBuf[:]); err != nil {
				f.Close()
				return err
			}
			if _, err := w.Write(l.keys[i]); err != nil {
				f.Close()
				return err
			}
			binary.BigEndian.PutUint32(lenBuf[:], uint32(len(l.vals[i])))
			if _, err := w.Write(lenBuf[:]); err != nil {
				f.Close()
				return err
			}
			if _, err := w.Write(l.vals[i]); err != nil {
				f.Close()
				return err
			}
		}
		l = l.next
		i = 0
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func (db *DB) load(r io.Reader) error {
	var magic [8]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return err
	}
	if magic != snapshotMagic {
		return errors.New("bad magic")
	}
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	count := binary.BigEndian.Uint64(hdr[:])
	var lenBuf [4]byte
	for rec := uint64(0); rec < count; rec++ {
		if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
			return fmt.Errorf("record %d key length: %w", rec, err)
		}
		klen := binary.BigEndian.Uint32(lenBuf[:])
		if klen == 0 || klen > MaxKeySize {
			return fmt.Errorf("record %d key length %d invalid", rec, klen)
		}
		key := make([]byte, klen)
		if _, err := io.ReadFull(r, key); err != nil {
			return fmt.Errorf("record %d key: %w", rec, err)
		}
		if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
			return fmt.Errorf("record %d value length: %w", rec, err)
		}
		vlen := binary.BigEndian.Uint32(lenBuf[:])
		if vlen > 1<<30 {
			return fmt.Errorf("record %d value length %d invalid", rec, vlen)
		}
		val := make([]byte, vlen)
		if _, err := io.ReadFull(r, val); err != nil {
			return fmt.Errorf("record %d value: %w", rec, err)
		}
		db.tree.put(key, val)
	}
	return nil
}
