package lmdb

import "bytes"

// A B+tree with byte-slice keys, values at the leaves, and leaves chained
// for ordered scans. Branch factor 64 keeps the tree shallow for the
// million-record datasets the offline backend stores. Deletion is lazy
// (no rebalancing): records vanish from leaves but node occupancy may
// drop below half — fine for a dataset store whose write pattern is one
// bulk conversion followed by read-only epochs.

const maxKeys = 64

type leaf struct {
	keys [][]byte
	vals [][]byte
	next *leaf
}

type branch struct {
	// children[i] covers keys < keys[i]; children[len(keys)] covers the
	// rest.
	keys     [][]byte
	children []node
}

type node interface{ isNode() }

func (*leaf) isNode()   {}
func (*branch) isNode() {}

type bptree struct {
	root  node
	size  int
	first *leaf
}

func newBPTree() *bptree {
	l := &leaf{}
	return &bptree{root: l, first: l}
}

// findLeaf descends to the leaf that would hold key.
func (t *bptree) findLeaf(key []byte) *leaf {
	n := t.root
	for {
		switch v := n.(type) {
		case *leaf:
			return v
		case *branch:
			i := 0
			for i < len(v.keys) && bytes.Compare(key, v.keys[i]) >= 0 {
				i++
			}
			n = v.children[i]
		}
	}
}

// get returns the value for key.
func (t *bptree) get(key []byte) ([]byte, bool) {
	l := t.findLeaf(key)
	for i, k := range l.keys {
		if bytes.Equal(k, key) {
			return l.vals[i], true
		}
	}
	return nil, false
}

// put inserts or replaces; it reports whether a new key was added.
func (t *bptree) put(key, val []byte) bool {
	added, split, sepKey, right := t.insert(t.root, key, val)
	if split {
		t.root = &branch{keys: [][]byte{sepKey}, children: []node{t.root, right}}
	}
	if added {
		t.size++
	}
	return added
}

// insert recursively inserts under n. When n splits, it returns the
// separator key and the new right sibling.
func (t *bptree) insert(n node, key, val []byte) (added, split bool, sepKey []byte, right node) {
	switch v := n.(type) {
	case *leaf:
		i := 0
		for i < len(v.keys) && bytes.Compare(v.keys[i], key) < 0 {
			i++
		}
		if i < len(v.keys) && bytes.Equal(v.keys[i], key) {
			v.vals[i] = val
			return false, false, nil, nil
		}
		v.keys = append(v.keys, nil)
		copy(v.keys[i+1:], v.keys[i:])
		v.keys[i] = key
		v.vals = append(v.vals, nil)
		copy(v.vals[i+1:], v.vals[i:])
		v.vals[i] = val
		if len(v.keys) <= maxKeys {
			return true, false, nil, nil
		}
		mid := len(v.keys) / 2
		r := &leaf{
			keys: append([][]byte(nil), v.keys[mid:]...),
			vals: append([][]byte(nil), v.vals[mid:]...),
			next: v.next,
		}
		v.keys = v.keys[:mid]
		v.vals = v.vals[:mid]
		v.next = r
		return true, true, r.keys[0], r
	case *branch:
		i := 0
		for i < len(v.keys) && bytes.Compare(key, v.keys[i]) >= 0 {
			i++
		}
		added, childSplit, childSep, childRight := t.insert(v.children[i], key, val)
		if childSplit {
			v.keys = append(v.keys, nil)
			copy(v.keys[i+1:], v.keys[i:])
			v.keys[i] = childSep
			v.children = append(v.children, nil)
			copy(v.children[i+2:], v.children[i+1:])
			v.children[i+1] = childRight
			if len(v.keys) > maxKeys {
				mid := len(v.keys) / 2
				sep := v.keys[mid]
				r := &branch{
					keys:     append([][]byte(nil), v.keys[mid+1:]...),
					children: append([]node(nil), v.children[mid+1:]...),
				}
				v.keys = v.keys[:mid]
				v.children = v.children[:mid+1]
				return added, true, sep, r
			}
		}
		return added, false, nil, nil
	}
	panic("lmdb: unknown node type")
}

// delete removes key, reporting whether it existed. Leaves are not
// rebalanced (see package comment on lazy deletion).
func (t *bptree) delete(key []byte) bool {
	l := t.findLeaf(key)
	for i, k := range l.keys {
		if bytes.Equal(k, key) {
			l.keys = append(l.keys[:i], l.keys[i+1:]...)
			l.vals = append(l.vals[:i], l.vals[i+1:]...)
			t.size--
			return true
		}
	}
	return false
}

// seek returns the leaf and index of the first key ≥ target.
func (t *bptree) seek(target []byte) (*leaf, int) {
	l := t.findLeaf(target)
	for {
		for i, k := range l.keys {
			if bytes.Compare(k, target) >= 0 {
				return l, i
			}
		}
		if l.next == nil {
			return nil, 0
		}
		l = l.next
	}
}

// firstEntry returns the leftmost non-empty leaf position.
func (t *bptree) firstEntry() (*leaf, int) {
	l := t.first
	for l != nil && len(l.keys) == 0 {
		l = l.next
	}
	if l == nil {
		return nil, 0
	}
	return l, 0
}
