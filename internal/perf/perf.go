// Package perf holds the calibration constants for every simulated
// device, each anchored to a specific number in the paper (or to a figure
// axis when the paper gives only a plot). Experiments must take device
// timing from here and only here, so that the mapping from paper numbers
// to simulated behaviour is auditable in one place.
//
// Absolute throughput equality with the paper's testbed is not the goal —
// the substrates are simulators — but with these anchors the *shape* of
// every figure (who wins, by what factor, where DLBooster saturates)
// reproduces.
package perf

// --- CPU decoding (paper §2.2 "Scalability") -------------------------

// CPUDecodeRateILSVRC is the JPEG decode rate of one Xeon E5 core on the
// paper's 500×375 inference images: "each Xeon E5 CPU core can decode
// only 300 images per second".
const CPUDecodeRateILSVRC = 300.0 // images/s/core

// ReferenceImagePixels is the pixel count of the anchor image above.
const ReferenceImagePixels = 500 * 375

// CPUDecodeBaseSeconds is the per-image fixed overhead of a CPU decode
// (syscall, header parse, buffer management), independent of size.
const CPUDecodeBaseSeconds = 50e-6

// CPUDecodeSeconds models CPU decode time for an arbitrary image as a
// fixed cost plus a per-pixel cost calibrated so the reference image
// lands at exactly 1/CPUDecodeRateILSVRC.
func CPUDecodeSeconds(pixels int) float64 {
	perPixel := (1.0/CPUDecodeRateILSVRC - CPUDecodeBaseSeconds) / ReferenceImagePixels
	return CPUDecodeBaseSeconds + perPixel*float64(pixels)
}

// CPUThreadEfficiency models the scaling loss of a many-thread decode
// pool (scheduler interference, memory-bandwidth sharing, the imbalance
// the paper's §5.2 attributes per-thread decoding). Effective aggregate
// rate = n × perCore × CPUThreadEfficiency(n). At 12 threads this is
// ≈ 0.82, reproducing "burning more than 12 CPU cores per GPU" for
// AlexNet's ≈ 2.3k images/s demand.
func CPUThreadEfficiency(n int) float64 {
	if n <= 1 {
		return 1
	}
	return 1 / (1 + 0.02*float64(n-1))
}

// DefaultCPUDecodeThreads is the out-of-the-box data-loader thread count
// of the CPU-based baseline. Two threads × 300 img/s ≈ 25 % of AlexNet's
// GPU demand, matching "achieves only ∼25% training performance in the
// default configuration" (§2.2).
const DefaultCPUDecodeThreads = 2

// --- FPGA decoder (paper §3.3, §4.1, Figure 7) -----------------------

// FPGA stage widths: "we place 4-way Huffman and 2-way resizing units
// according to their workloads and the constraints of FPGAs" (§4.1).
const (
	FPGAHuffmanWays = 4
	FPGAResizeWays  = 2
)

// Per-way stage rates on the 500×375 reference image, calibrated so the
// pipeline bottleneck (the 4-way Huffman unit) caps DLBooster at
// ≈ 5.6k images/s — just below GoogLeNet's large-batch GPU rate, so that
// at batch ≥ 16 the decoder (not the GPU) binds, reproducing §5.3's
// "DLBooster approaches its performance bound due to the drawbacks of
// the decoder's design" and the remedy of plugging in more FPGAs.
const (
	FPGAHuffmanRatePerWay = 1400.0 // images/s per Huffman channel
	FPGAIDCTRate          = 7000.0 // images/s, single wide unit
	FPGAResizeRatePerWay  = 3500.0 // images/s per resizer
)

// FPGADecodeRate is the steady-state decode rate of one FPGA decoder on
// the reference image: the slowest pipeline stage.
func FPGADecodeRate() float64 {
	h := FPGAHuffmanRatePerWay * FPGAHuffmanWays
	r := FPGAResizeRatePerWay * FPGAResizeWays
	m := h
	if FPGAIDCTRate < m {
		m = FPGAIDCTRate
	}
	if r < m {
		m = r
	}
	return m
}

// FPGAStageSeconds converts a per-way stage rate into per-image service
// time scaled by image size (hardware decode time is dominated by
// per-pixel work, like the CPU's).
func FPGAStageSeconds(ratePerWayRef float64, pixels int) float64 {
	return (1.0 / ratePerWayRef) * float64(pixels) / ReferenceImagePixels
}

// FPGACmdOverheadSeconds is the per-image host-side cost DLBooster keeps
// on the CPU: DataCollector metadata translation, cmd generation and
// FIFO submission, and completion draining (Algorithm 1). Anchor:
// Figure 6(d) charges 0.3 core to "preprocessing" while training
// ResNet-18 with DLBooster at ≈ 2.7–2.8k images/s ⇒ ≈ 107 µs per image.
const FPGACmdOverheadSeconds = 107e-6 // per image, host CPU busy time

// CacheFeedOverheadSeconds is the per-image host cost of serving an
// epoch from the in-memory cache (hybrid mode): a memory copy plus queue
// bookkeeping, far below the live cmd path.
const CacheFeedOverheadSeconds = 2e-6

// NvJPEGBatchOverheadSeconds is the fixed per-batch cost of launching an
// nvJPEG decode (kernel launch + state setup). Together with the
// per-image decode time it sets nvJPEG's batch-1 latency gap over
// DLBooster in Figure 8 (1.8 ms vs 1.2 ms).
const NvJPEGBatchOverheadSeconds = 750e-6

// --- GPU compute (Figures 2, 5, 7; §2.2) ------------------------------

// TrainProfile is the calibrated training-side cost model of one model
// on one P100.
type TrainProfile struct {
	Name string
	// IdealRate is images/s per GPU with synthetic data (no input
	// bottleneck), the "Performance Upper Boundary" of Figure 2.
	IdealRate float64
	// BatchSize is the per-GPU batch the paper uses for this model.
	BatchSize int
	// ImagePixels is the decoded input size fed to this model.
	ImagePixels int
	// InputChannels is 1 for grayscale, 3 for colour.
	InputChannels int
	// Dataset images for one epoch.
	EpochImages int
	// DatasetFitsInMemory: MNIST can be cached after the first epoch,
	// ILSVRC12 cannot (Figure 6 discussion).
	DatasetFitsInMemory bool
}

// MultiGPUSyncEfficiency is per-iteration gradient-synchronisation
// efficiency with n data-parallel GPUs. Figure 2's ideal bars (2,496 →
// 4,652 images/s from 1 → 2 GPUs) give 0.932 at n = 2.
func MultiGPUSyncEfficiency(n int) float64 {
	if n <= 1 {
		return 1
	}
	return 1 / (1 + 0.073*float64(n-1))
}

// Training profiles. Anchors: AlexNet ideal = Figure 2 "Ideal 2496";
// LeNet-5 and ResNet-18 are set from the Figure 5(a)/(c) axes (≈ 100k and
// ≈ 1.45k images/s per GPU respectively at the paper's batch sizes).
var (
	LeNet5 = TrainProfile{
		Name: "LeNet-5", IdealRate: 100000, BatchSize: 512,
		ImagePixels: 28 * 28, InputChannels: 1, EpochImages: 60000,
		DatasetFitsInMemory: true,
	}
	AlexNet = TrainProfile{
		Name: "AlexNet", IdealRate: 2496, BatchSize: 256,
		ImagePixels: 227 * 227, InputChannels: 3, EpochImages: 1281167,
		DatasetFitsInMemory: false,
	}
	ResNet18 = TrainProfile{
		Name: "ResNet-18", IdealRate: 1450, BatchSize: 128,
		ImagePixels: 224 * 224, InputChannels: 3, EpochImages: 1281167,
		DatasetFitsInMemory: false,
	}
)

// TrainProfiles lists the training benchmarks in paper order.
var TrainProfiles = []TrainProfile{LeNet5, AlexNet, ResNet18}

// InferProfile is the calibrated inference-side cost model of one model
// on one P100 with float16 (Tensor Core) enabled.
//
// Batch inference time is modelled as (batch + LatencyBatches) / MaxRate:
// affine in batch size, saturating to MaxRate at large batches — the
// shape of every curve in Figure 7. MaxRate anchors to the Figure 7 axis
// plateau; LatencyBatches sets the batch-1 latency of Figure 8.
type InferProfile struct {
	Name          string
	MaxRate       float64 // images/s plateau (Figure 7 axes)
	LatencyBatch  float64 // fixed cost expressed in image-equivalents
	MaxBatch      int     // largest batch the paper sweeps
	ImagePixels   int     // network input size after preprocessing
	InputChannels int
}

// BatchSeconds returns the modelled GPU time to infer one batch.
func (p InferProfile) BatchSeconds(batch int) float64 {
	return (float64(batch) + p.LatencyBatch) / p.MaxRate
}

// Rate returns the modelled steady-state throughput at a batch size.
func (p InferProfile) Rate(batch int) float64 {
	return float64(batch) / p.BatchSeconds(batch)
}

// Inference profiles. MaxRate anchors: Figure 7(a) ≈ 6.0–6.5k for
// GoogLeNet, 7(b) ≈ 2.1k for VGG-16, 7(c) ≈ 5.2–5.4k for ResNet-50 (the
// paper's §2.2 quotes 5k images/s for ResNet-50 on a V100).
var (
	GoogLeNet = InferProfile{Name: "GoogLeNet", MaxRate: 6500, LatencyBatch: 3, MaxBatch: 32, ImagePixels: 224 * 224, InputChannels: 3}
	VGG16     = InferProfile{Name: "VGG-16", MaxRate: 2100, LatencyBatch: 2, MaxBatch: 32, ImagePixels: 224 * 224, InputChannels: 3}
	ResNet50  = InferProfile{Name: "ResNet-50", MaxRate: 5400, LatencyBatch: 6, MaxBatch: 64, ImagePixels: 224 * 224, InputChannels: 3}
)

// InferProfiles lists the inference benchmarks in paper order.
var InferProfiles = []InferProfile{GoogLeNet, VGG16, ResNet50}

// NvJPEGGPUShare is the fraction of GPU compute nvJPEG occupies while
// decoding at full demand: "the decoding on nvJPEG needs to consume ∼30%
// of GPU resources" (§5.3), slowing model kernels by 1/(1-share) and
// producing the ≈ 30–40 % throughput loss of Figures 2 and 7.
const NvJPEGGPUShare = 0.30

// NvJPEGDecodeRate is nvJPEG's decode rate on an otherwise idle GPU for
// the reference image (it is fast — the problem the paper demonstrates is
// contention, not decode speed).
const NvJPEGDecodeRate = 8000.0 // images/s

// --- Host data movement (§5.2 reason 1) ------------------------------

// PCIeBandwidthBytes is the host→device copy bandwidth (PCIe 3.0 ×16).
const PCIeBandwidthBytes = 12e9 // bytes/s

// PerItemCopyOverheadSeconds is the fixed cost of each small-piece copy
// (launch + driver bookkeeping). Backends that copy "each datum ... in
// small pieces" pay it per image; DLBooster's batched large-block buffers
// pay it once per batch. At LeNet-5's 512-image batches this reproduces
// the ≈ 20 % loss §5.2 reports for per-datum copying.
const PerItemCopyOverheadSeconds = 2e-6

// CopySeconds returns the host→device copy time for n bytes moved in
// `pieces` separate transfers.
func CopySeconds(n int, pieces int) float64 {
	if pieces < 1 {
		pieces = 1
	}
	return float64(n)/PCIeBandwidthBytes + float64(pieces)*PerItemCopyOverheadSeconds
}

// --- Engine-side CPU overheads (Figure 6(d)) --------------------------

// Per-GPU steady-state CPU cores consumed by the engine itself,
// independent of preprocessing backend. Anchor: Figure 6(d), training
// ResNet-18 with DLBooster: 0.95 launching kernels, 0.15 transforming,
// 0.12 updating model, 0.3 preprocessing ⇒ ≤ 1.5 cores in all.
const (
	KernelLaunchCores   = 0.95
	TransformCores      = 0.15
	ModelUpdateCores    = 0.12
	DLBoosterFeedCores  = 0.30 // cmd generation + dispatcher, the "preprocessing" slice
	NvJPEGLaunchCores   = 1.0  // extra CUDA-launch cores nvJPEG burns ("few (1∼2) CPU cores ... to launch CUDA kernels", §5.3)
	LMDBPerGPUReadCores = 1.0  // deserialize + read threads per GPU for the LMDB backend (Figure 6: ≈ 2.5 total/GPU)
)

// --- LMDB offline backend (Figure 2, §2.2) ----------------------------

// LMDBAggregateRate is the shared store's maximum aggregate read
// throughput (reference-size records) with n concurrent GPU readers.
// Anchor: Figure 2, AlexNet 2-GPU LMDB = 3,200 images/s (the shared-DB
// bottleneck), single-GPU LMDB ≈ 2,446 (not store-bound).
func LMDBAggregateRate(n int) float64 {
	if n < 1 {
		n = 1
	}
	return 3450 - 250*float64(n-1)
}

// LMDBRecordScale scales the store rate for record size: smaller decoded
// records (MNIST) read proportionally faster, capped by a fixed
// per-record cost.
func LMDBRecordRate(n int, recordBytes int) float64 {
	ref := AlexNet.ImagePixels * 3
	rate := LMDBAggregateRate(n) * float64(ref) / float64(recordBytes)
	const perRecordCap = 200000.0
	if rate > perRecordCap {
		rate = perRecordCap
	}
	return rate
}

// LMDBPrepareRate is the offline conversion rate: "we spent more than 2
// hours to prepare the LMDB backend for ILSVRC12" (§2.2) — 1.28 M images
// in ≈ 2 h.
const LMDBPrepareRate = 178.0 // images/s

// --- I/O devices (§5.1 testbed) ---------------------------------------

const (
	// NVMeReadBandwidth: Intel Optane 900p sequential read.
	NVMeReadBandwidth = 2.5e9 // bytes/s
	// NVMeReadLatency: per-request access latency.
	NVMeReadLatency = 10e-6 // seconds
	// NVMeWriteBandwidth: Optane 900p sequential write — what the
	// tiered ReplayCache's spill demotions are paced at (the docs/CACHE.md
	// sizing example divides the spilled epoch bytes by this).
	NVMeWriteBandwidth = 2.0e9 // bytes/s
	// NVMeWriteLatency: per-write access latency.
	NVMeWriteLatency = 10e-6 // seconds
	// NICBandwidthBits: "a 40Gbps NIC".
	NICBandwidthBits = 40e9 // bits/s
	// InferenceClients: "we set up 5 clients to send color images".
	InferenceClients = 5
	// AvgJPEGBytes: a 500×375 colour JPEG at typical quality.
	AvgJPEGBytes = 30 * 1024
)

// --- Economics (§5.4) --------------------------------------------------

const (
	CorePricePerHour     = 0.105 // USD per physical core-hour ("$0.10∼0.11")
	CoreAnnualRevenue    = 900.0 // USD per core-year ("∼$900 per year")
	FPGAWatts            = 25.0  // typical decode-board power draw
	CPUWatts             = 130.0 // server-class CPU package power
	GPUWatts             = 250.0 // training-class GPU board power
	FPGAEquivalentCores  = 30    // "a well-optimized FPGA decoder can offer the same ... as 30 cores"
	SavedCoreResaleHours = 1.5   // "$1.5/h" resale of freed cores per FPGA
)

// --- Server inventory (§5.1) -------------------------------------------

const (
	TestbedCPUCores = 32 // "two Intel Xeon E5-2630-v3 CPUs (32 cores in all)"
	TestbedGPUs     = 2  // "2 NVIDIA Tesla P100s"
)
