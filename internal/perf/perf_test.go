package perf

import (
	"math"
	"testing"
)

func TestCPUDecodeAnchor(t *testing.T) {
	// The reference image must decode at exactly the paper's 300 img/s.
	s := CPUDecodeSeconds(ReferenceImagePixels)
	if math.Abs(1/s-CPUDecodeRateILSVRC) > 1e-6 {
		t.Fatalf("reference decode rate = %.2f, want %.0f", 1/s, CPUDecodeRateILSVRC)
	}
	// Smaller images decode faster but never below the base cost.
	if CPUDecodeSeconds(28*28) <= CPUDecodeBaseSeconds {
		t.Fatal("MNIST decode below base cost")
	}
	if CPUDecodeSeconds(28*28) >= s {
		t.Fatal("MNIST decode not faster than ILSVRC")
	}
}

func TestCPUThreadEfficiency(t *testing.T) {
	if CPUThreadEfficiency(1) != 1 {
		t.Fatal("single thread must be 100% efficient")
	}
	if e := CPUThreadEfficiency(12); e < 0.80 || e > 0.85 {
		t.Fatalf("12-thread efficiency = %.3f, want ~0.82", e)
	}
	for n := 2; n < 32; n++ {
		if CPUThreadEfficiency(n) >= CPUThreadEfficiency(n-1) {
			t.Fatalf("efficiency not monotone at %d", n)
		}
	}
	// 12 cores must suffice for AlexNet's demand; 7 for ResNet-18's
	// (Figure 6 anchors).
	alex := 12 * CPUDecodeRateILSVRC * CPUThreadEfficiency(12)
	if alex < AlexNet.IdealRate {
		t.Fatalf("12 cores deliver %.0f < AlexNet ideal %.0f", alex, AlexNet.IdealRate)
	}
	res := 7 * CPUDecodeRateILSVRC * CPUThreadEfficiency(7)
	if res < ResNet18.IdealRate {
		t.Fatalf("7 cores deliver %.0f < ResNet-18 ideal %.0f", res, ResNet18.IdealRate)
	}
}

func TestDefaultThreadsReproduce25Percent(t *testing.T) {
	// §2.2: default config achieves only ~25% of AlexNet GPU demand.
	rate := DefaultCPUDecodeThreads * CPUDecodeRateILSVRC * CPUThreadEfficiency(DefaultCPUDecodeThreads)
	frac := rate / AlexNet.IdealRate
	if frac < 0.20 || frac > 0.30 {
		t.Fatalf("default-config fraction = %.2f, want ~0.25", frac)
	}
}

func TestFPGADecodeRate(t *testing.T) {
	r := FPGADecodeRate()
	// Figure 7(a): DLBooster plateaus just under 6k images/s, below the
	// GPU's large-batch rate so the decoder is what binds at batch ≥ 16.
	if r < 5200 || r > 6200 {
		t.Fatalf("FPGA decode rate = %.0f, want ~5600", r)
	}
	if r >= GoogLeNet.Rate(32) {
		t.Fatalf("FPGA rate %.0f must bind below GoogLeNet's batch-32 GPU rate %.0f", r, GoogLeNet.Rate(32))
	}
	// Huffman must be the bottleneck stage (the paper widened it to
	// 4-way precisely because it is the heavy stage).
	if FPGAHuffmanRatePerWay*FPGAHuffmanWays > FPGAIDCTRate ||
		FPGAHuffmanRatePerWay*FPGAHuffmanWays > FPGAResizeRatePerWay*FPGAResizeWays {
		t.Fatal("Huffman unit is not the pipeline bottleneck")
	}
	// FPGA must cover both training GPUs' AlexNet demand (Figure 5(b):
	// DLBooster approaches the ideal boundary at 2 GPUs).
	demand := 2 * AlexNet.IdealRate * MultiGPUSyncEfficiency(2)
	if r < demand {
		t.Fatalf("FPGA rate %.0f below 2-GPU AlexNet demand %.0f", r, demand)
	}
}

func TestFPGAStageSecondsScalesWithPixels(t *testing.T) {
	big := FPGAStageSeconds(FPGAHuffmanRatePerWay, ReferenceImagePixels)
	small := FPGAStageSeconds(FPGAHuffmanRatePerWay, 28*28)
	if big <= small {
		t.Fatal("stage time must grow with pixels")
	}
	if math.Abs(big-1/FPGAHuffmanRatePerWay) > 1e-12 {
		t.Fatal("reference image must hit the calibrated rate")
	}
}

func TestMultiGPUSyncEfficiencyAnchor(t *testing.T) {
	// Figure 2 ideal: 2496 → 4652 from 1 → 2 GPUs.
	got := 2 * AlexNet.IdealRate * MultiGPUSyncEfficiency(2)
	if math.Abs(got-4652) > 60 {
		t.Fatalf("2-GPU ideal AlexNet = %.0f, want ≈4652", got)
	}
}

func TestInferProfileShapes(t *testing.T) {
	for _, p := range InferProfiles {
		// Rate is increasing in batch and saturates below MaxRate.
		prev := 0.0
		for _, b := range []int{1, 2, 4, 8, 16, 32, 64} {
			r := p.Rate(b)
			if r <= prev {
				t.Fatalf("%s: rate not increasing at batch %d", p.Name, b)
			}
			if r >= p.MaxRate {
				t.Fatalf("%s: rate %f exceeds max %f", p.Name, r, p.MaxRate)
			}
			prev = r
		}
		// BatchSeconds is affine: doubling batch < doubling time.
		if p.BatchSeconds(32) >= 2*p.BatchSeconds(16) {
			t.Fatalf("%s: batching gives no amortisation", p.Name)
		}
	}
}

func TestInferBatch1LatencyAnchor(t *testing.T) {
	// Figure 8: batch-1 GPU-side latency must leave room for ~1.2 ms
	// end-to-end with DLBooster (GoogLeNet).
	l := GoogLeNet.BatchSeconds(1)
	if l < 0.0004 || l > 0.0011 {
		t.Fatalf("GoogLeNet batch-1 inference = %.4f s, want 0.4–1.1 ms", l)
	}
}

func TestCopySeconds(t *testing.T) {
	batched := CopySeconds(512*28*28, 1)
	perItem := CopySeconds(512*28*28, 512)
	if perItem <= batched {
		t.Fatal("per-item copies must cost more")
	}
	// §5.2: per-datum copying costs LeNet-5 ≈ 20 %. At 100k img/s a
	// 512-image batch has a 5.12 ms compute budget; the extra copy
	// overhead must be ≈ 1 ms.
	extra := perItem - batched
	if extra < 0.0008 || extra > 0.0013 {
		t.Fatalf("per-item overhead for LeNet batch = %.4f s, want ≈ 1 ms", extra)
	}
	if CopySeconds(100, 0) != CopySeconds(100, 1) {
		t.Fatal("pieces < 1 must clamp to 1")
	}
}

func TestLMDBAnchors(t *testing.T) {
	// Figure 2: 2-GPU LMDB AlexNet = 3,200 images/s, store-bound.
	if got := LMDBAggregateRate(2); math.Abs(got-3200) > 1 {
		t.Fatalf("LMDB 2-reader rate = %.0f, want 3200", got)
	}
	// Single GPU must not be store-bound (2,446 observed ≈ GPU-bound).
	if LMDBAggregateRate(1) < AlexNet.IdealRate {
		t.Fatal("LMDB single-reader rate below AlexNet demand")
	}
	if LMDBAggregateRate(0) != LMDBAggregateRate(1) {
		t.Fatal("n<1 must clamp")
	}
	// Record-size scaling: MNIST records read much faster, capped.
	mnist := LMDBRecordRate(1, 28*28)
	if mnist <= LMDBAggregateRate(1) {
		t.Fatal("small records must read faster")
	}
	if mnist > 200000 {
		t.Fatal("per-record cap not applied")
	}
	// ~2 hours for ILSVRC12 conversion.
	hours := float64(AlexNet.EpochImages) / LMDBPrepareRate / 3600
	if hours < 1.8 || hours > 2.3 {
		t.Fatalf("LMDB prep = %.2f h, want ≈ 2", hours)
	}
}

func TestEngineCoreAnchors(t *testing.T) {
	// Figure 6(d): DLBooster ResNet-18 total ≤ 1.5 cores infer/train side.
	total := KernelLaunchCores + TransformCores + ModelUpdateCores + DLBoosterFeedCores
	if total > 1.55 {
		t.Fatalf("DLBooster per-GPU cores = %.2f, want ≤ 1.5", total)
	}
}

func TestNICCoversInferenceDemand(t *testing.T) {
	// 40 Gbps of 30 KB images ≫ any model's plateau rate: the network
	// must never be the bottleneck in Figure 7.
	imgsPerSec := NICBandwidthBits / 8 / AvgJPEGBytes
	for _, p := range InferProfiles {
		if imgsPerSec < 2*p.MaxRate {
			t.Fatalf("NIC limits %s", p.Name)
		}
	}
}

func TestEconAnchors(t *testing.T) {
	// One FPGA replaces 30 cores; resale of the freed cores must exceed
	// $1.5/h at the quoted core price.
	if resale := float64(FPGAEquivalentCores) * CorePricePerHour; resale < SavedCoreResaleHours {
		t.Fatalf("freed-core resale $%.2f/h below $%.1f/h", resale, SavedCoreResaleHours)
	}
	if !(FPGAWatts < CPUWatts && CPUWatts < GPUWatts) {
		t.Fatal("power ordering broken")
	}
}
