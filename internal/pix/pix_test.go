package pix

import (
	"testing"
	"testing/quick"
)

func TestNewAndAccessors(t *testing.T) {
	m := New(4, 3, 3)
	if m.Size() != 36 || len(m.Pix) != 36 {
		t.Fatalf("size = %d", m.Size())
	}
	m.Set(1, 2, 0, 99)
	if m.At(1, 2, 0) != 99 {
		t.Fatal("Set/At mismatch")
	}
	if m.Pix[(2*4+1)*3] != 99 {
		t.Fatal("unexpected layout")
	}
}

func TestNewPanics(t *testing.T) {
	for _, tc := range [][3]int{{0, 1, 1}, {1, 0, 1}, {-1, 1, 3}, {1, 1, 2}, {1, 1, 0}, {1, 1, 4}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%v) did not panic", tc)
				}
			}()
			New(tc[0], tc[1], tc[2])
		}()
	}
}

func TestFromBytes(t *testing.T) {
	buf := make([]byte, 12)
	m, err := FromBytes(2, 2, 3, buf)
	if err != nil {
		t.Fatal(err)
	}
	m.Set(0, 0, 0, 7)
	if buf[0] != 7 {
		t.Fatal("FromBytes copied instead of wrapping")
	}
	if _, err := FromBytes(2, 2, 3, make([]byte, 11)); err == nil {
		t.Fatal("short buffer accepted")
	}
	if _, err := FromBytes(0, 2, 3, nil); err == nil {
		t.Fatal("zero width accepted")
	}
	if _, err := FromBytes(2, 2, 2, make([]byte, 8)); err == nil {
		t.Fatal("2 channels accepted")
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := New(2, 2, 1)
	m.Set(0, 0, 0, 5)
	c := m.Clone()
	c.Set(0, 0, 0, 9)
	if m.At(0, 0, 0) != 5 {
		t.Fatal("Clone shares storage")
	}
	if !m.EqualGeometry(c) {
		t.Fatal("Clone changed geometry")
	}
}

func TestMaxAbsDiffAndMSE(t *testing.T) {
	a := New(2, 1, 1)
	b := New(2, 1, 1)
	a.Pix[0], a.Pix[1] = 10, 20
	b.Pix[0], b.Pix[1] = 13, 16
	d, err := a.MaxAbsDiff(b)
	if err != nil || d != 4 {
		t.Fatalf("MaxAbsDiff = %d, %v", d, err)
	}
	mse, err := a.MeanSquaredError(b)
	if err != nil || mse != (9+16)/2.0 {
		t.Fatalf("MSE = %v, %v", mse, err)
	}
	c := New(3, 1, 1)
	if _, err := a.MaxAbsDiff(c); err == nil {
		t.Fatal("geometry mismatch accepted")
	}
	if _, err := a.MeanSquaredError(c); err == nil {
		t.Fatal("geometry mismatch accepted")
	}
}

// TestDiffMetricsProperties: MaxAbsDiff and MSE are symmetric, zero on
// identical images, and MSE ≤ MaxAbsDiff².
func TestDiffMetricsProperties(t *testing.T) {
	f := func(p1, p2 [8]byte) bool {
		a := New(4, 2, 1)
		b := New(4, 2, 1)
		copy(a.Pix, p1[:])
		copy(b.Pix, p2[:])
		dab, _ := a.MaxAbsDiff(b)
		dba, _ := b.MaxAbsDiff(a)
		if dab != dba {
			return false
		}
		mab, _ := a.MeanSquaredError(b)
		mba, _ := b.MeanSquaredError(a)
		if mab != mba {
			return false
		}
		if mab > float64(dab*dab) {
			return false
		}
		saa, _ := a.MaxAbsDiff(a)
		maa, _ := a.MeanSquaredError(a)
		return saa == 0 && maa == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
