// Package pix defines the interleaved pixel buffer shared by the JPEG
// codec, the image-processing kernels, the FPGA decoder model and the
// dataset generators.
//
// Everything in the pipeline moves images as flat channels-last byte
// slices (HWC, 8 bits per sample) because that is what flows over the
// paper's DMA path: the FPGA decoder writes resized RGB pixel matrices
// into HugePage batch buffers, and the dispatcher copies those bytes to
// device memory untouched.
package pix

import (
	"fmt"
	"math"
)

// Image is a W×H raster with C interleaved 8-bit channels. C is 1 for
// grayscale and 3 for RGB.
type Image struct {
	W, H, C int
	Pix     []byte // len = W*H*C, row-major, channels interleaved
}

// New allocates a zeroed image. It panics on non-positive dimensions or a
// channel count other than 1 or 3; image geometry always comes from
// validated headers or generator code, so a bad value is a programming
// error, not an input error.
func New(w, h, c int) *Image {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("pix: dimensions %dx%d must be positive", w, h))
	}
	if c != 1 && c != 3 {
		panic(fmt.Sprintf("pix: channel count %d must be 1 or 3", c))
	}
	return &Image{W: w, H: h, C: c, Pix: make([]byte, w*h*c)}
}

// FromBytes wraps an existing buffer as an image without copying. The
// buffer length must be exactly w*h*c.
func FromBytes(w, h, c int, buf []byte) (*Image, error) {
	if w <= 0 || h <= 0 || (c != 1 && c != 3) {
		return nil, fmt.Errorf("pix: bad geometry %dx%dx%d", w, h, c)
	}
	if len(buf) != w*h*c {
		return nil, fmt.Errorf("pix: buffer length %d, want %d", len(buf), w*h*c)
	}
	return &Image{W: w, H: h, C: c, Pix: buf}, nil
}

// Size returns the byte size of the raster.
func (m *Image) Size() int { return m.W * m.H * m.C }

// At returns the sample for channel c at (x, y). Out-of-range access
// panics via the underlying slice.
func (m *Image) At(x, y, c int) byte {
	return m.Pix[(y*m.W+x)*m.C+c]
}

// Set writes the sample for channel c at (x, y).
func (m *Image) Set(x, y, c int, v byte) {
	m.Pix[(y*m.W+x)*m.C+c] = v
}

// Clone returns a deep copy.
func (m *Image) Clone() *Image {
	out := &Image{W: m.W, H: m.H, C: m.C, Pix: make([]byte, len(m.Pix))}
	copy(out.Pix, m.Pix)
	return out
}

// EqualGeometry reports whether two images have identical dimensions and
// channel count.
func (m *Image) EqualGeometry(o *Image) bool {
	return m.W == o.W && m.H == o.H && m.C == o.C
}

// MaxAbsDiff returns the largest absolute per-sample difference between
// two images of equal geometry. It is the comparison used by the lossy
// round-trip tests (JPEG is not bit-exact, but it is bounded-error).
func (m *Image) MaxAbsDiff(o *Image) (int, error) {
	if !m.EqualGeometry(o) {
		return 0, fmt.Errorf("pix: geometry mismatch %dx%dx%d vs %dx%dx%d", m.W, m.H, m.C, o.W, o.H, o.C)
	}
	max := 0
	for i := range m.Pix {
		d := int(m.Pix[i]) - int(o.Pix[i])
		if d < 0 {
			d = -d
		}
		if d > max {
			max = d
		}
	}
	return max, nil
}

// PSNR returns the peak signal-to-noise ratio between two images of
// equal geometry in dB (math.Inf(1) for identical pixels) — the
// comparison the lossy decode-to-scale tests use.
func (m *Image) PSNR(o *Image) (float64, error) {
	mse, err := m.MeanSquaredError(o)
	if err != nil {
		return 0, err
	}
	if mse == 0 {
		return math.Inf(1), nil
	}
	return 10 * math.Log10(255*255/mse), nil
}

// MeanSquaredError returns the mean squared per-sample error between two
// images of equal geometry.
func (m *Image) MeanSquaredError(o *Image) (float64, error) {
	if !m.EqualGeometry(o) {
		return 0, fmt.Errorf("pix: geometry mismatch")
	}
	if len(m.Pix) == 0 {
		return 0, nil
	}
	var sum float64
	for i := range m.Pix {
		d := float64(int(m.Pix[i]) - int(o.Pix[i]))
		sum += d * d
	}
	return sum / float64(len(m.Pix)), nil
}
