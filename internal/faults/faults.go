// Package faults implements a deterministic, seeded fault injector for
// the pipeline's single points of failure: the FPGA decoder boards, the
// NIC fabric, and the NVMe store. DLBooster's design (§3.3–§3.4) chains
// all three in front of the GPUs, so a decode error, a stalled board or
// a dropped frame must degrade the pipeline rather than stall it — and
// the chaos tests that prove it need faults that fire at reproducible
// points, not at the mercy of wall-clock timing.
//
// An Injector owns one operation counter and one seeded PRNG. Each
// protected operation calls Next exactly once and receives a Plan: an
// optional latency spike, then at most one of drop / fail / corrupt /
// stuck. Faults can fire probabilistically (rates, reproducible under a
// fixed seed and call order) or on exact operation counts (every-Nth
// and stuck-after, reproducible regardless of scheduling), and can be
// confined to an operation window so tests can assert that throughput
// recovers once the fault window closes.
package faults

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// ErrInjected marks a failure produced by an injector rather than by
// the subsystem itself. Callers unwrap with errors.Is.
var ErrInjected = errors.New("faults: injected failure")

// Config selects the fault modes. The zero value injects nothing.
//
// Rates are probabilities in [0, 1] drawn from the seeded PRNG; Every
// counters fire on exact 1-based operation ordinals (Every=3 hits ops
// 3, 6, 9, …), which stays deterministic even when operations race.
// When both a rate and an Every counter are set for the same mode,
// either trigger fires the fault.
type Config struct {
	// Seed fixes the PRNG; 0 means 1 so the zero value stays usable.
	Seed int64

	FailRate  float64 // probability an op returns ErrInjected
	FailEvery int     // every-Nth op returns ErrInjected

	CorruptRate  float64 // probability an op's payload is corrupted
	CorruptEvery int     // every-Nth op's payload is corrupted

	DropRate  float64 // probability an op is silently discarded
	DropEvery int     // every-Nth op is silently discarded

	Delay      time.Duration // latency-spike magnitude
	DelayRate  float64       // probability an op is delayed by Delay
	DelayEvery int           // every-Nth op is delayed by Delay

	// StuckAfter wedges the device permanently starting at this 1-based
	// op ordinal (0 = never). A stuck plan overrides all other modes and
	// ignores the window: a hung device does not recover by itself.
	StuckAfter int

	// WindowStart/WindowLen confine injection (except StuckAfter) to the
	// 1-based op interval [WindowStart, WindowStart+WindowLen). A zero
	// WindowStart means ops are eligible from the first; a zero
	// WindowLen with a nonzero WindowStart leaves the window open-ended.
	WindowStart int
	WindowLen   int
}

// Validate reports configuration errors: rates outside [0, 1] or
// negative counters and durations.
func (c Config) Validate() error {
	for _, r := range []struct {
		name string
		v    float64
	}{
		{"fail-rate", c.FailRate},
		{"corrupt-rate", c.CorruptRate},
		{"drop-rate", c.DropRate},
		{"delay-rate", c.DelayRate},
	} {
		if r.v < 0 || r.v > 1 {
			return fmt.Errorf("faults: %s %v outside [0, 1]", r.name, r.v)
		}
	}
	for _, n := range []struct {
		name string
		v    int
	}{
		{"fail-every", c.FailEvery},
		{"corrupt-every", c.CorruptEvery},
		{"drop-every", c.DropEvery},
		{"delay-every", c.DelayEvery},
		{"stuck-after", c.StuckAfter},
		{"window-start", c.WindowStart},
		{"window-len", c.WindowLen},
	} {
		if n.v < 0 {
			return fmt.Errorf("faults: %s %d negative", n.name, n.v)
		}
	}
	if c.Delay < 0 {
		return fmt.Errorf("faults: delay %v negative", c.Delay)
	}
	return nil
}

// Enabled reports whether the configuration can inject anything.
func (c Config) Enabled() bool {
	return c.FailRate > 0 || c.FailEvery > 0 ||
		c.CorruptRate > 0 || c.CorruptEvery > 0 ||
		c.DropRate > 0 || c.DropEvery > 0 ||
		(c.Delay > 0 && (c.DelayRate > 0 || c.DelayEvery > 0)) ||
		c.StuckAfter > 0
}

// Plan is the injector's verdict for one operation: delay first, then
// at most one of the terminal outcomes.
type Plan struct {
	Delay   time.Duration // sleep before the op
	Drop    bool          // discard the op silently
	Fail    bool          // fail the op with ErrInjected
	Corrupt bool          // corrupt the op's payload
	Stuck   bool          // wedge the device permanently
}

// Active reports whether the plan does anything at all, letting hook
// sites skip their fault path entirely on the common no-op plan.
func (p Plan) Active() bool {
	return p.Delay > 0 || p.Drop || p.Fail || p.Corrupt || p.Stuck
}

// Stats counts operations seen and faults injected, by kind.
type Stats struct {
	Ops      int64
	Fails    int64
	Corrupts int64
	Drops    int64
	Delays   int64
	Stucks   int64
}

// Injector hands out Plans. A nil *Injector is valid and injects
// nothing, so hook sites need no nil checks. All methods are safe for
// concurrent use; under concurrency the rate-based draws depend on call
// order, while Every/StuckAfter ordinals remain exact.
type Injector struct {
	cfg Config

	mu         sync.Mutex
	rng        *rand.Rand
	ops        int64
	stats      Stats
	hook       func(kind string, op int64)
	stuckNoted bool
}

// New builds an injector; it panics on an invalid configuration (an
// injector is test/demo apparatus — a bad spec is a caller bug, and
// ParseSpec validates user input first).
func New(cfg Config) *Injector {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	return &Injector{cfg: cfg, rng: rand.New(rand.NewSource(seed))}
}

// SetHook installs an observer called once per injected fault with the
// fault kind ("stuck", "fail", "drop", "corrupt", "delay") and the op
// ordinal that triggered it. The hook runs outside the injector's lock,
// so it may call back into anything — including a flight recorder that
// snapshots the injector. A stuck fault notifies only once, on the op
// that first wedges the device, not on every op the wedge swallows. A
// nil injector ignores the call; a nil hook clears it.
func (i *Injector) SetHook(hook func(kind string, op int64)) {
	if i == nil {
		return
	}
	i.mu.Lock()
	i.hook = hook
	i.mu.Unlock()
}

// Next decides the fate of the next operation.
func (i *Injector) Next() Plan {
	if i == nil {
		return Plan{}
	}
	p, op, kinds, hook := i.nextLocked()
	if hook != nil {
		for _, k := range kinds {
			hook(k, op)
		}
	}
	return p
}

// nextLocked advances the op counter and decides the plan under the
// lock, returning what Next needs to invoke the hook after unlocking.
func (i *Injector) nextLocked() (p Plan, op int64, kinds []string, hook func(string, int64)) {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.ops++
	i.stats.Ops++
	op = i.ops
	hook = i.hook

	if i.cfg.StuckAfter > 0 && op >= int64(i.cfg.StuckAfter) {
		p.Stuck = true
		i.stats.Stucks++
		if !i.stuckNoted {
			i.stuckNoted = true
			kinds = append(kinds, "stuck")
		}
		return p, op, kinds, hook
	}
	if !i.inWindowLocked(op) {
		return p, op, nil, hook
	}
	if i.hitLocked(i.cfg.DelayRate, i.cfg.DelayEvery, op) && i.cfg.Delay > 0 {
		p.Delay = i.cfg.Delay
		i.stats.Delays++
		kinds = append(kinds, "delay")
	}
	// Terminal outcomes are mutually exclusive; precedence drop > fail >
	// corrupt keeps one op one fault.
	switch {
	case i.hitLocked(i.cfg.DropRate, i.cfg.DropEvery, op):
		p.Drop = true
		i.stats.Drops++
		kinds = append(kinds, "drop")
	case i.hitLocked(i.cfg.FailRate, i.cfg.FailEvery, op):
		p.Fail = true
		i.stats.Fails++
		kinds = append(kinds, "fail")
	case i.hitLocked(i.cfg.CorruptRate, i.cfg.CorruptEvery, op):
		p.Corrupt = true
		i.stats.Corrupts++
		kinds = append(kinds, "corrupt")
	}
	return p, op, kinds, hook
}

func (i *Injector) inWindowLocked(op int64) bool {
	start := int64(i.cfg.WindowStart)
	if start <= 0 {
		start = 1
	}
	if op < start {
		return false
	}
	if i.cfg.WindowLen > 0 && op >= start+int64(i.cfg.WindowLen) {
		return false
	}
	return true
}

// hitLocked fires when the op ordinal lands on the every-Nth lattice or
// the PRNG draw clears the rate. The draw is consumed only when a rate
// is configured, so Every-only injectors never touch the PRNG and stay
// exact under any interleaving.
func (i *Injector) hitLocked(rate float64, every int, op int64) bool {
	if every > 0 && op%int64(every) == 0 {
		return true
	}
	return rate > 0 && i.rng.Float64() < rate
}

// CorruptBytes deterministically flips bytes of p in place using the
// injector's PRNG: one flip always, plus one more per 64 bytes of
// payload, so any non-empty payload is guaranteed to change. It returns
// p for chaining. A nil injector leaves p untouched.
func (i *Injector) CorruptBytes(p []byte) []byte {
	if i == nil || len(p) == 0 {
		return p
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	flips := 1 + len(p)/64
	for f := 0; f < flips; f++ {
		j := i.rng.Intn(len(p))
		p[j] ^= byte(1 + i.rng.Intn(255)) // nonzero XOR: the byte changes
	}
	return p
}

// Ops returns the number of operations decided so far.
func (i *Injector) Ops() int64 {
	if i == nil {
		return 0
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.ops
}

// Snapshot returns the counters accumulated so far.
func (i *Injector) Snapshot() Stats {
	if i == nil {
		return Stats{}
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.stats
}

// Config returns the injector's configuration.
func (i *Injector) Config() Config {
	if i == nil {
		return Config{}
	}
	return i.cfg
}

// specKeys maps spec keys to setters, shared by ParseSpec and its error
// message.
var specKeys = map[string]func(*Config, string) error{
	"seed":          func(c *Config, v string) (err error) { c.Seed, err = strconv.ParseInt(v, 10, 64); return },
	"fail-rate":     func(c *Config, v string) (err error) { c.FailRate, err = strconv.ParseFloat(v, 64); return },
	"fail-every":    func(c *Config, v string) (err error) { c.FailEvery, err = strconv.Atoi(v); return },
	"corrupt-rate":  func(c *Config, v string) (err error) { c.CorruptRate, err = strconv.ParseFloat(v, 64); return },
	"corrupt-every": func(c *Config, v string) (err error) { c.CorruptEvery, err = strconv.Atoi(v); return },
	"drop-rate":     func(c *Config, v string) (err error) { c.DropRate, err = strconv.ParseFloat(v, 64); return },
	"drop-every":    func(c *Config, v string) (err error) { c.DropEvery, err = strconv.Atoi(v); return },
	"delay":         func(c *Config, v string) (err error) { c.Delay, err = time.ParseDuration(v); return },
	"delay-rate":    func(c *Config, v string) (err error) { c.DelayRate, err = strconv.ParseFloat(v, 64); return },
	"delay-every":   func(c *Config, v string) (err error) { c.DelayEvery, err = strconv.Atoi(v); return },
	"stuck-after":   func(c *Config, v string) (err error) { c.StuckAfter, err = strconv.Atoi(v); return },
	"window-start":  func(c *Config, v string) (err error) { c.WindowStart, err = strconv.Atoi(v); return },
	"window-len":    func(c *Config, v string) (err error) { c.WindowLen, err = strconv.Atoi(v); return },
}

// SpecKeys lists the keys ParseSpec accepts, sorted, for usage text.
func SpecKeys() []string {
	keys := make([]string, 0, len(specKeys))
	for k := range specKeys {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// ParseSpec parses a comma-separated key=value fault specification, the
// command-line surface of the injector, e.g.
//
//	fail-rate=0.3,seed=7
//	delay=2ms,delay-every=5,window-start=100,window-len=400
//	stuck-after=64
//
// An empty spec yields the zero Config (nothing injected).
func ParseSpec(spec string) (Config, error) {
	var cfg Config
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return cfg, nil
	}
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return Config{}, fmt.Errorf("faults: spec field %q is not key=value", field)
		}
		set, known := specKeys[strings.TrimSpace(key)]
		if !known {
			return Config{}, fmt.Errorf("faults: unknown spec key %q (have %s)", key, strings.Join(SpecKeys(), " "))
		}
		if err := set(&cfg, strings.TrimSpace(val)); err != nil {
			return Config{}, fmt.Errorf("faults: spec field %q: %v", field, err)
		}
	}
	if err := cfg.Validate(); err != nil {
		return Config{}, err
	}
	return cfg, nil
}

// MustParseSpec is ParseSpec for tests and fixed demo strings.
func MustParseSpec(spec string) Config {
	cfg, err := ParseSpec(spec)
	if err != nil {
		panic(err)
	}
	return cfg
}
