package faults

import (
	"sync"
	"testing"
)

func TestHookSeesEachFaultOnce(t *testing.T) {
	inj := New(Config{FailEvery: 3, DelayEvery: 2, Delay: 1})
	type fired struct {
		kind string
		op   int64
	}
	var got []fired
	inj.SetHook(func(kind string, op int64) { got = append(got, fired{kind, op}) })
	for i := 0; i < 6; i++ {
		inj.Next()
	}
	want := []fired{{"delay", 2}, {"fail", 3}, {"delay", 4}, {"delay", 6}, {"fail", 6}}
	if len(got) != len(want) {
		t.Fatalf("hook fired %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("hook[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestHookStuckFiresOnce(t *testing.T) {
	inj := New(Config{StuckAfter: 3})
	var stucks int
	inj.SetHook(func(kind string, _ int64) {
		if kind == "stuck" {
			stucks++
		}
	})
	for i := 0; i < 10; i++ {
		inj.Next()
	}
	if stucks != 1 {
		t.Fatalf("stuck hook fired %d times, want 1 (the op that wedges the device)", stucks)
	}
	// Every op past the threshold still gets a stuck plan.
	if s := inj.Snapshot(); s.Stucks != 8 {
		t.Fatalf("Stucks = %d, want 8", s.Stucks)
	}
}

// TestHookRunsOutsideLock guards the documented reentrancy contract: a
// hook may call back into the injector without deadlocking.
func TestHookRunsOutsideLock(t *testing.T) {
	inj := New(Config{FailEvery: 1})
	var ops []int64
	inj.SetHook(func(_ string, _ int64) { ops = append(ops, inj.Ops()) })
	inj.Next()
	inj.Next()
	if len(ops) != 2 || ops[0] != 1 || ops[1] != 2 {
		t.Fatalf("reentrant hook saw ops %v", ops)
	}
}

func TestHookNilSafety(t *testing.T) {
	var inj *Injector
	inj.SetHook(func(string, int64) { t.Fatal("hook on nil injector fired") })
	inj.Next()

	real := New(Config{FailEvery: 1})
	real.SetHook(func(string, int64) { t.Fatal("cleared hook fired") })
	real.SetHook(nil)
	real.Next()
}

func TestHookConcurrentNext(t *testing.T) {
	inj := New(Config{FailEvery: 2})
	var mu sync.Mutex
	fired := 0
	inj.SetHook(func(kind string, _ int64) {
		mu.Lock()
		fired++
		mu.Unlock()
	})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				inj.Next()
			}
		}()
	}
	wg.Wait()
	if fired != 50 {
		t.Fatalf("hook fired %d times for 100 ops at FailEvery=2, want 50", fired)
	}
}
