package faults

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

func TestNilInjectorIsInert(t *testing.T) {
	var inj *Injector
	if p := inj.Next(); p.Active() {
		t.Fatalf("nil injector produced %+v", p)
	}
	payload := []byte("unchanged")
	if got := inj.CorruptBytes(payload); !bytes.Equal(got, []byte("unchanged")) {
		t.Fatalf("nil injector corrupted payload: %q", got)
	}
	if inj.Ops() != 0 || inj.Snapshot() != (Stats{}) {
		t.Fatal("nil injector accumulated state")
	}
}

func TestZeroConfigInjectsNothing(t *testing.T) {
	inj := New(Config{})
	for i := 0; i < 1000; i++ {
		if p := inj.Next(); p.Active() {
			t.Fatalf("op %d: zero config produced %+v", i, p)
		}
	}
	s := inj.Snapshot()
	if s.Ops != 1000 || s.Fails+s.Corrupts+s.Drops+s.Delays+s.Stucks != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestEveryNthIsExact(t *testing.T) {
	inj := New(Config{FailEvery: 3})
	for op := 1; op <= 30; op++ {
		p := inj.Next()
		want := op%3 == 0
		if p.Fail != want {
			t.Fatalf("op %d: fail = %v, want %v", op, p.Fail, want)
		}
	}
	if s := inj.Snapshot(); s.Fails != 10 {
		t.Fatalf("fails = %d, want 10", s.Fails)
	}
}

func TestRateIsDeterministicUnderSeed(t *testing.T) {
	run := func() []Plan {
		inj := New(Config{Seed: 42, FailRate: 0.3, CorruptRate: 0.2, Delay: time.Millisecond, DelayRate: 0.1})
		plans := make([]Plan, 200)
		for i := range plans {
			plans[i] = inj.Next()
		}
		return plans
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d: %+v != %+v under the same seed", i, a[i], b[i])
		}
	}
	// A different seed must produce a different sequence.
	injC := New(Config{Seed: 43, FailRate: 0.3, CorruptRate: 0.2, Delay: time.Millisecond, DelayRate: 0.1})
	same := true
	for i := range a {
		if injC.Next() != a[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 produced identical sequences")
	}
}

func TestFullFailRate(t *testing.T) {
	inj := New(Config{FailRate: 1})
	for i := 0; i < 50; i++ {
		if p := inj.Next(); !p.Fail {
			t.Fatalf("op %d did not fail at rate 1.0", i)
		}
	}
}

func TestWindowConfinesFaults(t *testing.T) {
	inj := New(Config{FailRate: 1, WindowStart: 10, WindowLen: 5})
	for op := 1; op <= 30; op++ {
		p := inj.Next()
		want := op >= 10 && op < 15
		if p.Fail != want {
			t.Fatalf("op %d: fail = %v, want %v", op, p.Fail, want)
		}
	}
}

func TestOpenEndedWindow(t *testing.T) {
	inj := New(Config{FailEvery: 1, WindowStart: 5})
	for op := 1; op <= 20; op++ {
		if p := inj.Next(); p.Fail != (op >= 5) {
			t.Fatalf("op %d: fail = %v", op, p.Fail)
		}
	}
}

func TestStuckAfterLatchesAndIgnoresWindow(t *testing.T) {
	inj := New(Config{StuckAfter: 4, WindowStart: 100})
	for op := 1; op <= 10; op++ {
		p := inj.Next()
		if p.Stuck != (op >= 4) {
			t.Fatalf("op %d: stuck = %v", op, p.Stuck)
		}
		if p.Stuck && (p.Fail || p.Drop || p.Corrupt || p.Delay > 0) {
			t.Fatalf("op %d: stuck plan carries other faults: %+v", op, p)
		}
	}
}

func TestTerminalOutcomesAreExclusive(t *testing.T) {
	inj := New(Config{Seed: 7, FailRate: 0.9, DropRate: 0.9, CorruptRate: 0.9})
	for i := 0; i < 500; i++ {
		p := inj.Next()
		n := 0
		for _, b := range []bool{p.Fail, p.Drop, p.Corrupt} {
			if b {
				n++
			}
		}
		if n > 1 {
			t.Fatalf("op %d: %d terminal outcomes in %+v", i, n, p)
		}
	}
}

func TestDelayComposesWithFailure(t *testing.T) {
	inj := New(Config{Delay: time.Millisecond, DelayEvery: 2, FailEvery: 2})
	p := inj.Next() // op 1: nothing
	if p.Active() {
		t.Fatalf("op 1 = %+v", p)
	}
	p = inj.Next() // op 2: delay and fail together
	if p.Delay != time.Millisecond || !p.Fail {
		t.Fatalf("op 2 = %+v, want delay+fail", p)
	}
}

func TestCorruptBytesAlwaysChangesPayload(t *testing.T) {
	inj := New(Config{Seed: 9})
	for _, size := range []int{1, 2, 63, 64, 4096} {
		orig := bytes.Repeat([]byte{0xAB}, size)
		got := inj.CorruptBytes(append([]byte(nil), orig...))
		if bytes.Equal(orig, got) {
			t.Fatalf("size %d: payload unchanged", size)
		}
		if len(got) != size {
			t.Fatalf("size %d: length changed to %d", size, len(got))
		}
	}
	if got := inj.CorruptBytes(nil); got != nil {
		t.Fatalf("nil payload grew: %v", got)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := []Config{
		{FailRate: -0.1},
		{FailRate: 1.5},
		{CorruptRate: 2},
		{DropRate: -1},
		{DelayRate: 1.01},
		{FailEvery: -1},
		{StuckAfter: -5},
		{WindowLen: -2},
		{Delay: -time.Second},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("New accepted an invalid config")
		}
	}()
	New(Config{FailRate: 2})
}

func TestEnabled(t *testing.T) {
	if (Config{}).Enabled() {
		t.Fatal("zero config enabled")
	}
	if (Config{Delay: time.Second}).Enabled() {
		t.Fatal("delay with no trigger enabled")
	}
	for _, cfg := range []Config{
		{FailRate: 0.1}, {FailEvery: 2}, {CorruptRate: 0.1}, {DropEvery: 3},
		{Delay: time.Millisecond, DelayRate: 0.5}, {StuckAfter: 1},
	} {
		if !cfg.Enabled() {
			t.Errorf("config %+v reported disabled", cfg)
		}
	}
}

func TestParseSpec(t *testing.T) {
	cfg, err := ParseSpec("seed=7, fail-rate=0.25,fail-every=4,corrupt-rate=0.5,drop-every=10,delay=2ms,delay-every=5,stuck-after=100,window-start=10,window-len=50")
	if err != nil {
		t.Fatal(err)
	}
	want := Config{
		Seed: 7, FailRate: 0.25, FailEvery: 4, CorruptRate: 0.5, DropEvery: 10,
		Delay: 2 * time.Millisecond, DelayEvery: 5, StuckAfter: 100,
		WindowStart: 10, WindowLen: 50,
	}
	if cfg != want {
		t.Fatalf("cfg = %+v, want %+v", cfg, want)
	}
	if cfg, err := ParseSpec("  "); err != nil || cfg.Enabled() {
		t.Fatalf("empty spec: %+v, %v", cfg, err)
	}
	for _, bad := range []string{"fail-rate", "bogus=1", "fail-rate=x", "fail-rate=3"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

func TestErrInjectedIdentity(t *testing.T) {
	wrapped := errorsJoin()
	if !errors.Is(wrapped, ErrInjected) {
		t.Fatal("wrapped injected error lost its identity")
	}
}

func errorsJoin() error {
	return &wrapErr{}
}

type wrapErr struct{}

func (*wrapErr) Error() string { return "device: injected" }
func (*wrapErr) Unwrap() error { return ErrInjected }
