package nvme

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
	"time"

	"dlbooster/internal/fpga"
)

func TestPutReadRoundTrip(t *testing.T) {
	d := New(Config{})
	data := []byte("hello nvme world")
	fi, err := d.Put("a.jpg", data)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size != int64(len(data)) || fi.Blocks != 1 || fi.BlockStart != 0 {
		t.Fatalf("fi = %+v", fi)
	}
	got, err := d.Read("a.jpg")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("Read = %q", got)
	}
}

func TestBlockLayout(t *testing.T) {
	d := New(Config{})
	big := make([]byte, BlockSize+1)
	fi1, _ := d.Put("one", big)       // 2 blocks
	fi2, _ := d.Put("two", []byte{1}) // 1 block after it
	if fi1.Blocks != 2 {
		t.Fatalf("fi1.Blocks = %d", fi1.Blocks)
	}
	if fi2.BlockStart != 2 {
		t.Fatalf("fi2.BlockStart = %d", fi2.BlockStart)
	}
	// Empty objects still own a block.
	fi3, _ := d.Put("empty", nil)
	if fi3.Blocks != 1 || fi3.Size != 0 {
		t.Fatalf("fi3 = %+v", fi3)
	}
}

func TestReadAtRanges(t *testing.T) {
	d := New(Config{})
	data := []byte("0123456789")
	_, _ = d.Put("x", data)
	got, err := d.ReadAt("x", 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "3456" {
		t.Fatalf("ReadAt = %q", got)
	}
	for _, bad := range [][2]int64{{-1, 2}, {0, 11}, {9, 2}, {0, -1}} {
		if _, err := d.ReadAt("x", bad[0], bad[1]); err == nil {
			t.Fatalf("range %v accepted", bad)
		}
	}
	if _, err := d.ReadAt("missing", 0, 1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing object: %v", err)
	}
}

func TestDuplicateAndEmptyNames(t *testing.T) {
	d := New(Config{})
	if _, err := d.Put("", []byte{1}); err == nil {
		t.Fatal("empty name accepted")
	}
	_, _ = d.Put("x", []byte{1})
	if _, err := d.Put("x", []byte{2}); err == nil {
		t.Fatal("duplicate accepted")
	}
}

func TestManifestOrderAndStats(t *testing.T) {
	d := New(Config{})
	_, _ = d.Put("b", []byte{1})
	_, _ = d.Put("a", []byte{2})
	m := d.Manifest()
	if len(m) != 2 || m[0].Name != "b" || m[1].Name != "a" {
		t.Fatalf("manifest order = %v", m)
	}
	if d.Len() != 2 {
		t.Fatalf("Len = %d", d.Len())
	}
	names := d.Names()
	if names[0] != "a" || names[1] != "b" {
		t.Fatalf("Names = %v", names)
	}
	_, _ = d.Read("a")
	_, _ = d.Read("b")
	reads, bytesRead, _ := d.Stats()
	if reads != 2 || bytesRead != 2 {
		t.Fatalf("stats = %d reads %d bytes", reads, bytesRead)
	}
}

func TestPacingModel(t *testing.T) {
	// 1 MB at 10 MB/s plus 1 ms latency ≈ 101 ms.
	d := New(Config{ReadBandwidth: 10e6, ReadLatency: time.Millisecond})
	payload := make([]byte, 1<<20)
	_, _ = d.Put("big", payload)
	start := time.Now()
	if _, err := d.Read("big"); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed < 90*time.Millisecond {
		t.Fatalf("paced read took %v, want ≥ ~100ms", elapsed)
	}
	_, _, busy := d.Stats()
	if busy < 100*time.Millisecond {
		t.Fatalf("busy = %v", busy)
	}
}

func TestFetchDataSource(t *testing.T) {
	d := New(Config{})
	_, _ = d.Put("img", []byte("abcdefgh"))
	got, err := d.Fetch(fpga.DataRef{Path: "img"})
	if err != nil || string(got) != "abcdefgh" {
		t.Fatalf("Fetch = %q, %v", got, err)
	}
	got, err = d.Fetch(fpga.DataRef{Path: "img", Offset: 2, Length: 3})
	if err != nil || string(got) != "cde" {
		t.Fatalf("Fetch range = %q, %v", got, err)
	}
	got, err = d.Fetch(fpga.DataRef{Path: "img", Offset: 5})
	if err != nil || string(got) != "fgh" {
		t.Fatalf("Fetch tail = %q, %v", got, err)
	}
	if _, err := d.Fetch(fpga.DataRef{Path: "none"}); err == nil {
		t.Fatal("missing fetch accepted")
	}
}

func TestLoadDir(t *testing.T) {
	dir := t.TempDir()
	sub := filepath.Join(dir, "train")
	if err := os.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(sub, "0.jpg"), []byte("one"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "top.jpg"), []byte("two"), 0o644); err != nil {
		t.Fatal(err)
	}
	d := New(Config{})
	n, err := d.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("loaded %d files", n)
	}
	got, err := d.Read("train/0.jpg")
	if err != nil || string(got) != "one" {
		t.Fatalf("Read = %q, %v", got, err)
	}
}

// TestPutReadProperty: any byte content round-trips through the block
// store, and manifest sizes stay exact.
func TestPutReadProperty(t *testing.T) {
	d := New(Config{})
	i := 0
	f := func(data []byte) bool {
		i++
		name := string(rune('a'+i%26)) + string(rune('0'+i/26%10)) + string(rune('0'+i%10)) + string(rune('0'+(i/100)%10))
		fi, err := d.Put(name, data)
		if err != nil {
			return false
		}
		if fi.Size != int64(len(data)) {
			return false
		}
		got, err := d.Read(name)
		if err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
