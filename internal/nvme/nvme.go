// Package nvme simulates the testbed's Intel Optane 900p NVMe disk: a
// block device holding the training corpus, with a manifest that maps
// each object to block extents — the "metadata (blocks description) of
// files" that DLBooster's DataCollector translates into FPGA decode
// commands (Table 1, load_from_disk) — and an optional rate/latency model
// for realistic pacing.
//
// The store is backed by one contiguous in-memory block array, because
// what the pipeline needs from the disk is (a) block-addressed reads, (b)
// a bounded read bandwidth, and (c) a manifest; the paper's disk is never
// a correctness dependency.
package nvme

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"dlbooster/internal/faults"
	"dlbooster/internal/fpga"
)

// BlockSize is the device's logical block size.
const BlockSize = 4096

// ErrNotFound reports a read of an object absent from the manifest.
var ErrNotFound = errors.New("nvme: object not found")

// FileInfo is one manifest entry: where an object's bytes live on the
// device.
type FileInfo struct {
	Name       string
	Size       int64
	BlockStart int64 // first block
	Blocks     int64 // contiguous block count
}

// Config sets the timing model. Zero values disable pacing (tests);
// the Optane-class constants live in internal/perf (NVMeRead*/NVMeWrite*).
type Config struct {
	ReadBandwidth float64       // bytes/s; 0 = unpaced
	ReadLatency   time.Duration // per-request; 0 = none
	// WriteBandwidth/WriteLatency pace Put the way the read knobs pace
	// ReadAt — the cost model the tiered ReplayCache's spill writes ride
	// (docs/CACHE.md sizing example). 0 = unpaced.
	WriteBandwidth float64
	WriteLatency   time.Duration
	// Inject hooks a fault injector into the read path (nil = no
	// faults): Fail (and Drop, which for a disk is the same thing)
	// fails the read with ErrInjected, Corrupt flips bytes in the
	// returned copy (a media error the checksum-less read misses), and
	// Delay models a stalled request. Stuck is ignored — a hung disk is
	// modelled by a large Delay.
	Inject *faults.Injector
}

// Device is a simulated NVMe disk.
type Device struct {
	cfg Config

	mu       sync.Mutex
	blocks   []byte
	manifest map[string]FileInfo
	order    []string // insertion order for deterministic iteration
	free     []extent // deleted block ranges, reusable by Put

	reads        int64
	bytesRead    int64
	writes       int64
	bytesWritten int64
	busy         time.Duration
	readFaults   int64
}

// extent is one contiguous run of free blocks left behind by Delete.
type extent struct {
	start, blocks int64
}

// New creates an empty device.
func New(cfg Config) *Device {
	return &Device{cfg: cfg, manifest: make(map[string]FileInfo)}
}

// Put stores an object — into the first free extent that fits (block
// ranges reclaimed by Delete), else appended at the next block boundary —
// and returns its manifest entry. Writes are paced by the
// WriteBandwidth/WriteLatency model the way reads are by ReadAt.
func (d *Device) Put(name string, data []byte) (FileInfo, error) {
	if name == "" {
		return FileInfo{}, errors.New("nvme: empty object name")
	}
	d.mu.Lock()
	if _, dup := d.manifest[name]; dup {
		d.mu.Unlock()
		return FileInfo{}, fmt.Errorf("nvme: object %q already stored", name)
	}
	nblocks := int64((len(data) + BlockSize - 1) / BlockSize)
	if nblocks == 0 {
		nblocks = 1 // empty objects still own a block, like a real FS
	}
	start := d.allocBlocks(nblocks)
	copy(d.blocks[start*BlockSize:(start+nblocks)*BlockSize], data)
	fi := FileInfo{Name: name, Size: int64(len(data)), BlockStart: start, Blocks: nblocks}
	d.manifest[name] = fi
	d.order = append(d.order, name)
	d.writes++
	d.bytesWritten += int64(len(data))
	pause := d.paceWrite(int64(len(data)))
	d.busy += pause
	d.mu.Unlock()
	if pause > 0 {
		time.Sleep(pause)
	}
	return fi, nil
}

// allocBlocks returns the start of an nblocks run: first-fit over the
// free extents Delete left behind, else fresh blocks appended at the end
// of the device. Caller holds mu. A reused extent is zeroed up to the
// allocation so stale bytes of the deleted object never pad a shorter
// successor.
func (d *Device) allocBlocks(nblocks int64) int64 {
	for i, e := range d.free {
		if e.blocks < nblocks {
			continue
		}
		start := e.start
		if e.blocks == nblocks {
			d.free = append(d.free[:i], d.free[i+1:]...)
		} else {
			d.free[i] = extent{start: e.start + nblocks, blocks: e.blocks - nblocks}
		}
		zero := d.blocks[start*BlockSize : (start+nblocks)*BlockSize]
		for j := range zero {
			zero[j] = 0
		}
		return start
	}
	start := int64(len(d.blocks) / BlockSize)
	d.blocks = append(d.blocks, make([]byte, nblocks*BlockSize)...)
	return start
}

// Delete removes an object from the manifest and returns its blocks to
// the free list for Put to reuse — how the tiered ReplayCache's spill
// tier reclaims space when a spilled batch is evicted. Deleting an
// unknown object reports ErrNotFound.
func (d *Device) Delete(name string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	fi, ok := d.manifest[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	delete(d.manifest, name)
	for i, n := range d.order {
		if n == name {
			d.order = append(d.order[:i], d.order[i+1:]...)
			break
		}
	}
	d.free = append(d.free, extent{start: fi.BlockStart, blocks: fi.Blocks})
	return nil
}

// WriteObject stores an object, discarding the manifest entry — the
// write half of the core.SpillStore contract the tiered ReplayCache
// spills through (Read and Delete are the other two thirds).
func (d *Device) WriteObject(name string, data []byte) error {
	_, err := d.Put(name, data)
	return err
}

// LoadDir stores every regular file under dir (recursively), keyed by
// slash-separated path relative to dir.
func (d *Device) LoadDir(dir string) (int, error) {
	n := 0
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(dir, path)
		if err != nil {
			return err
		}
		if _, err := d.Put(filepath.ToSlash(rel), data); err != nil {
			return err
		}
		n++
		return nil
	})
	return n, err
}

// Stat returns the manifest entry for an object.
func (d *Device) Stat(name string) (FileInfo, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	fi, ok := d.manifest[name]
	if !ok {
		return FileInfo{}, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return fi, nil
}

// Manifest returns all entries in insertion order — the file list the
// DataCollector walks each epoch.
func (d *Device) Manifest() []FileInfo {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]FileInfo, 0, len(d.order))
	for _, name := range d.order {
		out = append(out, d.manifest[name])
	}
	return out
}

// Len returns the number of stored objects.
func (d *Device) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.manifest)
}

// ReadAt reads length bytes of an object starting at off, applying the
// pacing model.
func (d *Device) ReadAt(name string, off, length int64) ([]byte, error) {
	plan := d.cfg.Inject.Next()
	if plan.Delay > 0 {
		time.Sleep(plan.Delay)
	}
	if plan.Fail || plan.Drop {
		d.mu.Lock()
		d.readFaults++
		d.mu.Unlock()
		return nil, fmt.Errorf("nvme: read %q: %w", name, faults.ErrInjected)
	}
	d.mu.Lock()
	fi, ok := d.manifest[name]
	if !ok {
		d.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	if off < 0 || length < 0 || off+length > fi.Size {
		d.mu.Unlock()
		return nil, fmt.Errorf("nvme: read [%d,%d) outside %q of %d bytes", off, off+length, name, fi.Size)
	}
	base := fi.BlockStart * BlockSize
	out := make([]byte, length)
	copy(out, d.blocks[base+off:base+off+length])
	d.reads++
	d.bytesRead += length
	pause := d.pace(length)
	d.busy += pause
	d.mu.Unlock()
	if pause > 0 {
		time.Sleep(pause)
	}
	if plan.Corrupt {
		d.cfg.Inject.CorruptBytes(out) // out is already a private copy
	}
	return out, nil
}

// Read reads a whole object.
func (d *Device) Read(name string) ([]byte, error) {
	fi, err := d.Stat(name)
	if err != nil {
		return nil, err
	}
	return d.ReadAt(name, 0, fi.Size)
}

// pace returns the simulated device time for a transfer; caller holds mu.
func (d *Device) pace(length int64) time.Duration {
	var t time.Duration
	if d.cfg.ReadLatency > 0 {
		t += d.cfg.ReadLatency
	}
	if d.cfg.ReadBandwidth > 0 {
		t += time.Duration(float64(length) / d.cfg.ReadBandwidth * float64(time.Second))
	}
	return t
}

// paceWrite returns the simulated device time for a Put; caller holds mu.
func (d *Device) paceWrite(length int64) time.Duration {
	var t time.Duration
	if d.cfg.WriteLatency > 0 {
		t += d.cfg.WriteLatency
	}
	if d.cfg.WriteBandwidth > 0 {
		t += time.Duration(float64(length) / d.cfg.WriteBandwidth * float64(time.Second))
	}
	return t
}

// Stats returns total reads, bytes read and accumulated device busy time.
func (d *Device) Stats() (reads, bytesRead int64, busy time.Duration) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.reads, d.bytesRead, d.busy
}

// WriteStats returns total Puts and bytes written, the spill-tier side
// of the ledger Stats reports for reads.
func (d *Device) WriteStats() (writes, bytesWritten int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.writes, d.bytesWritten
}

// FreeBlocks returns the number of blocks currently on the free list —
// space Delete reclaimed that the next Puts will reuse.
func (d *Device) FreeBlocks() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	var n int64
	for _, e := range d.free {
		n += e.blocks
	}
	return n
}

// ReadFaults returns the number of reads failed by injected faults.
func (d *Device) ReadFaults() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.readFaults
}

// Fetch implements fpga.DataSource: the FPGA DataReader's DMA-from-disk
// path. Length 0 means "the whole object from Offset".
func (d *Device) Fetch(ref fpga.DataRef) ([]byte, error) {
	fi, err := d.Stat(ref.Path)
	if err != nil {
		return nil, err
	}
	length := ref.Length
	if length == 0 {
		length = fi.Size - ref.Offset
	}
	return d.ReadAt(ref.Path, ref.Offset, length)
}

// Names returns the stored object names, sorted, for tests and tools.
func (d *Device) Names() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	names := append([]string(nil), d.order...)
	sort.Strings(names)
	return names
}

var _ fpga.DataSource = (*Device)(nil)
