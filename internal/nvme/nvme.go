// Package nvme simulates the testbed's Intel Optane 900p NVMe disk: a
// block device holding the training corpus, with a manifest that maps
// each object to block extents — the "metadata (blocks description) of
// files" that DLBooster's DataCollector translates into FPGA decode
// commands (Table 1, load_from_disk) — and an optional rate/latency model
// for realistic pacing.
//
// The store is backed by one contiguous in-memory block array, because
// what the pipeline needs from the disk is (a) block-addressed reads, (b)
// a bounded read bandwidth, and (c) a manifest; the paper's disk is never
// a correctness dependency.
package nvme

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"dlbooster/internal/faults"
	"dlbooster/internal/fpga"
)

// BlockSize is the device's logical block size.
const BlockSize = 4096

// ErrNotFound reports a read of an object absent from the manifest.
var ErrNotFound = errors.New("nvme: object not found")

// FileInfo is one manifest entry: where an object's bytes live on the
// device.
type FileInfo struct {
	Name       string
	Size       int64
	BlockStart int64 // first block
	Blocks     int64 // contiguous block count
}

// Config sets the timing model. Zero values disable pacing (tests) —
// DefaultConfig enables the Optane-class model from internal/perf.
type Config struct {
	ReadBandwidth float64       // bytes/s; 0 = unpaced
	ReadLatency   time.Duration // per-request; 0 = none
	// Inject hooks a fault injector into the read path (nil = no
	// faults): Fail (and Drop, which for a disk is the same thing)
	// fails the read with ErrInjected, Corrupt flips bytes in the
	// returned copy (a media error the checksum-less read misses), and
	// Delay models a stalled request. Stuck is ignored — a hung disk is
	// modelled by a large Delay.
	Inject *faults.Injector
}

// Device is a simulated NVMe disk.
type Device struct {
	cfg Config

	mu       sync.Mutex
	blocks   []byte
	manifest map[string]FileInfo
	order    []string // insertion order for deterministic iteration

	reads      int64
	bytesRead  int64
	busy       time.Duration
	readFaults int64
}

// New creates an empty device.
func New(cfg Config) *Device {
	return &Device{cfg: cfg, manifest: make(map[string]FileInfo)}
}

// Put stores an object, appending it at the next block boundary, and
// returns its manifest entry.
func (d *Device) Put(name string, data []byte) (FileInfo, error) {
	if name == "" {
		return FileInfo{}, errors.New("nvme: empty object name")
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, dup := d.manifest[name]; dup {
		return FileInfo{}, fmt.Errorf("nvme: object %q already stored", name)
	}
	nblocks := int64((len(data) + BlockSize - 1) / BlockSize)
	if nblocks == 0 {
		nblocks = 1 // empty objects still own a block, like a real FS
	}
	start := int64(len(d.blocks) / BlockSize)
	padded := make([]byte, nblocks*BlockSize)
	copy(padded, data)
	d.blocks = append(d.blocks, padded...)
	fi := FileInfo{Name: name, Size: int64(len(data)), BlockStart: start, Blocks: nblocks}
	d.manifest[name] = fi
	d.order = append(d.order, name)
	return fi, nil
}

// LoadDir stores every regular file under dir (recursively), keyed by
// slash-separated path relative to dir.
func (d *Device) LoadDir(dir string) (int, error) {
	n := 0
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(dir, path)
		if err != nil {
			return err
		}
		if _, err := d.Put(filepath.ToSlash(rel), data); err != nil {
			return err
		}
		n++
		return nil
	})
	return n, err
}

// Stat returns the manifest entry for an object.
func (d *Device) Stat(name string) (FileInfo, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	fi, ok := d.manifest[name]
	if !ok {
		return FileInfo{}, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return fi, nil
}

// Manifest returns all entries in insertion order — the file list the
// DataCollector walks each epoch.
func (d *Device) Manifest() []FileInfo {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]FileInfo, 0, len(d.order))
	for _, name := range d.order {
		out = append(out, d.manifest[name])
	}
	return out
}

// Len returns the number of stored objects.
func (d *Device) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.manifest)
}

// ReadAt reads length bytes of an object starting at off, applying the
// pacing model.
func (d *Device) ReadAt(name string, off, length int64) ([]byte, error) {
	plan := d.cfg.Inject.Next()
	if plan.Delay > 0 {
		time.Sleep(plan.Delay)
	}
	if plan.Fail || plan.Drop {
		d.mu.Lock()
		d.readFaults++
		d.mu.Unlock()
		return nil, fmt.Errorf("nvme: read %q: %w", name, faults.ErrInjected)
	}
	d.mu.Lock()
	fi, ok := d.manifest[name]
	if !ok {
		d.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	if off < 0 || length < 0 || off+length > fi.Size {
		d.mu.Unlock()
		return nil, fmt.Errorf("nvme: read [%d,%d) outside %q of %d bytes", off, off+length, name, fi.Size)
	}
	base := fi.BlockStart * BlockSize
	out := make([]byte, length)
	copy(out, d.blocks[base+off:base+off+length])
	d.reads++
	d.bytesRead += length
	pause := d.pace(length)
	d.busy += pause
	d.mu.Unlock()
	if pause > 0 {
		time.Sleep(pause)
	}
	if plan.Corrupt {
		d.cfg.Inject.CorruptBytes(out) // out is already a private copy
	}
	return out, nil
}

// Read reads a whole object.
func (d *Device) Read(name string) ([]byte, error) {
	fi, err := d.Stat(name)
	if err != nil {
		return nil, err
	}
	return d.ReadAt(name, 0, fi.Size)
}

// pace returns the simulated device time for a transfer; caller holds mu.
func (d *Device) pace(length int64) time.Duration {
	var t time.Duration
	if d.cfg.ReadLatency > 0 {
		t += d.cfg.ReadLatency
	}
	if d.cfg.ReadBandwidth > 0 {
		t += time.Duration(float64(length) / d.cfg.ReadBandwidth * float64(time.Second))
	}
	return t
}

// Stats returns total reads, bytes read and accumulated device busy time.
func (d *Device) Stats() (reads, bytesRead int64, busy time.Duration) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.reads, d.bytesRead, d.busy
}

// ReadFaults returns the number of reads failed by injected faults.
func (d *Device) ReadFaults() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.readFaults
}

// Fetch implements fpga.DataSource: the FPGA DataReader's DMA-from-disk
// path. Length 0 means "the whole object from Offset".
func (d *Device) Fetch(ref fpga.DataRef) ([]byte, error) {
	fi, err := d.Stat(ref.Path)
	if err != nil {
		return nil, err
	}
	length := ref.Length
	if length == 0 {
		length = fi.Size - ref.Offset
	}
	return d.ReadAt(ref.Path, ref.Offset, length)
}

// Names returns the stored object names, sorted, for tests and tools.
func (d *Device) Names() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	names := append([]string(nil), d.order...)
	sort.Strings(names)
	return names
}

var _ fpga.DataSource = (*Device)(nil)
