// Package experiments regenerates every table and figure of the paper's
// evaluation (§5) as deterministic virtual-time simulations built from
// the calibrated device models in internal/perf and the discrete-event
// kernel in internal/simtime.
//
// Each experiment mirrors the functional pipeline's component graph —
// decode stages, batch buffers, copy engines, GPU engines — but advances
// virtual time instead of executing decode work, which is what lets a
// laptop reproduce the shape of results measured on P100s and an Arria
// 10. The absolute numbers are anchored where the paper gives anchors
// (see internal/perf); the orderings, ratios and saturation points are
// emergent from the queueing model.
package experiments

import (
	"fmt"
	"math"

	"dlbooster/internal/perf"
	"dlbooster/internal/simtime"
)

// TrainBackend names a preprocessing backend in the training experiments.
type TrainBackend string

// The training backends of Figures 2, 5 and 6.
const (
	Ideal      TrainBackend = "ideal"       // synthetic data, no preprocessing
	CPUBased   TrainBackend = "cpu"         // online CPU decode, best-effort cores
	CPUDefault TrainBackend = "cpu-default" // online CPU decode, default thread count
	LMDBStore  TrainBackend = "lmdb"        // offline records from the shared store
	DLBooster  TrainBackend = "dlbooster"   // FPGA-offloaded online decode
)

// TrainSetup is one training configuration.
type TrainSetup struct {
	Model   perf.TrainProfile
	Backend TrainBackend
	GPUs    int
	// CPUThreads sets the decode pool for the CPU backend; 0 picks the
	// smallest pool meeting GPU demand (the paper's "best effort"),
	// capped at the testbed's core budget — the §2.2 scalability limit.
	CPUThreads int
	// FPGAs is the number of decoder boards for DLBooster (default 1;
	// "the bottleneck can be overcome by plugging more FPGA devices").
	FPGAs int
	// Cached serves the epoch from memory (epochs ≥ 2 when the dataset
	// fits, §3.1/Figure 6): decode and store stages drop out, leaving
	// only copy behaviour to distinguish backends.
	Cached bool

	// Ablation knobs (DESIGN.md §5). All default to the paper's design.

	// PerItemCopy forces DLBooster to copy each datum separately and
	// synchronously, like the baselines (§5.2 reason 1 inverted).
	PerItemCopy bool
	// LMDBPrivate gives each GPU its own store (removes the shared-DB
	// contention of §5.2 reason 2).
	LMDBPrivate bool
	// SyncReader disables Algorithm 1's asynchrony: each batch is
	// submitted and waited for, so decode, copy and compute serialise.
	SyncReader bool
}

// TrainResult is one simulated training measurement.
type TrainResult struct {
	Setup      TrainSetup
	Throughput float64 // aggregate images/s
	TotalCores float64
	Breakdown  map[string]float64 // cores by component (Figure 6(d))
	CPUThreads int                // resolved decode pool size
}

// sourcePixels is the size of the *encoded* image the decode stage pays
// for (ILSVRC photos decode at full size before augmentation crops).
func sourcePixels(m perf.TrainProfile) int {
	if m.InputChannels == 1 {
		return m.ImagePixels // MNIST is stored at input size
	}
	return perf.ReferenceImagePixels
}

// chooseCPUThreads returns the smallest pool whose aggregate decode rate
// covers demand with a 5 % margin, capped at the testbed's core budget.
func chooseCPUThreads(demand float64, pixels int) int {
	perCore := 1 / perf.CPUDecodeSeconds(pixels)
	for t := 1; t <= perf.TestbedCPUCores-2; t++ {
		if float64(t)*perCore*perf.CPUThreadEfficiency(t) >= demand*1.05 {
			return t
		}
	}
	return perf.TestbedCPUCores - 2
}

// stage is one service station a batch token visits.
type stage struct {
	server *simtime.Server
	svc    simtime.Time
}

// RunTraining simulates one configuration to steady state and reports
// the paper's two training metrics: throughput and CPU cores.
func RunTraining(s TrainSetup) (TrainResult, error) {
	if s.GPUs < 1 {
		return TrainResult{}, fmt.Errorf("experiments: %d GPUs", s.GPUs)
	}
	if s.Model.IdealRate <= 0 || s.Model.BatchSize <= 0 {
		return TrainResult{}, fmt.Errorf("experiments: invalid model profile %+v", s.Model)
	}
	sim := simtime.New()
	n := s.GPUs
	batch := s.Model.BatchSize
	syncEff := perf.MultiGPUSyncEfficiency(n)
	iterSvc := simtime.FromSeconds(float64(batch) / (s.Model.IdealRate * syncEff))

	srcPix := sourcePixels(s.Model)
	batchBytes := batch * s.Model.ImagePixels * s.Model.InputChannels
	// Copy service: one large block for DLBooster, per-datum pieces for
	// the baselines (§5.2 reason 1).
	copyBatched := simtime.FromSeconds(perf.CopySeconds(batchBytes, 1))
	copyPerItem := simtime.FromSeconds(perf.CopySeconds(batchBytes, batch))

	threads := s.CPUThreads
	demand := float64(n) * s.Model.IdealRate * syncEff
	if threads == 0 {
		threads = chooseCPUThreads(demand, srcPix)
	}
	if s.FPGAs == 0 {
		s.FPGAs = 1
	}
	if s.Backend == CPUDefault {
		threads = perf.DefaultCPUDecodeThreads
	}

	// Build the preprocessing chain and the per-iteration GPU service.
	var chain []stage
	gpuSvc := iterSvc
	switch s.Backend {
	case Ideal:
		// Synthetic data: nothing to prepare, nothing to copy.
	case DLBooster:
		scale := float64(srcPix) / perf.ReferenceImagePixels
		decodeSvc := simtime.FromSeconds(float64(batch) * scale / perf.FPGADecodeRate())
		if s.SyncReader {
			// Ablation: submit-and-wait per batch. Decode, copy and
			// compute serialise on the iteration's critical path.
			if !s.Cached {
				gpuSvc += decodeSvc
			}
			if s.PerItemCopy {
				gpuSvc += copyPerItem
			} else {
				gpuSvc += copyBatched
			}
			break
		}
		if !s.Cached {
			mk := func(unitRate float64) stage {
				return stage{
					server: simtime.NewServer(sim, s.FPGAs),
					svc:    simtime.FromSeconds(float64(batch) * scale / unitRate),
				}
			}
			chain = append(chain,
				mk(perf.FPGAHuffmanRatePerWay*perf.FPGAHuffmanWays),
				mk(perf.FPGAIDCTRate),
				mk(perf.FPGAResizeRatePerWay*perf.FPGAResizeWays),
			)
		}
		if s.PerItemCopy {
			// Ablation: small-piece synchronous copies (§5.2 reason 1).
			gpuSvc += copyPerItem
		} else {
			// The dispatcher overlaps the (single) large-block copy
			// with compute: a pipeline stage, not iteration time.
			chain = append(chain, stage{server: simtime.NewServer(sim, n), svc: copyBatched})
		}
	case CPUBased, CPUDefault:
		if !s.Cached {
			rate := float64(threads) / perf.CPUDecodeSeconds(srcPix) * perf.CPUThreadEfficiency(threads)
			chain = append(chain, stage{
				server: simtime.NewServer(sim, 1),
				svc:    simtime.FromSeconds(float64(batch) / rate),
			})
		}
		// Per-datum copies sit on the iteration's critical path.
		gpuSvc += copyPerItem
	case LMDBStore:
		if !s.Cached {
			recordBytes := s.Model.ImagePixels * s.Model.InputChannels
			if s.LMDBPrivate {
				// Ablation: one store per GPU, no reader contention.
				rate := perf.LMDBRecordRate(1, recordBytes)
				chain = append(chain, stage{
					server: simtime.NewServer(sim, n),
					svc:    simtime.FromSeconds(float64(batch) / rate),
				})
			} else {
				rate := perf.LMDBRecordRate(n, recordBytes)
				chain = append(chain, stage{
					server: simtime.NewServer(sim, 1), // the shared store
					svc:    simtime.FromSeconds(float64(batch) / rate),
				})
			}
		}
		gpuSvc += copyPerItem
	default:
		return TrainResult{}, fmt.Errorf("experiments: unknown backend %q", s.Backend)
	}

	// Closed loop: 4 circulating batch buffers per GPU.
	gpus := simtime.NewServer(sim, n)
	var batchesDone int64
	const (
		warmup  = 2 * simtime.Second
		horizon = 12 * simtime.Second
	)
	var inject func(int)
	inject = func(at int) {
		if at >= len(chain) {
			gpus.Visit(gpuSvc, func() {
				if sim.Now() > warmup {
					batchesDone++
				}
				inject(0)
			})
			return
		}
		st := chain[at]
		st.server.Visit(st.svc, func() { inject(at + 1) })
	}
	for i := 0; i < 4*n; i++ {
		inject(0)
	}
	sim.RunUntil(horizon)

	window := (horizon - warmup).Seconds()
	throughput := float64(batchesDone) * float64(batch) / window

	// CPU cores (Figure 6): engine constants plus backend-specific
	// preprocessing, derived from achieved throughput.
	breakdown := map[string]float64{
		"kernels":   perf.KernelLaunchCores * float64(n),
		"update":    perf.ModelUpdateCores * float64(n),
		"transform": perf.TransformCores * float64(n),
	}
	switch {
	case s.Backend == Ideal:
		breakdown["preprocess"] = 0
	case s.Cached:
		breakdown["preprocess"] = throughput * perf.CacheFeedOverheadSeconds
	case s.Backend == DLBooster:
		breakdown["preprocess"] = throughput * perf.FPGACmdOverheadSeconds
	case s.Backend == LMDBStore:
		breakdown["preprocess"] = perf.LMDBPerGPUReadCores * float64(n)
	default: // CPU decode pools
		breakdown["preprocess"] = throughput * perf.CPUDecodeSeconds(srcPix) / perf.CPUThreadEfficiency(threads)
	}
	total := 0.0
	for _, v := range breakdown {
		total += v
	}
	return TrainResult{
		Setup:      s,
		Throughput: round1(throughput),
		TotalCores: math.Round(total*100) / 100,
		Breakdown:  breakdown,
		CPUThreads: threads,
	}, nil
}

func round1(v float64) float64 { return math.Round(v*10) / 10 }
