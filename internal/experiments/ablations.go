package experiments

import (
	"fmt"

	"dlbooster/internal/fpga"
	"dlbooster/internal/perf"
)

// Ablations for the design choices DESIGN.md §5 calls out. Each one
// switches a single mechanism off (or resizes it) and reruns the
// affected experiment, so the contribution of that mechanism is isolated.

// AblationCopyMode isolates §5.2 reason 1: batched large-block buffers
// vs per-datum copies, on the workload where it matters most (LeNet-5,
// small images, big batches).
func AblationCopyMode() (Figure, error) {
	fig := Figure{
		ID:     "abl-copy",
		Title:  "Ablation: batched large-block copy vs per-datum copies (LeNet-5, cached, 1 GPU)",
		Header: []string{"copy mode", "img/s", "loss vs batched"},
		Notes:  "paper: per-datum copying costs ≈20% on LeNet-5 (§5.2)",
	}
	batched, err := RunTraining(TrainSetup{Model: perf.LeNet5, Backend: DLBooster, GPUs: 1, Cached: true})
	if err != nil {
		return Figure{}, err
	}
	perItem, err := RunTraining(TrainSetup{Model: perf.LeNet5, Backend: DLBooster, GPUs: 1, Cached: true, PerItemCopy: true})
	if err != nil {
		return Figure{}, err
	}
	fig.Rows = [][]string{
		{"batched (DLBooster)", f0(batched.Throughput), "-"},
		{"per-datum (baseline style)", f0(perItem.Throughput), f1((1-perItem.Throughput/batched.Throughput)*100) + "%"},
	}
	return fig, nil
}

// AblationSharedStore isolates §5.2 reason 2: the shared LMDB store's
// reader contention at 2 GPUs (AlexNet, where the paper observes ≈30 %).
func AblationSharedStore() (Figure, error) {
	fig := Figure{
		ID:     "abl-store",
		Title:  "Ablation: shared vs per-GPU LMDB store (AlexNet, 2 GPUs)",
		Header: []string{"store", "img/s"},
		Notes:  "paper: several decoding instances compete for the shared LMDB, ≈30% loss at 2 GPUs",
	}
	shared, err := RunTraining(TrainSetup{Model: perf.AlexNet, Backend: LMDBStore, GPUs: 2})
	if err != nil {
		return Figure{}, err
	}
	private, err := RunTraining(TrainSetup{Model: perf.AlexNet, Backend: LMDBStore, GPUs: 2, LMDBPrivate: true})
	if err != nil {
		return Figure{}, err
	}
	fig.Rows = [][]string{
		{"shared (paper's baseline)", f0(shared.Throughput)},
		{"per-GPU stores", f0(private.Throughput)},
	}
	return fig, nil
}

// AblationAsyncReader isolates Algorithm 1's asynchrony: submit-and-wait
// serialises decode, copy and compute.
func AblationAsyncReader() (Figure, error) {
	fig := Figure{
		ID:     "abl-async",
		Title:  "Ablation: asynchronous FPGAReader vs synchronous submit-and-wait (AlexNet, 2 GPUs)",
		Header: []string{"reader", "img/s", "% of boundary"},
	}
	bound, err := RunTraining(TrainSetup{Model: perf.AlexNet, Backend: Ideal, GPUs: 2})
	if err != nil {
		return Figure{}, err
	}
	async, err := RunTraining(TrainSetup{Model: perf.AlexNet, Backend: DLBooster, GPUs: 2})
	if err != nil {
		return Figure{}, err
	}
	sync, err := RunTraining(TrainSetup{Model: perf.AlexNet, Backend: DLBooster, GPUs: 2, SyncReader: true})
	if err != nil {
		return Figure{}, err
	}
	fig.Rows = [][]string{
		{"asynchronous (Algorithm 1)", f0(async.Throughput), f1(async.Throughput / bound.Throughput * 100)},
		{"synchronous submit-and-wait", f0(sync.Throughput), f1(sync.Throughput / bound.Throughput * 100)},
	}
	return fig, nil
}

// AblationUnitWidths sweeps the Huffman/resizer widths of §3.3's load
// balancing: the knee where widening the Huffman unit stops helping
// because another stage becomes the straggler.
func AblationUnitWidths() (Figure, error) {
	fig := Figure{
		ID:     "abl-units",
		Title:  "Ablation: FPGA stage widths (GoogLeNet inference, batch 32)",
		Header: []string{"huffman ways", "resize ways", "CLBs", "fits fabric", "img/s"},
		Notes:  "paper deploys 4-way Huffman + 2-way resize (§4.1); wider Huffman exceeds the fabric, narrower starves the pipeline",
	}
	for _, hw := range []int{1, 2, 4, 6, 8} {
		for _, rw := range []int{1, 2} {
			cfg := fpga.Config{HuffmanWays: hw, ResizeWays: rw, IDCTWays: 1}
			fits := cfg.CLBUsage() <= fpga.DefaultCLBBudget
			r, err := RunInference(InferSetup{
				Model: perf.GoogLeNet, Backend: InferDLBooster, Batch: 32,
				HuffmanWays: hw, ResizeWays: rw,
			})
			if err != nil {
				return Figure{}, err
			}
			x := f0(r.Throughput)
			if !fits {
				x += " (unrealisable)"
			}
			fig.Rows = append(fig.Rows, []string{
				fmt.Sprint(hw), fmt.Sprint(rw), fmt.Sprint(cfg.CLBUsage()), fmt.Sprint(fits), x,
			})
		}
	}
	return fig, nil
}

// AblationSelectiveOffload isolates §3.1's selective offloading: moving
// augmentation onto the FPGA as well costs CLBs that must come out of
// the Huffman unit, lowering the decode plateau.
func AblationSelectiveOffload() (Figure, error) {
	fig := Figure{
		ID:     "abl-offload",
		Title:  "Ablation: selective offload (decode+resize) vs offloading augmentation too (GoogLeNet, batch 32)",
		Header: []string{"offload", "huffman ways affordable", "img/s"},
		Notes:  "an augmentation unit costs ~10k CLBs, forcing the Huffman unit from 4-way to 2-way on the same fabric",
	}
	selective, err := RunInference(InferSetup{Model: perf.GoogLeNet, Backend: InferDLBooster, Batch: 32})
	if err != nil {
		return Figure{}, err
	}
	// Full offload: 10k CLBs of augmentation leave room for 2-way
	// Huffman (2·5000 + 8000 + 2·3000 + 10000 = 34k ≤ 40k).
	full, err := RunInference(InferSetup{
		Model: perf.GoogLeNet, Backend: InferDLBooster, Batch: 32, HuffmanWays: 2,
	})
	if err != nil {
		return Figure{}, err
	}
	fig.Rows = [][]string{
		{"selective (paper)", fmt.Sprint(perf.FPGAHuffmanWays), f0(selective.Throughput)},
		{"decode+resize+augment", "2", f0(full.Throughput)},
	}
	return fig, nil
}

// Ablations runs every ablation.
func Ablations() ([]Figure, error) {
	runners := []func() (Figure, error){
		AblationCopyMode,
		AblationSharedStore,
		AblationAsyncReader,
		AblationUnitWidths,
		AblationSelectiveOffload,
	}
	out := make([]Figure, 0, len(runners))
	for _, run := range runners {
		f, err := run()
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	return out, nil
}
