package experiments

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"dlbooster/internal/econ"
	"dlbooster/internal/perf"
)

// Figure is one regenerated table/figure: the same rows or series the
// paper plots, as text a harness can print and EXPERIMENTS.md can record.
type Figure struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  string
}

// Render formats the figure as an aligned text table.
func (f Figure) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", f.ID, f.Title)
	widths := make([]int, len(f.Header))
	for i, h := range f.Header {
		widths[i] = len(h)
	}
	for _, r := range f.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(f.Header)
	for _, r := range f.Rows {
		line(r)
	}
	if f.Notes != "" {
		fmt.Fprintf(&b, "-- %s\n", f.Notes)
	}
	return b.String()
}

func f0(v float64) string { return fmt.Sprintf("%.0f", v) }
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

// trainRow runs one training setup and renders throughput + cores.
func trainRow(s TrainSetup) (TrainResult, error) {
	return RunTraining(s)
}

// Figure2 regenerates the motivation experiment: AlexNet on 1–2 GPUs,
// CPU-based vs LMDB vs the synthetic-data upper boundary; (a) throughput
// in the default configuration, (b) CPU cores at maximum performance.
func Figure2() (Figure, error) {
	fig := Figure{
		ID:     "fig2",
		Title:  "AlexNet training: default-config performance and max-performance CPU cost",
		Header: []string{"backend", "gpus", "default img/s", "max img/s", "max cores"},
		Notes:  "paper anchors: CPU-based 2346/4363, LMDB 2446/3200, Ideal 2496/4652 img/s; CPU-based default ≈ 25% of ideal",
	}
	type cfg struct {
		name string
		def  TrainBackend
		max  TrainBackend
	}
	for _, c := range []cfg{
		{"CPU-based", CPUDefault, CPUBased},
		{"LMDB", LMDBStore, LMDBStore},
		{"Ideal", Ideal, Ideal},
	} {
		for _, g := range []int{1, 2} {
			def, err := trainRow(TrainSetup{Model: perf.AlexNet, Backend: c.def, GPUs: g})
			if err != nil {
				return Figure{}, err
			}
			max, err := trainRow(TrainSetup{Model: perf.AlexNet, Backend: c.max, GPUs: g})
			if err != nil {
				return Figure{}, err
			}
			fig.Rows = append(fig.Rows, []string{
				c.name, fmt.Sprint(g), f0(def.Throughput), f0(max.Throughput), f1(max.TotalCores),
			})
		}
	}
	return fig, nil
}

// trainBackendsFor lists the Figure 5/6 backends.
var trainBackends = []struct {
	name string
	be   TrainBackend
}{
	{"CPU-based", CPUBased},
	{"LMDB", LMDBStore},
	{"DLBooster", DLBooster},
}

// figure5For regenerates one panel of Figure 5: training throughput for
// a model across backends and GPU counts (plus the upper boundary).
func figure5For(id string, m perf.TrainProfile) (Figure, error) {
	fig := Figure{
		ID:     id,
		Title:  fmt.Sprintf("%s training throughput, batch %d/GPU", m.Name, m.BatchSize),
		Header: []string{"backend", "1 GPU img/s", "2 GPU img/s", "% of boundary (2 GPU)"},
	}
	bound := map[int]float64{}
	for _, g := range []int{1, 2} {
		r, err := trainRow(TrainSetup{Model: m, Backend: Ideal, GPUs: g, Cached: m.DatasetFitsInMemory})
		if err != nil {
			return Figure{}, err
		}
		bound[g] = r.Throughput
	}
	for _, tb := range trainBackends {
		var xs []float64
		for _, g := range []int{1, 2} {
			r, err := trainRow(TrainSetup{Model: m, Backend: tb.be, GPUs: g, Cached: m.DatasetFitsInMemory})
			if err != nil {
				return Figure{}, err
			}
			xs = append(xs, r.Throughput)
		}
		fig.Rows = append(fig.Rows, []string{
			tb.name, f0(xs[0]), f0(xs[1]), f1(xs[1] / bound[2] * 100),
		})
	}
	fig.Rows = append(fig.Rows, []string{"Upper boundary", f0(bound[1]), f0(bound[2]), "100.0"})
	return fig, nil
}

// Figure5a–c regenerate the three panels of Figure 5.
func Figure5a() (Figure, error) { return figure5For("fig5a", perf.LeNet5) }

// Figure5b regenerates the AlexNet panel.
func Figure5b() (Figure, error) { return figure5For("fig5b", perf.AlexNet) }

// Figure5c regenerates the ResNet-18 panel.
func Figure5c() (Figure, error) { return figure5For("fig5c", perf.ResNet18) }

// Figure6 regenerates the training CPU-cost comparison (panels a–c).
func Figure6() (Figure, error) {
	fig := Figure{
		ID:     "fig6",
		Title:  "Training CPU cost (total cores, all GPUs)",
		Header: []string{"model", "backend", "1 GPU cores", "2 GPU cores"},
		Notes:  "paper anchors: DLBooster ≈1.5/GPU, LMDB ≈2.5/GPU, CPU-based ≈12/GPU (AlexNet) and ≈7/GPU (ResNet-18); LeNet-5 small for all (cached)",
	}
	for _, m := range perf.TrainProfiles {
		for _, tb := range trainBackends {
			var cores []float64
			for _, g := range []int{1, 2} {
				r, err := trainRow(TrainSetup{Model: m, Backend: tb.be, GPUs: g, Cached: m.DatasetFitsInMemory})
				if err != nil {
					return Figure{}, err
				}
				cores = append(cores, r.TotalCores)
			}
			fig.Rows = append(fig.Rows, []string{m.Name, tb.name, f2(cores[0]), f2(cores[1])})
		}
	}
	return fig, nil
}

// Figure6d regenerates the DLBooster CPU-cost breakdown for ResNet-18:
// per-GPU engine components plus the (shared) preprocessing thread, at
// the paper's 2-GPU training rate.
func Figure6d() (Figure, error) {
	r, err := trainRow(TrainSetup{Model: perf.ResNet18, Backend: DLBooster, GPUs: 2})
	if err != nil {
		return Figure{}, err
	}
	fig := Figure{
		ID:     "fig6d",
		Title:  "ResNet-18 + DLBooster: per-component CPU cores (per GPU; preprocessing is the shared FPGAReader/Dispatcher)",
		Header: []string{"component", "cores"},
		Notes:  "paper anchors: 0.3 preprocessing, 0.15 transforming, 0.95 launching kernels, 0.12 updating model; ≤1.5 in all",
	}
	perGPU := map[string]float64{
		"kernels":   r.Breakdown["kernels"] / 2,
		"update":    r.Breakdown["update"] / 2,
		"transform": r.Breakdown["transform"] / 2,
		// The FPGAReader + Dispatcher is a singleton serving both GPUs.
		"preprocess": r.Breakdown["preprocess"],
	}
	var names []string
	for k := range perGPU {
		names = append(names, k)
	}
	sort.Strings(names)
	total := 0.0
	for _, k := range names {
		fig.Rows = append(fig.Rows, []string{k, f2(perGPU[k])})
		total += perGPU[k]
	}
	fig.Rows = append(fig.Rows, []string{"total", f2(total)})
	return fig, nil
}

// inferBackends lists the Figure 7–9 backends.
var inferBackends = []struct {
	name string
	be   InferBackend
}{
	{"CPU-based", InferCPU},
	{"nvJPEG", InferNvJPEG},
	{"DLBooster", InferDLBooster},
}

// batchSweep returns the paper's batch-size axis for a model.
func batchSweep(m perf.InferProfile) []int {
	sweep := []int{1, 2, 4, 8, 16, 32}
	if m.MaxBatch >= 64 {
		sweep = append(sweep, 64)
	}
	return sweep
}

// figure7For regenerates one panel of Figure 7 (throughput vs batch).
func figure7For(id string, m perf.InferProfile) (Figure, error) {
	fig := Figure{
		ID:     id,
		Title:  fmt.Sprintf("%s inference throughput (images/s) vs batch size", m.Name),
		Header: append([]string{"backend"}, intHeaders(batchSweep(m))...),
	}
	for _, ib := range inferBackends {
		row := []string{ib.name}
		for _, b := range batchSweep(m) {
			r, err := RunInference(InferSetup{Model: m, Backend: ib.be, Batch: b})
			if err != nil {
				return Figure{}, err
			}
			row = append(row, f0(r.Throughput))
		}
		fig.Rows = append(fig.Rows, row)
	}
	return fig, nil
}

// figure8For regenerates one panel of Figure 8 (latency vs batch).
func figure8For(id string, m perf.InferProfile) (Figure, error) {
	fig := Figure{
		ID:     id,
		Title:  fmt.Sprintf("%s inference latency (ms, mean at 80%% load) vs batch size", m.Name),
		Header: append([]string{"backend"}, intHeaders(batchSweep(m))...),
		Notes:  "paper anchors at batch 1: ≈1.2 ms DLBooster, ≈1.8 ms nvJPEG, ≈3.4 ms CPU-based",
	}
	for _, ib := range inferBackends {
		row := []string{ib.name}
		for _, b := range batchSweep(m) {
			r, err := RunInference(InferSetup{Model: m, Backend: ib.be, Batch: b})
			if err != nil {
				return Figure{}, err
			}
			row = append(row, fmt.Sprintf("%.2f", r.MeanLatencyMs))
		}
		fig.Rows = append(fig.Rows, row)
	}
	return fig, nil
}

func intHeaders(bs []int) []string {
	out := make([]string, len(bs))
	for i, b := range bs {
		out[i] = fmt.Sprintf("b=%d", b)
	}
	return out
}

// Figure7a–c and Figure8a–c regenerate the per-model panels.
func Figure7a() (Figure, error) { return figure7For("fig7a", perf.GoogLeNet) }

// Figure7b regenerates the VGG-16 panel.
func Figure7b() (Figure, error) { return figure7For("fig7b", perf.VGG16) }

// Figure7c regenerates the ResNet-50 panel.
func Figure7c() (Figure, error) { return figure7For("fig7c", perf.ResNet50) }

// Figure8a regenerates the GoogLeNet latency panel.
func Figure8a() (Figure, error) { return figure8For("fig8a", perf.GoogLeNet) }

// Figure8b regenerates the VGG-16 latency panel.
func Figure8b() (Figure, error) { return figure8For("fig8b", perf.VGG16) }

// Figure8c regenerates the ResNet-50 latency panel.
func Figure8c() (Figure, error) { return figure8For("fig8c", perf.ResNet50) }

// Figure9 regenerates the inference CPU-cost comparison at the paper's
// reference batch sizes (32, 32, 64).
func Figure9() (Figure, error) {
	fig := Figure{
		ID:     "fig9",
		Title:  "Inference CPU cost (cores per GPU) at reference batch size",
		Header: []string{"model", "batch", "CPU-based", "nvJPEG", "DLBooster"},
		Notes:  "paper anchors: 7–14 cores CPU-based, ≈1.5 nvJPEG, ≈0.5 DLBooster",
	}
	for _, m := range perf.InferProfiles {
		b := 32
		if m.MaxBatch >= 64 {
			b = 64
		}
		row := []string{m.Name, fmt.Sprint(b)}
		for _, ib := range inferBackends {
			r, err := RunInference(InferSetup{Model: m, Backend: ib.be, Batch: b})
			if err != nil {
				return Figure{}, err
			}
			row = append(row, f1(r.TotalCores))
		}
		fig.Rows = append(fig.Rows, row)
	}
	return fig, nil
}

// Headline regenerates the abstract's claims: 1.35×–2.4× throughput at
// 1/10 the CPU cores, and −1/3 latency in online inference.
func Headline() (Figure, error) {
	fig := Figure{
		ID:     "headline",
		Title:  "Headline claims (abstract)",
		Header: []string{"claim", "measured", "paper"},
	}
	// Throughput ratios across the inference sweep.
	minRatio, maxRatio := 1e18, 0.0
	for _, m := range perf.InferProfiles {
		for _, b := range batchSweep(m) {
			dlb, err := RunInference(InferSetup{Model: m, Backend: InferDLBooster, Batch: b})
			if err != nil {
				return Figure{}, err
			}
			for _, base := range []InferBackend{InferCPU, InferNvJPEG} {
				r, err := RunInference(InferSetup{Model: m, Backend: base, Batch: b})
				if err != nil {
					return Figure{}, err
				}
				ratio := dlb.Throughput / r.Throughput
				if ratio < minRatio {
					minRatio = ratio
				}
				if ratio > maxRatio {
					maxRatio = ratio
				}
			}
		}
	}
	fig.Rows = append(fig.Rows, []string{
		"inference throughput vs baselines",
		fmt.Sprintf("%.2fx – %.2fx", minRatio, maxRatio),
		"1.35x – 2.4x (abstract; 1.2x–2.4x in §5.3)",
	})
	// CPU-core ratio, training ResNet-18 (live decode).
	dlb, err := trainRow(TrainSetup{Model: perf.ResNet18, Backend: DLBooster, GPUs: 1})
	if err != nil {
		return Figure{}, err
	}
	cpu, err := trainRow(TrainSetup{Model: perf.ResNet18, Backend: CPUBased, GPUs: 1})
	if err != nil {
		return Figure{}, err
	}
	fig.Rows = append(fig.Rows, []string{
		"preprocess cores vs CPU-based (ResNet-18)",
		fmt.Sprintf("%.2f vs %.2f (%.0f%%)", dlb.Breakdown["preprocess"], cpu.Breakdown["preprocess"],
			dlb.Breakdown["preprocess"]/cpu.Breakdown["preprocess"]*100),
		"~1/10 of the CPU cores",
	})
	// Latency reduction at batch 1 (GoogLeNet) vs the better baseline.
	dlbL, err := RunInference(InferSetup{Model: perf.GoogLeNet, Backend: InferDLBooster, Batch: 1})
	if err != nil {
		return Figure{}, err
	}
	nvL, err := RunInference(InferSetup{Model: perf.GoogLeNet, Backend: InferNvJPEG, Batch: 1})
	if err != nil {
		return Figure{}, err
	}
	fig.Rows = append(fig.Rows, []string{
		"online latency vs nvJPEG (batch 1)",
		fmt.Sprintf("%.2f ms vs %.2f ms (-%.0f%%)", dlbL.MeanLatencyMs, nvL.MeanLatencyMs,
			(1-dlbL.MeanLatencyMs/nvL.MeanLatencyMs)*100),
		"reduces latency by 1/3",
	})
	return fig, nil
}

// Econ regenerates the §5.4 economic analysis.
func Econ() (Figure, error) {
	a := econ.Analyze(perf.AlexNet.EpochImages)
	return Figure{
		ID:     "econ",
		Title:  "Economic analysis (§5.4)",
		Header: []string{"quantity", "value", "paper"},
		Rows: [][]string{
			{"cores replaced per FPGA", fmt.Sprint(a.CoresReplaced), "30"},
			{"freed-core resale", fmt.Sprintf("$%.2f/h", a.HourlySavings), ">$1.5/h"},
			{"provider revenue per FPGA", fmt.Sprintf("$%.0f/yr", a.AnnualRevenuePerFPGA), "~$900/core-yr x 30"},
			{"power saved vs CPU decode", fmt.Sprintf("%.0f W", a.PowerSavedWatts), "FPGA 25 W vs CPU 130 W"},
			{"offline prep avoided (ILSVRC12)", fmt.Sprintf("%.1f h", a.OfflinePrepHours), ">2 h"},
		},
	}, nil
}

// FutureWork regenerates §7's two quantifiable directions: raising the
// decode plateau with more FPGA boards (also suggested in §5.3) and
// cutting latency by writing decoded batches directly to GPU memory.
func FutureWork() (Figure, error) {
	fig := Figure{
		ID:     "future",
		Title:  "Future-work directions (§7): more FPGAs, direct-to-GPU DMA (GoogLeNet)",
		Header: []string{"configuration", "img/s (b=32)", "mean ms (b=32)", "mean ms (b=1)"},
	}
	row := func(name string, setup InferSetup) error {
		setup.Model = perf.GoogLeNet
		setup.Backend = InferDLBooster
		setup.Batch = 32
		r32, err := RunInference(setup)
		if err != nil {
			return err
		}
		setup.Batch = 1
		r1, err := RunInference(setup)
		if err != nil {
			return err
		}
		fig.Rows = append(fig.Rows, []string{
			name, f0(r32.Throughput), fmt.Sprintf("%.2f", r32.MeanLatencyMs), fmt.Sprintf("%.2f", r1.MeanLatencyMs),
		})
		return nil
	}
	if err := row("1 FPGA (paper)", InferSetup{}); err != nil {
		return Figure{}, err
	}
	if err := row("2 FPGAs", InferSetup{FPGAs: 2}); err != nil {
		return Figure{}, err
	}
	if err := row("3 FPGAs", InferSetup{FPGAs: 3}); err != nil {
		return Figure{}, err
	}
	if err := row("1 FPGA + GPUDirect", InferSetup{GPUDirect: true}); err != nil {
		return Figure{}, err
	}
	if err := row("2 FPGAs + GPUDirect", InferSetup{FPGAs: 2, GPUDirect: true}); err != nil {
		return Figure{}, err
	}
	return fig, nil
}

// Scalability quantifies §2.2's scalability argument: "the demands on
// CPU cores to fully boost GPUs' performance have already exceeded what
// such servers can offer ... the number of CPU cores limits the
// scalability of the DL workflow when more GPUs are used." AlexNet
// training is swept to 8 GPUs (a DGX-class box): the CPU backend caps
// at the 30-core decode budget while DLBooster follows the boundary
// with ⌈demand/board-rate⌉ FPGA boards.
func Scalability() (Figure, error) {
	fig := Figure{
		ID:     "scale",
		Title:  "Scalability (§2.2): AlexNet training throughput vs GPU count",
		Header: []string{"gpus", "boundary img/s", "CPU-based img/s", "CPU threads", "DLBooster img/s", "FPGAs", "DLB % of boundary"},
		Notes:  "CPU decode capped at the 30-core budget (~5.7k img/s); one FPGA board ≈ 5.6k img/s of decode",
	}
	for _, g := range []int{1, 2, 4, 8} {
		ideal, err := trainRow(TrainSetup{Model: perf.AlexNet, Backend: Ideal, GPUs: g})
		if err != nil {
			return Figure{}, err
		}
		cpu, err := trainRow(TrainSetup{Model: perf.AlexNet, Backend: CPUBased, GPUs: g})
		if err != nil {
			return Figure{}, err
		}
		demand := float64(g) * perf.AlexNet.IdealRate * perf.MultiGPUSyncEfficiency(g)
		boards := int(math.Ceil(demand / perf.FPGADecodeRate()))
		if boards < 1 {
			boards = 1
		}
		dlb, err := trainRow(TrainSetup{Model: perf.AlexNet, Backend: DLBooster, GPUs: g, FPGAs: boards})
		if err != nil {
			return Figure{}, err
		}
		fig.Rows = append(fig.Rows, []string{
			fmt.Sprint(g), f0(ideal.Throughput),
			f0(cpu.Throughput), fmt.Sprint(cpu.CPUThreads),
			f0(dlb.Throughput), fmt.Sprint(boards),
			f1(dlb.Throughput / ideal.Throughput * 100),
		})
	}
	return fig, nil
}

// HybridCache quantifies §3.1's hybrid service: LeNet-5's first epoch
// decodes online, later epochs replay from the in-memory cache (MNIST
// fits); for ILSVRC-scale models every epoch decodes online.
func HybridCache() (Figure, error) {
	fig := Figure{
		ID:     "hybrid",
		Title:  "Hybrid first-epoch cache (§3.1): LeNet-5 epoch 1 (online decode) vs epochs ≥2 (memory replay), 1 GPU",
		Header: []string{"backend", "epoch 1 img/s", "epochs ≥2 img/s"},
		Notes:  "MNIST fits in memory, so all backends converge to copy-limited replay after epoch 1; ILSVRC12 does not fit and keeps paying the decode path (Figure 6 discussion)",
	}
	for _, tb := range trainBackends {
		first, err := trainRow(TrainSetup{Model: perf.LeNet5, Backend: tb.be, GPUs: 1, Cached: false})
		if err != nil {
			return Figure{}, err
		}
		later, err := trainRow(TrainSetup{Model: perf.LeNet5, Backend: tb.be, GPUs: 1, Cached: true})
		if err != nil {
			return Figure{}, err
		}
		fig.Rows = append(fig.Rows, []string{tb.name, f0(first.Throughput), f0(later.Throughput)})
	}
	return fig, nil
}

// All runs every figure in paper order.
func All() ([]Figure, error) {
	runners := []func() (Figure, error){
		Figure2,
		Figure5a, Figure5b, Figure5c,
		Figure6, Figure6d,
		Figure7a, Figure7b, Figure7c,
		Figure8a, Figure8b, Figure8c,
		Figure9,
		Headline,
		Econ,
		FutureWork,
		HybridCache,
		Scalability,
	}
	out := make([]Figure, 0, len(runners))
	for _, run := range runners {
		f, err := run()
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	return out, nil
}
