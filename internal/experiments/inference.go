package experiments

import (
	"fmt"

	"dlbooster/internal/metrics"
	"dlbooster/internal/perf"
	"dlbooster/internal/simtime"
)

// InferBackend names a preprocessing backend in the online-inference
// experiments (§5.3: LMDB-style offline backends cannot help inference,
// so the baselines are CPU-based and nvJPEG).
type InferBackend string

// The inference backends of Figures 7–9.
const (
	InferCPU       InferBackend = "cpu"
	InferNvJPEG    InferBackend = "nvjpeg"
	InferDLBooster InferBackend = "dlbooster"
)

// InferSetup is one online-inference configuration: 5 clients over a
// 40 Gbps fabric sending 500×375 JPEGs to one GPU server (§5.3).
type InferSetup struct {
	Model   perf.InferProfile
	Backend InferBackend
	Batch   int
	// CPUThreads for the CPU backend; 0 picks the smallest pool meeting
	// demand, capped at 14 (the most the paper observes, Figure 9).
	CPUThreads int
	// FPGAs is the number of FPGA decoder boards for DLBooster
	// (default 1; §5.3 suggests plugging more to raise the plateau).
	FPGAs int
	// HuffmanWays / ResizeWays override the decoder's stage widths for
	// the unit-scaling ablation (0 = the paper's 4 and 2).
	HuffmanWays, ResizeWays int
	// GPUDirect makes the FPGA DMA processed batches straight into GPU
	// memory, skipping the host bounce buffer — future-work item (2) of
	// §7 ("directly writing the processed data to GPU devices for lower
	// latency"). DLBooster only.
	GPUDirect bool
}

// InferResult is one simulated inference measurement.
type InferResult struct {
	Setup         InferSetup
	Throughput    float64 // images/s at saturation (Figure 7)
	MeanLatencyMs float64 // receipt→prediction at 80 % load (Figure 8)
	P99LatencyMs  float64
	TotalCores    float64 // host CPU cost (Figure 9)
	Breakdown     map[string]float64
	CPUThreads    int
}

// inferCap is the maximum CPU decode pool for inference; Figure 9's
// CPU-based bars top out around 14 cores.
const inferCap = 14

// RunInference simulates one configuration: a closed-loop saturation run
// for throughput, then an open-loop run at 80 % of that capacity for the
// latency distribution (queueing-free service latency, which is what the
// paper's lightly-loaded latency numbers reflect).
func RunInference(s InferSetup) (InferResult, error) {
	if s.Batch < 1 {
		return InferResult{}, fmt.Errorf("experiments: batch %d", s.Batch)
	}
	if s.Model.MaxRate <= 0 {
		return InferResult{}, fmt.Errorf("experiments: invalid model profile %+v", s.Model)
	}
	if s.FPGAs == 0 {
		s.FPGAs = 1
	}
	threads := s.CPUThreads
	if threads == 0 && s.Backend == InferCPU {
		demand := s.Model.Rate(s.Batch)
		threads = chooseCPUThreads(demand, perf.ReferenceImagePixels)
		if threads > inferCap {
			threads = inferCap
		}
	}

	throughput := runInferencePhase(s, threads, 0, nil)
	lat := &metrics.Histogram{}
	runInferencePhase(s, threads, throughput*0.8, lat)

	breakdown := map[string]float64{}
	switch s.Backend {
	case InferDLBooster:
		breakdown["cmd+dispatch"] = throughput * perf.FPGACmdOverheadSeconds
	case InferNvJPEG:
		breakdown["kernel-launch"] = perf.NvJPEGLaunchCores
		breakdown["serving"] = 0.5
	case InferCPU:
		breakdown["decode"] = throughput * perf.CPUDecodeSeconds(perf.ReferenceImagePixels) / perf.CPUThreadEfficiency(threads)
		breakdown["serving"] = 1.0
	default:
		return InferResult{}, fmt.Errorf("experiments: unknown backend %q", s.Backend)
	}
	total := 0.0
	for _, v := range breakdown {
		total += v
	}
	return InferResult{
		Setup:         s,
		Throughput:    round1(throughput),
		MeanLatencyMs: round3(lat.Mean()),
		P99LatencyMs:  round3(lat.Percentile(99)),
		TotalCores:    round1(total),
		Breakdown:     breakdown,
		CPUThreads:    threads,
	}, nil
}

func round3(v float64) float64 {
	return float64(int(v*1000+0.5)) / 1000
}

// runInferencePhase runs one simulation. arrivalRate 0 means closed-loop
// saturation (throughput phase); otherwise images arrive open-loop at
// that rate and latencies land in lat. It returns achieved images/s.
func runInferencePhase(s InferSetup, threads int, arrivalRate float64, lat *metrics.Histogram) float64 {
	sim := simtime.New()
	b := s.Batch

	// Shared 40 Gbps link (never the bottleneck, but modelled).
	nicSrv := simtime.NewServer(sim, 1)
	nicSvc := simtime.FromSeconds(float64(perf.AvgJPEGBytes*8) / perf.NICBandwidthBits)

	// Per-image preprocessing chain.
	var chain []stage
	switch s.Backend {
	case InferDLBooster:
		hw, rw := s.HuffmanWays, s.ResizeWays
		if hw == 0 {
			hw = perf.FPGAHuffmanWays
		}
		if rw == 0 {
			rw = perf.FPGAResizeWays
		}
		mk := func(unitRate float64) stage {
			return stage{
				server: simtime.NewServer(sim, s.FPGAs),
				svc:    simtime.FromSeconds(1 / unitRate),
			}
		}
		chain = append(chain,
			mk(perf.FPGAHuffmanRatePerWay*float64(hw)),
			mk(perf.FPGAIDCTRate),
			mk(perf.FPGAResizeRatePerWay*float64(rw)),
		)
	case InferCPU:
		// Each image occupies one core for the full decode time; the
		// pool-wide efficiency loss inflates per-image service. This
		// keeps both the aggregate rate (T·300·eff) and the per-image
		// latency (≈3.3 ms) faithful — the CPU backend's Figure 8
		// penalty is exactly this decode latency.
		svc := perf.CPUDecodeSeconds(perf.ReferenceImagePixels) / perf.CPUThreadEfficiency(threads)
		chain = append(chain, stage{server: simtime.NewServer(sim, threads), svc: simtime.FromSeconds(svc)})
	case InferNvJPEG:
		// Raw bytes go straight to the device; decode happens there.
	}

	// Batch-level stages: host→device copy, then the GPU engine.
	copySrv := simtime.NewServer(sim, 1)
	gpuSrv := simtime.NewServer(sim, 1)
	batchPixels := b * s.Model.ImagePixels * s.Model.InputChannels
	var copySvc, gpuSvc simtime.Time
	switch s.Backend {
	case InferDLBooster:
		if s.GPUDirect {
			// The decoder writes into device memory; only a doorbell
			// remains on the host path.
			copySvc = simtime.FromSeconds(perf.PerItemCopyOverheadSeconds)
		} else {
			copySvc = simtime.FromSeconds(perf.CopySeconds(batchPixels, 1))
		}
		gpuSvc = simtime.FromSeconds(s.Model.BatchSeconds(b))
	case InferCPU:
		// The CPU baseline copies each datum synchronously before the
		// launch (§5.2 reason 1): the copies ride the GPU critical path
		// rather than overlapping as a pipeline stage.
		copySvc = 0
		gpuSvc = simtime.FromSeconds(s.Model.BatchSeconds(b) + perf.CopySeconds(batchPixels, b))
	case InferNvJPEG:
		// Raw JPEG bytes cross PCIe; decode and inference serialise on
		// the device's compute resource (the §5.3 contention).
		copySvc = simtime.FromSeconds(perf.CopySeconds(b*perf.AvgJPEGBytes, b))
		gpuSvc = simtime.FromSeconds(
			perf.NvJPEGBatchOverheadSeconds +
				float64(b)/perf.NvJPEGDecodeRate +
				s.Model.BatchSeconds(b))
	}

	const (
		warmup  = 1 * simtime.Second
		horizon = 9 * simtime.Second
	)
	var imagesDone int64
	var pending []simtime.Time // arrival stamps awaiting a full batch
	var arrive func()

	submitBatch := func(stamps []simtime.Time) {
		copySrv.Visit(copySvc, func() {
			gpuSrv.Visit(gpuSvc, func() {
				for _, t0 := range stamps {
					if sim.Now() > warmup {
						imagesDone++
						if lat != nil {
							lat.Add((sim.Now() - t0).Milliseconds())
						}
					}
					if arrivalRate == 0 {
						arrive() // closed loop: recycle the token
					}
				}
			})
		})
	}
	preprocess := func(t0 simtime.Time) {
		var step func(int)
		step = func(at int) {
			if at >= len(chain) {
				pending = append(pending, t0)
				if len(pending) >= b {
					stamps := append([]simtime.Time(nil), pending[:b]...)
					pending = pending[b:]
					submitBatch(stamps)
				}
				return
			}
			st := chain[at]
			st.server.Visit(st.svc, func() { step(at + 1) })
		}
		step(0)
	}
	arrive = func() {
		t0 := sim.Now()
		nicSrv.Visit(nicSvc, func() { preprocess(t0) })
	}

	if arrivalRate == 0 {
		// Saturating closed loop: enough tokens to fill every stage and
		// several batches.
		window := 4*b + 8
		for i := 0; i < window; i++ {
			arrive()
		}
	} else {
		interval := simtime.FromSeconds(1 / arrivalRate)
		var tick func()
		tick = func() {
			arrive()
			if sim.Now()+interval < horizon {
				sim.After(interval, tick)
			}
		}
		sim.At(0, tick)
	}
	sim.RunUntil(horizon)
	return float64(imagesDone) / (horizon - warmup).Seconds()
}
