package experiments

import (
	"reflect"
	"strings"
	"testing"

	"dlbooster/internal/perf"
)

// The experiments suite does not chase the paper's absolute numbers —
// the substrate is a simulator — but every test here pins a *shape* the
// paper reports: who wins, by what factor, where curves saturate.

func train(t *testing.T, s TrainSetup) TrainResult {
	t.Helper()
	r, err := RunTraining(s)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func infer(t *testing.T, s InferSetup) InferResult {
	t.Helper()
	r, err := RunInference(s)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func within(t *testing.T, what string, got, lo, hi float64) {
	t.Helper()
	if got < lo || got > hi {
		t.Fatalf("%s = %.2f, want in [%.2f, %.2f]", what, got, lo, hi)
	}
}

// --- Figure 2 ----------------------------------------------------------

func TestFigure2Anchors(t *testing.T) {
	ideal1 := train(t, TrainSetup{Model: perf.AlexNet, Backend: Ideal, GPUs: 1})
	ideal2 := train(t, TrainSetup{Model: perf.AlexNet, Backend: Ideal, GPUs: 2})
	within(t, "ideal 1GPU", ideal1.Throughput, 2400, 2600) // paper 2496
	within(t, "ideal 2GPU", ideal2.Throughput, 4500, 4800) // paper 4652

	def := train(t, TrainSetup{Model: perf.AlexNet, Backend: CPUDefault, GPUs: 1})
	within(t, "default-config fraction", def.Throughput/ideal1.Throughput, 0.20, 0.30) // paper ~25%

	lmdb1 := train(t, TrainSetup{Model: perf.AlexNet, Backend: LMDBStore, GPUs: 1})
	lmdb2 := train(t, TrainSetup{Model: perf.AlexNet, Backend: LMDBStore, GPUs: 2})
	within(t, "LMDB 1GPU", lmdb1.Throughput, 2300, 2500) // paper 2446
	within(t, "LMDB 2GPU", lmdb2.Throughput, 3100, 3300) // paper 3200
	// The LMDB 2-GPU loss vs ideal is the ~30% contention effect.
	within(t, "LMDB 2GPU loss", 1-lmdb2.Throughput/ideal2.Throughput, 0.25, 0.36)

	cpu1 := train(t, TrainSetup{Model: perf.AlexNet, Backend: CPUBased, GPUs: 1})
	within(t, "CPU 1GPU", cpu1.Throughput, 2250, 2500)  // paper 2346
	within(t, "CPU 1GPU cores", cpu1.TotalCores, 9, 14) // paper ~12
}

// --- Figure 5 ----------------------------------------------------------

func TestFigure5DLBoosterApproachesBoundary(t *testing.T) {
	for _, m := range perf.TrainProfiles {
		for _, g := range []int{1, 2} {
			ideal := train(t, TrainSetup{Model: m, Backend: Ideal, GPUs: g, Cached: m.DatasetFitsInMemory})
			dlb := train(t, TrainSetup{Model: m, Backend: DLBooster, GPUs: g, Cached: m.DatasetFitsInMemory})
			if dlb.Throughput < 0.95*ideal.Throughput {
				t.Fatalf("%s %dGPU: DLBooster %.0f below 95%% of boundary %.0f", m.Name, g, dlb.Throughput, ideal.Throughput)
			}
		}
	}
}

func TestFigure5DLBoosterBeatsBaselines(t *testing.T) {
	for _, m := range perf.TrainProfiles {
		for _, g := range []int{1, 2} {
			dlb := train(t, TrainSetup{Model: m, Backend: DLBooster, GPUs: g, Cached: m.DatasetFitsInMemory})
			for _, be := range []TrainBackend{CPUBased, LMDBStore} {
				base := train(t, TrainSetup{Model: m, Backend: be, GPUs: g, Cached: m.DatasetFitsInMemory})
				if dlb.Throughput < base.Throughput {
					t.Fatalf("%s %dGPU: DLBooster %.0f < %s %.0f", m.Name, g, dlb.Throughput, be, base.Throughput)
				}
			}
		}
	}
}

func TestFigure5LeNetSmallCopyPenalty(t *testing.T) {
	// §5.2: per-datum copies cost LeNet-5 ≈20%.
	ideal := train(t, TrainSetup{Model: perf.LeNet5, Backend: Ideal, GPUs: 1, Cached: true})
	lmdb := train(t, TrainSetup{Model: perf.LeNet5, Backend: LMDBStore, GPUs: 1, Cached: true})
	within(t, "LeNet LMDB copy penalty", 1-lmdb.Throughput/ideal.Throughput, 0.10, 0.28)
}

// --- Figure 6 ----------------------------------------------------------

func TestFigure6CoreAnchors(t *testing.T) {
	// DLBooster ≈1.5 cores/GPU on the live-decode models.
	for _, m := range []perf.TrainProfile{perf.AlexNet, perf.ResNet18} {
		for _, g := range []int{1, 2} {
			r := train(t, TrainSetup{Model: m, Backend: DLBooster, GPUs: g})
			within(t, m.Name+" DLBooster cores/GPU", r.TotalCores/float64(g), 1.2, 1.7)
		}
	}
	// LMDB ≈2.5 cores/GPU.
	for _, m := range []perf.TrainProfile{perf.AlexNet, perf.ResNet18} {
		r := train(t, TrainSetup{Model: m, Backend: LMDBStore, GPUs: 2})
		within(t, m.Name+" LMDB cores/GPU", r.TotalCores/2, 1.9, 3.0)
	}
	// CPU-based: ≈12/GPU AlexNet, ≈7/GPU ResNet-18.
	alex := train(t, TrainSetup{Model: perf.AlexNet, Backend: CPUBased, GPUs: 2})
	within(t, "AlexNet CPU cores/GPU", alex.TotalCores/2, 9, 14)
	res := train(t, TrainSetup{Model: perf.ResNet18, Backend: CPUBased, GPUs: 2})
	within(t, "ResNet-18 CPU cores/GPU", res.TotalCores/2, 5.5, 8.5)
	// LeNet-5 (cached) is cheap for every backend.
	for _, be := range []TrainBackend{CPUBased, LMDBStore, DLBooster} {
		r := train(t, TrainSetup{Model: perf.LeNet5, Backend: be, GPUs: 1, Cached: true})
		if r.TotalCores > 2 {
			t.Fatalf("LeNet %s cores = %.2f, want small (cached)", be, r.TotalCores)
		}
	}
}

func TestFigure6dBreakdown(t *testing.T) {
	r := train(t, TrainSetup{Model: perf.ResNet18, Backend: DLBooster, GPUs: 1})
	within(t, "kernels", r.Breakdown["kernels"], 0.94, 0.96)      // paper 0.95
	within(t, "update", r.Breakdown["update"], 0.11, 0.13)        // paper 0.12
	within(t, "transform", r.Breakdown["transform"], 0.14, 0.16)  // paper 0.15
	within(t, "preprocess", r.Breakdown["preprocess"], 0.1, 0.45) // paper 0.3
	within(t, "total", r.TotalCores, 1.2, 1.6)                    // paper ≤1.5
}

// --- Figure 7 ----------------------------------------------------------

func TestFigure7ThroughputShapes(t *testing.T) {
	for _, m := range perf.InferProfiles {
		for _, ib := range []InferBackend{InferCPU, InferNvJPEG, InferDLBooster} {
			prev := 0.0
			for _, b := range batchSweep(m) {
				r := infer(t, InferSetup{Model: m, Backend: ib, Batch: b})
				if r.Throughput < prev*0.98 {
					t.Fatalf("%s/%s: throughput decreased at batch %d (%.0f after %.0f)", m.Name, ib, b, r.Throughput, prev)
				}
				prev = r.Throughput
			}
		}
	}
}

func TestFigure7DLBoosterWins(t *testing.T) {
	for _, m := range perf.InferProfiles {
		for _, b := range batchSweep(m) {
			dlb := infer(t, InferSetup{Model: m, Backend: InferDLBooster, Batch: b})
			for _, ib := range []InferBackend{InferCPU, InferNvJPEG} {
				base := infer(t, InferSetup{Model: m, Backend: ib, Batch: b})
				if dlb.Throughput < base.Throughput*0.999 {
					t.Fatalf("%s b=%d: DLBooster %.0f < %s %.0f", m.Name, b, dlb.Throughput, ib, base.Throughput)
				}
			}
		}
	}
}

func TestFigure7GoogLeNetPlateau(t *testing.T) {
	// DLBooster approaches its FPGA bound at batch ≥ 16 (§5.3: "when the
	// batch size is greater than 16 ... DLBooster approaches its
	// performance bound").
	b16 := infer(t, InferSetup{Model: perf.GoogLeNet, Backend: InferDLBooster, Batch: 16})
	b32 := infer(t, InferSetup{Model: perf.GoogLeNet, Backend: InferDLBooster, Batch: 32})
	within(t, "plateau b=32", b32.Throughput, 5200, perf.FPGADecodeRate())
	if gain := b32.Throughput / b16.Throughput; gain > 1.25 {
		t.Fatalf("no plateau: b16→b32 still gains %.2fx", gain)
	}
	// Plugging a second FPGA lifts the plateau (§5.3's remedy).
	two := infer(t, InferSetup{Model: perf.GoogLeNet, Backend: InferDLBooster, Batch: 32, FPGAs: 2})
	if two.Throughput <= b32.Throughput*1.02 {
		t.Fatalf("second FPGA did not lift the plateau: %.0f vs %.0f", two.Throughput, b32.Throughput)
	}
}

func TestFigure7NvJPEGContention(t *testing.T) {
	// §5.3: nvJPEG loses ≈40% at large batch from GPU competition.
	dlb := infer(t, InferSetup{Model: perf.GoogLeNet, Backend: InferDLBooster, Batch: 32})
	nv := infer(t, InferSetup{Model: perf.GoogLeNet, Backend: InferNvJPEG, Batch: 32})
	within(t, "nvJPEG degradation", 1-nv.Throughput/dlb.Throughput, 0.25, 0.55)
}

// --- Figure 8 ----------------------------------------------------------

func TestFigure8Batch1LatencyOrdering(t *testing.T) {
	// Paper: ≈1.2 ms DLBooster < ≈1.8 ms nvJPEG < ≈3.4 ms CPU-based.
	for _, m := range perf.InferProfiles {
		dlb := infer(t, InferSetup{Model: m, Backend: InferDLBooster, Batch: 1})
		nv := infer(t, InferSetup{Model: m, Backend: InferNvJPEG, Batch: 1})
		cpu := infer(t, InferSetup{Model: m, Backend: InferCPU, Batch: 1})
		if !(dlb.MeanLatencyMs < nv.MeanLatencyMs && nv.MeanLatencyMs < cpu.MeanLatencyMs) {
			t.Fatalf("%s: latency ordering broken: dlb=%.2f nv=%.2f cpu=%.2f",
				m.Name, dlb.MeanLatencyMs, nv.MeanLatencyMs, cpu.MeanLatencyMs)
		}
	}
	g := infer(t, InferSetup{Model: perf.GoogLeNet, Backend: InferDLBooster, Batch: 1})
	within(t, "GoogLeNet DLB batch-1 latency", g.MeanLatencyMs, 0.8, 1.6) // paper 1.2
}

func TestFigure8LatencyGrowsWithBatch(t *testing.T) {
	for _, ib := range []InferBackend{InferCPU, InferNvJPEG, InferDLBooster} {
		prev := 0.0
		for _, b := range []int{1, 4, 16, 32} {
			r := infer(t, InferSetup{Model: perf.VGG16, Backend: ib, Batch: b})
			if r.MeanLatencyMs < prev {
				t.Fatalf("%s: latency fell at batch %d", ib, b)
			}
			prev = r.MeanLatencyMs
		}
	}
}

// --- Figure 9 ----------------------------------------------------------

func TestFigure9InferenceCores(t *testing.T) {
	for _, m := range perf.InferProfiles {
		b := 32
		if m.MaxBatch >= 64 {
			b = 64
		}
		cpu := infer(t, InferSetup{Model: m, Backend: InferCPU, Batch: b})
		within(t, m.Name+" CPU cores", cpu.TotalCores, 6.5, 15.5) // paper 7–14
		nv := infer(t, InferSetup{Model: m, Backend: InferNvJPEG, Batch: b})
		within(t, m.Name+" nvJPEG cores", nv.TotalCores, 1.2, 2.0) // paper ~1.5
		dlb := infer(t, InferSetup{Model: m, Backend: InferDLBooster, Batch: b})
		within(t, m.Name+" DLBooster cores", dlb.TotalCores, 0.05, 0.8) // paper ~0.5
	}
}

// --- Headline ----------------------------------------------------------

func TestHeadlineRatios(t *testing.T) {
	fig, err := Headline()
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Rows) != 3 {
		t.Fatalf("rows = %d", len(fig.Rows))
	}
	// Recompute the extremes directly for assertion.
	minR, maxR := 1e18, 0.0
	for _, m := range perf.InferProfiles {
		for _, b := range batchSweep(m) {
			dlb := infer(t, InferSetup{Model: m, Backend: InferDLBooster, Batch: b})
			for _, ib := range []InferBackend{InferCPU, InferNvJPEG} {
				base := infer(t, InferSetup{Model: m, Backend: ib, Batch: b})
				r := dlb.Throughput / base.Throughput
				if r < minR {
					minR = r
				}
				if r > maxR {
					maxR = r
				}
			}
		}
	}
	if minR < 1.0 {
		t.Fatalf("DLBooster loses somewhere: min ratio %.2f", minR)
	}
	within(t, "max throughput ratio", maxR, 1.8, 2.9) // paper up to 2.4x
}

// --- Ablations ---------------------------------------------------------

func TestAblationCopyMode(t *testing.T) {
	fig, err := AblationCopyMode()
	if err != nil {
		t.Fatal(err)
	}
	batched := train(t, TrainSetup{Model: perf.LeNet5, Backend: DLBooster, GPUs: 1, Cached: true})
	perItem := train(t, TrainSetup{Model: perf.LeNet5, Backend: DLBooster, GPUs: 1, Cached: true, PerItemCopy: true})
	within(t, "per-item copy loss", 1-perItem.Throughput/batched.Throughput, 0.10, 0.28) // paper ~20%
	if len(fig.Rows) != 2 {
		t.Fatalf("figure rows = %d", len(fig.Rows))
	}
}

func TestAblationSharedStore(t *testing.T) {
	shared := train(t, TrainSetup{Model: perf.AlexNet, Backend: LMDBStore, GPUs: 2})
	private := train(t, TrainSetup{Model: perf.AlexNet, Backend: LMDBStore, GPUs: 2, LMDBPrivate: true})
	if private.Throughput <= shared.Throughput*1.1 {
		t.Fatalf("removing contention gained too little: %.0f vs %.0f", private.Throughput, shared.Throughput)
	}
}

func TestAblationAsyncReader(t *testing.T) {
	async := train(t, TrainSetup{Model: perf.AlexNet, Backend: DLBooster, GPUs: 2})
	sync := train(t, TrainSetup{Model: perf.AlexNet, Backend: DLBooster, GPUs: 2, SyncReader: true})
	if sync.Throughput >= async.Throughput*0.95 {
		t.Fatalf("synchronous reader should cost real throughput: %.0f vs %.0f", sync.Throughput, async.Throughput)
	}
}

func TestAblationUnitWidths(t *testing.T) {
	// Throughput must rise with Huffman width and saturate once another
	// stage (or the GPU) binds.
	var prev float64
	for _, hw := range []int{1, 2, 4} {
		r := infer(t, InferSetup{Model: perf.GoogLeNet, Backend: InferDLBooster, Batch: 32, HuffmanWays: hw, ResizeWays: 2})
		if r.Throughput < prev {
			t.Fatalf("throughput fell at %d-way Huffman", hw)
		}
		prev = r.Throughput
	}
	r8 := infer(t, InferSetup{Model: perf.GoogLeNet, Backend: InferDLBooster, Batch: 32, HuffmanWays: 8, ResizeWays: 2})
	if r8.Throughput > prev*1.25 {
		t.Fatalf("8-way Huffman gained %.2fx over 4-way: no saturation", r8.Throughput/prev)
	}
}

func TestAblationSelectiveOffload(t *testing.T) {
	sel := infer(t, InferSetup{Model: perf.GoogLeNet, Backend: InferDLBooster, Batch: 32})
	full := infer(t, InferSetup{Model: perf.GoogLeNet, Backend: InferDLBooster, Batch: 32, HuffmanWays: 2})
	if full.Throughput >= sel.Throughput {
		t.Fatalf("full offload should lose: %.0f vs %.0f", full.Throughput, sel.Throughput)
	}
}

func TestFutureWorkDirections(t *testing.T) {
	// More FPGAs lift the batch-32 plateau.
	one := infer(t, InferSetup{Model: perf.GoogLeNet, Backend: InferDLBooster, Batch: 32})
	two := infer(t, InferSetup{Model: perf.GoogLeNet, Backend: InferDLBooster, Batch: 32, FPGAs: 2})
	if two.Throughput <= one.Throughput {
		t.Fatalf("2 FPGAs: %.0f <= %.0f", two.Throughput, one.Throughput)
	}
	// GPUDirect trims latency without hurting throughput.
	direct := infer(t, InferSetup{Model: perf.GoogLeNet, Backend: InferDLBooster, Batch: 32, GPUDirect: true})
	if direct.MeanLatencyMs >= one.MeanLatencyMs {
		t.Fatalf("GPUDirect latency %.2f >= %.2f", direct.MeanLatencyMs, one.MeanLatencyMs)
	}
	if direct.Throughput < one.Throughput*0.99 {
		t.Fatalf("GPUDirect lost throughput: %.0f vs %.0f", direct.Throughput, one.Throughput)
	}
	fig, err := FutureWork()
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Rows) != 5 {
		t.Fatalf("future-work rows = %d", len(fig.Rows))
	}
}

func TestScalabilityShape(t *testing.T) {
	// §2.2: the CPU backend must fall progressively behind the boundary
	// as GPUs are added (core budget), while DLBooster with enough
	// boards stays ≥95%.
	prevFrac := 2.0
	for _, g := range []int{2, 4, 8} {
		ideal := train(t, TrainSetup{Model: perf.AlexNet, Backend: Ideal, GPUs: g})
		cpu := train(t, TrainSetup{Model: perf.AlexNet, Backend: CPUBased, GPUs: g})
		frac := cpu.Throughput / ideal.Throughput
		if frac >= prevFrac+0.01 {
			t.Fatalf("CPU fraction rose at %d GPUs: %.2f after %.2f", g, frac, prevFrac)
		}
		prevFrac = frac
		boards := 1 + (g-1)/2 // demand/5.6k rounded up ≈ this sweep
		dlb := train(t, TrainSetup{Model: perf.AlexNet, Backend: DLBooster, GPUs: g, FPGAs: boards + 1})
		if dlb.Throughput < 0.95*ideal.Throughput {
			t.Fatalf("%d GPUs: DLBooster %.0f below 95%% of %.0f", g, dlb.Throughput, ideal.Throughput)
		}
	}
	// At 8 GPUs the CPU backend must be badly core-bound (paper: each
	// GPU can use at most ~3 cores on a DGX-2).
	ideal8 := train(t, TrainSetup{Model: perf.AlexNet, Backend: Ideal, GPUs: 8})
	cpu8 := train(t, TrainSetup{Model: perf.AlexNet, Backend: CPUBased, GPUs: 8})
	if cpu8.Throughput > 0.5*ideal8.Throughput {
		t.Fatalf("8-GPU CPU backend too fast: %.0f vs boundary %.0f", cpu8.Throughput, ideal8.Throughput)
	}
	fig, err := Scalability()
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Rows) != 4 {
		t.Fatalf("rows = %d", len(fig.Rows))
	}
}

func TestHybridCacheFigure(t *testing.T) {
	// Epochs ≥2 must be at least as fast as epoch 1 for every backend,
	// and DLBooster's epoch 1 must already be near the boundary (the
	// FPGA covers MNIST decode easily).
	for _, be := range []TrainBackend{CPUBased, LMDBStore, DLBooster} {
		first := train(t, TrainSetup{Model: perf.LeNet5, Backend: be, GPUs: 1, Cached: false})
		later := train(t, TrainSetup{Model: perf.LeNet5, Backend: be, GPUs: 1, Cached: true})
		if later.Throughput < first.Throughput*0.999 {
			t.Fatalf("%s: cached epoch slower: %.0f vs %.0f", be, later.Throughput, first.Throughput)
		}
	}
	fig, err := HybridCache()
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Rows) != 3 {
		t.Fatalf("rows = %d", len(fig.Rows))
	}
}

// --- Infrastructure ----------------------------------------------------

func TestDeterminism(t *testing.T) {
	a := train(t, TrainSetup{Model: perf.AlexNet, Backend: LMDBStore, GPUs: 2})
	b := train(t, TrainSetup{Model: perf.AlexNet, Backend: LMDBStore, GPUs: 2})
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("training sim not deterministic: %+v vs %+v", a, b)
	}
	x := infer(t, InferSetup{Model: perf.ResNet50, Backend: InferNvJPEG, Batch: 16})
	y := infer(t, InferSetup{Model: perf.ResNet50, Backend: InferNvJPEG, Batch: 16})
	if !reflect.DeepEqual(x, y) {
		t.Fatalf("inference sim not deterministic")
	}
}

func TestValidation(t *testing.T) {
	if _, err := RunTraining(TrainSetup{Model: perf.AlexNet, Backend: CPUBased, GPUs: 0}); err == nil {
		t.Fatal("0 GPUs accepted")
	}
	if _, err := RunTraining(TrainSetup{Model: perf.TrainProfile{}, Backend: CPUBased, GPUs: 1}); err == nil {
		t.Fatal("zero profile accepted")
	}
	if _, err := RunTraining(TrainSetup{Model: perf.AlexNet, Backend: "bogus", GPUs: 1}); err == nil {
		t.Fatal("bogus backend accepted")
	}
	if _, err := RunInference(InferSetup{Model: perf.GoogLeNet, Backend: InferCPU, Batch: 0}); err == nil {
		t.Fatal("batch 0 accepted")
	}
	if _, err := RunInference(InferSetup{Model: perf.InferProfile{}, Backend: InferCPU, Batch: 1}); err == nil {
		t.Fatal("zero profile accepted")
	}
	if _, err := RunInference(InferSetup{Model: perf.GoogLeNet, Backend: "bogus", Batch: 1}); err == nil {
		t.Fatal("bogus backend accepted")
	}
}

func TestAllFiguresRunAndRender(t *testing.T) {
	figs, err := All()
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 18 {
		t.Fatalf("figures = %d, want 18", len(figs))
	}
	ids := map[string]bool{}
	for _, f := range figs {
		if ids[f.ID] {
			t.Fatalf("duplicate figure id %s", f.ID)
		}
		ids[f.ID] = true
		out := f.Render()
		if !strings.Contains(out, f.ID) || len(f.Rows) == 0 {
			t.Fatalf("figure %s renders badly:\n%s", f.ID, out)
		}
	}
	abls, err := Ablations()
	if err != nil {
		t.Fatal(err)
	}
	if len(abls) != 5 {
		t.Fatalf("ablations = %d", len(abls))
	}
}
