package audio

import (
	"fmt"

	"dlbooster/internal/fpga"
	"dlbooster/internal/pix"
)

// SpeechMirror is the pluggable FPGA decoder image for speech workloads
// (§3.1): WAV parsing in the parser stage, framing + per-frame DCT in
// the heavy compute stage (where the JPEG mirror runs Huffman decoding),
// and log-magnitude image formation in the reconstruction stage. The
// device's resizer then scales the spectrogram to the model's input
// geometry exactly as it scales photos.
type SpeechMirror struct {
	Params SpectrogramParams
}

// Name implements fpga.Mirror.
func (SpeechMirror) Name() string { return "speech" }

// Parse implements fpga.Mirror: WAV header + PCM extraction.
func (m SpeechMirror) Parse(data []byte) (any, error) {
	return DecodeWAV(data)
}

// EntropyDecode implements fpga.Mirror: the compute-heavy stage.
func (m SpeechMirror) EntropyDecode(job any) (any, error) {
	clip, ok := job.(*Clip)
	if !ok {
		return nil, fmt.Errorf("audio: speech mirror got %T", job)
	}
	return ExtractFrames(clip, m.Params)
}

// Reconstruct implements fpga.Mirror: spectrogram image formation.
func (m SpeechMirror) Reconstruct(job any) (*pix.Image, error) {
	frames, ok := job.(*Frames)
	if !ok {
		return nil, fmt.Errorf("audio: speech mirror got %T", job)
	}
	return frames.ToImage(), nil
}

func init() {
	fpga.RegisterMirror(SpeechMirror{Params: DefaultSpectrogramParams()})
}

var _ fpga.Mirror = SpeechMirror{}
