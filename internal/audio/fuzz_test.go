package audio

import "testing"

// FuzzDecodeWAV: the WAV parser must never panic and must only produce
// clips with consistent geometry.
func FuzzDecodeWAV(f *testing.F) {
	if wav, err := EncodeWAV(Synth(1, 16000, 2000)); err == nil {
		f.Add(wav)
	}
	f.Add([]byte("RIFF\x00\x00\x00\x00WAVE"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		clip, err := DecodeWAV(data)
		if err == nil && clip != nil {
			if clip.SampleRate <= 0 {
				t.Fatalf("accepted clip with rate %d", clip.SampleRate)
			}
			// And the spectrogram path must be safe on whatever parsed.
			_, _ = ExtractFrames(clip, DefaultSpectrogramParams())
		}
	})
}
