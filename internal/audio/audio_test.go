package audio

import (
	"math"
	"testing"
	"testing/quick"

	"dlbooster/internal/fpga"
	"dlbooster/internal/hugepage"
)

func TestWAVRoundTrip(t *testing.T) {
	clip := Synth(7, 16000, 4000)
	data, err := EncodeWAV(clip)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeWAV(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.SampleRate != 16000 || len(back.Samples) != 4000 {
		t.Fatalf("clip = rate %d, %d samples", back.SampleRate, len(back.Samples))
	}
	for i := range clip.Samples {
		if clip.Samples[i] != back.Samples[i] {
			t.Fatalf("sample %d: %d != %d", i, clip.Samples[i], back.Samples[i])
		}
	}
	if d := back.Duration(); d != 0.25 {
		t.Fatalf("Duration = %v", d)
	}
}

// TestWAVRoundTripProperty: arbitrary PCM survives the codec exactly.
func TestWAVRoundTripProperty(t *testing.T) {
	f := func(samples []int16, rateSeed uint16) bool {
		if len(samples) == 0 {
			samples = []int16{0}
		}
		rate := int(rateSeed)%48000 + 8000
		clip := &Clip{SampleRate: rate, Samples: samples}
		data, err := EncodeWAV(clip)
		if err != nil {
			return false
		}
		back, err := DecodeWAV(data)
		if err != nil || back.SampleRate != rate || len(back.Samples) != len(samples) {
			return false
		}
		for i := range samples {
			if samples[i] != back.Samples[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeWAVRejectsMalformed(t *testing.T) {
	good, _ := EncodeWAV(Synth(1, 8000, 1000))
	cases := map[string][]byte{
		"empty":       nil,
		"short":       good[:20],
		"bad magic":   append([]byte("JUNK"), good[4:]...),
		"no data":     good[:wavHeaderSize-8],
		"trunc data":  good[:len(good)-3],
		"stereo":      mutate(good, 22, 2),
		"8-bit":       mutate(good, 34, 8),
		"float fmt":   mutate(good, 20, 3),
		"zero rate":   mutateU32(good, 24, 0),
		"insane rate": mutateU32(good, 24, 1<<30),
	}
	for name, data := range cases {
		if _, err := DecodeWAV(data); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func mutate(data []byte, off int, v uint16) []byte {
	out := append([]byte(nil), data...)
	out[off] = byte(v)
	out[off+1] = byte(v >> 8)
	return out
}

func mutateU32(data []byte, off int, v uint32) []byte {
	out := append([]byte(nil), data...)
	out[off] = byte(v)
	out[off+1] = byte(v >> 8)
	out[off+2] = byte(v >> 16)
	out[off+3] = byte(v >> 24)
	return out
}

func TestDecodeWAVSkipsExtraChunks(t *testing.T) {
	clip := Synth(3, 8000, 500)
	good, _ := EncodeWAV(clip)
	// Splice a LIST chunk between fmt and data.
	list := append([]byte("LIST"), 0x04, 0, 0, 0, 'I', 'N', 'F', 'O')
	spliced := append([]byte(nil), good[:36]...)
	spliced = append(spliced, list...)
	spliced = append(spliced, good[36:]...)
	// Fix the RIFF size.
	spliced[4] = byte(len(spliced) - 8)
	spliced[5] = byte((len(spliced) - 8) >> 8)
	back, err := DecodeWAV(spliced)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Samples) != 500 {
		t.Fatalf("samples = %d", len(back.Samples))
	}
}

func TestSynthDeterministic(t *testing.T) {
	a := Synth(42, 16000, 2000)
	b := Synth(42, 16000, 2000)
	for i := range a.Samples {
		if a.Samples[i] != b.Samples[i] {
			t.Fatal("synth not deterministic")
		}
	}
	c := Synth(43, 16000, 2000)
	same := true
	for i := range a.Samples {
		if a.Samples[i] != c.Samples[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical clips")
	}
}

func TestSpectrogramParamsValidate(t *testing.T) {
	bad := []SpectrogramParams{
		{},
		{FrameLen: 0, Hop: 1, Coeffs: 1},
		{FrameLen: 8, Hop: 0, Coeffs: 1},
		{FrameLen: 8, Hop: 4, Coeffs: 0},
		{FrameLen: 8, Hop: 4, Coeffs: 9},
		{FrameLen: 8, Hop: 4, Coeffs: 4, MaxFrames: -1},
	}
	for i, p := range bad {
		if err := p.validate(); err == nil {
			t.Errorf("params %d accepted: %+v", i, p)
		}
	}
	if err := DefaultSpectrogramParams().validate(); err != nil {
		t.Fatal(err)
	}
}

// TestPureToneConcentratesEnergy: a sinusoid's DCT energy concentrates
// near the expected coefficient bin, and silence produces none.
func TestPureToneConcentratesEnergy(t *testing.T) {
	const (
		rate     = 16000
		frameLen = 512
		coeffs   = 256
	)
	// DCT-II bin k corresponds to frequency k/(2N)·rate.
	wantBin := 64
	freq := float64(wantBin) / (2 * frameLen) * rate
	clip := &Clip{SampleRate: rate, Samples: make([]int16, 4*frameLen)}
	for i := range clip.Samples {
		clip.Samples[i] = int16(25000 * math.Sin(2*math.Pi*freq*float64(i)/rate))
	}
	fr, err := ExtractFrames(clip, SpectrogramParams{FrameLen: frameLen, Hop: frameLen, Coeffs: coeffs})
	if err != nil {
		t.Fatal(err)
	}
	row := fr.Coeffs[1] // interior frame
	best := 0
	for k := range row {
		if math.Abs(row[k]) > math.Abs(row[best]) {
			best = k
		}
	}
	if best < wantBin-2 || best > wantBin+2 {
		t.Fatalf("peak at bin %d, want ≈%d", best, wantBin)
	}
	// Silence → all-zero coefficients.
	silent := &Clip{SampleRate: rate, Samples: make([]int16, 2*frameLen)}
	fs, err := ExtractFrames(silent, SpectrogramParams{FrameLen: frameLen, Hop: frameLen, Coeffs: coeffs})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range fs.Coeffs[0] {
		if v != 0 {
			t.Fatalf("silence produced energy %v", v)
		}
	}
}

func TestExtractFramesGeometry(t *testing.T) {
	clip := Synth(1, 16000, 512+3*256)
	p := SpectrogramParams{FrameLen: 512, Hop: 256, Coeffs: 32}
	fr, err := ExtractFrames(clip, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(fr.Coeffs) != 4 {
		t.Fatalf("frames = %d, want 4", len(fr.Coeffs))
	}
	// MaxFrames caps the count.
	p.MaxFrames = 2
	fr, _ = ExtractFrames(clip, p)
	if len(fr.Coeffs) != 2 {
		t.Fatalf("capped frames = %d", len(fr.Coeffs))
	}
	// Too-short clip errors.
	if _, err := ExtractFrames(&Clip{SampleRate: 16000, Samples: make([]int16, 100)}, p); err == nil {
		t.Fatal("short clip accepted")
	}
}

func TestSpectrogramImage(t *testing.T) {
	clip := Synth(5, 16000, 16000)
	wav, _ := EncodeWAV(clip)
	p := DefaultSpectrogramParams()
	img, err := Spectrogram(wav, p)
	if err != nil {
		t.Fatal(err)
	}
	if img.W != p.MaxFrames || img.H != p.Coeffs || img.C != 1 {
		t.Fatalf("geometry %dx%dx%d", img.W, img.H, img.C)
	}
	// A harmonic-rich clip must produce a non-trivial raster.
	nonZero := 0
	for _, v := range img.Pix {
		if v != 0 {
			nonZero++
		}
	}
	if nonZero < len(img.Pix)/20 {
		t.Fatalf("spectrogram nearly empty: %d/%d non-zero", nonZero, len(img.Pix))
	}
	if _, err := Spectrogram([]byte("garbage"), p); err == nil {
		t.Fatal("garbage accepted")
	}
}

// TestSpeechMirrorThroughFPGADevice runs the speech workload through the
// real FPGA device pipeline — the §3.1 mirror-swap story end to end.
func TestSpeechMirrorThroughFPGADevice(t *testing.T) {
	pool, err := hugepage.NewPool(64*64, 4)
	if err != nil {
		t.Fatal(err)
	}
	mirror, err := fpga.LoadMirror("speech")
	if err != nil {
		t.Fatal(err)
	}
	dev, err := fpga.New(fpga.DefaultConfig(), pool.Arena(), nil, mirror)
	if err != nil {
		t.Fatal(err)
	}
	defer dev.Close()
	if dev.Mirror() != "speech" {
		t.Fatalf("mirror = %q", dev.Mirror())
	}
	clip := Synth(9, 16000, 32000)
	wav, err := EncodeWAV(clip)
	if err != nil {
		t.Fatal(err)
	}
	buf, _ := pool.Get()
	if err := dev.Submit(fpga.Cmd{
		ID: 1, Data: fpga.DataRef{Inline: wav},
		DMAAddr: buf.PhysAddr(), OutW: 64, OutH: 64, Channels: 1,
	}); err != nil {
		t.Fatal(err)
	}
	comp, err := dev.WaitCompletion()
	if err != nil {
		t.Fatal(err)
	}
	if comp.Err != nil {
		t.Fatalf("completion: %v", comp.Err)
	}
	if comp.Bytes != 64*64 {
		t.Fatalf("bytes = %d", comp.Bytes)
	}
	// Malformed WAV errors through the same FINISH path.
	if err := dev.Submit(fpga.Cmd{
		ID: 2, Data: fpga.DataRef{Inline: []byte("not audio")},
		DMAAddr: buf.PhysAddr(), OutW: 64, OutH: 64, Channels: 1,
	}); err != nil {
		t.Fatal(err)
	}
	comp, _ = dev.WaitCompletion()
	if comp.Err == nil {
		t.Fatal("garbage WAV decoded")
	}
}

func TestSpeechMirrorTypeSafety(t *testing.T) {
	m := SpeechMirror{Params: DefaultSpectrogramParams()}
	if _, err := m.EntropyDecode("wrong"); err == nil {
		t.Fatal("wrong job type accepted")
	}
	if _, err := m.Reconstruct(42); err == nil {
		t.Fatal("wrong job type accepted")
	}
}
