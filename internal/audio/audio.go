// Package audio implements the speech-preprocessing workload the paper
// names when motivating pluggable decoder mirrors: "audio samples
// undergo a discrete cosine transform to obtain the spectra data" (§2.1)
// and "the decoder in FPGA is pluggable, which allows users to download
// relevant preprocessing mirrors ... for different applications (e.g.,
// language models, video models and speech models)" (§3.1).
//
// The package provides a 16-bit mono PCM WAV codec, Hann-windowed DCT-II
// spectrogram extraction, a deterministic clip synthesiser for corpora,
// and the "speech" fpga.Mirror that runs WAV parsing in the FPGA parser
// stage, framing+DCT in the (heavy) entropy-unit stage, and
// log-magnitude image formation in the reconstruction stage — the same
// selective split the JPEG mirror uses.
package audio

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Clip is decoded mono audio.
type Clip struct {
	SampleRate int
	Samples    []int16
}

// Duration returns the clip length in seconds.
func (c *Clip) Duration() float64 {
	if c.SampleRate <= 0 {
		return 0
	}
	return float64(len(c.Samples)) / float64(c.SampleRate)
}

// WAV framing: canonical RIFF/WAVE, PCM, 16-bit, mono.

const (
	wavHeaderSize = 44
	pcmFormat     = 1
)

// EncodeWAV serialises a clip as a canonical 44-byte-header WAV file.
func EncodeWAV(c *Clip) ([]byte, error) {
	if c == nil || c.SampleRate <= 0 {
		return nil, fmt.Errorf("audio: invalid clip")
	}
	dataLen := len(c.Samples) * 2
	out := make([]byte, wavHeaderSize+dataLen)
	copy(out[0:4], "RIFF")
	binary.LittleEndian.PutUint32(out[4:], uint32(36+dataLen))
	copy(out[8:12], "WAVE")
	copy(out[12:16], "fmt ")
	binary.LittleEndian.PutUint32(out[16:], 16) // PCM fmt chunk size
	binary.LittleEndian.PutUint16(out[20:], pcmFormat)
	binary.LittleEndian.PutUint16(out[22:], 1) // mono
	binary.LittleEndian.PutUint32(out[24:], uint32(c.SampleRate))
	binary.LittleEndian.PutUint32(out[28:], uint32(c.SampleRate*2)) // byte rate
	binary.LittleEndian.PutUint16(out[32:], 2)                      // block align
	binary.LittleEndian.PutUint16(out[34:], 16)                     // bits/sample
	copy(out[36:40], "data")
	binary.LittleEndian.PutUint32(out[40:], uint32(dataLen))
	for i, s := range c.Samples {
		binary.LittleEndian.PutUint16(out[wavHeaderSize+2*i:], uint16(s))
	}
	return out, nil
}

// DecodeWAV parses a canonical PCM16 mono WAV stream, tolerating extra
// chunks between "fmt " and "data".
func DecodeWAV(data []byte) (*Clip, error) {
	if len(data) < wavHeaderSize {
		return nil, fmt.Errorf("audio: %d bytes is too short for WAV", len(data))
	}
	if string(data[0:4]) != "RIFF" || string(data[8:12]) != "WAVE" {
		return nil, fmt.Errorf("audio: missing RIFF/WAVE magic")
	}
	pos := 12
	var clip *Clip
	var haveFmt bool
	for pos+8 <= len(data) {
		id := string(data[pos : pos+4])
		size := int(binary.LittleEndian.Uint32(data[pos+4 : pos+8]))
		body := pos + 8
		if size < 0 || body+size > len(data) {
			return nil, fmt.Errorf("audio: chunk %q of %d bytes overruns stream", id, size)
		}
		switch id {
		case "fmt ":
			if size < 16 {
				return nil, fmt.Errorf("audio: fmt chunk of %d bytes", size)
			}
			format := binary.LittleEndian.Uint16(data[body:])
			channels := binary.LittleEndian.Uint16(data[body+2:])
			rate := binary.LittleEndian.Uint32(data[body+4:])
			bits := binary.LittleEndian.Uint16(data[body+14:])
			if format != pcmFormat {
				return nil, fmt.Errorf("audio: format %d unsupported (PCM only)", format)
			}
			if channels != 1 {
				return nil, fmt.Errorf("audio: %d channels unsupported (mono only)", channels)
			}
			if bits != 16 {
				return nil, fmt.Errorf("audio: %d bits/sample unsupported", bits)
			}
			if rate == 0 || rate > 1<<20 {
				return nil, fmt.Errorf("audio: sample rate %d invalid", rate)
			}
			clip = &Clip{SampleRate: int(rate)}
			haveFmt = true
		case "data":
			if !haveFmt {
				return nil, fmt.Errorf("audio: data chunk before fmt")
			}
			if size%2 != 0 {
				return nil, fmt.Errorf("audio: odd PCM16 data length %d", size)
			}
			clip.Samples = make([]int16, size/2)
			for i := range clip.Samples {
				clip.Samples[i] = int16(binary.LittleEndian.Uint16(data[body+2*i:]))
			}
			return clip, nil
		}
		// Chunks are word-aligned.
		pos = body + size + size%2
	}
	return nil, fmt.Errorf("audio: no data chunk")
}

// Synth generates a deterministic test clip: a fundamental plus two
// harmonics with seed-dependent frequencies and a little chirp, loud
// enough to exercise the full 16-bit range.
func Synth(seed int64, sampleRate int, samples int) *Clip {
	c := &Clip{SampleRate: sampleRate, Samples: make([]int16, samples)}
	// Derive stable parameters from the seed.
	f0 := 80 + float64(uint64(seed)*2654435761%800) // 80..880 Hz
	chirp := float64(uint64(seed)>>8%100) / 100
	for i := range c.Samples {
		t := float64(i) / float64(sampleRate)
		f := f0 * (1 + chirp*t/4)
		v := 0.6*math.Sin(2*math.Pi*f*t) +
			0.25*math.Sin(2*math.Pi*2*f*t+1) +
			0.1*math.Sin(2*math.Pi*3*f*t+2)
		c.Samples[i] = int16(v * 30000)
	}
	return c
}
