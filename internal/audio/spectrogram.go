package audio

import (
	"fmt"
	"math"
	"sync"

	"dlbooster/internal/pix"
)

// SpectrogramParams configures feature extraction. The zero value is not
// valid; use DefaultSpectrogramParams.
type SpectrogramParams struct {
	// FrameLen is the analysis window in samples (a power of two is not
	// required; the DCT is direct).
	FrameLen int
	// Hop is the frame step in samples.
	Hop int
	// Coeffs is how many leading DCT coefficients to keep per frame
	// (the spectrogram height).
	Coeffs int
	// MaxFrames caps the spectrogram width; 0 means unlimited. The
	// preprocessing pipeline needs fixed-size outputs per batch slot,
	// like the image resizer's fixed OutW×OutH.
	MaxFrames int
}

// DefaultSpectrogramParams matches a common speech front end: 32 ms
// windows at 16 kHz with 50 % overlap, 64 coefficients.
func DefaultSpectrogramParams() SpectrogramParams {
	return SpectrogramParams{FrameLen: 512, Hop: 256, Coeffs: 64, MaxFrames: 64}
}

func (p SpectrogramParams) validate() error {
	if p.FrameLen <= 0 || p.Hop <= 0 || p.Coeffs <= 0 {
		return fmt.Errorf("audio: invalid spectrogram params %+v", p)
	}
	if p.Coeffs > p.FrameLen {
		return fmt.Errorf("audio: %d coefficients from %d-sample frames", p.Coeffs, p.FrameLen)
	}
	if p.MaxFrames < 0 {
		return fmt.Errorf("audio: negative MaxFrames")
	}
	return nil
}

// dctPlan caches the window and basis for one (frameLen, coeffs) shape.
type dctPlan struct {
	window []float64
	basis  [][]float64 // basis[k][n], k < coeffs
}

var (
	planMu    sync.Mutex
	planCache = map[[2]int]*dctPlan{}
)

func planFor(frameLen, coeffs int) *dctPlan {
	planMu.Lock()
	defer planMu.Unlock()
	key := [2]int{frameLen, coeffs}
	if p, ok := planCache[key]; ok {
		return p
	}
	p := &dctPlan{window: make([]float64, frameLen), basis: make([][]float64, coeffs)}
	for n := 0; n < frameLen; n++ {
		// Hann window.
		p.window[n] = 0.5 - 0.5*math.Cos(2*math.Pi*float64(n)/float64(frameLen-1))
	}
	for k := 0; k < coeffs; k++ {
		row := make([]float64, frameLen)
		for n := 0; n < frameLen; n++ {
			// DCT-II basis.
			row[n] = math.Cos(math.Pi / float64(frameLen) * (float64(n) + 0.5) * float64(k))
		}
		p.basis[k] = row
	}
	planCache[key] = p
	return p
}

// Frames holds windowed DCT coefficients: the intermediate the FPGA's
// heavy compute stage produces, before image formation.
type Frames struct {
	Coeffs [][]float64 // Coeffs[frame][k]
	Params SpectrogramParams
}

// ExtractFrames windows the clip and applies the per-frame DCT-II (the
// §2.1 "discrete cosine transform to obtain the spectra data").
func ExtractFrames(c *Clip, p SpectrogramParams) (*Frames, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	if c == nil || len(c.Samples) < p.FrameLen {
		return nil, fmt.Errorf("audio: clip shorter than one frame")
	}
	plan := planFor(p.FrameLen, p.Coeffs)
	n := (len(c.Samples)-p.FrameLen)/p.Hop + 1
	if p.MaxFrames > 0 && n > p.MaxFrames {
		n = p.MaxFrames
	}
	out := &Frames{Params: p, Coeffs: make([][]float64, n)}
	buf := make([]float64, p.FrameLen)
	for f := 0; f < n; f++ {
		off := f * p.Hop
		for i := 0; i < p.FrameLen; i++ {
			buf[i] = float64(c.Samples[off+i]) / 32768 * plan.window[i]
		}
		row := make([]float64, p.Coeffs)
		for k := 0; k < p.Coeffs; k++ {
			var s float64
			basis := plan.basis[k]
			for i := 0; i < p.FrameLen; i++ {
				s += buf[i] * basis[i]
			}
			row[k] = s
		}
		out.Coeffs[f] = row
	}
	return out, nil
}

// ToImage converts frames to a log-magnitude spectrogram raster:
// x = frame index, y = coefficient, 8-bit dynamic range of 60 dB. The
// output width is padded/truncated to MaxFrames when set, giving the
// fixed geometry batch slots require.
func (fr *Frames) ToImage() *pix.Image {
	p := fr.Params
	w := len(fr.Coeffs)
	if p.MaxFrames > 0 {
		w = p.MaxFrames
	}
	img := pix.New(w, p.Coeffs, 1)
	const floorDB = -60.0
	for x := 0; x < w && x < len(fr.Coeffs); x++ {
		for k := 0; k < p.Coeffs; k++ {
			mag := math.Abs(fr.Coeffs[x][k])
			db := floorDB
			if mag > 0 {
				db = 20 * math.Log10(mag)
				if db < floorDB {
					db = floorDB
				}
				if db > 0 {
					db = 0
				}
			}
			img.Set(x, k, 0, byte((db-floorDB)/(-floorDB)*255))
		}
	}
	return img
}

// Spectrogram is the one-call form: WAV bytes → raster.
func Spectrogram(wav []byte, p SpectrogramParams) (*pix.Image, error) {
	clip, err := DecodeWAV(wav)
	if err != nil {
		return nil, err
	}
	frames, err := ExtractFrames(clip, p)
	if err != nil {
		return nil, err
	}
	return frames.ToImage(), nil
}
