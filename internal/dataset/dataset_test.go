package dataset

import (
	"bytes"
	"testing"
	"testing/quick"

	"dlbooster/internal/jpeg"
	"dlbooster/internal/lmdb"
	"dlbooster/internal/nvme"
)

func TestSpecsValidate(t *testing.T) {
	if err := MNISTLike(100).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := ILSVRCLike(100).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := MNISTLike(0)
	if err := bad.Validate(); err == nil {
		t.Fatal("zero count accepted")
	}
	bad = MNISTLike(10)
	bad.C = 2
	if err := bad.Validate(); err == nil {
		t.Fatal("2 channels accepted")
	}
	bad = MNISTLike(10)
	bad.Quality = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("quality 0 accepted")
	}
}

func TestImagesAreDeterministic(t *testing.T) {
	s := ILSVRCLike(10)
	a := s.Image(3)
	b := s.Image(3)
	if d, _ := a.MaxAbsDiff(b); d != 0 {
		t.Fatal("same index produced different images")
	}
	c := s.Image(4)
	if d, _ := a.MaxAbsDiff(c); d == 0 {
		t.Fatal("different indices produced identical images")
	}
	j1, err := s.JPEG(3)
	if err != nil {
		t.Fatal(err)
	}
	j2, _ := s.JPEG(3)
	if !bytes.Equal(j1, j2) {
		t.Fatal("JPEG encoding not deterministic")
	}
}

func TestGeometryMatchesPaper(t *testing.T) {
	m := MNISTLike(5)
	img := m.Image(0)
	if img.W != 28 || img.H != 28 || img.C != 1 {
		t.Fatalf("MNIST geometry %dx%dx%d", img.W, img.H, img.C)
	}
	i := ILSVRCLike(5)
	img = i.Image(0)
	if img.W != 500 || img.H != 375 || img.C != 3 {
		t.Fatalf("ILSVRC geometry %dx%dx%d", img.W, img.H, img.C)
	}
}

func TestJPEGSizesPlausible(t *testing.T) {
	// The inference workload assumes ≈30 KB JPEGs; synthetic images must
	// land in the same order of magnitude (not trivially compressible).
	s := ILSVRCLike(6)
	for i := 0; i < 6; i++ {
		data, err := s.JPEG(i)
		if err != nil {
			t.Fatal(err)
		}
		if len(data) < 8*1024 || len(data) > 120*1024 {
			t.Fatalf("image %d encodes to %d bytes, outside photo-like range", i, len(data))
		}
		// And they must decode.
		img, err := jpeg.Decode(data)
		if err != nil {
			t.Fatal(err)
		}
		if img.W != 500 || img.H != 375 {
			t.Fatalf("decode geometry %dx%d", img.W, img.H)
		}
	}
}

func TestLabelsInRangeAndSpread(t *testing.T) {
	s := MNISTLike(1000)
	seen := map[int]int{}
	for i := 0; i < s.Count; i++ {
		l := s.Label(i)
		if l < 0 || l >= s.Classes {
			t.Fatalf("label %d out of range", l)
		}
		seen[l]++
	}
	if len(seen) != 10 {
		t.Fatalf("only %d distinct labels in 1000 samples", len(seen))
	}
	// Deterministic.
	if s.Label(42) != s.Label(42) {
		t.Fatal("labels not deterministic")
	}
}

func TestWriteToNVMe(t *testing.T) {
	s := MNISTLike(20)
	d := nvme.New(nvme.Config{})
	infos, err := s.WriteToNVMe(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 20 || d.Len() != 20 {
		t.Fatalf("stored %d/%d", len(infos), d.Len())
	}
	data, err := d.Read(s.Key(7))
	if err != nil {
		t.Fatal(err)
	}
	want, _ := s.JPEG(7)
	if !bytes.Equal(data, want) {
		t.Fatal("stored bytes differ from generator output")
	}
	bad := s
	bad.Count = 0
	if _, err := bad.WriteToNVMe(d); err == nil {
		t.Fatal("invalid spec accepted")
	}
}

func TestRecordRoundTrip(t *testing.T) {
	rec := Record{Label: 7, W: 4, H: 3, C: 3, Pixels: bytes.Repeat([]byte{9}, 36)}
	data, err := EncodeRecord(rec)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeRecord(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Label != 7 || back.W != 4 || back.H != 3 || back.C != 3 || !bytes.Equal(back.Pixels, rec.Pixels) {
		t.Fatalf("record = %+v", back)
	}
}

func TestRecordValidation(t *testing.T) {
	if _, err := EncodeRecord(Record{W: 0, H: 1, C: 1}); err == nil {
		t.Fatal("zero width accepted")
	}
	if _, err := EncodeRecord(Record{W: 2, H: 2, C: 1, Pixels: []byte{1}}); err == nil {
		t.Fatal("short pixels accepted")
	}
	if _, err := DecodeRecord(nil); err == nil {
		t.Fatal("nil record accepted")
	}
	if _, err := DecodeRecord(make([]byte, 16)); err == nil {
		t.Fatal("zero-geometry record accepted")
	}
	good, _ := EncodeRecord(Record{Label: 1, W: 2, H: 2, C: 1, Pixels: []byte{1, 2, 3, 4}})
	if _, err := DecodeRecord(good[:len(good)-1]); err == nil {
		t.Fatal("truncated record accepted")
	}
}

// TestRecordRoundTripProperty: arbitrary geometry and content round-trip.
func TestRecordRoundTripProperty(t *testing.T) {
	f := func(label uint16, wSeed, hSeed uint8, gray bool, fill byte) bool {
		w, h := int(wSeed)%16+1, int(hSeed)%16+1
		c := 3
		if gray {
			c = 1
		}
		rec := Record{Label: int(label), W: w, H: h, C: c, Pixels: bytes.Repeat([]byte{fill}, w*h*c)}
		data, err := EncodeRecord(rec)
		if err != nil {
			return false
		}
		back, err := DecodeRecord(data)
		if err != nil {
			return false
		}
		return back.Label == rec.Label && back.W == w && back.H == h && back.C == c && bytes.Equal(back.Pixels, rec.Pixels)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestConvertToLMDB(t *testing.T) {
	s := MNISTLike(15)
	db := lmdb.New()
	if err := ConvertToLMDB(s, db, 28, 28); err != nil {
		t.Fatal(err)
	}
	if db.Len() != 15 {
		t.Fatalf("Len = %d", db.Len())
	}
	val, ok, err := db.Get([]byte(s.Key(3)))
	if err != nil || !ok {
		t.Fatalf("Get: %v %v", ok, err)
	}
	rec, err := DecodeRecord(val)
	if err != nil {
		t.Fatal(err)
	}
	if rec.W != 28 || rec.H != 28 || rec.C != 1 || rec.Label != s.Label(3) {
		t.Fatalf("record = %+v", rec)
	}
	// Records must be the decoded JPEG (lossy match to the source).
	src := s.Image(3)
	got := rec.Pixels
	var worst int
	for i := range got {
		d := int(got[i]) - int(src.Pix[i])
		if d < 0 {
			d = -d
		}
		if d > worst {
			worst = d
		}
	}
	if worst > 40 {
		t.Fatalf("record diverges from source by %d", worst)
	}
	if err := ConvertToLMDB(s, db, 0, 28); err == nil {
		t.Fatal("invalid output size accepted")
	}
}

func TestConvertILSVRCResizes(t *testing.T) {
	s := ILSVRCLike(2)
	db := lmdb.New()
	if err := ConvertToLMDB(s, db, 224, 224); err != nil {
		t.Fatal(err)
	}
	val, _, _ := db.Get([]byte(s.Key(0)))
	rec, err := DecodeRecord(val)
	if err != nil {
		t.Fatal(err)
	}
	if rec.W != 224 || rec.H != 224 || rec.C != 3 {
		t.Fatalf("record geometry %dx%dx%d", rec.W, rec.H, rec.C)
	}
}

func TestProgressiveCorpus(t *testing.T) {
	s := MNISTLike(4)
	s.Progressive = true
	data, err := s.JPEG(0)
	if err != nil {
		t.Fatal(err)
	}
	img, err := jpeg.Decode(data)
	if err != nil {
		t.Fatalf("progressive corpus image does not decode: %v", err)
	}
	if img.W != 28 || img.H != 28 {
		t.Fatalf("geometry %dx%d", img.W, img.H)
	}
	// Progressive and baseline forms decode to similar pixels.
	base := MNISTLike(4)
	bImg, err := jpeg.Decode(mustEncode(t, base, 0))
	if err != nil {
		t.Fatal(err)
	}
	if d, _ := img.MaxAbsDiff(bImg); d != 0 {
		t.Fatalf("progressive pixels differ from baseline by %d (same coefficients expected)", d)
	}
}

func mustEncode(t *testing.T, s Spec, i int) []byte {
	t.Helper()
	data, err := s.JPEG(i)
	if err != nil {
		t.Fatal(err)
	}
	return data
}
