// Package dataset synthesises the paper's two corpora at configurable
// scale: an MNIST-like set (28×28 grayscale, 60k images, fits in memory)
// and an ILSVRC2012-like set (≈500×375 colour JPEGs, 1.28M images, does
// not fit). The evaluation depends on the size, format and volume of the
// data, not on its semantic content, so images are deterministic
// procedural textures: same seed → byte-identical corpus, which keeps
// every experiment reproducible.
//
// The package also implements the offline-conversion path (decode +
// resize + pack into the lmdb store) whose ≈2-hour cost for ILSVRC12 the
// paper charges against offline backends.
package dataset

import (
	"encoding/binary"
	"fmt"
	"math"

	"dlbooster/internal/imageproc"
	"dlbooster/internal/jpeg"
	"dlbooster/internal/lmdb"
	"dlbooster/internal/nvme"
	"dlbooster/internal/pix"
)

// Spec describes a synthetic corpus.
type Spec struct {
	Name    string
	Count   int
	W, H    int
	C       int // 1 or 3
	Classes int
	Quality int  // JPEG quality for the encoded form
	Sub420  bool // chroma subsampling for the encoded form
	// Progressive encodes the corpus as multi-scan (SOF2) JPEGs. The
	// simulated FPGA decoder, like real hardware decoders, is
	// baseline-only; progressive corpora exercise the software decode
	// fallback of the CPU backends.
	Progressive bool
	Seed        int64
}

// MNISTLike returns the paper's LeNet-5 corpus at a given scale
// (60,000 in the paper).
func MNISTLike(count int) Spec {
	return Spec{Name: "mnist-like", Count: count, W: 28, H: 28, C: 1, Classes: 10, Quality: 92, Seed: 1998}
}

// ILSVRCLike returns the paper's AlexNet/ResNet corpus at a given scale
// (1,281,167 in the paper; experiments use a slice and scale rates).
func ILSVRCLike(count int) Spec {
	return Spec{Name: "ilsvrc-like", Count: count, W: 500, H: 375, C: 3, Classes: 1000, Quality: 88, Sub420: true, Seed: 2012}
}

// Validate checks the spec is usable.
func (s Spec) Validate() error {
	if s.Count <= 0 || s.W <= 0 || s.H <= 0 || (s.C != 1 && s.C != 3) || s.Classes <= 0 {
		return fmt.Errorf("dataset: invalid spec %+v", s)
	}
	if s.Quality < 1 || s.Quality > 100 {
		return fmt.Errorf("dataset: quality %d outside 1..100", s.Quality)
	}
	return nil
}

// splitmix64 provides the per-image deterministic stream.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Label returns the class of image i.
func (s Spec) Label(i int) int {
	return int(splitmix64(uint64(s.Seed)^uint64(i)*0x5851F42D4C957F2D) % uint64(s.Classes))
}

// Key returns the store/manifest key of image i.
func (s Spec) Key(i int) string { return fmt.Sprintf("%s/%08d", s.Name, i) }

// Image synthesises image i: a class-dependent low-frequency texture
// with per-image phase, realistic enough to keep JPEG sizes in the range
// of natural photos.
func (s Spec) Image(i int) *pix.Image {
	img := pix.New(s.W, s.H, s.C)
	r := splitmix64(uint64(s.Seed) + uint64(i))
	label := s.Label(i)
	fx := 1 + float64(r%5)/2
	fy := 1 + float64((r>>8)%5)/2
	phase := float64(r>>16%628) / 100
	amp := 70 + float64(label%40)
	for y := 0; y < s.H; y++ {
		wy := float64(y) / float64(s.H)
		for x := 0; x < s.W; x++ {
			wx := float64(x) / float64(s.W)
			base := 128 + amp*math.Sin(fx*math.Pi*wx+phase)*math.Cos(fy*math.Pi*wy)
			noise := float64(splitmix64(r^uint64(y*s.W+x))%16) - 8
			for ch := 0; ch < s.C; ch++ {
				v := base + noise + 12*float64(ch)*math.Sin(3*math.Pi*wx+float64(ch))
				if v < 0 {
					v = 0
				}
				if v > 255 {
					v = 255
				}
				img.Set(x, y, ch, byte(v))
			}
		}
	}
	return img
}

// JPEG returns image i in its encoded (on-disk / on-wire) form.
func (s Spec) JPEG(i int) ([]byte, error) {
	opt := jpeg.EncodeOptions{Quality: s.Quality, Subsample420: s.Sub420 && s.C == 3}
	if s.Progressive {
		return jpeg.EncodeProgressive(s.Image(i), opt)
	}
	return jpeg.Encode(s.Image(i), opt)
}

// WriteToNVMe stores the encoded corpus onto a simulated disk, returning
// the manifest in index order.
func (s Spec) WriteToNVMe(d *nvme.Device) ([]nvme.FileInfo, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	infos := make([]nvme.FileInfo, 0, s.Count)
	for i := 0; i < s.Count; i++ {
		data, err := s.JPEG(i)
		if err != nil {
			return nil, fmt.Errorf("dataset: encoding %d: %w", i, err)
		}
		fi, err := d.Put(s.Key(i), data)
		if err != nil {
			return nil, err
		}
		infos = append(infos, fi)
	}
	return infos, nil
}

// Record is one offline-preprocessed training record: a decoded, resized
// raster plus its label — what the LMDB backend serves at train time.
type Record struct {
	Label   int
	W, H, C int
	Pixels  []byte // HWC
}

// EncodeRecord packs a record into the store's value format.
func EncodeRecord(r Record) ([]byte, error) {
	if r.W <= 0 || r.H <= 0 || (r.C != 1 && r.C != 3) || len(r.Pixels) != r.W*r.H*r.C {
		return nil, fmt.Errorf("dataset: invalid record %dx%dx%d with %d pixel bytes", r.W, r.H, r.C, len(r.Pixels))
	}
	out := make([]byte, 16+len(r.Pixels))
	binary.BigEndian.PutUint32(out[0:], uint32(r.Label))
	binary.BigEndian.PutUint32(out[4:], uint32(r.W))
	binary.BigEndian.PutUint32(out[8:], uint32(r.H))
	binary.BigEndian.PutUint32(out[12:], uint32(r.C))
	copy(out[16:], r.Pixels)
	return out, nil
}

// DecodeRecord unpacks a store value.
func DecodeRecord(data []byte) (Record, error) {
	if len(data) < 16 {
		return Record{}, fmt.Errorf("dataset: record of %d bytes too short", len(data))
	}
	r := Record{
		Label: int(binary.BigEndian.Uint32(data[0:])),
		W:     int(binary.BigEndian.Uint32(data[4:])),
		H:     int(binary.BigEndian.Uint32(data[8:])),
		C:     int(binary.BigEndian.Uint32(data[12:])),
	}
	if r.W <= 0 || r.H <= 0 || (r.C != 1 && r.C != 3) {
		return Record{}, fmt.Errorf("dataset: record geometry %dx%dx%d invalid", r.W, r.H, r.C)
	}
	if len(data)-16 != r.W*r.H*r.C {
		return Record{}, fmt.Errorf("dataset: record payload %d, want %d", len(data)-16, r.W*r.H*r.C)
	}
	r.Pixels = data[16:]
	return r, nil
}

// ConvertToLMDB runs the offline-preprocessing pass: decode every JPEG,
// resize to outW×outH, and store records keyed by index. This is the
// conversion whose time cost §2.2 charges against LMDB ("more than 2
// hours ... for ILSVRC12"); callers wanting the cost model use
// perf.LMDBPrepareRate, callers wanting the bytes call this.
func ConvertToLMDB(s Spec, db *lmdb.DB, outW, outH int) error {
	if err := s.Validate(); err != nil {
		return err
	}
	if outW <= 0 || outH <= 0 {
		return fmt.Errorf("dataset: invalid output %dx%d", outW, outH)
	}
	for i := 0; i < s.Count; i++ {
		data, err := s.JPEG(i)
		if err != nil {
			return err
		}
		img, err := jpeg.Decode(data)
		if err != nil {
			return fmt.Errorf("dataset: decoding %d: %w", i, err)
		}
		resized, err := imageproc.Resize(img, outW, outH, imageproc.Bilinear)
		if err != nil {
			return err
		}
		rec, err := EncodeRecord(Record{Label: s.Label(i), W: outW, H: outH, C: s.C, Pixels: resized.Pix})
		if err != nil {
			return err
		}
		if err := db.Put([]byte(s.Key(i)), rec); err != nil {
			return err
		}
	}
	return nil
}
