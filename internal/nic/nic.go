// Package nic simulates the testbed's 40 Gbps fabric and the paper's
// online-inference clients: "we set up 5 clients to send color images
// using a 40Gbps fabric" (§5.3).
//
// Frames (whole JPEG images) from all clients serialise over one shared
// link with token-bucket pacing and land in the server's RX queue; when
// the preprocessing backend falls behind, the RX queue fills and clients
// block — the same closed-loop back-pressure a TCP fabric gives the real
// system. cmd/dlserve additionally demonstrates the same flow over real
// TCP sockets.
package nic

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"dlbooster/internal/faults"
	"dlbooster/internal/queue"
)

// Frame is one application message: a complete encoded image.
type Frame struct {
	ClientID int
	Seq      int
	Payload  []byte
	SentAt   time.Time // stamped at delivery for latency measurement
}

// Config sets fabric behaviour.
type Config struct {
	// BandwidthBits is the shared link rate in bits/s; 0 disables
	// pacing (unit tests).
	BandwidthBits float64
	// RxQueueCap bounds the server-side receive queue (default 256).
	RxQueueCap int
	// Inject hooks a fault injector into Deliver (nil = no faults):
	// Drop discards the frame silently (counted in Dropped), Fail
	// returns ErrInjected to the sender, Corrupt flips payload bytes in
	// a copy before delivery, and Delay models a congestion spike on
	// the wire. Stuck is not meaningful for a fabric and is ignored.
	Inject *faults.Injector
}

// Fabric is the shared link plus the server's receive queue.
type Fabric struct {
	cfg Config
	rx  *queue.Queue[Frame]

	mu        sync.Mutex
	linkFree  time.Time // when the serialised link next becomes idle
	delivered int64
	bytesSent int64
	dropped   int64
}

// New creates a fabric.
func New(cfg Config) *Fabric {
	if cfg.RxQueueCap == 0 {
		cfg.RxQueueCap = 256
	}
	return &Fabric{cfg: cfg, rx: queue.New[Frame](cfg.RxQueueCap)}
}

// Deliver sends one frame across the link into the RX queue, blocking
// for link serialisation (when pacing is on) and for RX-queue space.
func (f *Fabric) Deliver(fr Frame) error {
	if len(fr.Payload) == 0 {
		return errors.New("nic: empty frame")
	}
	plan := f.cfg.Inject.Next()
	if plan.Delay > 0 {
		time.Sleep(plan.Delay)
	}
	if plan.Drop {
		f.mu.Lock()
		f.dropped++
		f.mu.Unlock()
		return nil
	}
	if plan.Fail {
		return fmt.Errorf("nic: deliver from client %d: %w", fr.ClientID, faults.ErrInjected)
	}
	if plan.Corrupt {
		fr.Payload = f.cfg.Inject.CorruptBytes(append([]byte(nil), fr.Payload...))
	}
	if f.cfg.BandwidthBits > 0 {
		wire := time.Duration(float64(len(fr.Payload)*8) / f.cfg.BandwidthBits * float64(time.Second))
		f.mu.Lock()
		now := time.Now()
		start := f.linkFree
		if start.Before(now) {
			start = now
		}
		f.linkFree = start.Add(wire)
		wait := f.linkFree.Sub(now)
		f.mu.Unlock()
		if wait > 0 {
			time.Sleep(wait)
		}
	}
	fr.SentAt = time.Now()
	if err := f.rx.Push(fr); err != nil {
		return fmt.Errorf("nic: fabric closed: %w", err)
	}
	f.mu.Lock()
	f.delivered++
	f.bytesSent += int64(len(fr.Payload))
	f.mu.Unlock()
	return nil
}

// Recv blocks for the next frame. It returns queue.ErrClosed after Close
// once the queue drains.
func (f *Fabric) Recv() (Frame, error) { return f.rx.Pop() }

// TryRecv returns the next frame without blocking.
func (f *Fabric) TryRecv() (Frame, bool, error) { return f.rx.TryPop() }

// RecvTimeout waits up to d for a frame; ok is false on timeout.
func (f *Fabric) RecvTimeout(d time.Duration) (Frame, bool, error) {
	return f.rx.PopTimeout(d)
}

// RxLen returns the current depth of the receive queue.
func (f *Fabric) RxLen() int { return f.rx.Len() }

// Stats returns frames delivered and payload bytes sent.
func (f *Fabric) Stats() (frames, bytes int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.delivered, f.bytesSent
}

// Dropped returns the number of frames discarded by injected faults.
func (f *Fabric) Dropped() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dropped
}

// Close shuts the fabric down; blocked senders and receivers are woken.
func (f *Fabric) Close() { f.rx.Close() }

// ClientGroup runs n closed-loop senders cycling through a payload set.
// Clients take strict round-robin turns on the shared medium, so the
// delivery order into the RX queue is deterministic and no client can
// starve another — the fairness a real NIC's per-flow scheduling (or
// TCP's congestion control) provides, which unpaced goroutines do not.
// A client that exits early (a Deliver error, e.g. an injected Fail)
// retires its ring slot; the turn keeps rotating among the survivors
// instead of stalling the whole group on the empty slot.
type ClientGroup struct {
	wg   sync.WaitGroup
	once sync.Once

	mu      sync.Mutex
	turn    *sync.Cond
	next    int // whose turn it is, mod n
	n       int
	live    int    // clients still running
	dead    []bool // exited clients, skipped by the rotation
	stopped bool
}

// StartClients launches n clients on the fabric, each cycling through
// payloads starting at a distinct offset (so the mix of image sizes
// interleaves like independent client streams). Clients stop when Stop
// is called or the fabric closes.
func StartClients(f *Fabric, n int, payloads [][]byte) (*ClientGroup, error) {
	if n <= 0 {
		return nil, errors.New("nic: client count must be positive")
	}
	if len(payloads) == 0 {
		return nil, errors.New("nic: no payloads")
	}
	for i, p := range payloads {
		if len(p) == 0 {
			return nil, fmt.Errorf("nic: payload %d is empty", i)
		}
	}
	g := &ClientGroup{n: n, live: n, dead: make([]bool, n)}
	g.turn = sync.NewCond(&g.mu)
	for c := 0; c < n; c++ {
		g.wg.Add(1)
		go func(c int) {
			defer g.wg.Done()
			defer g.exit(c)
			seq := 0
			for {
				if !g.acquireTurn(c) {
					return
				}
				p := payloads[(seq*n+c)%len(payloads)]
				err := f.Deliver(Frame{ClientID: c, Seq: seq, Payload: p})
				g.releaseTurn()
				if err != nil {
					return
				}
				seq++
			}
		}(c)
	}
	return g, nil
}

// acquireTurn blocks until it is client c's turn; false means the group
// was stopped while waiting.
func (g *ClientGroup) acquireTurn(c int) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	for g.next != c && !g.stopped {
		g.turn.Wait()
	}
	return !g.stopped
}

// releaseTurn hands the medium to the next live client. An exiting
// client must call it too, or the ring would stall on its slot.
func (g *ClientGroup) releaseTurn() {
	g.mu.Lock()
	g.advanceLocked()
	g.turn.Broadcast()
	g.mu.Unlock()
}

// advanceLocked rotates the turn past every retired slot. With no live
// client left there is nobody to hand the turn to (and nobody waiting).
func (g *ClientGroup) advanceLocked() {
	if g.live == 0 {
		return
	}
	g.next = (g.next + 1) % g.n
	for g.dead[g.next] {
		g.next = (g.next + 1) % g.n
	}
}

// exit retires a client's ring slot when its goroutine returns. If the
// rotation is already parked on the dying client's slot (it died after
// releasing its turn, and the ring wrapped back before the exit ran),
// the turn moves on so the survivors keep sending.
func (g *ClientGroup) exit(c int) {
	g.mu.Lock()
	if !g.dead[c] {
		g.dead[c] = true
		g.live--
		if g.next == c {
			g.advanceLocked()
		}
		g.turn.Broadcast()
	}
	g.mu.Unlock()
}

// Stop halts the clients and waits for them to exit. The fabric must be
// closed (or being drained) for a sender blocked in Deliver to unblock.
func (g *ClientGroup) Stop() {
	g.once.Do(func() {
		g.mu.Lock()
		g.stopped = true
		g.turn.Broadcast()
		g.mu.Unlock()
	})
	g.wg.Wait()
}
