package nic

import (
	"bytes"
	"testing"

	"dlbooster/internal/faults"
)

// FuzzDeliverCorrupt drives Deliver with a corrupt-always injector over
// arbitrary payloads: the frame must still arrive, its length must be
// preserved, its content must differ from the original (CorruptBytes
// guarantees at least one flip), and — because corruption happens on a
// copy — the sender's buffer must never be mutated.
func FuzzDeliverCorrupt(f *testing.F) {
	f.Add([]byte("a"), int64(1))
	f.Add([]byte("the quick brown fox"), int64(7))
	f.Add(bytes.Repeat([]byte{0xFF, 0xD8, 0x00}, 100), int64(42))
	f.Fuzz(func(t *testing.T, payload []byte, seed int64) {
		fab := New(Config{
			RxQueueCap: 4,
			Inject:     faults.New(faults.Config{Seed: seed, CorruptRate: 1}),
		})
		defer fab.Close()
		orig := append([]byte(nil), payload...)
		err := fab.Deliver(Frame{ClientID: 1, Seq: 0, Payload: payload})
		if len(orig) == 0 {
			if err == nil {
				t.Fatal("empty frame accepted")
			}
			return
		}
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(payload, orig) {
			t.Fatal("sender's payload buffer mutated by corruption")
		}
		fr, err := fab.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if len(fr.Payload) != len(orig) {
			t.Fatalf("corrupted frame length %d, want %d", len(fr.Payload), len(orig))
		}
		if bytes.Equal(fr.Payload, orig) {
			t.Fatal("corrupt-always delivery left payload intact")
		}
	})
}
