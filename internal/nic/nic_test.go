package nic

import (
	"errors"
	"testing"
	"time"

	"dlbooster/internal/faults"
	"dlbooster/internal/queue"
)

func TestDeliverRecv(t *testing.T) {
	f := New(Config{})
	if err := f.Deliver(Frame{ClientID: 1, Seq: 2, Payload: []byte("img")}); err != nil {
		t.Fatal(err)
	}
	fr, err := f.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if fr.ClientID != 1 || fr.Seq != 2 || string(fr.Payload) != "img" {
		t.Fatalf("frame = %+v", fr)
	}
	if fr.SentAt.IsZero() {
		t.Fatal("SentAt not stamped")
	}
	frames, bytes := f.Stats()
	if frames != 1 || bytes != 3 {
		t.Fatalf("stats = %d, %d", frames, bytes)
	}
}

func TestEmptyFrameRejected(t *testing.T) {
	f := New(Config{})
	if err := f.Deliver(Frame{}); err == nil {
		t.Fatal("empty frame accepted")
	}
}

func TestCloseUnblocks(t *testing.T) {
	f := New(Config{RxQueueCap: 1})
	_ = f.Deliver(Frame{Payload: []byte{1}})
	errc := make(chan error, 1)
	go func() { errc <- f.Deliver(Frame{Payload: []byte{2}}) }() // blocks: queue full
	time.Sleep(10 * time.Millisecond)
	f.Close()
	if err := <-errc; err == nil {
		t.Fatal("Deliver after close succeeded")
	}
	// The queued frame drains, then ErrClosed.
	if _, err := f.Recv(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Recv(); !errors.Is(err, queue.ErrClosed) {
		t.Fatalf("Recv on closed = %v", err)
	}
}

func TestBandwidthPacing(t *testing.T) {
	// 8 KB over a 1 Mbit/s link = 64 ms of serialisation.
	f := New(Config{BandwidthBits: 1e6, RxQueueCap: 16})
	payload := make([]byte, 8000)
	start := time.Now()
	if err := f.Deliver(Frame{Payload: payload}); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 50*time.Millisecond {
		t.Fatalf("paced delivery took %v, want ≈ 64ms", elapsed)
	}
}

func TestLinkSerialization(t *testing.T) {
	// Two concurrent senders share the link: total time ≈ sum of wire
	// times, not max.
	f := New(Config{BandwidthBits: 1e6, RxQueueCap: 16})
	payload := make([]byte, 4000) // 32 ms each
	start := time.Now()
	done := make(chan struct{}, 2)
	for i := 0; i < 2; i++ {
		go func() {
			_ = f.Deliver(Frame{Payload: payload})
			done <- struct{}{}
		}()
	}
	<-done
	<-done
	if elapsed := time.Since(start); elapsed < 55*time.Millisecond {
		t.Fatalf("two frames in %v, want ≈ 64ms serialised", elapsed)
	}
}

func TestClientsClosedLoop(t *testing.T) {
	f := New(Config{RxQueueCap: 8})
	payloads := [][]byte{[]byte("aa"), []byte("bb"), []byte("cc")}
	g, err := StartClients(f, 3, payloads)
	if err != nil {
		t.Fatal(err)
	}
	// Clients take strict round-robin turns on the medium, so the
	// delivery order is fully deterministic: frame i comes from client
	// i mod 3 with per-client sequence i div 3 — no scheduler luck.
	seen := map[int]int{}
	for i := 0; i < 60; i++ {
		fr, err := f.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if fr.ClientID != i%3 {
			t.Fatalf("frame %d from client %d, want %d", i, fr.ClientID, i%3)
		}
		if fr.Seq != i/3 {
			t.Fatalf("frame %d seq = %d, want %d", i, fr.Seq, i/3)
		}
		seen[fr.ClientID]++
	}
	f.Close()
	g.Stop()
	g.Stop() // idempotent
	if len(seen) != 3 {
		t.Fatalf("clients seen = %v, want 3 distinct", seen)
	}
	for c, n := range seen {
		if n != 20 {
			t.Fatalf("client %d sent %d frames, want 20", c, n)
		}
	}
}

func TestDeliverFaults(t *testing.T) {
	// drop-every=3 + fail-every=4 with drop taking precedence on op 12:
	// over ops 1..12 that is drops {3,6,9,12} and fails {4,8}.
	inj := faults.New(faults.Config{DropEvery: 3, FailEvery: 4})
	f := New(Config{RxQueueCap: 16, Inject: inj})
	delivered, failed := 0, 0
	for i := 0; i < 12; i++ {
		err := f.Deliver(Frame{ClientID: 1, Seq: i, Payload: []byte("img")})
		switch {
		case err == nil:
		case errors.Is(err, faults.ErrInjected):
			failed++
		default:
			t.Fatal(err)
		}
	}
	for {
		_, ok, err := f.TryRecv()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		delivered++
	}
	if f.Dropped() != 4 || failed != 2 || delivered != 6 {
		t.Fatalf("dropped=%d failed=%d delivered=%d, want 4/2/6", f.Dropped(), failed, delivered)
	}
}

func TestClientsBlockOnFullQueue(t *testing.T) {
	f := New(Config{RxQueueCap: 4})
	g, err := StartClients(f, 2, [][]byte{[]byte("x")})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond)
	// Queue holds at most cap + the frames in-flight inside Deliver.
	if n := f.RxLen(); n > 4 {
		t.Fatalf("RxLen = %d exceeds cap", n)
	}
	frames, _ := f.Stats()
	if frames > 8 {
		t.Fatalf("clients ran open-loop: %d frames delivered into cap-4 queue", frames)
	}
	f.Close()
	g.Stop()
}

func TestStartClientsValidation(t *testing.T) {
	f := New(Config{})
	if _, err := StartClients(f, 0, [][]byte{[]byte("x")}); err == nil {
		t.Fatal("zero clients accepted")
	}
	if _, err := StartClients(f, 1, nil); err == nil {
		t.Fatal("no payloads accepted")
	}
	if _, err := StartClients(f, 1, [][]byte{nil}); err == nil {
		t.Fatal("empty payload accepted")
	}
}

func TestClientExitKeepsRingRotating(t *testing.T) {
	// Delivery op 5 (client 1's second send) returns ErrInjected and
	// kills that client. Its ring slot must be retired so the rotation
	// keeps alternating between the survivors instead of stalling the
	// whole group the next time the turn reaches the empty slot.
	inj := faults.New(faults.Config{FailEvery: 5, WindowStart: 5, WindowLen: 1})
	f := New(Config{RxQueueCap: 8, Inject: inj})
	g, err := StartClients(f, 3, [][]byte{[]byte("x")})
	if err != nil {
		t.Fatal(err)
	}
	// Delivered order: ops 1–4 are c0,c1,c2,c0; op 5 fails (no frame,
	// client 1 exits); from there the ring alternates c2,c0,c2,c0,…
	counts := map[int]int{}
	for i := 0; i < 40; i++ {
		fr, err := f.Recv()
		if err != nil {
			t.Fatal(err)
		}
		want := []int{0, 1, 2, 0}[min(i, 3)]
		if i >= 4 {
			want = []int{2, 0}[(i-4)%2]
		}
		if fr.ClientID != want {
			t.Fatalf("frame %d from client %d, want %d", i, fr.ClientID, want)
		}
		counts[fr.ClientID]++
	}
	if counts[1] != 1 {
		t.Fatalf("dead client delivered %d frames, want 1", counts[1])
	}
	f.Close()
	g.Stop()
}

func TestAllClientsExitStopCleanly(t *testing.T) {
	// Every delivery fails: all clients die on their first turn. Stop
	// must still return (no goroutine parked on a dead ring).
	inj := faults.New(faults.Config{FailRate: 1})
	f := New(Config{RxQueueCap: 8, Inject: inj})
	g, err := StartClients(f, 3, [][]byte{[]byte("x")})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { g.Stop(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Stop hung after every client exited")
	}
	f.Close()
}
