package nic

import (
	"errors"
	"testing"
	"time"

	"dlbooster/internal/queue"
)

func TestDeliverRecv(t *testing.T) {
	f := New(Config{})
	if err := f.Deliver(Frame{ClientID: 1, Seq: 2, Payload: []byte("img")}); err != nil {
		t.Fatal(err)
	}
	fr, err := f.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if fr.ClientID != 1 || fr.Seq != 2 || string(fr.Payload) != "img" {
		t.Fatalf("frame = %+v", fr)
	}
	if fr.SentAt.IsZero() {
		t.Fatal("SentAt not stamped")
	}
	frames, bytes := f.Stats()
	if frames != 1 || bytes != 3 {
		t.Fatalf("stats = %d, %d", frames, bytes)
	}
}

func TestEmptyFrameRejected(t *testing.T) {
	f := New(Config{})
	if err := f.Deliver(Frame{}); err == nil {
		t.Fatal("empty frame accepted")
	}
}

func TestCloseUnblocks(t *testing.T) {
	f := New(Config{RxQueueCap: 1})
	_ = f.Deliver(Frame{Payload: []byte{1}})
	errc := make(chan error, 1)
	go func() { errc <- f.Deliver(Frame{Payload: []byte{2}}) }() // blocks: queue full
	time.Sleep(10 * time.Millisecond)
	f.Close()
	if err := <-errc; err == nil {
		t.Fatal("Deliver after close succeeded")
	}
	// The queued frame drains, then ErrClosed.
	if _, err := f.Recv(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Recv(); !errors.Is(err, queue.ErrClosed) {
		t.Fatalf("Recv on closed = %v", err)
	}
}

func TestBandwidthPacing(t *testing.T) {
	// 8 KB over a 1 Mbit/s link = 64 ms of serialisation.
	f := New(Config{BandwidthBits: 1e6, RxQueueCap: 16})
	payload := make([]byte, 8000)
	start := time.Now()
	if err := f.Deliver(Frame{Payload: payload}); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 50*time.Millisecond {
		t.Fatalf("paced delivery took %v, want ≈ 64ms", elapsed)
	}
}

func TestLinkSerialization(t *testing.T) {
	// Two concurrent senders share the link: total time ≈ sum of wire
	// times, not max.
	f := New(Config{BandwidthBits: 1e6, RxQueueCap: 16})
	payload := make([]byte, 4000) // 32 ms each
	start := time.Now()
	done := make(chan struct{}, 2)
	for i := 0; i < 2; i++ {
		go func() {
			_ = f.Deliver(Frame{Payload: payload})
			done <- struct{}{}
		}()
	}
	<-done
	<-done
	if elapsed := time.Since(start); elapsed < 55*time.Millisecond {
		t.Fatalf("two frames in %v, want ≈ 64ms serialised", elapsed)
	}
}

func TestClientsClosedLoop(t *testing.T) {
	f := New(Config{RxQueueCap: 8})
	payloads := [][]byte{[]byte("aa"), []byte("bb"), []byte("cc")}
	g, err := StartClients(f, 3, payloads)
	if err != nil {
		t.Fatal(err)
	}
	// Consume frames until all three clients have shown up; the Go
	// scheduler may let one client burst ahead, so bound by frame count
	// rather than expecting interleaving.
	seen := map[int]int{}
	for i := 0; i < 100000 && len(seen) < 3; i++ {
		fr, err := f.Recv()
		if err != nil {
			t.Fatal(err)
		}
		seen[fr.ClientID]++
	}
	f.Close()
	g.Stop()
	g.Stop() // idempotent
	if len(seen) != 3 {
		t.Fatalf("clients seen = %v, want 3 distinct", seen)
	}
}

func TestClientsBlockOnFullQueue(t *testing.T) {
	f := New(Config{RxQueueCap: 4})
	g, err := StartClients(f, 2, [][]byte{[]byte("x")})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond)
	// Queue holds at most cap + the frames in-flight inside Deliver.
	if n := f.RxLen(); n > 4 {
		t.Fatalf("RxLen = %d exceeds cap", n)
	}
	frames, _ := f.Stats()
	if frames > 8 {
		t.Fatalf("clients ran open-loop: %d frames delivered into cap-4 queue", frames)
	}
	f.Close()
	g.Stop()
}

func TestStartClientsValidation(t *testing.T) {
	f := New(Config{})
	if _, err := StartClients(f, 0, [][]byte{[]byte("x")}); err == nil {
		t.Fatal("zero clients accepted")
	}
	if _, err := StartClients(f, 1, nil); err == nil {
		t.Fatal("no payloads accepted")
	}
	if _, err := StartClients(f, 1, [][]byte{nil}); err == nil {
		t.Fatal("empty payload accepted")
	}
}
