// Doctor v2: the trend-aware doctor. Diagnose reads one snapshot pair;
// DiagnoseHistory runs it over every adjacent sample pair in a History
// ring and ranks what it sees across time — a verdict sustained for
// most of the window is the real story, a verdict that appears once is
// a transient spike, and a window that keeps switching verdicts is
// flapping (usually a load right at a capacity knee). This temporal
// judgement is what single-capture diagnosis structurally cannot make,
// and it is the sensing layer the ROADMAP's adaptive offloading
// controller actuates on.

package metrics

import (
	"fmt"
	"sort"
	"strings"
)

// Trend thresholds: a verdict holding at least sustainedShare of the
// windows is "sustained"; a run whose verdict changes on at least
// flapTransitionShare of adjacent window pairs (with ≥ 2 distinct
// verdicts) is "flapping"; a non-dominant verdict seen on at most
// transientShare of windows is reported as a transient spike. At least
// minTrendWindows window diagnoses are needed before any of these
// labels apply.
const (
	sustainedShare      = 0.6
	flapTransitionShare = 0.5
	transientShare      = 0.25
	minTrendWindows     = 3
)

// VerdictShare is one verdict's footprint across a history's windows.
type VerdictShare struct {
	// Verdict is the structural verdict code.
	Verdict string `json:"verdict"`
	// Windows is how many window diagnoses returned it; Share divides
	// by the total window count.
	Windows int     `json:"windows"`
	Share   float64 `json:"share"`
}

// TrendDiagnosis is the trend-aware doctor's report over a History:
// the dominant verdict with its persistence label (sustained /
// transient-dominated / flapping), the full ranked verdict footprint,
// the per-window verdict sequence (oldest first), and the latest
// single-window diagnosis for point-in-time detail.
type TrendDiagnosis struct {
	// Verdict is the dominant structural verdict across the windows.
	Verdict string `json:"verdict"`
	// Sustained reports the dominant verdict held ≥ sustainedShare of
	// the windows (with at least minTrendWindows windows).
	Sustained bool `json:"sustained"`
	// Flapping reports the verdict changed on ≥ flapTransitionShare of
	// adjacent window pairs — load sitting at a capacity knee.
	Flapping bool `json:"flapping"`
	// Windows is how many adjacent-sample diagnoses were run;
	// Transitions counts verdict changes between consecutive windows.
	Windows     int `json:"windows"`
	Transitions int `json:"transitions"`
	// Ranked is every verdict's footprint, most windows first.
	Ranked []VerdictShare `json:"ranked"`
	// Transients are non-dominant verdicts seen on ≤ transientShare of
	// windows — one-off spikes, not the story.
	Transients []VerdictShare `json:"transients,omitempty"`
	// Sequence is the per-window verdict list, oldest first.
	Sequence []string `json:"sequence"`
	// Latest is the newest window's full diagnosis.
	Latest *Diagnosis `json:"latest,omitempty"`
}

// DiagnoseHistory runs the bottleneck doctor over every adjacent sample
// pair in the history and ranks the verdicts across time. It needs at
// least two samples (one window); nil or shorter histories return nil.
func DiagnoseHistory(h *History) *TrendDiagnosis {
	samples := h.Samples()
	if len(samples) < 2 {
		return nil
	}
	td := &TrendDiagnosis{}
	var last *Diagnosis
	for i := 1; i < len(samples); i++ {
		d := Diagnose(samples[i].Snapshot, samples[i-1].Snapshot)
		if d == nil {
			continue
		}
		if n := len(td.Sequence); n > 0 && td.Sequence[n-1] != d.Verdict {
			td.Transitions++
		}
		td.Sequence = append(td.Sequence, d.Verdict)
		last = d
	}
	td.Windows = len(td.Sequence)
	if td.Windows == 0 {
		return nil
	}
	td.Latest = last

	counts := make(map[string]int)
	for _, v := range td.Sequence {
		counts[v]++
	}
	for v, n := range counts {
		td.Ranked = append(td.Ranked, VerdictShare{Verdict: v, Windows: n, Share: float64(n) / float64(td.Windows)})
	}
	sort.Slice(td.Ranked, func(i, j int) bool {
		if td.Ranked[i].Windows != td.Ranked[j].Windows {
			return td.Ranked[i].Windows > td.Ranked[j].Windows
		}
		return td.Ranked[i].Verdict < td.Ranked[j].Verdict
	})
	dominant := td.Ranked[0]
	td.Verdict = dominant.Verdict
	if td.Windows >= minTrendWindows {
		td.Sustained = dominant.Share >= sustainedShare
		td.Flapping = len(counts) >= 2 &&
			float64(td.Transitions) >= flapTransitionShare*float64(td.Windows-1)
		for _, vs := range td.Ranked[1:] {
			if vs.Share <= transientShare {
				td.Transients = append(td.Transients, vs)
			}
		}
	}
	return td
}

// Report renders the trend diagnosis as a human-readable block: the
// headline persistence sentence, the ranked footprint, and the latest
// window's full doctor report indented beneath it.
func (td *TrendDiagnosis) Report() string {
	if td == nil {
		return "trend doctor: need at least two history samples\n"
	}
	var b strings.Builder
	label := "intermittent"
	switch {
	case td.Flapping:
		label = "FLAPPING"
	case td.Sustained:
		label = "sustained"
	}
	fmt.Fprintf(&b, "trend verdict: %s (%s — %d/%d windows", td.Verdict, label, td.Ranked[0].Windows, td.Windows)
	if td.Transitions > 0 {
		fmt.Fprintf(&b, ", %d transition(s)", td.Transitions)
	}
	b.WriteString(")\n")
	for _, vs := range td.Ranked {
		fmt.Fprintf(&b, "  %-20s %3d/%d windows (%.0f%%)\n", vs.Verdict, vs.Windows, td.Windows, 100*vs.Share)
	}
	for _, vs := range td.Transients {
		fmt.Fprintf(&b, "  transient spike: %s (%d window(s)) — not the sustained story\n", vs.Verdict, vs.Windows)
	}
	if td.Latest != nil {
		b.WriteString("\nlatest window:\n")
		for _, line := range strings.Split(strings.TrimRight(td.Latest.Report(), "\n"), "\n") {
			b.WriteString("  " + line + "\n")
		}
	}
	return b.String()
}

// FleetTrendDiagnosis is the fleet rollup of the trend doctor: the
// merged-history trend (the fleet-wide story) plus each shard's own
// trend, so "the fleet is decoder-bound" and "only shard 2 flaps" are
// both visible.
type FleetTrendDiagnosis struct {
	// Fleet is the trend over the merged (MergeHistories) history.
	Fleet *TrendDiagnosis `json:"fleet"`
	// Shards holds each shard's own trend, index-aligned.
	Shards []*TrendDiagnosis `json:"shards"`
}

// DiagnoseFleetHistory merges the per-shard histories (MergeHistories,
// the same rollup MergeSnapshots performs point-in-time) and runs the
// trend doctor on the merged ring and on every shard. Returns nil when
// no shard has enough history.
func DiagnoseFleetHistory(hs []*History) *FleetTrendDiagnosis {
	fd := &FleetTrendDiagnosis{Fleet: DiagnoseHistory(MergeHistories(hs))}
	any := fd.Fleet != nil
	for _, h := range hs {
		td := DiagnoseHistory(h)
		fd.Shards = append(fd.Shards, td)
		any = any || td != nil
	}
	if !any {
		return nil
	}
	return fd
}

// Report renders the fleet trend: the merged story first, then one
// headline line per shard.
func (fd *FleetTrendDiagnosis) Report() string {
	if fd == nil {
		return "fleet trend doctor: no shard has enough history\n"
	}
	var b strings.Builder
	b.WriteString(fd.Fleet.Report())
	for i, td := range fd.Shards {
		if td == nil {
			fmt.Fprintf(&b, "shard %d: not enough history\n", i)
			continue
		}
		label := "intermittent"
		switch {
		case td.Flapping:
			label = "FLAPPING"
		case td.Sustained:
			label = "sustained"
		}
		fmt.Fprintf(&b, "shard %d: %s (%s, %d/%d windows)\n", i, td.Verdict, label, td.Ranked[0].Windows, td.Windows)
	}
	return b.String()
}
