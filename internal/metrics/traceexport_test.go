package metrics

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// decodedTrace mirrors the Chrome trace_event JSON for assertions.
type decodedTrace struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Cat  string         `json:"cat"`
		Ph   string         `json:"ph"`
		TS   float64        `json:"ts"`
		Dur  float64        `json:"dur"`
		PID  int            `json:"pid"`
		TID  int            `json:"tid"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

func traceSpan(base time.Time, batch int) Span {
	ms := func(d int) time.Time { return base.Add(time.Duration(d) * time.Millisecond) }
	return Span{
		Batch: batch, Images: 8, FPGA: 8,
		Collected: ms(0), BufAcquired: ms(1), Sealed: ms(5),
		Published: ms(6), Dispatched: ms(8), Synced: ms(11), Recycled: ms(12),
	}
}

func TestWriteChromeTrace(t *testing.T) {
	base := time.Now()
	spans := []Span{traceSpan(base, 1), traceSpan(base.Add(20*time.Millisecond), 2)}
	events := []Event{{Name: "degraded", Detail: "chaos", At: base.Add(15 * time.Millisecond)}}
	samples := []MiniSnapshot{{
		TakenAt: base.Add(10 * time.Millisecond),
		Queues:  map[string]QueueDepth{"full_batch": {Len: 3, Cap: 8}},
	}}

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, spans, events, samples); err != nil {
		t.Fatal(err)
	}
	var tr decodedTrace
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if tr.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", tr.DisplayTimeUnit)
	}

	var slices, instants, counters, meta int
	threadNames := map[string]bool{}
	for _, e := range tr.TraceEvents {
		if e.TS < 0 {
			t.Fatalf("negative ts %v in %q", e.TS, e.Name)
		}
		switch e.Ph {
		case "X":
			slices++
			if e.Dur <= 0 {
				t.Fatalf("slice %q (cat %s) has dur %v", e.Name, e.Cat, e.Dur)
			}
		case "i":
			instants++
			if e.Name != "degraded" {
				t.Fatalf("instant %q", e.Name)
			}
		case "C":
			counters++
			if e.Name != "queue:full_batch" {
				t.Fatalf("counter %q", e.Name)
			}
		case "M":
			meta++
			if e.Name == "thread_name" {
				threadNames[e.Args["name"].(string)] = true
			}
		default:
			t.Fatalf("unexpected phase %q", e.Ph)
		}
	}
	// Each complete span expands to 5 slices (envelope + 4 stages).
	if slices != 10 {
		t.Fatalf("slices = %d, want 10", slices)
	}
	if instants != 1 || counters != 1 {
		t.Fatalf("instants = %d, counters = %d", instants, counters)
	}
	for _, want := range []string{"events", "batch lifetime", "collect+assemble", "full-queue wait", "dispatch+copy+sync", "recycle"} {
		if !threadNames[want] {
			t.Fatalf("missing thread_name metadata %q (have %v)", want, threadNames)
		}
	}
}

func TestWriteChromeTraceSkipsUnreachedStages(t *testing.T) {
	// A span that never got past Published: only the assemble slice.
	base := time.Now()
	sp := Span{Batch: 1, Collected: base, Published: base.Add(2 * time.Millisecond)}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, []Span{sp}, nil, nil); err != nil {
		t.Fatal(err)
	}
	var tr decodedTrace
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatal(err)
	}
	for _, e := range tr.TraceEvents {
		if e.Ph == "X" && e.Cat != StageAssemble {
			t.Fatalf("unexpected slice cat %q for a half-finished span", e.Cat)
		}
	}
}

func TestSnapshotWriteChromeTrace(t *testing.T) {
	var nilSnap *PipelineSnapshot
	var buf bytes.Buffer
	if err := nilSnap.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("traceEvents")) {
		t.Fatalf("nil snapshot trace = %q", buf.String())
	}

	reg := NewRegistry()
	reg.CompleteSpan(traceSpan(time.Now(), 1))
	reg.Event("degraded", "x")
	buf.Reset()
	if err := reg.Snapshot().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var tr decodedTrace
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatal(err)
	}
	var slices, instants int
	for _, e := range tr.TraceEvents {
		switch e.Ph {
		case "X":
			slices++
		case "i":
			instants++
		}
	}
	if slices != 5 || instants != 1 {
		t.Fatalf("snapshot trace: %d slices, %d instants", slices, instants)
	}
}

func TestFlightDumpWriteChromeTrace(t *testing.T) {
	f := NewFlightRecorder(FlightConfig{})
	f.Span(traceSpan(time.Now(), 3))
	f.Note("cmd_revoked", "cmd 9 revoked")
	f.Sample(&PipelineSnapshot{
		TakenAt: time.Now(),
		Queues:  map[string]QueueDepth{"hugepage_free": {Len: 0, Cap: 4}},
	})
	var buf bytes.Buffer
	if err := f.Contents("test").WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var tr decodedTrace
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatal(err)
	}
	var haveNote, haveCounter bool
	for _, e := range tr.TraceEvents {
		if e.Ph == "i" && e.Name == "cmd_revoked" {
			haveNote = true
		}
		if e.Ph == "C" && e.Name == "queue:hugepage_free" {
			haveCounter = true
		}
	}
	if !haveNote || !haveCounter {
		t.Fatalf("dump trace missing note (%v) or counter (%v)", haveNote, haveCounter)
	}
}
