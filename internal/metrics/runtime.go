// Go runtime health gauges sampled via runtime/metrics: goroutine
// count, heap bytes, GC pause p99 and scheduler latency p99, registered
// as pull-based gauges so they land in PipelineSnapshot (and therefore
// in the Prometheus, JSON, table and history renderings) with zero
// hot-path cost — the runtime/metrics reads happen only at snapshot
// time. These are process-wide numbers: in a fleet, register them on
// exactly one shard's registry or the rollup sums them ×N (the same
// caveat docs/METRICS.md documents for shared-cache counters).

package metrics

import (
	rtmetrics "runtime/metrics"
)

// Runtime gauge names, as they appear in PipelineSnapshot.Gauges.
const (
	// GaugeGoroutines is the live goroutine count
	// (/sched/goroutines:goroutines).
	GaugeGoroutines = "go_goroutines"
	// GaugeHeapBytes is the live heap object bytes
	// (/memory/classes/heap/objects:bytes).
	GaugeHeapBytes = "go_heap_bytes"
	// GaugeGCPauseP99Ms is the p99 stop-the-world GC pause in
	// milliseconds (/gc/pauses:seconds distribution).
	GaugeGCPauseP99Ms = "go_gc_pause_p99_ms"
	// GaugeSchedLatencyP99Ms is the p99 goroutine scheduling latency in
	// milliseconds (/sched/latencies:seconds distribution).
	GaugeSchedLatencyP99Ms = "go_sched_latency_p99_ms"
)

// runtimeSamples maps the gauges to their runtime/metrics sample names.
var runtimeSamples = []struct {
	gauge, sample string
	histP99Ms     bool
}{
	{GaugeGoroutines, "/sched/goroutines:goroutines", false},
	{GaugeHeapBytes, "/memory/classes/heap/objects:bytes", false},
	{GaugeGCPauseP99Ms, "/gc/pauses:seconds", true},
	{GaugeSchedLatencyP99Ms, "/sched/latencies:seconds", true},
}

// RegisterRuntimeGauges registers the Go runtime health gauges on the
// registry. Each snapshot re-reads runtime/metrics; nothing touches the
// pipeline hot path. Safe on a nil registry (no-op). Register on one
// registry per process — these are process-wide values, and per-shard
// registration would sum them ×N in the fleet rollup.
func RegisterRuntimeGauges(r *Registry) {
	if r == nil {
		return
	}
	for _, rs := range runtimeSamples {
		rs := rs
		sample := make([]rtmetrics.Sample, 1)
		sample[0].Name = rs.sample
		r.RegisterGauge(rs.gauge, func() float64 {
			rtmetrics.Read(sample)
			v := sample[0].Value
			switch v.Kind() {
			case rtmetrics.KindUint64:
				return float64(v.Uint64())
			case rtmetrics.KindFloat64:
				return v.Float64()
			case rtmetrics.KindFloat64Histogram:
				if rs.histP99Ms {
					return histP99(v.Float64Histogram()) * 1000
				}
			}
			return 0
		})
	}
}

// histP99 estimates the 99th percentile of a runtime/metrics
// Float64Histogram from its bucket counts (returns the lower bound of
// the bucket holding the p99 mass; 0 for an empty histogram).
func histP99(h *rtmetrics.Float64Histogram) float64 {
	if h == nil {
		return 0
	}
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	goal := uint64(float64(total) * 0.99)
	if goal == 0 {
		goal = 1
	}
	var seen uint64
	for i, c := range h.Counts {
		seen += c
		if seen >= goal {
			// Buckets[i] is the lower bound of Counts[i]; the first
			// bucket's bound can be -Inf, the last's +Inf.
			lo := h.Buckets[i]
			if lo < 0 {
				lo = 0
			}
			return lo
		}
	}
	return h.Buckets[len(h.Buckets)-1]
}
