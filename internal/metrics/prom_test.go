package metrics

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"
)

// The minimal Prometheus text-format validator behind the golden test:
// it enforces what a strict scraper enforces — metric-name syntax,
// HELP/TYPE comment shape, HELP/TYPE pairing, TYPE before the first
// sample of its family, parseable label blocks with only the three legal
// escapes (\\, \", \n), and float-parseable sample values.

var (
	promNameRe  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	promLabelRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
	promTypes   = map[string]bool{"counter": true, "gauge": true, "summary": true, "histogram": true, "untyped": true}
)

type promValidator struct {
	helped map[string]bool
	typed  map[string]string
	seen   map[string]bool // families with at least one sample
}

func validatePromText(text string) (*promValidator, error) {
	v := &promValidator{helped: map[string]bool{}, typed: map[string]string{}, seen: map[string]bool{}}
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := v.comment(line); err != nil {
				return nil, fmt.Errorf("line %d: %w (%q)", ln+1, err, line)
			}
			continue
		}
		if err := v.sample(line); err != nil {
			return nil, fmt.Errorf("line %d: %w (%q)", ln+1, err, line)
		}
	}
	for fam := range v.seen {
		if !v.helped[fam] {
			return nil, fmt.Errorf("family %s has samples but no HELP", fam)
		}
	}
	for fam := range v.helped {
		if _, ok := v.typed[fam]; !ok {
			return nil, fmt.Errorf("family %s has HELP but no TYPE", fam)
		}
	}
	return v, nil
}

func (v *promValidator) comment(line string) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 3 || fields[0] != "#" {
		return fmt.Errorf("malformed comment")
	}
	switch fields[1] {
	case "HELP":
		if !promNameRe.MatchString(fields[2]) {
			return fmt.Errorf("bad HELP metric name %q", fields[2])
		}
		if v.helped[fields[2]] {
			return fmt.Errorf("duplicate HELP for %s", fields[2])
		}
		v.helped[fields[2]] = true
	case "TYPE":
		if len(fields) != 4 || !promTypes[fields[3]] {
			return fmt.Errorf("bad TYPE")
		}
		if !promNameRe.MatchString(fields[2]) {
			return fmt.Errorf("bad TYPE metric name %q", fields[2])
		}
		if _, dup := v.typed[fields[2]]; dup {
			return fmt.Errorf("duplicate TYPE for %s", fields[2])
		}
		if v.seen[fields[2]] {
			return fmt.Errorf("TYPE for %s after its first sample", fields[2])
		}
		v.typed[fields[2]] = fields[3]
	default:
		return fmt.Errorf("unknown comment keyword %q", fields[1])
	}
	return nil
}

func (v *promValidator) sample(line string) error {
	name := line
	rest := ""
	if i := strings.IndexAny(line, "{ "); i >= 0 {
		name, rest = line[:i], line[i:]
	}
	if !promNameRe.MatchString(name) {
		return fmt.Errorf("bad metric name %q", name)
	}
	if strings.HasPrefix(rest, "{") {
		end, err := parsePromLabels(rest)
		if err != nil {
			return err
		}
		rest = rest[end:]
	}
	value := strings.TrimSpace(rest)
	if _, err := strconv.ParseFloat(value, 64); err != nil {
		return fmt.Errorf("bad sample value %q", value)
	}
	// _count/_sum samples belong to their summary family.
	fam := name
	for _, suffix := range []string{"_count", "_sum"} {
		base := strings.TrimSuffix(name, suffix)
		if base != name && v.typed[base] == "summary" {
			fam = base
		}
	}
	if _, ok := v.typed[fam]; !ok {
		return fmt.Errorf("sample for %s precedes its TYPE", name)
	}
	v.seen[fam] = true
	return nil
}

// parsePromLabels validates a {label="value",...} block, returning the
// index just past the closing brace. Escapes inside values are limited
// to \\, \" and \n.
func parsePromLabels(s string) (int, error) {
	i := 1 // past '{'
	for {
		j := i
		for j < len(s) && s[j] != '=' {
			j++
		}
		if j == len(s) {
			return 0, fmt.Errorf("unterminated label block")
		}
		if !promLabelRe.MatchString(s[i:j]) {
			return 0, fmt.Errorf("bad label name %q", s[i:j])
		}
		if j+1 >= len(s) || s[j+1] != '"' {
			return 0, fmt.Errorf("label value not quoted")
		}
		k := j + 2
		for k < len(s) && s[k] != '"' {
			if s[k] == '\\' {
				if k+1 >= len(s) || (s[k+1] != '\\' && s[k+1] != '"' && s[k+1] != 'n') {
					return 0, fmt.Errorf("illegal escape %q in label value", s[k:k+2])
				}
				k++
			}
			if s[k] == '\n' {
				return 0, fmt.Errorf("raw newline in label value")
			}
			k++
		}
		if k == len(s) {
			return 0, fmt.Errorf("unterminated label value")
		}
		k++ // past closing quote
		switch {
		case k < len(s) && s[k] == ',':
			i = k + 1
		case k < len(s) && s[k] == '}':
			return k + 1, nil
		default:
			return 0, fmt.Errorf("expected , or } after label value")
		}
	}
}

func TestPrometheusOutputValidates(t *testing.T) {
	reg := NewRegistry()
	reg.Add("images_decoded_total", 64)
	reg.Add("decode_errors_total", 1)
	reg.RegisterGauge("degraded", func() float64 { return 0 })
	reg.RegisterQueue("full_batch", func() int { return 3 }, func() int { return 8 })
	reg.Observe(StageFPGADecode, 7.5)
	reg.Observe(StageFPGADecode, 9.25)
	reg.Event("degraded", "chaos")
	reg.CompleteSpan(Span{Batch: 1, Collected: time.Now(), Recycled: time.Now()})

	var b strings.Builder
	if err := reg.Snapshot().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	v, err := validatePromText(b.String())
	if err != nil {
		t.Fatalf("exposition does not validate: %v\n%s", err, b.String())
	}
	for fam, typ := range map[string]string{
		"dlbooster_images_decoded_total": "counter",
		"dlbooster_degraded":             "gauge",
		"dlbooster_queue_depth":          "gauge",
		"dlbooster_stage_latency_ms":     "summary",
		"dlbooster_events_total":         "counter",
	} {
		if v.typed[fam] != typ {
			t.Fatalf("family %s typed %q, want %q", fam, v.typed[fam], typ)
		}
		if !v.seen[fam] {
			t.Fatalf("family %s has no samples", fam)
		}
	}
}

func TestPrometheusLabelEscaping(t *testing.T) {
	// A queue name carrying every character the format escapes — plus a
	// tab, which Go's %q would have escaped illegally (\t is not a legal
	// exposition escape; the format wants the raw byte).
	hostile := "q\"uo\\te\nnew\tline"
	reg := NewRegistry()
	reg.RegisterQueue(hostile, func() int { return 1 }, func() int { return 2 })

	var b strings.Builder
	if err := reg.Snapshot().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if _, err := validatePromText(b.String()); err != nil {
		t.Fatalf("hostile label does not validate: %v\n%s", err, b.String())
	}
	want := `queue="q\"uo\\te\nnew` + "\tline\""
	if !strings.Contains(b.String(), want) {
		t.Fatalf("escaped label %q not found in:\n%s", want, b.String())
	}
}

func TestPromValidatorRejectsBadInput(t *testing.T) {
	for _, bad := range []string{
		"no_type_metric 1",                                       // sample without TYPE
		"# HELP m help\n# TYPE m counter\nm{x=\"\\t\"} 1",        // illegal escape
		"# HELP m help\n# TYPE m counter\nm nope",                // bad value
		"# HELP m help\n# TYPE m counter\n# TYPE m counter\nm 1", // duplicate TYPE
		"# HELP 0bad help\n# TYPE 0bad counter\n0bad 1",          // bad name
		"# HELP m help\n# TYPE m wat\nm 1",                       // bad type
		"# HELP m help\nm 1",                                     // HELP without TYPE
		"# HELP m help\nm 1\n# TYPE m counter",                   // TYPE after first sample
	} {
		if _, err := validatePromText(bad); err == nil {
			t.Errorf("validator accepted %q", bad)
		}
	}
}
