// Fleet rollup: merging per-shard PipelineSnapshots into one
// FleetSnapshot, and the fleet doctor that diagnoses each shard
// individually before summarising the spread ("shard 3 is
// decoder-bound, the rest are healthy"). Counters, queue depths and
// gauges add across shards; stage summaries merge with exact counts
// and weighted statistics; per-shard spans stay on their shard so the
// trace export can give every shard its own process track.

package metrics

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// FleetSnapshot is the unified telemetry view of a sharded fleet: the
// per-shard snapshots in shard order, plus their rollup. Shards holds
// exactly what each shard's registry reported (nil entries for shards
// without telemetry); Total is MergeSnapshots over the non-nil ones.
type FleetSnapshot struct {
	TakenAt time.Time           `json:"taken_at"`
	Shards  []*PipelineSnapshot `json:"shards"`
	Total   *PipelineSnapshot   `json:"total"`
}

// JSON renders the fleet snapshot as indented JSON — the
// /metrics.json payload of a sharded dlserve.
func (f *FleetSnapshot) JSON() ([]byte, error) {
	return json.MarshalIndent(f, "", "  ")
}

// MergeSummaries combines two stage summaries. Count is exact (the sum
// — the conservation property the fleet tests assert), Mean is the
// count-weighted mean, Min/Max are true extremes, and the percentiles
// and standard deviation are count-weighted estimates: without the raw
// samples a merged p95 cannot be exact, so the rollup is honest about
// being an approximation (docs/METRICS.md).
func MergeSummaries(a, b Summary) Summary {
	if a.Count == 0 {
		return b
	}
	if b.Count == 0 {
		return a
	}
	n := a.Count + b.Count
	wa, wb := float64(a.Count)/float64(n), float64(b.Count)/float64(n)
	mean := wa*a.Mean + wb*b.Mean
	// Pooled population variance from per-summary moments:
	// E[x²] = stddev² + mean², merged var = E[x²]_merged − mean².
	ex2 := wa*(a.StdDevPopulationEst*a.StdDevPopulationEst+a.Mean*a.Mean) +
		wb*(b.StdDevPopulationEst*b.StdDevPopulationEst+b.Mean*b.Mean)
	variance := ex2 - mean*mean
	if variance < 0 {
		variance = 0
	}
	return Summary{
		Count:               n,
		Mean:                mean,
		P50:                 wa*a.P50 + wb*b.P50,
		P95:                 wa*a.P95 + wb*b.P95,
		P99:                 wa*a.P99 + wb*b.P99,
		Min:                 math.Min(a.Min, b.Min),
		Max:                 math.Max(a.Max, b.Max),
		StdDevPopulationEst: math.Sqrt(variance),
	}
}

// MergeSnapshots rolls per-shard snapshots up into a FleetSnapshot.
// Counters sum (conservation: no image, retry or shed is counted twice
// or dropped), queue depths sum len and cap, gauges sum (so the
// `degraded` gauge of the rollup counts degraded shards), stage
// summaries merge via MergeSummaries, and events interleave in time
// order. Recent spans are not merged into Total — they stay on their
// shard so the trace export can render one process track per shard.
// Nil entries (shards without telemetry) are skipped.
func MergeSnapshots(shards []*PipelineSnapshot) *FleetSnapshot {
	f := &FleetSnapshot{
		Shards: shards,
		Total: &PipelineSnapshot{
			Counters: make(map[string]int64),
			Gauges:   make(map[string]float64),
			Stages:   make(map[string]Summary),
			Queues:   make(map[string]QueueDepth),
		},
	}
	t := f.Total
	for _, s := range shards {
		if s == nil {
			continue
		}
		if s.TakenAt.After(f.TakenAt) {
			f.TakenAt = s.TakenAt
		}
		if s.UptimeSeconds > t.UptimeSeconds {
			t.UptimeSeconds = s.UptimeSeconds
		}
		for k, v := range s.Counters {
			t.Counters[k] += v
		}
		for k, v := range s.Gauges {
			t.Gauges[k] += v
		}
		for k, v := range s.Stages {
			t.Stages[k] = MergeSummaries(t.Stages[k], v)
		}
		for k, q := range s.Queues {
			cur := t.Queues[k]
			t.Queues[k] = QueueDepth{Len: cur.Len + q.Len, Cap: cur.Cap + q.Cap}
		}
		for k, v := range s.Cores {
			if t.Cores == nil {
				t.Cores = make(map[string]float64)
			}
			t.Cores[k] += v
		}
		t.Events = append(t.Events, s.Events...)
		t.SpansCompleted += s.SpansCompleted
	}
	t.TakenAt = f.TakenAt
	sort.SliceStable(t.Events, func(i, j int) bool { return t.Events[i].At.Before(t.Events[j].At) })
	return f
}

// FleetDiagnosis is the fleet doctor's report: one Diagnosis per shard
// (nil for shards without telemetry), the rollup diagnosis over the
// merged Total, the fleet verdict (the rollup's), and the one-line
// per-shard spread — "shard 3 is decoder-bound, the rest are healthy".
type FleetDiagnosis struct {
	Verdict string       `json:"verdict"`
	Summary string       `json:"summary"`
	Shards  []*Diagnosis `json:"shards"`
	Fleet   *Diagnosis   `json:"fleet"`
}

// DiagnoseFleet diagnoses every shard independently, then the merged
// rollup, so the report can say which shard is the outlier instead of
// blurring N shards into one average. prev may be nil; when it has the
// same shard count as cur, per-shard deltas use the matching shard.
func DiagnoseFleet(cur, prev *FleetSnapshot) *FleetDiagnosis {
	if cur == nil {
		return nil
	}
	fd := &FleetDiagnosis{}
	for i, s := range cur.Shards {
		var p *PipelineSnapshot
		if prev != nil && len(prev.Shards) == len(cur.Shards) {
			p = prev.Shards[i]
		}
		fd.Shards = append(fd.Shards, Diagnose(s, p))
	}
	var prevTotal *PipelineSnapshot
	if prev != nil {
		prevTotal = prev.Total
	}
	fd.Fleet = Diagnose(cur.Total, prevTotal)
	if fd.Fleet != nil {
		fd.Verdict = fd.Fleet.Verdict
	}
	fd.Summary = verdictSpread(fd.Shards)
	return fd
}

// verdictSpread renders the per-shard verdicts as one sentence,
// naming outlier shards individually against the most common verdict.
func verdictSpread(shards []*Diagnosis) string {
	verdicts := make([]string, len(shards))
	counts := make(map[string]int)
	for i, d := range shards {
		v := VerdictInconclusive
		if d != nil {
			v = d.Verdict
		}
		verdicts[i] = v
		counts[v]++
	}
	if len(verdicts) == 0 {
		return "no shards"
	}
	// The most common verdict, ties broken deterministically by name.
	majority, best := "", 0
	for _, v := range sortedKeys(counts) {
		if counts[v] > best {
			majority, best = v, counts[v]
		}
	}
	if best == len(verdicts) {
		if len(verdicts) == 1 {
			return fmt.Sprintf("shard 0 is %s", majority)
		}
		return fmt.Sprintf("all %d shards are %s", len(verdicts), majority)
	}
	var outliers []string
	for i, v := range verdicts {
		if v != majority {
			outliers = append(outliers, fmt.Sprintf("shard %d is %s", i, v))
		}
	}
	if best <= 1 && len(outliers) >= len(verdicts)-1 {
		// No real majority: name every shard.
		all := make([]string, len(verdicts))
		for i, v := range verdicts {
			all[i] = fmt.Sprintf("shard %d is %s", i, v)
		}
		return strings.Join(all, ", ")
	}
	rest := "the rest are " + majority
	if best == 1 {
		rest = "the other is " + majority
	}
	return strings.Join(outliers, ", ") + ", " + rest
}

// Report renders the fleet diagnosis: the spread sentence, the rollup
// report, then each shard's own report — the sharded dlbench -doctor
// and dlserve shutdown output.
func (fd *FleetDiagnosis) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fleet: %s\n", fd.Summary)
	if fd.Fleet != nil {
		b.WriteString("\nrollup ")
		b.WriteString(fd.Fleet.Report())
	}
	for i, d := range fd.Shards {
		if d == nil {
			continue
		}
		fmt.Fprintf(&b, "\nshard %d ", i)
		b.WriteString(d.Report())
	}
	return b.String()
}
