// Windowed telemetry: the History ring of periodic snapshot samples and
// the Sampler goroutine that fills it. Every other observability surface
// in this package is point-in-time — PipelineSnapshot is cumulative-only
// and the doctor reads one capture — but the questions the SLO scorecard
// and the trend-aware doctor answer ("decoder-bound for the last 45 s"
// vs "one transient spike", "what throughput did the last window
// sustain") only exist over windows. A History keeps the last N samples,
// each carrying the interval view since its predecessor, so windowed
// rates, count-weighted windowed stage percentiles (via the same
// histogram-merge machinery the fleet rollup uses) and queue-depth
// trends all fall out of one bounded ring.

package metrics

import (
	"encoding/json"
	"math"
	"sync"
	"time"
)

// HistorySample is one entry of a History ring: the trimmed cumulative
// snapshot at sample time, the rate-form delta against the previous
// sample, and the interval stage summaries (SubtractSummaries of the
// cumulative pair — exact counts and means, order statistics inherited
// from the interval's end, the same honesty contract as MergeSummaries).
type HistorySample struct {
	// TakenAt is when the sample was captured.
	TakenAt time.Time `json:"taken_at"`
	// Seconds is the measured interval length: the wall-clock gap
	// between this sample's TakenAt and its predecessor's, not the
	// sampler's nominal tick. Under CPU saturation time.Ticker drops
	// ticks and one sample spans several nominal intervals; every rate
	// in Delta is derived from this measured value, so windowed rates
	// and SLO burn math stay honest when the sampler stalls. The first
	// sample covers the whole registry uptime.
	Seconds float64 `json:"seconds"`
	// Snapshot is the cumulative snapshot, trimmed of events and recent
	// spans so a long ring stays bounded (events live in Delta instead).
	Snapshot *PipelineSnapshot `json:"snapshot"`
	// Delta is the interval view against the previous sample (against
	// the registry's start for the first sample): counter differences,
	// per-second rates, and the events recorded inside the interval.
	Delta *SnapshotDelta `json:"delta"`
	// IntervalStages are the per-stage summaries of observations that
	// landed inside this interval.
	IntervalStages map[string]Summary `json:"interval_stages,omitempty"`
}

// SubtractSummaries returns the interval view of a cumulative stage
// summary pair: Count is exactly cur − prev, Mean is the exact interval
// mean recovered from the sums (mean × count), and the order statistics
// (percentiles, min, max, stddev) are inherited from cur — without the
// raw samples an interval p95 cannot be exact, so like MergeSummaries
// the result is honest about being an approximation. A prev with no
// samples returns cur unchanged; an interval with no new samples (or a
// restarted registry, cur.Count < prev.Count) returns a zero Summary.
func SubtractSummaries(cur, prev Summary) Summary {
	if prev.Count == 0 {
		return cur
	}
	n := cur.Count - prev.Count
	if n <= 0 {
		return Summary{}
	}
	mean := (cur.Mean*float64(cur.Count) - prev.Mean*float64(prev.Count)) / float64(n)
	out := cur
	out.Count = n
	out.Mean = mean
	return out
}

// QueueTrend is one queue's behaviour across a window: fill fraction at
// the window's edges, the mean fill, and the least-squares slope of fill
// per second, classified into a direction.
type QueueTrend struct {
	// First and Last are the fill fractions (len/cap) at the window's
	// oldest and newest samples.
	First float64 `json:"first"`
	Last  float64 `json:"last"`
	// Mean is the average fill across the window's samples.
	Mean float64 `json:"mean"`
	// SlopePerSec is the least-squares slope of fill fraction per
	// second — positive means the queue is filling.
	SlopePerSec float64 `json:"slope_per_sec"`
	// Direction is "rising", "falling" or "flat" (|slope| under
	// trendFlatSlope is flat).
	Direction string `json:"direction"`
}

// trendFlatSlope is the |fill/s| below which a queue trend reads "flat":
// a queue would take over a minute to traverse its full capacity.
const trendFlatSlope = 1.0 / 60

// WindowStats is the rolled-up view of the samples inside one window:
// summed counter deltas and their rates, count-weighted merged interval
// stage summaries, per-queue trends, the latest gauges, and every event
// recorded inside the window. It is what SLO evaluation and the
// trend-aware doctor consume.
type WindowStats struct {
	// Seconds is the window's measured length (sum of sample intervals).
	Seconds float64 `json:"seconds"`
	// Samples is how many history samples the window covered.
	Samples int `json:"samples"`
	// From and To bound the window (first and last sample times).
	From time.Time `json:"from"`
	To   time.Time `json:"to"`
	// Counters are the summed interval deltas; Rates divide by Seconds.
	Counters map[string]int64   `json:"counters"`
	Rates    map[string]float64 `json:"rates"`
	// Stages are the window's stage summaries: the samples' interval
	// summaries merged count-weighted via MergeSummaries.
	Stages map[string]Summary `json:"stages,omitempty"`
	// Queues holds the per-queue fill trends across the window.
	Queues map[string]QueueTrend `json:"queues,omitempty"`
	// Gauges are the newest sample's gauge readings.
	Gauges map[string]float64 `json:"gauges,omitempty"`
	// Events are the events recorded inside the window, oldest first.
	Events []Event `json:"events,omitempty"`
}

// Rate returns one counter's per-second rate over the window (0 when
// unknown or the window is empty).
func (w *WindowStats) Rate(name string) float64 {
	if w == nil {
		return 0
	}
	return w.Rates[name]
}

// History is a bounded ring of HistorySamples, oldest evicted first.
// Record is cheap (one trim, one delta); the windowed queries walk the
// ring under the lock. All methods are safe on a nil *History and
// return zero values there — the same cost contract as Registry, so a
// pipeline without a sampler pays nothing.
type History struct {
	mu   sync.Mutex
	cap  int
	ring []HistorySample
	next int
	n    int64 // lifetime samples recorded
}

// DefaultHistorySamples is the ring capacity when HistoryConfig leaves
// it zero: at the default 1 s sampling interval, two minutes of history.
const DefaultHistorySamples = 120

// NewHistory returns an empty ring holding up to capacity samples
// (DefaultHistorySamples when capacity ≤ 0).
func NewHistory(capacity int) *History {
	if capacity <= 0 {
		capacity = DefaultHistorySamples
	}
	return &History{cap: capacity}
}

// trimSnapshot drops the unbounded parts of a snapshot (events, recent
// spans) so a ring of samples stays small; interval events are kept in
// the sample's Delta instead.
func trimSnapshot(s *PipelineSnapshot) *PipelineSnapshot {
	t := *s
	t.Events = nil
	t.RecentSpans = nil
	return &t
}

// Record appends one cumulative snapshot as a sample, computing its
// interval delta and interval stage summaries against the previous
// sample. Nil receivers and nil snapshots are ignored, so callers can
// thread an optional history unconditionally.
func (h *History) Record(s *PipelineSnapshot) {
	if h == nil || s == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	var prev *HistorySample
	if h.len() > 0 {
		prev = h.at(h.len() - 1)
	}
	sample := HistorySample{TakenAt: s.TakenAt, Snapshot: trimSnapshot(s)}
	if prev != nil {
		sample.Delta = s.Delta(prev.Snapshot)
		// Stamp the measured elapsed time and re-derive the rates from
		// it: the snapshots' own wall clocks, not the uptime diff (wrong
		// after a registry restart or across merged fleet snapshots) and
		// not the nominal sampler tick (wrong when the ticker drops
		// ticks under CPU saturation).
		sample.Seconds = sample.Delta.Seconds
		if !prev.TakenAt.IsZero() && s.TakenAt.After(prev.TakenAt) {
			sample.Seconds = s.TakenAt.Sub(prev.TakenAt).Seconds()
		}
		sample.Delta.Rebase(sample.Seconds)
		sample.IntervalStages = make(map[string]Summary, len(s.Stages))
		for k, cur := range s.Stages {
			iv := SubtractSummaries(cur, prev.Snapshot.Stages[k])
			if iv.Count > 0 {
				sample.IntervalStages[k] = iv
			}
		}
	} else {
		sample.Delta = s.Delta(nil)
		sample.Seconds = sample.Delta.Seconds
		sample.IntervalStages = s.Stages
	}
	if len(h.ring) < h.cap {
		h.ring = append(h.ring, sample)
	} else {
		h.ring[h.next] = sample
		h.next = (h.next + 1) % h.cap
	}
	h.n++
}

// len and at index the ring oldest-first under h.mu.
func (h *History) len() int { return len(h.ring) }
func (h *History) at(i int) *HistorySample {
	if len(h.ring) < h.cap {
		return &h.ring[i]
	}
	return &h.ring[(h.next+i)%h.cap]
}

// Len returns how many samples the ring currently holds.
func (h *History) Len() int {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.len()
}

// Recorded returns the lifetime sample count (the ring keeps only the
// most recent Cap of them).
func (h *History) Recorded() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n
}

// Cap returns the ring capacity (0 for a nil history).
func (h *History) Cap() int {
	if h == nil {
		return 0
	}
	return h.cap
}

// Samples returns a copy of the ring, oldest first.
func (h *History) Samples() []HistorySample {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]HistorySample, h.len())
	for i := range out {
		out[i] = *h.at(i)
	}
	return out
}

// Latest returns the newest sample, or nil when the ring is empty.
func (h *History) Latest() *HistorySample {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.len() == 0 {
		return nil
	}
	s := *h.at(h.len() - 1)
	return &s
}

// Window rolls up the samples whose interval ended within the trailing
// window of the given length (0 or negative covers the whole ring): the
// summed counter deltas with rates, the count-weighted merged interval
// stage summaries, per-queue fill trends, newest gauges and the events
// recorded inside the window. The first sample of a history covers the
// whole registry uptime, so a window that reaches it reports since
// registry start. Nil histories and empty rings return nil.
func (h *History) Window(window time.Duration) *WindowStats {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	n := h.len()
	if n == 0 {
		return nil
	}
	newest := h.at(n - 1).TakenAt
	start := 0
	if window > 0 {
		cutoff := newest.Add(-window)
		for start < n-1 && !h.at(start).TakenAt.After(cutoff) {
			start++
		}
	}
	w := &WindowStats{
		Counters: make(map[string]int64),
		Rates:    make(map[string]float64),
		Stages:   make(map[string]Summary),
		From:     h.at(start).TakenAt,
		To:       newest,
	}
	fills := make(map[string][]fillPoint)
	for i := start; i < n; i++ {
		s := h.at(i)
		w.Samples++
		if s.Delta != nil {
			w.Seconds += s.Delta.Seconds
			for k, v := range s.Delta.Counters {
				w.Counters[k] += v
			}
			w.Events = append(w.Events, s.Delta.Events...)
		}
		for k, iv := range s.IntervalStages {
			w.Stages[k] = MergeSummaries(w.Stages[k], iv)
		}
		at := s.TakenAt.Sub(w.From).Seconds()
		for k, q := range s.Snapshot.Queues {
			if q.Cap > 0 {
				fills[k] = append(fills[k], fillPoint{t: at, fill: float64(q.Len) / float64(q.Cap)})
			}
		}
		if i == n-1 {
			w.Gauges = s.Snapshot.Gauges
		}
	}
	if w.Seconds > 0 {
		for k, v := range w.Counters {
			w.Rates[k] = float64(v) / w.Seconds
		}
	}
	if len(fills) > 0 {
		w.Queues = make(map[string]QueueTrend, len(fills))
		for k, pts := range fills {
			w.Queues[k] = queueTrend(pts)
		}
	}
	return w
}

// fillPoint is one (elapsed-seconds, fill-fraction) observation of a
// queue inside a window.
type fillPoint struct{ t, fill float64 }

// queueTrend fits a least-squares line through (time, fill) points and
// classifies the slope.
func queueTrend(pts []fillPoint) QueueTrend {
	tr := QueueTrend{First: pts[0].fill, Last: pts[len(pts)-1].fill}
	var sumT, sumF float64
	for _, p := range pts {
		sumT += p.t
		sumF += p.fill
	}
	n := float64(len(pts))
	tr.Mean = sumF / n
	meanT := sumT / n
	var num, den float64
	for _, p := range pts {
		num += (p.t - meanT) * (p.fill - tr.Mean)
		den += (p.t - meanT) * (p.t - meanT)
	}
	if den > 0 {
		tr.SlopePerSec = num / den
	}
	switch {
	case math.Abs(tr.SlopePerSec) < trendFlatSlope:
		tr.Direction = "flat"
	case tr.SlopePerSec > 0:
		tr.Direction = "rising"
	default:
		tr.Direction = "falling"
	}
	return tr
}

// HistoryDump is the serialisable view of a History — the dlserve
// /history.json payload: ring geometry plus the samples oldest first.
type HistoryDump struct {
	Capacity int             `json:"capacity"`
	Recorded int64           `json:"recorded"`
	Samples  []HistorySample `json:"samples"`
}

// JSON renders the history as indented JSON (a nil history renders an
// empty dump, so HTTP handlers need no nil check).
func (h *History) JSON() ([]byte, error) {
	d := HistoryDump{Capacity: h.Cap(), Recorded: h.Recorded(), Samples: h.Samples()}
	return json.MarshalIndent(d, "", "  ")
}

// MergeHistories rolls per-shard histories into one fleet history the
// way MergeSnapshots rolls snapshots: samples align by position from the
// newest end (shards sampled by one fleet sampler tick together), each
// aligned set's cumulative snapshots merge via MergeSnapshots, and the
// merged samples re-derive their deltas and interval summaries from the
// merged cumulative pairs — so counter conservation carries over from
// the snapshot merge. Nil and empty histories are skipped; the result's
// capacity is the largest input capacity (nil when none have samples).
func MergeHistories(hs []*History) *History {
	depth, capacity := 0, 0
	samples := make([][]HistorySample, 0, len(hs))
	for _, h := range hs {
		if h == nil {
			continue
		}
		s := h.Samples()
		if len(s) == 0 {
			continue
		}
		samples = append(samples, s)
		if depth == 0 || len(s) < depth {
			depth = len(s)
		}
		if h.Cap() > capacity {
			capacity = h.Cap()
		}
	}
	if depth == 0 {
		return nil
	}
	merged := NewHistory(capacity)
	for i := depth; i >= 1; i-- {
		snaps := make([]*PipelineSnapshot, 0, len(samples))
		for _, s := range samples {
			snaps = append(snaps, s[len(s)-i].Snapshot)
		}
		merged.Record(MergeSnapshots(snaps).Total)
	}
	return merged
}

// SamplerConfig tunes a Sampler. The zero value is usable: 1 s interval,
// DefaultHistorySamples of history.
type SamplerConfig struct {
	// Interval is the sampling period (default 1 s).
	Interval time.Duration
	// Capacity bounds the history ring (default DefaultHistorySamples).
	Capacity int
}

// Sampler periodically snapshots one registry into a History ring — the
// sensing loop under the SLO scorecard and the trend-aware doctor. It
// costs the pipeline's hot path nothing: Snapshot is pull-based, and
// without a sampler (or with a nil registry) no goroutine exists at all.
// All methods are safe on a nil *Sampler.
type Sampler struct {
	reg  *Registry
	hist *History
	tick time.Duration

	mu      sync.Mutex
	stop    chan struct{}
	done    chan struct{}
	started bool
}

// NewSampler builds a sampler over the registry. A nil registry returns
// a nil sampler — Start, Stop and History on it are no-ops, preserving
// the package's nil-registry cost contract end to end.
func NewSampler(reg *Registry, cfg SamplerConfig) *Sampler {
	if reg == nil {
		return nil
	}
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	return &Sampler{reg: reg, hist: NewHistory(cfg.Capacity), tick: cfg.Interval}
}

// History returns the sampler's ring (nil for a nil sampler). It is
// valid before Start and after Stop; Record keeps working either way.
func (s *Sampler) History() *History {
	if s == nil {
		return nil
	}
	return s.hist
}

// Start launches the sampling goroutine; it records one sample
// immediately so the history is never empty while running. Idempotent.
func (s *Sampler) Start() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return
	}
	s.started = true
	s.stop = make(chan struct{})
	s.done = make(chan struct{})
	stop, done := s.stop, s.done
	s.mu.Unlock()
	go func() {
		defer close(done)
		s.hist.Record(s.reg.Snapshot())
		t := time.NewTicker(s.tick)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				s.hist.Record(s.reg.Snapshot())
			}
		}
	}()
}

// Stop halts the sampling goroutine and joins it, recording one final
// sample so the history covers the full run. Idempotent; safe without
// Start.
func (s *Sampler) Stop() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.started {
		s.mu.Unlock()
		return
	}
	s.started = false
	stop, done := s.stop, s.done
	s.mu.Unlock()
	close(stop)
	<-done
	s.hist.Record(s.reg.Snapshot())
}
