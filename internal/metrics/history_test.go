package metrics

import (
	"encoding/json"
	"testing"
	"time"
)

// histSnap builds a synthetic cumulative snapshot at t0+offset with the
// given cumulative decode count and queue fill.
func histSnap(t0 time.Time, offset time.Duration, decoded int64, fullLen int) *PipelineSnapshot {
	return &PipelineSnapshot{
		TakenAt:       t0.Add(offset),
		UptimeSeconds: offset.Seconds(),
		Counters:      map[string]int64{"images_decoded_total": decoded},
		Gauges:        map[string]float64{"degraded": 0},
		Stages: map[string]Summary{
			StageFPGADecode: {Count: int(decoded), Mean: 2, P50: 2, P95: 3, P99: 4},
		},
		Queues: map[string]QueueDepth{
			"full_batch": {Len: fullLen, Cap: 8},
		},
	}
}

func TestSubtractSummaries(t *testing.T) {
	prev := Summary{Count: 100, Mean: 2, P95: 3}
	cur := Summary{Count: 150, Mean: 4, P95: 9, P99: 11}
	iv := SubtractSummaries(cur, prev)
	if iv.Count != 50 {
		t.Fatalf("interval count = %d, want 50", iv.Count)
	}
	// Interval mean is exact: (150×4 − 100×2) / 50 = 8.
	if iv.Mean != 8 {
		t.Fatalf("interval mean = %v, want 8", iv.Mean)
	}
	// Order statistics inherit from cur (documented approximation).
	if iv.P95 != 9 || iv.P99 != 11 {
		t.Fatalf("interval order stats = %+v, want cur's", iv)
	}
	if got := SubtractSummaries(cur, Summary{}); got != cur {
		t.Fatalf("empty prev should return cur, got %+v", got)
	}
	// Registry restart (cur behind prev) and empty intervals go to zero.
	if got := SubtractSummaries(prev, cur); got.Count != 0 {
		t.Fatalf("restart subtract = %+v, want zero", got)
	}
	if got := SubtractSummaries(cur, cur); got.Count != 0 {
		t.Fatalf("empty interval = %+v, want zero", got)
	}
}

func TestHistoryRingEviction(t *testing.T) {
	t0 := time.Now()
	h := NewHistory(3)
	if h.Cap() != 3 {
		t.Fatalf("Cap = %d, want 3", h.Cap())
	}
	for i := 0; i < 5; i++ {
		h.Record(histSnap(t0, time.Duration(i)*time.Second, int64(100*i), 0))
	}
	if h.Len() != 3 || h.Recorded() != 5 {
		t.Fatalf("Len = %d Recorded = %d, want 3 and 5", h.Len(), h.Recorded())
	}
	samples := h.Samples()
	for i, want := range []float64{2, 3, 4} {
		if got := samples[i].Snapshot.UptimeSeconds; got != want {
			t.Fatalf("sample %d uptime = %v, want %v (oldest-first after eviction)", i, got, want)
		}
	}
	if l := h.Latest(); l == nil || l.Snapshot.UptimeSeconds != 4 {
		t.Fatalf("Latest = %+v, want the newest sample", l)
	}
	// Interval deltas diff adjacent samples.
	if d := samples[2].Delta; d.Counters["images_decoded_total"] != 100 || d.Seconds != 1 {
		t.Fatalf("interval delta = %+v, want 100 over 1s", d)
	}
}

func TestHistoryNilContract(t *testing.T) {
	var h *History
	h.Record(histSnap(time.Now(), 0, 1, 0))
	if h.Len() != 0 || h.Cap() != 0 || h.Recorded() != 0 {
		t.Fatal("nil history should report zero sizes")
	}
	if h.Samples() != nil || h.Latest() != nil || h.Window(0) != nil {
		t.Fatal("nil history queries should return nil")
	}
	if _, err := h.JSON(); err != nil {
		t.Fatalf("nil history JSON errored: %v", err)
	}
	var s *Sampler
	s.Start()
	s.Stop()
	if s.History() != nil {
		t.Fatal("nil sampler History != nil")
	}
	if NewSampler(nil, SamplerConfig{}) != nil {
		t.Fatal("NewSampler(nil registry) should return nil")
	}
	var w *WindowStats
	if w.Rate("x") != 0 {
		t.Fatal("nil window Rate != 0")
	}
}

// TestHistoryNilZeroAlloc pins the no-sampler cost contract: recording
// into and querying a nil history allocates nothing.
func TestHistoryNilZeroAlloc(t *testing.T) {
	var h *History
	snap := histSnap(time.Now(), time.Second, 100, 0)
	if n := testing.AllocsPerRun(100, func() {
		h.Record(snap)
		_ = h.Window(time.Second)
		var s *Sampler
		s.Start()
		s.Stop()
	}); n != 0 {
		t.Fatalf("nil history/sampler path allocates %v per op, want 0", n)
	}
}

// TestHistoryWindowConservation is the window-conservation property:
// the window rollup's summed counters equal the whole-interval delta
// between the window's edge snapshots — adjacent interval deltas
// neither drop nor double-count.
func TestHistoryWindowConservation(t *testing.T) {
	t0 := time.Now()
	h := NewHistory(16)
	snaps := make([]*PipelineSnapshot, 0, 10)
	decoded := int64(0)
	for i := 0; i < 10; i++ {
		decoded += int64(37 * (i + 1)) // uneven increments
		s := histSnap(t0, time.Duration(i)*time.Second, decoded, i%8)
		s.Counters["serve_shed_total"] = int64(3 * i)
		snaps = append(snaps, s)
		h.Record(s)
	}
	w := h.Window(0) // whole ring
	whole := snaps[len(snaps)-1].Delta(snaps[0])
	// The first sample's delta covers registry start → sample 0, so the
	// window's counters are whole-interval plus that lead-in.
	lead := snaps[0].Delta(nil)
	for _, k := range []string{"images_decoded_total", "serve_shed_total"} {
		want := whole.Counters[k] + lead.Counters[k]
		if got := w.Counters[k]; got != want {
			t.Fatalf("window counter %s = %d, want %d (conservation)", k, got, want)
		}
	}
	if wantSec := whole.Seconds + lead.Seconds; w.Seconds != wantSec {
		t.Fatalf("window seconds = %v, want %v", w.Seconds, wantSec)
	}
	// Stage counts conserve too: merged interval summaries count every
	// observation exactly once.
	if got, want := w.Stages[StageFPGADecode].Count, int(decoded); got != want {
		t.Fatalf("window stage count = %d, want %d", got, want)
	}
	// A trailing sub-window also conserves against its own edges.
	sub := h.Window(3 * time.Second)
	first := len(snaps) - sub.Samples
	wantSub := snaps[len(snaps)-1].Delta(snaps[first-1])
	if got := sub.Counters["images_decoded_total"]; got != wantSub.Counters["images_decoded_total"] {
		t.Fatalf("sub-window counter = %d, want %d", got, wantSub.Counters["images_decoded_total"])
	}
}

func TestHistoryWindowQueueTrend(t *testing.T) {
	t0 := time.Now()
	rising := NewHistory(8)
	for i := 0; i < 6; i++ {
		rising.Record(histSnap(t0, time.Duration(i)*time.Second, int64(100*i), i+1))
	}
	w := rising.Window(0)
	tr, ok := w.Queues["full_batch"]
	if !ok {
		t.Fatalf("no trend for full_batch: %+v", w.Queues)
	}
	if tr.Direction != "rising" || tr.SlopePerSec <= 0 {
		t.Fatalf("trend = %+v, want rising", tr)
	}
	if tr.First != 1.0/8 || tr.Last != 6.0/8 {
		t.Fatalf("trend edges = %+v", tr)
	}

	flat := NewHistory(8)
	for i := 0; i < 6; i++ {
		flat.Record(histSnap(t0, time.Duration(i)*time.Second, int64(100*i), 4))
	}
	if tr := flat.Window(0).Queues["full_batch"]; tr.Direction != "flat" {
		t.Fatalf("constant fill trend = %+v, want flat", tr)
	}

	falling := NewHistory(8)
	for i := 0; i < 6; i++ {
		falling.Record(histSnap(t0, time.Duration(i)*time.Second, int64(100*i), 7-i))
	}
	if tr := falling.Window(0).Queues["full_batch"]; tr.Direction != "falling" {
		t.Fatalf("draining fill trend = %+v, want falling", tr)
	}
}

func TestHistoryWindowStagePercentiles(t *testing.T) {
	t0 := time.Now()
	h := NewHistory(8)
	// Sample 1: 100 obs at mean 2 / p99 4. Sample 2 adds 300 obs whose
	// cumulative mean moves to 5 → interval mean (400×5−100×2)/300 = 6.
	h.Record(histSnap(t0, 0, 100, 0))
	s2 := histSnap(t0, time.Second, 400, 0)
	s2.Stages[StageFPGADecode] = Summary{Count: 400, Mean: 5, P95: 8, P99: 10}
	h.Record(s2)
	w := h.Window(0)
	st := w.Stages[StageFPGADecode]
	if st.Count != 400 {
		t.Fatalf("window stage count = %d, want 400", st.Count)
	}
	// Count-weighted merged mean: (100×2 + 300×6)/400 = 5 — the true
	// cumulative mean, recovered through the interval split.
	if st.Mean != 5 {
		t.Fatalf("window stage mean = %v, want 5", st.Mean)
	}
	// p99 is the count-weighted blend of the interval p99s (100×4 +
	// 300×10)/400 = 8.5 — an estimate, but count-weighted as documented.
	if st.P99 != 8.5 {
		t.Fatalf("window stage p99 = %v, want 8.5", st.P99)
	}
}

func TestHistoryJSONRoundTrip(t *testing.T) {
	t0 := time.Now()
	h := NewHistory(4)
	for i := 0; i < 3; i++ {
		h.Record(histSnap(t0, time.Duration(i)*time.Second, int64(10*i), i))
	}
	data, err := h.JSON()
	if err != nil {
		t.Fatalf("JSON: %v", err)
	}
	var dump HistoryDump
	if err := json.Unmarshal(data, &dump); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if dump.Capacity != 4 || dump.Recorded != 3 || len(dump.Samples) != 3 {
		t.Fatalf("dump geometry = %+v", dump)
	}
	if dump.Samples[2].Delta.Counters["images_decoded_total"] != 10 {
		t.Fatalf("dump interval delta = %+v", dump.Samples[2].Delta)
	}
}

func TestHistoryRecordTrimsUnbounded(t *testing.T) {
	s := histSnap(time.Now(), 0, 10, 0)
	s.Events = []Event{{Name: "degraded", At: s.TakenAt}}
	s.RecentSpans = []Span{{}}
	h := NewHistory(4)
	h.Record(s)
	got := h.Samples()[0]
	if got.Snapshot.Events != nil || got.Snapshot.RecentSpans != nil {
		t.Fatal("sample snapshot should drop events and recent spans")
	}
	// The interval delta still carries the window's events.
	if len(got.Delta.Events) != 1 || got.Delta.Events[0].Name != "degraded" {
		t.Fatalf("interval events lost: %+v", got.Delta.Events)
	}
}

func TestMergeHistoriesConservation(t *testing.T) {
	t0 := time.Now()
	a, b := NewHistory(8), NewHistory(8)
	for i := 0; i < 5; i++ {
		a.Record(histSnap(t0, time.Duration(i)*time.Second, int64(100*i), 2))
		b.Record(histSnap(t0, time.Duration(i)*time.Second, int64(40*i), 6))
	}
	m := MergeHistories([]*History{a, b, nil, NewHistory(8)})
	if m == nil || m.Len() != 5 {
		t.Fatalf("merged history len = %d, want 5", m.Len())
	}
	// Each merged sample's cumulative counter is the shard sum, and the
	// interval deltas re-derive from the merged cumulatives.
	last := m.Latest()
	if got := last.Snapshot.Counters["images_decoded_total"]; got != 4*140 {
		t.Fatalf("merged cumulative = %d, want %d", got, 4*140)
	}
	if got := last.Delta.Counters["images_decoded_total"]; got != 140 {
		t.Fatalf("merged interval delta = %d, want 140 (100+40)", got)
	}
	// Queue caps sum across shards: 8+8 at each sample.
	if q := last.Snapshot.Queues["full_batch"]; q.Len != 8 || q.Cap != 16 {
		t.Fatalf("merged queue = %+v, want 8/16", q)
	}
	// Window conservation holds on the merged ring too.
	w := m.Window(0)
	if got := w.Counters["images_decoded_total"]; got != 4*140 {
		t.Fatalf("merged window counter = %d, want %d", got, 4*140)
	}
	if MergeHistories(nil) != nil || MergeHistories([]*History{nil}) != nil {
		t.Fatal("merge of no histories should be nil")
	}
}

func TestMergeHistoriesUnevenDepths(t *testing.T) {
	t0 := time.Now()
	a, b := NewHistory(8), NewHistory(8)
	for i := 0; i < 6; i++ {
		a.Record(histSnap(t0, time.Duration(i)*time.Second, int64(10*i), 0))
	}
	for i := 4; i < 6; i++ { // b started sampling late
		b.Record(histSnap(t0, time.Duration(i)*time.Second, int64(1000+int64(i)), 0))
	}
	m := MergeHistories([]*History{a, b})
	// Alignment is from the newest end: depth = min(6, 2) = 2.
	if m.Len() != 2 {
		t.Fatalf("merged len = %d, want 2 (shallowest shard)", m.Len())
	}
	if got := m.Latest().Snapshot.Counters["images_decoded_total"]; got != 50+1005 {
		t.Fatalf("merged newest = %d, want %d", got, 50+1005)
	}
}

func TestSamplerLifecycle(t *testing.T) {
	r := NewRegistry()
	r.Add("images_decoded_total", 10)
	s := NewSampler(r, SamplerConfig{Interval: 5 * time.Millisecond, Capacity: 64})
	s.Start()
	s.Start() // idempotent
	deadline := time.After(2 * time.Second)
	for s.History().Len() < 3 {
		select {
		case <-deadline:
			t.Fatalf("sampler recorded %d samples in 2s, want ≥ 3", s.History().Len())
		case <-time.After(5 * time.Millisecond):
		}
	}
	r.Add("images_decoded_total", 5)
	s.Stop()
	s.Stop() // idempotent
	n := s.History().Len()
	if n < 3 {
		t.Fatalf("history len after stop = %d", n)
	}
	// Stop records a final sample, so the newest cumulative includes
	// everything counted before Stop returned.
	if got := s.History().Latest().Snapshot.Counters["images_decoded_total"]; got != 15 {
		t.Fatalf("final sample counter = %d, want 15", got)
	}
	time.Sleep(20 * time.Millisecond)
	if s.History().Len() != n {
		t.Fatal("sampler kept recording after Stop")
	}
	// Restartable.
	s.Start()
	s.Stop()
	if s.History().Len() <= n {
		t.Fatal("restarted sampler recorded nothing")
	}
}

// BenchmarkHistoryNilRecord pins the zero-overhead contract for
// pipelines without a sampler: the nil-history path is a few ns and
// allocation-free.
func BenchmarkHistoryNilRecord(b *testing.B) {
	var h *History
	snap := histSnap(time.Now(), time.Second, 100, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Record(snap)
	}
}

// BenchmarkHistoryRecord measures the live sampling cost — off the hot
// path (the Sampler calls it once per interval), but kept cheap.
func BenchmarkHistoryRecord(b *testing.B) {
	h := NewHistory(128)
	t0 := time.Now()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Record(histSnap(t0, time.Duration(i)*time.Millisecond, int64(i), i%8))
	}
}

// TestSamplerStalledTicks is the regression test for the uniform-tick
// assumption: under CPU saturation time.Ticker drops ticks, so one
// recorded sample really spans several nominal intervals. The sample
// must carry the measured wall-clock gap (TakenAt differences) and
// derive its rates from it — not from what a per-tick uptime delta
// claims the interval was.
func TestSamplerStalledTicks(t *testing.T) {
	t0 := time.Now()
	h := NewHistory(8)
	h.Record(histSnap(t0, 0, 0, 0))
	// The sampler stalls: the next sample lands 3s later (two dropped
	// ticks) while a uniform-tick clock would stamp the nominal 1s.
	stalled := histSnap(t0, 3*time.Second, 300, 0)
	stalled.UptimeSeconds = 1
	h.Record(stalled)
	s := h.Latest()
	if s.Seconds < 2.999 || s.Seconds > 3.001 {
		t.Fatalf("sample seconds = %v, want the 3s wall-clock gap", s.Seconds)
	}
	if s.Delta.Seconds != s.Seconds {
		t.Fatalf("delta seconds %v != sample seconds %v", s.Delta.Seconds, s.Seconds)
	}
	if r := s.Delta.Rate("images_decoded_total"); r < 99 || r > 101 {
		t.Fatalf("rate = %v img/s, want ~100 (300 images over 3 measured seconds)", r)
	}
	if r := h.Window(0).Rate("images_decoded_total"); r < 99 || r > 101 {
		t.Fatalf("window rate = %v img/s, want ~100", r)
	}
}

// TestSamplerRestartElapsed pins the other failure of uptime-diff
// timing: a registry restart between captures makes the uptime diff
// negative, which silently zeroed every interval rate. The wall clock
// still measures the interval, so Seconds stays positive and the rates
// stay derivable (the negative counter diff itself is the documented
// restart signal).
func TestSamplerRestartElapsed(t *testing.T) {
	t0 := time.Now()
	h := NewHistory(8)
	old := histSnap(t0, 0, 500, 0)
	old.UptimeSeconds = 40
	h.Record(old)
	fresh := histSnap(t0, 2*time.Second, 80, 0)
	fresh.UptimeSeconds = 1 // restarted registry: uptime reset below prev
	h.Record(fresh)
	s := h.Latest()
	if s.Seconds < 1.999 || s.Seconds > 2.001 {
		t.Fatalf("restart sample seconds = %v, want the 2s wall-clock gap", s.Seconds)
	}
	// 80 − 500 = −420 over 2s: the rate is computed, not zeroed.
	if r := s.Delta.Rate("images_decoded_total"); r > -209 || r < -211 {
		t.Fatalf("restart rate = %v, want −210 over the measured gap", r)
	}
}
