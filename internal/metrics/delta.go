package metrics

// SnapshotDelta is the rate-form view of the interval between two
// snapshots: counter differences and per-second rates over the elapsed
// seconds, plus the events recorded inside the interval. It exists
// because snapshot counters are cumulative-only — comparing two raw
// /metrics.json captures by hand is the footgun Delta removes — and it
// is what the bottleneck doctor and benchdiff consume.
type SnapshotDelta struct {
	// Seconds is the interval length (uptime difference, or the whole
	// uptime when diffed against nil).
	Seconds float64 `json:"seconds"`
	// Counters holds cur − prev for every counter present in cur. A
	// counter absent from prev diffs against zero; a negative value
	// means the registry restarted between captures.
	Counters map[string]int64 `json:"counters"`
	// Rates is Counters divided by Seconds (zero when Seconds is 0).
	Rates map[string]float64 `json:"rates"`
	// SpansCompleted is the span-count difference.
	SpansCompleted int64 `json:"spans_completed"`
	// Events are the events recorded strictly after prev was taken.
	Events []Event `json:"events,omitempty"`
}

// Delta diffs the snapshot against an earlier one, returning rate-form
// counters over the interval. A nil prev diffs against the registry's
// start: every counter whole, Seconds = uptime. A nil s returns nil.
func (s *PipelineSnapshot) Delta(prev *PipelineSnapshot) *SnapshotDelta {
	if s == nil {
		return nil
	}
	d := &SnapshotDelta{
		Counters:       make(map[string]int64, len(s.Counters)),
		Rates:          make(map[string]float64, len(s.Counters)),
		SpansCompleted: s.SpansCompleted,
		Seconds:        s.UptimeSeconds,
	}
	if prev != nil {
		d.Seconds = s.UptimeSeconds - prev.UptimeSeconds
		d.SpansCompleted = s.SpansCompleted - prev.SpansCompleted
	}
	for k, v := range s.Counters {
		if prev != nil {
			v -= prev.Counters[k]
		}
		d.Counters[k] = v
		if d.Seconds > 0 {
			d.Rates[k] = float64(v) / d.Seconds
		}
	}
	for _, e := range s.Events {
		if prev == nil || e.At.After(prev.TakenAt) {
			d.Events = append(d.Events, e)
		}
	}
	return d
}

// Rebase re-times the delta onto a measured interval length: Seconds
// is replaced and every rate re-derived from the counter differences.
// History.Record uses it to stamp the real wall-clock elapsed time
// (TakenAt differences) over the uptime-diff estimate — under CPU
// saturation time.Ticker drops ticks and one "interval" silently spans
// several, a registry restart makes the uptime diff negative (zeroing
// every rate), and a merged fleet snapshot's UptimeSeconds is a
// cross-shard maximum; the sample wall clock is right in all three
// cases. Non-positive seconds clear the rates — an unmeasurable
// interval makes no rate claims.
func (d *SnapshotDelta) Rebase(seconds float64) {
	if d == nil {
		return
	}
	d.Seconds = seconds
	for k := range d.Rates {
		delete(d.Rates, k)
	}
	if seconds <= 0 {
		return
	}
	for k, v := range d.Counters {
		d.Rates[k] = float64(v) / seconds
	}
}

// Rate returns the per-second rate of one counter over the interval
// (0 when the counter is unknown or the interval empty).
func (d *SnapshotDelta) Rate(name string) float64 {
	if d == nil {
		return 0
	}
	return d.Rates[name]
}
