package metrics

import (
	"math"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Add(3)
	c.Add(4)
	if c.Value() != 7 {
		t.Fatalf("Value = %d", c.Value())
	}
	if c.Rate(2) != 3.5 {
		t.Fatalf("Rate = %v", c.Rate(2))
	}
	if c.Rate(0) != 0 {
		t.Fatalf("Rate(0) = %v", c.Rate(0))
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Add(1)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 16000 {
		t.Fatalf("Value = %d", c.Value())
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Percentile(50) != 0 || h.Min() != 0 || h.Max() != 0 || h.StdDev() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
}

func TestHistogramStats(t *testing.T) {
	var h Histogram
	for _, v := range []float64{5, 1, 3, 2, 4} {
		h.Add(v)
	}
	if h.Count() != 5 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Mean() != 3 {
		t.Fatalf("Mean = %v", h.Mean())
	}
	if h.Min() != 1 || h.Max() != 5 {
		t.Fatalf("Min/Max = %v/%v", h.Min(), h.Max())
	}
	if p := h.Percentile(50); p != 3 {
		t.Fatalf("P50 = %v", p)
	}
	if p := h.Percentile(100); p != 5 {
		t.Fatalf("P100 = %v", p)
	}
	if sd := h.StdDev(); math.Abs(sd-math.Sqrt2) > 1e-9 {
		t.Fatalf("StdDev = %v", sd)
	}
}

func TestHistogramAddAfterPercentile(t *testing.T) {
	var h Histogram
	h.Add(10)
	_ = h.Percentile(50) // sorts
	h.Add(1)             // must invalidate sort
	if h.Min() != 1 {
		t.Fatalf("Min after late Add = %v", h.Min())
	}
}

func TestSummary(t *testing.T) {
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.Add(float64(i))
	}
	s := h.Summarize()
	if s.Count != 100 || s.P50 != 50 || s.P95 != 95 || s.P99 != 99 || s.Min != 1 || s.Max != 100 {
		t.Fatalf("summary = %+v", s)
	}
	if s.String() == "" {
		t.Fatal("empty String()")
	}
}

// TestPercentileProperty: percentiles are monotone in p and bounded by
// min/max.
func TestPercentileProperty(t *testing.T) {
	f := func(vals []float64, pa, pb uint8) bool {
		if len(vals) == 0 {
			return true
		}
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		var h Histogram
		for _, v := range vals {
			h.Add(v)
		}
		lo, hi := float64(pa%101), float64(pb%101)
		if lo > hi {
			lo, hi = hi, lo
		}
		plo, phi := h.Percentile(lo), h.Percentile(hi)
		sorted := append([]float64(nil), vals...)
		sort.Float64s(sorted)
		return plo <= phi && plo >= sorted[0] && phi <= sorted[len(sorted)-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBusyTracker(t *testing.T) {
	b := NewBusyTracker()
	b.Record("preprocess", 3)
	b.Record("preprocess", 1)
	b.Record("kernels", 9.5)
	if b.Busy("preprocess") != 4 {
		t.Fatalf("Busy = %v", b.Busy("preprocess"))
	}
	cores := b.Cores(10)
	if cores["preprocess"] != 0.4 || cores["kernels"] != 0.95 {
		t.Fatalf("Cores = %v", cores)
	}
	if total := b.TotalCores(10); math.Abs(total-1.35) > 1e-12 {
		t.Fatalf("TotalCores = %v", total)
	}
	names := b.Components()
	if len(names) != 2 || names[0] != "kernels" || names[1] != "preprocess" {
		t.Fatalf("Components = %v", names)
	}
	if c := b.Cores(0); c["preprocess"] != 0 {
		t.Fatalf("Cores(0) = %v", c)
	}
}

func TestBusyTrackerRejectsNegative(t *testing.T) {
	b := NewBusyTracker()
	defer func() {
		if recover() == nil {
			t.Fatal("negative busy time accepted")
		}
	}()
	b.Record("x", -1)
}

func TestBusyTrackerConcurrent(t *testing.T) {
	b := NewBusyTracker()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				b.Record("c", 0.001)
			}
		}()
	}
	wg.Wait()
	if got := b.Busy("c"); math.Abs(got-8) > 1e-9 {
		t.Fatalf("Busy = %v, want 8", got)
	}
}
