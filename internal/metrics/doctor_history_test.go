package metrics

import (
	"strings"
	"testing"
	"time"
)

// trendSnap builds one cumulative snapshot for the trend tests: decode
// throughput 100 img/s with the queue fills chosen per sample.
func trendSnap(t0 time.Time, sec int, fullLen, transLen int) *PipelineSnapshot {
	return &PipelineSnapshot{
		TakenAt:       t0.Add(time.Duration(sec) * time.Second),
		UptimeSeconds: float64(sec),
		Counters: map[string]int64{
			"images_decoded_total": int64(100 * sec),
			"fpga0_cmds_total":     int64(100 * sec),
		},
		Gauges: map[string]float64{"degraded": 0},
		Stages: map[string]Summary{
			StageFPGADecode: {Count: 100 * sec, Mean: 10, P50: 10, P95: 12},
			StageBatchE2E:   {Count: 12 * sec, Mean: 20, P95: 30},
		},
		Queues: map[string]QueueDepth{
			"full_batch":    {Len: fullLen, Cap: 8},
			"trans0_full":   {Len: transLen, Cap: 2},
			"hugepage_free": {Len: 4, Cap: 8},
		},
	}
}

// TestDiagnoseHistorySustainedVsTransient is the acceptance-criteria
// test: the trend doctor tells a sustained decoder-bound window apart
// from a single transient spike that a point-in-time doctor would
// report with the same confidence.
func TestDiagnoseHistorySustainedVsTransient(t *testing.T) {
	t0 := time.Now()

	// Sustained: every window shows the decoder-bound signature
	// (downstream drained, decoder saturated at util 1.0).
	sustained := NewHistory(16)
	for i := 0; i <= 10; i++ {
		sustained.Record(trendSnap(t0, i, 0, 0))
	}
	td := DiagnoseHistory(sustained)
	if td == nil || td.Verdict != VerdictDecoderBound {
		t.Fatalf("sustained verdict = %+v, want %s", td, VerdictDecoderBound)
	}
	if !td.Sustained || td.Flapping {
		t.Fatalf("sustained run labelled sustained=%v flapping=%v:\n%s", td.Sustained, td.Flapping, td.Report())
	}
	if td.Windows != 10 || td.Ranked[0].Share != 1.0 {
		t.Fatalf("footprint = %+v", td.Ranked)
	}

	// Transient: nine healthy windows around one dispatcher-bound spike.
	// A single-capture doctor at the spike sample would report
	// dispatcher-bound at 0.9 confidence; the trend doctor keeps the
	// healthy story and files the spike as transient.
	transient := NewHistory(16)
	for i := 0; i <= 10; i++ {
		full, trans := 4, 1 // mid fills → healthy
		if i == 5 {
			full, trans = 8, 0 // one spike: Full backed up, engines starved
		}
		transient.Record(trendSnap(t0, i, full, trans))
	}
	td = DiagnoseHistory(transient)
	if td.Verdict != VerdictHealthy {
		t.Fatalf("transient-spike verdict = %s, want %s:\n%s", td.Verdict, VerdictHealthy, td.Report())
	}
	if !td.Sustained {
		t.Fatalf("dominant healthy share %.2f should read sustained:\n%s", td.Ranked[0].Share, td.Report())
	}
	if len(td.Transients) != 1 || td.Transients[0].Verdict != VerdictDispatcherBound {
		t.Fatalf("transients = %+v, want one dispatcher-bound spike", td.Transients)
	}
	// The spike sample itself still diagnoses dispatcher-bound — the
	// difference is temporal judgement, not a weaker doctor.
	spike := Diagnose(trendSnap(t0, 5, 8, 0), trendSnap(t0, 4, 4, 1))
	if spike.Verdict != VerdictDispatcherBound {
		t.Fatalf("point-in-time spike verdict = %s", spike.Verdict)
	}
	if !strings.Contains(td.Report(), "transient spike") {
		t.Fatalf("report lacks the transient callout:\n%s", td.Report())
	}
}

func TestDiagnoseHistoryFlapping(t *testing.T) {
	t0 := time.Now()
	h := NewHistory(16)
	for i := 0; i <= 10; i++ {
		if i%2 == 0 {
			h.Record(trendSnap(t0, i, 0, 0)) // decoder-bound signature
		} else {
			h.Record(trendSnap(t0, i, 8, 0)) // dispatcher-bound signature
		}
	}
	td := DiagnoseHistory(h)
	if !td.Flapping {
		t.Fatalf("alternating verdicts not labelled flapping:\n%s", td.Report())
	}
	if td.Sustained {
		t.Fatalf("flapping run labelled sustained:\n%s", td.Report())
	}
	if td.Transitions < 5 {
		t.Fatalf("transitions = %d, want the alternation visible", td.Transitions)
	}
	if !strings.Contains(td.Report(), "FLAPPING") {
		t.Fatalf("report lacks FLAPPING:\n%s", td.Report())
	}
}

func TestDiagnoseHistoryTooShort(t *testing.T) {
	if DiagnoseHistory(nil) != nil {
		t.Fatal("nil history should diagnose nil")
	}
	h := NewHistory(4)
	h.Record(trendSnap(time.Now(), 0, 0, 0))
	if DiagnoseHistory(h) != nil {
		t.Fatal("single-sample history should diagnose nil")
	}
	// Two samples = one window: a verdict, but no trend labels yet.
	h.Record(trendSnap(time.Now(), 1, 0, 0))
	td := DiagnoseHistory(h)
	if td == nil || td.Windows != 1 {
		t.Fatalf("two-sample trend = %+v", td)
	}
	if td.Sustained || td.Flapping {
		t.Fatal("one window is below minTrendWindows — no persistence labels")
	}
	var nilTD *TrendDiagnosis
	if !strings.Contains(nilTD.Report(), "two history samples") {
		t.Fatal("nil trend report should explain itself")
	}
}

func TestDiagnoseFleetHistory(t *testing.T) {
	t0 := time.Now()
	// Shard 0 decoder-bound throughout; shard 1 healthy throughout. The
	// merged fleet history sums queues (16-cap full queue at fill 4/16,
	// 4-cap trans at 1/4 → drained signature with decode saturated).
	s0, s1 := NewHistory(16), NewHistory(16)
	for i := 0; i <= 6; i++ {
		s0.Record(trendSnap(t0, i, 0, 0))
		s1.Record(trendSnap(t0, i, 4, 1))
	}
	fd := DiagnoseFleetHistory([]*History{s0, s1})
	if fd == nil || fd.Fleet == nil {
		t.Fatal("fleet trend missing")
	}
	if fd.Shards[0].Verdict != VerdictDecoderBound || !fd.Shards[0].Sustained {
		t.Fatalf("shard 0 trend = %+v", fd.Shards[0])
	}
	if fd.Shards[1].Verdict != VerdictHealthy {
		t.Fatalf("shard 1 trend = %+v", fd.Shards[1])
	}
	rep := fd.Report()
	if !strings.Contains(rep, "shard 0: decoder-bound") || !strings.Contains(rep, "shard 1: healthy") {
		t.Fatalf("fleet report lacks per-shard lines:\n%s", rep)
	}
	if DiagnoseFleetHistory(nil) != nil {
		t.Fatal("no shards should diagnose nil")
	}
	if DiagnoseFleetHistory([]*History{NewHistory(4)}) != nil {
		t.Fatal("shards without history should diagnose nil")
	}
}
