package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"text/tabwriter"
	"time"
)

// Stage names under which the pipeline records latency observations.
// Every stage histogram is in milliseconds; docs/METRICS.md is the
// reference for what each stage spans and which paper figure it maps to.
const (
	// StageFPGADecode is submit_cmd → FINISH for one decode command
	// (last attempt when retried).
	StageFPGADecode = "fpga_decode"
	// StageCPUFallback is the duration of one CPU rescue/degraded-mode
	// decode.
	StageCPUFallback = "cpu_fallback"
	// StageCPUOffload is the duration of one CPU decode routed by the
	// fractional offload knob (core.Booster.SetCPUShare) — deliberate
	// load-splitting, distinct from the failure-driven cpu_fallback path.
	StageCPUOffload = "cpu_offload"
	// StageGetItemWait is the time the FPGAReader blocked in get_item
	// waiting for a free HugePage buffer (back-pressure).
	StageGetItemWait = "get_item_wait"
	// StageAssemble is first item collected → batch published on the
	// Full queue.
	StageAssemble = "assemble"
	// StageFullQueueWait is batch published → popped by the Dispatcher.
	StageFullQueueWait = "full_queue_wait"
	// StageCopySync is Dispatcher pop → stream synchronisation complete
	// (host→device copy included).
	StageCopySync = "copy_sync"
	// StageRecycle is stream sync → buffer returned to the pool
	// (recycle_item).
	StageRecycle = "recycle"
	// StageBatchE2E is first item collected → buffer recycled: the whole
	// life of one batch through the pipeline.
	StageBatchE2E = "batch_e2e"
	// StageInferE2E is per-image receipt → prediction (the paper's
	// Figure 8 latency metric).
	StageInferE2E = "infer_e2e"
	// StageTrainIter is the duration of one training iteration across
	// all solvers.
	StageTrainIter = "train_iter"
	// StageBatchFill is the fill ratio of every published batch — batch
	// images over configured batch size, in 0..1 rather than
	// milliseconds. A tail of low values means deadline flushes
	// (Config.BatchTimeout) are trading throughput for bounded latency.
	StageBatchFill = "batch_fill"
)

// Span is the per-batch trace: one timestamp per pipeline stage a batch
// buffer passes through (collect → get_item → seal → publish → dispatch
// → stream-sync → recycle_item), plus the terminal state of every image
// the batch carried. Zero timestamps mean the batch never reached that
// stage. Spans exist only when tracing is enabled, so the hot path pays
// nothing by default.
type Span struct {
	// Batch is the batch sequence number (core.Batch.Seq).
	Batch int `json:"batch"`
	// Collected is when the first item of the batch was collected.
	Collected time.Time `json:"collected"`
	// BufAcquired is when get_item returned the batch's HugePage buffer.
	BufAcquired time.Time `json:"buf_acquired"`
	// Sealed is when the batch stopped accepting items.
	Sealed time.Time `json:"sealed"`
	// Published is when the batch was pushed onto the Full queue.
	Published time.Time `json:"published"`
	// Dispatched is when the Dispatcher popped the batch.
	Dispatched time.Time `json:"dispatched"`
	// Synced is when the batch's host→device copy stream synchronised.
	Synced time.Time `json:"synced"`
	// Recycled is when the batch's buffer returned to the pool.
	Recycled time.Time `json:"recycled"`
	// Images is how many items the batch carried; FPGA, Fallback and
	// Failed are the terminal states (span conservation: the three sum
	// to Images for every completed span).
	Images   int `json:"images"`
	FPGA     int `json:"fpga"`
	Fallback int `json:"fallback"`
	Failed   int `json:"failed"`
}

// spanKeep bounds the recent-span ring carried in snapshots.
const spanKeep = 64

// queueProbe reads one queue's depth and capacity at snapshot time.
type queueProbe struct {
	length   func() int
	capacity func() int
}

// Registry aggregates every pipeline component's instruments into one
// place so a single Snapshot covers the whole system: counters (push- or
// pull-based), per-stage latency histograms, queue-depth probes, gauges,
// the event log, busy-core accounting and completed batch spans.
//
// All methods are safe on a nil *Registry and do nothing there — the
// same cost contract as internal/faults: components thread a registry
// through unconditionally and the hot path pays one nil check when
// observability is off.
type Registry struct {
	start time.Time

	mu         sync.Mutex
	counters   map[string]*Counter
	counterFns map[string]func() int64
	stages     map[string]*Histogram
	queues     map[string]queueProbe
	gauges     map[string]func() float64
	busy       *BusyTracker
	events     EventLog
	spans      []Span
	spanNext   int
	spanDone   int64
	flight     *FlightRecorder
}

// NewRegistry returns an empty registry stamped with the current time
// (snapshot uptime is measured from it).
func NewRegistry() *Registry {
	return &Registry{
		start:      time.Now(),
		counters:   make(map[string]*Counter),
		counterFns: make(map[string]func() int64),
		stages:     make(map[string]*Histogram),
		queues:     make(map[string]queueProbe),
		gauges:     make(map[string]func() float64),
	}
}

// On reports whether the registry is live; components use it to skip
// building observations (timestamps, copies) that only feed a registry.
func (r *Registry) On() bool { return r != nil }

// Add increments the named push-based counter, creating it on first use.
func (r *Registry) Add(name string, delta int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	r.mu.Unlock()
	c.Add(delta)
}

// Observe records one latency sample, in milliseconds, for a stage.
func (r *Registry) Observe(stage string, ms float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	h := r.stages[stage]
	if h == nil {
		h = &Histogram{}
		r.stages[stage] = h
	}
	r.mu.Unlock()
	h.Add(ms)
}

// ObserveSince records the milliseconds elapsed since start for a stage.
func (r *Registry) ObserveSince(stage string, start time.Time) {
	if r == nil {
		return
	}
	r.Observe(stage, float64(time.Since(start))/float64(time.Millisecond))
}

// RegisterCounterFunc exposes an externally maintained counter (e.g. an
// atomic a component increments anyway) under the given name. Pull-based
// counters cost the hot path nothing: they are only read at Snapshot.
func (r *Registry) RegisterCounterFunc(name string, fn func() int64) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	r.counterFns[name] = fn
	r.mu.Unlock()
}

// RegisterGauge exposes a point-in-time value read at Snapshot.
func (r *Registry) RegisterGauge(name string, fn func() float64) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	r.gauges[name] = fn
	r.mu.Unlock()
}

// RegisterQueue exposes a queue's depth and capacity, read at Snapshot.
func (r *Registry) RegisterQueue(name string, length, capacity func() int) {
	if r == nil || length == nil || capacity == nil {
		return
	}
	r.mu.Lock()
	r.queues[name] = queueProbe{length: length, capacity: capacity}
	r.mu.Unlock()
}

// SetBusy attaches a BusyTracker; Snapshot reports its per-component
// cores consumed over the registry's uptime.
func (r *Registry) SetBusy(b *BusyTracker) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.busy = b
	r.mu.Unlock()
}

// AttachFlight connects a flight recorder: every Event and completed
// span is forwarded into its rings from then on, so the recorder's
// post-mortem dumps carry the same history the registry sees. A nil
// recorder detaches.
func (r *Registry) AttachFlight(f *FlightRecorder) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.flight = f
	r.mu.Unlock()
}

// flightRec returns the attached flight recorder (nil-safe).
func (r *Registry) flightRec() *FlightRecorder {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.flight
}

// Event records a state-change event (degraded-mode switches, device
// replacements) into the registry's event log and, when a flight
// recorder is attached, into its note ring (where it may trigger a
// post-mortem dump).
func (r *Registry) Event(name, detail string) {
	if r == nil {
		return
	}
	r.events.Record(name, detail)
	r.flightRec().Note(name, detail)
}

// Events returns a snapshot of the event log in record order.
func (r *Registry) Events() []Event {
	if r == nil {
		return nil
	}
	return r.events.Events()
}

// EventCount returns the number of recorded events with the given name.
func (r *Registry) EventCount(name string) int {
	if r == nil {
		return 0
	}
	return r.events.Count(name)
}

// CompleteSpan ingests one finished batch span: it feeds the derived
// stage histograms (assemble, full_queue_wait, copy_sync, recycle,
// batch_e2e), bumps the span-conservation counters, and keeps the span
// in a bounded recent ring for snapshots.
func (r *Registry) CompleteSpan(sp Span) {
	if r == nil {
		return
	}
	observe := func(stage string, from, to time.Time) {
		if from.IsZero() || to.IsZero() {
			return
		}
		r.Observe(stage, float64(to.Sub(from))/float64(time.Millisecond))
	}
	observe(StageAssemble, sp.Collected, sp.Published)
	observe(StageFullQueueWait, sp.Published, sp.Dispatched)
	observe(StageCopySync, sp.Dispatched, sp.Synced)
	observe(StageRecycle, sp.Synced, sp.Recycled)
	observe(StageBatchE2E, sp.Collected, sp.Recycled)
	r.Add("span_images_total", int64(sp.Images))
	r.Add("span_images_fpga_total", int64(sp.FPGA))
	r.Add("span_images_fallback_total", int64(sp.Fallback))
	r.Add("span_images_failed_total", int64(sp.Failed))
	r.mu.Lock()
	if len(r.spans) < spanKeep {
		r.spans = append(r.spans, sp)
	} else {
		r.spans[r.spanNext] = sp
		r.spanNext = (r.spanNext + 1) % spanKeep
	}
	r.spanDone++
	f := r.flight
	r.mu.Unlock()
	f.Span(sp)
}

// SpansCompleted returns the number of spans ingested so far.
func (r *Registry) SpansCompleted() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.spanDone
}

// QueueDepth is one queue's occupancy at snapshot time.
type QueueDepth struct {
	Len int `json:"len"`
	Cap int `json:"cap"`
}

// PipelineSnapshot is the unified, serialisable view of the whole
// pipeline's telemetry at one instant: every counter, stage latency
// summary, queue depth, gauge, busy-core estimate, event and recent
// span. It marshals to JSON directly and renders as Prometheus text
// (WritePrometheus) or an aligned table (Table).
type PipelineSnapshot struct {
	TakenAt        time.Time             `json:"taken_at"`
	UptimeSeconds  float64               `json:"uptime_seconds"`
	Counters       map[string]int64      `json:"counters"`
	Gauges         map[string]float64    `json:"gauges"`
	Stages         map[string]Summary    `json:"stages"`
	Queues         map[string]QueueDepth `json:"queues"`
	Cores          map[string]float64    `json:"cores,omitempty"`
	Events         []Event               `json:"events,omitempty"`
	SpansCompleted int64                 `json:"spans_completed"`
	RecentSpans    []Span                `json:"recent_spans,omitempty"`
}

// Snapshot aggregates every registered instrument into one consistent
// view. It is pull-based: gauges, queue probes and counter funcs are
// read here, so components that only register probes pay zero hot-path
// cost. A nil registry returns nil.
func (r *Registry) Snapshot() *PipelineSnapshot {
	if r == nil {
		return nil
	}
	now := time.Now()
	s := &PipelineSnapshot{
		TakenAt:       now,
		UptimeSeconds: now.Sub(r.start).Seconds(),
		Counters:      make(map[string]int64),
		Gauges:        make(map[string]float64),
		Stages:        make(map[string]Summary),
		Queues:        make(map[string]QueueDepth),
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	counterFns := make(map[string]func() int64, len(r.counterFns))
	for k, v := range r.counterFns {
		counterFns[k] = v
	}
	stages := make(map[string]*Histogram, len(r.stages))
	for k, v := range r.stages {
		stages[k] = v
	}
	queues := make(map[string]queueProbe, len(r.queues))
	for k, v := range r.queues {
		queues[k] = v
	}
	gauges := make(map[string]func() float64, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	busy := r.busy
	s.SpansCompleted = r.spanDone
	s.RecentSpans = append([]Span(nil), r.spans...)
	r.mu.Unlock()

	for k, c := range counters {
		s.Counters[k] = c.Value()
	}
	for k, fn := range counterFns {
		s.Counters[k] = fn()
	}
	for k, h := range stages {
		s.Stages[k] = h.Summarize()
	}
	for k, q := range queues {
		s.Queues[k] = QueueDepth{Len: q.length(), Cap: q.capacity()}
	}
	for k, fn := range gauges {
		s.Gauges[k] = fn()
	}
	if busy != nil {
		s.Cores = busy.Cores(s.UptimeSeconds)
	}
	s.Events = r.events.Events()
	return s
}

// JSON renders the snapshot as indented JSON.
func (s *PipelineSnapshot) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// sortedKeys returns the map keys in deterministic order.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// promLabelEscaper applies the Prometheus text-format label-value
// escaping rules: backslash, double-quote and line feed are the only
// escapes the exposition format defines (Go's %q would also escape
// tabs and non-ASCII, which strict parsers read literally).
var promLabelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// promLabel renders one label="value" pair with spec-correct escaping.
func promLabel(name, value string) string {
	return name + `="` + promLabelEscaper.Replace(value) + `"`
}

// promHeader renders the paired HELP/TYPE comment block for a metric —
// the exposition format wants HELP and TYPE once per metric family,
// before its first sample.
func promHeader(b *strings.Builder, name, help, typ string) {
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format, every series prefixed dlbooster_ and every metric family led
// by a HELP/TYPE pair. Stage latencies become
// dlbooster_stage_latency_ms{stage=...,quantile=...} plus _count/_sum
// series; queues become dlbooster_queue_depth / dlbooster_queue_capacity
// with a queue label; events become dlbooster_events_total by name.
// Label values use the exposition format's escaping (backslash, quote,
// newline); prom_test.go validates the output against a minimal parser.
func (s *PipelineSnapshot) WritePrometheus(w io.Writer) error {
	var b strings.Builder
	promHeader(&b, "dlbooster_uptime_seconds", "seconds since the registry was created", "gauge")
	fmt.Fprintf(&b, "dlbooster_uptime_seconds %g\n", s.UptimeSeconds)
	for _, k := range sortedKeys(s.Counters) {
		promHeader(&b, "dlbooster_"+k, "cumulative count of "+k+" (see docs/METRICS.md)", "counter")
		fmt.Fprintf(&b, "dlbooster_%s %d\n", k, s.Counters[k])
	}
	for _, k := range sortedKeys(s.Gauges) {
		promHeader(&b, "dlbooster_"+k, "point-in-time value of "+k+" (see docs/METRICS.md)", "gauge")
		fmt.Fprintf(&b, "dlbooster_%s %g\n", k, s.Gauges[k])
	}
	if len(s.Queues) > 0 {
		promHeader(&b, "dlbooster_queue_depth", "queue occupancy at snapshot time", "gauge")
		for _, k := range sortedKeys(s.Queues) {
			fmt.Fprintf(&b, "dlbooster_queue_depth{%s} %d\n", promLabel("queue", k), s.Queues[k].Len)
		}
		promHeader(&b, "dlbooster_queue_capacity", "queue capacity at snapshot time", "gauge")
		for _, k := range sortedKeys(s.Queues) {
			fmt.Fprintf(&b, "dlbooster_queue_capacity{%s} %d\n", promLabel("queue", k), s.Queues[k].Cap)
		}
	}
	if len(s.Stages) > 0 {
		promHeader(&b, "dlbooster_stage_latency_ms", "per-stage latency distribution in milliseconds", "summary")
		for _, k := range sortedKeys(s.Stages) {
			sm := s.Stages[k]
			st := promLabel("stage", k)
			fmt.Fprintf(&b, "dlbooster_stage_latency_ms{%s,quantile=\"0.5\"} %g\n", st, sm.P50)
			fmt.Fprintf(&b, "dlbooster_stage_latency_ms{%s,quantile=\"0.95\"} %g\n", st, sm.P95)
			fmt.Fprintf(&b, "dlbooster_stage_latency_ms{%s,quantile=\"0.99\"} %g\n", st, sm.P99)
			fmt.Fprintf(&b, "dlbooster_stage_latency_ms_count{%s} %d\n", st, sm.Count)
			fmt.Fprintf(&b, "dlbooster_stage_latency_ms_sum{%s} %g\n", st, sm.Mean*float64(sm.Count))
		}
	}
	if len(s.Cores) > 0 {
		promHeader(&b, "dlbooster_cores", "busy-cores estimate per component", "gauge")
		for _, k := range sortedKeys(s.Cores) {
			fmt.Fprintf(&b, "dlbooster_cores{%s} %g\n", promLabel("component", k), s.Cores[k])
		}
	}
	if len(s.Events) > 0 {
		counts := make(map[string]int64)
		for _, e := range s.Events {
			counts[e.Name]++
		}
		promHeader(&b, "dlbooster_events_total", "state-change events recorded, by name", "counter")
		for _, k := range sortedKeys(counts) {
			fmt.Fprintf(&b, "dlbooster_events_total{%s} %d\n", promLabel("name", k), counts[k])
		}
	}
	promHeader(&b, "dlbooster_spans_completed_total", "completed batch spans", "counter")
	fmt.Fprintf(&b, "dlbooster_spans_completed_total %d\n", s.SpansCompleted)
	_, err := io.WriteString(w, b.String())
	return err
}

// Table renders the snapshot as an aligned human-readable report — the
// dlbench -metrics output.
func (s *PipelineSnapshot) Table() string {
	var b strings.Builder
	tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "uptime\t%.3fs\tspans\t%d\n", s.UptimeSeconds, s.SpansCompleted)
	fmt.Fprintln(tw, "\nSTAGE (ms)\tCOUNT\tMEAN\tP50\tP95\tP99\tMAX")
	for _, k := range sortedKeys(s.Stages) {
		sm := s.Stages[k]
		fmt.Fprintf(tw, "%s\t%d\t%.3f\t%.3f\t%.3f\t%.3f\t%.3f\n",
			k, sm.Count, sm.Mean, sm.P50, sm.P95, sm.P99, sm.Max)
	}
	fmt.Fprintln(tw, "\nCOUNTER\tVALUE")
	for _, k := range sortedKeys(s.Counters) {
		fmt.Fprintf(tw, "%s\t%d\n", k, s.Counters[k])
	}
	fmt.Fprintln(tw, "\nGAUGE\tVALUE")
	for _, k := range sortedKeys(s.Gauges) {
		fmt.Fprintf(tw, "%s\t%g\n", k, s.Gauges[k])
	}
	fmt.Fprintln(tw, "\nQUEUE\tLEN\tCAP")
	for _, k := range sortedKeys(s.Queues) {
		q := s.Queues[k]
		fmt.Fprintf(tw, "%s\t%d\t%d\n", k, q.Len, q.Cap)
	}
	if len(s.Cores) > 0 {
		fmt.Fprintln(tw, "\nCOMPONENT\tCORES")
		for _, k := range sortedKeys(s.Cores) {
			fmt.Fprintf(tw, "%s\t%.2f\n", k, s.Cores[k])
		}
	}
	if len(s.Events) > 0 {
		fmt.Fprintln(tw, "\nEVENT\tDETAIL")
		for _, e := range s.Events {
			fmt.Fprintf(tw, "%s\t%s\n", e.Name, e.Detail)
		}
	}
	tw.Flush()
	return b.String()
}
