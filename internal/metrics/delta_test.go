package metrics

import (
	"testing"
	"time"
)

func TestSnapshotDelta(t *testing.T) {
	t0 := time.Now()
	prev := &PipelineSnapshot{
		TakenAt:        t0,
		UptimeSeconds:  10,
		Counters:       map[string]int64{"images_decoded_total": 100, "decode_errors_total": 1},
		SpansCompleted: 10,
		Events:         []Event{{Name: "old", At: t0.Add(-time.Second)}},
	}
	cur := &PipelineSnapshot{
		TakenAt:        t0.Add(5 * time.Second),
		UptimeSeconds:  15,
		Counters:       map[string]int64{"images_decoded_total": 600, "decode_errors_total": 1, "new_counter": 3},
		SpansCompleted: 70,
		Events: []Event{
			{Name: "old", At: t0.Add(-time.Second)},
			{Name: "degraded", At: t0.Add(2 * time.Second)},
		},
	}
	d := cur.Delta(prev)
	if d.Seconds != 5 {
		t.Fatalf("Seconds = %v, want 5", d.Seconds)
	}
	if d.Counters["images_decoded_total"] != 500 || d.Counters["new_counter"] != 3 {
		t.Fatalf("counters = %v", d.Counters)
	}
	if d.Rate("images_decoded_total") != 100 {
		t.Fatalf("rate = %v, want 100", d.Rate("images_decoded_total"))
	}
	if d.SpansCompleted != 60 {
		t.Fatalf("SpansCompleted = %d, want 60", d.SpansCompleted)
	}
	if len(d.Events) != 1 || d.Events[0].Name != "degraded" {
		t.Fatalf("interval events = %v (want only the one after prev)", d.Events)
	}
}

func TestSnapshotDeltaNilPrev(t *testing.T) {
	cur := &PipelineSnapshot{
		UptimeSeconds:  4,
		Counters:       map[string]int64{"images_decoded_total": 200},
		SpansCompleted: 25,
		Events:         []Event{{Name: "e", At: time.Now()}},
	}
	d := cur.Delta(nil)
	if d.Seconds != 4 || d.Counters["images_decoded_total"] != 200 || d.SpansCompleted != 25 {
		t.Fatalf("whole-uptime delta = %+v", d)
	}
	if d.Rate("images_decoded_total") != 50 {
		t.Fatalf("rate = %v, want 50", d.Rate("images_decoded_total"))
	}
	if len(d.Events) != 1 {
		t.Fatalf("events = %v", d.Events)
	}
	var nilSnap *PipelineSnapshot
	if nilSnap.Delta(nil) != nil {
		t.Fatal("nil snapshot Delta != nil")
	}
	var nilDelta *SnapshotDelta
	if nilDelta.Rate("x") != 0 {
		t.Fatal("nil delta Rate != 0")
	}
}
