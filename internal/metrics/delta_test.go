package metrics

import (
	"testing"
	"time"
)

func TestSnapshotDelta(t *testing.T) {
	t0 := time.Now()
	prev := &PipelineSnapshot{
		TakenAt:        t0,
		UptimeSeconds:  10,
		Counters:       map[string]int64{"images_decoded_total": 100, "decode_errors_total": 1},
		SpansCompleted: 10,
		Events:         []Event{{Name: "old", At: t0.Add(-time.Second)}},
	}
	cur := &PipelineSnapshot{
		TakenAt:        t0.Add(5 * time.Second),
		UptimeSeconds:  15,
		Counters:       map[string]int64{"images_decoded_total": 600, "decode_errors_total": 1, "new_counter": 3},
		SpansCompleted: 70,
		Events: []Event{
			{Name: "old", At: t0.Add(-time.Second)},
			{Name: "degraded", At: t0.Add(2 * time.Second)},
		},
	}
	d := cur.Delta(prev)
	if d.Seconds != 5 {
		t.Fatalf("Seconds = %v, want 5", d.Seconds)
	}
	if d.Counters["images_decoded_total"] != 500 || d.Counters["new_counter"] != 3 {
		t.Fatalf("counters = %v", d.Counters)
	}
	if d.Rate("images_decoded_total") != 100 {
		t.Fatalf("rate = %v, want 100", d.Rate("images_decoded_total"))
	}
	if d.SpansCompleted != 60 {
		t.Fatalf("SpansCompleted = %d, want 60", d.SpansCompleted)
	}
	if len(d.Events) != 1 || d.Events[0].Name != "degraded" {
		t.Fatalf("interval events = %v (want only the one after prev)", d.Events)
	}
}

func TestSnapshotDeltaNilPrev(t *testing.T) {
	cur := &PipelineSnapshot{
		UptimeSeconds:  4,
		Counters:       map[string]int64{"images_decoded_total": 200},
		SpansCompleted: 25,
		Events:         []Event{{Name: "e", At: time.Now()}},
	}
	d := cur.Delta(nil)
	if d.Seconds != 4 || d.Counters["images_decoded_total"] != 200 || d.SpansCompleted != 25 {
		t.Fatalf("whole-uptime delta = %+v", d)
	}
	if d.Rate("images_decoded_total") != 50 {
		t.Fatalf("rate = %v, want 50", d.Rate("images_decoded_total"))
	}
	if len(d.Events) != 1 {
		t.Fatalf("events = %v", d.Events)
	}
	var nilSnap *PipelineSnapshot
	if nilSnap.Delta(nil) != nil {
		t.Fatal("nil snapshot Delta != nil")
	}
	var nilDelta *SnapshotDelta
	if nilDelta.Rate("x") != 0 {
		t.Fatal("nil delta Rate != 0")
	}
}

// TestSnapshotDeltaRegistryRestart pins the documented restart
// signature: a counter lower in cur than in prev yields a negative
// delta (and rate) rather than clamping — the caller's signal that the
// registry restarted between captures.
func TestSnapshotDeltaRegistryRestart(t *testing.T) {
	t0 := time.Now()
	prev := &PipelineSnapshot{
		TakenAt: t0, UptimeSeconds: 100,
		Counters: map[string]int64{"images_decoded_total": 5000, "decode_errors_total": 7},
	}
	cur := &PipelineSnapshot{
		TakenAt: t0.Add(2 * time.Second), UptimeSeconds: 2, // restarted process
		Counters: map[string]int64{"images_decoded_total": 40},
	}
	d := cur.Delta(prev)
	if d.Counters["images_decoded_total"] != -4960 {
		t.Fatalf("restart delta = %d, want -4960 (negative, not clamped)", d.Counters["images_decoded_total"])
	}
	// A counter present only in prev does not appear at all — Delta
	// iterates cur's counters.
	if _, ok := d.Counters["decode_errors_total"]; ok {
		t.Fatal("counter absent from cur should be absent from the delta")
	}
	// Uptime went backwards too: Seconds is negative and rates are not
	// computed (Seconds > 0 guard), never NaN/Inf.
	if d.Seconds != -98 {
		t.Fatalf("Seconds = %v, want -98", d.Seconds)
	}
	if len(d.Rates) != 0 {
		t.Fatalf("rates over a negative interval = %v, want none", d.Rates)
	}
}

// TestSnapshotDeltaEventAtBoundary pins the interval-boundary contract:
// an event stamped exactly at prev.TakenAt belongs to the previous
// interval (Delta keeps events strictly after prev), so adjacent
// intervals never double-count a boundary event.
func TestSnapshotDeltaEventAtBoundary(t *testing.T) {
	t0 := time.Now()
	mid := t0.Add(time.Second)
	end := t0.Add(2 * time.Second)
	events := []Event{
		{Name: "before", At: mid.Add(-time.Millisecond)},
		{Name: "boundary", At: mid},
		{Name: "after", At: mid.Add(time.Millisecond)},
	}
	first := &PipelineSnapshot{TakenAt: mid, UptimeSeconds: 1,
		Counters: map[string]int64{}, Events: events[:2]}
	second := &PipelineSnapshot{TakenAt: end, UptimeSeconds: 2,
		Counters: map[string]int64{}, Events: events}
	d := second.Delta(first)
	if len(d.Events) != 1 || d.Events[0].Name != "after" {
		t.Fatalf("interval events = %v, want only the strictly-after one", d.Events)
	}
	// Conservation across the boundary: the whole-interval event set is
	// the union of the first interval's (vs nil) and the second's.
	whole := second.Delta(nil)
	firstHalf := first.Delta(nil)
	if len(firstHalf.Events)+len(d.Events) != len(whole.Events) {
		t.Fatalf("boundary event double-counted or dropped: %d + %d != %d",
			len(firstHalf.Events), len(d.Events), len(whole.Events))
	}
}

// TestSnapshotDeltaConservation is the counter-conservation property:
// for any three snapshots a ≤ b ≤ c, delta(a,b) + delta(b,c) equals
// delta(a,c) counter-for-counter and in seconds — windowed telemetry
// splits an interval without losing or double-counting anything.
func TestSnapshotDeltaConservation(t *testing.T) {
	t0 := time.Now()
	mk := func(sec float64, decoded, shed, spans int64) *PipelineSnapshot {
		return &PipelineSnapshot{
			TakenAt:       t0.Add(time.Duration(sec * float64(time.Second))),
			UptimeSeconds: sec,
			Counters: map[string]int64{
				"images_decoded_total": decoded,
				"serve_shed_total":     shed,
			},
			SpansCompleted: spans,
		}
	}
	a := mk(1, 100, 3, 10)
	b := mk(4.5, 950, 40, 112)
	c := mk(9, 2212, 41, 263)
	ab, bc, ac := b.Delta(a), c.Delta(b), c.Delta(a)
	for k := range ac.Counters {
		if ab.Counters[k]+bc.Counters[k] != ac.Counters[k] {
			t.Fatalf("counter %s: %d + %d != %d", k, ab.Counters[k], bc.Counters[k], ac.Counters[k])
		}
	}
	if ab.Seconds+bc.Seconds != ac.Seconds {
		t.Fatalf("seconds: %v + %v != %v", ab.Seconds, bc.Seconds, ac.Seconds)
	}
	if ab.SpansCompleted+bc.SpansCompleted != ac.SpansCompleted {
		t.Fatalf("spans: %d + %d != %d", ab.SpansCompleted, bc.SpansCompleted, ac.SpansCompleted)
	}
}
