// Package metrics collects the three measurements the paper reports for
// every experiment: throughput (images/s), latency distributions (ms),
// and CPU cost in cores — the paper's "CPU cost (# cores)" is busy time
// divided by wall time, which BusyTracker computes for both wall-clock
// and virtual-time runs.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a concurrency-safe event counter.
type Counter struct {
	n atomic.Int64
}

// Add increments the counter by delta.
func (c *Counter) Add(delta int64) { c.n.Add(delta) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.n.Load() }

// Rate returns count per second over the given elapsed seconds.
func (c *Counter) Rate(elapsedSeconds float64) float64 {
	if elapsedSeconds <= 0 {
		return 0
	}
	return float64(c.n.Load()) / elapsedSeconds
}

// Histogram accumulates samples and reports order statistics. It is safe
// for concurrent Add; reporting methods snapshot under the same lock.
type Histogram struct {
	mu     sync.Mutex
	vals   []float64
	sorted bool
}

// Add records one sample.
func (h *Histogram) Add(v float64) {
	h.mu.Lock()
	h.vals = append(h.vals, v)
	h.sorted = false
	h.mu.Unlock()
}

// Count returns the number of samples.
func (h *Histogram) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.vals)
}

// Mean returns the sample mean (0 when empty).
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.vals) == 0 {
		return 0
	}
	var s float64
	for _, v := range h.vals {
		s += v
	}
	return s / float64(len(h.vals))
}

// StdDev returns the population standard deviation (0 when empty).
func (h *Histogram) StdDev() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.vals) == 0 {
		return 0
	}
	var s float64
	for _, v := range h.vals {
		s += v
	}
	m := s / float64(len(h.vals))
	var ss float64
	for _, v := range h.vals {
		d := v - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(h.vals)))
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) using
// nearest-rank; it returns 0 when empty.
func (h *Histogram) Percentile(p float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := len(h.vals)
	if n == 0 {
		return 0
	}
	if !h.sorted {
		sort.Float64s(h.vals)
		h.sorted = true
	}
	if p <= 0 {
		return h.vals[0]
	}
	if p >= 100 {
		return h.vals[n-1]
	}
	rank := int(math.Ceil(p / 100 * float64(n)))
	if rank < 1 {
		rank = 1
	}
	return h.vals[rank-1]
}

// Min returns the smallest sample (0 when empty).
func (h *Histogram) Min() float64 { return h.Percentile(0) }

// Max returns the largest sample (0 when empty).
func (h *Histogram) Max() float64 { return h.Percentile(100) }

// Summary is a rendered snapshot of a histogram.
type Summary struct {
	Count               int     `json:"count"`
	Mean                float64 `json:"mean"`
	P50                 float64 `json:"p50"`
	P95                 float64 `json:"p95"`
	P99                 float64 `json:"p99"`
	Min                 float64 `json:"min"`
	Max                 float64 `json:"max"`
	StdDevPopulationEst float64 `json:"stddev"`
}

// Summarize returns the standard report for a latency distribution.
func (h *Histogram) Summarize() Summary {
	return Summary{
		Count:               h.Count(),
		Mean:                h.Mean(),
		P50:                 h.Percentile(50),
		P95:                 h.Percentile(95),
		P99:                 h.Percentile(99),
		Min:                 h.Min(),
		Max:                 h.Max(),
		StdDevPopulationEst: h.StdDev(),
	}
}

// String renders the summary for harness output.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3f p50=%.3f p95=%.3f p99=%.3f min=%.3f max=%.3f",
		s.Count, s.Mean, s.P50, s.P95, s.P99, s.Min, s.Max)
}

// Event is one timestamped state change worth reporting alongside the
// numeric metrics — a degraded-mode switch, a device replacement, a
// fault window opening or closing.
type Event struct {
	Name   string    `json:"name"`
	Detail string    `json:"detail"`
	At     time.Time `json:"at"`
}

// EventLog is a concurrency-safe append-only record of Events. The
// pipeline records mode switches here (the FPGA→CPU fallback of the
// failure model) so experiments and tests can assert not just *that*
// throughput held but *why*.
type EventLog struct {
	mu     sync.Mutex
	events []Event
}

// Record appends an event stamped now.
func (l *EventLog) Record(name, detail string) {
	l.mu.Lock()
	l.events = append(l.events, Event{Name: name, Detail: detail, At: time.Now()})
	l.mu.Unlock()
}

// Events returns a snapshot of the log in record order.
func (l *EventLog) Events() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Event(nil), l.events...)
}

// Count returns the number of recorded events with the given name.
func (l *EventLog) Count(name string) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for _, e := range l.events {
		if e.Name == name {
			n++
		}
	}
	return n
}

// BusyTracker accumulates per-component busy seconds. Dividing by elapsed
// wall (or virtual) seconds yields the paper's cores-consumed metric,
// including the Figure 6(d) breakdown (preprocessing / transforming /
// launching kernels / updating model).
type BusyTracker struct {
	mu   sync.Mutex
	busy map[string]float64
}

// NewBusyTracker returns an empty tracker.
func NewBusyTracker() *BusyTracker {
	return &BusyTracker{busy: make(map[string]float64)}
}

// Record adds busy seconds to a component.
func (b *BusyTracker) Record(component string, seconds float64) {
	if seconds < 0 {
		panic("metrics: negative busy time")
	}
	b.mu.Lock()
	b.busy[component] += seconds
	b.mu.Unlock()
}

// Busy returns the accumulated busy seconds of a component.
func (b *BusyTracker) Busy(component string) float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.busy[component]
}

// Cores returns per-component cores consumed over the elapsed seconds.
func (b *BusyTracker) Cores(elapsedSeconds float64) map[string]float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make(map[string]float64, len(b.busy))
	for k, v := range b.busy {
		if elapsedSeconds > 0 {
			out[k] = v / elapsedSeconds
		} else {
			out[k] = 0
		}
	}
	return out
}

// TotalCores returns the summed cores consumed across components.
func (b *BusyTracker) TotalCores(elapsedSeconds float64) float64 {
	var t float64
	for _, v := range b.Cores(elapsedSeconds) {
		t += v
	}
	return t
}

// Components returns the tracked component names, sorted.
func (b *BusyTracker) Components() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	names := make([]string, 0, len(b.busy))
	for k := range b.busy {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
