// The bottleneck doctor codifies docs/METRICS.md's worked example —
// "where is the pipeline limited?" answered from one or two
// PipelineSnapshots. It reads the queue-depth signatures of Algorithm
// 1's back-pressure chain (Free queue → FPGAReader → Full queue →
// Dispatcher → Trans queues → engines), the per-stage p95s, Little's-law
// utilisation estimates and the fault counters, and emits ranked,
// paper-grounded findings ending in the §4-style verdict: which backend
// stage limits throughput.

package metrics

import (
	"fmt"
	"regexp"
	"sort"
	"strings"
)

// Verdict codes the doctor can return, ordered roughly along the
// pipeline. Each is the stage that limits throughput in the §4 sense.
const (
	// VerdictDecoderBound means the FPGA decoder (or the CPU fallback
	// path while degraded) is the limiting stage: everything downstream
	// is starved. The paper's lever is plugging more boards (§5.3).
	VerdictDecoderBound = "decoder-bound"
	// VerdictPoolStarved means the Free_Batch_Queue is the limit: the
	// reader blocks in get_item while downstream sits idle, so the
	// HugePage pool is too shallow for the pipeline's depth.
	VerdictPoolStarved = "free-queue-starved"
	// VerdictDispatcherBound means the Dispatcher/copy path is the
	// limit: batches pile up on the Full queue while engines starve —
	// the §5.2 "copying small pieces" regime when PerItemCopy is on.
	VerdictDispatcherBound = "dispatcher-bound"
	// VerdictGPUBound means the compute engines are the limit: Trans
	// Full queues run at capacity and the preprocessing side keeps up —
	// the regime the paper calls reaching the performance boundary.
	VerdictGPUBound = "gpu-bound"
	// VerdictIngestOverloaded means admission control is the story:
	// the serving-side ingest queue is backed up or actively shedding
	// requests (serve_shed_total climbing), so offered load exceeds
	// what the pipeline admits — the online-inference overload regime.
	VerdictIngestOverloaded = "ingest-overloaded"
	// VerdictHealthy means no queue signature shows sustained pressure.
	VerdictHealthy = "healthy"
	// VerdictInconclusive means the signatures disagree or the snapshot
	// lacks the probes to decide (e.g. no Trans queues registered).
	VerdictInconclusive = "inconclusive"
)

// Finding is one ranked observation: a code (a Verdict* constant for
// structural findings, or a health code like "degraded"), a confidence
// in [0,1], the one-line claim, the numeric evidence behind it, and
// what the paper says to do about it.
type Finding struct {
	Code       string   `json:"code"`
	Confidence float64  `json:"confidence"`
	Title      string   `json:"title"`
	Evidence   []string `json:"evidence,omitempty"`
	Advice     string   `json:"advice,omitempty"`
}

// Diagnosis is the doctor's report: the verdict, the ranked findings
// it rests on, and the throughput the interval sustained (0 when not
// derivable).
type Diagnosis struct {
	Verdict    string    `json:"verdict"`
	Throughput float64   `json:"throughput_images_per_sec"`
	Findings   []Finding `json:"findings"`
}

// fpgaCmdsRe counts decoder boards from their counter names.
var fpgaCmdsRe = regexp.MustCompile(`^fpga\d+_cmds_total$`)

// transFullRe matches the per-solver Trans Full queue probes.
var transFullRe = regexp.MustCompile(`^trans\d+_full$`)

// queue-fill thresholds of the signature rules: a queue under low is
// "drained", over high is "backed up".
const (
	fillLow  = 0.25
	fillHigh = 0.75
)

// Diagnose reads one snapshot (cur) — or the interval between two
// (prev then cur, for rate-form evidence) — and returns the ranked
// report. prev may be nil. A nil cur returns nil.
func Diagnose(cur, prev *PipelineSnapshot) *Diagnosis {
	if cur == nil {
		return nil
	}
	d := &Diagnosis{}
	delta := cur.Delta(prev)
	d.Throughput = delta.Rate("images_decoded_total")

	fullFill, fullKnown := queueFill(cur, "full_batch")
	ingestFill, ingestKnown := queueFill(cur, "ingest_items")
	shedDelta := delta.Counters["serve_shed_total"]
	freeLen := cur.Queues["hugepage_free"].Len
	_, freeKnown := cur.Queues["hugepage_free"]
	transFill, transKnown := maxTransFill(cur)

	decode := cur.Stages[StageFPGADecode]
	if cur.Gauges["degraded"] >= 1 {
		// While degraded the CPU fallback is the decode stage.
		if fb, ok := cur.Stages[StageCPUFallback]; ok && fb.Count > 0 {
			decode = fb
		}
	}
	copySync := cur.Stages[StageCopySync]
	getWait := cur.Stages[StageGetItemWait]
	e2e := cur.Stages[StageBatchE2E]

	boards := 0
	for name := range cur.Counters {
		if fpgaCmdsRe.MatchString(name) {
			boards++
		}
	}
	if boards == 0 {
		boards = 1
	}
	// Little's law: images/s × mean decode seconds = decoders busy, in
	// board-equivalents. Near (or above) the board count means the
	// decode stage is saturated.
	decodeBusy := d.Throughput * decode.Mean / 1000
	decodeUtil := decodeBusy / float64(boards)

	ev := func(format string, args ...any) string { return fmt.Sprintf(format, args...) }
	queueEv := []string{
		ev("full_batch %d/%d (fill %.2f)", cur.Queues["full_batch"].Len, cur.Queues["full_batch"].Cap, fullFill),
		ev("max trans<i>_full fill %.2f", transFill),
		ev("hugepage_free len %d", freeLen),
	}

	// getWait is "significant" when the reader visibly spends its time
	// blocked on buffers rather than on decode completions.
	getWaitSignificant := getWait.Count > 0 &&
		(getWait.P95 > decode.P95 || (e2e.P95 > 0 && getWait.P95 > 0.25*e2e.P95))

	switch {
	// Admission control outranks the internal signatures: when the
	// serving ingest queue is shedding (or pinned at capacity), every
	// downstream reading describes the admitted load, not the offered
	// one — fix the overload first, then re-diagnose.
	case ingestKnown && (shedDelta > 0 || ingestFill >= fillHigh):
		conf := 0.85
		if shedDelta > 0 {
			conf = 0.95
		}
		d.add(Finding{
			Code: VerdictIngestOverloaded, Confidence: conf,
			Title: "ingest admission control limits accepted load (requests shed or queue at capacity)",
			Evidence: append(queueEv,
				ev("ingest_items %d/%d (fill %.2f)", cur.Queues["ingest_items"].Len, cur.Queues["ingest_items"].Cap, ingestFill),
				ev("serve_shed_total +%d in interval (%d lifetime), serve_partial_flushes_total %d",
					shedDelta, cur.Counters["serve_shed_total"], cur.Counters["serve_partial_flushes_total"])),
			Advice: "offered load exceeds what the pipeline admits: clients see shed status frames (bounded memory, by design); scale the backend (more boards/solvers), raise -queue only if the backend has headroom, and read the rest of this report for which stage is saturated",
		})
	case transKnown && transFill >= fillHigh:
		conf := 0.9
		if fullKnown && fullFill >= 0.5 {
			conf = 0.95
		}
		d.add(Finding{
			Code: VerdictGPUBound, Confidence: conf,
			Title: "compute engines limit throughput (Trans Full queues at capacity)",
			Evidence: append(queueEv,
				ev("infer_e2e p95 %.3fms, train_iter p95 %.3fms", cur.Stages[StageInferE2E].P95, cur.Stages[StageTrainIter].P95)),
			Advice: "the pipeline feeds the GPUs faster than they compute — the paper's performance boundary; add GPUs/solvers or grow the model budget, preprocessing is not the problem",
		})
	case fullKnown && transKnown && fullFill >= fillHigh && transFill <= fillLow:
		d.add(Finding{
			Code: VerdictDispatcherBound, Confidence: 0.9,
			Title: "dispatcher/copy path limits throughput (Full queue backed up, engines starved)",
			Evidence: append(queueEv,
				ev("copy_sync p95 %.3fms vs fpga_decode p95 %.3fms", copySync.P95, decode.P95)),
			Advice: "batches wait behind host→device copies: keep large-block mode (DispatcherConfig.PerItemCopy=false, the ≈20% lever of §5.2) and check stream sync stalls",
		})
	case fullKnown && transKnown && fullFill <= fillLow && transFill <= fillLow && getWaitSignificant && freeKnown && freeLen == 0:
		d.add(Finding{
			Code: VerdictPoolStarved, Confidence: 0.85,
			Title: "Free_Batch_Queue starvation limits throughput (reader blocked in get_item)",
			Evidence: append(queueEv,
				ev("get_item_wait p95 %.3fms vs fpga_decode p95 %.3fms", getWait.P95, decode.P95)),
			Advice: "every HugePage buffer is in flight while downstream queues run empty: raise Config.PoolBatches so decode-ahead covers the batch round-trip (Algorithm 1 back-pressure)",
		})
	case fullKnown && transKnown && fullFill <= fillLow && transFill <= fillLow && decode.Count > 0:
		conf := 0.8
		if decodeUtil >= 0.5 {
			conf = 0.9
		}
		d.add(Finding{
			Code: VerdictDecoderBound, Confidence: conf,
			Title: "decode stage limits throughput (downstream starved, decoder saturated)",
			Evidence: append(queueEv,
				ev("fpga_decode p95 %.3fms over %d board(s)", decode.P95, boards),
				ev("Little's law: %.0f img/s × %.3fms mean ≈ %.2f boards busy (util %.2f)", d.Throughput, decode.Mean, decodeBusy, decodeUtil)),
			Advice: "the decoder is the critical path — the regime where plugging more FPGA boards scales throughput (§5.3, Config.FPGADevices); while degraded, restore the FPGA path first",
		})
	case !fullKnown || !transKnown:
		d.add(Finding{
			Code: VerdictInconclusive, Confidence: 0.3,
			Title:    "snapshot lacks the queue probes the signatures need",
			Evidence: queueEv,
			Advice:   "register the Booster and Dispatcher on one registry (Booster.Registry()) so full_batch and trans<i>_* probes land in the same snapshot",
		})
	default:
		d.add(Finding{
			Code: VerdictHealthy, Confidence: 0.6,
			Title:    "no queue shows sustained pressure",
			Evidence: queueEv,
			Advice:   "the pipeline is balanced at this load; raise offered load to surface the next bottleneck",
		})
	}

	d.healthFindings(cur, delta)
	sort.SliceStable(d.Findings, func(i, j int) bool { return d.Findings[i].Confidence > d.Findings[j].Confidence })
	d.Verdict = VerdictInconclusive
	for _, f := range d.Findings {
		if isStructural(f.Code) {
			d.Verdict = f.Code
			break
		}
	}
	return d
}

// isStructural reports whether a finding code is a throughput verdict
// rather than a health observation.
func isStructural(code string) bool {
	switch code {
	case VerdictDecoderBound, VerdictPoolStarved, VerdictDispatcherBound,
		VerdictGPUBound, VerdictIngestOverloaded, VerdictHealthy, VerdictInconclusive:
		return true
	}
	return false
}

// add appends a finding.
func (d *Diagnosis) add(f Finding) { d.Findings = append(d.Findings, f) }

// healthFindings appends fault-side observations: degraded mode,
// decode errors, command timeouts and lost images. They rank alongside
// the structural findings but never become the verdict.
func (d *Diagnosis) healthFindings(cur *PipelineSnapshot, delta *SnapshotDelta) {
	if cur.Gauges["degraded"] >= 1 {
		d.add(Finding{
			Code: "degraded", Confidence: 0.95,
			Title: "pipeline is running in FPGA→CPU degraded mode",
			Evidence: []string{
				fmt.Sprintf("fallback_decodes_total %d, cmd_timeouts_total %d, decode_retries_total %d",
					cur.Counters["fallback_decodes_total"], cur.Counters["cmd_timeouts_total"], cur.Counters["decode_retries_total"]),
			},
			Advice: "throughput is bounded by CPU decode (~300 img/s/core, §2): replace or restart the decoder boards, then clear degraded mode",
		})
	}
	if n := cur.Counters["decode_errors_total"]; n > 0 {
		d.add(Finding{
			Code: "decode-errors", Confidence: 0.7,
			Title:    fmt.Sprintf("%d image(s) lost to decode errors", n),
			Evidence: []string{fmt.Sprintf("decode_errors_total %d, span_images_failed_total %d", n, cur.Counters["span_images_failed_total"])},
			Advice:   "failed slots ship invalid=false and are skipped by engines; sustained errors deserve a fault-injection-style post-mortem (flight-recorder dump)",
		})
	}
	if n := delta.Counters["cmd_timeouts_total"]; n > 0 {
		d.add(Finding{
			Code: "cmd-timeouts", Confidence: 0.65,
			Title:    fmt.Sprintf("%d command timeout(s) in the interval", n),
			Evidence: []string{fmt.Sprintf("cmd_timeouts_total +%d, late_finishes_total +%d", n, delta.Counters["late_finishes_total"])},
			Advice:   "a wedged or slow board is shedding work through the revocation fence; check per-board fpga<i>_cmds/finishes/cancels for the culprit",
		})
	}
	if n := delta.Counters["cache_evictions_total"]; n > 0 {
		d.add(Finding{
			Code: "cache-thrashing", Confidence: 0.7,
			Title: fmt.Sprintf("epoch cache is thrashing: %d entrie(s) evicted from both tiers in the interval", n),
			Evidence: []string{fmt.Sprintf("cache_evictions_total +%d, cache_demotions_total +%d, cache_redecode_images_total +%d, cache_spill_bytes %.0f",
				n, delta.Counters["cache_demotions_total"], delta.Counters["cache_redecode_images_total"], cur.Gauges["cache_spill_bytes"])},
			Advice: "the decoded dataset outgrows RAM and spill budgets combined, so replays re-decode the evicted slice every epoch: grow the spill tier (Cache.SpillBytes), enable Cache.Compress, or accept the hybrid re-decode cost (docs/CACHE.md sizing example)",
		})
	}
}

// Report renders the diagnosis as an aligned human-readable block —
// the dlbench -doctor output.
func (d *Diagnosis) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "verdict: %s", d.Verdict)
	if d.Throughput > 0 {
		fmt.Fprintf(&b, " (%.0f images/s)", d.Throughput)
	}
	b.WriteString("\n")
	for i, f := range d.Findings {
		fmt.Fprintf(&b, "\n%d. [%s] %s (confidence %.2f)\n", i+1, f.Code, f.Title, f.Confidence)
		for _, e := range f.Evidence {
			fmt.Fprintf(&b, "   - %s\n", e)
		}
		if f.Advice != "" {
			fmt.Fprintf(&b, "   → %s\n", f.Advice)
		}
	}
	return b.String()
}

// queueFill returns a queue's len/cap fill fraction and whether the
// probe exists in the snapshot.
func queueFill(s *PipelineSnapshot, name string) (float64, bool) {
	q, ok := s.Queues[name]
	if !ok || q.Cap <= 0 {
		return 0, ok
	}
	return float64(q.Len) / float64(q.Cap), true
}

// maxTransFill returns the highest fill fraction across every
// trans<i>_full probe and whether any exist.
func maxTransFill(s *PipelineSnapshot) (float64, bool) {
	max, found := 0.0, false
	for name, q := range s.Queues {
		if !transFullRe.MatchString(name) || q.Cap <= 0 {
			continue
		}
		found = true
		if f := float64(q.Len) / float64(q.Cap); f > max {
			max = f
		}
	}
	return max, found
}
