// Chrome trace_event export: renders recorded batch spans, events and
// queue-depth samples as a JSON document loadable in Perfetto
// (ui.perfetto.dev) or chrome://tracing, so a batch's collect →
// get_item → seal → publish → dispatch → sync → recycle life reads as a
// real timeline instead of a table of percentiles. One track (thread)
// per pipeline stage, instant markers for events, and counter tracks
// for every sampled queue depth.

package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// traceEvent is one entry of the Chrome trace_event format. Only the
// fields the exporter uses; ts and dur are microseconds.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the top-level JSON object Perfetto loads.
type chromeTrace struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// The fixed pid/tid layout of the exported timeline: one process for
// the pipeline, one thread per batch lifecycle stage, one thread for
// instant event markers. Queue-depth counters ride as "C" events and
// get their own tracks automatically.
const (
	tracePID        = 1
	traceTIDEvents  = 1
	traceTIDBatch   = 2 // whole-batch envelope (collected → recycled)
	traceTIDCollect = 3 // collect/assemble: collected → published
	traceTIDQueue   = 4 // Full queue residence: published → dispatched
	traceTIDCopy    = 5 // dispatch + copy + stream sync: dispatched → synced
	traceTIDRecycle = 6 // recycle: synced → recycled
)

// traceTracks names the fixed threads, in tid order, via metadata
// events so Perfetto shows stage names instead of bare tids.
var traceTracks = []struct {
	tid  int
	name string
}{
	{traceTIDEvents, "events"},
	{traceTIDBatch, "batch lifetime"},
	{traceTIDCollect, "collect+assemble"},
	{traceTIDQueue, "full-queue wait"},
	{traceTIDCopy, "dispatch+copy+sync"},
	{traceTIDRecycle, "recycle"},
}

// WriteChromeTrace renders spans, events and samples as one Chrome
// trace_event JSON document. Spans become complete ("X") slices on the
// per-stage tracks, events become instant ("i") markers, and each
// sampled queue depth becomes a counter ("C") series named
// queue:<name>. Timestamps are offset from the earliest one present so
// the timeline starts near zero.
func WriteChromeTrace(w io.Writer, spans []Span, events []Event, samples []MiniSnapshot) error {
	t0 := earliestTimestamp(spans, events, samples)
	evs := appendProcessTrace(nil, tracePID, "dlbooster pipeline", spans, events, samples, t0)
	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: evs, DisplayTimeUnit: "ms"})
}

// appendProcessTrace appends one pipeline's timeline under the given
// pid/process name: the metadata events naming the process and its
// stage threads, the span slices, the instant event markers and the
// queue-depth counter series. A sharded fleet calls it once per shard
// with a distinct pid, so every shard reads as its own process track.
func appendProcessTrace(evs []traceEvent, pid int, procName string, spans []Span, events []Event, samples []MiniSnapshot, t0 time.Time) []traceEvent {
	evs = append(evs, traceEvent{
		Name: "process_name", Ph: "M", PID: pid, TID: 0,
		Args: map[string]any{"name": procName},
	})
	evs = append(evs, traceEvent{
		Name: "process_sort_index", Ph: "M", PID: pid, TID: 0,
		Args: map[string]any{"sort_index": pid},
	})
	for _, tr := range traceTracks {
		evs = append(evs, traceEvent{
			Name: "thread_name", Ph: "M", PID: pid, TID: tr.tid,
			Args: map[string]any{"name": tr.name},
		})
		evs = append(evs, traceEvent{
			Name: "thread_sort_index", Ph: "M", PID: pid, TID: tr.tid,
			Args: map[string]any{"sort_index": tr.tid},
		})
	}
	for _, sp := range spans {
		evs = append(evs, spanEvents(sp, t0, pid)...)
	}
	for _, e := range events {
		if e.At.IsZero() {
			continue
		}
		evs = append(evs, traceEvent{
			Name: e.Name, Cat: "event", Ph: "i", TS: usSince(t0, e.At),
			PID: pid, TID: traceTIDEvents, S: "g",
			Args: map[string]any{"detail": e.Detail},
		})
	}
	for _, m := range samples {
		if m.TakenAt.IsZero() {
			continue
		}
		ts := usSince(t0, m.TakenAt)
		for _, q := range sortedKeys(m.Queues) {
			evs = append(evs, traceEvent{
				Name: "queue:" + q, Ph: "C", TS: ts, PID: pid, TID: 0,
				Args: map[string]any{"len": m.Queues[q].Len},
			})
		}
	}
	return evs
}

// spanEvents expands one batch span into its per-stage slices, skipping
// stages the batch never reached (zero timestamps).
func spanEvents(sp Span, t0 time.Time, pid int) []traceEvent {
	name := fmt.Sprintf("batch %d", sp.Batch)
	args := map[string]any{
		"batch": sp.Batch, "images": sp.Images,
		"fpga": sp.FPGA, "fallback": sp.Fallback, "failed": sp.Failed,
	}
	var evs []traceEvent
	slice := func(tid int, cat string, from, to time.Time) {
		if from.IsZero() || to.IsZero() || to.Before(from) {
			return
		}
		evs = append(evs, traceEvent{
			Name: name, Cat: cat, Ph: "X",
			TS: usSince(t0, from), Dur: float64(to.Sub(from)) / float64(time.Microsecond),
			PID: pid, TID: tid, Args: args,
		})
	}
	slice(traceTIDBatch, "batch_e2e", sp.Collected, sp.Recycled)
	slice(traceTIDCollect, StageAssemble, sp.Collected, sp.Published)
	slice(traceTIDQueue, StageFullQueueWait, sp.Published, sp.Dispatched)
	slice(traceTIDCopy, StageCopySync, sp.Dispatched, sp.Synced)
	slice(traceTIDRecycle, StageRecycle, sp.Synced, sp.Recycled)
	return evs
}

// earliestTimestamp scans every non-zero timestamp so the exported
// timeline is offset to start near zero.
func earliestTimestamp(spans []Span, events []Event, samples []MiniSnapshot) time.Time {
	var t0 time.Time
	consider := func(t time.Time) {
		if t.IsZero() {
			return
		}
		if t0.IsZero() || t.Before(t0) {
			t0 = t
		}
	}
	for _, sp := range spans {
		consider(sp.Collected)
		consider(sp.BufAcquired)
		consider(sp.Published)
	}
	for _, e := range events {
		consider(e.At)
	}
	for _, m := range samples {
		consider(m.TakenAt)
	}
	return t0
}

// usSince returns microseconds from t0 to t, the trace_event clock.
func usSince(t0, t time.Time) float64 {
	return float64(t.Sub(t0)) / float64(time.Microsecond)
}

// WriteChromeTrace renders the snapshot's recent spans and events as a
// Chrome trace_event timeline — the /trace.json payload dlserve exposes
// next to /metrics.json.
func (s *PipelineSnapshot) WriteChromeTrace(w io.Writer) error {
	if s == nil {
		return WriteChromeTrace(w, nil, nil, nil)
	}
	return WriteChromeTrace(w, s.RecentSpans, s.Events, nil)
}

// WriteChromeTrace renders a sharded fleet's recent spans and events
// as one Chrome trace_event timeline with one process per shard (pid =
// shard index + 1, named "shard <i>"), so Perfetto shows each shard's
// batch lifecycle on its own group of tracks — "shard 3's full-queue
// waits balloon while the others idle" becomes visible at a glance.
// Timestamps share one origin across shards, so cross-shard skew (a
// degraded shard's batches stretching while a healthy one's stay
// tight) reads directly off the timeline.
func (f *FleetSnapshot) WriteChromeTrace(w io.Writer) error {
	if f == nil {
		return WriteChromeTrace(w, nil, nil, nil)
	}
	var t0 time.Time
	for _, s := range f.Shards {
		if s == nil {
			continue
		}
		if st0 := earliestTimestamp(s.RecentSpans, s.Events, nil); !st0.IsZero() && (t0.IsZero() || st0.Before(t0)) {
			t0 = st0
		}
	}
	var evs []traceEvent
	for i, s := range f.Shards {
		if s == nil {
			continue
		}
		evs = appendProcessTrace(evs, i+1, fmt.Sprintf("shard %d", i), s.RecentSpans, s.Events, nil, t0)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: evs, DisplayTimeUnit: "ms"})
}

// WriteChromeTrace renders a flight dump as a Chrome trace_event
// timeline: its spans as stage slices, its notes as instant markers,
// its mini-snapshots as queue-depth counter tracks — a post-mortem file
// turned into a picture.
func (d FlightDump) WriteChromeTrace(w io.Writer) error {
	events := make([]Event, 0, len(d.Notes))
	for _, n := range d.Notes {
		events = append(events, Event{Name: n.Name, Detail: n.Detail, At: n.At})
	}
	return WriteChromeTrace(w, d.Spans, events, d.Samples)
}
