// The benchmark trajectory schema: BenchResult is the schema-versioned
// record `dlbench -json` emits (throughput, per-stage percentiles,
// configuration, git SHA) and `tools/benchdiff` compares, so the repo
// accumulates BENCH_<n>.json files as a perf history and CI can fail
// loudly on a regression against the checked-in baseline.

package metrics

import (
	"encoding/json"
	"fmt"
	"os"
	"time"
)

// BenchSchemaVersion stamps every BenchResult; benchdiff refuses to
// compare files with mismatched versions so a schema change cannot
// silently pass a stale baseline.
const BenchSchemaVersion = 1

// BenchConfig records the knobs the benchmark ran with, so two results
// are only ever compared like-for-like.
type BenchConfig struct {
	Images int `json:"images"`
	Batch  int `json:"batch"`
	Size   int `json:"size"`
	Boards int `json:"boards"`
	// Shards is the Booster shard count of a `dlbench -shards` scaling
	// run; zero (omitted from JSON) for the classic single-pipeline
	// traced run, so pre-shard BENCH_<n>.json baselines still compare.
	Shards int `json:"shards,omitempty"`
	// ShardRate is the modelled per-shard engine capacity (images/s)
	// the scaling run paced compute at; zero for unpaced runs.
	ShardRate float64 `json:"shard_rate,omitempty"`
	// CacheMode names the epoch-cache configuration of a replay run:
	// "cold" (no cache), "ram" (RAM tier only) or "ram+nvme" (RAM tier
	// with NVMe spill). Empty (omitted from JSON) for non-replay runs,
	// so older baselines still compare.
	CacheMode string `json:"cache_mode,omitempty"`
	// ReplayEpochs is how many epochs past the first a replay run
	// served from the cache; zero for non-replay runs.
	ReplayEpochs int `json:"replay_epochs,omitempty"`
	// AutotuneSpec is the SLO spec a `dlbench -autotune` overload run
	// steered toward; empty (omitted from JSON) for non-autotune runs,
	// so older baselines still compare.
	AutotuneSpec string `json:"autotune_spec,omitempty"`
	// OverloadX is the open-loop offered-load multiple of the
	// calibrated capacity in an autotune run (e.g. 2.0); zero for
	// closed-loop runs.
	OverloadX float64 `json:"overload_x,omitempty"`
}

// BenchResult is one benchmark run, serialised as BENCH_<n>.json.
type BenchResult struct {
	// SchemaVersion is BenchSchemaVersion at write time.
	SchemaVersion int `json:"schema_version"`
	// Name identifies the benchmark scenario.
	Name string `json:"name"`
	// TakenAt is when the run finished.
	TakenAt time.Time `json:"taken_at"`
	// GitSHA is the commit the binary was built from ("unknown" when
	// not determinable).
	GitSHA string `json:"git_sha"`
	// GoVersion is runtime.Version() of the benchmark binary.
	GoVersion string `json:"go_version"`
	// Config is the scenario configuration.
	Config BenchConfig `json:"config"`
	// ElapsedSeconds is the wall-clock duration of the measured run.
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	// Throughput is end-to-end images per second.
	Throughput float64 `json:"throughput_images_per_sec"`
	// Stages holds the per-stage latency summaries (milliseconds).
	Stages map[string]Summary `json:"stages"`
	// Counters holds the final counter values of the run.
	Counters map[string]int64 `json:"counters"`
	// SLO is the scorecard of a `dlbench -slo` run: the spec evaluated
	// over the run's sampled telemetry history. Nil (omitted from JSON)
	// when the run declared no SLO, so older baselines still compare.
	SLO *Scorecard `json:"slo,omitempty"`
}

// WriteFile serialises the result to path atomically.
func (r *BenchResult) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return WriteFileAtomic(path, append(data, '\n'))
}

// ReadBenchResult loads one result file and checks its schema version.
func ReadBenchResult(path string) (*BenchResult, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r BenchResult
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("metrics: parsing %s: %w", path, err)
	}
	if r.SchemaVersion != BenchSchemaVersion {
		return nil, fmt.Errorf("metrics: %s has schema version %d, this binary expects %d", path, r.SchemaVersion, BenchSchemaVersion)
	}
	return &r, nil
}

// BenchRegression is one metric that moved past the threshold between
// a baseline and a new result.
type BenchRegression struct {
	// Metric names what regressed ("throughput" or "<stage> p95").
	Metric string `json:"metric"`
	// Base and New are the compared values (img/s for throughput,
	// milliseconds for stages).
	Base float64 `json:"base"`
	New  float64 `json:"new"`
	// Limit is the value New had to stay within.
	Limit float64 `json:"limit"`
}

// String renders the regression for the benchdiff report.
func (r BenchRegression) String() string {
	return fmt.Sprintf("%s: base %.3f → new %.3f (limit %.3f)", r.Metric, r.Base, r.New, r.Limit)
}

// CompareBenchSpeedup is the scaling gate: cur must achieve at least
// ratio × base's throughput. The two results must be the same scenario
// (same name, same config except the knobs a scaling comparison varies:
// shard count, per-shard rate and cache mode) — comparing a 2-shard run
// against the 1-shard run of the same corpus, or a ram+nvme replay run
// against the cold run, is the intended use; comparing different
// scenarios is an error. Stage latencies are not compared: scaling and
// caching shift where time is spent by design, and the throughput ratio
// is the claim under test.
func CompareBenchSpeedup(base, cur *BenchResult, ratio float64) (*BenchRegression, error) {
	if base == nil || cur == nil {
		return nil, fmt.Errorf("metrics: nil bench result")
	}
	if ratio <= 0 {
		return nil, fmt.Errorf("metrics: speedup ratio %v must be positive", ratio)
	}
	if base.Name != cur.Name {
		return nil, fmt.Errorf("metrics: scenario mismatch: %q vs %q", base.Name, cur.Name)
	}
	bc, cc := base.Config, cur.Config
	bc.Shards, cc.Shards = 0, 0
	bc.ShardRate, cc.ShardRate = 0, 0
	bc.CacheMode, cc.CacheMode = "", ""
	if bc != cc {
		return nil, fmt.Errorf("metrics: config mismatch beyond shard/cache knobs: baseline %+v vs new %+v", base.Config, cur.Config)
	}
	if base.Throughput <= 0 {
		return nil, fmt.Errorf("metrics: baseline throughput %v not positive", base.Throughput)
	}
	limit := base.Throughput * ratio
	if cur.Throughput < limit {
		return &BenchRegression{
			Metric: fmt.Sprintf("throughput speedup (%d→%d shards)", base.Config.Shards, cur.Config.Shards),
			Base:   base.Throughput, New: cur.Throughput, Limit: limit,
		}, nil
	}
	return nil, nil
}

// CompareBenchSLO is the SLO-regression gate: the new result must carry
// a scorecard (a `dlbench -slo` run) and every objective on it must be
// met. A missing scorecard is a misuse error — the gate exists to catch
// runs that silently dropped their SLO — as is comparing scorecards
// evaluated against different specs when the baseline has one. The
// baseline's scorecard, when present, supplies the Base column of each
// regression so the report shows how far the objective moved. Results
// carrying an autotune static ledger (static_shed_total) additionally
// gate the autotuned shed fraction against the static one.
func CompareBenchSLO(base, cur *BenchResult) ([]BenchRegression, error) {
	if cur == nil {
		return nil, fmt.Errorf("metrics: nil bench result")
	}
	if cur.SLO == nil {
		return nil, fmt.Errorf("metrics: new result %q carries no SLO scorecard (run dlbench with -slo)", cur.Name)
	}
	if base != nil && base.SLO != nil && base.SLO.Spec != cur.SLO.Spec {
		return nil, fmt.Errorf("metrics: SLO spec mismatch: baseline %q vs new %q", base.SLO.Spec, cur.SLO.Spec)
	}
	baseObs := map[string]float64{}
	if base != nil && base.SLO != nil {
		for _, o := range base.SLO.Objectives {
			baseObs[o.Name] = o.Observed
		}
	}
	var regs []BenchRegression
	for _, o := range cur.SLO.Objectives {
		if o.Met {
			continue
		}
		b, ok := baseObs[o.Name]
		if !ok {
			b = o.Target
		}
		regs = append(regs, BenchRegression{
			Metric: "slo " + o.Name, Base: b, New: o.Observed, Limit: o.Target,
		})
	}
	// The autotune-overload scenario folds the static config's ledger
	// into the same counter map (static_shed_total,
	// static_images_decoded_total). When present, the gate additionally
	// requires the autotuned run to shed a smaller fraction of its
	// offered load than the static config did under the same overload —
	// the scenario's whole claim, judged on fractions so the two
	// ledgers need not cover identical offered counts.
	if staticShed, ok := cur.Counters["static_shed_total"]; ok {
		shedFraction := func(shed, good int64) float64 {
			if shed+good <= 0 {
				return 0
			}
			return float64(shed) / float64(shed+good)
		}
		staticFrac := shedFraction(staticShed, cur.Counters["static_images_decoded_total"])
		autoFrac := shedFraction(cur.Counters["serve_shed_total"], cur.Counters["images_decoded_total"])
		if autoFrac >= staticFrac {
			regs = append(regs, BenchRegression{
				Metric: "slo autotune shed fraction", Base: staticFrac, New: autoFrac, Limit: staticFrac,
			})
		}
	}
	return regs, nil
}

// CompareBenchResults checks a new result against a baseline with a
// multiplicative threshold (>1): throughput must stay above
// base/threshold and every stage p95 present in both must stay below
// max(base p95, floorMs) × threshold — the floor keeps sub-millisecond
// stages from flagging scheduler noise as regressions. It returns the
// regressions found (empty = pass) and an error on misuse (mismatched
// configs, bad threshold).
func CompareBenchResults(base, cur *BenchResult, threshold, floorMs float64) ([]BenchRegression, error) {
	if base == nil || cur == nil {
		return nil, fmt.Errorf("metrics: nil bench result")
	}
	if threshold <= 1 {
		return nil, fmt.Errorf("metrics: threshold %v must be > 1", threshold)
	}
	if base.Config != cur.Config {
		return nil, fmt.Errorf("metrics: config mismatch: baseline %+v vs new %+v", base.Config, cur.Config)
	}
	var regs []BenchRegression
	if base.Throughput > 0 {
		limit := base.Throughput / threshold
		if cur.Throughput < limit {
			regs = append(regs, BenchRegression{Metric: "throughput", Base: base.Throughput, New: cur.Throughput, Limit: limit})
		}
	}
	for _, stage := range sortedKeys(base.Stages) {
		bs := base.Stages[stage]
		cs, ok := cur.Stages[stage]
		if !ok || bs.Count == 0 || cs.Count == 0 {
			continue
		}
		ref := bs.P95
		if ref < floorMs {
			ref = floorMs
		}
		limit := ref * threshold
		if cs.P95 > limit {
			regs = append(regs, BenchRegression{Metric: stage + " p95", Base: bs.P95, New: cs.P95, Limit: limit})
		}
	}
	return regs, nil
}
