package metrics

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// TestNilRegistryIsSafe pins the cheap-by-default contract: every method
// of a nil *Registry is a no-op, so components thread registries through
// unconditionally and pay one nil check when observability is off.
func TestNilRegistryIsSafe(t *testing.T) {
	var r *Registry
	if r.On() {
		t.Fatal("nil registry reports On")
	}
	r.Add("x", 1)
	r.Observe(StageFPGADecode, 1.5)
	r.ObserveSince(StageFPGADecode, time.Now())
	r.RegisterCounterFunc("x", func() int64 { return 1 })
	r.RegisterGauge("g", func() float64 { return 1 })
	r.RegisterQueue("q", func() int { return 0 }, func() int { return 1 })
	r.SetBusy(NewBusyTracker())
	r.Event("e", "detail")
	r.CompleteSpan(Span{})
	if r.Events() != nil || r.EventCount("e") != 0 || r.SpansCompleted() != 0 {
		t.Fatal("nil registry retained state")
	}
	if r.Snapshot() != nil {
		t.Fatal("nil registry produced a snapshot")
	}
}

func TestSnapshotAggregates(t *testing.T) {
	r := NewRegistry()
	r.Add("pushed_total", 3)
	r.Add("pushed_total", 2)
	ext := int64(41)
	r.RegisterCounterFunc("pulled_total", func() int64 { return ext })
	r.Observe(StageFPGADecode, 1)
	r.Observe(StageFPGADecode, 3)
	r.RegisterGauge("level", func() float64 { return 0.5 })
	depth := 2
	r.RegisterQueue("work", func() int { return depth }, func() int { return 8 })
	busy := NewBusyTracker()
	busy.Record("reader", 1.0)
	r.SetBusy(busy)
	r.Event("degraded", "test switch")

	ext++
	s := r.Snapshot()
	if s.Counters["pushed_total"] != 5 {
		t.Fatalf("pushed_total = %d", s.Counters["pushed_total"])
	}
	if s.Counters["pulled_total"] != 42 {
		t.Fatalf("pulled_total = %d (pull must read at snapshot time)", s.Counters["pulled_total"])
	}
	if st := s.Stages[StageFPGADecode]; st.Count != 2 || st.P50 != 1 || st.Max != 3 {
		t.Fatalf("stage summary = %+v", st)
	}
	if s.Gauges["level"] != 0.5 {
		t.Fatalf("gauge = %v", s.Gauges["level"])
	}
	if q := s.Queues["work"]; q.Len != 2 || q.Cap != 8 {
		t.Fatalf("queue = %+v", q)
	}
	if len(s.Cores) == 0 || s.Cores["reader"] <= 0 {
		t.Fatalf("cores = %v", s.Cores)
	}
	if len(s.Events) != 1 || s.Events[0].Name != "degraded" {
		t.Fatalf("events = %v", s.Events)
	}
	if s.UptimeSeconds <= 0 {
		t.Fatalf("uptime = %v", s.UptimeSeconds)
	}
}

// TestCompleteSpanDerivesStages checks that a finished span feeds the
// derived per-stage histograms and the span-conservation counters.
func TestCompleteSpanDerivesStages(t *testing.T) {
	r := NewRegistry()
	t0 := time.Now()
	sp := Span{
		Batch:     1,
		Collected: t0,
		Published: t0.Add(10 * time.Millisecond),
		Dispatched: t0.Add(12 * time.Millisecond),
		Synced:     t0.Add(15 * time.Millisecond),
		Recycled:   t0.Add(16 * time.Millisecond),
		Images:     4, FPGA: 2, Fallback: 1, Failed: 1,
	}
	r.CompleteSpan(sp)
	s := r.Snapshot()
	for _, stage := range []string{StageAssemble, StageFullQueueWait, StageCopySync, StageRecycle, StageBatchE2E} {
		if s.Stages[stage].Count != 1 {
			t.Fatalf("stage %s count = %d", stage, s.Stages[stage].Count)
		}
	}
	if got := s.Stages[StageBatchE2E].Max; got < 15.9 || got > 16.1 {
		t.Fatalf("batch_e2e = %v ms, want ~16", got)
	}
	if s.Counters["span_images_total"] != 4 ||
		s.Counters["span_images_fpga_total"] != 2 ||
		s.Counters["span_images_fallback_total"] != 1 ||
		s.Counters["span_images_failed_total"] != 1 {
		t.Fatalf("span counters = %v", s.Counters)
	}
	if s.SpansCompleted != 1 || len(s.RecentSpans) != 1 || s.RecentSpans[0].Batch != 1 {
		t.Fatalf("spans: completed=%d recent=%v", s.SpansCompleted, s.RecentSpans)
	}
	// A span missing later stages (never dispatched) must not feed the
	// downstream histograms with garbage.
	r.CompleteSpan(Span{Batch: 2, Collected: t0, Published: t0.Add(time.Millisecond), Images: 1, FPGA: 1})
	if got := r.Snapshot().Stages[StageCopySync].Count; got != 1 {
		t.Fatalf("copy_sync count = %d after partial span", got)
	}
}

// TestSpanRingBounded pins the recent-span ring at spanKeep entries
// while the completed counter keeps the true total.
func TestSpanRingBounded(t *testing.T) {
	r := NewRegistry()
	for i := 0; i < spanKeep+10; i++ {
		r.CompleteSpan(Span{Batch: i + 1})
	}
	s := r.Snapshot()
	if len(s.RecentSpans) != spanKeep {
		t.Fatalf("ring holds %d spans, want %d", len(s.RecentSpans), spanKeep)
	}
	if s.SpansCompleted != int64(spanKeep+10) {
		t.Fatalf("completed = %d", s.SpansCompleted)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Add("images_decoded_total", 7)
	r.Observe(StageFPGADecode, 2)
	r.RegisterGauge("degraded", func() float64 { return 1 })
	r.RegisterQueue("full_batch", func() int { return 3 }, func() int { return 8 })
	r.Event("degraded", "x")
	var b strings.Builder
	if err := r.Snapshot().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"dlbooster_images_decoded_total 7",
		"dlbooster_degraded 1",
		`dlbooster_queue_depth{queue="full_batch"} 3`,
		`dlbooster_queue_capacity{queue="full_batch"} 8`,
		`dlbooster_stage_latency_ms{stage="fpga_decode",quantile="0.5"} 2`,
		`dlbooster_stage_latency_ms_count{stage="fpga_decode"} 1`,
		`dlbooster_events_total{name="degraded"} 1`,
		"dlbooster_spans_completed_total 0",
		"# TYPE dlbooster_images_decoded_total counter",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestSnapshotJSONAndTable(t *testing.T) {
	r := NewRegistry()
	r.Add("images_decoded_total", 1)
	r.Observe(StageFPGADecode, 2)
	r.RegisterQueue("full_batch", func() int { return 0 }, func() int { return 8 })
	s := r.Snapshot()
	data, err := s.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back PipelineSnapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["images_decoded_total"] != 1 || back.Stages[StageFPGADecode].Count != 1 {
		t.Fatalf("JSON round trip lost data: %+v", back)
	}
	tbl := s.Table()
	for _, want := range []string{"STAGE (ms)", "fpga_decode", "COUNTER", "images_decoded_total", "QUEUE", "full_batch"} {
		if !strings.Contains(tbl, want) {
			t.Fatalf("table missing %q:\n%s", want, tbl)
		}
	}
}
