package metrics

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"
)

// FlightNote is one timestamped observation in the flight recorder's
// ring: degradation switches, command revocations, injected faults,
// panics — anything a post-mortem wants on its timeline alongside the
// batch spans. Unlike EventLog (unbounded, snapshot-visible), notes are
// bounded and exist only for the recorder.
type FlightNote struct {
	Name   string    `json:"name"`
	Detail string    `json:"detail"`
	At     time.Time `json:"at"`
}

// MiniSnapshot is the flight recorder's periodic sample: the cheap,
// pull-based subset of a PipelineSnapshot (counters, gauges, queue
// depths) without stage summaries, events or spans, so a ring of them
// stays small while still showing how queue depths and counters moved
// in the seconds before an incident.
type MiniSnapshot struct {
	TakenAt  time.Time             `json:"taken_at"`
	Counters map[string]int64      `json:"counters,omitempty"`
	Gauges   map[string]float64    `json:"gauges,omitempty"`
	Queues   map[string]QueueDepth `json:"queues,omitempty"`
}

// FlightDump is the serialised post-mortem: everything the recorder's
// rings held at dump time, stamped with the reason that triggered it.
// WriteChromeTrace renders it as a loadable timeline.
type FlightDump struct {
	DumpedAt   time.Time      `json:"dumped_at"`
	Reason     string         `json:"reason"`
	SpansTotal int64          `json:"spans_total"`
	Spans      []Span         `json:"spans,omitempty"`
	Notes      []FlightNote   `json:"notes,omitempty"`
	Samples    []MiniSnapshot `json:"samples,omitempty"`
}

// FlightConfig tunes the flight recorder. The zero value is usable:
// default ring sizes, dumps disabled (no DumpDir).
type FlightConfig struct {
	// SpanRing bounds the recent-span ring (default 256).
	SpanRing int
	// NoteRing bounds the note ring (default 256).
	NoteRing int
	// SampleRing bounds the mini-snapshot ring (default 64).
	SampleRing int
	// DumpDir is where triggered dumps land as timestamped JSON files;
	// empty disables dumping (the rings still record).
	DumpDir string
	// DumpOn lists note names that trigger an automatic dump when
	// recorded via Note. Nil means DefaultDumpOn; an explicit empty
	// slice disables automatic dumps (Dump still works).
	DumpOn []string
	// DumpMinInterval rate-limits automatic dumps (default 5s). Forced
	// dumps (Dump, DumpOnPanic) ignore it.
	DumpMinInterval time.Duration
	// MaxDumps caps files written over the recorder's lifetime
	// (default 16), so a flapping fault cannot fill a disk.
	MaxDumps int
}

// DefaultDumpOn is the note-name set that triggers automatic dumps when
// FlightConfig.DumpOn is nil: the FPGA→CPU degradation switch, the
// first wedged-device fault, a backend error and a panic.
func DefaultDumpOn() []string {
	return []string{"degraded", "fault_stuck", "backend_error", "panic"}
}

// FlightRecorder is the always-on black box of the pipeline: three
// fixed-size rings (completed batch spans, notes, periodic
// mini-snapshots) recorded with one short mutex hold each, cheap enough
// to leave running even when full registry tracing is off. On a
// triggering note — a degradation event, a device revocation storm, a
// crash — it dumps the rings to a timestamped JSON file, so post-mortems
// do not depend on having had tracing or scraping enabled beforehand.
//
// All methods are safe on a nil *FlightRecorder and do nothing there,
// the same cost contract as Registry and faults.Injector.
type FlightRecorder struct {
	cfg FlightConfig

	mu         sync.Mutex
	spans      []Span
	spanNext   int
	spansTotal int64
	notes      []FlightNote
	noteNext   int
	samples    []MiniSnapshot
	sampleNext int
	lastDump   time.Time
	dumps      int
}

// NewFlightRecorder builds a recorder with the configured ring sizes
// and dump policy.
func NewFlightRecorder(cfg FlightConfig) *FlightRecorder {
	if cfg.SpanRing <= 0 {
		cfg.SpanRing = 256
	}
	if cfg.NoteRing <= 0 {
		cfg.NoteRing = 256
	}
	if cfg.SampleRing <= 0 {
		cfg.SampleRing = 64
	}
	if cfg.DumpMinInterval <= 0 {
		cfg.DumpMinInterval = 5 * time.Second
	}
	if cfg.MaxDumps <= 0 {
		cfg.MaxDumps = 16
	}
	if cfg.DumpOn == nil {
		cfg.DumpOn = DefaultDumpOn()
	}
	return &FlightRecorder{cfg: cfg}
}

// Span records one completed batch span into the ring. Registries with
// an attached recorder call this from CompleteSpan; components without
// a registry can call it directly.
func (f *FlightRecorder) Span(sp Span) {
	if f == nil {
		return
	}
	f.mu.Lock()
	if len(f.spans) < f.cfg.SpanRing {
		f.spans = append(f.spans, sp)
	} else {
		f.spans[f.spanNext] = sp
		f.spanNext = (f.spanNext + 1) % f.cfg.SpanRing
	}
	f.spansTotal++
	f.mu.Unlock()
}

// Note records a timestamped observation and, when the name is in the
// configured DumpOn set, triggers an automatic dump (rate-limited by
// DumpMinInterval and MaxDumps). The dump file path is returned when a
// dump was written; errors writing it are swallowed — the recorder is
// damage-control apparatus and must never fail the pipeline.
func (f *FlightRecorder) Note(name, detail string) (dumpPath string) {
	if f == nil {
		return ""
	}
	now := time.Now()
	f.mu.Lock()
	n := FlightNote{Name: name, Detail: detail, At: now}
	if len(f.notes) < f.cfg.NoteRing {
		f.notes = append(f.notes, n)
	} else {
		f.notes[f.noteNext] = n
		f.noteNext = (f.noteNext + 1) % f.cfg.NoteRing
	}
	trigger := false
	if f.cfg.DumpDir != "" && f.dumps < f.cfg.MaxDumps &&
		(f.lastDump.IsZero() || now.Sub(f.lastDump) >= f.cfg.DumpMinInterval) {
		for _, want := range f.cfg.DumpOn {
			if name == want {
				trigger = true
				break
			}
		}
	}
	var dump FlightDump
	if trigger {
		f.lastDump = now
		f.dumps++
		dump = f.dumpLocked(name, now)
	}
	f.mu.Unlock()
	if trigger {
		path, err := writeDumpFile(f.cfg.DumpDir, dump)
		if err != nil {
			return ""
		}
		return path
	}
	return ""
}

// Sample records the cheap subset of a snapshot into the sample ring. A
// nil snapshot is ignored.
func (f *FlightRecorder) Sample(s *PipelineSnapshot) {
	if f == nil || s == nil {
		return
	}
	m := MiniSnapshot{
		TakenAt:  s.TakenAt,
		Counters: s.Counters,
		Gauges:   s.Gauges,
		Queues:   s.Queues,
	}
	f.mu.Lock()
	if len(f.samples) < f.cfg.SampleRing {
		f.samples = append(f.samples, m)
	} else {
		f.samples[f.sampleNext] = m
		f.sampleNext = (f.sampleNext + 1) % f.cfg.SampleRing
	}
	f.mu.Unlock()
}

// SampleLoop snapshots the registry into the sample ring at the given
// interval until the returned stop function is called. The goroutine
// exits after stop; stop is idempotent.
func (f *FlightRecorder) SampleLoop(r *Registry, every time.Duration) (stop func()) {
	if f == nil || r == nil || every <= 0 {
		return func() {}
	}
	done := make(chan struct{})
	var once sync.Once
	go func() {
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				f.Sample(r.Snapshot())
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}

// Dump forces a dump now, regardless of the DumpOn set and the
// rate limit (MaxDumps still applies). It returns the file path.
func (f *FlightRecorder) Dump(reason string) (string, error) {
	if f == nil {
		return "", nil
	}
	now := time.Now()
	f.mu.Lock()
	if f.cfg.DumpDir == "" || f.dumps >= f.cfg.MaxDumps {
		f.mu.Unlock()
		return "", fmt.Errorf("metrics: flight dump unavailable (dir %q, %d dumps written)", f.cfg.DumpDir, f.dumps)
	}
	f.lastDump = now
	f.dumps++
	dump := f.dumpLocked(reason, now)
	f.mu.Unlock()
	return writeDumpFile(f.cfg.DumpDir, dump)
}

// DumpOnPanic is meant to be deferred at the top of pipeline
// goroutines: on a panic it records a "panic" note, force-dumps the
// rings, and re-panics so the crash still surfaces. On a normal return
// it does nothing.
func (f *FlightRecorder) DumpOnPanic() {
	if f == nil {
		return
	}
	if r := recover(); r != nil {
		// The note auto-dumps when "panic" is in DumpOn; force a dump
		// only when it did not (custom DumpOn set, or rate-limited).
		if f.Note("panic", fmt.Sprint(r)) == "" {
			_, _ = f.Dump("panic")
		}
		panic(r)
	}
}

// Contents returns a copy of the rings as a FlightDump without writing
// a file — the programmatic dump for tests and in-process analysis.
func (f *FlightRecorder) Contents(reason string) FlightDump {
	if f == nil {
		return FlightDump{}
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dumpLocked(reason, time.Now())
}

// SpansRecorded returns the lifetime count of spans the recorder saw
// (the ring keeps only the most recent SpanRing of them).
func (f *FlightRecorder) SpansRecorded() int64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.spansTotal
}

// DumpsWritten returns the number of dump files written so far.
func (f *FlightRecorder) DumpsWritten() int {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dumps
}

// dumpLocked copies the rings, oldest first, under f.mu.
func (f *FlightRecorder) dumpLocked(reason string, now time.Time) FlightDump {
	d := FlightDump{DumpedAt: now, Reason: reason, SpansTotal: f.spansTotal}
	d.Spans = append(d.Spans, f.spans[f.spanNext:]...)
	d.Spans = append(d.Spans, f.spans[:f.spanNext]...)
	d.Notes = append(d.Notes, f.notes[f.noteNext:]...)
	d.Notes = append(d.Notes, f.notes[:f.noteNext]...)
	d.Samples = append(d.Samples, f.samples[f.sampleNext:]...)
	d.Samples = append(d.Samples, f.samples[:f.sampleNext]...)
	return d
}

// writeDumpFile serialises a dump into dir as
// flight-<UTC timestamp>-<reason>.json, creating dir if needed and
// writing atomically so a concurrent reader never sees a partial file.
func writeDumpFile(dir string, d FlightDump) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	name := fmt.Sprintf("flight-%s-%s.json",
		d.DumpedAt.UTC().Format("20060102T150405.000000000"), sanitizeReason(d.Reason))
	path := filepath.Join(dir, name)
	data, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return "", err
	}
	if err := WriteFileAtomic(path, data); err != nil {
		return "", err
	}
	return path, nil
}

// sanitizeReason maps a free-form reason onto a safe filename fragment.
func sanitizeReason(reason string) string {
	if reason == "" {
		return "manual"
	}
	var b strings.Builder
	for _, r := range reason {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	const maxLen = 40
	s := b.String()
	if len(s) > maxLen {
		s = s[:maxLen]
	}
	return s
}

// WriteFileAtomic writes data to path via a same-directory temp file,
// fsyncs it, and renames it into place, so a crash mid-write can never
// leave a truncated file at path — the contract the periodic snapshot
// file, flight dumps and benchmark results all rely on.
func WriteFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	cleanup := func() {
		tmp.Close()
		os.Remove(tmpName)
	}
	if _, err := tmp.Write(data); err != nil {
		cleanup()
		return err
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return nil
}
