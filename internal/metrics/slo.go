// SLO specs and scorecards: declarative service-level objectives
// (sustained throughput, stage p99 latency, shed/availability budget)
// evaluated against a History window into a Scorecard with per-objective
// attainment, remaining error budget and burn rate. This is the
// judgement layer over the windowed telemetry — dlserve prints it in
// the shutdown report, dlbench embeds it in BENCH_<n>.json, and
// tools/benchdiff gates on it — and it is the objective function the
// ROADMAP's adaptive offloading controller will optimise.

package metrics

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Objective names used in Scorecard entries.
const (
	// ObjectiveThroughput is the sustained-throughput objective
	// (images/s over the window, from images_decoded_total).
	ObjectiveThroughput = "throughput"
	// ObjectiveP99 is the tail-latency objective (a stage's windowed
	// p99 in milliseconds).
	ObjectiveP99 = "p99_latency"
	// ObjectiveShed is the availability objective: the fraction of
	// offered items shed by admission control must stay inside budget.
	ObjectiveShed = "shed_budget"
)

// SLO is a service-level objective spec. Zero-valued targets are unset
// — an SLO judges only the objectives it names. Build one directly or
// with ParseSLO from a "tput=900,p99ms=250,shed=0.001,window=60s"
// command-line spec.
type SLO struct {
	// TargetThroughput is the minimum sustained decode throughput in
	// images/s (0 = not judged).
	TargetThroughput float64 `json:"target_throughput,omitempty"`
	// TargetP99Ms is the maximum windowed p99 of LatencyStage in
	// milliseconds (0 = not judged).
	TargetP99Ms float64 `json:"target_p99_ms,omitempty"`
	// LatencyStage names the stage summary the p99 objective reads
	// (default StageBatchE2E).
	LatencyStage string `json:"latency_stage,omitempty"`
	// ShedBudget is the allowed shed fraction of offered items,
	// e.g. 0.001 = 99.9% availability. Negative = not judged; zero is
	// a valid "no sheds allowed" budget when set via ParseSLO.
	ShedBudget float64 `json:"shed_budget,omitempty"`
	// shedSet records whether ShedBudget was explicitly given (so a
	// zero budget can be distinguished from "unset").
	shedSet bool
	// Window is the trailing evaluation window (0 = the whole history).
	Window time.Duration `json:"window,omitempty"`
}

// ParseSLO parses a comma-separated key=value spec: `tput=<images/s>`,
// `p99ms=<ms>`, `stage=<stage name>` (latency stage, default
// batch_e2e), `shed=<fraction>`, `window=<duration>` (e.g. 60s). At
// least one of tput/p99ms/shed must be present.
func ParseSLO(spec string) (*SLO, error) {
	s := &SLO{LatencyStage: StageBatchE2E, ShedBudget: -1}
	if strings.TrimSpace(spec) == "" {
		return nil, fmt.Errorf("slo: empty spec")
	}
	for _, part := range strings.Split(spec, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("slo: malformed term %q (want key=value)", part)
		}
		key, val := kv[0], kv[1]
		var err error
		switch key {
		case "tput":
			s.TargetThroughput, err = strconv.ParseFloat(val, 64)
		case "p99ms":
			s.TargetP99Ms, err = strconv.ParseFloat(val, 64)
		case "stage":
			s.LatencyStage = val
		case "shed":
			s.ShedBudget, err = strconv.ParseFloat(val, 64)
			s.shedSet = true
		case "window":
			s.Window, err = time.ParseDuration(val)
		default:
			return nil, fmt.Errorf("slo: unknown key %q (want tput/p99ms/stage/shed/window)", key)
		}
		if err != nil {
			return nil, fmt.Errorf("slo: bad value for %s: %v", key, err)
		}
	}
	if s.TargetThroughput < 0 || s.TargetP99Ms < 0 || (s.shedSet && s.ShedBudget < 0) || s.Window < 0 {
		return nil, fmt.Errorf("slo: negative target in %q", spec)
	}
	if s.TargetThroughput == 0 && s.TargetP99Ms == 0 && !s.shedSet {
		return nil, fmt.Errorf("slo: spec %q names no objective (want at least one of tput/p99ms/shed)", spec)
	}
	if !s.shedSet {
		s.ShedBudget = -1
	}
	return s, nil
}

// String re-renders the spec in ParseSLO syntax.
func (s *SLO) String() string {
	var parts []string
	if s.TargetThroughput > 0 {
		parts = append(parts, fmt.Sprintf("tput=%g", s.TargetThroughput))
	}
	if s.TargetP99Ms > 0 {
		parts = append(parts, fmt.Sprintf("p99ms=%g", s.TargetP99Ms))
		if s.LatencyStage != "" && s.LatencyStage != StageBatchE2E {
			parts = append(parts, "stage="+s.LatencyStage)
		}
	}
	if s.ShedBudget >= 0 {
		parts = append(parts, fmt.Sprintf("shed=%g", s.ShedBudget))
	}
	if s.Window > 0 {
		parts = append(parts, "window="+s.Window.String())
	}
	return strings.Join(parts, ",")
}

// Objective is one judged dimension of a Scorecard.
type Objective struct {
	// Name is one of the Objective* constants.
	Name string `json:"name"`
	// Target is the spec's target; Observed is the window's value.
	Target   float64 `json:"target"`
	Observed float64 `json:"observed"`
	// Attainment is observed performance relative to target, oriented
	// so ≥ 1 means met (throughput: observed/target; latency:
	// target/observed; shed: good fraction / required good fraction).
	Attainment float64 `json:"attainment"`
	// Met reports whether the objective held over the window.
	Met bool `json:"met"`
	// BudgetRemaining is the unspent fraction of the error budget in
	// this window (budget objectives only, floored at 0).
	BudgetRemaining float64 `json:"budget_remaining,omitempty"`
	// BurnRate is budget consumed per evaluation window — 1.0 spends
	// exactly the budget; >1 overspends it (budget objectives only; a
	// zero budget with violations reports shedBurnCap).
	BurnRate float64 `json:"burn_rate,omitempty"`
}

// shedBurnCap caps the reported burn rate (keeps a zero budget with
// violations JSON-encodable instead of +Inf).
const shedBurnCap = 1000.0

// Scorecard is an SLO evaluated against one telemetry window: the
// per-objective verdicts plus rolled-up attainment (minimum across
// objectives), remaining error budget (minimum across budget
// objectives, 1 when none), burn rate (maximum) and the overall pass.
type Scorecard struct {
	// Spec is the SLO re-rendered in ParseSLO syntax.
	Spec string `json:"spec"`
	// WindowSeconds and Samples describe the evaluated window.
	WindowSeconds float64 `json:"window_seconds"`
	Samples       int     `json:"samples"`
	// From and To bound the window.
	From time.Time `json:"from"`
	To   time.Time `json:"to"`
	// Objectives holds the per-dimension verdicts, spec order.
	Objectives []Objective `json:"objectives"`
	// Attainment is the minimum attainment across objectives.
	Attainment float64 `json:"attainment"`
	// ErrorBudgetRemaining is the minimum remaining budget across
	// budget objectives (1 when the SLO has none).
	ErrorBudgetRemaining float64 `json:"error_budget_remaining"`
	// BurnRate is the maximum burn rate across budget objectives.
	BurnRate float64 `json:"burn_rate"`
	// Met reports whether every objective held.
	Met bool `json:"met"`
}

// Evaluate judges the SLO against the history's trailing window (the
// spec's Window, or the whole ring when 0). Nil SLOs, nil histories and
// empty windows return nil.
func (s *SLO) Evaluate(h *History) *Scorecard {
	if s == nil {
		return nil
	}
	return s.EvaluateWindow(h.Window(s.Window))
}

// EvaluateWindow judges the SLO against an already-computed window
// rollup (nil or zero-length windows return nil).
func (s *SLO) EvaluateWindow(w *WindowStats) *Scorecard {
	if s == nil || w == nil || w.Seconds <= 0 {
		return nil
	}
	card := &Scorecard{
		Spec:                 s.String(),
		WindowSeconds:        w.Seconds,
		Samples:              w.Samples,
		From:                 w.From,
		To:                   w.To,
		Attainment:           1,
		ErrorBudgetRemaining: 1,
		Met:                  true,
	}
	if s.TargetThroughput > 0 {
		obs := w.Rate("images_decoded_total")
		card.addObjective(Objective{
			Name: ObjectiveThroughput, Target: s.TargetThroughput, Observed: obs,
			Attainment: obs / s.TargetThroughput, Met: obs >= s.TargetThroughput,
		})
	}
	if s.TargetP99Ms > 0 {
		stage := s.LatencyStage
		if stage == "" {
			stage = StageBatchE2E
		}
		obs := w.Stages[stage].P99
		o := Objective{Name: ObjectiveP99, Target: s.TargetP99Ms, Observed: obs}
		switch {
		case obs <= 0:
			// No observations in the window: vacuously met, attainment 1.
			o.Attainment, o.Met = 1, true
		default:
			o.Attainment, o.Met = s.TargetP99Ms/obs, obs <= s.TargetP99Ms
		}
		card.addObjective(o)
	}
	if s.ShedBudget >= 0 {
		shed := float64(w.Counters["serve_shed_total"])
		good := float64(w.Counters["images_decoded_total"])
		offered := shed + good
		var shedRate float64
		if offered > 0 {
			shedRate = shed / offered
		}
		o := Objective{Name: ObjectiveShed, Target: s.ShedBudget, Observed: shedRate, Met: shedRate <= s.ShedBudget}
		if required := 1 - s.ShedBudget; required > 0 {
			o.Attainment = (1 - shedRate) / required
		} else {
			o.Attainment = 1
		}
		switch {
		case s.ShedBudget > 0:
			o.BurnRate = shedRate / s.ShedBudget
		case shedRate > 0:
			o.BurnRate = shedBurnCap
		}
		if o.BurnRate > shedBurnCap {
			o.BurnRate = shedBurnCap
		}
		o.BudgetRemaining = 1 - o.BurnRate
		if o.BudgetRemaining < 0 {
			o.BudgetRemaining = 0
		}
		card.ErrorBudgetRemaining = o.BudgetRemaining
		card.BurnRate = o.BurnRate
		card.addObjective(o)
	}
	return card
}

// addObjective appends an objective and folds it into the rollups.
func (c *Scorecard) addObjective(o Objective) {
	c.Objectives = append(c.Objectives, o)
	if o.Attainment < c.Attainment {
		c.Attainment = o.Attainment
	}
	if !o.Met {
		c.Met = false
	}
}

// Violations lists the unmet objectives as human-readable one-liners
// (empty when the scorecard passes or is nil).
func (c *Scorecard) Violations() []string {
	if c == nil {
		return nil
	}
	var out []string
	for _, o := range c.Objectives {
		if o.Met {
			continue
		}
		switch o.Name {
		case ObjectiveThroughput:
			out = append(out, fmt.Sprintf("throughput %.1f img/s below target %.1f (attainment %.2f)", o.Observed, o.Target, o.Attainment))
		case ObjectiveP99:
			out = append(out, fmt.Sprintf("p99 %.2fms above target %.2fms (attainment %.2f)", o.Observed, o.Target, o.Attainment))
		case ObjectiveShed:
			out = append(out, fmt.Sprintf("shed rate %.4f over budget %.4f (burn rate %.1fx)", o.Observed, o.Target, o.BurnRate))
		default:
			out = append(out, fmt.Sprintf("%s: observed %g vs target %g", o.Name, o.Observed, o.Target))
		}
	}
	return out
}

// Report renders the scorecard as an aligned human-readable block —
// the dlserve shutdown-report / dlbench -slo output.
func (c *Scorecard) Report() string {
	if c == nil {
		return "slo: no telemetry window to judge\n"
	}
	var b strings.Builder
	status := "MET"
	if !c.Met {
		status = "VIOLATED"
	}
	fmt.Fprintf(&b, "SLO %s over %.1fs window (%d samples): %s (attainment %.2f)\n",
		c.Spec, c.WindowSeconds, c.Samples, status, c.Attainment)
	for _, o := range c.Objectives {
		mark := "ok"
		if !o.Met {
			mark = "VIOLATED"
		}
		switch o.Name {
		case ObjectiveThroughput:
			fmt.Fprintf(&b, "  %-12s %8.1f img/s  target ≥ %.1f   attainment %.2f  [%s]\n", o.Name, o.Observed, o.Target, o.Attainment, mark)
		case ObjectiveP99:
			fmt.Fprintf(&b, "  %-12s %8.2f ms     target ≤ %.2f  attainment %.2f  [%s]\n", o.Name, o.Observed, o.Target, o.Attainment, mark)
		case ObjectiveShed:
			fmt.Fprintf(&b, "  %-12s %8.4f        budget ≤ %.4f burn %.2fx budget-left %.2f  [%s]\n",
				o.Name, o.Observed, o.Target, o.BurnRate, o.BudgetRemaining, mark)
		}
	}
	return b.String()
}
