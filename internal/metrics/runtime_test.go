package metrics

import (
	"runtime"
	"strings"
	"testing"
)

func TestRegisterRuntimeGauges(t *testing.T) {
	r := NewRegistry()
	RegisterRuntimeGauges(r)
	// Burn a little garbage so the GC/scheduler histograms have mass.
	for i := 0; i < 100; i++ {
		_ = make([]byte, 1<<12)
	}
	runtime.GC()
	s := r.Snapshot()
	if g := s.Gauges[GaugeGoroutines]; g < 1 {
		t.Fatalf("%s = %v, want ≥ 1", GaugeGoroutines, g)
	}
	if g := s.Gauges[GaugeHeapBytes]; g <= 0 {
		t.Fatalf("%s = %v, want > 0", GaugeHeapBytes, g)
	}
	// The pause/latency p99s can legitimately be ~0 on an idle run but
	// must be present and non-negative.
	for _, name := range []string{GaugeGCPauseP99Ms, GaugeSchedLatencyP99Ms} {
		g, ok := s.Gauges[name]
		if !ok || g < 0 {
			t.Fatalf("%s = %v (present %v), want non-negative gauge", name, g, ok)
		}
	}
	// Visible in both text renderings.
	var b strings.Builder
	if err := s.WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	for _, name := range []string{GaugeGoroutines, GaugeHeapBytes, GaugeGCPauseP99Ms, GaugeSchedLatencyP99Ms} {
		if !strings.Contains(b.String(), name) {
			t.Fatalf("prometheus output lacks %s", name)
		}
	}
	// Nil registry is a no-op.
	RegisterRuntimeGauges(nil)
}

func TestHistP99(t *testing.T) {
	if histP99(nil) != 0 {
		t.Fatal("nil histogram p99 != 0")
	}
}
