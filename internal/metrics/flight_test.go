package metrics

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestFlightNilSafety(t *testing.T) {
	var f *FlightRecorder
	f.Span(Span{Batch: 1})
	if p := f.Note("degraded", "x"); p != "" {
		t.Fatalf("nil recorder dumped to %q", p)
	}
	f.Sample(&PipelineSnapshot{})
	f.SampleLoop(NewRegistry(), time.Millisecond)()
	if _, err := f.Dump("x"); err != nil {
		t.Fatalf("nil Dump: %v", err)
	}
	f.DumpOnPanic()
	if d := f.Contents("x"); len(d.Spans) != 0 {
		t.Fatalf("nil Contents: %+v", d)
	}
	if f.SpansRecorded() != 0 || f.DumpsWritten() != 0 {
		t.Fatal("nil counters nonzero")
	}
}

func TestFlightSpanRingWraps(t *testing.T) {
	f := NewFlightRecorder(FlightConfig{SpanRing: 4})
	for i := 1; i <= 10; i++ {
		f.Span(Span{Batch: i})
	}
	d := f.Contents("test")
	if d.SpansTotal != 10 || f.SpansRecorded() != 10 {
		t.Fatalf("SpansTotal = %d, SpansRecorded = %d, want 10", d.SpansTotal, f.SpansRecorded())
	}
	if len(d.Spans) != 4 {
		t.Fatalf("ring kept %d spans, want 4", len(d.Spans))
	}
	// Oldest-first: batches 7, 8, 9, 10.
	for i, sp := range d.Spans {
		if sp.Batch != 7+i {
			t.Fatalf("Spans[%d].Batch = %d, want %d (oldest-first order)", i, sp.Batch, 7+i)
		}
	}
}

func TestFlightNoteRingWraps(t *testing.T) {
	f := NewFlightRecorder(FlightConfig{NoteRing: 3})
	for _, name := range []string{"a", "b", "c", "d", "e"} {
		f.Note(name, "")
	}
	d := f.Contents("test")
	got := make([]string, len(d.Notes))
	for i, n := range d.Notes {
		got[i] = n.Name
	}
	if strings.Join(got, "") != "cde" {
		t.Fatalf("notes = %v, want [c d e]", got)
	}
}

func TestFlightAutoDumpOnTriggerNote(t *testing.T) {
	dir := t.TempDir()
	f := NewFlightRecorder(FlightConfig{DumpDir: dir})
	f.Span(Span{Batch: 1, Images: 8})
	f.Note("routine", "not a trigger")
	if p := f.Note("irrelevant", "still not"); p != "" {
		t.Fatalf("non-trigger note dumped to %q", p)
	}
	path := f.Note("degraded", "FPGA→CPU fallback engaged")
	if path == "" {
		t.Fatal("trigger note wrote no dump")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var d FlightDump
	if err := json.Unmarshal(data, &d); err != nil {
		t.Fatalf("dump is not valid JSON: %v", err)
	}
	if d.Reason != "degraded" || len(d.Spans) != 1 || len(d.Notes) != 3 {
		t.Fatalf("dump = reason %q, %d spans, %d notes", d.Reason, len(d.Spans), len(d.Notes))
	}
	if f.DumpsWritten() != 1 {
		t.Fatalf("DumpsWritten = %d, want 1", f.DumpsWritten())
	}
	// A second trigger inside DumpMinInterval is rate-limited.
	if p := f.Note("degraded", "again"); p != "" {
		t.Fatalf("rate-limited note still dumped to %q", p)
	}
}

func TestFlightDumpForcedAndCapped(t *testing.T) {
	dir := t.TempDir()
	f := NewFlightRecorder(FlightConfig{DumpDir: dir, MaxDumps: 2, DumpMinInterval: time.Hour})
	if p := f.Note("degraded", "x"); p == "" {
		t.Fatal("first trigger note wrote no dump")
	}
	// Dump bypasses the hour-long rate limit...
	path, err := f.Dump("operator request")
	if err != nil || path == "" {
		t.Fatalf("forced dump: %v (path %q)", err, path)
	}
	// ...but MaxDumps still applies.
	if _, err := f.Dump("one too many"); err == nil {
		t.Fatal("dump past MaxDumps succeeded")
	}
	files, _ := filepath.Glob(filepath.Join(dir, "flight-*.json"))
	if len(files) != 2 {
		t.Fatalf("found %d dump files, want 2: %v", len(files), files)
	}
}

func TestFlightDumpDisabledWithoutDir(t *testing.T) {
	f := NewFlightRecorder(FlightConfig{})
	if p := f.Note("degraded", "x"); p != "" {
		t.Fatalf("recorder without DumpDir dumped to %q", p)
	}
	if _, err := f.Dump("x"); err == nil {
		t.Fatal("Dump without DumpDir succeeded")
	}
}

func TestFlightDumpOnPanic(t *testing.T) {
	dir := t.TempDir()
	f := NewFlightRecorder(FlightConfig{DumpDir: dir})
	f.Span(Span{Batch: 42})
	func() {
		defer func() {
			if recover() == nil {
				t.Error("DumpOnPanic swallowed the panic")
			}
		}()
		defer f.DumpOnPanic()
		panic("buffer accounting violated")
	}()
	files, err := filepath.Glob(filepath.Join(dir, "flight-*-panic.json"))
	if err != nil || len(files) != 1 {
		t.Fatalf("panic dump files = %v (%v)", files, err)
	}
	data, _ := os.ReadFile(files[0])
	var d FlightDump
	if err := json.Unmarshal(data, &d); err != nil {
		t.Fatal(err)
	}
	if len(d.Spans) != 1 || d.Spans[0].Batch != 42 {
		t.Fatalf("panic dump spans = %+v", d.Spans)
	}
	found := false
	for _, n := range d.Notes {
		if n.Name == "panic" && strings.Contains(n.Detail, "accounting") {
			found = true
		}
	}
	if !found {
		t.Fatalf("panic note missing from %+v", d.Notes)
	}
}

func TestFlightSampleRing(t *testing.T) {
	f := NewFlightRecorder(FlightConfig{SampleRing: 2})
	for i := 1; i <= 3; i++ {
		f.Sample(&PipelineSnapshot{
			TakenAt:  time.Unix(int64(i), 0),
			Counters: map[string]int64{"n": int64(i)},
			Queues:   map[string]QueueDepth{"full_batch": {Len: i, Cap: 8}},
		})
	}
	f.Sample(nil) // ignored
	d := f.Contents("test")
	if len(d.Samples) != 2 {
		t.Fatalf("kept %d samples, want 2", len(d.Samples))
	}
	if d.Samples[0].Counters["n"] != 2 || d.Samples[1].Counters["n"] != 3 {
		t.Fatalf("samples out of order: %+v", d.Samples)
	}
}

func TestFlightSampleLoop(t *testing.T) {
	reg := NewRegistry()
	reg.Add("ticks", 1)
	f := NewFlightRecorder(FlightConfig{})
	stop := f.SampleLoop(reg, time.Millisecond)
	defer stop()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if len(f.Contents("t").Samples) > 0 {
			stop()
			stop() // idempotent
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("sample loop recorded nothing within 2s")
}

func TestRegistryForwardsToAttachedFlight(t *testing.T) {
	dir := t.TempDir()
	reg := NewRegistry()
	f := NewFlightRecorder(FlightConfig{DumpDir: dir})
	reg.AttachFlight(f)

	reg.CompleteSpan(Span{Batch: 7, Images: 8})
	if f.SpansRecorded() != 1 {
		t.Fatalf("attached recorder saw %d spans, want 1", f.SpansRecorded())
	}
	// A registry event lands as a note — and "degraded" triggers a dump.
	reg.Event("degraded", "chaos")
	d := f.Contents("test")
	if len(d.Notes) != 1 || d.Notes[0].Name != "degraded" {
		t.Fatalf("notes = %+v", d.Notes)
	}
	if f.DumpsWritten() != 1 {
		t.Fatalf("DumpsWritten = %d, want 1 (Event should auto-dump)", f.DumpsWritten())
	}
	// Nil registry and unattached registry stay safe.
	var nilReg *Registry
	nilReg.AttachFlight(f)
	NewRegistry().CompleteSpan(Span{Batch: 1})
}

func TestWriteFileAtomic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	if err := WriteFileAtomic(path, []byte("first")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(path, []byte("second")); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil || string(data) != "second" {
		t.Fatalf("read %q, %v", data, err)
	}
	// No temp files left behind.
	files, _ := filepath.Glob(filepath.Join(filepath.Dir(path), "*.tmp*"))
	if len(files) != 0 {
		t.Fatalf("leftover temp files: %v", files)
	}
}
