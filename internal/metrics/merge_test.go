package metrics

// Fleet rollup tests. The centrepiece is the counter-conservation
// property test — for random per-shard snapshots the FleetSnapshot
// totals must equal the sum of the shard counters, and merged stage
// histogram counts must equal the sum of the per-shard counts — the
// fleet-level sibling of the span-conservation family in
// internal/core/snapshot_test.go.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"
)

// randomSnapshot builds one plausible per-shard snapshot from the
// shared name pools, so merges exercise overlapping and disjoint keys.
func randomSnapshot(rng *rand.Rand) *PipelineSnapshot {
	counterNames := []string{
		"images_decoded_total", "decode_errors_total", "serve_shed_total",
		"batches_published_total", "fleet_steals_total",
	}
	stageNames := []string{StageFPGADecode, StageCopySync, StageBatchE2E}
	queueNames := []string{"ingest_items", "full_batch"}
	s := &PipelineSnapshot{
		TakenAt:       time.Unix(1700000000+rng.Int63n(1000), 0),
		UptimeSeconds: rng.Float64() * 100,
		Counters:      make(map[string]int64),
		Gauges:        make(map[string]float64),
		Stages:        make(map[string]Summary),
		Queues:        make(map[string]QueueDepth),
	}
	for _, n := range counterNames {
		if rng.Intn(4) > 0 {
			s.Counters[n] = rng.Int63n(10000)
		}
	}
	for _, n := range stageNames {
		if rng.Intn(4) > 0 {
			mean := rng.Float64() * 10
			s.Stages[n] = Summary{
				Count: 1 + rng.Intn(500), Mean: mean,
				P50: mean, P95: mean * 2, P99: mean * 3,
				Min: mean / 2, Max: mean * 4,
				StdDevPopulationEst: rng.Float64() * 2,
			}
		}
	}
	for _, n := range queueNames {
		capacity := 1 + rng.Intn(64)
		s.Queues[n] = QueueDepth{Len: rng.Intn(capacity + 1), Cap: capacity}
	}
	s.Gauges["degraded"] = float64(rng.Intn(2))
	s.SpansCompleted = rng.Int63n(100)
	return s
}

func TestFleetCounterConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 200; iter++ {
		n := 1 + rng.Intn(6)
		shards := make([]*PipelineSnapshot, n)
		for i := range shards {
			if rng.Intn(8) == 0 {
				continue // a shard without telemetry merges as absent
			}
			shards[i] = randomSnapshot(rng)
		}
		f := MergeSnapshots(shards)

		wantCounters := make(map[string]int64)
		wantStageCounts := make(map[string]int)
		wantQueues := make(map[string]QueueDepth)
		var wantSpans int64
		var wantDegraded float64
		for _, s := range shards {
			if s == nil {
				continue
			}
			for k, v := range s.Counters {
				wantCounters[k] += v
			}
			for k, v := range s.Stages {
				wantStageCounts[k] += v.Count
			}
			for k, q := range s.Queues {
				cur := wantQueues[k]
				wantQueues[k] = QueueDepth{Len: cur.Len + q.Len, Cap: cur.Cap + q.Cap}
			}
			wantSpans += s.SpansCompleted
			wantDegraded += s.Gauges["degraded"]
		}
		if len(f.Total.Counters) != len(wantCounters) {
			t.Fatalf("iter %d: %d counters, want %d", iter, len(f.Total.Counters), len(wantCounters))
		}
		for k, want := range wantCounters {
			if got := f.Total.Counters[k]; got != want {
				t.Fatalf("iter %d: counter %s = %d, want sum %d", iter, k, got, want)
			}
		}
		for k, want := range wantStageCounts {
			if got := f.Total.Stages[k].Count; got != want {
				t.Fatalf("iter %d: stage %s count = %d, want sum %d", iter, k, got, want)
			}
		}
		for k, want := range wantQueues {
			if got := f.Total.Queues[k]; got != want {
				t.Fatalf("iter %d: queue %s = %+v, want %+v", iter, k, got, want)
			}
		}
		if f.Total.SpansCompleted != wantSpans {
			t.Fatalf("iter %d: spans %d, want %d", iter, f.Total.SpansCompleted, wantSpans)
		}
		if f.Total.Gauges["degraded"] != wantDegraded {
			t.Fatalf("iter %d: degraded gauge %v, want %v (count of degraded shards)",
				iter, f.Total.Gauges["degraded"], wantDegraded)
		}
	}
}

func TestMergeSummariesStatistics(t *testing.T) {
	a := Summary{Count: 10, Mean: 2, P50: 2, P95: 4, P99: 5, Min: 1, Max: 6, StdDevPopulationEst: 1}
	b := Summary{Count: 30, Mean: 6, P50: 6, P95: 8, P99: 9, Min: 3, Max: 20, StdDevPopulationEst: 2}
	m := MergeSummaries(a, b)
	if m.Count != 40 {
		t.Fatalf("count %d", m.Count)
	}
	if want := 0.25*2 + 0.75*6; math.Abs(m.Mean-want) > 1e-9 {
		t.Fatalf("mean %v, want %v", m.Mean, want)
	}
	if m.Min != 1 || m.Max != 20 {
		t.Fatalf("extremes %v..%v", m.Min, m.Max)
	}
	if m.P95 <= a.P95 || m.P95 >= b.P95+1 {
		t.Fatalf("merged p95 %v out of plausible range", m.P95)
	}
	// Merging with an empty summary is the identity.
	if got := MergeSummaries(a, Summary{}); got != a {
		t.Fatalf("identity merge: %+v", got)
	}
	if got := MergeSummaries(Summary{}, b); got != b {
		t.Fatalf("identity merge: %+v", got)
	}
}

// healthySnapshot and decoderBoundSnapshot build the two queue
// signatures the doctor distinguishes, for the spread-sentence tests.
func healthySnapshot() *PipelineSnapshot {
	return &PipelineSnapshot{
		Counters: map[string]int64{"images_decoded_total": 1000},
		Gauges:   map[string]float64{},
		Stages:   map[string]Summary{StageFPGADecode: {Count: 100, Mean: 1, P95: 2}},
		Queues: map[string]QueueDepth{
			"full_batch":  {Len: 4, Cap: 8},
			"trans0_full": {Len: 1, Cap: 2},
		},
	}
}

func decoderBoundSnapshot() *PipelineSnapshot {
	return &PipelineSnapshot{
		Counters: map[string]int64{"images_decoded_total": 100},
		Gauges:   map[string]float64{},
		Stages:   map[string]Summary{StageFPGADecode: {Count: 100, Mean: 20, P95: 40}},
		Queues: map[string]QueueDepth{
			"full_batch":  {Len: 0, Cap: 8},
			"trans0_full": {Len: 0, Cap: 2},
		},
	}
}

func TestDiagnoseFleetOutlierSentence(t *testing.T) {
	shards := []*PipelineSnapshot{
		healthySnapshot(), healthySnapshot(), healthySnapshot(), decoderBoundSnapshot(),
	}
	fd := DiagnoseFleet(MergeSnapshots(shards), nil)
	if fd.Summary != "shard 3 is decoder-bound, the rest are healthy" {
		t.Fatalf("spread sentence: %q", fd.Summary)
	}
	if len(fd.Shards) != 4 || fd.Shards[3].Verdict != VerdictDecoderBound {
		t.Fatalf("per-shard verdicts: %+v", fd.Shards)
	}
	if fd.Fleet == nil || fd.Verdict != fd.Fleet.Verdict {
		t.Fatalf("fleet verdict %q not the rollup's", fd.Verdict)
	}
	if !strings.Contains(fd.Report(), "fleet: shard 3 is decoder-bound") {
		t.Fatalf("report:\n%s", fd.Report())
	}

	uniform := DiagnoseFleet(MergeSnapshots([]*PipelineSnapshot{healthySnapshot(), healthySnapshot()}), nil)
	if uniform.Summary != "all 2 shards are healthy" {
		t.Fatalf("uniform sentence: %q", uniform.Summary)
	}
}

func TestFleetTraceExportPerShardPids(t *testing.T) {
	now := time.Now()
	span := func(batch int) Span {
		return Span{Batch: batch, Collected: now, Published: now.Add(time.Millisecond),
			Dispatched: now.Add(2 * time.Millisecond), Synced: now.Add(3 * time.Millisecond),
			Recycled: now.Add(4 * time.Millisecond), Images: 8}
	}
	f := MergeSnapshots([]*PipelineSnapshot{
		{RecentSpans: []Span{span(1)}},
		{RecentSpans: []Span{span(2)}},
	})
	var buf bytes.Buffer
	if err := f.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			PID  int            `json:"pid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	pids := map[int]bool{}
	names := map[string]bool{}
	for _, e := range doc.TraceEvents {
		pids[e.PID] = true
		if e.Name == "process_name" {
			names[fmt.Sprint(e.Args["name"])] = true
		}
	}
	if !pids[1] || !pids[2] {
		t.Fatalf("expected shard pids 1 and 2, got %v", pids)
	}
	if !names["shard 0"] || !names["shard 1"] {
		t.Fatalf("process names: %v", names)
	}
}

func TestCompareBenchSpeedup(t *testing.T) {
	mk := func(shards int, tput float64) *BenchResult {
		return &BenchResult{
			SchemaVersion: BenchSchemaVersion, Name: "traced-e2e-shards",
			Config:     BenchConfig{Images: 64, Batch: 8, Size: 96, Boards: 1, Shards: shards, ShardRate: 40},
			Throughput: tput,
		}
	}
	if reg, err := CompareBenchSpeedup(mk(1, 40), mk(2, 78), 1.7); err != nil || reg != nil {
		t.Fatalf("1.95x speedup failed the 1.7x gate: %v %v", reg, err)
	}
	reg, err := CompareBenchSpeedup(mk(1, 40), mk(2, 60), 1.7)
	if err != nil || reg == nil {
		t.Fatalf("1.5x speedup passed the 1.7x gate: %v", err)
	}
	if reg.Limit != 68 {
		t.Fatalf("limit %v", reg.Limit)
	}
	bad := mk(2, 100)
	bad.Config.Batch = 16
	if _, err := CompareBenchSpeedup(mk(1, 40), bad, 1.7); err == nil {
		t.Fatal("config mismatch beyond shards accepted")
	}
	other := mk(2, 100)
	other.Name = "traced-e2e"
	if _, err := CompareBenchSpeedup(mk(1, 40), other, 1.7); err == nil {
		t.Fatal("scenario name mismatch accepted")
	}
}
