package metrics

import (
	"strings"
	"testing"
	"time"
)

// doctorSnap builds a synthetic snapshot with the queue signature and
// stage stats a scenario needs.
func doctorSnap(mut func(*PipelineSnapshot)) *PipelineSnapshot {
	s := &PipelineSnapshot{
		TakenAt:       time.Now(),
		UptimeSeconds: 10,
		Counters: map[string]int64{
			"images_decoded_total": 1000,
			"fpga0_cmds_total":     1000,
		},
		Gauges: map[string]float64{"degraded": 0},
		Stages: map[string]Summary{
			StageFPGADecode: {Count: 1000, Mean: 2, P50: 2, P95: 3},
			StageBatchE2E:   {Count: 125, Mean: 20, P95: 30},
		},
		Queues: map[string]QueueDepth{
			"full_batch":    {Len: 2, Cap: 8},
			"trans0_full":   {Len: 1, Cap: 2},
			"hugepage_free": {Len: 4, Cap: 8},
		},
	}
	mut(s)
	return s
}

func TestDoctorDecoderBound(t *testing.T) {
	s := doctorSnap(func(s *PipelineSnapshot) {
		// Downstream drained, decoder saturated: 100 img/s × 10ms mean
		// on one board = util 1.0.
		s.Queues["full_batch"] = QueueDepth{Len: 0, Cap: 8}
		s.Queues["trans0_full"] = QueueDepth{Len: 0, Cap: 2}
		s.Stages[StageFPGADecode] = Summary{Count: 1000, Mean: 10, P50: 10, P95: 12}
	})
	d := Diagnose(s, nil)
	if d.Verdict != VerdictDecoderBound {
		t.Fatalf("verdict = %q, want %q\n%s", d.Verdict, VerdictDecoderBound, d.Report())
	}
	if d.Throughput != 100 {
		t.Fatalf("throughput = %v, want 100", d.Throughput)
	}
	if !strings.Contains(d.Report(), "Little's law") {
		t.Fatalf("report lacks the utilisation evidence:\n%s", d.Report())
	}
}

func TestDoctorDispatcherBound(t *testing.T) {
	s := doctorSnap(func(s *PipelineSnapshot) {
		// Full queue backed up while engines starve.
		s.Queues["full_batch"] = QueueDepth{Len: 8, Cap: 8}
		s.Queues["trans0_full"] = QueueDepth{Len: 0, Cap: 2}
		s.Stages[StageCopySync] = Summary{Count: 125, Mean: 15, P95: 20}
	})
	if d := Diagnose(s, nil); d.Verdict != VerdictDispatcherBound {
		t.Fatalf("verdict = %q, want %q\n%s", d.Verdict, VerdictDispatcherBound, d.Report())
	}
}

func TestDoctorGPUBound(t *testing.T) {
	s := doctorSnap(func(s *PipelineSnapshot) {
		s.Queues["full_batch"] = QueueDepth{Len: 6, Cap: 8}
		s.Queues["trans0_full"] = QueueDepth{Len: 2, Cap: 2}
	})
	d := Diagnose(s, nil)
	if d.Verdict != VerdictGPUBound {
		t.Fatalf("verdict = %q, want %q\n%s", d.Verdict, VerdictGPUBound, d.Report())
	}
	if d.Findings[0].Confidence != 0.95 {
		t.Fatalf("confidence = %v, want 0.95 (Full queue also ≥ half)", d.Findings[0].Confidence)
	}
}

func TestDoctorPoolStarved(t *testing.T) {
	s := doctorSnap(func(s *PipelineSnapshot) {
		// Both queues drained, no free buffer, reader blocked in
		// get_item longer than it decodes.
		s.Queues["full_batch"] = QueueDepth{Len: 0, Cap: 8}
		s.Queues["trans0_full"] = QueueDepth{Len: 0, Cap: 2}
		s.Queues["hugepage_free"] = QueueDepth{Len: 0, Cap: 4}
		s.Stages[StageGetItemWait] = Summary{Count: 100, Mean: 8, P95: 9}
	})
	if d := Diagnose(s, nil); d.Verdict != VerdictPoolStarved {
		t.Fatalf("verdict = %q, want %q\n%s", d.Verdict, VerdictPoolStarved, d.Report())
	}
}

func TestDoctorHealthy(t *testing.T) {
	if d := Diagnose(doctorSnap(func(*PipelineSnapshot) {}), nil); d.Verdict != VerdictHealthy {
		t.Fatalf("verdict = %q, want %q\n%s", d.Verdict, VerdictHealthy, d.Report())
	}
}

func TestDoctorInconclusiveWithoutProbes(t *testing.T) {
	s := doctorSnap(func(s *PipelineSnapshot) {
		delete(s.Queues, "trans0_full")
	})
	if d := Diagnose(s, nil); d.Verdict != VerdictInconclusive {
		t.Fatalf("verdict = %q, want %q\n%s", d.Verdict, VerdictInconclusive, d.Report())
	}
}

func TestDoctorDegradedHealthFinding(t *testing.T) {
	s := doctorSnap(func(s *PipelineSnapshot) {
		// Degraded: the CPU fallback stage substitutes for decode, and a
		// high-confidence "degraded" health finding ranks first without
		// becoming the verdict.
		s.Gauges["degraded"] = 1
		s.Counters["fallback_decodes_total"] = 500
		s.Queues["full_batch"] = QueueDepth{Len: 0, Cap: 8}
		s.Queues["trans0_full"] = QueueDepth{Len: 0, Cap: 2}
		s.Stages[StageCPUFallback] = Summary{Count: 500, Mean: 10, P95: 12}
		delete(s.Stages, StageFPGADecode)
	})
	d := Diagnose(s, nil)
	if d.Verdict != VerdictDecoderBound {
		t.Fatalf("verdict = %q, want %q (CPU fallback is the decode stage)\n%s", d.Verdict, VerdictDecoderBound, d.Report())
	}
	if d.Findings[0].Code != "degraded" {
		t.Fatalf("top finding = %q, want degraded\n%s", d.Findings[0].Code, d.Report())
	}
}

func TestDoctorIntervalThroughput(t *testing.T) {
	prev := doctorSnap(func(s *PipelineSnapshot) {
		s.UptimeSeconds = 5
		s.Counters["images_decoded_total"] = 400
	})
	cur := doctorSnap(func(s *PipelineSnapshot) {
		s.UptimeSeconds = 10
		s.Counters["images_decoded_total"] = 1000
	})
	d := Diagnose(cur, prev)
	if d.Throughput != 120 {
		t.Fatalf("interval throughput = %v, want (1000-400)/(10-5) = 120", d.Throughput)
	}
	if Diagnose(nil, nil) != nil {
		t.Fatal("Diagnose(nil) != nil")
	}
}

func TestDoctorIngestOverloaded(t *testing.T) {
	// Sheds in the interval win the verdict even when the internal
	// queues would otherwise read healthy.
	s := doctorSnap(func(s *PipelineSnapshot) {
		s.Queues["ingest_items"] = QueueDepth{Len: 256, Cap: 256}
		s.Counters["serve_shed_total"] = 42
	})
	d := Diagnose(s, nil)
	if d.Verdict != VerdictIngestOverloaded {
		t.Fatalf("verdict = %q, want %q\n%s", d.Verdict, VerdictIngestOverloaded, d.Report())
	}
	if d.Findings[0].Confidence != 0.95 {
		t.Fatalf("confidence = %v, want 0.95 (active sheds)", d.Findings[0].Confidence)
	}

	// A backed-up ingest queue alone (no sheds yet) also flags, at
	// lower confidence.
	s = doctorSnap(func(s *PipelineSnapshot) {
		s.Queues["ingest_items"] = QueueDepth{Len: 200, Cap: 256}
	})
	d = Diagnose(s, nil)
	if d.Verdict != VerdictIngestOverloaded {
		t.Fatalf("verdict = %q, want %q (queue at fill ≥ %.2f)\n%s", d.Verdict, VerdictIngestOverloaded, fillHigh, d.Report())
	}
	if d.Findings[0].Confidence != 0.85 {
		t.Fatalf("confidence = %v, want 0.85 (no sheds)", d.Findings[0].Confidence)
	}

	// A drained ingest queue must not shadow the regular signatures.
	s = doctorSnap(func(s *PipelineSnapshot) {
		s.Queues["ingest_items"] = QueueDepth{Len: 3, Cap: 256}
	})
	if d := Diagnose(s, nil); d.Verdict != VerdictHealthy {
		t.Fatalf("verdict = %q, want %q with idle ingest queue\n%s", d.Verdict, VerdictHealthy, d.Report())
	}
}

func TestDoctorCacheThrashingFinding(t *testing.T) {
	s := doctorSnap(func(s *PipelineSnapshot) {
		s.Counters["cache_evictions_total"] = 9
		s.Counters["cache_demotions_total"] = 40
		s.Counters["cache_redecode_images_total"] = 288
		s.Gauges["cache_spill_bytes"] = 1 << 26
	})
	d := Diagnose(s, nil)
	var found *Finding
	for i := range d.Findings {
		if d.Findings[i].Code == "cache-thrashing" {
			found = &d.Findings[i]
		}
	}
	if found == nil {
		t.Fatalf("no cache-thrashing finding in\n%s", d.Report())
	}
	if !strings.Contains(strings.Join(found.Evidence, " "), "cache_evictions_total +9") {
		t.Fatalf("evidence lacks the eviction delta: %v", found.Evidence)
	}
	// A health finding, never the verdict: the structural diagnosis is
	// untouched by a thrashing cache.
	if d.Verdict == "cache-thrashing" {
		t.Fatalf("cache-thrashing became the verdict:\n%s", d.Report())
	}
	// No evictions in the interval → no finding.
	quiet := Diagnose(doctorSnap(func(s *PipelineSnapshot) {
		s.Counters["cache_demotions_total"] = 40
	}), nil)
	for _, f := range quiet.Findings {
		if f.Code == "cache-thrashing" {
			t.Fatalf("finding fired without evictions:\n%s", quiet.Report())
		}
	}
}

func TestDoctorCmdTimeoutFinding(t *testing.T) {
	s := doctorSnap(func(s *PipelineSnapshot) {
		s.Counters["cmd_timeouts_total"] = 7
	})
	d := Diagnose(s, nil)
	var found bool
	for _, f := range d.Findings {
		if f.Code == "cmd-timeouts" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no cmd-timeouts finding in\n%s", d.Report())
	}
}
