package metrics

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestParseSLO(t *testing.T) {
	s, err := ParseSLO("tput=900,p99ms=250,shed=0.001,stage=infer_e2e,window=60s")
	if err != nil {
		t.Fatalf("ParseSLO: %v", err)
	}
	if s.TargetThroughput != 900 || s.TargetP99Ms != 250 || s.ShedBudget != 0.001 ||
		s.LatencyStage != "infer_e2e" || s.Window != time.Minute {
		t.Fatalf("parsed = %+v", s)
	}
	if _, err := ParseSLO(""); err == nil {
		t.Fatal("empty spec should error")
	}
	if _, err := ParseSLO("stage=batch_e2e"); err == nil {
		t.Fatal("spec with no objective should error")
	}
	if _, err := ParseSLO("tput=abc"); err == nil {
		t.Fatal("bad number should error")
	}
	if _, err := ParseSLO("bogus=1"); err == nil {
		t.Fatal("unknown key should error")
	}
	if _, err := ParseSLO("tput=-5"); err == nil {
		t.Fatal("negative target should error")
	}
	// shed=0 is a valid "no sheds allowed" budget.
	z, err := ParseSLO("shed=0")
	if err != nil {
		t.Fatalf("shed=0: %v", err)
	}
	if z.ShedBudget != 0 {
		t.Fatalf("shed budget = %v, want 0", z.ShedBudget)
	}
}

func TestSLOStringRoundTrip(t *testing.T) {
	for _, spec := range []string{"tput=900", "p99ms=250,stage=infer_e2e", "tput=500,shed=0.01,window=30s"} {
		s, err := ParseSLO(spec)
		if err != nil {
			t.Fatalf("ParseSLO(%q): %v", spec, err)
		}
		r, err := ParseSLO(s.String())
		if err != nil {
			t.Fatalf("reparse(%q): %v", s.String(), err)
		}
		if r.TargetThroughput != s.TargetThroughput || r.TargetP99Ms != s.TargetP99Ms ||
			r.ShedBudget != s.ShedBudget || r.Window != s.Window {
			t.Fatalf("round trip %q → %q changed the spec", spec, s.String())
		}
	}
}

// sloHistory builds a history sustaining the given throughput
// (images/s), batch-e2e p99 (ms) and shed rate over 10 one-second
// samples.
func sloHistory(tput float64, p99 float64, shedPerSec int64) *History {
	t0 := time.Now()
	h := NewHistory(16)
	for i := 0; i <= 10; i++ {
		n := int64(tput * float64(i))
		s := &PipelineSnapshot{
			TakenAt:       t0.Add(time.Duration(i) * time.Second),
			UptimeSeconds: float64(i),
			Counters: map[string]int64{
				"images_decoded_total": n,
				"serve_shed_total":     shedPerSec * int64(i),
			},
			Stages: map[string]Summary{
				StageBatchE2E: {Count: int(n / 8), Mean: p99 / 2, P95: p99 * 0.9, P99: p99},
			},
		}
		h.Record(s)
	}
	return h
}

func TestScorecardMet(t *testing.T) {
	h := sloHistory(1000, 100, 0)
	s, _ := ParseSLO("tput=900,p99ms=250,shed=0.001")
	card := s.Evaluate(h)
	if card == nil || !card.Met {
		t.Fatalf("scorecard = %+v, want met", card)
	}
	if card.Attainment < 1 {
		t.Fatalf("attainment = %v, want ≥ 1", card.Attainment)
	}
	if card.ErrorBudgetRemaining != 1 || card.BurnRate != 0 {
		t.Fatalf("budget = %v burn = %v, want untouched", card.ErrorBudgetRemaining, card.BurnRate)
	}
	if len(card.Violations()) != 0 {
		t.Fatalf("violations = %v, want none", card.Violations())
	}
	if !strings.Contains(card.Report(), "MET") {
		t.Fatalf("report lacks MET:\n%s", card.Report())
	}
}

func TestScorecardThroughputViolated(t *testing.T) {
	h := sloHistory(400, 100, 0)
	s, _ := ParseSLO("tput=900")
	card := s.Evaluate(h)
	if card.Met {
		t.Fatalf("scorecard met at 400 img/s vs target 900:\n%s", card.Report())
	}
	ob := card.Objectives[0]
	if ob.Name != ObjectiveThroughput || ob.Met {
		t.Fatalf("objective = %+v", ob)
	}
	// 400/900 ≈ 0.444 attainment.
	if ob.Attainment < 0.43 || ob.Attainment > 0.46 {
		t.Fatalf("attainment = %v, want ≈ 0.44", ob.Attainment)
	}
	if len(card.Violations()) != 1 || !strings.Contains(card.Violations()[0], "throughput") {
		t.Fatalf("violations = %v", card.Violations())
	}
}

func TestScorecardLatencyViolated(t *testing.T) {
	h := sloHistory(1000, 400, 0)
	s, _ := ParseSLO("p99ms=250")
	card := s.Evaluate(h)
	if card.Met {
		t.Fatalf("scorecard met at p99 400ms vs target 250:\n%s", card.Report())
	}
	if card.Attainment != 250.0/400 {
		t.Fatalf("attainment = %v, want 0.625", card.Attainment)
	}
}

func TestScorecardBurnRate(t *testing.T) {
	// 1000 decoded + 10 shed per second → shed rate ≈ 0.0099 against a
	// 0.005 budget: burn ≈ 2×, budget exhausted.
	h := sloHistory(1000, 100, 10)
	s, _ := ParseSLO("shed=0.005")
	card := s.Evaluate(h)
	if card.Met {
		t.Fatalf("scorecard met while overspending shed budget:\n%s", card.Report())
	}
	if card.BurnRate < 1.9 || card.BurnRate > 2.1 {
		t.Fatalf("burn rate = %v, want ≈ 2", card.BurnRate)
	}
	if card.ErrorBudgetRemaining != 0 {
		t.Fatalf("budget remaining = %v, want 0 (overspent)", card.ErrorBudgetRemaining)
	}
	// Half the budget → burn ≈ 0.5, half remaining.
	s2, _ := ParseSLO("shed=0.02")
	card2 := s2.Evaluate(h)
	if !card2.Met {
		t.Fatalf("scorecard violated inside budget:\n%s", card2.Report())
	}
	if card2.BurnRate < 0.45 || card2.BurnRate > 0.55 {
		t.Fatalf("burn rate = %v, want ≈ 0.5", card2.BurnRate)
	}
	if rem := card2.ErrorBudgetRemaining; rem < 0.45 || rem > 0.55 {
		t.Fatalf("budget remaining = %v, want ≈ 0.5", rem)
	}
}

func TestScorecardZeroShedBudget(t *testing.T) {
	s, _ := ParseSLO("shed=0")
	// No sheds: met, burn 0.
	if card := s.Evaluate(sloHistory(100, 10, 0)); !card.Met || card.BurnRate != 0 {
		t.Fatalf("zero-budget zero-shed card = %+v", card)
	}
	// Any shed: violated, burn capped (and still JSON-encodable).
	card := s.Evaluate(sloHistory(100, 10, 1))
	if card.Met || card.BurnRate != shedBurnCap {
		t.Fatalf("zero-budget with sheds = %+v", card)
	}
	if _, err := json.Marshal(card); err != nil {
		t.Fatalf("scorecard not JSON-encodable: %v", err)
	}
}

func TestScorecardEmptyWindow(t *testing.T) {
	s, _ := ParseSLO("tput=100")
	if s.Evaluate(nil) != nil {
		t.Fatal("nil history should evaluate to nil")
	}
	if s.Evaluate(NewHistory(4)) != nil {
		t.Fatal("empty history should evaluate to nil")
	}
	var nilSLO *SLO
	if nilSLO.Evaluate(sloHistory(100, 10, 0)) != nil {
		t.Fatal("nil SLO should evaluate to nil")
	}
	// A p99 objective over a window with no stage observations is
	// vacuously met, not a division by zero.
	p, _ := ParseSLO("p99ms=100,stage=nonexistent_stage")
	card := p.Evaluate(sloHistory(100, 10, 0))
	if card == nil || !card.Objectives[0].Met || card.Objectives[0].Attainment != 1 {
		t.Fatalf("vacuous latency objective = %+v", card)
	}
}

func TestScorecardWindowed(t *testing.T) {
	// Throughput collapses in the last 3 seconds; a 3s-window SLO sees
	// the collapse while a whole-history SLO is diluted by the good era.
	t0 := time.Now()
	h := NewHistory(32)
	decoded := int64(0)
	for i := 0; i <= 10; i++ {
		if i <= 7 {
			decoded += 1000
		} else {
			decoded += 100
		}
		h.Record(&PipelineSnapshot{
			TakenAt:       t0.Add(time.Duration(i) * time.Second),
			UptimeSeconds: float64(i),
			Counters:      map[string]int64{"images_decoded_total": decoded},
		})
	}
	whole, _ := ParseSLO("tput=500")
	if card := whole.Evaluate(h); card.Met == false {
		t.Fatalf("whole-history card should pass on the diluted average:\n%s", card.Report())
	}
	recent, _ := ParseSLO("tput=500,window=3s")
	card := recent.Evaluate(h)
	if card.Met {
		t.Fatalf("3s-window card should see the collapse:\n%s", card.Report())
	}
	if card.Objectives[0].Observed != 100 {
		t.Fatalf("windowed throughput = %v, want 100", card.Objectives[0].Observed)
	}
}
