package metrics

import (
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func benchFixture() *BenchResult {
	return &BenchResult{
		SchemaVersion:  BenchSchemaVersion,
		Name:           "traced-e2e",
		TakenAt:        time.Now().UTC(),
		GitSHA:         "deadbeef",
		GoVersion:      "go1.22",
		Config:         BenchConfig{Images: 64, Batch: 8, Size: 96, Boards: 1},
		ElapsedSeconds: 1.0,
		Throughput:     100,
		Stages: map[string]Summary{
			StageFPGADecode: {Count: 64, Mean: 8, P95: 10},
			StageCopySync:   {Count: 8, Mean: 0.05, P95: 0.08},
		},
		Counters: map[string]int64{"images_decoded_total": 64},
	}
}

func TestBenchResultRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_0.json")
	r := benchFixture()
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBenchResult(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Throughput != r.Throughput || got.Config != r.Config || got.GitSHA != r.GitSHA {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if got.Stages[StageFPGADecode].P95 != 10 {
		t.Fatalf("stages lost: %+v", got.Stages)
	}
}

func TestBenchResultSchemaVersionCheck(t *testing.T) {
	path := filepath.Join(t.TempDir(), "old.json")
	r := benchFixture()
	r.SchemaVersion = BenchSchemaVersion + 1
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBenchResult(path); err == nil || !strings.Contains(err.Error(), "schema version") {
		t.Fatalf("mismatched schema accepted: %v", err)
	}
}

func TestCompareBenchResultsPass(t *testing.T) {
	base, cur := benchFixture(), benchFixture()
	// Half the throughput is exactly the 2x limit — still passing.
	cur.Throughput = 50
	cur.Stages[StageFPGADecode] = Summary{Count: 64, Mean: 16, P95: 20}
	regs, err := CompareBenchResults(base, cur, 2.0, 1.0)
	if err != nil || len(regs) != 0 {
		t.Fatalf("regs = %v, err = %v", regs, err)
	}
}

func TestCompareBenchResultsThroughputRegression(t *testing.T) {
	base, cur := benchFixture(), benchFixture()
	cur.Throughput = 40
	regs, err := CompareBenchResults(base, cur, 2.0, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || regs[0].Metric != "throughput" {
		t.Fatalf("regs = %v", regs)
	}
	if !strings.Contains(regs[0].String(), "throughput") {
		t.Fatalf("String() = %q", regs[0].String())
	}
}

func TestCompareBenchResultsStageRegression(t *testing.T) {
	base, cur := benchFixture(), benchFixture()
	cur.Stages[StageFPGADecode] = Summary{Count: 64, Mean: 20, P95: 25}
	regs, err := CompareBenchResults(base, cur, 2.0, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || regs[0].Metric != StageFPGADecode+" p95" {
		t.Fatalf("regs = %v", regs)
	}
}

func TestCompareBenchResultsFloorAbsorbsNoise(t *testing.T) {
	base, cur := benchFixture(), benchFixture()
	// copy_sync p95 jumps 10x but stays under the 1ms floor × 2.
	cur.Stages[StageCopySync] = Summary{Count: 8, Mean: 0.5, P95: 0.8}
	regs, err := CompareBenchResults(base, cur, 2.0, 1.0)
	if err != nil || len(regs) != 0 {
		t.Fatalf("sub-floor jump flagged: %v (err %v)", regs, err)
	}
}

// benchCard evaluates a spec against a synthetic history sustaining the
// given throughput, for attaching scorecards to bench fixtures.
func benchCard(t *testing.T, spec string, tput float64) *Scorecard {
	t.Helper()
	s, err := ParseSLO(spec)
	if err != nil {
		t.Fatal(err)
	}
	card := s.Evaluate(sloHistory(tput, 10, 0))
	if card == nil {
		t.Fatal("no scorecard from synthetic history")
	}
	return card
}

func TestCompareBenchSLOGate(t *testing.T) {
	base, cur := benchFixture(), benchFixture()

	// No scorecard on the new result is misuse, not a pass.
	if _, err := CompareBenchSLO(base, cur); err == nil {
		t.Fatal("missing scorecard accepted")
	}
	if _, err := CompareBenchSLO(base, nil); err == nil {
		t.Fatal("nil result accepted")
	}

	// Met scorecard: gate passes even when the baseline has none.
	cur.SLO = benchCard(t, "tput=900", 1000)
	regs, err := CompareBenchSLO(base, cur)
	if err != nil || len(regs) != 0 {
		t.Fatalf("met scorecard: regs = %v, err = %v", regs, err)
	}

	// Violated objective fails the gate; the baseline's observed value
	// fills the Base column when its scorecard shares the spec.
	base.SLO = benchCard(t, "tput=900", 1000)
	cur.SLO = benchCard(t, "tput=900", 400)
	regs, err = CompareBenchSLO(base, cur)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || regs[0].Metric != "slo "+ObjectiveThroughput {
		t.Fatalf("regs = %v", regs)
	}
	if regs[0].Base != 1000 || regs[0].New != 400 || regs[0].Limit != 900 {
		t.Fatalf("regression columns = %+v", regs[0])
	}

	// Different specs are never compared.
	base.SLO = benchCard(t, "tput=500", 1000)
	if _, err := CompareBenchSLO(base, cur); err == nil {
		t.Fatal("mismatched SLO specs compared")
	}

	// Scorecards survive the BENCH_<n>.json round trip.
	path := filepath.Join(t.TempDir(), "BENCH_slo.json")
	if err := cur.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBenchResult(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.SLO == nil || got.SLO.Spec != cur.SLO.Spec || got.SLO.Met {
		t.Fatalf("scorecard lost in round trip: %+v", got.SLO)
	}
}

func TestCompareBenchSLOAutotuneShedGate(t *testing.T) {
	// A result carrying the autotune static ledger is additionally
	// gated on shed fractions: autotune must shed a smaller fraction
	// of its offered load than the static config did.
	cur := benchFixture()
	cur.SLO = benchCard(t, "tput=900", 1000)
	cur.Counters = map[string]int64{
		"images_decoded_total":        800,
		"serve_shed_total":            200, // 20% shed
		"static_images_decoded_total": 400,
		"static_shed_total":           600, // 60% shed
	}
	regs, err := CompareBenchSLO(nil, cur)
	if err != nil || len(regs) != 0 {
		t.Fatalf("improved shed fraction: regs = %v, err = %v", regs, err)
	}

	// Shedding at least the static fraction fails the gate.
	cur.Counters["serve_shed_total"] = 1200 // 60% shed
	cur.Counters["images_decoded_total"] = 800
	regs, err = CompareBenchSLO(nil, cur)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || regs[0].Metric != "slo autotune shed fraction" {
		t.Fatalf("regs = %v", regs)
	}
	if regs[0].Base != 0.6 || regs[0].New != 0.6 {
		t.Fatalf("regression columns = %+v", regs[0])
	}

	// Results without the ledger (every other scenario) are untouched.
	delete(cur.Counters, "static_shed_total")
	regs, err = CompareBenchSLO(nil, cur)
	if err != nil || len(regs) != 0 {
		t.Fatalf("ledger-free result gated: regs = %v, err = %v", regs, err)
	}
}

func TestCompareBenchResultsMisuse(t *testing.T) {
	base, cur := benchFixture(), benchFixture()
	if _, err := CompareBenchResults(nil, cur, 2.0, 1.0); err == nil {
		t.Fatal("nil base accepted")
	}
	if _, err := CompareBenchResults(base, cur, 1.0, 1.0); err == nil {
		t.Fatal("threshold 1.0 accepted")
	}
	cur.Config.Batch = 16
	if _, err := CompareBenchResults(base, cur, 2.0, 1.0); err == nil {
		t.Fatal("mismatched configs compared")
	}
}
