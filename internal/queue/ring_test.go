package queue

import (
	"testing"
	"testing/quick"
)

func TestRingBasics(t *testing.T) {
	r := NewRing[int](3)
	if !r.Empty() || r.Full() || r.Len() != 0 || r.Cap() != 3 {
		t.Fatalf("fresh ring state wrong: len=%d cap=%d", r.Len(), r.Cap())
	}
	r.PushBack(1)
	r.PushBack(2)
	r.PushBack(3)
	if !r.Full() {
		t.Fatal("ring should be full")
	}
	if r.Front() != 1 {
		t.Fatalf("Front = %d, want 1", r.Front())
	}
	if r.At(2) != 3 {
		t.Fatalf("At(2) = %d, want 3", r.At(2))
	}
	if v := r.PopFront(); v != 1 {
		t.Fatalf("PopFront = %d, want 1", v)
	}
	r.PushBack(4) // wraps around
	want := []int{2, 3, 4}
	for i, w := range want {
		if got := r.At(i); got != w {
			t.Fatalf("At(%d) = %d, want %d", i, got, w)
		}
	}
}

func TestRingPanics(t *testing.T) {
	cases := []struct {
		name string
		f    func()
	}{
		{"zero capacity", func() { NewRing[int](0) }},
		{"push full", func() {
			r := NewRing[int](1)
			r.PushBack(1)
			r.PushBack(2)
		}},
		{"pop empty", func() {
			r := NewRing[int](1)
			r.PopFront()
		}},
		{"front empty", func() {
			r := NewRing[int](1)
			r.Front()
		}},
		{"at out of range", func() {
			r := NewRing[int](2)
			r.PushBack(1)
			r.At(1)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", tc.name)
				}
			}()
			tc.f()
		})
	}
}

// TestRingMatchesSliceModel drives a ring and a plain-slice model with the
// same random operation sequence and checks they stay equivalent.
func TestRingMatchesSliceModel(t *testing.T) {
	f := func(ops []uint8) bool {
		const capacity = 5
		r := NewRing[uint8](capacity)
		var model []uint8
		for _, op := range ops {
			if op%2 == 0 { // push if possible
				if r.Full() {
					if len(model) != capacity {
						return false
					}
					continue
				}
				r.PushBack(op)
				model = append(model, op)
			} else { // pop if possible
				if r.Empty() {
					if len(model) != 0 {
						return false
					}
					continue
				}
				got := r.PopFront()
				want := model[0]
				model = model[1:]
				if got != want {
					return false
				}
			}
			if r.Len() != len(model) {
				return false
			}
			for i := range model {
				if r.At(i) != model[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
