package queue

// Ring is a fixed-capacity circular FIFO buffer. It is not safe for
// concurrent use; Queue wraps it with locking. Keeping the storage logic
// separate lets the single-goroutine components (the FPGA decoder's
// internal stage buffers, the simulator's per-server queues) use it
// without paying for synchronisation.
type Ring[T any] struct {
	buf  []T
	head int // index of the oldest element
	n    int // number of elements stored
}

// NewRing returns an empty ring with the given capacity. It panics if
// capacity is not positive.
func NewRing[T any](capacity int) Ring[T] {
	if capacity <= 0 {
		panic("queue: ring capacity must be positive")
	}
	return Ring[T]{buf: make([]T, capacity)}
}

// Cap returns the fixed capacity.
func (r *Ring[T]) Cap() int { return len(r.buf) }

// Len returns the number of stored elements.
func (r *Ring[T]) Len() int { return r.n }

// Empty reports whether the ring holds no elements.
func (r *Ring[T]) Empty() bool { return r.n == 0 }

// Full reports whether the ring is at capacity.
func (r *Ring[T]) Full() bool { return r.n == len(r.buf) }

// PushBack appends v. It panics if the ring is full; callers are expected
// to check Full (Queue does so under its lock).
func (r *Ring[T]) PushBack(v T) {
	if r.Full() {
		panic("queue: push to full ring")
	}
	r.buf[(r.head+r.n)%len(r.buf)] = v
	r.n++
}

// PopFront removes and returns the oldest element. It panics if the ring
// is empty.
func (r *Ring[T]) PopFront() T {
	if r.Empty() {
		panic("queue: pop from empty ring")
	}
	v := r.buf[r.head]
	var zero T
	r.buf[r.head] = zero // release the reference for the garbage collector
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	return v
}

// Front returns the oldest element without removing it. It panics if the
// ring is empty.
func (r *Ring[T]) Front() T {
	if r.Empty() {
		panic("queue: front of empty ring")
	}
	return r.buf[r.head]
}

// At returns the element i positions from the front (0 = oldest). It
// panics if i is out of range.
func (r *Ring[T]) At(i int) T {
	if i < 0 || i >= r.n {
		panic("queue: ring index out of range")
	}
	return r.buf[(r.head+i)%len(r.buf)]
}
