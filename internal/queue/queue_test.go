package queue

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestPushPopOrder(t *testing.T) {
	q := New[int](4)
	for i := 0; i < 4; i++ {
		if err := q.Push(i); err != nil {
			t.Fatalf("Push(%d): %v", i, err)
		}
	}
	for i := 0; i < 4; i++ {
		v, err := q.Pop()
		if err != nil {
			t.Fatalf("Pop: %v", err)
		}
		if v != i {
			t.Fatalf("Pop = %d, want %d", v, i)
		}
	}
}

func TestLenCap(t *testing.T) {
	q := New[string](3)
	if q.Cap() != 3 {
		t.Fatalf("Cap = %d, want 3", q.Cap())
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d, want 0", q.Len())
	}
	_ = q.Push("a")
	_ = q.Push("b")
	if q.Len() != 2 {
		t.Fatalf("Len = %d, want 2", q.Len())
	}
	_, _ = q.Pop()
	if q.Len() != 1 {
		t.Fatalf("Len = %d, want 1", q.Len())
	}
}

func TestNewPanicsOnBadCapacity(t *testing.T) {
	for _, c := range []int{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) did not panic", c)
				}
			}()
			New[int](c)
		}()
	}
}

func TestPushBlocksWhenFull(t *testing.T) {
	q := New[int](1)
	if err := q.Push(1); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- q.Push(2) }()
	select {
	case <-done:
		t.Fatal("Push returned while queue was full")
	case <-time.After(20 * time.Millisecond):
	}
	if v, err := q.Pop(); err != nil || v != 1 {
		t.Fatalf("Pop = %d, %v", v, err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("blocked Push: %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("Push did not unblock after Pop")
	}
	if v, err := q.Pop(); err != nil || v != 2 {
		t.Fatalf("Pop = %d, %v", v, err)
	}
}

func TestPopBlocksWhenEmpty(t *testing.T) {
	q := New[int](1)
	got := make(chan int, 1)
	go func() {
		v, err := q.Pop()
		if err != nil {
			t.Errorf("Pop: %v", err)
		}
		got <- v
	}()
	select {
	case <-got:
		t.Fatal("Pop returned from empty queue")
	case <-time.After(20 * time.Millisecond):
	}
	if err := q.Push(7); err != nil {
		t.Fatal(err)
	}
	select {
	case v := <-got:
		if v != 7 {
			t.Fatalf("Pop = %d, want 7", v)
		}
	case <-time.After(time.Second):
		t.Fatal("Pop did not unblock after Push")
	}
}

func TestCloseUnblocksProducersAndConsumers(t *testing.T) {
	q := New[int](1)
	_ = q.Push(1)
	pushErr := make(chan error, 1)
	go func() { pushErr <- q.Push(2) }()
	popErr := make(chan error, 1)
	qe := New[int](1)
	go func() {
		_, err := qe.Pop()
		popErr <- err
	}()
	time.Sleep(10 * time.Millisecond)
	q.Close()
	qe.Close()
	if err := <-pushErr; !errors.Is(err, ErrClosed) {
		t.Fatalf("blocked Push after Close: %v, want ErrClosed", err)
	}
	if err := <-popErr; !errors.Is(err, ErrClosed) {
		t.Fatalf("blocked Pop after Close: %v, want ErrClosed", err)
	}
}

func TestCloseDrainsRemaining(t *testing.T) {
	q := New[int](4)
	_ = q.Push(1)
	_ = q.Push(2)
	q.Close()
	if !q.Closed() {
		t.Fatal("Closed = false after Close")
	}
	for want := 1; want <= 2; want++ {
		v, err := q.Pop()
		if err != nil || v != want {
			t.Fatalf("Pop = %d, %v; want %d, nil", v, err, want)
		}
	}
	if _, err := q.Pop(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Pop on drained closed queue: %v, want ErrClosed", err)
	}
	if err := q.Push(3); !errors.Is(err, ErrClosed) {
		t.Fatalf("Push on closed queue: %v, want ErrClosed", err)
	}
	q.Close() // second Close must be a no-op
}

func TestTryPushTryPop(t *testing.T) {
	q := New[int](1)
	ok, err := q.TryPush(1)
	if !ok || err != nil {
		t.Fatalf("TryPush = %v, %v", ok, err)
	}
	ok, err = q.TryPush(2)
	if ok || err != nil {
		t.Fatalf("TryPush on full = %v, %v; want false, nil", ok, err)
	}
	v, ok, err := q.TryPop()
	if !ok || err != nil || v != 1 {
		t.Fatalf("TryPop = %d, %v, %v", v, ok, err)
	}
	_, ok, err = q.TryPop()
	if ok || err != nil {
		t.Fatalf("TryPop on empty = %v, %v; want false, nil", ok, err)
	}
	q.Close()
	if _, err := q.TryPush(3); !errors.Is(err, ErrClosed) {
		t.Fatalf("TryPush on closed: %v", err)
	}
	if _, _, err := q.TryPop(); !errors.Is(err, ErrClosed) {
		t.Fatalf("TryPop on closed empty: %v", err)
	}
}

func TestPeek(t *testing.T) {
	q := New[int](2)
	if _, ok := q.Peek(); ok {
		t.Fatal("Peek on empty = ok")
	}
	_ = q.Push(5)
	_ = q.Push(6)
	v, ok := q.Peek()
	if !ok || v != 5 {
		t.Fatalf("Peek = %d, %v", v, ok)
	}
	if q.Len() != 2 {
		t.Fatalf("Peek consumed an element: Len = %d", q.Len())
	}
}

func TestDrain(t *testing.T) {
	q := New[int](8)
	for i := 0; i < 5; i++ {
		_ = q.Push(i)
	}
	got := q.Drain()
	if len(got) != 5 {
		t.Fatalf("Drain returned %d elements, want 5", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("Drain[%d] = %d, want %d", i, v, i)
		}
	}
	if q.Len() != 0 {
		t.Fatalf("Len after Drain = %d", q.Len())
	}
	if got := q.Drain(); got != nil {
		t.Fatalf("Drain on empty = %v, want nil", got)
	}
}

func TestDrainUnblocksProducer(t *testing.T) {
	q := New[int](1)
	_ = q.Push(1)
	done := make(chan error, 1)
	go func() { done <- q.Push(2) }()
	time.Sleep(10 * time.Millisecond)
	q.Drain()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(time.Second):
		t.Fatal("Push did not unblock after Drain")
	}
}

func TestPushAll(t *testing.T) {
	q := New[int](8)
	n, err := q.PushAll([]int{1, 2, 3})
	if n != 3 || err != nil {
		t.Fatalf("PushAll = %d, %v", n, err)
	}
	q.Close()
	n, err = q.PushAll([]int{4})
	if n != 0 || !errors.Is(err, ErrClosed) {
		t.Fatalf("PushAll on closed = %d, %v", n, err)
	}
}

func TestPopTimeout(t *testing.T) {
	q := New[int](1)
	start := time.Now()
	_, ok, err := q.PopTimeout(30 * time.Millisecond)
	if ok || err != nil {
		t.Fatalf("PopTimeout on empty = %v, %v", ok, err)
	}
	if time.Since(start) < 25*time.Millisecond {
		t.Fatal("PopTimeout returned before the deadline")
	}
	_ = q.Push(9)
	v, ok, err := q.PopTimeout(time.Second)
	if !ok || err != nil || v != 9 {
		t.Fatalf("PopTimeout = %d, %v, %v", v, ok, err)
	}
	q.Close()
	if _, _, err := q.PopTimeout(time.Millisecond); !errors.Is(err, ErrClosed) {
		t.Fatalf("PopTimeout on closed = %v", err)
	}
}

// TestConcurrentTransfer exercises the queue with many producers and
// consumers and checks that every pushed value is popped exactly once.
func TestConcurrentTransfer(t *testing.T) {
	const (
		producers   = 8
		consumers   = 8
		perProducer = 1000
	)
	q := New[int](16)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				if err := q.Push(p*perProducer + i); err != nil {
					t.Errorf("Push: %v", err)
					return
				}
			}
		}(p)
	}
	var mu sync.Mutex
	seen := make(map[int]int)
	var cg sync.WaitGroup
	for c := 0; c < consumers; c++ {
		cg.Add(1)
		go func() {
			defer cg.Done()
			for {
				v, err := q.Pop()
				if err != nil {
					return
				}
				mu.Lock()
				seen[v]++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	q.Close()
	cg.Wait()
	if len(seen) != producers*perProducer {
		t.Fatalf("received %d distinct values, want %d", len(seen), producers*perProducer)
	}
	for v, n := range seen {
		if n != 1 {
			t.Fatalf("value %d received %d times", v, n)
		}
	}
}

// TestQueueFIFOProperty: for any sequence of values pushed by a single
// producer, a single consumer observes exactly that sequence.
func TestQueueFIFOProperty(t *testing.T) {
	f := func(vs []int16) bool {
		if len(vs) == 0 {
			return true
		}
		q := New[int16](3) // small capacity forces blocking interleavings
		go func() {
			for _, v := range vs {
				_ = q.Push(v)
			}
			q.Close()
		}()
		for i := 0; ; i++ {
			v, err := q.Pop()
			if err != nil {
				return i == len(vs)
			}
			if i >= len(vs) || v != vs[i] {
				return false
			}
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
