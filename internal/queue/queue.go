// Package queue provides the bounded blocking queues that connect the
// stages of a DLBooster pipeline.
//
// The paper's host bridger (§3.4) is built around pairs of bounded FIFO
// queues: the Free_Batch_Queue / Full_Batch_Queue pair between FPGAReader
// and Dispatcher, and the per-GPU Trans Queues between the Dispatcher and
// each compute engine. All of them need the same semantics: multiple
// producers and consumers, blocking push when full, blocking pop when
// empty, and a way to shut the pipeline down cleanly. Queue implements
// exactly that; Ring is the non-concurrent building block it sits on.
package queue

import (
	"errors"
	"sync"
	"time"
)

// ErrClosed is returned by operations on a queue that has been closed.
// A closed queue rejects new elements but still drains the ones it holds.
var ErrClosed = errors.New("queue: closed")

// Queue is a bounded, blocking, multi-producer multi-consumer FIFO queue.
//
// The zero value is not usable; construct with New. All methods are safe
// for concurrent use.
type Queue[T any] struct {
	mu       sync.Mutex
	notEmpty *sync.Cond
	notFull  *sync.Cond
	ring     Ring[T]
	closed   bool
}

// New returns an empty queue with the given capacity. It panics if
// capacity is not positive: an unbuffered handoff is a channel's job, and
// every queue in the pipeline represents real buffering (batch buffers in
// flight), so a zero capacity is always a configuration bug.
func New[T any](capacity int) *Queue[T] {
	if capacity <= 0 {
		panic("queue: capacity must be positive")
	}
	q := &Queue[T]{ring: NewRing[T](capacity)}
	q.notEmpty = sync.NewCond(&q.mu)
	q.notFull = sync.NewCond(&q.mu)
	return q
}

// Cap returns the queue's fixed capacity.
func (q *Queue[T]) Cap() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.ring.Cap()
}

// Len returns the number of elements currently queued.
func (q *Queue[T]) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.ring.Len()
}

// Closed reports whether Close has been called.
func (q *Queue[T]) Closed() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.closed
}

// Close marks the queue closed. Blocked producers are woken and receive
// ErrClosed; blocked consumers are woken and drain the remaining elements,
// after which Pop reports ErrClosed. Closing twice is a no-op.
func (q *Queue[T]) Close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return
	}
	q.closed = true
	q.notEmpty.Broadcast()
	q.notFull.Broadcast()
}

// Push appends v, blocking while the queue is full. It returns ErrClosed
// if the queue is closed before space becomes available.
func (q *Queue[T]) Push(v T) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.ring.Full() && !q.closed {
		q.notFull.Wait()
	}
	if q.closed {
		return ErrClosed
	}
	q.ring.PushBack(v)
	q.notEmpty.Signal()
	return nil
}

// TryPush appends v without blocking. It returns false if the queue is
// full, and ErrClosed if the queue is closed.
func (q *Queue[T]) TryPush(v T) (bool, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return false, ErrClosed
	}
	if q.ring.Full() {
		return false, nil
	}
	q.ring.PushBack(v)
	q.notEmpty.Signal()
	return true, nil
}

// Pop removes and returns the oldest element, blocking while the queue is
// empty. Once the queue is closed and drained it returns ErrClosed.
func (q *Queue[T]) Pop() (T, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.ring.Empty() && !q.closed {
		q.notEmpty.Wait()
	}
	if q.ring.Empty() {
		var zero T
		return zero, ErrClosed
	}
	v := q.ring.PopFront()
	q.notFull.Signal()
	return v, nil
}

// TryPop removes and returns the oldest element without blocking. The
// boolean is false when the queue is empty; the error is ErrClosed only
// when the queue is both empty and closed.
func (q *Queue[T]) TryPop() (T, bool, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.ring.Empty() {
		var zero T
		if q.closed {
			return zero, false, ErrClosed
		}
		return zero, false, nil
	}
	v := q.ring.PopFront()
	q.notFull.Signal()
	return v, true, nil
}

// Peek returns the oldest element without removing it. The boolean is
// false when the queue is empty. Peek mirrors the free_batch_queue.peak()
// probe in Algorithm 1 of the paper: FPGAReader checks for an available
// buffer before deciding whether to drain completions first.
func (q *Queue[T]) Peek() (T, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.ring.Empty() {
		var zero T
		return zero, false
	}
	return q.ring.Front(), true
}

// PopTimeout behaves like Pop but gives up after d, returning ok=false.
// err is ErrClosed only when the queue is closed and drained.
//
// sync.Cond has no timed wait, so the deadline is delivered by a timer
// that raises a per-call flag under the lock and broadcasts: the waiter
// sleeps on the condition variable like Pop does (no busy-polling, no
// wakeups while nothing changes) and re-checks the flag alongside the
// usual predicates.
func (q *Queue[T]) PopTimeout(d time.Duration) (v T, ok bool, err error) {
	if d <= 0 {
		return q.TryPop()
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	var timedOut bool
	timer := time.AfterFunc(d, func() {
		q.mu.Lock()
		timedOut = true
		q.mu.Unlock()
		q.notEmpty.Broadcast()
	})
	defer timer.Stop()
	for q.ring.Empty() && !q.closed && !timedOut {
		q.notEmpty.Wait()
	}
	if !q.ring.Empty() {
		v = q.ring.PopFront()
		q.notFull.Signal()
		return v, true, nil
	}
	if q.closed {
		return v, false, ErrClosed
	}
	return v, false, nil
}

// PushTimeout behaves like Push but gives up after d, returning
// ok=false with a nil error. err is ErrClosed when the queue closes
// before space appears. The FPGAReader uses it to bound submission to a
// wedged decoder whose command FIFO never drains. The deadline is
// delivered the same way as PopTimeout's.
func (q *Queue[T]) PushTimeout(v T, d time.Duration) (ok bool, err error) {
	if d <= 0 {
		return q.TryPush(v)
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	var timedOut bool
	timer := time.AfterFunc(d, func() {
		q.mu.Lock()
		timedOut = true
		q.mu.Unlock()
		q.notFull.Broadcast()
	})
	defer timer.Stop()
	for q.ring.Full() && !q.closed && !timedOut {
		q.notFull.Wait()
	}
	if q.closed {
		return false, ErrClosed
	}
	if !q.ring.Full() {
		q.ring.PushBack(v)
		q.notEmpty.Signal()
		return true, nil
	}
	return false, nil
}

// Drain removes and returns every element currently queued, without
// blocking. It corresponds to fpga_channel.drain_out() in Algorithm 1:
// collect all completions that have accumulated so far.
func (q *Queue[T]) Drain() []T {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.ring.Empty() {
		return nil
	}
	out := make([]T, 0, q.ring.Len())
	for !q.ring.Empty() {
		out = append(out, q.ring.PopFront())
	}
	q.notFull.Broadcast()
	return out
}

// PushAll pushes each element of vs in order, blocking as needed. It stops
// at the first error and returns the number of elements pushed.
func (q *Queue[T]) PushAll(vs []T) (int, error) {
	for i, v := range vs {
		if err := q.Push(v); err != nil {
			return i, err
		}
	}
	return len(vs), nil
}
