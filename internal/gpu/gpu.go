// Package gpu simulates the GPU devices of the paper's compute engine:
// device memory that host code cannot touch directly, CUDA-like streams
// with asynchronous ordered copies, and busy-time accounting.
//
// What the paper needed from its P100s was (a) a separate memory space
// reached only through explicit (async) copies — which forces the
// Dispatcher design of Algorithm 3 — and (b) a compute resource whose
// throughput per model is known. (a) is reproduced functionally here;
// (b) lives in the engine package, driven by internal/perf rates.
package gpu

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrClosed is returned by operations on a closed device or stream.
var ErrClosed = errors.New("gpu: closed")

// ErrOutOfMemory is returned when an allocation exceeds device memory.
var ErrOutOfMemory = errors.New("gpu: out of device memory")

// Device is one simulated GPU.
type Device struct {
	id int

	mu       sync.Mutex
	memTotal int64
	memUsed  int64
	closed   bool
	streams  []*Stream

	copyBusy   time.Duration // accumulated copy-engine busy time
	copyBytes  int64
	kernelBusy time.Duration // accumulated compute (kernel) busy time
}

// RecordKernelBusy accrues compute-engine busy time — model kernels from
// the engines, and decode kernels from the nvJPEG backend. The ratio of
// decode to total kernel time is the GPU-stolen share the paper measures
// for nvJPEG (≈30 %, §5.3).
func (d *Device) RecordKernelBusy(dur time.Duration) {
	if dur < 0 {
		return
	}
	d.mu.Lock()
	d.kernelBusy += dur
	d.mu.Unlock()
}

// KernelBusy returns accumulated compute busy time.
func (d *Device) KernelBusy() time.Duration {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.kernelBusy
}

// NewDevice creates a device with the given memory capacity.
func NewDevice(id int, memBytes int64) (*Device, error) {
	if memBytes <= 0 {
		return nil, fmt.Errorf("gpu: memory %d must be positive", memBytes)
	}
	return &Device{id: id, memTotal: memBytes}, nil
}

// ID returns the device ordinal.
func (d *Device) ID() int { return d.id }

// MemTotal returns the device memory capacity in bytes.
func (d *Device) MemTotal() int64 { return d.memTotal }

// MemUsed returns the currently allocated bytes.
func (d *Device) MemUsed() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.memUsed
}

// CopyStats returns accumulated copy-engine busy time and bytes moved.
func (d *Device) CopyStats() (time.Duration, int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.copyBusy, d.copyBytes
}

// Buffer is a device-memory allocation. Host code must not retain the
// returned views of Bytes across Free.
type Buffer struct {
	dev  *Device
	data []byte

	mu    sync.Mutex
	freed bool
}

// Malloc allocates device memory.
func (d *Device) Malloc(n int) (*Buffer, error) {
	if n <= 0 {
		return nil, fmt.Errorf("gpu: allocation size %d must be positive", n)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil, ErrClosed
	}
	if d.memUsed+int64(n) > d.memTotal {
		return nil, fmt.Errorf("gpu: alloc %d with %d/%d used: %w", n, d.memUsed, d.memTotal, ErrOutOfMemory)
	}
	d.memUsed += int64(n)
	return &Buffer{dev: d, data: make([]byte, n)}, nil
}

// Free releases the buffer's device memory. Double free is an error.
func (b *Buffer) Free() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.freed {
		return errors.New("gpu: double free")
	}
	b.freed = true
	b.dev.mu.Lock()
	b.dev.memUsed -= int64(len(b.data))
	b.dev.mu.Unlock()
	b.data = nil
	return nil
}

// Size returns the buffer length in bytes.
func (b *Buffer) Size() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.data)
}

// Bytes exposes device memory for the kernels that run "on" the device
// (the engine's compute and verification code). Freed buffers return nil.
func (b *Buffer) Bytes() []byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.data
}

// op is one enqueued stream operation.
type op struct {
	run  func()
	done chan struct{} // non-nil for synchronisation markers
}

// Stream executes operations in submission order, asynchronously from
// the caller — the semantics of a CUDA stream that Algorithm 3 relies on
// (submit all copies, then synchronise once).
type Stream struct {
	dev  *Device
	ops  chan op
	wg   sync.WaitGroup
	mu   sync.Mutex
	dead bool
}

// NewStream creates a stream backed by one executor goroutine.
func (d *Device) NewStream() (*Stream, error) {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil, ErrClosed
	}
	s := &Stream{dev: d, ops: make(chan op, 1024)}
	d.streams = append(d.streams, s)
	d.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for o := range s.ops {
			if o.run != nil {
				o.run()
			}
			if o.done != nil {
				close(o.done)
			}
		}
	}()
	return s, nil
}

// submit enqueues an operation, failing after Close.
func (s *Stream) submit(o op) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dead {
		return ErrClosed
	}
	s.ops <- o
	return nil
}

// MemcpyHtoDAsync enqueues a host→device copy of src into dst at
// dstOff. The copy happens on the stream's executor; the caller may not
// reuse src until Synchronize returns (exactly CUDA's contract, and the
// reason Algorithm 3 recycles buffers only after CudaStreamSync).
func (s *Stream) MemcpyHtoDAsync(dst *Buffer, dstOff int, src []byte) error {
	if dst == nil {
		return errors.New("gpu: nil destination")
	}
	return s.submit(op{run: func() {
		start := time.Now()
		dst.mu.Lock()
		if !dst.freed && dstOff >= 0 && dstOff+len(src) <= len(dst.data) {
			copy(dst.data[dstOff:], src)
		}
		dst.mu.Unlock()
		d := time.Since(start)
		s.dev.mu.Lock()
		s.dev.copyBusy += d
		s.dev.copyBytes += int64(len(src))
		s.dev.mu.Unlock()
	}})
}

// MemcpyDtoHAsync enqueues a device→host copy.
func (s *Stream) MemcpyDtoHAsync(dst []byte, src *Buffer, srcOff int) error {
	if src == nil {
		return errors.New("gpu: nil source")
	}
	return s.submit(op{run: func() {
		src.mu.Lock()
		if !src.freed && srcOff >= 0 && srcOff+len(dst) <= len(src.data) {
			copy(dst, src.data[srcOff:])
		}
		src.mu.Unlock()
	}})
}

// CallbackAsync enqueues an arbitrary host callback in stream order.
func (s *Stream) CallbackAsync(fn func()) error {
	return s.submit(op{run: fn})
}

// Synchronize blocks until every previously enqueued operation has
// completed.
func (s *Stream) Synchronize() error {
	done := make(chan struct{})
	if err := s.submit(op{done: done}); err != nil {
		return err
	}
	<-done
	return nil
}

// Close drains and stops the stream. Operations submitted after Close
// fail with ErrClosed.
func (s *Stream) Close() {
	s.mu.Lock()
	if s.dead {
		s.mu.Unlock()
		return
	}
	s.dead = true
	close(s.ops)
	s.mu.Unlock()
	s.wg.Wait()
}

// Close shuts the device down, closing all streams.
func (d *Device) Close() {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return
	}
	d.closed = true
	streams := append([]*Stream(nil), d.streams...)
	d.mu.Unlock()
	for _, s := range streams {
		s.Close()
	}
}
