package gpu

import (
	"bytes"
	"errors"
	"sync"
	"testing"
)

func TestMallocFreeAccounting(t *testing.T) {
	d, err := NewDevice(0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	b1, err := d.Malloc(600)
	if err != nil {
		t.Fatal(err)
	}
	if d.MemUsed() != 600 {
		t.Fatalf("MemUsed = %d", d.MemUsed())
	}
	if _, err := d.Malloc(500); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("overcommit: %v", err)
	}
	if err := b1.Free(); err != nil {
		t.Fatal(err)
	}
	if d.MemUsed() != 0 {
		t.Fatalf("MemUsed after Free = %d", d.MemUsed())
	}
	if err := b1.Free(); err == nil {
		t.Fatal("double free accepted")
	}
	if _, err := d.Malloc(0); err == nil {
		t.Fatal("zero alloc accepted")
	}
	if _, err := NewDevice(0, 0); err == nil {
		t.Fatal("zero-memory device accepted")
	}
}

func TestStreamOrderedCopies(t *testing.T) {
	d, _ := NewDevice(0, 1<<20)
	defer d.Close()
	s, err := d.NewStream()
	if err != nil {
		t.Fatal(err)
	}
	buf, err := d.Malloc(8)
	if err != nil {
		t.Fatal(err)
	}
	// Two overlapping copies: the second must win (stream order).
	if err := s.MemcpyHtoDAsync(buf, 0, []byte{1, 1, 1, 1, 1, 1, 1, 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.MemcpyHtoDAsync(buf, 2, []byte{9, 9}); err != nil {
		t.Fatal(err)
	}
	if err := s.Synchronize(); err != nil {
		t.Fatal(err)
	}
	want := []byte{1, 1, 9, 9, 1, 1, 1, 1}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("device memory = %v, want %v", buf.Bytes(), want)
	}
	// Read back through DtoH.
	host := make([]byte, 2)
	if err := s.MemcpyDtoHAsync(host, buf, 2); err != nil {
		t.Fatal(err)
	}
	if err := s.Synchronize(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(host, []byte{9, 9}) {
		t.Fatalf("host = %v", host)
	}
	busy, moved := d.CopyStats()
	if moved != 10 {
		t.Fatalf("copied bytes = %d, want 10", moved)
	}
	if busy < 0 {
		t.Fatal("negative busy time")
	}
}

func TestCallbackOrdering(t *testing.T) {
	d, _ := NewDevice(0, 1<<20)
	defer d.Close()
	s, _ := d.NewStream()
	var order []int
	var mu sync.Mutex
	for i := 0; i < 20; i++ {
		i := i
		if err := s.CallbackAsync(func() {
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Synchronize(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("callbacks out of order: %v", order)
		}
	}
}

func TestMemcpyAsyncDoesNotReadSrcEagerly(t *testing.T) {
	// The contract is CUDA's: src must stay stable until Synchronize.
	// Verify the copy happens on the stream (not inline) by blocking the
	// stream first.
	d, _ := NewDevice(0, 1<<20)
	defer d.Close()
	s, _ := d.NewStream()
	buf, _ := d.Malloc(4)
	gate := make(chan struct{})
	_ = s.CallbackAsync(func() { <-gate })
	src := []byte{1, 2, 3, 4}
	_ = s.MemcpyHtoDAsync(buf, 0, src)
	src[0] = 42 // mutate before the stream runs the copy
	close(gate)
	_ = s.Synchronize()
	if buf.Bytes()[0] != 42 {
		t.Fatalf("copy ran eagerly: got %v", buf.Bytes())
	}
}

func TestStreamCloseRejectsNewWork(t *testing.T) {
	d, _ := NewDevice(0, 1<<20)
	s, _ := d.NewStream()
	s.Close()
	s.Close() // idempotent
	if err := s.CallbackAsync(func() {}); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close: %v", err)
	}
	if err := s.Synchronize(); !errors.Is(err, ErrClosed) {
		t.Fatalf("sync after close: %v", err)
	}
}

func TestDeviceCloseClosesStreams(t *testing.T) {
	d, _ := NewDevice(0, 1<<20)
	s, _ := d.NewStream()
	d.Close()
	if err := s.CallbackAsync(func() {}); !errors.Is(err, ErrClosed) {
		t.Fatalf("stream alive after device close: %v", err)
	}
	if _, err := d.NewStream(); !errors.Is(err, ErrClosed) {
		t.Fatalf("NewStream after close: %v", err)
	}
	if _, err := d.Malloc(10); !errors.Is(err, ErrClosed) {
		t.Fatalf("Malloc after close: %v", err)
	}
	d.Close() // idempotent
}

func TestCopyToFreedBufferIsSafe(t *testing.T) {
	d, _ := NewDevice(0, 1<<20)
	defer d.Close()
	s, _ := d.NewStream()
	buf, _ := d.Malloc(4)
	_ = buf.Free()
	if err := s.MemcpyHtoDAsync(buf, 0, []byte{1}); err != nil {
		t.Fatal(err)
	}
	if err := s.Synchronize(); err != nil {
		t.Fatal(err) // must not panic or deadlock
	}
	if err := s.MemcpyHtoDAsync(nil, 0, []byte{1}); err == nil {
		t.Fatal("nil dst accepted")
	}
	host := make([]byte, 1)
	if err := s.MemcpyDtoHAsync(host, nil, 0); err == nil {
		t.Fatal("nil src accepted")
	}
}

func TestOutOfRangeCopyIgnored(t *testing.T) {
	d, _ := NewDevice(0, 1<<20)
	defer d.Close()
	s, _ := d.NewStream()
	buf, _ := d.Malloc(4)
	if err := s.MemcpyHtoDAsync(buf, 2, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := s.Synchronize(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), []byte{0, 0, 0, 0}) {
		t.Fatalf("out-of-range copy wrote: %v", buf.Bytes())
	}
}

func TestConcurrentStreams(t *testing.T) {
	d, _ := NewDevice(0, 1<<24)
	defer d.Close()
	const streams = 4
	var wg sync.WaitGroup
	for i := 0; i < streams; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s, err := d.NewStream()
			if err != nil {
				t.Errorf("NewStream: %v", err)
				return
			}
			buf, err := d.Malloc(1024)
			if err != nil {
				t.Errorf("Malloc: %v", err)
				return
			}
			payload := bytes.Repeat([]byte{byte(i)}, 1024)
			for j := 0; j < 100; j++ {
				if err := s.MemcpyHtoDAsync(buf, 0, payload); err != nil {
					t.Errorf("copy: %v", err)
					return
				}
			}
			if err := s.Synchronize(); err != nil {
				t.Errorf("sync: %v", err)
				return
			}
			if !bytes.Equal(buf.Bytes(), payload) {
				t.Errorf("stream %d data corrupted", i)
			}
		}(i)
	}
	wg.Wait()
}
