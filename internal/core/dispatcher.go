package core

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"dlbooster/internal/gpu"
	"dlbooster/internal/metrics"
	"dlbooster/internal/queue"
)

// Solver is one registered compute engine: a GPU, its copy stream, and
// the pair of Trans Queues connecting it to the global Dispatcher
// (§3.4.3: "each GPU engine communicates with the global Dispatcher
// using a pair of Trans Queues").
type Solver struct {
	Device *gpu.Device
	Stream *gpu.Stream
	// Free holds device-side batch buffers the engine has released;
	// Full carries filled device batches to the engine.
	Free *queue.Queue[*gpu.Buffer]
	Full *queue.Queue[*DeviceBatch]
}

// NewSolver allocates a solver with depth device-side batch buffers of
// batchBytes each.
func NewSolver(dev *gpu.Device, depth, batchBytes int) (*Solver, error) {
	if depth < 1 {
		return nil, errors.New("core: solver depth must be >= 1")
	}
	stream, err := dev.NewStream()
	if err != nil {
		return nil, err
	}
	s := &Solver{
		Device: dev,
		Stream: stream,
		Free:   queue.New[*gpu.Buffer](depth),
		Full:   queue.New[*DeviceBatch](depth),
	}
	for i := 0; i < depth; i++ {
		buf, err := dev.Malloc(batchBytes)
		if err != nil {
			return nil, fmt.Errorf("core: allocating device batch %d: %w", i, err)
		}
		if err := s.Free.Push(buf); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// DispatcherConfig tunes dispatch behaviour.
type DispatcherConfig struct {
	// PerItemCopy switches from one large-block copy per batch to one
	// copy per image — the baseline behaviour whose ≈20 % overhead §5.2
	// attributes to "copying small pieces". It exists for the ablation
	// benchmark; DLBooster proper keeps it false.
	PerItemCopy bool
	// Metrics, when non-nil, registers the dispatcher's telemetry with
	// the registry: per-solver Trans Queue depths (trans<i>_free,
	// trans<i>_full) and the batches_dispatched_total counter. Pass the
	// Booster's Registry() so everything lands in one snapshot. All
	// probes are pull-based; span stamps on traced batches are the only
	// per-batch work and they cost two timestamps per round.
	Metrics *metrics.Registry
}

// Dispatcher moves processed batches from host memory to the registered
// GPU engines with round-robin scheduling and asynchronous copies —
// Algorithm 3 of the paper.
type Dispatcher struct {
	cfg     DispatcherConfig
	batches *queue.Queue[*Batch]
	recycle func(*Batch) error
	solvers []*Solver

	dispatched atomic.Int64
}

// NewDispatcher builds a dispatcher over the backend's batch queue. The
// recycle function returns a host buffer to the MemManager after stream
// synchronisation (Algorithm 3 line 18).
func NewDispatcher(batches *queue.Queue[*Batch], recycle func(*Batch) error, solvers []*Solver, cfg DispatcherConfig) (*Dispatcher, error) {
	if batches == nil || recycle == nil {
		return nil, errors.New("core: nil batch source")
	}
	if len(solvers) == 0 {
		return nil, errors.New("core: no solvers registered")
	}
	d := &Dispatcher{cfg: cfg, batches: batches, recycle: recycle, solvers: solvers}
	if r := cfg.Metrics; r.On() {
		r.RegisterCounterFunc("batches_dispatched_total", d.dispatched.Load)
		for i, s := range solvers {
			r.RegisterQueue(fmt.Sprintf("trans%d_free", i), s.Free.Len, s.Free.Cap)
			r.RegisterQueue(fmt.Sprintf("trans%d_full", i), s.Full.Len, s.Full.Cap)
		}
	}
	return d, nil
}

// Dispatched returns the number of batches moved to devices.
func (d *Dispatcher) Dispatched() int64 { return d.dispatched.Load() }

// inflight is one copy submitted in the current dispatch round.
type inflight struct {
	solver *Solver
	host   *Batch
	dev    *gpu.Buffer
}

// Run executes dispatch rounds until the batch queue closes, then closes
// every solver's Full queue. Each round is Algorithm 3: submit one
// asynchronous copy per solver (lines 1–11), then synchronise all
// streams and recycle the buffers (lines 12–18).
func (d *Dispatcher) Run() error {
	defer func() {
		for _, s := range d.solvers {
			s.Full.Close()
		}
	}()
	for {
		var round []inflight
		for _, s := range d.solvers {
			hostBatch, err := d.batches.Pop() // line 2–3: blocking wait
			if err != nil {
				// Stream over: synchronise what this round already
				// submitted, then exit.
				return d.finishRound(round)
			}
			if tr := hostBatch.Trace; tr != nil {
				tr.Dispatched = time.Now()
			}
			devBuf, err := s.Free.Pop() // lines 4–6
			if err != nil {
				return fmt.Errorf("core: solver free queue closed: %w", err)
			}
			if err := d.copyAsync(s, hostBatch, devBuf); err != nil { // line 9
				return err
			}
			round = append(round, inflight{solver: s, host: hostBatch, dev: devBuf})
		}
		if err := d.finishRound(round); err != nil {
			return err
		}
	}
}

// copyAsync submits the host→device transfer on the solver's stream.
func (d *Dispatcher) copyAsync(s *Solver, host *Batch, dev *gpu.Buffer) error {
	if d.cfg.PerItemCopy {
		stride := host.ImageBytes()
		for i := 0; i < host.Images; i++ {
			if err := s.Stream.MemcpyHtoDAsync(dev, i*stride, host.Image(i)); err != nil {
				return err
			}
		}
		return nil
	}
	return s.Stream.MemcpyHtoDAsync(dev, 0, host.Bytes())
}

// finishRound synchronises the round's streams, recycles host buffers,
// and hands device batches to the engines (Algorithm 3 lines 12–18).
func (d *Dispatcher) finishRound(round []inflight) error {
	for _, f := range round {
		if err := f.solver.Stream.Synchronize(); err != nil {
			return err
		}
		if tr := f.host.Trace; tr != nil {
			tr.Synced = time.Now()
		}
	}
	for _, f := range round {
		db := &DeviceBatch{
			Buf:    f.dev,
			Images: f.host.Images,
			W:      f.host.W, H: f.host.H, C: f.host.C,
			Metas: f.host.Metas,
			Valid: f.host.Valid,
			Seq:   f.host.Seq,
		}
		if err := d.recycle(f.host); err != nil {
			return err
		}
		if err := f.solver.Full.Push(db); err != nil {
			return err
		}
		d.dispatched.Add(1)
	}
	return nil
}
