// The FPGAReader event loop — Algorithm 1 of the paper, plus the
// failure policy (retry scheduling, command timeouts, degraded-mode
// rescue) layered on top of it. Split out of booster.go so the Booster
// lifecycle (construction, telemetry, cache, teardown) reads separately
// from the per-epoch machinery.

package core

import (
	"errors"
	"fmt"
	"time"

	"dlbooster/internal/fpga"
	"dlbooster/internal/hugepage"
	"dlbooster/internal/metrics"
)

// building tracks one batch buffer being filled by in-flight decodes.
// When the epoch cache is on it also carries what admission needs:
// the items' DataRefs (so an evicted entry stays re-decodable) and the
// build start time (so the entry's decode cost — what eviction would
// pay to recompute — is measured, not guessed).
type building struct {
	batch       *Batch
	outstanding int
	sealed      bool
	refs        []fpga.DataRef
	startedAt   time.Time
}

// pendingSlot maps an in-flight command to its batch slot, carrying
// what the failure policy needs: the command itself for resubmission,
// the attempt count, the submit time for timeout detection, and — when
// the command is held host-side between a failed attempt and its
// retry — the earliest time the resubmission may go out.
type pendingSlot struct {
	bld       *building
	slot      int
	cmd       fpga.Cmd
	attempts  int
	submitted time.Time
	retryAt   time.Time // zero = in the board; set = awaiting scheduled retry
}

// RunEpoch drives one pass of the collector through the FPGA decoder —
// Algorithm 1 of the paper. It returns once every input item has been
// decoded (or failed) and every completed batch is on the Full queue. A
// consumer must drain Batches() concurrently, or the pool back-pressure
// will pause the reader once all buffers are in flight.
//
// When the cache is enabled, processed batches are also retained in
// memory (until the limit), making later epochs servable by ReplayCache.
func (b *Booster) RunEpoch(col DataCollector) error {
	if col == nil {
		return errors.New("core: nil collector")
	}
	imageBytes := b.cfg.OutW * b.cfg.OutH * b.cfg.Channels
	res := b.cfg.Resilience
	pending := make(map[uint64]pendingSlot)
	var cur *building
	stream, _ := col.(StreamingCollector)
	// Dynamic batching: flushAt is the deadline by which the building
	// batch must seal even if short — armed when its first item lands,
	// disarmed at every seal. Only meaningful with BatchTimeout set and
	// a streaming collector. bt is re-read from the knob at every
	// deadline arm (see SetBatchTimeout's ordering contract), so a
	// runtime retune applies from the next batch, never mid-batch.
	bt := b.BatchTimeout()
	var flushAt time.Time
	// offloadAcc is the error-diffusion accumulator of the fractional
	// CPU-share knob: it gains CPUShare per submission and routes one
	// item to the CPU decode path each time it crosses 1, spreading the
	// offloaded items evenly through the batch instead of bursting.
	var offloadAcc float64

	// live tracks every buffer this epoch has taken from the pool but
	// not yet published. On an abnormal exit (pool or decoder closed
	// mid-epoch) those buffers are returned so the get/recycle ledger
	// stays balanced — the accounting invariant the chaos tests assert.
	live := make(map[*building]bool)
	defer func() {
		for bld := range live {
			_ = b.pool.Put(bld.batch.Buf) // Push may fail post-Close; the checkout is cleared regardless
		}
	}()

	// finishIfDone publishes a batch once it is sealed with no decodes
	// in flight. outstanding is exact — each submitted command is
	// settled exactly once (FINISH, retry exhaustion, or timeout) — so
	// the condition fires exactly once per batch.
	finishIfDone := func(bld *building) error {
		if bld.sealed && bld.outstanding == 0 {
			if err := b.finishBatch(bld); err != nil {
				// Publish failed (queue closed mid-teardown): the buffer
				// stays in live so the epoch cleanup recycles it.
				return err
			}
			delete(live, bld)
		}
		return nil
	}

	// seal stops the building batch accepting items and publishes it as
	// soon as its in-flight decodes settle. partial marks a
	// deadline-flushed short batch (dynamic batching) as opposed to a
	// full batch or the end-of-stream flush.
	seal := func(partial bool) error {
		cur.sealed = true
		if partial {
			b.partialFlush.Add(1)
		}
		if tr := cur.batch.Trace; tr != nil {
			tr.Sealed = time.Now()
		}
		err := finishIfDone(cur)
		cur = nil
		flushAt = time.Time{}
		return err
	}

	// settleFPGASuccess and settleFailure are the only two ways a
	// pending command resolves; both decrement outstanding.
	settleSuccess := func(ps pendingSlot) error {
		b.noteFPGASuccess()
		b.images.Add(1)
		if b.traced {
			b.reg.ObserveSince(metrics.StageFPGADecode, ps.submitted)
		}
		if tr := ps.bld.batch.Trace; tr != nil {
			tr.FPGA++
		}
		ps.bld.batch.Valid[ps.slot] = true
		ps.bld.outstanding--
		return finishIfDone(ps.bld)
	}
	// settleFailure resolves a command whose FPGA decode finally failed
	// (retries exhausted, submission shed, or timed out). With fallback
	// configured the item is rescued by the CPU decode path — the
	// degradation of the failure model — otherwise its slot stays
	// invalid, the paper's original behaviour.
	settleFailure := func(ps pendingSlot) error {
		b.noteFPGAFailure()
		off := ps.slot * imageBytes
		dst := ps.bld.batch.Buf.Bytes()[off : off+imageBytes]
		var t0 time.Time
		if b.traced {
			t0 = time.Now()
		}
		if res.FallbackAfter > 0 && b.cpuDecode(ps.cmd.Data, dst) == nil {
			b.images.Add(1)
			b.fallbacks.Add(1)
			if b.traced {
				b.reg.ObserveSince(metrics.StageCPUFallback, t0)
			}
			if tr := ps.bld.batch.Trace; tr != nil {
				tr.Fallback++
			}
			ps.bld.batch.Valid[ps.slot] = true
		} else {
			b.errors.Add(1)
			if tr := ps.bld.batch.Trace; tr != nil {
				tr.Failed++
			}
			ps.bld.batch.Valid[ps.slot] = false
		}
		ps.bld.outstanding--
		return finishIfDone(ps.bld)
	}

	process := func(comps []fpga.Completion) error {
		for _, c := range comps {
			ps, ok := pending[c.ID]
			if !ok {
				return fmt.Errorf("core: completion for unknown cmd %d", c.ID)
			}
			if c.Err == nil {
				delete(pending, c.ID)
				if err := settleSuccess(ps); err != nil {
					return err
				}
				continue
			}
			if ps.attempts < res.MaxRetries && !b.degraded.Load() {
				// Schedule the retry by deadline instead of sleeping the
				// backoff inline: the reader keeps draining completions
				// and expiring timeouts for every other command while
				// this one waits its turn.
				ps.attempts++
				b.retries.Add(1)
				ps.retryAt = time.Now().Add(b.backoffDur(ps.attempts))
				pending[c.ID] = ps
				continue
			}
			delete(pending, c.ID)
			if err := settleFailure(ps); err != nil {
				return err
			}
		}
		return nil
	}

	// resubmitDue sends every host-held retry whose backoff has elapsed
	// back to the boards; a shed resubmission (full FIFO of a wedged
	// board) or a degraded-mode switch settles the command instead.
	resubmitDue := func() error {
		if len(pending) == 0 {
			return nil
		}
		now := time.Now()
		for id, ps := range pending {
			if ps.retryAt.IsZero() || now.Before(ps.retryAt) {
				continue
			}
			if b.degraded.Load() {
				delete(pending, id)
				if err := settleFailure(ps); err != nil {
					return err
				}
				continue
			}
			ok, err := b.resubmit(ps.cmd)
			if err != nil {
				return err
			}
			if !ok {
				delete(pending, id)
				b.timeouts.Add(1)
				if err := settleFailure(ps); err != nil {
					return err
				}
				continue
			}
			ps.retryAt = time.Time{}
			ps.submitted = now
			pending[id] = ps
		}
		return nil
	}

	// nextRetry returns the wait until the earliest scheduled retry.
	nextRetry := func() (time.Duration, bool) {
		var earliest time.Time
		for _, ps := range pending {
			if ps.retryAt.IsZero() {
				continue
			}
			if earliest.IsZero() || ps.retryAt.Before(earliest) {
				earliest = ps.retryAt
			}
		}
		if earliest.IsZero() {
			return 0, false
		}
		d := time.Until(earliest)
		if d < 0 {
			d = 0
		}
		return d, true
	}

	// expire settles every in-board command whose FINISH is overdue —
	// the only way a wedged board's swallowed commands ever resolve.
	// Before a slot is settled (and its buffer thereby becomes eligible
	// for publishing and recycling) the command is revoked on its board:
	// Cancel returns only once no DMA write for it can ever land, so a
	// merely-slow board cannot scribble over a rescued slot or a reused
	// buffer later. When the revocation loses the race the FINISH is
	// already in the completion stream — the command is not lost, just
	// slow — so it stays pending with a fresh clock and settles normally.
	expire := func() error {
		if res.CmdTimeout <= 0 || len(pending) == 0 {
			return nil
		}
		now := time.Now()
		for id, ps := range pending {
			if !ps.retryAt.IsZero() {
				continue // host-held awaiting retry: nothing in the board
			}
			if now.Sub(ps.submitted) < res.CmdTimeout {
				continue
			}
			if !b.ch.Cancel(id) {
				b.lateFinishes.Add(1)
				ps.submitted = now
				pending[id] = ps
				continue
			}
			delete(pending, id)
			b.timeouts.Add(1)
			b.flight.Note("cmd_revoked",
				fmt.Sprintf("cmd %d revoked after %v without FINISH", id, res.CmdTimeout))
			if err := settleFailure(ps); err != nil {
				return err
			}
		}
		return nil
	}

	// awaitOne blocks for the next FINISH from any board. The wait is
	// bounded by a fraction of the command timeout (so a stuck board
	// cannot park the reader past its own detection threshold) and by
	// the earliest scheduled retry (so a backing-off command is
	// resubmitted on time even when no FINISH ever arrives).
	awaitOne := func() error {
		if err := resubmitDue(); err != nil {
			return err
		}
		if len(pending) == 0 {
			return nil
		}
		wait := time.Duration(-1)
		if res.CmdTimeout > 0 {
			wait = res.CmdTimeout / 4
		}
		if d, ok := nextRetry(); ok && (wait < 0 || d < wait) {
			wait = d
		}
		if wait < 0 {
			comp, err := b.ch.WaitCompletion()
			if err != nil {
				return fmt.Errorf("core: decoder closed mid-epoch: %w", err)
			}
			return process(append([]fpga.Completion{comp}, b.ch.DrainOut()...))
		}
		comp, ok, err := b.ch.WaitCompletionTimeout(wait)
		if err != nil {
			return fmt.Errorf("core: decoder closed mid-epoch: %w", err)
		}
		if ok {
			if err := process(append([]fpga.Completion{comp}, b.ch.DrainOut()...)); err != nil {
				return err
			}
		}
		if err := expire(); err != nil {
			return err
		}
		return resubmitDue()
	}

	// poll is the non-blocking sweep between submissions: drain FINISH
	// signals, expire overdue commands, send due retries.
	poll := func() error {
		if err := process(b.ch.DrainOut()); err != nil {
			return err
		}
		if err := expire(); err != nil {
			return err
		}
		return resubmitDue()
	}

	for {
		var item Item
		var ok bool
		if stream == nil {
			item, ok = col.Next()
		} else {
			// Streaming input can pause indefinitely; keep draining
			// FINISH signals while waiting so in-flight batches publish
			// promptly (the FPGA-handler daemon's job in §3.2 — the
			// paper's closed-loop workload never pauses, but an online
			// server's arrivals do).
			for {
				if cur != nil && bt > 0 && !time.Now().Before(flushAt) {
					// Deadline flush: the oldest item of the building
					// batch has waited out BatchTimeout. Seal and
					// dispatch the partial batch instead of stalling
					// until arrivals fill it — the bounded-latency
					// contract of the online workflow (Figure 8).
					if err := seal(true); err != nil {
						return err
					}
				}
				if len(pending) == 0 && (cur == nil || bt <= 0) {
					item, ok = col.Next()
					break
				}
				wait := 200 * time.Microsecond
				if cur != nil && bt > 0 {
					if d := time.Until(flushAt); d < wait {
						wait = d
					}
					if wait <= 0 {
						continue // flush deadline already due
					}
				}
				var alive bool
				item, ok, alive = stream.NextTimeout(wait)
				if ok || !alive {
					break
				}
				if err := poll(); err != nil {
					return err
				}
			}
		}
		if !ok {
			break
		}
		b.collected.Add(1)
		var collectedAt time.Time
		if b.spanned {
			collectedAt = time.Now()
		}
		if cur == nil {
			// Algorithm 1 lines 5–10: peek the free queue; while no
			// buffer is available and decodes are still in flight,
			// process completions (blocking on the FINISH queue rather
			// than the pool — a buffer can only come back through a
			// finished batch or through the consumer, and blocking on
			// the pool alone would deadlock when every buffer belongs
			// to a batch whose completions nobody is draining).
			for !b.pool.Available() && len(pending) > 0 {
				if err := awaitOne(); err != nil {
					return err
				}
			}
			buf, err := b.pool.Get()
			if err != nil {
				return fmt.Errorf("core: memory pool closed: %w", err)
			}
			cur = b.newBuilding(buf)
			if tr := cur.batch.Trace; tr != nil {
				tr.Collected = collectedAt
				tr.BufAcquired = time.Now()
			}
			live[cur] = true
			// The first item of a batch arms its flush deadline — and
			// re-reads the knob, the point SetBatchTimeout's ordering
			// contract pins: a retune is effective here, at the next arm.
			bt = b.BatchTimeout()
			if bt > 0 {
				flushAt = time.Now().Add(bt)
			}
		}
		slot := cur.batch.Images
		cur.batch.Images++
		cur.batch.Metas = append(cur.batch.Metas, item.Meta)
		cur.batch.Valid = append(cur.batch.Valid, false)
		if b.cache != nil {
			cur.refs = append(cur.refs, item.Ref)
		}
		b.cmdID++
		// Algorithm 1 lines 11–12: encapsulate the physical address
		// (base + offset of this datum in the batch) into the cmd.
		cmd := fpga.Cmd{
			ID:       b.cmdID,
			Data:     item.Ref,
			DMAAddr:  cur.batch.Buf.PhysAddr(),
			DMAOff:   slot * imageBytes,
			OutW:     b.cfg.OutW,
			OutH:     b.cfg.OutH,
			Channels: b.cfg.Channels,
		}
		degraded := b.degraded.Load()
		offload := false
		if !degraded {
			// Fractional FPGA/CPU split (SetCPUShare): the knob is
			// re-read per submission, so a retune takes effect on the
			// very next item. Degraded mode overrides the share — every
			// decode is already on the CPU and counted as a fallback.
			if share := b.CPUShare(); share > 0 {
				offloadAcc += share
				if offloadAcc >= 1 {
					offloadAcc--
					offload = true
				}
			}
		}
		if degraded || offload {
			// Decode rerouted to the CPU backend path, bypassing the
			// decoder entirely — the failure policy's degraded mode, or
			// the offload knob's deliberate load-splitting.
			dst := cur.batch.Buf.Bytes()[cmd.DMAOff : cmd.DMAOff+imageBytes]
			var t0 time.Time
			if b.traced {
				t0 = time.Now()
			}
			if b.cpuDecode(item.Ref, dst) == nil {
				b.images.Add(1)
				if offload {
					b.offloads.Add(1)
					if b.traced {
						b.reg.ObserveSince(metrics.StageCPUOffload, t0)
					}
				} else {
					b.fallbacks.Add(1)
					if b.traced {
						b.reg.ObserveSince(metrics.StageCPUFallback, t0)
					}
				}
				if tr := cur.batch.Trace; tr != nil {
					tr.Fallback++
				}
				cur.batch.Valid[slot] = true
			} else {
				b.errors.Add(1)
				if tr := cur.batch.Trace; tr != nil {
					tr.Failed++
				}
			}
		} else {
			submitted := true
			var err error
			if res.CmdTimeout > 0 {
				submitted, err = b.ch.SubmitCmdTimeout(cmd, res.CmdTimeout)
			} else {
				err = b.ch.SubmitCmd(cmd)
			}
			if err != nil {
				return err
			}
			cur.outstanding++
			ps := pendingSlot{bld: cur, slot: slot, cmd: cmd, submitted: time.Now()}
			if submitted {
				pending[cmd.ID] = ps
			} else {
				// The FIFO never accepted the command — a wedged board.
				// Settle host-side without waiting for a FINISH that
				// cannot come.
				b.timeouts.Add(1)
				if err := settleFailure(ps); err != nil {
					return err
				}
			}
		}
		// Lines 13–15: pull processed batches with best effort.
		if err := poll(); err != nil {
			return err
		}
		if cur.batch.Images == b.cfg.BatchSize {
			// A full batch seals here; with every slot already settled
			// (pure degraded mode) no FINISH will arrive to publish the
			// batch, so finishIfDone inside seal does it.
			if err := seal(false); err != nil {
				return err
			}
		}
	}
	// Flush: seal the partial batch and wait out all in-flight decodes.
	if cur != nil {
		if err := seal(false); err != nil {
			return err
		}
	}
	for len(pending) > 0 {
		if err := awaitOne(); err != nil {
			return err
		}
	}
	return nil
}

// resubmit re-queues a retried command. Under a command timeout the
// push is bounded, so the full FIFO of a wedged board sheds the retry
// (ok=false) instead of deadlocking the reader.
func (b *Booster) resubmit(cmd fpga.Cmd) (bool, error) {
	if t := b.cfg.Resilience.CmdTimeout; t > 0 {
		return b.ch.SubmitCmdTimeout(cmd, t)
	}
	return true, b.ch.SubmitCmd(cmd)
}

func (b *Booster) newBuilding(buf *hugepage.Buffer) *building {
	b.seq++
	batch := &Batch{
		Buf: buf,
		W:   b.cfg.OutW, H: b.cfg.OutH, C: b.cfg.Channels,
		Seq: b.seq,
	}
	if b.spanned {
		batch.Trace = &metrics.Span{Batch: b.seq}
	}
	bld := &building{batch: batch}
	if b.cache != nil {
		bld.startedAt = time.Now()
	}
	return bld
}

// finishBatch timestamps, optionally caches, and publishes a batch.
func (b *Booster) finishBatch(bld *building) error {
	batch := bld.batch
	if batch.Images == 0 {
		// An empty sealed batch (stream ended exactly at a boundary):
		// return the buffer instead of publishing nothing.
		return b.pool.Put(batch.Buf)
	}
	batch.AssembledAt = time.Now()
	if tr := batch.Trace; tr != nil {
		tr.Published = batch.AssembledAt
		tr.Images = batch.Images
	}
	if b.traced {
		// Fill ratio (0..1], not milliseconds: 1.0 is a full batch, a
		// low tail means deadline flushes are trading throughput for
		// latency (see docs/METRICS.md).
		b.reg.Observe(metrics.StageBatchFill, float64(batch.Images)/float64(b.cfg.BatchSize))
	}
	if b.cache != nil && !b.replaying.Load() {
		// Admit with the measured decode cost (build start → assembly),
		// so the eviction policy knows what re-decoding would pay.
		cost := float64(batch.AssembledAt.Sub(bld.startedAt).Nanoseconds())
		b.cache.Add(batch, bld.refs, cost)
	}
	if err := b.full.Push(batch); err != nil {
		return err
	}
	b.published.Add(1)
	return nil
}
