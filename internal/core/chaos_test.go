package core

import (
	"bytes"
	"testing"
	"time"

	"dlbooster/internal/dataset"
	"dlbooster/internal/faults"
	"dlbooster/internal/fpga"
)

// Chaos tests: deterministic fault injection against the full pipeline.
// Every test runs the epoch under a watchdog — the first property of the
// failure model is that no fault mode can deadlock the reader.

func chaosItems(t *testing.T, n int) []Item {
	t.Helper()
	spec := dataset.MNISTLike(n)
	items := make([]Item, n)
	for i := range items {
		items[i] = Item{Ref: fpga.DataRef{Inline: mustJPEG(t, spec, i)}, Meta: ItemMeta{Seq: i}}
	}
	return items
}

// runEpochWatchdog fails the test instead of hanging forever when a
// fault mode deadlocks the reader.
func runEpochWatchdog(t *testing.T, b *Booster, col DataCollector) {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- b.RunEpoch(col) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("RunEpoch: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("RunEpoch deadlocked under fault injection")
	}
}

// assertPoolBalanced checks the buffer-accounting invariant after the
// consumer has drained and recycled everything: every get_item matched
// by exactly one recycle_item.
func assertPoolBalanced(t *testing.T, b *Booster) {
	t.Helper()
	if n := b.Pool().Outstanding(); n != 0 {
		t.Fatalf("%d buffers leaked (outstanding after full drain)", n)
	}
	if free := b.Pool().FreeLen(); free != b.Pool().Count() {
		t.Fatalf("free queue holds %d of %d buffers", free, b.Pool().Count())
	}
}

// TestChaosFullFPGAFailureDegradesToCPU is the acceptance scenario: an
// injector failing 100% of decode commands must not lose a single
// image — the booster detects the dead decoder, switches to the CPU
// fallback path exactly once, and completes the epoch with every batch
// published and every slot valid.
func TestChaosFullFPGAFailureDegradesToCPU(t *testing.T) {
	const n = 24
	items := chaosItems(t, n)
	b := newBooster(t, Config{
		BatchSize: 4, OutW: 28, OutH: 28, Channels: 1, PoolBatches: 3,
		FPGA: fpga.Config{Inject: faults.New(faults.Config{FailEvery: 1})},
		Resilience: Resilience{
			MaxRetries:    1,
			RetryBackoff:  10 * time.Microsecond,
			FallbackAfter: 3,
		},
	})
	results := drainAll(t, b)
	runEpochWatchdog(t, b, CollectorFromItems(items))
	b.CloseBatches()
	all := <-results
	if len(all) != n/4 {
		t.Fatalf("batches = %d, want %d", len(all), n/4)
	}
	seen := map[int]bool{}
	for _, d := range all {
		for s := 0; s < d.images; s++ {
			if !d.valid[s] {
				t.Fatalf("item %d lost to a dead decoder despite fallback", d.metas[s].Seq)
			}
			seen[d.metas[s].Seq] = true
		}
	}
	if len(seen) != n {
		t.Fatalf("delivered %d distinct images, want %d", len(seen), n)
	}
	if b.Images() != n || b.DecodeErrors() != 0 {
		t.Fatalf("images=%d errors=%d, want %d/0", b.Images(), b.DecodeErrors(), n)
	}
	if !b.Degraded() {
		t.Fatal("booster never switched to degraded mode")
	}
	if got := b.FallbackDecodes(); got != n {
		t.Fatalf("fallback decodes = %d, want %d (decoder never succeeds)", got, n)
	}
	if b.Retries() == 0 {
		t.Fatal("no retries before degrading")
	}
	assertPoolBalanced(t, b)
}

// TestChaosDegradedSwitchFiresExactlyOnce asserts the mode switch is
// recorded exactly once, at the configured consecutive-failure
// threshold, and that the event log says why.
func TestChaosDegradedSwitchFiresExactlyOnce(t *testing.T) {
	const n, after = 16, 3
	items := chaosItems(t, n)
	inj := faults.New(faults.Config{FailEvery: 1})
	b := newBooster(t, Config{
		BatchSize: 4, OutW: 28, OutH: 28, Channels: 1, PoolBatches: 3,
		FPGA:       fpga.Config{Inject: inj},
		Resilience: Resilience{FallbackAfter: after},
	})
	results := drainAll(t, b)
	runEpochWatchdog(t, b, CollectorFromItems(items))
	b.CloseBatches()
	<-results
	events := b.Events()
	degradedEvents := 0
	for _, e := range events {
		if e.Name == "degraded" {
			degradedEvents++
		}
	}
	if degradedEvents != 1 {
		t.Fatalf("degraded events = %d, want exactly 1 (log: %+v)", degradedEvents, events)
	}
	// The switch fired at the threshold: at least `after` commands
	// reached the decoder before it, and everything was rescued.
	if ops := inj.Ops(); ops < after {
		t.Fatalf("decoder saw %d commands, threshold is %d", ops, after)
	}
	if b.FallbackDecodes() != n || b.DecodeErrors() != 0 {
		t.Fatalf("fallbacks=%d errors=%d, want %d/0", b.FallbackDecodes(), b.DecodeErrors(), n)
	}
	assertPoolBalanced(t, b)
}

// TestChaosRetryAbsorbsTransientFaults: every 5th decode command fails
// once; a single retry absorbs each fault with no errors, no fallback
// and no mode switch.
func TestChaosRetryAbsorbsTransientFaults(t *testing.T) {
	const n = 20
	items := chaosItems(t, n)
	b := newBooster(t, Config{
		BatchSize: 4, OutW: 28, OutH: 28, Channels: 1, PoolBatches: 3,
		FPGA: fpga.Config{Inject: faults.New(faults.Config{FailEvery: 5})},
		Resilience: Resilience{
			MaxRetries:   2,
			RetryBackoff: 10 * time.Microsecond,
		},
	})
	results := drainAll(t, b)
	runEpochWatchdog(t, b, CollectorFromItems(items))
	b.CloseBatches()
	all := <-results
	for _, d := range all {
		for s := 0; s < d.images; s++ {
			if !d.valid[s] {
				t.Fatalf("item %d failed despite retries", d.metas[s].Seq)
			}
		}
	}
	if b.Images() != n || b.DecodeErrors() != 0 {
		t.Fatalf("images=%d errors=%d", b.Images(), b.DecodeErrors())
	}
	if b.Retries() == 0 {
		t.Fatal("injector fired but nothing was retried")
	}
	if b.Degraded() || b.FallbackDecodes() != 0 {
		t.Fatal("transient faults must not engage degraded mode")
	}
	assertPoolBalanced(t, b)
}

// TestChaosThroughputRecoversAfterFaultWindow confines failures to the
// first 10 decoder operations: items decoded inside the window fail
// (fail-fast policy, no retries or fallback), and every item after the
// window closes decodes cleanly — throughput recovers by itself.
func TestChaosThroughputRecoversAfterFaultWindow(t *testing.T) {
	const n, window = 30, 10
	items := chaosItems(t, n)
	b := newBooster(t, Config{
		BatchSize: 5, OutW: 28, OutH: 28, Channels: 1, PoolBatches: 3,
		FPGA: fpga.Config{Inject: faults.New(faults.Config{
			FailEvery: 1, WindowStart: 1, WindowLen: window,
		})},
	})
	results := drainAll(t, b)
	runEpochWatchdog(t, b, CollectorFromItems(items))
	b.CloseBatches()
	all := <-results
	// A single board's parser consumes the FIFO in submission order, so
	// exactly items 0..9 land in the fault window.
	for _, d := range all {
		for s := 0; s < d.images; s++ {
			wantValid := d.metas[s].Seq >= window
			if d.valid[s] != wantValid {
				t.Fatalf("item %d valid = %v, want %v", d.metas[s].Seq, d.valid[s], wantValid)
			}
		}
	}
	if b.DecodeErrors() != window || b.Images() != n-window {
		t.Fatalf("errors=%d images=%d, want %d/%d", b.DecodeErrors(), b.Images(), window, n-window)
	}
	if b.Degraded() {
		t.Fatal("fail-fast policy must not degrade")
	}
	assertPoolBalanced(t, b)
}

// TestChaosStuckDeviceTimesOutAndDegrades wedges the single decoder
// board on its 3rd command: submitted commands are swallowed forever.
// The command timeout must detect it, settle the swallowed commands
// host-side, shed submissions the full FIFO rejects, and degrade to the
// CPU path — completing the epoch with zero lost images and the ledger
// balanced.
func TestChaosStuckDeviceTimesOutAndDegrades(t *testing.T) {
	const n = 12
	items := chaosItems(t, n)
	b := newBooster(t, Config{
		BatchSize: 4, OutW: 28, OutH: 28, Channels: 1, PoolBatches: 3,
		FPGA: fpga.Config{
			CmdQueueCap: 2,
			Inject:      faults.New(faults.Config{StuckAfter: 3}),
		},
		Resilience: Resilience{
			CmdTimeout:    40 * time.Millisecond,
			FallbackAfter: 1,
		},
	})
	results := drainAll(t, b)
	runEpochWatchdog(t, b, CollectorFromItems(items))
	b.CloseBatches()
	all := <-results
	seen := map[int]bool{}
	for _, d := range all {
		for s := 0; s < d.images; s++ {
			if !d.valid[s] {
				t.Fatalf("item %d lost to the stuck board", d.metas[s].Seq)
			}
			if seen[d.metas[s].Seq] {
				t.Fatalf("item %d delivered twice", d.metas[s].Seq)
			}
			seen[d.metas[s].Seq] = true
		}
	}
	if len(seen) != n {
		t.Fatalf("delivered %d distinct images, want %d", len(seen), n)
	}
	if !b.Device().Wedged() {
		t.Fatal("stuck fault never wedged the board")
	}
	if !b.Degraded() {
		t.Fatal("stuck board did not engage degraded mode")
	}
	if b.CmdTimeouts() == 0 {
		t.Fatal("no command timed out against a board that stopped finishing")
	}
	if b.Images() != n || b.DecodeErrors() != 0 {
		t.Fatalf("images=%d errors=%d, want %d/0", b.Images(), b.DecodeErrors(), n)
	}
	assertPoolBalanced(t, b)
}

// TestChaosCorruptPayloadsHitRealDecodeErrors: corrupt-always injection
// flips bytes in decode payloads; some corrupted JPEGs may still decode
// (flips can land in entropy data that remains parseable), but every
// item must settle exactly once, with no deadlock and no leak.
func TestChaosCorruptPayloadsHitRealDecodeErrors(t *testing.T) {
	const n = 16
	items := chaosItems(t, n)
	b := newBooster(t, Config{
		BatchSize: 4, OutW: 28, OutH: 28, Channels: 1, PoolBatches: 3,
		FPGA: fpga.Config{Inject: faults.New(faults.Config{Seed: 11, CorruptRate: 1})},
	})
	results := drainAll(t, b)
	runEpochWatchdog(t, b, CollectorFromItems(items))
	b.CloseBatches()
	all := <-results
	settled := 0
	for _, d := range all {
		settled += d.images
	}
	if settled != n {
		t.Fatalf("settled %d items, want %d", settled, n)
	}
	if got := b.Images() + b.DecodeErrors(); got != n {
		t.Fatalf("images+errors = %d, want %d", got, n)
	}
	assertPoolBalanced(t, b)
}

// TestChaosRevokedSlowCommandCannotCorruptBuffers covers the
// slow-but-alive board: the first decode command is delayed in the
// parser far past the command timeout (which also stalls everything
// queued behind it in the FIFO), so the reader revokes the overdue
// commands, rescues their slots on the CPU, publishes, and recycles the
// buffers — all while the board is still working. The revocation fence
// must keep every late DMA write from landing: each published slot
// holds exactly its own item's pixels, the late FINISH signals are
// suppressed rather than surfacing as unknown commands, and the ledger
// balances.
func TestChaosRevokedSlowCommandCannotCorruptBuffers(t *testing.T) {
	const n = 12
	spec := dataset.MNISTLike(n)
	items := make([]Item, n)
	for i := range items {
		items[i] = Item{Ref: fpga.DataRef{Inline: mustJPEG(t, spec, i)}, Meta: ItemMeta{Seq: i}}
	}
	b := newBooster(t, Config{
		BatchSize: 2, OutW: 28, OutH: 28, Channels: 1, PoolBatches: 2,
		FPGA: fpga.Config{Inject: faults.New(faults.Config{
			Delay: 200 * time.Millisecond, DelayEvery: 1, WindowStart: 1, WindowLen: 1,
		})},
		Resilience: Resilience{
			CmdTimeout:    25 * time.Millisecond,
			FallbackAfter: 100, // rescue failed slots, don't switch modes
		},
	})
	// Reference pixels: the CPU path runs the same mirror stages and
	// resize the board would, so every slot must match byte for byte.
	refs := make([][]byte, n)
	for i := range refs {
		refs[i] = make([]byte, 28*28)
		if err := b.cpuDecode(items[i].Ref, refs[i]); err != nil {
			t.Fatal(err)
		}
	}
	results := drainAll(t, b)
	runEpochWatchdog(t, b, CollectorFromItems(items))
	b.CloseBatches()
	all := <-results
	seen := map[int]bool{}
	for _, d := range all {
		for s := 0; s < d.images; s++ {
			seq := d.metas[s].Seq
			if !d.valid[s] {
				t.Fatalf("item %d lost to the slow board", seq)
			}
			if seen[seq] {
				t.Fatalf("item %d delivered twice", seq)
			}
			seen[seq] = true
			if !bytes.Equal(d.pixels[s], refs[seq]) {
				t.Fatalf("item %d pixels corrupted (late DMA landed in a settled slot)", seq)
			}
		}
	}
	if len(seen) != n {
		t.Fatalf("delivered %d distinct images, want %d", len(seen), n)
	}
	if b.CmdTimeouts() == 0 {
		t.Fatal("no command was revoked against a 200ms-slow board under a 25ms timeout")
	}
	if b.Images() != n || b.DecodeErrors() != 0 {
		t.Fatalf("images=%d errors=%d, want %d/0", b.Images(), b.DecodeErrors(), n)
	}
	if b.Degraded() {
		t.Fatal("slow board must not flip the mode switch below the threshold")
	}
	assertPoolBalanced(t, b)
}
