// The tiered decoded-tensor ReplayCache: the hybrid first-epoch cache
// of §3.1 grown a storage tier. Epoch-1 batches are captured into a RAM
// tier; when the RAM budget fills, a cost-aware policy demotes the
// cheapest-to-recompute entries to an NVMe spill tier (internal/nvme,
// paced by its bandwidth model), and when both tiers are exhausted the
// cheapest entry overall is evicted outright — replay then re-decodes
// just those items instead of abandoning the cache wholesale. The full
// handbook (tier diagram, policy, spill record format, sizing model) is
// docs/CACHE.md, pinned by cache_doc_test.go.

package core

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sync"

	"dlbooster/internal/fpga"
	"dlbooster/internal/hugepage"
	"dlbooster/internal/metrics"
)

// ErrCacheUnavailable is returned by ReplayCache when no epoch can be
// served from the cache. It is always wrapped with the cause — match it
// with errors.Is, read the cause from the message (or match one of the
// Err* causes below directly); the contract is documented in
// docs/API.md and docs/CACHE.md.
var ErrCacheUnavailable = errors.New("core: epoch cache unavailable")

// The four causes ReplayCache distinguishes. Each wraps
// ErrCacheUnavailable, so existing errors.Is(err, ErrCacheUnavailable)
// call sites keep working.
var (
	// ErrCacheDisabled: the Booster was built with no cache budget
	// (Config.Cache.RAMBytes and the legacy CacheLimitBytes both zero).
	ErrCacheDisabled = fmt.Errorf("%w: caching disabled (no RAM budget configured)", ErrCacheUnavailable)
	// ErrCacheNeverFilled: caching is on but no first epoch has been
	// captured yet — run RunEpoch once before replaying.
	ErrCacheNeverFilled = fmt.Errorf("%w: first epoch not captured yet", ErrCacheUnavailable)
	// ErrCacheOverRAMLimit: the decoded tensors outgrew the RAM tier and
	// no spill tier was configured, so every entry was evicted — the
	// ILSVRC case of the paper's Figure 6 discussion.
	ErrCacheOverRAMLimit = fmt.Errorf("%w: decoded tensors outgrew the RAM tier and no spill tier is configured", ErrCacheUnavailable)
	// ErrCacheEvicted: both tiers filled and every cached batch was
	// evicted — the dataset outgrew RAM and NVMe budgets combined.
	ErrCacheEvicted = fmt.Errorf("%w: every cached batch was evicted (RAM and spill tiers exhausted)", ErrCacheUnavailable)
)

// SpillStore is the storage tier the cache spills decoded batches to.
// *nvme.Device implements it (WriteObject/Read/Delete), with writes and
// reads paced by its bandwidth model; any durable object store with the
// same three verbs works.
type SpillStore interface {
	// WriteObject stores one spill record under a cache-unique name.
	WriteObject(name string, data []byte) error
	// Read returns a stored record's bytes.
	Read(name string) ([]byte, error)
	// Delete removes a record, reclaiming its space.
	Delete(name string) error
}

// CacheConfig sizes the tiered replay cache.
type CacheConfig struct {
	// RAMBytes is the RAM-tier budget for decoded pixel payloads; 0
	// disables caching entirely.
	RAMBytes int64
	// Spill is the storage tier (nil = RAM-only, today's behaviour).
	Spill SpillStore
	// SpillBytes bounds the bytes of spill records on the store; 0 with
	// a Spill set means unlimited.
	SpillBytes int64
	// Compress flate-compresses spill records (RAM-tier entries are
	// never compressed — the replay hot path stays a straight copy).
	Compress bool
	// SpillPrefix namespaces this cache's object names on a shared
	// store, so several caches (or shards) can spill to one device.
	SpillPrefix string
}

// CacheTier identifies which tier served (or holds) a cached batch.
type CacheTier int

// The tiers a replayed batch can come from. TierNone marks an evicted
// entry, which replay re-decodes from its retained DataRefs.
const (
	TierNone CacheTier = iota
	TierRAM
	TierSpill
)

// String names the tier for logs and reports.
func (t CacheTier) String() string {
	switch t {
	case TierRAM:
		return "ram"
	case TierSpill:
		return "spill"
	}
	return "none"
}

// Spill record format (docs/CACHE.md §Spill record format). One record
// per batch: a fixed header followed by the pixel payload, optionally
// flate-compressed. Metas, Valid and DataRefs never spill — they stay
// in RAM so the aliasing contract and re-decode both survive eviction
// of the pixels.
const (
	// SpillMagic opens every spill record.
	SpillMagic = "DLSP"
	// SpillFormatVersion is the record layout version; readers reject
	// records from other versions.
	SpillFormatVersion = 1
	// SpillHeaderSize is the fixed header length in bytes:
	// magic(4) version(1) flags(1) reserved(2) crc32(4) rawlen(8).
	SpillHeaderSize = 20
	// spillFlagCompressed marks a flate-compressed payload.
	spillFlagCompressed = 1
)

// cacheEntry is one captured batch. The pixel payload lives in exactly
// one tier (data in RAM, or spillName on the store, or neither =
// evicted); metas, valid and refs are immutable once written — replayed
// batches alias metas and valid directly (the PR 5 contract), and refs
// re-decode the batch after eviction.
type cacheEntry struct {
	seq      int
	images   int
	bytes    int64 // uncompressed pixel payload length
	metas    []ItemMeta
	valid    []bool
	refs     []fpga.DataRef
	cost     float64 // decode nanos — what eviction would cost to redo
	hits     int64   // replay serves, all tiers
	data     []byte  // RAM tier (nil when demoted/evicted)
	spill    string  // spill object name ("" when none)
	spillLen int64   // stored record length (accounting)
	dropped  bool    // evicted from both tiers
}

// score is the keep-priority: decode cost scaled by observed hotness.
// Monotone in both, so a hotter-and-costlier entry always outranks a
// colder-and-cheaper one — the invariant the eviction property test
// asserts.
func (e *cacheEntry) score() float64 { return e.cost * float64(1+e.hits) }

// CacheAddStats reports what admitting one batch did to the tiers.
type CacheAddStats struct {
	// Demoted counts RAM entries pushed down to the spill tier.
	Demoted int
	// Evicted counts entries dropped from both tiers.
	Evicted int
	// SpillWriteBytes is the record bytes written while demoting.
	SpillWriteBytes int64
}

// TieredCache is the two-tier decoded-tensor epoch cache: a RAM tier in
// front of an optional NVMe spill tier, with cost-aware admission,
// demotion and eviction. It is safe for concurrent use — several shards
// may capture into and replay from one shared cache (see
// fleet.ReplayShared); Add and promotion serialise on the cache lock
// (spill writes included), replay reads of RAM entries copy outside it.
type TieredCache struct {
	cfg CacheConfig

	mu         sync.Mutex
	entries    []*cacheEntry
	ramBytes   int64
	spillBytes int64
	nextSeq    int
	captured   bool
	// overRAM latches when a RAM-only cache overflows: with no spill
	// tier, a partial epoch cache is dropped wholesale (the legacy
	// ILSVRC behaviour — replaying a subset would serve skewed data,
	// and there is no tier to hold the rest).
	overRAM bool

	demotions       metrics.Counter
	promotions      metrics.Counter
	evictions       metrics.Counter
	spillWrites     metrics.Counter
	spillWriteBytes metrics.Counter
	spillReadBytes  metrics.Counter
}

// NewTieredCache validates the budgets and returns an empty cache.
func NewTieredCache(cfg CacheConfig) (*TieredCache, error) {
	if cfg.RAMBytes <= 0 {
		return nil, errors.New("core: cache RAM budget must be positive")
	}
	if cfg.SpillBytes < 0 {
		return nil, fmt.Errorf("core: negative spill budget %d", cfg.SpillBytes)
	}
	if cfg.Spill == nil && cfg.SpillBytes > 0 {
		return nil, errors.New("core: spill budget set but no spill store")
	}
	if cfg.Spill != nil && cfg.SpillBytes == 0 {
		cfg.SpillBytes = math.MaxInt64
	}
	return &TieredCache{cfg: cfg}, nil
}

// Add captures one published batch: pixels, metas, valid and refs are
// copied (the batch buffer is about to be recycled), the entry is
// admitted to the RAM tier, and the tiers are rebalanced under the
// cost-aware policy — cheapest-coldest entries demote to spill first
// and evict first when spill is full too. costNanos is the decode cost
// the entry would take to recompute (≤0 falls back to a size proxy).
func (c *TieredCache) Add(batch *Batch, refs []fpga.DataRef, costNanos float64) CacheAddStats {
	if costNanos <= 0 {
		costNanos = float64(batch.Images * batch.ImageBytes())
	}
	e := &cacheEntry{
		images: batch.Images,
		bytes:  int64(len(batch.Bytes())),
		metas:  append([]ItemMeta(nil), batch.Metas...),
		valid:  append([]bool(nil), batch.Valid...),
		refs:   append([]fpga.DataRef(nil), refs...),
		cost:   costNanos,
		data:   append([]byte(nil), batch.Bytes()...),
	}
	var st CacheAddStats
	c.mu.Lock()
	defer c.mu.Unlock()
	c.captured = true
	if c.overRAM {
		return st // RAM-only cache already overflowed: nothing is kept
	}
	e.seq = c.nextSeq
	c.nextSeq++
	c.entries = append(c.entries, e)
	c.ramBytes += e.bytes
	c.rebalance(&st)
	return st
}

// rebalance restores the tier budgets after an admission (or a
// promotion), demoting and evicting in ascending score order. Caller
// holds mu.
func (c *TieredCache) rebalance(st *CacheAddStats) {
	if c.cfg.Spill == nil && c.ramBytes > c.cfg.RAMBytes {
		// No spill tier to demote into: drop the whole cache, keeping
		// the legacy all-or-nothing RAM semantics (a partial epoch would
		// replay skewed data).
		for _, e := range c.entries {
			if !e.dropped {
				c.drop(e, st)
			}
		}
		c.overRAM = true
		return
	}
	for c.ramBytes > c.cfg.RAMBytes {
		v := c.minScore(func(e *cacheEntry) bool { return e.data != nil })
		if v == nil {
			return // nothing resident (single batch larger than budget was just evicted)
		}
		if v.spill != "" {
			// A promoted entry keeps its spill copy, so demoting it back
			// is free: just release the RAM residency.
			v.data = nil
			c.ramBytes -= v.bytes
			c.demotions.Add(1)
			st.Demoted++
			continue
		}
		rec := encodeSpillRecord(v.data, c.cfg.Compress)
		// Make room on the spill tier by evicting strictly cheaper
		// spilled entries; if the cheapest survivor still outranks v,
		// v itself is the right thing to lose.
		for c.spillBytes+int64(len(rec)) > c.cfg.SpillBytes {
			w := c.minScore(func(e *cacheEntry) bool { return e.data == nil && e.spill != "" })
			if w == nil || w.score() >= v.score() {
				break
			}
			c.drop(w, st)
		}
		if c.spillBytes+int64(len(rec)) > c.cfg.SpillBytes {
			c.drop(v, st)
			continue
		}
		name := fmt.Sprintf("%sspill-%06d", c.cfg.SpillPrefix, v.seq)
		if err := c.cfg.Spill.WriteObject(name, rec); err != nil {
			// A failed spill write cannot hold the entry anywhere.
			c.drop(v, st)
			continue
		}
		v.spill, v.spillLen = name, int64(len(rec))
		v.data = nil
		c.ramBytes -= v.bytes
		c.spillBytes += int64(len(rec))
		c.demotions.Add(1)
		c.spillWrites.Add(1)
		c.spillWriteBytes.Add(int64(len(rec)))
		st.Demoted++
		st.SpillWriteBytes += int64(len(rec))
	}
}

// minScore returns the lowest-score entry matching pred (ties break to
// the older entry), nil when none match. Caller holds mu.
func (c *TieredCache) minScore(pred func(*cacheEntry) bool) *cacheEntry {
	var best *cacheEntry
	for _, e := range c.entries {
		if e.dropped || !pred(e) {
			continue
		}
		if best == nil || e.score() < best.score() {
			best = e
		}
	}
	return best
}

// drop evicts an entry from both tiers. Its metas and refs stay, so
// replay can re-decode the batch. Caller holds mu.
func (c *TieredCache) drop(e *cacheEntry, st *CacheAddStats) {
	if e.data != nil {
		e.data = nil
		c.ramBytes -= e.bytes
	}
	if e.spill != "" {
		_ = c.cfg.Spill.Delete(e.spill) // best effort: budget accounting must proceed regardless
		c.spillBytes -= e.spillLen
		e.spill, e.spillLen = "", 0
	}
	e.dropped = true
	c.evictions.Add(1)
	if st != nil {
		st.Evicted++
	}
}

// fetch returns one entry's payload and the tier that served it.
// TierNone with a nil error means the entry was evicted (re-decode it).
// A spill hit may promote the entry back to RAM when its score has
// grown past the cheapest RAM resident's.
func (c *TieredCache) fetch(e *cacheEntry) ([]byte, CacheTier, error) {
	c.mu.Lock()
	if e.data != nil {
		e.hits++
		data := e.data // immutable payload: safe to read after unlock
		c.mu.Unlock()
		return data, TierRAM, nil
	}
	name := e.spill
	c.mu.Unlock()
	if name == "" {
		return nil, TierNone, nil
	}
	rec, err := c.cfg.Spill.Read(name)
	if err != nil {
		return nil, TierNone, fmt.Errorf("core: spill read %s: %w", name, err)
	}
	c.spillReadBytes.Add(int64(len(rec)))
	payload, err := decodeSpillRecord(rec, e.bytes)
	if err != nil {
		return nil, TierNone, fmt.Errorf("core: spill record %s: %w", name, err)
	}
	c.mu.Lock()
	e.hits++
	c.maybePromote(e, payload)
	c.mu.Unlock()
	return payload, TierSpill, nil
}

// maybePromote moves a spill-tier entry whose score now beats the
// cheapest RAM residents back into RAM, demoting those residents — the
// cross-epoch adaptivity that migrates hot, expensive batches up. The
// promoted entry keeps its spill copy, so a later demotion is free.
// Caller holds mu and hands over the just-read payload.
func (c *TieredCache) maybePromote(e *cacheEntry, payload []byte) {
	if e.data != nil || e.dropped || e.bytes > c.cfg.RAMBytes {
		return
	}
	// Only promote when every RAM byte it displaces scores lower.
	displaced := int64(0)
	for _, r := range c.entries {
		if r.data == nil || r.dropped {
			continue
		}
		if r.score() >= e.score() {
			continue
		}
		displaced += r.bytes
	}
	if c.ramBytes-displaced+e.bytes > c.cfg.RAMBytes {
		return
	}
	e.data = payload
	c.ramBytes += e.bytes
	c.promotions.Add(1)
	var st CacheAddStats
	c.rebalance(&st)
}

// CacheReplaySink is what TieredCache.Replay needs from the consuming
// pipeline: buffers, a publisher, and a re-decode path for evicted
// entries. Booster and the backends each wire their own.
type CacheReplaySink struct {
	// GetBuffer checks one batch buffer out of the pipeline's pool.
	GetBuffer func() (*hugepage.Buffer, error)
	// Publish ships one replayed batch. The metas and valid slices are
	// the cache's immutable copies — the batch must alias, not mutate,
	// them (the PR 5 contract).
	Publish func(buf *hugepage.Buffer, images int, metas []ItemMeta, valid []bool, tier CacheTier) error
	// Redecode runs evicted items back through the pipeline's decode
	// path, in epoch order. Nil makes an evicted entry a replay error.
	Redecode func(items []Item) error
}

// Replay serves one epoch pass through the sink: cached entries from
// their tiers (RAM copies, paced spill reads), evicted entries
// re-decoded from their retained DataRefs, all in capture order. With
// shards > 1 only entries where index%shards == shard are served — the
// cross-shard split fleet.ReplayShared fans out, each shard reading the
// shared tiers concurrently.
func (c *TieredCache) Replay(shard, shards int, sink CacheReplaySink) error {
	if shards <= 0 || shard < 0 || shard >= shards {
		return fmt.Errorf("core: replay shard %d of %d", shard, shards)
	}
	if err := c.Available(); err != nil {
		return err
	}
	c.mu.Lock()
	entries := append([]*cacheEntry(nil), c.entries...)
	c.mu.Unlock()
	var redo []Item
	flush := func() error {
		if len(redo) == 0 {
			return nil
		}
		items := redo
		redo = nil
		if sink.Redecode == nil {
			return fmt.Errorf("core: %d evicted item(s) need re-decoding but the sink has no redecode path", len(items))
		}
		return sink.Redecode(items)
	}
	for i, e := range entries {
		if i%shards != shard {
			continue
		}
		payload, tier, err := c.fetch(e)
		if err != nil {
			return err
		}
		if tier == TierNone {
			if len(e.refs) != e.images {
				return fmt.Errorf("core: evicted batch %d is not re-decodable (no data refs captured)", e.seq)
			}
			for j := 0; j < e.images; j++ {
				redo = append(redo, Item{Ref: e.refs[j], Meta: e.metas[j]})
			}
			continue
		}
		if err := flush(); err != nil {
			return err
		}
		buf, err := sink.GetBuffer()
		if err != nil {
			return err
		}
		copy(buf.Bytes(), payload)
		if err := sink.Publish(buf, e.images, e.metas, e.valid, tier); err != nil {
			return err
		}
	}
	return flush()
}

// Available reports whether Replay can serve an epoch, wrapping
// ErrCacheUnavailable with the cause when it cannot: never filled, over
// the RAM limit (no spill tier), or fully evicted.
func (c *TieredCache) Available() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.captured || len(c.entries) == 0 {
		return ErrCacheNeverFilled
	}
	for _, e := range c.entries {
		if !e.dropped {
			return nil
		}
	}
	if c.cfg.Spill == nil {
		return ErrCacheOverRAMLimit
	}
	return ErrCacheEvicted
}

// Complete reports whether the whole captured epoch is still resident
// across the tiers — no entry has been evicted, so a replay touches the
// decode path zero times.
func (c *TieredCache) Complete() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.captured || len(c.entries) == 0 {
		return false
	}
	for _, e := range c.entries {
		if e.dropped {
			return false
		}
	}
	return true
}

// CacheStats is a point-in-time view of the tiers, for gauges and
// reports.
type CacheStats struct {
	// Entries is every captured batch, including evicted ones.
	Entries int
	// RAMResident / SpillResident / Dropped partition Entries by where
	// the pixel payload lives now.
	RAMResident, SpillResident, Dropped int
	// RAMBytes / SpillBytes are the tiers' current occupancy (spill in
	// stored-record bytes, so compression shows up here).
	RAMBytes, SpillBytes int64
	// Demotions, Promotions, Evictions, SpillWrites, SpillWriteBytes,
	// SpillReadBytes are the lifetime policy and IO counters.
	Demotions, Promotions, Evictions             int64
	SpillWrites, SpillWriteBytes, SpillReadBytes int64
}

// Stats snapshots the tier occupancy and policy counters.
func (c *TieredCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := CacheStats{
		Entries:         len(c.entries),
		RAMBytes:        c.ramBytes,
		SpillBytes:      c.spillBytes,
		Demotions:       c.demotions.Value(),
		Promotions:      c.promotions.Value(),
		Evictions:       c.evictions.Value(),
		SpillWrites:     c.spillWrites.Value(),
		SpillWriteBytes: c.spillWriteBytes.Value(),
		SpillReadBytes:  c.spillReadBytes.Value(),
	}
	for _, e := range c.entries {
		switch {
		case e.data != nil:
			st.RAMResident++
		case e.spill != "":
			st.SpillResident++
		default:
			st.Dropped++
		}
	}
	return st
}

// Len returns the number of captured batches (including evicted ones).
func (c *TieredCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// encodeSpillRecord frames one payload: fixed header (magic, version,
// flags, crc32 of the stored bytes, raw length) + the payload, flate-
// compressed when that actually shrinks it.
func encodeSpillRecord(payload []byte, compress bool) []byte {
	stored := payload
	flags := byte(0)
	if compress {
		if fl := flateCompress(payload); len(fl) < len(payload) {
			stored, flags = fl, spillFlagCompressed
		}
	}
	rec := make([]byte, SpillHeaderSize+len(stored))
	copy(rec, SpillMagic)
	rec[4] = SpillFormatVersion
	rec[5] = flags
	binary.LittleEndian.PutUint32(rec[8:], crc32.ChecksumIEEE(stored))
	binary.LittleEndian.PutUint64(rec[12:], uint64(len(payload)))
	copy(rec[SpillHeaderSize:], stored)
	return rec
}

// decodeSpillRecord validates a record (magic, version, checksum) and
// returns the raw payload, expected to be wantLen bytes.
func decodeSpillRecord(rec []byte, wantLen int64) ([]byte, error) {
	if len(rec) < SpillHeaderSize {
		return nil, fmt.Errorf("record truncated at %d bytes", len(rec))
	}
	if string(rec[:4]) != SpillMagic {
		return nil, errors.New("bad magic")
	}
	if rec[4] != SpillFormatVersion {
		return nil, fmt.Errorf("format version %d, want %d", rec[4], SpillFormatVersion)
	}
	stored := rec[SpillHeaderSize:]
	if got, want := crc32.ChecksumIEEE(stored), binary.LittleEndian.Uint32(rec[8:]); got != want {
		return nil, fmt.Errorf("checksum mismatch: %08x != %08x (media corruption)", got, want)
	}
	rawLen := int64(binary.LittleEndian.Uint64(rec[12:]))
	if rawLen != wantLen {
		return nil, fmt.Errorf("payload length %d, want %d", rawLen, wantLen)
	}
	if rec[5]&spillFlagCompressed == 0 {
		return append([]byte(nil), stored...), nil
	}
	out := make([]byte, rawLen)
	fr := flate.NewReader(bytes.NewReader(stored))
	if _, err := io.ReadFull(fr, out); err != nil {
		return nil, fmt.Errorf("inflate: %w", err)
	}
	return out, nil
}

// flateCompress deflates payload at BestSpeed — the "light compression"
// knob: cheap enough to sit on the spill write path, lossless so the
// byte-parity tests hold.
func flateCompress(payload []byte) []byte {
	var buf bytes.Buffer
	w, err := flate.NewWriter(&buf, flate.BestSpeed)
	if err != nil {
		return payload
	}
	if _, err := w.Write(payload); err != nil || w.Close() != nil {
		return payload
	}
	return buf.Bytes()
}
