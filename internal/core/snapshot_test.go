package core

import (
	"testing"
	"time"

	"dlbooster/internal/dataset"
	"dlbooster/internal/faults"
	"dlbooster/internal/fpga"
	"dlbooster/internal/metrics"
)

// TestSnapshotSpanConservation runs a traced epoch and checks the
// accounting invariants of the span model: every collected image lands
// in exactly one terminal state (FPGA, fallback, or failed), every
// published batch completes exactly one span, and the global counters
// agree with the per-span sums.
func TestSnapshotSpanConservation(t *testing.T) {
	const n = 23 // deliberately not a batch multiple: the flush path must trace too
	items := chaosItems(t, n)
	reg := metrics.NewRegistry()
	b := newBooster(t, Config{
		BatchSize: 4, OutW: 28, OutH: 28, Channels: 1, PoolBatches: 3,
		Metrics: reg,
	})
	results := drainAll(t, b)
	runEpochWatchdog(t, b, CollectorFromItems(items))
	b.CloseBatches()
	<-results
	assertPoolBalanced(t, b)

	s := b.Snapshot()
	if s == nil {
		t.Fatal("nil snapshot from traced booster")
	}
	if got := s.Counters["items_collected_total"]; got != n {
		t.Fatalf("items_collected_total = %d, want %d", got, n)
	}
	if s.Counters["items_collected_total"] != s.Counters["images_decoded_total"]+s.Counters["decode_errors_total"] {
		t.Fatalf("collected %d != decoded %d + errors %d",
			s.Counters["items_collected_total"], s.Counters["images_decoded_total"], s.Counters["decode_errors_total"])
	}
	// Per-span conservation on every completed span.
	for _, sp := range s.RecentSpans {
		if sp.Images != sp.FPGA+sp.Fallback+sp.Failed {
			t.Fatalf("span %d: %d images != %d fpga + %d fallback + %d failed",
				sp.Batch, sp.Images, sp.FPGA, sp.Fallback, sp.Failed)
		}
		for name, ts := range map[string]time.Time{
			"collected": sp.Collected, "buf_acquired": sp.BufAcquired,
			"sealed": sp.Sealed, "published": sp.Published,
			"dispatched": sp.Dispatched, "synced": sp.Synced, "recycled": sp.Recycled,
		} {
			// drainAll recycles without a dispatcher, so dispatch/sync
			// stay zero; the collect→publish→recycle chain must not.
			if (name == "dispatched" || name == "synced") == ts.IsZero() {
				continue
			}
			if ts.IsZero() {
				t.Fatalf("span %d: stage %s never stamped", sp.Batch, name)
			}
		}
	}
	// Global span sums equal the pipeline counters.
	if s.Counters["span_images_total"] != s.Counters["items_collected_total"] {
		t.Fatalf("span_images_total = %d, want %d",
			s.Counters["span_images_total"], s.Counters["items_collected_total"])
	}
	if s.Counters["span_images_fpga_total"] != s.Counters["images_decoded_total"] {
		t.Fatalf("span fpga = %d, decoded = %d",
			s.Counters["span_images_fpga_total"], s.Counters["images_decoded_total"])
	}
	// 23 images at batch 4 → 6 published batches, each exactly one span.
	if s.SpansCompleted != 6 || s.Counters["batches_published_total"] != 6 {
		t.Fatalf("spans = %d, published = %d, want 6", s.SpansCompleted, s.Counters["batches_published_total"])
	}
	// The traced stages must have fired.
	if s.Stages[metrics.StageFPGADecode].Count != n {
		t.Fatalf("fpga_decode observations = %d, want %d", s.Stages[metrics.StageFPGADecode].Count, n)
	}
	for _, stage := range []string{metrics.StageAssemble, metrics.StageBatchE2E, metrics.StageGetItemWait} {
		if s.Stages[stage].Count == 0 {
			t.Fatalf("stage %s never observed", stage)
		}
	}
	// Hugepage ledger surfaces in the same snapshot.
	if s.Counters["hugepage_gets_total"] != s.Counters["hugepage_puts_total"] {
		t.Fatalf("hugepage gets %d != puts %d",
			s.Counters["hugepage_gets_total"], s.Counters["hugepage_puts_total"])
	}
	if q, ok := s.Queues["hugepage_free"]; !ok || q.Len != q.Cap {
		t.Fatalf("hugepage_free queue = %+v after full drain", s.Queues["hugepage_free"])
	}
}

// TestSnapshotUntracedDefault pins the cheap-by-default contract: a
// Booster built without Config.Metrics still answers Snapshot with
// counters, queues and gauges, but carries no spans, no stage
// histograms, and no Trace pointer on any batch.
func TestSnapshotUntracedDefault(t *testing.T) {
	const n = 8
	items := chaosItems(t, n)
	b := newBooster(t, Config{
		BatchSize: 4, OutW: 28, OutH: 28, Channels: 1, PoolBatches: 3,
	})
	done := make(chan bool, 1)
	go func() {
		traced := false
		for {
			batch, err := b.Batches().Pop()
			if err != nil {
				done <- traced
				return
			}
			if batch.Trace != nil {
				traced = true
			}
			_ = b.RecycleBatch(batch)
		}
	}()
	runEpochWatchdog(t, b, CollectorFromItems(items))
	b.CloseBatches()
	if <-done {
		t.Fatal("untraced booster attached a Trace span")
	}
	s := b.Snapshot()
	if s == nil {
		t.Fatal("untraced booster must still snapshot")
	}
	if got := s.Counters["images_decoded_total"]; got != n {
		t.Fatalf("images_decoded_total = %d, want %d", got, n)
	}
	if len(s.Stages) != 0 {
		t.Fatalf("untraced snapshot has stage histograms: %v", s.Stages)
	}
	if s.SpansCompleted != 0 {
		t.Fatalf("untraced snapshot completed %d spans", s.SpansCompleted)
	}
	if _, ok := s.Queues["full_batch"]; !ok {
		t.Fatal("untraced snapshot missing full_batch queue probe")
	}
}

// TestSnapshotSurfacesDegradation injects a dead decoder and asserts the
// whole failure story is readable from one snapshot: the degraded gauge,
// the retry/fallback counters, the degraded event, and spans whose
// images all terminated on the fallback path.
func TestSnapshotSurfacesDegradation(t *testing.T) {
	const n = 12
	items := chaosItems(t, n)
	reg := metrics.NewRegistry()
	b := newBooster(t, Config{
		BatchSize: 4, OutW: 28, OutH: 28, Channels: 1, PoolBatches: 3,
		FPGA: fpga.Config{Inject: faults.New(faults.Config{FailEvery: 1})},
		Resilience: Resilience{
			MaxRetries:    1,
			RetryBackoff:  10 * time.Microsecond,
			FallbackAfter: 2,
		},
		Metrics: reg,
	})
	results := drainAll(t, b)
	runEpochWatchdog(t, b, CollectorFromItems(items))
	b.CloseBatches()
	<-results

	s := b.Snapshot()
	if s.Gauges["degraded"] != 1 {
		t.Fatalf("degraded gauge = %v", s.Gauges["degraded"])
	}
	if s.Counters["fallback_decodes_total"] != n || s.Counters["images_decoded_total"] != n {
		t.Fatalf("fallbacks = %d, images = %d, want %d of each",
			s.Counters["fallback_decodes_total"], s.Counters["images_decoded_total"], n)
	}
	if s.Counters["decode_retries_total"] == 0 {
		t.Fatal("retries never surfaced in the snapshot")
	}
	found := false
	for _, e := range s.Events {
		if e.Name == "degraded" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no degraded event in snapshot: %v", s.Events)
	}
	if s.Counters["span_images_fallback_total"] != n || s.Counters["span_images_fpga_total"] != 0 {
		t.Fatalf("span terminals: fallback=%d fpga=%d, want %d/0",
			s.Counters["span_images_fallback_total"], s.Counters["span_images_fpga_total"], n)
	}
	if s.Stages[metrics.StageCPUFallback].Count != n {
		t.Fatalf("cpu_fallback observations = %d, want %d", s.Stages[metrics.StageCPUFallback].Count, n)
	}
}

// benchmarkEpoch measures one epoch through the reader with recycling,
// with or without a registry — the nil-registry run is the no-regression
// baseline the observability layer must not disturb.
func benchmarkEpoch(b *testing.B, reg *metrics.Registry) {
	spec := dataset.MNISTLike(32)
	items := make([]Item, 32)
	for i := range items {
		data, err := spec.JPEG(i)
		if err != nil {
			b.Fatal(err)
		}
		items[i] = Item{Ref: fpga.DataRef{Inline: data}, Meta: ItemMeta{Seq: i}}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		bo, err := New(Config{
			BatchSize: 8, OutW: 28, OutH: 28, Channels: 1, PoolBatches: 4,
			Metrics: reg,
		})
		if err != nil {
			b.Fatal(err)
		}
		done := make(chan struct{})
		go func() {
			defer close(done)
			for {
				batch, err := bo.Batches().Pop()
				if err != nil {
					return
				}
				_ = bo.RecycleBatch(batch)
			}
		}()
		b.StartTimer()
		if err := bo.RunEpoch(CollectorFromItems(items)); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		bo.CloseBatches()
		<-done
		bo.Close()
		b.StartTimer()
	}
}

func BenchmarkEpochUntraced(b *testing.B) { benchmarkEpoch(b, nil) }

func BenchmarkEpochTraced(b *testing.B) { benchmarkEpoch(b, metrics.NewRegistry()) }
